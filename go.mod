module oskit

go 1.24
