// Package oskit is a Go reproduction of "The Flux OSKit: A Substrate for
// Kernel and Language Research" (Ford, Back, Benson, Lepreau, Lin,
// Shivers; SOSP 1997).
//
// The kit is not an operating system: it is a set of separable
// components — bootstrap support, a kernel support library, memory
// managers, a minimal C library, debugging support, device drivers, a
// TCP/IP stack, file systems — from which operating systems and
// language runtimes are assembled, bound together at run time through
// COM interfaces.  Donor-style "legacy" code (Linux-style drivers,
// FreeBSD-style networking, NetBSD-style file systems) is encapsulated
// behind thin glue exactly as the paper describes.
//
// Because Go cannot run on bare metal, everything runs on a simulated
// PC platform (oskit/internal/hw) that preserves the properties the
// components depend on: flat physical memory with a 16 MB DMA limit,
// interrupt-driven devices, and the paper's two-level execution model.
//
// Start with DESIGN.md for the system inventory, examples/quickstart
// for a "Hello World" kernel, and bench_test.go for the harness that
// regenerates every table and figure in the paper's evaluation.
package oskit
