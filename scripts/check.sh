#!/bin/sh
# check.sh — the full verification gauntlet: tier-1, shuffled re-run,
# and a short fuzz smoke over the hostile-input parsers.
#
# Usage: scripts/check.sh [fuzztime]
#   fuzztime  per-target fuzzing budget (default 10s; "0" skips fuzzing)
set -eu

cd "$(dirname "$0")/.."
FUZZTIME="${1:-10s}"

echo "== tier-1: build"
go build ./...

echo "== tier-1: vet"
go vet ./...

echo "== tier-1: oskitcheck (comref, lockhook, guarded, guidreg, detsource)"
# -timing prints per-analyzer wall clock; -budget fails the lint if any
# single analyzer blows a generous per-package ceiling (a regression
# tripwire for the cross-package ones, guarded especially).
go run ./cmd/oskitcheck -timing -budget 30s ./...

echo "== tier-1: test"
go test ./...

echo "== tier-1: race (net, stats, hw, faults, libc, linux drivers, kvm, smp, evalrig, com)"
go test -race ./internal/freebsd/net/... ./internal/stats/... \
	./internal/hw/... ./internal/faults/... \
	./internal/libc/... ./internal/linux/dev/... \
	./internal/kvm/... ./internal/smp/... \
	./internal/evalrig/... ./internal/com/...

echo "== cluster smoke (switched N-node rig, churn reproducibility, under -race)"
go test -race -count=1 ./internal/evalrig/ \
	-run 'TestCluster|TestConcurrentCeiling'

echo "== SMP smoke (4-CPU cluster churn on the per-connection locks, under -race)"
go test -race -count=1 ./internal/evalrig/ \
	-run 'TestSMP'
go test -race -count=1 ./internal/freebsd/net/ \
	-run 'TestRace|TestPerConnLockingInterleavings|TestScheduledConnectCloseRace'

echo "== alloc-contention smoke (8-CPU magazine/front hammer, under -race)"
OSKIT_CPUS=8 go test -race -count=1 \
	./internal/libc/ -run 'TestMagazineConcurrent'
OSKIT_CPUS=8 go test -race -count=1 \
	./internal/freebsd/glue/ -run 'TestMallocConcurrentGaugeAudit'
OSKIT_CPUS=8 go test -race -count=1 \
	./internal/linux/dev/ -run 'TestKmCacheConcurrentAudit'
go test -race -count=1 ./internal/evalrig/ -run 'TestE16AllocFrontsEngageAndDrain'

echo "== refcount lifecycle checks (oskitrefdebug build)"
go test -race -tags oskitrefdebug ./internal/com/
go test -race -tags oskitrefdebug -count=1 ./internal/faults/soak/ \
	-run 'TestHTTPPinLedgerUnderRetransmits|TestSMPMagazineDrainLedger'

echo "== shuffled re-run (order-dependence check)"
go test -shuffle=on -count=1 ./...

echo "== shuffled multi-CPU re-run (SMP rigs under a different interleaving)"
go test -shuffle=on -count=1 ./internal/evalrig/ ./internal/freebsd/net/ ./internal/smp/

echo "== bench smoke (E11-E16 matrices, 1x)"
scripts/bench.sh 1x >/dev/null

echo "== example smoke (flag parity: -stats/-faults/-fastpath)"
go run ./examples/ttcp -config oskit -blocks 64 -fastpath -stats >/dev/null
go run ./examples/rtcp -config oskit -rounds 50 -fastpath >/dev/null
go run ./examples/ttcp -config freebsd -blocks 64 -cpus 4 >/dev/null
go run ./examples/rtcp -config freebsd -rounds 50 -cpus 4 >/dev/null
go run ./cmd/oskit-churn -config freebsd -nodes 4 -conns 128 -cpus 4 >/dev/null
go run ./cmd/oskit-stats -config oskit -blocks 64 -fastpath -cpus 4 -percpu >/dev/null
go run ./examples/fileserver -stats -fastpath \
	-faults "seed=7 disk.err=0.05 disk.torn=0.02" >/dev/null
go run ./examples/fileserver -stats -fastpath -cpus 2 \
	-faults "seed=9 wire.drop=0.03 disk.err=0.02" >/dev/null

if [ "$FUZZTIME" != "0" ]; then
	echo "== fuzz smoke ($FUZZTIME per target)"
	go test ./internal/freebsd/net/ -run '^$' -fuzz '^FuzzIPInput$' -fuzztime "$FUZZTIME"
	go test ./internal/freebsd/net/ -run '^$' -fuzz '^FuzzTCPSegInput$' -fuzztime "$FUZZTIME"
	go test ./internal/freebsd/net/ -run '^$' -fuzz '^FuzzEtherBatchInput$' -fuzztime "$FUZZTIME"
	go test ./internal/diskpart/ -run '^$' -fuzz '^FuzzReadPartitions$' -fuzztime "$FUZZTIME"
	go test ./internal/httpd/ -run '^$' -fuzz '^FuzzHTTPRequest$' -fuzztime "$FUZZTIME"
fi

echo "== all checks passed"
