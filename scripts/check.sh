#!/bin/sh
# check.sh — the full verification gauntlet: tier-1, shuffled re-run,
# and a short fuzz smoke over the hostile-input parsers.
#
# Usage: scripts/check.sh [fuzztime]
#   fuzztime  per-target fuzzing budget (default 10s; "0" skips fuzzing)
set -eu

cd "$(dirname "$0")/.."
FUZZTIME="${1:-10s}"

echo "== tier-1: build"
go build ./...

echo "== tier-1: vet"
go vet ./...

echo "== tier-1: test"
go test ./...

echo "== tier-1: race (net, stats, hw, faults)"
go test -race ./internal/freebsd/net/... ./internal/stats/... \
	./internal/hw/... ./internal/faults/...

echo "== shuffled re-run (order-dependence check)"
go test -shuffle=on -count=1 ./...

if [ "$FUZZTIME" != "0" ]; then
	echo "== fuzz smoke ($FUZZTIME per target)"
	go test ./internal/freebsd/net/ -run '^$' -fuzz '^FuzzIPInput$' -fuzztime "$FUZZTIME"
	go test ./internal/freebsd/net/ -run '^$' -fuzz '^FuzzTCPSegInput$' -fuzztime "$FUZZTIME"
	go test ./internal/diskpart/ -run '^$' -fuzz '^FuzzReadPartitions$' -fuzztime "$FUZZTIME"
fi

echo "== all checks passed"
