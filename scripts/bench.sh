#!/bin/sh
# bench.sh — run the repository's matrix benchmarks and record per-row
# medians as JSON, one file per experiment, for EXPERIMENTS.md and for
# regression eyeballing across commits.
#
# Usage: scripts/bench.sh [benchtime]
#   benchtime  passed to -benchtime (default 1x: each matrix bench
#              already runs enough interleaved rounds internally for a
#              median, so one invocation is one measurement)
#
# Currently wired:
#   E11 (the opt-in fast-path send matrix)    -> BENCH_e11.json
#   E12 (the opt-in fast-path receive matrix) -> BENCH_e12.json
#   E13 (cluster connection churn + demux)    -> BENCH_e13.json
#   E14 (SMP scaling: ttcp/rtcp/churn by CPUs) -> BENCH_e14.json
#   E15 (sendfile copy/zero-copy x csum matrix) -> BENCH_e15.json
#   E16 (per-CPU allocation fronts vs global locks) -> BENCH_e16.json
set -eu

cd "$(dirname "$0")/.."
BENCHTIME="${1:-1x}"

# Host metadata, stamped into every recorded object so numbers can be
# compared across machines.  Older BENCH_*.json files lack the "host"
# key; the internal/benchjson loader tolerates both shapes.
GOVER="$(go version | awk '{print $3}')"
NCPU="$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN)"
MAXPROCS="${GOMAXPROCS:-$NCPU}"

run_matrix() {
	# $1 = bench regexp, $2 = output file
	out="$(go test -run '^$' -bench "$1" -benchtime "$BENCHTIME" .)"
	echo "$out"
	echo "$out" | awk -v file="$2" -v gover="$GOVER" -v maxprocs="$MAXPROCS" -v ncpu="$NCPU" '
		/^Benchmark/ {
			# Fields: name, iterations, then repeated "value unit" pairs
			# (ns/op plus every b.ReportMetric row).
			s = sprintf("{\n  \"bench\": \"%s\",", $1)
			s = s sprintf("\n  \"host\": {\n    \"go\": \"%s\",\n    \"gomaxprocs\": %s,\n    \"cpus\": %s\n  },", gover, maxprocs, ncpu)
			s = s "\n  \"metrics\": {"
			sep = ""
			for (i = 3; i + 1 <= NF; i += 2) {
				s = s sprintf("%s\n    \"%s\": %s", sep, $(i+1), $i)
				sep = ","
			}
			objs[n++] = s "\n  }\n}"
		}
		END {
			# One matched bench writes a single object (the historical
			# format); several write a JSON array.
			if (n == 1) print objs[0] > file
			else if (n > 1) {
				print "[" > file
				for (i = 0; i < n; i++)
					print objs[i] (i < n - 1 ? "," : "") > file
				print "]" > file
			}
		}
	'
	[ -s "$2" ] || { echo "bench.sh: no benchmark output parsed for $1" >&2; exit 1; }
	echo "wrote $2"
}

run_matrix 'E11_FastPath_Matrix' BENCH_e11.json
run_matrix 'E12_RxBatch_Matrix' BENCH_e12.json
run_matrix 'E13_(Churn|Demux)_Matrix' BENCH_e13.json
run_matrix 'E14_SMP_Matrix' BENCH_e14.json
run_matrix 'E15_Sendfile_Matrix' BENCH_e15.json
run_matrix 'E16_Alloc_Matrix' BENCH_e16.json
