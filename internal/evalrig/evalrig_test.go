package evalrig

import (
	"testing"
	"time"
)

// TestAllConfigsCarryTTCP proves every Table 1/2 configuration moves
// data correctly; the bench harness then measures them.
func TestAllConfigsCarryTTCP(t *testing.T) {
	for _, cfg := range Configs {
		cfg := cfg
		t.Run(string(cfg), func(t *testing.T) {
			p, err := NewPair(cfg, time.Millisecond)
			if err != nil {
				t.Fatal(err)
			}
			defer p.Halt()
			res, err := TTCP(p, 64, 4096, 5001)
			if err != nil {
				t.Fatal(err)
			}
			if res.Bytes != 64*4096 {
				t.Fatalf("bytes = %d", res.Bytes)
			}
			if res.SendMbps() <= 0 || res.RecvMbps() <= 0 {
				t.Fatalf("rates = %.1f / %.1f", res.SendMbps(), res.RecvMbps())
			}
		})
	}
}

func TestAllConfigsCarryRTCP(t *testing.T) {
	for _, cfg := range Configs {
		cfg := cfg
		t.Run(string(cfg), func(t *testing.T) {
			p, err := NewPair(cfg, time.Millisecond)
			if err != nil {
				t.Fatal(err)
			}
			defer p.Halt()
			usec, err := RTCP(p, 50, 5002)
			if err != nil {
				t.Fatal(err)
			}
			if usec <= 0 {
				t.Fatalf("rtt = %f", usec)
			}
		})
	}
}

// TestOSKitPathShape checks the mechanism behind Table 1's shape on the
// OSKit configuration: inbound packets are wrapped zero-copy, outbound
// data segments are chained (and therefore copied by the Linux glue).
func TestOSKitPathShape(t *testing.T) {
	p, err := NewPair(OSKit, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Halt()
	if _, err := TTCP(p, 256, 4096, 5003); err != nil {
		t.Fatal(err)
	}
	ss := p.Sender.BSD.StatsSnapshot()
	rs := p.Receiver.BSD.StatsSnapshot()
	if ss.TxChained == 0 {
		t.Errorf("sender sent no chained packets: %+v", ss)
	}
	if ss.TxChained < ss.TxContiguous {
		t.Errorf("data segments mostly contiguous (%d chained, %d contiguous): the send-copy story collapses",
			ss.TxChained, ss.TxContiguous)
	}
	if rs.RxZeroCopy == 0 || rs.RxCopied != 0 {
		t.Errorf("receive path not zero-copy: %+v", rs)
	}
}

// TestFreeBSDNativePathShape: the all-BSD configuration never crosses a
// buffer-representation boundary.
func TestFreeBSDNativePathShape(t *testing.T) {
	p, err := NewPair(FreeBSD, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Halt()
	if _, err := TTCP(p, 64, 4096, 5004); err != nil {
		t.Fatal(err)
	}
	// The COM receive sink is never involved: no zero-copy/copied
	// accounting happens on the native path.
	rs := p.Receiver.BSD.StatsSnapshot()
	if rs.RxZeroCopy != 0 || rs.RxCopied != 0 {
		t.Errorf("native path went through the COM sink: %+v", rs)
	}
	if rs.TCPIn == 0 {
		t.Errorf("no TCP input recorded: %+v", rs)
	}
}
