package evalrig

import (
	"testing"
	"time"

	"oskit/internal/hw"
)

// TestE16AllocFrontsEngageAndDrain: a multi-CPU fast-path pair engages
// every per-CPU allocation front (E16), traffic flows, and the
// Halt-time drain returns every cached block so the allocation ledgers
// quiesce with frees never leading allocs.
func TestE16AllocFrontsEngageAndDrain(t *testing.T) {
	p, err := NewPairOpts(OSKit, time.Millisecond, Options{FastPath: true, CPUs: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Halt()
	for _, n := range []*Node{p.Sender, p.Receiver} {
		if !n.QP.MagazinesEnabled() {
			t.Fatalf("%s: QuickPool magazines not enabled", n.Machine.Name)
		}
		if !n.BSD.Glue().Malloc.CPUCacheEnabled() {
			t.Fatalf("%s: BSD malloc front not enabled", n.Machine.Name)
		}
	}
	if _, err := TTCP(p, 256, 4096, 5106); err != nil {
		t.Fatal(err)
	}
	for _, n := range []*Node{p.Sender, p.Receiver} {
		hits := int64(0)
		for _, row := range [][2]string{
			{"quickpool", "qp.magazine_hits"},
			{"bsd_malloc", "malloc.cpu_hits"},
			{"linux_dev", "kmalloc.cpu_hits"},
		} {
			v, ok := n.Stat(row[0], row[1])
			if !ok {
				t.Errorf("%s: %s row missing with the fronts on", n.Machine.Name, row[1])
			}
			hits += v
		}
		if hits == 0 {
			t.Errorf("%s: no per-CPU front hit anywhere during TTCP", n.Machine.Name)
		}
		n.drainAllocCaches()
		if v := n.QP.MagazineCached(); v != 0 {
			t.Errorf("%s: %d blocks still in the magazines after drain", n.Machine.Name, v)
		}
		if v := n.BSD.Glue().Malloc.CPUCached(); v != 0 {
			t.Errorf("%s: %d blocks still in the malloc front after drain", n.Machine.Name, v)
		}
		for _, pair := range [][3]string{
			{"quickpool", "qp.allocs", "qp.frees"},
			{"bsd_malloc", "malloc.allocs", "malloc.frees"},
			{"linux_dev", "kmalloc.allocs", "kmalloc.frees"},
			{"freebsd_net", "mbuf.allocs", "mbuf.frees"},
			{"freebsd_net", "mbuf.cluster_allocs", "mbuf.cluster_frees"},
		} {
			allocs, _ := n.Stat(pair[0], pair[1])
			frees, _ := n.Stat(pair[0], pair[2])
			if frees > allocs {
				t.Errorf("%s: %s = %d > %s = %d after drain",
					n.Machine.Name, pair[2], frees, pair[1], allocs)
			}
		}
	}
}

// TestAllConfigsCarryTTCP proves every Table 1/2 configuration moves
// data correctly; the bench harness then measures them.
func TestAllConfigsCarryTTCP(t *testing.T) {
	for _, cfg := range Configs {
		cfg := cfg
		t.Run(string(cfg), func(t *testing.T) {
			p, err := NewPair(cfg, time.Millisecond)
			if err != nil {
				t.Fatal(err)
			}
			defer p.Halt()
			res, err := TTCP(p, 64, 4096, 5001)
			if err != nil {
				t.Fatal(err)
			}
			if res.Bytes != 64*4096 {
				t.Fatalf("bytes = %d", res.Bytes)
			}
			if res.SendMbps() <= 0 || res.RecvMbps() <= 0 {
				t.Fatalf("rates = %.1f / %.1f", res.SendMbps(), res.RecvMbps())
			}
		})
	}
}

func TestAllConfigsCarryRTCP(t *testing.T) {
	for _, cfg := range Configs {
		cfg := cfg
		t.Run(string(cfg), func(t *testing.T) {
			p, err := NewPair(cfg, time.Millisecond)
			if err != nil {
				t.Fatal(err)
			}
			defer p.Halt()
			usec, err := RTCP(p, 50, 5002)
			if err != nil {
				t.Fatal(err)
			}
			if usec <= 0 {
				t.Fatalf("rtt = %f", usec)
			}
		})
	}
}

// TestOSKitPathShape checks the mechanism behind Table 1's shape on the
// OSKit configuration: inbound packets are wrapped zero-copy, outbound
// data segments are chained (and therefore copied by the Linux glue).
func TestOSKitPathShape(t *testing.T) {
	p, err := NewPair(OSKit, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Halt()
	if _, err := TTCP(p, 256, 4096, 5003); err != nil {
		t.Fatal(err)
	}
	ss := p.Sender.BSD.StatsSnapshot()
	rs := p.Receiver.BSD.StatsSnapshot()
	if ss.TxChained == 0 {
		t.Errorf("sender sent no chained packets: %+v", ss)
	}
	if ss.TxChained < ss.TxContiguous {
		t.Errorf("data segments mostly contiguous (%d chained, %d contiguous): the send-copy story collapses",
			ss.TxChained, ss.TxContiguous)
	}
	if rs.RxZeroCopy == 0 || rs.RxCopied != 0 {
		t.Errorf("receive path not zero-copy: %+v", rs)
	}
}

// TestPathShapeMatrix locks down the §4.7.3 decision tree for both OSKit
// configurations, table-driven: the default (stock) configuration must
// keep paying the Table-1 flatten copy for its chained sends, and the
// opt-in fast path must eliminate it — every chained send leaving via
// the scatter-gather branch instead, with the QuickPool service visibly
// feeding the packet path.  Either row regressing silently would
// invalidate the E9/E11 story.
func TestPathShapeMatrix(t *testing.T) {
	cases := []struct {
		name string
		opts Options
		port uint16
	}{
		{"default", Options{}, 5005},
		{"fastpath", Options{FastPath: true}, 5006},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			p, err := NewPairOpts(OSKit, time.Millisecond, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			defer p.Halt()
			// The cluster work generalized the NIC's segment attachment;
			// the two-node rig must still ride the plain shared wire —
			// no switch, no queueing stage — so the Table-1 path stays
			// byte-identical to what it was before clusters existed.
			for _, n := range []*Node{p.Sender, p.Receiver} {
				if hw.WireOfForTest(n.NIC()) != p.Wire {
					t.Fatalf("%s not attached directly to the pair's wire", n.Machine.Name)
				}
			}
			if _, err := TTCP(p, 256, 4096, tc.port); err != nil {
				t.Fatal(err)
			}

			// Invariants shared by both rows: the stack still chains
			// its data segments and the receive side stays zero-copy —
			// the fast path changes how chains *leave*, not whether
			// they exist.
			ss := p.Sender.BSD.StatsSnapshot()
			rs := p.Receiver.BSD.StatsSnapshot()
			if ss.TxChained == 0 || ss.TxChained < ss.TxContiguous {
				t.Errorf("data segments not predominantly chained (%d chained, %d contiguous)",
					ss.TxChained, ss.TxContiguous)
			}
			if rs.RxZeroCopy == 0 || rs.RxCopied != 0 {
				t.Errorf("receive path not zero-copy: %+v", rs)
			}

			stat := func(set, name string) int64 {
				v, _ := p.Sender.Stat(set, name)
				return v
			}
			rstat := func(set, name string) int64 {
				v, _ := p.Receiver.Stat(set, name)
				return v
			}
			sg := stat("linux_dev", "xmit.sg")
			flattened := stat("linux_dev", "xmit.flattened")
			if tc.opts.FastPath {
				if sg == 0 {
					t.Error("fastpath: no scatter-gather sends recorded")
				}
				if flattened != 0 {
					t.Errorf("fastpath: %d sends still flatten-copied", flattened)
				}
				if g := p.Sender.NIC().TxGathers(); g == 0 {
					t.Error("fastpath: NIC gather engine never saw a scattered frame")
				}
				if a := stat("quickpool", "qp.allocs"); a == 0 {
					t.Error("fastpath: QuickPool served no packet allocations")
				}
				if h := stat("quickpool", "qp.hits"); h == 0 {
					t.Error("fastpath: QuickPool free lists never hit (pool not cycling)")
				}
				if f, a := stat("quickpool", "qp.frees"), stat("quickpool", "qp.allocs"); f > a {
					t.Errorf("quickpool imbalance: %d frees > %d allocs", f, a)
				}
				// E12 receive side: the receiver's inbound frames left its
				// ring through the budgeted poll loop with interrupts
				// mitigated, and the stack ingested them in batches.
				if v := rstat("linux_dev", "rx.batched-frames"); v == 0 {
					t.Error("fastpath: no frames drained through the receive poll loop")
				}
				if v := rstat("linux_dev", "rx.intr-suppressed"); v == 0 {
					t.Error("fastpath: interrupt mitigation never suppressed an edge")
				}
				if v := rstat("freebsd_net", "ether.rx_batches"); v == 0 {
					t.Error("fastpath: the stack saw no batched deliveries")
				}
			} else {
				if flattened == 0 {
					t.Error("default: chained sends recorded no flatten copies")
				}
				if sg != 0 {
					t.Errorf("default: %d scatter-gather sends on the stock configuration", sg)
				}
				if g := p.Sender.NIC().TxGathers(); g != 0 {
					t.Errorf("default: NIC saw %d scattered frames", g)
				}
				if _, ok := p.Sender.Stat("quickpool", "qp.allocs"); ok {
					t.Error("default: quickpool stats set registered without the option")
				}
				// E12 receive side, pinned off: stock nodes keep the
				// per-frame donor ISR — no batched drains, no suppressed
				// interrupts, no batched stack deliveries, on either node.
				for _, n := range []*Node{p.Sender, p.Receiver} {
					if v := n.NIC().RxBatched(); v != 0 {
						t.Errorf("default: %s NIC drained %d frames via RxPopBatch", n.Machine.Name, v)
					}
					if _, suppr, _ := n.NIC().RxIntrCounters(); suppr != 0 {
						t.Errorf("default: %s NIC suppressed %d receive interrupts", n.Machine.Name, suppr)
					}
				}
				if v := rstat("linux_dev", "rx.batched-frames"); v != 0 {
					t.Errorf("default: %d frames counted through the poll loop", v)
				}
				if v := rstat("linux_dev", "rx.intr-suppressed"); v != 0 {
					t.Errorf("default: %d suppressed interrupts on the stock configuration", v)
				}
				if v := rstat("freebsd_net", "ether.rx_batches"); v != 0 {
					t.Errorf("default: %d batched deliveries on the stock configuration", v)
				}
			}

			// E16 allocation fronts, pinned off on every uniprocessor
			// row: no magazine layer engages, no per-CPU hit counter is
			// even registered, on either node.  The multi-CPU fronts
			// are covered by their own tests and the E16 bench pins.
			for _, n := range []*Node{p.Sender, p.Receiver} {
				if n.QP != nil && n.QP.MagazinesEnabled() {
					t.Errorf("%s: QuickPool magazines enabled on one CPU", n.Machine.Name)
				}
				if n.BSD != nil && n.BSD.Glue().Malloc.CPUCacheEnabled() {
					t.Errorf("%s: BSD malloc per-CPU front enabled on one CPU", n.Machine.Name)
				}
				for _, row := range [][2]string{
					{"quickpool", "qp.magazine_hits"},
					{"bsd_malloc", "malloc.cpu_hits"},
					{"linux_dev", "kmalloc.cpu_hits"},
				} {
					if _, ok := n.Stat(row[0], row[1]); ok {
						t.Errorf("%s: %s row registered on one CPU", n.Machine.Name, row[1])
					}
				}
			}

			// E15 file-serving shape, same decision tree: boot a
			// disk-carrying cluster in the row's configuration and push
			// the HTTP workload through libc.Sendfile.  The fast path
			// must move every body byte as pinned buffer-cache pages
			// with the transport checksum riding the gather engine; the
			// default path must never negotiate either seam.
			c, err := NewCluster(OSKit, 2, time.Millisecond, Options{
				FastPath: tc.opts.FastPath, DiskSectors: 16384,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer c.Halt()
			res, err := HTTPGet(c, HTTPOptions{
				Requests: 24, Workers: 2, Files: 3, FileBytes: 20000,
				Seed: 7, Port: tc.port + 100, Probes: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Failed != 0 {
				t.Fatalf("HTTP workload failed %d of %d requests: %v", res.Failed, res.Failed+res.Requests, res.Errors)
			}
			cstat := func(set, name string) int64 {
				v, _ := c.Server().Stat(set, name)
				return v
			}
			if tc.opts.FastPath {
				if v := cstat("freebsd_net", "sendfile.pages_mapped"); v == 0 {
					t.Error("fastpath: sendfile mapped no buffer-cache pages")
				}
				if v := cstat("freebsd_net", "sendfile.bytes_copied"); v != 0 {
					t.Errorf("fastpath: sendfile copied %d payload bytes", v)
				}
				if v := cstat("linux_dev", "xmit.csum_offloaded"); v == 0 {
					t.Error("fastpath: no transport checksum rode the gather engine")
				}
				if v := cstat("netbsd_fs", "bcache.pinned"); v != 0 {
					t.Errorf("fastpath: %d buffer-cache pages still pinned after the run", v)
				}
			} else {
				if v := cstat("freebsd_net", "sendfile.pages_mapped"); v != 0 {
					t.Errorf("default: %d pages mapped on the stock configuration", v)
				}
				if v := cstat("freebsd_net", "sendfile.bytes_copied"); v == 0 {
					t.Error("default: sendfile copy path moved no bytes (did the seam engage silently?)")
				}
				if v := cstat("linux_dev", "xmit.csum_offloaded"); v != 0 {
					t.Errorf("default: %d checksums deferred on the stock configuration", v)
				}
			}
		})
	}
}

// TestFreeBSDNativePathShape: the all-BSD configuration never crosses a
// buffer-representation boundary.
func TestFreeBSDNativePathShape(t *testing.T) {
	p, err := NewPair(FreeBSD, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Halt()
	if _, err := TTCP(p, 64, 4096, 5004); err != nil {
		t.Fatal(err)
	}
	// The COM receive sink is never involved: no zero-copy/copied
	// accounting happens on the native path.
	rs := p.Receiver.BSD.StatsSnapshot()
	if rs.RxZeroCopy != 0 || rs.RxCopied != 0 {
		t.Errorf("native path went through the COM sink: %+v", rs)
	}
	if rs.TCPIn == 0 {
		t.Errorf("no TCP input recorded: %+v", rs)
	}
}
