package evalrig

import (
	"fmt"
	"hash/crc32"
	"math/rand"
	"sync"
	"time"
)

// The two evaluation workloads, exactly as §5 describes them: ttcp
// measures TCP bandwidth streaming fixed-size blocks, rtcp measures the
// time for a 1-byte round trip.

// TTCPResult is one bandwidth measurement.
type TTCPResult struct {
	Bytes       int
	SendSeconds float64 // sender's wall time: write start to close acked
	RecvSeconds float64 // receiver's wall time: first byte to EOF
}

// SendMbps is the transmit bandwidth in megabits per second.
func (r TTCPResult) SendMbps() float64 { return mbps(r.Bytes, r.SendSeconds) }

// RecvMbps is the receive bandwidth in megabits per second.
func (r TTCPResult) RecvMbps() float64 { return mbps(r.Bytes, r.RecvSeconds) }

func mbps(bytes int, secs float64) float64 {
	if secs <= 0 {
		return 0
	}
	return float64(bytes) * 8 / secs / 1e6
}

// TTCP streams blocks×blockSize bytes sender→receiver (the paper ran
// 131072 × 4096 = 512 MB; callers scale) and returns both sides' timing.
func TTCP(p *Pair, blocks, blockSize int, port uint16) (TTCPResult, error) {
	res := TTCPResult{Bytes: blocks * blockSize}

	type recvOut struct {
		secs float64
		err  error
	}
	recvDone := make(chan recvOut, 1)
	ready := make(chan error, 1)
	go func() {
		c := p.Receiver.C
		lfd, err := c.Socket(2, 1, 0)
		if err != nil {
			ready <- err
			return
		}
		defer func() { _ = c.Close(lfd) }()
		if err := c.Bind(lfd, Addr(p.Receiver.IP, port)); err != nil {
			ready <- err
			return
		}
		if err := c.Listen(lfd, 1); err != nil {
			ready <- err
			return
		}
		_ = c.SetSockOpt(lfd, "rcvbuf", 32*1024)
		ready <- nil
		fd, _, err := c.Accept(lfd)
		if err != nil {
			recvDone <- recvOut{err: err}
			return
		}
		defer func() { _ = c.Close(fd) }()
		_ = c.SetSockOpt(fd, "rcvbuf", 32*1024)
		buf := make([]byte, blockSize)
		start := time.Now()
		total := 0
		for {
			n, err := c.Read(fd, buf)
			if err != nil {
				recvDone <- recvOut{err: err}
				return
			}
			if n == 0 {
				break
			}
			total += n
		}
		secs := time.Since(start).Seconds()
		if total != blocks*blockSize {
			recvDone <- recvOut{err: fmt.Errorf("ttcp: received %d of %d bytes", total, blocks*blockSize)}
			return
		}
		recvDone <- recvOut{secs: secs}
	}()
	if err := <-ready; err != nil {
		return res, err
	}

	c := p.Sender.C
	fd, err := c.Socket(2, 1, 0)
	if err != nil {
		return res, err
	}
	defer func() { _ = c.Close(fd) }()
	// Real ttcp raises the socket buffers (-b); a deep pipe keeps the
	// sender from blocking on every ACK round trip.
	_ = c.SetSockOpt(fd, "sndbuf", 32*1024)
	if err := c.Connect(fd, Addr(p.Receiver.IP, port)); err != nil {
		return res, err
	}
	block := make([]byte, blockSize)
	for i := range block {
		block[i] = byte(i)
	}
	start := time.Now()
	for i := 0; i < blocks; i++ {
		sent := 0
		for sent < blockSize {
			n, err := c.Write(fd, block[sent:])
			if err != nil {
				return res, err
			}
			sent += n
		}
	}
	if err := c.Shutdown(fd, 1); err != nil {
		return res, err
	}
	res.SendSeconds = time.Since(start).Seconds()

	out := <-recvDone
	if out.err != nil {
		return res, out.err
	}
	res.RecvSeconds = out.secs
	return res, nil
}

// TTCPVerified is ttcp with end-to-end integrity: the sender streams
// blocks×blockSize bytes of a seed-determined pseudo-random pattern and
// both ends CRC-32 what they saw.  Equal sums prove the byte stream
// survived whatever the wire did to it — the assertion chaos tests make
// after running the Table-1 transfer under a hostile fault regime,
// where TCP's own checksums and retransmission are what is on trial.
func TTCPVerified(p *Pair, blocks, blockSize int, port uint16, seed int64) (sentSum, recvSum uint32, err error) {
	type recvOut struct {
		sum uint32
		err error
	}
	recvDone := make(chan recvOut, 1)
	ready := make(chan error, 1)
	go func() {
		c := p.Receiver.C
		lfd, err := c.Socket(2, 1, 0)
		if err != nil {
			ready <- err
			return
		}
		defer func() { _ = c.Close(lfd) }()
		if err := c.Bind(lfd, Addr(p.Receiver.IP, port)); err != nil {
			ready <- err
			return
		}
		if err := c.Listen(lfd, 1); err != nil {
			ready <- err
			return
		}
		ready <- nil
		fd, _, err := c.Accept(lfd)
		if err != nil {
			recvDone <- recvOut{err: err}
			return
		}
		defer func() { _ = c.Close(fd) }()
		_ = c.SetSockOpt(fd, "rcvbuf", 32*1024)
		buf := make([]byte, blockSize)
		sum := crc32.NewIEEE()
		total := 0
		for {
			n, err := c.Read(fd, buf)
			if err != nil {
				recvDone <- recvOut{err: err}
				return
			}
			if n == 0 {
				break
			}
			_, _ = sum.Write(buf[:n])
			total += n
		}
		if total != blocks*blockSize {
			recvDone <- recvOut{err: fmt.Errorf("ttcp: received %d of %d bytes", total, blocks*blockSize)}
			return
		}
		recvDone <- recvOut{sum: sum.Sum32()}
	}()
	if err := <-ready; err != nil {
		return 0, 0, err
	}

	c := p.Sender.C
	fd, err := c.Socket(2, 1, 0)
	if err != nil {
		return 0, 0, err
	}
	defer func() { _ = c.Close(fd) }()
	_ = c.SetSockOpt(fd, "sndbuf", 32*1024)
	if err := c.Connect(fd, Addr(p.Receiver.IP, port)); err != nil {
		return 0, 0, err
	}
	rng := rand.New(rand.NewSource(seed))
	block := make([]byte, blockSize)
	sum := crc32.NewIEEE()
	for i := 0; i < blocks; i++ {
		rng.Read(block)
		_, _ = sum.Write(block)
		sent := 0
		for sent < blockSize {
			n, err := c.Write(fd, block[sent:])
			if err != nil {
				return 0, 0, err
			}
			sent += n
		}
	}
	sentSum = sum.Sum32()
	if err := c.Shutdown(fd, 1); err != nil {
		return sentSum, 0, err
	}
	out := <-recvDone
	if out.err != nil {
		return sentSum, 0, out.err
	}
	return sentSum, out.sum, nil
}

// TTCPMulti is ttcp across several concurrent TCP streams — the E14
// workload.  One stream exercises one connection, one RSS ring, one
// CPU's worth of the stack; N streams on an SMP pair spread across the
// receive rings (4-tuple hash) and the per-connection locks, which is
// where multi-CPU bandwidth comes from.  Both nodes are driven from
// several goroutines, so every socket call goes through Node.Do: on an
// SMP pair Do is the identity and the stack's own locks carry the
// concurrency; on a uniprocessor pair the caller must Serialize the
// nodes first and Do applies the §4.7.4 component lock.
//
// The result aggregates all streams: Bytes is the total across streams
// and the timings span first start to last finish, so SendMbps/RecvMbps
// report the pair's aggregate bandwidth.
func TTCPMulti(p *Pair, streams, blocks, blockSize int, port uint16) (TTCPResult, error) {
	if streams < 1 {
		streams = 1
	}
	res := TTCPResult{Bytes: streams * blocks * blockSize}

	rc := p.Receiver
	var lfd int
	var err error
	rc.Do(func() {
		lfd, err = rc.C.Socket(2, 1, 0)
		if err != nil {
			return
		}
		if err = rc.C.Bind(lfd, Addr(rc.IP, port)); err != nil {
			return
		}
		err = rc.C.Listen(lfd, streams)
	})
	if err != nil {
		return res, err
	}
	defer rc.Do(func() { _ = rc.C.Close(lfd) })

	type out struct {
		n   int
		err error
	}
	recvDone := make(chan out, streams)
	var recvStart, recvEnd struct {
		sync.Mutex
		first time.Time
		last  time.Time
	}
	for i := 0; i < streams; i++ {
		go func() {
			var fd int
			var err error
			rc.Do(func() { fd, _, err = rc.C.Accept(lfd) })
			if err != nil {
				recvDone <- out{err: err}
				return
			}
			defer rc.Do(func() { _ = rc.C.Close(fd) })
			rc.Do(func() { _ = rc.C.SetSockOpt(fd, "rcvbuf", 32*1024) })
			buf := make([]byte, blockSize)
			started := false
			total := 0
			for {
				var n int
				rc.Do(func() { n, err = rc.C.Read(fd, buf) })
				if err != nil {
					recvDone <- out{err: err}
					return
				}
				if !started {
					started = true
					recvStart.Lock()
					if recvStart.first.IsZero() {
						recvStart.first = time.Now()
					}
					recvStart.Unlock()
				}
				if n == 0 {
					break
				}
				total += n
			}
			recvEnd.Lock()
			recvEnd.last = time.Now()
			recvEnd.Unlock()
			recvDone <- out{n: total}
		}()
	}

	sc := p.Sender
	sendDone := make(chan out, streams)
	start := time.Now()
	for i := 0; i < streams; i++ {
		go func() {
			var fd int
			var err error
			sc.Do(func() { fd, err = sc.C.Socket(2, 1, 0) })
			if err != nil {
				sendDone <- out{err: err}
				return
			}
			defer sc.Do(func() { _ = sc.C.Close(fd) })
			sc.Do(func() { _ = sc.C.SetSockOpt(fd, "sndbuf", 32*1024) })
			sc.Do(func() { err = sc.C.Connect(fd, Addr(rc.IP, port)) })
			if err != nil {
				sendDone <- out{err: fmt.Errorf("connect: %w", err)}
				return
			}
			block := make([]byte, blockSize)
			for b := range block {
				block[b] = byte(b)
			}
			total := 0
			for b := 0; b < blocks; b++ {
				sent := 0
				for sent < blockSize {
					var n int
					sc.Do(func() { n, err = sc.C.Write(fd, block[sent:]) })
					if err != nil {
						sendDone <- out{err: err}
						return
					}
					sent += n
				}
				total += blockSize
			}
			sc.Do(func() { err = sc.C.Shutdown(fd, 1) })
			if err != nil {
				sendDone <- out{err: err}
				return
			}
			sendDone <- out{n: total}
		}()
	}

	sendTotal := 0
	for i := 0; i < streams; i++ {
		o := <-sendDone
		if o.err != nil {
			return res, fmt.Errorf("ttcp-multi send stream: %w", o.err)
		}
		sendTotal += o.n
	}
	res.SendSeconds = time.Since(start).Seconds()
	recvTotal := 0
	for i := 0; i < streams; i++ {
		o := <-recvDone
		if o.err != nil {
			return res, fmt.Errorf("ttcp-multi recv stream: %w", o.err)
		}
		recvTotal += o.n
	}
	if sendTotal != res.Bytes || recvTotal != res.Bytes {
		return res, fmt.Errorf("ttcp-multi: moved %d sent / %d received of %d bytes", sendTotal, recvTotal, res.Bytes)
	}
	recvStart.Lock()
	first := recvStart.first
	recvStart.Unlock()
	recvEnd.Lock()
	last := recvEnd.last
	recvEnd.Unlock()
	if !first.IsZero() && last.After(first) {
		res.RecvSeconds = last.Sub(first).Seconds()
	}
	return res, nil
}

// RTCP measures 1-byte round trips (the paper's latency benchmark,
// similar to hbench's lat_tcp), returning microseconds per round trip.
func RTCP(p *Pair, rounds int, port uint16) (usec float64, err error) {
	ready := make(chan error, 1)
	done := make(chan error, 1)
	go func() {
		c := p.Receiver.C
		lfd, err := c.Socket(2, 1, 0)
		if err != nil {
			ready <- err
			return
		}
		defer func() { _ = c.Close(lfd) }()
		if err := c.Bind(lfd, Addr(p.Receiver.IP, port)); err != nil {
			ready <- err
			return
		}
		if err := c.Listen(lfd, 1); err != nil {
			ready <- err
			return
		}
		ready <- nil
		fd, _, err := c.Accept(lfd)
		if err != nil {
			done <- err
			return
		}
		defer func() { _ = c.Close(fd) }()
		var b [1]byte
		for {
			n, err := c.Read(fd, b[:])
			if err != nil {
				done <- err
				return
			}
			if n == 0 {
				done <- nil
				return
			}
			if _, err := c.Write(fd, b[:]); err != nil {
				done <- err
				return
			}
		}
	}()
	if err := <-ready; err != nil {
		return 0, err
	}

	c := p.Sender.C
	fd, err := c.Socket(2, 1, 0)
	if err != nil {
		return 0, err
	}
	defer func() { _ = c.Close(fd) }()
	if err := c.SetSockOpt(fd, "nodelay", 1); err != nil {
		return 0, err
	}
	if err := c.Connect(fd, Addr(p.Receiver.IP, port)); err != nil {
		return 0, err
	}
	var b [1]byte
	// Warm up (ARP, caches).
	for i := 0; i < 4; i++ {
		if _, err := c.Write(fd, b[:]); err != nil {
			return 0, err
		}
		if _, err := c.Read(fd, b[:]); err != nil {
			return 0, err
		}
	}
	start := time.Now()
	for i := 0; i < rounds; i++ {
		if _, err := c.Write(fd, b[:]); err != nil {
			return 0, err
		}
		if n, err := c.Read(fd, b[:]); err != nil || n != 1 {
			return 0, fmt.Errorf("rtcp: read %d, %v", n, err)
		}
	}
	elapsed := time.Since(start)
	_ = c.Shutdown(fd, 1)
	<-done
	return float64(elapsed.Microseconds()) / float64(rounds), nil
}
