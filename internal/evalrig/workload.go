package evalrig

import (
	"fmt"
	"hash/crc32"
	"math/rand"
	"time"
)

// The two evaluation workloads, exactly as §5 describes them: ttcp
// measures TCP bandwidth streaming fixed-size blocks, rtcp measures the
// time for a 1-byte round trip.

// TTCPResult is one bandwidth measurement.
type TTCPResult struct {
	Bytes       int
	SendSeconds float64 // sender's wall time: write start to close acked
	RecvSeconds float64 // receiver's wall time: first byte to EOF
}

// SendMbps is the transmit bandwidth in megabits per second.
func (r TTCPResult) SendMbps() float64 { return mbps(r.Bytes, r.SendSeconds) }

// RecvMbps is the receive bandwidth in megabits per second.
func (r TTCPResult) RecvMbps() float64 { return mbps(r.Bytes, r.RecvSeconds) }

func mbps(bytes int, secs float64) float64 {
	if secs <= 0 {
		return 0
	}
	return float64(bytes) * 8 / secs / 1e6
}

// TTCP streams blocks×blockSize bytes sender→receiver (the paper ran
// 131072 × 4096 = 512 MB; callers scale) and returns both sides' timing.
func TTCP(p *Pair, blocks, blockSize int, port uint16) (TTCPResult, error) {
	res := TTCPResult{Bytes: blocks * blockSize}

	type recvOut struct {
		secs float64
		err  error
	}
	recvDone := make(chan recvOut, 1)
	ready := make(chan error, 1)
	go func() {
		c := p.Receiver.C
		lfd, err := c.Socket(2, 1, 0)
		if err != nil {
			ready <- err
			return
		}
		defer func() { _ = c.Close(lfd) }()
		if err := c.Bind(lfd, Addr(p.Receiver.IP, port)); err != nil {
			ready <- err
			return
		}
		if err := c.Listen(lfd, 1); err != nil {
			ready <- err
			return
		}
		_ = c.SetSockOpt(lfd, "rcvbuf", 32*1024)
		ready <- nil
		fd, _, err := c.Accept(lfd)
		if err != nil {
			recvDone <- recvOut{err: err}
			return
		}
		defer func() { _ = c.Close(fd) }()
		_ = c.SetSockOpt(fd, "rcvbuf", 32*1024)
		buf := make([]byte, blockSize)
		start := time.Now()
		total := 0
		for {
			n, err := c.Read(fd, buf)
			if err != nil {
				recvDone <- recvOut{err: err}
				return
			}
			if n == 0 {
				break
			}
			total += n
		}
		secs := time.Since(start).Seconds()
		if total != blocks*blockSize {
			recvDone <- recvOut{err: fmt.Errorf("ttcp: received %d of %d bytes", total, blocks*blockSize)}
			return
		}
		recvDone <- recvOut{secs: secs}
	}()
	if err := <-ready; err != nil {
		return res, err
	}

	c := p.Sender.C
	fd, err := c.Socket(2, 1, 0)
	if err != nil {
		return res, err
	}
	defer func() { _ = c.Close(fd) }()
	// Real ttcp raises the socket buffers (-b); a deep pipe keeps the
	// sender from blocking on every ACK round trip.
	_ = c.SetSockOpt(fd, "sndbuf", 32*1024)
	if err := c.Connect(fd, Addr(p.Receiver.IP, port)); err != nil {
		return res, err
	}
	block := make([]byte, blockSize)
	for i := range block {
		block[i] = byte(i)
	}
	start := time.Now()
	for i := 0; i < blocks; i++ {
		sent := 0
		for sent < blockSize {
			n, err := c.Write(fd, block[sent:])
			if err != nil {
				return res, err
			}
			sent += n
		}
	}
	if err := c.Shutdown(fd, 1); err != nil {
		return res, err
	}
	res.SendSeconds = time.Since(start).Seconds()

	out := <-recvDone
	if out.err != nil {
		return res, out.err
	}
	res.RecvSeconds = out.secs
	return res, nil
}

// TTCPVerified is ttcp with end-to-end integrity: the sender streams
// blocks×blockSize bytes of a seed-determined pseudo-random pattern and
// both ends CRC-32 what they saw.  Equal sums prove the byte stream
// survived whatever the wire did to it — the assertion chaos tests make
// after running the Table-1 transfer under a hostile fault regime,
// where TCP's own checksums and retransmission are what is on trial.
func TTCPVerified(p *Pair, blocks, blockSize int, port uint16, seed int64) (sentSum, recvSum uint32, err error) {
	type recvOut struct {
		sum uint32
		err error
	}
	recvDone := make(chan recvOut, 1)
	ready := make(chan error, 1)
	go func() {
		c := p.Receiver.C
		lfd, err := c.Socket(2, 1, 0)
		if err != nil {
			ready <- err
			return
		}
		defer func() { _ = c.Close(lfd) }()
		if err := c.Bind(lfd, Addr(p.Receiver.IP, port)); err != nil {
			ready <- err
			return
		}
		if err := c.Listen(lfd, 1); err != nil {
			ready <- err
			return
		}
		ready <- nil
		fd, _, err := c.Accept(lfd)
		if err != nil {
			recvDone <- recvOut{err: err}
			return
		}
		defer func() { _ = c.Close(fd) }()
		_ = c.SetSockOpt(fd, "rcvbuf", 32*1024)
		buf := make([]byte, blockSize)
		sum := crc32.NewIEEE()
		total := 0
		for {
			n, err := c.Read(fd, buf)
			if err != nil {
				recvDone <- recvOut{err: err}
				return
			}
			if n == 0 {
				break
			}
			_, _ = sum.Write(buf[:n])
			total += n
		}
		if total != blocks*blockSize {
			recvDone <- recvOut{err: fmt.Errorf("ttcp: received %d of %d bytes", total, blocks*blockSize)}
			return
		}
		recvDone <- recvOut{sum: sum.Sum32()}
	}()
	if err := <-ready; err != nil {
		return 0, 0, err
	}

	c := p.Sender.C
	fd, err := c.Socket(2, 1, 0)
	if err != nil {
		return 0, 0, err
	}
	defer func() { _ = c.Close(fd) }()
	_ = c.SetSockOpt(fd, "sndbuf", 32*1024)
	if err := c.Connect(fd, Addr(p.Receiver.IP, port)); err != nil {
		return 0, 0, err
	}
	rng := rand.New(rand.NewSource(seed))
	block := make([]byte, blockSize)
	sum := crc32.NewIEEE()
	for i := 0; i < blocks; i++ {
		rng.Read(block)
		_, _ = sum.Write(block)
		sent := 0
		for sent < blockSize {
			n, err := c.Write(fd, block[sent:])
			if err != nil {
				return 0, 0, err
			}
			sent += n
		}
	}
	sentSum = sum.Sum32()
	if err := c.Shutdown(fd, 1); err != nil {
		return sentSum, 0, err
	}
	out := <-recvDone
	if out.err != nil {
		return sentSum, 0, out.err
	}
	return sentSum, out.sum, nil
}

// RTCP measures 1-byte round trips (the paper's latency benchmark,
// similar to hbench's lat_tcp), returning microseconds per round trip.
func RTCP(p *Pair, rounds int, port uint16) (usec float64, err error) {
	ready := make(chan error, 1)
	done := make(chan error, 1)
	go func() {
		c := p.Receiver.C
		lfd, err := c.Socket(2, 1, 0)
		if err != nil {
			ready <- err
			return
		}
		defer func() { _ = c.Close(lfd) }()
		if err := c.Bind(lfd, Addr(p.Receiver.IP, port)); err != nil {
			ready <- err
			return
		}
		if err := c.Listen(lfd, 1); err != nil {
			ready <- err
			return
		}
		ready <- nil
		fd, _, err := c.Accept(lfd)
		if err != nil {
			done <- err
			return
		}
		defer func() { _ = c.Close(fd) }()
		var b [1]byte
		for {
			n, err := c.Read(fd, b[:])
			if err != nil {
				done <- err
				return
			}
			if n == 0 {
				done <- nil
				return
			}
			if _, err := c.Write(fd, b[:]); err != nil {
				done <- err
				return
			}
		}
	}()
	if err := <-ready; err != nil {
		return 0, err
	}

	c := p.Sender.C
	fd, err := c.Socket(2, 1, 0)
	if err != nil {
		return 0, err
	}
	defer func() { _ = c.Close(fd) }()
	if err := c.SetSockOpt(fd, "nodelay", 1); err != nil {
		return 0, err
	}
	if err := c.Connect(fd, Addr(p.Receiver.IP, port)); err != nil {
		return 0, err
	}
	var b [1]byte
	// Warm up (ARP, caches).
	for i := 0; i < 4; i++ {
		if _, err := c.Write(fd, b[:]); err != nil {
			return 0, err
		}
		if _, err := c.Read(fd, b[:]); err != nil {
			return 0, err
		}
	}
	start := time.Now()
	for i := 0; i < rounds; i++ {
		if _, err := c.Write(fd, b[:]); err != nil {
			return 0, err
		}
		if n, err := c.Read(fd, b[:]); err != nil || n != 1 {
			return 0, fmt.Errorf("rtcp: read %d, %v", n, err)
		}
	}
	elapsed := time.Since(start)
	_ = c.Shutdown(fd, 1)
	<-done
	return float64(elapsed.Microseconds()) / float64(rounds), nil
}
