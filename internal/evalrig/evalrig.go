// Package evalrig assembles the three system configurations of the
// paper's evaluation (§5, Tables 1 and 2) as pairs of simulated
// machines on one Ethernet wire:
//
//   - Linux: the monolithic baseline — Linux-style stack bound natively
//     to the donor driver, skbuffs end to end.
//   - FreeBSD: the all-BSD baseline — FreeBSD-derived stack with the
//     donor mbuf driver, mbufs end to end.
//   - OSKit: the paper's system — FreeBSD-derived stack over the
//     encapsulated Linux driver, bound through COM NetIO/BufIO, with
//     the §5 initialization sequence.
//
// The same application code (ttcp, rtcp, the examples) drives all three
// through the minimal C library's socket layer; only the configuration
// differs, which is the point of the comparison.
package evalrig

import (
	"fmt"
	"io"
	"time"

	"oskit/internal/com"
	"oskit/internal/core"
	"oskit/internal/dev"
	"oskit/internal/faults"
	bsdglue "oskit/internal/freebsd/glue"
	bsdnet "oskit/internal/freebsd/net"
	"oskit/internal/hw"
	"oskit/internal/kern"
	"oskit/internal/libc"
	linuxdev "oskit/internal/linux/dev"
	linuxnet "oskit/internal/linux/net"
	netbsdfs "oskit/internal/netbsd/fs"
	"oskit/internal/stats"
)

// Config names one evaluation configuration.
type Config string

// The three rows of Tables 1 and 2.
const (
	Linux   Config = "linux"
	FreeBSD Config = "freebsd"
	OSKit   Config = "oskit"
)

// Configs lists them in table order.
var Configs = []Config{Linux, FreeBSD, OSKit}

// Node is one booted machine with a socket layer.
type Node struct {
	Machine *hw.Machine
	Kernel  *kern.Kernel
	C       *libc.C
	IP      [4]byte

	BSD *bsdnet.Stack   // nil for the Linux configuration
	LX  *linuxnet.Stack // nil otherwise

	// QP is the node's QuickPool allocator service, non-nil only when
	// the node was booted with Options.FastPath (OSKit configuration).
	QP *libc.QuickPool

	// Disk is the node's IDE disk, non-nil only when booted with
	// Options.DiskSectors; FS and FSRoot are set by MountFS.
	Disk   *hw.Disk
	FS     *netbsdfs.FFS
	FSRoot com.Dir

	nic *hw.NIC

	// httpPopKey remembers the (seed, files, bytes) shape PopulateHTTP
	// last laid down, making repopulation a no-op across workload runs.
	httpPopKey string

	// lk is the node's §4.7.4 component lock, armed by Serialize for
	// rigs that drive one node from several process-level goroutines
	// (the cluster's churn workloads).  Pair workloads run one thread
	// per node and never arm it.
	lk         core.ComponentLock
	serialized bool
}

// Serialize applies the §4.7.4 ComponentLock recipe to the node: every
// subsequent component entry must go through Do, and the node's Sleep
// service releases the lock across blocking calls so other
// process-level threads can enter meanwhile.  Call once, after boot,
// before spawning concurrent callers.
func (n *Node) Serialize() {
	if n.serialized {
		return
	}
	n.serialized = true
	env := n.Kernel.Env
	env.Sleep = n.lk.WrapSleep(env.Sleep)
}

// Do runs one component call (socket operation, stats read) under the
// serialized node's lock.  On a node that was never Serialized it runs
// fn directly.
func (n *Node) Do(fn func()) {
	if !n.serialized {
		fn()
		return
	}
	n.lk.Enter()
	defer n.lk.Leave()
	fn()
}

// Options selects optional rig configuration beyond the Config row.
type Options struct {
	// FastPath boots OSKit nodes in the opt-in fast-path configuration:
	// the E11 send side (scatter-gather transmit through the
	// encapsulated driver, no mbuf-chain flatten copy, per-packet
	// allocations from a QuickPool registered as a discoverable
	// allocator service) plus the E12 receive side (NIC interrupt
	// mitigation, a budgeted poll loop replacing the donor ISR, and
	// batched delivery into the stack through com.NetIOBatch).  Ignored
	// by the Linux and FreeBSD configurations, which have no
	// representation boundary to shortcut.
	FastPath bool

	// CPUs powers each machine on with N logical CPUs (interrupt
	// dispatch contexts) and, for N > 1, switches the BSD-stack
	// configurations to the SMP discipline: the FreeBSD glue's spl
	// becomes vestigial and the per-connection locks of
	// internal/freebsd/net are the component's exclusion (E14).  A
	// FreeBSD-native node attaches its NIC with N receive rings
	// (AttachNativeMQ); an OSKit node with FastPath grows N RSS-hashed
	// rings drained by N polled receive loops on N CPUs.  0 or 1 means
	// the unchanged uniprocessor rig — every default path is
	// byte-identical to CPUs-absent (TestPathShapeMatrix pins this).
	// The Linux configuration ignores the SMP discipline (the
	// monolithic baseline stays serialized) but still boots with N
	// CPUs.
	CPUs int

	// DiskSectors, when nonzero, attaches an IDE disk of that many
	// 512-byte sectors to the machine before boot — the HTTP
	// file-serving workload (E15) mounts an FFS on it via
	// Node.MountFS.  In a Cluster only the server node (Nodes[0])
	// receives the disk; generators have no use for one.
	DiskSectors uint32

	// SendfileCopy and SoftCsum each peel one E15 leg off the
	// fast-path configuration, for the sendfile ablation benchmark:
	// SendfileCopy keeps SendFile on its read-and-copy loop (the page
	// seam stays un-negotiated), SoftCsum keeps outbound transport
	// checksums in software (the gather engine still transmits, but
	// never finishes a deferred sum).  Both are ignored without
	// FastPath — the stock configuration has neither seam to peel.
	SendfileCopy bool
	SoftCsum     bool

	// GlobalAlloc peels the E16 per-CPU allocation fronts off the SMP
	// configurations, for the allocation-scaling ablation benchmark:
	// every allocator keeps its single global lock (the E14 behavior).
	// Ignored on uniprocessor rigs, where the fronts never engage
	// anyway.
	GlobalAlloc bool
}

// Pair is a two-machine testbed.  Sender and receiver may run different
// configurations: Table 1 is a sender-system × receiver-system matrix,
// which is how a system's send and receive paths are isolated (the
// fixed peer is not the bottleneck under measurement).
type Pair struct {
	SendCfg, RecvCfg Config
	Wire             *hw.EtherWire
	Sender, Receiver *Node

	// Faults is the pair's fault injector, nil until EnableFaults.
	Faults *faults.Injector
}

var (
	ipSender   = [4]byte{10, 1, 1, 1}
	ipReceiver = [4]byte{10, 1, 1, 2}
	netmask    = [4]byte{255, 255, 255, 0}
)

// NewPair boots a same-configuration sender/receiver pair with
// free-running clocks (tick = tickInterval of host time).
func NewPair(cfg Config, tickInterval time.Duration) (*Pair, error) {
	return NewMixedPairOpts(cfg, cfg, tickInterval, Options{})
}

// NewPairOpts is NewPair with rig options.
func NewPairOpts(cfg Config, tickInterval time.Duration, opts Options) (*Pair, error) {
	return NewMixedPairOpts(cfg, cfg, tickInterval, opts)
}

// NewMixedPair boots a sender in one configuration and a receiver in
// another (the stacks speak wire-standard TCP, so every combination
// interoperates).
func NewMixedPair(sendCfg, recvCfg Config, tickInterval time.Duration) (*Pair, error) {
	return NewMixedPairOpts(sendCfg, recvCfg, tickInterval, Options{})
}

// NewMixedPairOpts is NewMixedPair with rig options, applied to both
// nodes.
func NewMixedPairOpts(sendCfg, recvCfg Config, tickInterval time.Duration, opts Options) (*Pair, error) {
	wire := hw.NewEtherWire()
	s, err := newNode(sendCfg, wire, 1, ipSender, tickInterval, opts)
	if err != nil {
		return nil, err
	}
	r, err := newNode(recvCfg, wire, 2, ipReceiver, tickInterval, opts)
	if err != nil {
		s.Machine.Halt()
		return nil, err
	}
	return &Pair{SendCfg: sendCfg, RecvCfg: recvCfg, Wire: wire, Sender: s, Receiver: r}, nil
}

// Halt powers both machines off.
func (p *Pair) Halt() {
	if p.Faults != nil {
		p.Faults.Release()
		p.Faults = nil
	}
	if p.Sender.BSD != nil {
		p.Sender.BSD.Close()
	}
	if p.Receiver.BSD != nil {
		p.Receiver.BSD.Close()
	}
	p.Sender.drainAllocCaches()
	p.Receiver.drainAllocCaches()
	p.Sender.Machine.Halt()
	p.Receiver.Machine.Halt()
}

// drainAllocCaches returns every per-CPU-cached block to its backing
// allocator (E16) so the post-run ledgers — Imbalances, AllocPairs, the
// QuickPool slab accounting — see the same totals the global-lock
// configuration would.  Order matters: the kmalloc front frees into the
// QuickPool whose magazines are drained last.  A no-op on nodes whose
// fronts never engaged.
func (n *Node) drainAllocCaches() {
	if n.QP != nil {
		linuxdev.GlueFor(n.Kernel.Env).DrainAllocCache()
	}
	if n.BSD != nil {
		n.BSD.Glue().Malloc.DrainCPUCache()
	}
	if n.QP != nil {
		n.QP.DrainMagazines()
	}
}

func newNode(cfg Config, seg hw.Segment, unit byte, ip [4]byte, tick time.Duration, opts Options) (*Node, error) {
	cpus := opts.CPUs
	if cpus < 1 {
		cpus = 1
	}
	smp := cpus > 1
	m := hw.NewMachine(hw.Config{Name: fmt.Sprintf("%s-%d", cfg, unit), MemBytes: 64 << 20, CPUs: cpus})
	nic := m.AttachNIC(seg, [6]byte{2, 0, 0, 2, 0, unit}, hw.Model3C59X)
	var disk *hw.Disk
	if opts.DiskSectors > 0 {
		disk = hw.NewDisk(opts.DiskSectors)
		m.AttachDisk(disk)
	}
	k, err := kern.Setup(m, nil)
	if err != nil {
		m.Halt()
		return nil, err
	}
	n := &Node{Machine: m, Kernel: k, IP: ip, nic: nic, Disk: disk}
	n.C = libc.New(k.Env)

	switch cfg {
	case Linux:
		lk, devs := linuxdev.ProbeNative(k.Env)
		if len(devs) != 1 {
			m.Halt()
			return nil, fmt.Errorf("evalrig: native probe found %d devices", len(devs))
		}
		st, err := linuxnet.NewStack(lk, devs[0], ip, netmask)
		if err != nil {
			m.Halt()
			return nil, err
		}
		n.LX = st
		// The monolithic stack has no environment handle (it sees only
		// the legacy kernel), so the configuration registers its stats.
		k.Env.Registry.Register(com.StatsIID, st.StatsSet())
		f := st.SocketFactory()
		n.C.SetSocketCreator(f)
		f.Release()

	case FreeBSD:
		g := bsdglue.New(k.Env)
		if smp {
			g.SetSMP(true)
		}
		st := bsdnet.NewStack(g)
		if smp {
			// N RSS-hashed receive rings, one per CPU, each ring's
			// interrupt line affinity-routed so drains run concurrently.
			st.AttachNativeMQ(nic, cpus)
			if !opts.GlobalAlloc {
				// E16: per-CPU magazine fronts over the mbuf hot sizes,
				// so concurrent rings stop serializing on mallocLock.
				st.EnableAllocCache()
			}
		} else {
			st.AttachNative(nic)
		}
		st.Ifconfig(bsdnet.IPAddr(ip), bsdnet.IPAddr(netmask))
		n.BSD = st
		f := st.SocketFactory()
		n.C.SetSocketCreator(f)
		f.Release()

	case OSKit:
		// The §5 initialization sequence, call for call:
		//   fdev_linux_init_ethernet(); fdev_probe();
		//   oskit_freebsd_net_init(&sf); posix_set_socketcreator(sf);
		//   fdev_device_lookup(&fdev_ethernet_iid, &dev);
		//   oskit_freebsd_net_open_ether_if(dev[0], &eif);
		//   oskit_freebsd_net_ifconfig(eif, IPADDR, NETMASK);
		if smp && opts.FastPath {
			// Grow the controller to one RSS-hashed receive ring per
			// CPU before the encapsulated driver opens it; the polled
			// receive path then engages one drain loop per ring
			// (linuxdev/rxpoll.go), and the donor allocator switches to
			// its SMP lock.
			nic.ConfigureRxQueues(cpus)
			linuxdev.GlueFor(k.Env).SetSMP(true)
		}
		fw := dev.NewFramework(k.Env)
		linuxdev.InitEthernet(fw)
		fw.Probe()
		bg := bsdglue.New(k.Env)
		if smp {
			bg.SetSMP(true)
		}
		st := bsdnet.NewStack(bg)
		f := st.SocketFactory()
		n.C.SetSocketCreator(f)
		f.Release()
		devs := fw.LookupByIID(com.EtherDevIID)
		if len(devs) != 1 {
			m.Halt()
			return nil, fmt.Errorf("evalrig: fdev lookup found %d devices", len(devs))
		}
		if err := st.OpenEtherIf(devs[0].(com.EtherDev)); err != nil {
			m.Halt()
			return nil, err
		}
		devs[0].Release()
		st.Ifconfig(bsdnet.IPAddr(ip), bsdnet.IPAddr(netmask))
		n.BSD = st
		if opts.FastPath {
			// The opt-in fast-path configuration: one QuickPool per
			// node, published as the allocator service, feeding both
			// the glue's kmalloc and the stack's small mbufs, with the
			// glue's scatter-gather transmit switched on.
			pool := libc.NewQuickPoolService(n.C)
			linuxdev.GlueFor(k.Env).EnableFastPath(pool)
			st.SetPacketPool(pool)
			n.QP = pool
			// The E15 additions to the same opt-in configuration: file
			// serving exports buffer-cache pages as external mbufs
			// (zero payload copies file→NIC), and the transport
			// checksum rides the gather engine — the attached 3C59X
			// model advertises FeatCsum through its CsumChip adapter.
			// The ablation knobs peel one leg at a time.
			if !opts.SendfileCopy {
				st.EnableSendfileZeroCopy()
			}
			if !opts.SoftCsum {
				st.EnableCsumOffload()
			}
			if smp && !opts.GlobalAlloc {
				// E16: per-CPU allocation fronts at every layer of the
				// SMP fast path — magazine caches over the QuickPool,
				// a KBuf front over the glue's kmalloc route into it,
				// and magazine fronts over the BSD malloc's mbuf sizes
				// — so N CPUs stop serializing on the allocator locks.
				// Halt drains them (drainAllocCaches) so the soak
				// ledgers balance.
				pool.EnableMagazines()
				linuxdev.GlueFor(k.Env).EnableAllocCache()
				st.EnableAllocCache()
			}
		}

	default:
		m.Halt()
		return nil, fmt.Errorf("evalrig: unknown config %q", cfg)
	}

	if tick > 0 {
		m.Timer.Start(tick)
	}
	return n, nil
}

// NIC exposes the node's simulated Ethernet controller (tests and
// benches inspect its gather/drop counters).
func (n *Node) NIC() *hw.NIC { return n.nic }

// Addr builds a socket address on the rig's subnet.
func Addr(ip [4]byte, port uint16) com.SockAddr {
	return com.SockAddr{Family: com.AFInet, Addr: ip, Port: port}
}

// Stats discovers every com.Stats exporter registered on the node (the
// network stack, the BSD malloc, the kernel arena, …).  The returned
// objects each carry one COM reference; release them when done.
func (n *Node) Stats() []com.Stats {
	return stats.Discover(n.Kernel.Env.Registry)
}

// WriteStats renders the node's merged statistics table, omitting
// zero-valued rows (terse mode: a run touches a fraction of the
// registered statistics).
func (n *Node) WriteStats(w io.Writer) {
	sets := n.Stats()
	stats.WriteTable(w, sets, true)
	for _, s := range sets {
		s.Release()
	}
}

// Stat reads one named statistic from the node's exporter named set
// ("freebsd_net", "bsd_malloc", …); ok is false when either is missing.
func (n *Node) Stat(set, name string) (int64, bool) {
	sets := n.Stats()
	defer func() {
		for _, s := range sets {
			s.Release()
		}
	}()
	for _, s := range sets {
		if s.StatsName() == set {
			if v, ok := stats.Get(s.Snapshot(), name); ok {
				return v, true
			}
		}
	}
	return 0, false
}
