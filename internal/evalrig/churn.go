package evalrig

import (
	"fmt"
	"hash/crc32"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// The connection-churn workload (E13): a pool of load generators drives
// many short-lived TCP connect/request/response/close cycles at one
// server node, the regime that stresses connection lifecycle — listen
// queues, ephemeral ports, TIME_WAIT — rather than bulk data movement.

// ChurnOptions parameterizes ChurnTCP.
type ChurnOptions struct {
	Conns    int    // total connect/request/close cycles across all generators
	Workers  int    // concurrent workers per generator node
	ReqBytes int    // request size; the response echoes it back
	Port     uint16 // server port
	Backlog  int    // server listen backlog
	Seed     int64  // seeds every per-connection payload (reproducibility)
}

func (o *ChurnOptions) defaults() {
	if o.Conns <= 0 {
		o.Conns = 100
	}
	if o.Workers <= 0 {
		o.Workers = 4
	}
	if o.ReqBytes <= 0 {
		o.ReqBytes = 64
	}
	if o.Port == 0 {
		o.Port = 9000
	}
	if o.Backlog <= 0 {
		o.Backlog = 128
	}
}

// ChurnResult is one churn measurement.
type ChurnResult struct {
	Conns       int     // cycles completed with a verified echo
	Failed      int     // cycles that errored (connect, I/O, or bad echo)
	Seconds     float64 // wall time over the whole run
	ConnsPerSec float64
	P50Usec     float64 // median connect→response latency
	P99Usec     float64 // tail connect→response latency

	// CheckSum is the XOR of every completed connection's payload
	// CRC-32.  XOR is order-independent, so two runs with the same seed
	// and connection count produce the same sum no matter how the
	// scheduler interleaved the workers — the reproducibility assertion
	// the chaos tests make.
	CheckSum uint32

	// Errors samples the first few cycle failures (diagnosis, not
	// accounting — Failed is the count).
	Errors []string
}

// churnPayload builds connection i's request deterministically from the
// run seed; both ends of the verification derive from it alone.
func churnPayload(seed int64, i, n int) []byte {
	rng := rand.New(rand.NewSource(seed ^ int64(i)*0x9e3779b9))
	b := make([]byte, n)
	rng.Read(b)
	return b
}

// ChurnTCP runs the churn workload against Nodes[0] and reports
// throughput, tail latency, and the verification checksum.  Cycles that
// fail are counted, not retried.
func ChurnTCP(c *Cluster, o ChurnOptions) (ChurnResult, error) {
	o.defaults()
	res := ChurnResult{}
	srv := c.Server()
	gens := c.Generators()
	if len(gens) == 0 {
		return res, fmt.Errorf("evalrig: churn needs at least one generator node")
	}

	// Server: listener plus one echo handler per accepted connection.
	// The server closes first, so TIME_WAIT accumulates server-side —
	// deliberately, that is the lifecycle stress under test.
	var lfd int
	var err error
	srv.Do(func() {
		lfd, err = srv.C.Socket(2, 1, 0)
		if err != nil {
			return
		}
		if err = srv.C.Bind(lfd, Addr(srv.IP, o.Port)); err != nil {
			return
		}
		err = srv.C.Listen(lfd, o.Backlog)
	})
	if err != nil {
		return res, fmt.Errorf("evalrig: churn server setup: %w", err)
	}

	var handlers sync.WaitGroup
	acceptDone := make(chan struct{})
	go func() {
		defer close(acceptDone)
		for {
			var fd int
			var aerr error
			srv.Do(func() { fd, _, aerr = srv.C.Accept(lfd) })
			if aerr != nil {
				return // listener closed: run over
			}
			handlers.Add(1)
			go func(fd int) {
				defer handlers.Done()
				buf := make([]byte, o.ReqBytes)
				total := 0
				for total < o.ReqBytes {
					var n int
					var rerr error
					srv.Do(func() { n, rerr = srv.C.Read(fd, buf[total:]) })
					if rerr != nil || n == 0 {
						srv.Do(func() { _ = srv.C.Close(fd) })
						return
					}
					total += n
				}
				sent := 0
				for sent < o.ReqBytes {
					var n int
					var werr error
					srv.Do(func() { n, werr = srv.C.Write(fd, buf[sent:]) })
					if werr != nil {
						break
					}
					sent += n
				}
				srv.Do(func() { _ = srv.C.Close(fd) })
			}(fd)
		}
	}()

	// Generators: a shared ticket counter hands out connection indices;
	// every worker churns until the tickets run out.
	var next atomic.Int64
	var mu sync.Mutex
	var latencies []float64
	var workers sync.WaitGroup
	start := time.Now()
	for _, g := range gens {
		for w := 0; w < o.Workers; w++ {
			workers.Add(1)
			go func(g *Node) {
				defer workers.Done()
				buf := make([]byte, o.ReqBytes)
				for {
					i := int(next.Add(1) - 1)
					if i >= o.Conns {
						return
					}
					payload := churnPayload(o.Seed, i, o.ReqBytes)
					t0 := time.Now()
					sum, cerr := churnOne(g, srv.IP, o.Port, payload, buf)
					usec := float64(time.Since(t0).Microseconds())
					mu.Lock()
					if cerr != nil {
						res.Failed++
						if len(res.Errors) < 8 {
							res.Errors = append(res.Errors, fmt.Sprintf("conn %d: %v", i, cerr))
						}
					} else {
						res.Conns++
						res.CheckSum ^= sum
						latencies = append(latencies, usec)
					}
					mu.Unlock()
				}
			}(g)
		}
	}
	workers.Wait()
	res.Seconds = time.Since(start).Seconds()

	// Tear the server down: closing the listener ends the accept loop
	// (and aborts anything still queued on it).
	srv.Do(func() { _ = srv.C.Close(lfd) })
	<-acceptDone
	handlers.Wait()

	if res.Seconds > 0 {
		res.ConnsPerSec = float64(res.Conns) / res.Seconds
	}
	res.P50Usec, res.P99Usec = percentiles(latencies)
	return res, nil
}

// churnOne runs one connect/request/response/close cycle and returns
// the verified payload CRC.
func churnOne(g *Node, serverIP [4]byte, port uint16, payload, buf []byte) (uint32, error) {
	var fd int
	var err error
	g.Do(func() { fd, err = g.C.Socket(2, 1, 0) })
	if err != nil {
		return 0, err
	}
	defer g.Do(func() { _ = g.C.Close(fd) })
	g.Do(func() { err = g.C.Connect(fd, Addr(serverIP, port)) })
	if err != nil {
		return 0, fmt.Errorf("connect: %w", err)
	}
	sent := 0
	for sent < len(payload) {
		var n int
		g.Do(func() { n, err = g.C.Write(fd, payload[sent:]) })
		if err != nil {
			return 0, fmt.Errorf("write at %d: %w", sent, err)
		}
		sent += n
	}
	total := 0
	for total < len(payload) {
		var n int
		g.Do(func() { n, err = g.C.Read(fd, buf[total:]) })
		if err != nil {
			return 0, fmt.Errorf("read at %d: %w", total, err)
		}
		if n == 0 {
			return 0, fmt.Errorf("evalrig: churn echo truncated at %d of %d bytes", total, len(payload))
		}
		total += n
	}
	want := crc32.ChecksumIEEE(payload)
	if got := crc32.ChecksumIEEE(buf[:total]); got != want {
		return 0, fmt.Errorf("evalrig: churn echo corrupted (crc %08x != %08x)", got, want)
	}
	return want, nil
}

// percentiles returns the p50 and p99 of a latency sample.
func percentiles(v []float64) (p50, p99 float64) {
	if len(v) == 0 {
		return 0, 0
	}
	sort.Float64s(v)
	at := func(q float64) float64 {
		i := int(q * float64(len(v)-1))
		return v[i]
	}
	return at(0.50), at(0.99)
}

// ConcurrentCeiling opens connections to Nodes[0] and holds every one
// of them until target connections are live or an open fails, reporting
// how many were reached — the concurrent-connection ceiling.  All held
// connections are torn down before returning.
func ConcurrentCeiling(c *Cluster, target int, port uint16) (int, error) {
	srv := c.Server()
	gens := c.Generators()
	if len(gens) == 0 {
		return 0, fmt.Errorf("evalrig: ceiling needs at least one generator node")
	}
	var lfd int
	var err error
	srv.Do(func() {
		lfd, err = srv.C.Socket(2, 1, 0)
		if err != nil {
			return
		}
		if err = srv.C.Bind(lfd, Addr(srv.IP, port)); err != nil {
			return
		}
		err = srv.C.Listen(lfd, 512)
	})
	if err != nil {
		return 0, fmt.Errorf("evalrig: ceiling server setup: %w", err)
	}

	// The server parks every accepted connection; the handler side holds
	// the socket without reading (the connections are idle by design).
	var held []int
	var heldMu sync.Mutex
	acceptDone := make(chan struct{})
	go func() {
		defer close(acceptDone)
		for {
			var fd int
			var aerr error
			srv.Do(func() { fd, _, aerr = srv.C.Accept(lfd) })
			if aerr != nil {
				return
			}
			heldMu.Lock()
			held = append(held, fd)
			heldMu.Unlock()
		}
	}()

	open := make([]int, 0, target)
	openNode := make([]*Node, 0, target)
	reached := 0
	for reached < target {
		g := gens[reached%len(gens)]
		var fd int
		var oerr error
		g.Do(func() { fd, oerr = g.C.Socket(2, 1, 0) })
		if oerr == nil {
			g.Do(func() { oerr = g.C.Connect(fd, Addr(srv.IP, port)) })
			if oerr != nil {
				g.Do(func() { _ = g.C.Close(fd) })
			}
		}
		if oerr != nil {
			break
		}
		open = append(open, fd)
		openNode = append(openNode, g)
		reached++
	}

	for i, fd := range open {
		g := openNode[i]
		g.Do(func() { _ = g.C.Close(fd) })
	}
	srv.Do(func() { _ = srv.C.Close(lfd) })
	<-acceptDone
	heldMu.Lock()
	for _, fd := range held {
		srv.Do(func() { _ = srv.C.Close(fd) })
	}
	heldMu.Unlock()
	return reached, nil
}
