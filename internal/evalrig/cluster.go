package evalrig

import (
	"fmt"
	"time"

	"oskit/internal/faults"
	"oskit/internal/hw"
)

// Cluster is the N-node testbed: one learning Ethernet switch with a
// booted machine on every port, scaling the paper's two-PC rig to the
// switched-cluster shape the connection-churn evaluation (E13) needs.
// By convention Nodes[0] is the server and Nodes[1:] are the load
// generators; nothing in the rig enforces the roles.
//
// Every node is Serialized at boot: cluster workloads drive a single
// node from many process-level goroutines (an accept loop plus one
// handler per live connection on the server; a worker pool on each
// generator), so all component entries go through Node.Do.
type Cluster struct {
	Cfg    Config
	Switch *hw.EtherSwitch
	Nodes  []*Node

	// Faults is the cluster's fault injector, nil until EnableFaults.
	Faults *faults.Injector
}

// NewCluster boots n machines (2 ≤ n ≤ 64) on one switch, addressed
// 10.2.0.1 … 10.2.0.n, all running the same configuration.
func NewCluster(cfg Config, n int, tickInterval time.Duration, opts Options) (*Cluster, error) {
	if n < 2 || n > 64 {
		return nil, fmt.Errorf("evalrig: cluster size %d out of range [2,64]", n)
	}
	c := &Cluster{Cfg: cfg, Switch: hw.NewEtherSwitch()}
	for i := 0; i < n; i++ {
		port := c.Switch.NewPort()
		nodeOpts := opts
		if i != 0 {
			// Only the conventional server node carries a disk; load
			// generators are pure network machines.
			nodeOpts.DiskSectors = 0
		}
		node, err := newNode(cfg, port, byte(i+1), [4]byte{10, 2, 0, byte(i + 1)}, tickInterval, nodeOpts)
		if err != nil {
			c.Halt()
			return nil, fmt.Errorf("evalrig: cluster node %d: %w", i, err)
		}
		// A BSD-stack node on a multi-CPU machine carries its own
		// per-connection locking (E14) — serializing it would collapse
		// the concurrency under measurement.  The Linux baseline and
		// every uniprocessor node keep the §4.7.4 component lock.
		if opts.CPUs <= 1 || cfg == Linux {
			node.Serialize()
		}
		c.Nodes = append(c.Nodes, node)
	}
	return c, nil
}

// Server returns the conventional server node (Nodes[0]).
func (c *Cluster) Server() *Node { return c.Nodes[0] }

// Generators returns the conventional load-generator nodes (Nodes[1:]).
func (c *Cluster) Generators() []*Node { return c.Nodes[1:] }

// Halt powers every machine off.
func (c *Cluster) Halt() {
	if c.Faults != nil {
		c.Faults.Release()
		c.Faults = nil
	}
	for _, n := range c.Nodes {
		if n.BSD != nil {
			n.Do(n.BSD.Close)
		}
		n.UnmountFS()
		n.drainAllocCaches()
		n.Machine.Halt()
	}
	c.Nodes = nil
}

// EnableFaults weaves a fault-injection plan through the whole cluster:
// the switch fabric (loss, corruption, duplication, reordering — the
// same WireFaultHook contract as the two-node wire), every NIC's
// receive ring, every machine's clock, and every node's memory service.
// Call once, after NewCluster and before traffic.  The cluster owns the
// injector; Halt releases it.
func (c *Cluster) EnableFaults(plan faults.Plan) *faults.Injector {
	in := faults.NewInjector(plan)
	c.Faults = in
	c.Switch.SetFaultHook(in.WireHook())
	for i, n := range c.Nodes {
		n.EnableFaults(in, fmt.Sprintf("n%d", i))
	}
	return in
}
