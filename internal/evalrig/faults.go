package evalrig

import (
	"oskit/internal/com"
	"oskit/internal/faults"
)

// EnableFaults weaves a fault-injection plan through the whole testbed:
// the shared wire (loss, corruption, duplication, reordering), each
// NIC's receive ring (forced overruns), each machine's clock (jitter),
// and each node's memory service (allocation failure, via the §4.2.1
// overridable-functions seam that the LMM default allocator, the BSD
// malloc page refill and the Linux kmalloc buckets all draw from).
//
// The injector and its statistics are registered in both nodes'
// services registries — under com.FaultIID and com.StatsIID — so any
// client of either node can discover what regime the run was subjected
// to, exactly the way it discovers other statistics (§4.2.2).
//
// Call once, after NewPair/NewMixedPair and before traffic: the wiring
// deliberately happens after boot so that setup itself cannot be
// failed.  The pair owns the injector; Halt releases it.  Point names
// are fixed ("wire.drop", "nic.rx.send", "disk.<node>.err", …) so a
// soak failure's trace reads the same across runs.
func (p *Pair) EnableFaults(plan faults.Plan) *faults.Injector {
	in := faults.NewInjector(plan)
	p.Faults = in

	p.Wire.SetFaultHook(in.WireHook())
	p.Sender.EnableFaults(in, "send")
	p.Receiver.EnableFaults(in, "recv")
	return in
}

// EnableFaults wires one node's local fault points (receive ring,
// clock, memory service) to the injector and registers the injector in
// the node's services registry.  name distinguishes the node's decision
// streams ("send", "recv", or a rig-chosen label for single machines).
func (n *Node) EnableFaults(in *faults.Injector, name string) {
	n.nic.SetRxFaultHook(in.NICRxHook("nic.rx." + name))
	n.Machine.Timer.SetFaultHook(in.TimerHook("timer." + name))
	in.WrapAlloc(n.Kernel.Env, "alloc."+name)
	if n.QP != nil {
		// Fast-path nodes also fail allocations at the QuickPool seam,
		// so the chaos harness covers the allocator the packet paths
		// actually draw from.
		n.QP.SetAllocFaultHook(in.AllocFailFunc("qp." + name))
	}
	if n.Disk != nil {
		// A node serving files gets hostile media too: the HTTP soak
		// proves the serving path's op-level ErrIO retry contract.
		n.Disk.SetFaultHook(in.DiskHook("disk." + name))
	}
	n.Kernel.Env.Registry.Register(com.FaultIID, in)
	n.Kernel.Env.Registry.Register(com.StatsIID, in.StatsSet())
}
