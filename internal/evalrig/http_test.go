package evalrig

import (
	"testing"
	"time"
)

// TestHTTPGetAllConfigs proves the HTTP file-serving workload (E15)
// moves verified bodies on every Table 1/2 configuration — the same
// application code atop the POSIX layer, only the configuration
// differing — including the zero-copy fast path.
func TestHTTPGetAllConfigs(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		opts Options
	}{
		{"linux", Linux, Options{}},
		{"freebsd", FreeBSD, Options{}},
		{"oskit", OSKit, Options{}},
		{"oskit-fastpath", OSKit, Options{FastPath: true}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			tc.opts.DiskSectors = 16384
			c, err := NewCluster(tc.cfg, 3, time.Millisecond, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Halt()
			res, err := HTTPGet(c, HTTPOptions{
				Requests: 32, Workers: 2, Files: 3, FileBytes: 20000,
				Seed: 11, Probes: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Failed != 0 {
				t.Fatalf("%d of %d requests failed: %v", res.Failed, res.Failed+res.Requests, res.Errors)
			}
			if res.Requests != 32 {
				t.Fatalf("answered %d of 32 requests", res.Requests)
			}
			// 32 tickets, probes at i%8==3 and i%8==7: 8 probes, 24 GETs.
			if want := uint64(24 * 20000); res.BytesBody != want {
				t.Fatalf("moved %d body bytes, want %d", res.BytesBody, want)
			}
			if res.CheckSum == 0 {
				t.Fatal("verification checksum is zero — no bodies verified?")
			}
			// Generators never carry a disk; only the server does.
			if c.Server().Disk == nil {
				t.Fatal("server node has no disk")
			}
			for _, g := range c.Generators() {
				if g.Disk != nil {
					t.Fatal("generator node carries a disk")
				}
			}
		})
	}
}

// TestHTTPGetReproducible pins the workload's determinism contract: two
// equal-seed runs — even against different cluster instances — produce
// the same verification checksum, the property the hostile-wire soak
// leans on when it compares a faulted run with a clean one.
func TestHTTPGetReproducible(t *testing.T) {
	opt := HTTPOptions{
		Requests: 24, Workers: 3, Files: 4, FileBytes: 12000,
		Seed: 1234, Probes: true,
	}
	var sums [2]uint32
	for i := range sums {
		c, err := NewCluster(OSKit, 2, time.Millisecond, Options{FastPath: true, DiskSectors: 16384})
		if err != nil {
			t.Fatal(err)
		}
		res, err := HTTPGet(c, opt)
		if err != nil {
			c.Halt()
			t.Fatal(err)
		}
		if res.Failed != 0 {
			c.Halt()
			t.Fatalf("run %d: %d failed: %v", i, res.Failed, res.Errors)
		}
		sums[i] = res.CheckSum
		c.Halt()
	}
	if sums[0] != sums[1] {
		t.Fatalf("equal-seed runs disagree: %08x != %08x", sums[0], sums[1])
	}
}

// TestHTTPGetRepopulateNoop: a second workload run against the same
// cluster reuses the populated tree (the population key matches), and
// changing the seed lays a fresh one down.
func TestHTTPGetRepopulateNoop(t *testing.T) {
	c, err := NewCluster(OSKit, 2, time.Millisecond, Options{DiskSectors: 16384})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Halt()
	for _, seed := range []int64{5, 5, 6} {
		res, err := HTTPGet(c, HTTPOptions{
			Requests: 8, Workers: 1, Files: 2, FileBytes: 4096, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Failed != 0 {
			t.Fatalf("seed %d: %d failed: %v", seed, res.Failed, res.Errors)
		}
	}
}

// TestMountFSLifecycle pins MountFS/UnmountFS: mounting is idempotent,
// a diskless node refuses, and Halt leaves no dangling mount.
func TestMountFSLifecycle(t *testing.T) {
	c, err := NewCluster(OSKit, 2, time.Millisecond, Options{DiskSectors: 16384})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Halt()
	srv := c.Server()
	if err := srv.MountFS(); err != nil {
		t.Fatal(err)
	}
	fs := srv.FS
	if err := srv.MountFS(); err != nil || srv.FS != fs {
		t.Fatalf("second MountFS not a no-op (%v)", err)
	}
	if err := c.Generators()[0].MountFS(); err == nil {
		t.Fatal("diskless generator mounted a file system")
	}
	srv.UnmountFS()
	if srv.FS != nil || srv.FSRoot != nil {
		t.Fatal("UnmountFS left state behind")
	}
	srv.UnmountFS() // second unmount is a no-op
}
