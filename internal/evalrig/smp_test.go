package evalrig

import (
	"testing"
	"time"
)

// TestSMPClusterChurn is the rig-level race regression for E14: a
// 4-node cluster on 4-CPU machines, BSD-stack nodes unserialized (the
// per-connection locks are the exclusion), driven through the full
// connection-churn lifecycle.  Runs in the tier-1 -race list: any
// misordered lock or missed revalidation in the SMP paths shows up
// here as a race report, a wedge, or a corrupted echo.
func TestSMPClusterChurn(t *testing.T) {
	for _, cfg := range []Config{FreeBSD, OSKit} {
		cfg := cfg
		t.Run(string(cfg), func(t *testing.T) {
			opts := Options{CPUs: 4}
			if cfg == OSKit {
				opts.FastPath = true // multi-ring polled receive
			}
			c, err := NewCluster(cfg, 4, time.Millisecond, opts)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Halt()
			for i, n := range c.Nodes {
				if got := n.Machine.CPUs(); got != 4 {
					t.Fatalf("node %d booted with %d CPUs, want 4", i, got)
				}
				if n.serialized {
					t.Fatalf("node %d serialized: SMP nodes must run on their own locks", i)
				}
			}
			res, err := ChurnTCP(c, ChurnOptions{Conns: 48, Workers: 3, ReqBytes: 128, Port: 9050, Seed: 14})
			if err != nil {
				t.Fatal(err)
			}
			if res.Failed != 0 {
				t.Fatalf("SMP churn: %d of %d cycles failed: %v", res.Failed, res.Conns+res.Failed, res.Errors)
			}
			if res.Conns != 48 {
				t.Fatalf("SMP churn completed %d cycles, want 48", res.Conns)
			}
		})
	}
}

// TestSMPChurnChecksumStable re-runs a seeded SMP churn and checks the
// order-independent payload checksum matches a uniprocessor run of the
// same seed: whatever the CPUs interleave, the data delivered is the
// same data.
func TestSMPChurnChecksumStable(t *testing.T) {
	sum := func(cpus int) uint32 {
		t.Helper()
		c, err := NewCluster(FreeBSD, 3, time.Millisecond, Options{CPUs: cpus})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Halt()
		res, err := ChurnTCP(c, ChurnOptions{Conns: 24, Workers: 2, ReqBytes: 96, Port: 9051, Seed: 77})
		if err != nil {
			t.Fatal(err)
		}
		if res.Failed != 0 {
			t.Fatalf("churn at %d CPUs: %d failures: %v", cpus, res.Failed, res.Errors)
		}
		return res.CheckSum
	}
	up := sum(1)
	mp := sum(4)
	if up != mp {
		t.Fatalf("checksum diverged: 1-CPU %08x vs 4-CPU %08x", up, mp)
	}
}
