package evalrig

import (
	"testing"
	"time"

	"oskit/internal/hw"
)

// TestClusterBootTeardown boots every configuration as a small switched
// cluster and proves cross-port traffic flows: the smoke test for the
// N-node generalization of the rig.
func TestClusterBootTeardown(t *testing.T) {
	for _, cfg := range Configs {
		cfg := cfg
		t.Run(string(cfg), func(t *testing.T) {
			c, err := NewCluster(cfg, 3, time.Millisecond, Options{})
			if err != nil {
				t.Fatal(err)
			}
			defer c.Halt()
			if got := c.Switch.Ports(); got != 3 {
				t.Fatalf("switch has %d ports, want 3", got)
			}
			// Every node must sit on a switch port, not a shared wire.
			for i, n := range c.Nodes {
				if _, ok := hw.SegmentOfForTest(n.NIC()).(*hw.SwitchPort); !ok {
					t.Fatalf("node %d not attached to a switch port", i)
				}
			}
			res, err := ChurnTCP(c, ChurnOptions{Conns: 8, Workers: 1, ReqBytes: 32, Port: 9001})
			if err != nil {
				t.Fatal(err)
			}
			if res.Conns != 8 || res.Failed != 0 {
				t.Fatalf("smoke churn: %d ok, %d failed", res.Conns, res.Failed)
			}
		})
	}
}

// TestClusterSwitchLearns runs traffic and checks the fabric behaved
// like a learning switch: every station was learned, frames were
// forwarded point-to-point, and PortOf maps each node's MAC to the port
// it was booted on.
func TestClusterSwitchLearns(t *testing.T) {
	c, err := NewCluster(OSKit, 4, time.Millisecond, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Halt()
	if _, err := ChurnTCP(c, ChurnOptions{Conns: 12, Workers: 1, ReqBytes: 32, Port: 9002}); err != nil {
		t.Fatal(err)
	}
	st := c.Switch.Stats()
	if st.Stations < 4 {
		t.Errorf("switch learned %d stations, want all 4", st.Stations)
	}
	if st.Forwarded == 0 {
		t.Errorf("no frames forwarded point-to-point: %+v", st)
	}
	for i := range c.Nodes {
		mac := [6]byte{2, 0, 0, 2, 0, byte(i + 1)}
		if got := c.Switch.PortOf(mac); got != i {
			t.Errorf("node %d MAC learned on port %d", i, got)
		}
	}
}

// TestClusterChurnReproducible runs the same seeded churn twice and
// requires identical verification checksums with zero failures: the
// workload's result must be a function of (seed, connection count),
// not of how the scheduler interleaved the worker pool.  The -race
// runs of the suite make this double as the churn data-race check.
func TestClusterChurnReproducible(t *testing.T) {
	run := func(port uint16) ChurnResult {
		c, err := NewCluster(OSKit, 3, time.Millisecond, Options{})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Halt()
		res, err := ChurnTCP(c, ChurnOptions{
			Conns: 40, Workers: 2, ReqBytes: 128, Port: port, Seed: 42,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	r1 := run(9003)
	r2 := run(9004)
	if r1.Failed != 0 || r2.Failed != 0 {
		t.Fatalf("clean churn failed connections: %d and %d", r1.Failed, r2.Failed)
	}
	if r1.Conns != 40 || r2.Conns != 40 {
		t.Fatalf("completed %d and %d connections, want 40", r1.Conns, r2.Conns)
	}
	if r1.CheckSum != r2.CheckSum {
		t.Fatalf("same seed, different checksums: %08x vs %08x", r1.CheckSum, r2.CheckSum)
	}
}

// TestConcurrentCeiling holds a batch of connections open across the
// cluster and requires every one of them to be reachable: the rig's
// concurrent-connection floor for the E13 ceiling measurement.
func TestConcurrentCeiling(t *testing.T) {
	c, err := NewCluster(OSKit, 3, time.Millisecond, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Halt()
	const target = 32
	got, err := ConcurrentCeiling(c, target, 9005)
	if err != nil {
		t.Fatal(err)
	}
	if got < target {
		t.Fatalf("ceiling = %d, want %d held connections", got, target)
	}
}
