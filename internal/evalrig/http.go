package evalrig

import (
	"fmt"
	"hash/crc32"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"oskit/internal/com"
	"oskit/internal/dev"
	bsdglue "oskit/internal/freebsd/glue"
	"oskit/internal/httpd"
	linuxdev "oskit/internal/linux/dev"
	netbsdfs "oskit/internal/netbsd/fs"
)

// The HTTP file-serving workload (E15): load generators GET files from
// an HTTP/1.1 static server on Nodes[0], whose bodies travel the
// sendfile path — buffer cache straight to the NIC's gather engine on a
// zero-copy configuration, the ordinary copy path everywhere else.
// Every body is CRC-verified against the seed-derived file content, so
// the workload is simultaneously a throughput measurement and an
// end-to-end integrity check of the page-pinning machinery.

// MountFS probes the donor IDE driver, formats the node's disk with the
// NetBSD-derived FFS, mounts it, and installs the root directory in the
// node's POSIX layer.  The node must have been booted with
// Options.DiskSectors.  Safe to call twice; the second call is a no-op.
func (n *Node) MountFS() error {
	if n.FS != nil {
		return nil
	}
	if n.Disk == nil {
		return fmt.Errorf("evalrig: node has no disk (boot with Options.DiskSectors)")
	}
	var err error
	n.Do(func() {
		// A second framework instance on the same environment is fine:
		// frameworks are independent, and the IDE probe walks the machine
		// bus claiming only *hw.Disk devices (the NIC already belongs to
		// the network configuration's framework).
		fw := dev.NewFramework(n.Kernel.Env)
		linuxdev.InitIDE(fw)
		fw.Probe()
		disks := fw.LookupByIID(com.BlkIOIID)
		if len(disks) != 1 {
			err = fmt.Errorf("evalrig: IDE probe found %d disks", len(disks))
			return
		}
		raw := disks[0].(com.BlkIO)
		defer raw.Release()
		if err = netbsdfs.Mkfs(raw, 0); err != nil {
			return
		}
		var fs *netbsdfs.FFS
		fs, err = netbsdfs.Mount(bsdglue.New(n.Kernel.Env), raw)
		if err != nil {
			return
		}
		if !n.serialized {
			// An SMP node drives the FS from many handler goroutines with
			// no §4.7.4 node lock in front of it, so the FS arms its own
			// entry lock.  A serialized node must NOT arm it: the node
			// lock's WrapSleep re-entry would deadlock against a thread
			// holding the entry lock across a sleep.
			fs.SetConcurrent()
		}
		var root com.Dir
		root, err = fs.GetRoot()
		if err != nil {
			_ = fs.Unmount()
			return
		}
		n.FS = fs
		n.FSRoot = root
		n.C.SetRoot(root)
	})
	return err
}

// UnmountFS tears the mounted file system down: the POSIX root binding,
// the root directory reference, then the mount itself.  No-op when
// MountFS never ran.  Halt calls it, so the refdebug ledger comes out
// clean without rig clients doing anything.
func (n *Node) UnmountFS() {
	if n.FS == nil {
		return
	}
	n.Do(func() {
		n.C.SetRoot(nil)
		n.FSRoot.Release()
		_ = n.FS.Unmount()
	})
	n.FSRoot = nil
	n.FS = nil
	n.httpPopKey = ""
}

// HTTPOptions parameterizes HTTPGet.
type HTTPOptions struct {
	Requests  int    // total GETs across all generators
	Workers   int    // concurrent workers per generator node
	Files     int    // number of /pub files served round-robin
	FileBytes int    // size of each file
	PerConn   int    // requests issued per connection before reconnecting
	Port      uint16 // server port
	Backlog   int    // server listen backlog
	Seed      int64  // seeds every file body (reproducibility)
	Probes    bool   // interleave deterministic 403/404 probe requests
}

func (o *HTTPOptions) defaults() {
	if o.Requests <= 0 {
		o.Requests = 64
	}
	if o.Workers <= 0 {
		o.Workers = 4
	}
	if o.Files <= 0 {
		o.Files = 4
	}
	if o.FileBytes <= 0 {
		o.FileBytes = 8192
	}
	if o.PerConn <= 0 {
		o.PerConn = 8
	}
	if o.Port == 0 {
		o.Port = 8080
	}
	if o.Backlog <= 0 {
		o.Backlog = 128
	}
}

// HTTPResult is one HTTP workload measurement.
type HTTPResult struct {
	Requests   int     // requests answered as expected (verified body or expected probe status)
	Failed     int     // requests that errored (connect, I/O, status, or bad body)
	BytesBody  uint64  // total verified body bytes moved
	Seconds    float64 // wall time over the whole run
	ReqsPerSec float64
	P50Usec    float64 // median request→body-complete latency
	P99Usec    float64 // tail latency

	// CheckSum is the XOR, over every verified 200 body, of the body
	// CRC-32 mixed with its ticket hash — order-independent, so
	// equal-seed runs produce the same sum no matter the interleaving
	// (the hostile-wire soak pins hostile == clean), and
	// ticket-dependent, so round-robin repeats of the same file cannot
	// cancel to zero.  Probe answers do not contribute.
	CheckSum uint32

	// Errors samples the first few failures (diagnosis, not accounting).
	Errors []string
}

// httpPayload builds file i's body deterministically from the run seed.
func httpPayload(seed int64, i, n int) []byte {
	rng := rand.New(rand.NewSource(seed ^ int64(i+1)*0x9e3779b9))
	b := make([]byte, n)
	rng.Read(b)
	return b
}

// httpFile names the /pub file a request ticket resolves to.
func httpFile(ticket, files int) int { return ticket % files }

// PopulateHTTP lays the workload's file tree onto the node's mounted
// FFS: /pub/f0 … /pub/f{Files-1} with seed-derived bodies, plus
// /secrets/plans for the 403 probes, then syncs the cache to disk.
// Idempotent for one (seed, files, bytes) shape; every operation
// carries the op-level com.ErrIO retry contract, so a fault plan armed
// early cannot break setup.
func PopulateHTTP(n *Node, o HTTPOptions) error {
	o.defaults()
	key := fmt.Sprintf("%d/%d/%d", o.Seed, o.Files, o.FileBytes)
	if n.httpPopKey == key {
		return nil
	}
	if err := n.MountFS(); err != nil {
		return err
	}
	mkdir := func(name string) error {
		return httpRetry(func() error {
			var e error
			n.Do(func() { e = n.FSRoot.Mkdir(name, 0o755) })
			return e
		})
	}
	if err := mkdir("pub"); err != nil {
		return fmt.Errorf("evalrig: mkdir pub: %w", err)
	}
	if err := mkdir("secrets"); err != nil {
		return fmt.Errorf("evalrig: mkdir secrets: %w", err)
	}
	for i := 0; i < o.Files; i++ {
		name := fmt.Sprintf("f%d", i)
		if err := httpWriteFile(n, "pub", name, httpPayload(o.Seed, i, o.FileBytes)); err != nil {
			return fmt.Errorf("evalrig: write /pub/%s: %w", name, err)
		}
	}
	if err := httpWriteFile(n, "secrets", "plans", []byte("the secret plans\n")); err != nil {
		return fmt.Errorf("evalrig: write /secrets/plans: %w", err)
	}
	if err := httpRetry(func() error {
		var e error
		n.Do(func() { e = n.FS.Sync() })
		return e
	}); err != nil {
		return fmt.Errorf("evalrig: sync: %w", err)
	}
	n.httpPopKey = key
	return nil
}

// httpWriteFile creates dir/name and writes body, chunk by chunk with
// per-chunk retry (each chunk write is idempotent at its offset).
func httpWriteFile(n *Node, dir, name string, body []byte) error {
	var d com.Dir
	err := httpRetry(func() error {
		var e error
		n.Do(func() {
			var f com.File
			f, e = n.FSRoot.Lookup(dir)
			if e != nil {
				return
			}
			var u com.IUnknown
			u, e = f.QueryInterface(com.DirIID)
			f.Release()
			if e == nil {
				d = u.(com.Dir)
			}
		})
		return e
	})
	if err != nil {
		return err
	}
	defer n.Do(func() { d.Release() })

	var file com.File
	err = httpRetry(func() error {
		var e error
		// Non-exclusive create keeps the retry idempotent: an attempt
		// that failed after entering the directory succeeds as an open.
		n.Do(func() { file, e = d.Create(name, 0o644, false) })
		return e
	})
	if err != nil {
		return err
	}
	defer n.Do(func() { file.Release() })

	off := 0
	for off < len(body) {
		var nn uint
		err = httpRetry(func() error {
			var e error
			n.Do(func() { nn, e = file.WriteAt(body[off:], uint64(off)) })
			return e
		})
		if err != nil {
			return err
		}
		if nn == 0 {
			return com.ErrIO
		}
		off += int(nn)
	}
	return nil
}

// httpRetry re-attempts op through transient injected disk errors;
// com.ErrExist means an earlier attempt took effect, which is success
// for the idempotent setup operations used here.
func httpRetry(op func() error) error {
	var err error
	for i := 0; i < 64; i++ {
		err = op()
		if err == nil || err == com.ErrExist {
			return nil
		}
		if err != com.ErrIO {
			return err
		}
	}
	return err
}

// HTTPGet runs the HTTP workload against Nodes[0] and reports
// throughput, tail latency, and the verification checksum.  The server
// node's file system is mounted and populated on first use (before any
// timing starts).  Requests that fail are counted, not retried.
func HTTPGet(c *Cluster, o HTTPOptions) (HTTPResult, error) {
	o.defaults()
	res := HTTPResult{}
	srv := c.Server()
	gens := c.Generators()
	if len(gens) == 0 {
		return res, fmt.Errorf("evalrig: HTTP workload needs at least one generator node")
	}
	if err := PopulateHTTP(srv, o); err != nil {
		return res, err
	}

	// The server: the §3.8 security wrapper in front of the FS root (an
	// unprivileged service uid, so /secrets stays 403), the HTTP server
	// atop the POSIX layer, one handler goroutine per accepted
	// connection — the same shape as the churn server.
	root := httpd.NewSecureRoot(srv.FSRoot, 1000)
	defer srv.Do(root.Release)
	hs := &httpd.Server{C: srv.C, Root: root, Do: srv.Do}

	var lfd int
	var err error
	srv.Do(func() {
		lfd, err = srv.C.Socket(2, 1, 0)
		if err != nil {
			return
		}
		// reuseaddr, like any restartable server: a back-to-back run on
		// the same cluster must be able to rebind the service port while
		// the previous run's connection pcbs are still tearing down.
		if err = srv.C.SetSockOpt(lfd, "reuseaddr", 1); err != nil {
			return
		}
		if err = srv.C.Bind(lfd, Addr(srv.IP, o.Port)); err != nil {
			return
		}
		err = srv.C.Listen(lfd, o.Backlog)
	})
	if err != nil {
		return res, fmt.Errorf("evalrig: HTTP server setup: %w", err)
	}

	var handlers sync.WaitGroup
	acceptDone := make(chan struct{})
	go func() {
		defer close(acceptDone)
		for {
			var fd int
			var aerr error
			srv.Do(func() { fd, _, aerr = srv.C.Accept(lfd) })
			if aerr != nil {
				return // listener closed: run over
			}
			handlers.Add(1)
			go func(fd int) {
				defer handlers.Done()
				hs.Serve(fd)
			}(fd)
		}
	}()

	// Generators: a shared ticket counter hands out request indices;
	// each worker holds one keep-alive connection, reusing it for up to
	// PerConn requests before cycling it.
	var next atomic.Int64
	var mu sync.Mutex
	var latencies []float64
	var workers sync.WaitGroup
	start := time.Now()
	for _, g := range gens {
		for w := 0; w < o.Workers; w++ {
			workers.Add(1)
			go func(g *Node) {
				defer workers.Done()
				conn := &httpConn{g: g, srvIP: srv.IP, port: o.Port}
				defer conn.close()
				onConn := 0
				for {
					i := int(next.Add(1) - 1)
					if i >= o.Requests {
						return
					}
					if onConn >= o.PerConn {
						conn.close()
						onConn = 0
					}
					t0 := time.Now()
					crc, nbody, rerr := httpOne(conn, o, i)
					usec := float64(time.Since(t0).Microseconds())
					onConn++
					mu.Lock()
					if rerr != nil {
						res.Failed++
						if len(res.Errors) < 8 {
							res.Errors = append(res.Errors, fmt.Sprintf("req %d: %v", i, rerr))
						}
					} else {
						res.Requests++
						if nbody > 0 {
							res.CheckSum ^= crc ^ uint32(i)*0x9e3779b9
						}
						res.BytesBody += uint64(nbody)
						latencies = append(latencies, usec)
					}
					mu.Unlock()
					if rerr != nil {
						conn.close() // framing is suspect: start fresh
						onConn = 0
					}
				}
			}(g)
		}
	}
	workers.Wait()
	res.Seconds = time.Since(start).Seconds()

	srv.Do(func() { _ = srv.C.Close(lfd) })
	<-acceptDone
	handlers.Wait()

	if res.Seconds > 0 {
		res.ReqsPerSec = float64(res.Requests) / res.Seconds
	}
	res.P50Usec, res.P99Usec = percentiles(latencies)
	return res, nil
}

// httpOne issues request ticket i on conn: normally a verified GET of
// its round-robin /pub file (returning the body CRC), with every
// eighth ticket turned into a deterministic security probe when
// Probes is on — a 403 from the wrapper or a 404 for a missing name.
func httpOne(conn *httpConn, o HTTPOptions, i int) (crc uint32, nbody int, err error) {
	if o.Probes && i%8 == 3 {
		status, _, err := conn.get("/secrets/plans")
		if err != nil {
			return 0, 0, err
		}
		if status != 403 {
			return 0, 0, fmt.Errorf("probe /secrets/plans: status %d, want 403", status)
		}
		return 0, 0, nil
	}
	if o.Probes && i%8 == 7 {
		status, _, err := conn.get("/pub/no-such-file")
		if err != nil {
			return 0, 0, err
		}
		if status != 404 {
			return 0, 0, fmt.Errorf("probe /pub/no-such-file: status %d, want 404", status)
		}
		return 0, 0, nil
	}
	fi := httpFile(i, o.Files)
	status, body, err := conn.get(fmt.Sprintf("/pub/f%d", fi))
	if err != nil {
		return 0, 0, err
	}
	if status != 200 {
		return 0, 0, fmt.Errorf("GET /pub/f%d: status %d", fi, status)
	}
	if len(body) != o.FileBytes {
		return 0, 0, fmt.Errorf("GET /pub/f%d: body %d bytes, want %d", fi, len(body), o.FileBytes)
	}
	want := crc32.ChecksumIEEE(httpPayload(o.Seed, fi, o.FileBytes))
	got := crc32.ChecksumIEEE(body)
	if got != want {
		return 0, 0, fmt.Errorf("GET /pub/f%d: body corrupted (crc %08x != %08x)", fi, got, want)
	}
	return got, len(body), nil
}

// httpConn is a generator-side HTTP/1.1 client connection: lazily
// opened, reused across keep-alive requests, carrying pipeline residue
// between responses.
type httpConn struct {
	g       *Node
	srvIP   [4]byte
	port    uint16
	fd      int
	open    bool
	pending []byte
}

func (c *httpConn) close() {
	if !c.open {
		return
	}
	fd := c.fd
	c.g.Do(func() { _ = c.g.C.Close(fd) })
	c.open = false
	c.pending = nil
}

// get issues one GET and returns the response status and full body.
func (c *httpConn) get(path string) (status int, body []byte, err error) {
	if !c.open {
		var fd int
		c.g.Do(func() { fd, err = c.g.C.Socket(2, 1, 0) })
		if err != nil {
			return 0, nil, err
		}
		c.g.Do(func() { err = c.g.C.Connect(fd, Addr(c.srvIP, c.port)) })
		if err != nil {
			c.g.Do(func() { _ = c.g.C.Close(fd) })
			return 0, nil, fmt.Errorf("connect: %w", err)
		}
		c.fd, c.open, c.pending = fd, true, nil
	}
	req := []byte("GET " + path + " HTTP/1.1\r\nHost: rig\r\nConnection: keep-alive\r\n\r\n")
	sent := 0
	for sent < len(req) {
		var n int
		c.g.Do(func() { n, err = c.g.C.Write(c.fd, req[sent:]) })
		if err != nil {
			return 0, nil, fmt.Errorf("write: %w", err)
		}
		sent += n
	}
	return c.readResponse()
}

// readResponse reads one complete response (head + Content-Length
// body), leaving any pipelined surplus in pending.
func (c *httpConn) readResponse() (status int, body []byte, err error) {
	buf := make([]byte, 4096)
	end := httpHeadEnd(c.pending)
	for end < 0 {
		var n int
		c.g.Do(func() { n, err = c.g.C.Read(c.fd, buf) })
		if err != nil || n == 0 {
			return 0, nil, fmt.Errorf("evalrig: response head truncated (%v)", err)
		}
		c.pending = append(c.pending, buf[:n]...)
		end = httpHeadEnd(c.pending)
	}
	head := string(c.pending[:end])
	c.pending = append([]byte(nil), c.pending[end:]...)

	status, clen, err := httpParseHead(head)
	if err != nil {
		return 0, nil, err
	}
	for len(c.pending) < clen {
		var n int
		c.g.Do(func() { n, err = c.g.C.Read(c.fd, buf) })
		if err != nil || n == 0 {
			return 0, nil, fmt.Errorf("evalrig: response body truncated at %d of %d bytes (%v)", len(c.pending), clen, err)
		}
		c.pending = append(c.pending, buf[:n]...)
	}
	body = c.pending[:clen]
	c.pending = append([]byte(nil), c.pending[clen:]...)
	return status, body, nil
}

// httpParseHead extracts the status code and Content-Length from a
// response head (the client trusts its own server this far).
func httpParseHead(head string) (status, clen int, err error) {
	lines := strings.Split(head, "\r\n")
	parts := strings.SplitN(lines[0], " ", 3)
	if len(parts) < 2 || !strings.HasPrefix(parts[0], "HTTP/1.") {
		return 0, 0, fmt.Errorf("evalrig: bad status line %q", lines[0])
	}
	status, err = strconv.Atoi(parts[1])
	if err != nil {
		return 0, 0, fmt.Errorf("evalrig: bad status in %q", lines[0])
	}
	for _, l := range lines[1:] {
		k, v, ok := strings.Cut(l, ":")
		if !ok {
			continue
		}
		if strings.EqualFold(strings.TrimSpace(k), "Content-Length") {
			clen, err = strconv.Atoi(strings.TrimSpace(v))
			if err != nil {
				return 0, 0, fmt.Errorf("evalrig: bad Content-Length %q", v)
			}
		}
	}
	return status, clen, nil
}

// httpHeadEnd locates the blank line ending a response head, returning
// the index just past it, or -1 while incomplete.
func httpHeadEnd(b []byte) int {
	for i := 3; i < len(b); i++ {
		if b[i] == '\n' && b[i-1] == '\r' && b[i-2] == '\n' && b[i-3] == '\r' {
			return i + 1
		}
	}
	return -1
}
