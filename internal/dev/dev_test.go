package dev

import (
	"testing"

	"oskit/internal/com"
	"oskit/internal/core"
	"oskit/internal/hw"
)

// stubDriver claims two fake devices at probe time.
type stubDriver struct {
	DriverBase
	probes int
}

func (d *stubDriver) Probe(fw *Framework) int {
	d.probes++
	for _, name := range []string{"stub0", "stub1"} {
		fw.RegisterDevice(newStubDevice(name))
	}
	return 2
}

type stubDevice struct {
	com.RefCount
	name string
}

func newStubDevice(name string) *stubDevice {
	d := &stubDevice{name: name}
	d.Init()
	return d
}

func (d *stubDevice) GetInfo() com.DeviceInfo {
	return com.DeviceInfo{Name: d.name, Vendor: "stub", Driver: "stub"}
}

func (d *stubDevice) QueryInterface(iid com.GUID) (com.IUnknown, error) {
	switch iid {
	case com.UnknownIID, com.DeviceIID:
		d.AddRef()
		return d, nil
	case com.StreamIID:
		if d.name == "stub0" { // only stub0 exports a stream
			d.AddRef()
			return d, nil
		}
	}
	return nil, com.ErrNoInterface
}

func (d *stubDevice) Read(buf []byte) (uint, error)  { return 0, nil }
func (d *stubDevice) Write(buf []byte) (uint, error) { return uint(len(buf)), nil }

func TestFrameworkProbeAndLookup(t *testing.T) {
	m := hw.NewMachine(hw.Config{MemBytes: 1 << 20})
	defer m.Halt()
	fw := NewFramework(core.NewEnv(m, nil))

	drv := &stubDriver{}
	drv.InitDriver(com.DeviceInfo{Name: "stub", Vendor: "test"})
	fw.RegisterDriver(drv)
	if got := len(fw.Drivers()); got != 1 {
		t.Fatalf("Drivers = %d", got)
	}
	if n := fw.Probe(); n != 2 {
		t.Fatalf("Probe = %d", n)
	}
	// Re-probing does not re-run already-probed drivers.
	if n := fw.Probe(); n != 0 || drv.probes != 1 {
		t.Fatalf("second Probe = %d (probes=%d)", n, drv.probes)
	}
	if got := len(fw.Devices()); got != 2 {
		t.Fatalf("Devices = %d", got)
	}

	streams := fw.LookupByIID(com.StreamIID)
	if len(streams) != 1 {
		t.Fatalf("stream devices = %d", len(streams))
	}
	if _, ok := streams[0].(com.Stream); !ok {
		t.Fatal("lookup did not return the queried interface")
	}
	streams[0].Release()

	d := fw.LookupName("stub1")
	if d == nil || d.GetInfo().Name != "stub1" {
		t.Fatal("LookupName failed")
	}
	d.Release()
	if fw.LookupName("nope") != nil {
		t.Fatal("phantom device")
	}

	// Driver base answers COM queries correctly.
	if _, err := drv.QueryInterface(com.DriverIID); err != nil {
		t.Fatal(err)
	}
	if _, err := drv.QueryInterface(com.BlkIOIID); err != com.ErrNoInterface {
		t.Fatal("driver answered for BlkIO")
	}
	if fw.Env().Machine != m {
		t.Fatal("Env plumbing broken")
	}
}
