// Package dev is the kit's device driver support framework — the "fdev"
// library of paper §3.6 and Table 3.
//
// Drivers are component-library style (§4.3.2): each is represented by a
// single registration entry point; the client OS then probes, and
// interacts with the resulting device nodes only through common COM
// interfaces (EtherDev, BlkIO, Stream), with "plug and play" control over
// which drivers are even linked in.  The §5 initialization sequence maps
// onto this package as:
//
//	fdev_linux_init_ethernet()  ->  linuxdev.InitEthernet(fw)
//	fdev_probe()                ->  fw.Probe()
//	fdev_device_lookup(iid)     ->  fw.LookupByIID(com.EtherDevIID)
package dev

import (
	"sync"

	"oskit/internal/com"
	"oskit/internal/core"
)

// Prober is implemented by drivers that can scan the machine's bus and
// register device nodes for hardware they claim.
type Prober interface {
	// Probe examines the bus and registers device nodes on fw,
	// returning how many devices it claimed.
	Probe(fw *Framework) int
}

// Framework is the per-machine fdev registry of drivers and devices.
type Framework struct {
	env *core.Env

	mu      sync.Mutex
	drivers []com.Driver
	devices []com.Device
	probed  map[com.Driver]bool
}

// NewFramework creates an empty registry over env.
func NewFramework(env *core.Env) *Framework {
	return &Framework{env: env, probed: map[com.Driver]bool{}}
}

// Env returns the environment drivers run against.
func (f *Framework) Env() *core.Env { return f.env }

// RegisterDriver adds a driver (one registration entry point per driver,
// §4.3.2).  The framework holds a reference.
func (f *Framework) RegisterDriver(d com.Driver) {
	d.AddRef()
	f.mu.Lock()
	f.drivers = append(f.drivers, d)
	f.mu.Unlock()
}

// RegisterDevice adds a probed device node; called by drivers from Probe.
func (f *Framework) RegisterDevice(d com.Device) {
	d.AddRef()
	f.mu.Lock()
	f.devices = append(f.devices, d)
	f.mu.Unlock()
}

// Probe asks every not-yet-probed driver to claim hardware, returning the
// total number of devices registered (fdev_probe).
func (f *Framework) Probe() int {
	f.mu.Lock()
	var todo []com.Driver
	for _, d := range f.drivers {
		if !f.probed[d] {
			f.probed[d] = true
			todo = append(todo, d)
		}
	}
	f.mu.Unlock()
	n := 0
	for _, d := range todo {
		if p, ok := d.(Prober); ok {
			n += p.Probe(f)
		}
	}
	return n
}

// Drivers returns the registered drivers.
func (f *Framework) Drivers() []com.Driver {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]com.Driver(nil), f.drivers...)
}

// Devices returns all registered device nodes.
func (f *Framework) Devices() []com.Device {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]com.Device(nil), f.devices...)
}

// LookupByIID returns the devices exporting the given interface, in probe
// order — fdev_device_lookup.  Each returned object is the *queried
// interface* with one reference (release it when done).
func (f *Framework) LookupByIID(iid com.GUID) []com.IUnknown {
	var out []com.IUnknown
	for _, d := range f.Devices() {
		if obj, err := d.QueryInterface(iid); err == nil {
			out = append(out, obj)
		}
	}
	return out
}

// LookupName finds a device node by name ("eth0", "hd0"), or nil.
func (f *Framework) LookupName(name string) com.Device {
	for _, d := range f.Devices() {
		if d.GetInfo().Name == name {
			d.AddRef()
			return d
		}
	}
	return nil
}

// DriverBase is an embeddable com.Driver implementation for driver
// structs: refcount + info + standard QueryInterface.
type DriverBase struct {
	com.RefCount
	Info com.DeviceInfo
}

// InitDriver initializes the embedded base (refcount 1 plus info).
func (b *DriverBase) InitDriver(info com.DeviceInfo) {
	b.Info = info
	b.Init()
}

// GetInfo implements com.Driver.
func (b *DriverBase) GetInfo() com.DeviceInfo { return b.Info }

// QueryInterface implements com.IUnknown for the plain driver shape.
func (b *DriverBase) QueryInterface(iid com.GUID) (com.IUnknown, error) {
	switch iid {
	case com.UnknownIID, com.DriverIID:
		b.AddRef()
		return b, nil
	}
	return nil, com.ErrNoInterface
}
