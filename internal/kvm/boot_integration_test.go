package kvm

import (
	"strings"
	"testing"

	"oskit/internal/bmfs"
	"oskit/internal/boot"
	"oskit/internal/exec"
	"oskit/internal/hw"
	"oskit/internal/kern"
	"oskit/internal/libc"
)

// TestProgramFromBootModuleViaExec is the §6.2.2 delivery chain end to
// end: the boot loader carries an FLX executable as a boot module; the
// kernel mounts the boot-module file system, reads the image through
// the POSIX layer, loads it with the exec component into an
// AMM-described address space, and runs its text segment in the VM —
// "Java/PC loads its Java bytecode from the initial boot module file
// system", mechanically.
func TestProgramFromBootModuleViaExec(t *testing.T) {
	// Assemble the program and wrap it as an FLX image.
	prog, err := Assemble(`
	.str msg "bytecode loaded from a boot module\n"
		pushs msg
		native print 1
		pop
		push 4321
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	img := &exec.Image{
		Entry: 0x1000,
		Segments: []exec.Segment{
			{VAddr: 0x1000, Data: prog.Code, MemSize: uint32(len(prog.Code)), Flags: exec.SegRead | exec.SegExec},
		},
	}
	flx := exec.Build(img)

	// The boot loader's half.
	bootImg := boot.BuildImage("kernel", []boot.ModuleSpec{
		{String: "bin/app.flx run-me", Data: flx},
	})
	m := hw.NewMachine(hw.Config{MemBytes: 32 << 20})
	var console strings.Builder

	code, err := kern.Boot(m, bootImg, func(k *kern.Kernel, args []string, env map[string]string) int {
		c := libc.New(k.Env)
		c.Putchar = func(b byte) { console.WriteByte(b) }

		fs := bmfs.New(k.Env.Ticks)
		if _, err := fs.Populate(k.Info, k.Machine.Mem); err != nil {
			t.Error(err)
			return 1
		}
		root, _ := fs.GetRoot()
		c.SetRoot(root)
		root.Release()
		if fs.ModuleArgs("/bin/app.flx") != "run-me" {
			t.Error("module argument string lost")
		}

		// POSIX read of the module, exec parse+load, then fetch the
		// text back out of the loaded image by virtual address.
		raw, err := c.ReadFile("/bin/app.flx")
		if err != nil {
			t.Error(err)
			return 1
		}
		parsed, err := exec.Parse(raw)
		if err != nil {
			t.Error(err)
			return 1
		}
		loaded, err := exec.Load(k.Env, parsed)
		if err != nil {
			t.Error(err)
			return 1
		}
		defer loaded.Unload()
		text := make([]byte, len(prog.Code))
		if err := loaded.ReadVirtual(loaded.Entry, text); err != nil {
			t.Error(err)
			return 1
		}

		vm := New(text, prog.Consts)
		vm.BindLibc(c)
		v, err := vm.Run()
		if err != nil {
			t.Error(err)
			return 1
		}
		return int(v)
	})
	if err != nil {
		t.Fatal(err)
	}
	if code != 4321 {
		t.Fatalf("program exit = %d", code)
	}
	if !strings.Contains(console.String(), "bytecode loaded from a boot module") {
		t.Fatalf("console = %q", console.String())
	}
}
