package kvm

import (
	"fmt"
	"strconv"
	"strings"
)

// The kvm assembler: line-oriented, two-pass, labels and string
// constants.  Grammar:
//
//	; comment
//	label:
//	.str name "text"          ; define a string constant
//	push 42                   ; immediate
//	push @label               ; label address as immediate
//	jmp label / jz label / jnz label
//	call label nargs
//	native id nargs           ; id numeric or a name from NativeNames
//	pushs name                ; push interned string buffer
//	spawn label
//	add sub mul div mod neg and or xor shl shr
//	eq ne lt le gt ge
//	pop dup swap ret halt yield selfid exit
//	loadg n / storg n / loadl n / storl n
//	newbuf bget bset blen

// Program is an assembled unit.
type Program struct {
	Code   []byte
	Consts []string
}

type patch struct {
	off   int
	label string
	line  int
}

// Assemble translates kvm assembly source.
func Assemble(src string) (*Program, error) {
	p := &Program{}
	labels := map[string]int{}
	strIdx := map[string]int32{}
	var patches []patch

	emit := func(b ...byte) { p.Code = append(p.Code, b...) }
	emit32 := func(v int32) {
		emit(byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}

	simple := map[string]byte{
		"pop": opPop, "dup": opDup, "swap": opSwap,
		"add": opAdd, "sub": opSub, "mul": opMul, "div": opDiv, "mod": opMod,
		"neg": opNeg, "and": opAnd, "or": opOr, "xor": opXor, "shl": opShl, "shr": opShr,
		"eq": opEq, "ne": opNe, "lt": opLt, "le": opLe, "gt": opGt, "ge": opGe,
		"ret": opRet, "halt": opHalt, "yield": opYield, "selfid": opSelfID, "exit": opExit,
		"newbuf": opNewBuf, "bget": opBGet, "bset": opBSet, "blen": opBLen,
	}
	immOps := map[string]byte{
		"loadg": opLoadG, "storg": opStorG, "loadl": opLoadL, "storl": opStorL,
	}
	jumpOps := map[string]byte{"jmp": opJmp, "jz": opJz, "jnz": opJnz, "spawn": opSpawn}

	for lineNo, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexByte(line, ';'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		// String constant directive.
		if strings.HasPrefix(line, ".str ") {
			rest := strings.TrimSpace(line[5:])
			name, quoted, ok := strings.Cut(rest, " ")
			if !ok {
				return nil, fmt.Errorf("line %d: .str wants name and text", lineNo+1)
			}
			text, err := strconv.Unquote(strings.TrimSpace(quoted))
			if err != nil {
				return nil, fmt.Errorf("line %d: bad string: %v", lineNo+1, err)
			}
			strIdx[name] = int32(len(p.Consts))
			p.Consts = append(p.Consts, text)
			continue
		}
		// Label.
		if strings.HasSuffix(line, ":") {
			name := strings.TrimSuffix(line, ":")
			if _, dup := labels[name]; dup {
				return nil, fmt.Errorf("line %d: duplicate label %q", lineNo+1, name)
			}
			labels[name] = len(p.Code)
			continue
		}
		fields := strings.Fields(line)
		op := strings.ToLower(fields[0])
		switch {
		case op == "push":
			if len(fields) != 2 {
				return nil, fmt.Errorf("line %d: push wants one operand", lineNo+1)
			}
			emit(opPush)
			if lbl, ok := strings.CutPrefix(fields[1], "@"); ok {
				patches = append(patches, patch{off: len(p.Code), label: lbl, line: lineNo + 1})
				emit32(0)
			} else {
				v, err := strconv.ParseInt(fields[1], 0, 33)
				if err != nil {
					return nil, fmt.Errorf("line %d: bad immediate: %v", lineNo+1, err)
				}
				emit32(int32(v))
			}
		case op == "pushs":
			idx, ok := strIdx[fields[1]]
			if !ok {
				return nil, fmt.Errorf("line %d: undefined string %q", lineNo+1, fields[1])
			}
			emit(opPushS)
			emit32(idx)
		case op == "call":
			if len(fields) != 3 {
				return nil, fmt.Errorf("line %d: call wants label and nargs", lineNo+1)
			}
			emit(opCall)
			patches = append(patches, patch{off: len(p.Code), label: fields[1], line: lineNo + 1})
			emit32(0)
			n, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, fmt.Errorf("line %d: bad nargs", lineNo+1)
			}
			emit32(int32(n))
		case op == "native":
			if len(fields) != 3 {
				return nil, fmt.Errorf("line %d: native wants id and nargs", lineNo+1)
			}
			id, err := nativeID(fields[1])
			if err != nil {
				return nil, fmt.Errorf("line %d: %v", lineNo+1, err)
			}
			n, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, fmt.Errorf("line %d: bad nargs", lineNo+1)
			}
			emit(opNative)
			emit32(id)
			emit32(int32(n))
		case jumpOps[op] != 0:
			if len(fields) != 2 {
				return nil, fmt.Errorf("line %d: %s wants a label", lineNo+1, op)
			}
			emit(jumpOps[op])
			patches = append(patches, patch{off: len(p.Code), label: fields[1], line: lineNo + 1})
			emit32(0)
		case immOps[op] != 0:
			if len(fields) != 2 {
				return nil, fmt.Errorf("line %d: %s wants an index", lineNo+1, op)
			}
			v, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("line %d: bad index", lineNo+1)
			}
			emit(immOps[op])
			emit32(int32(v))
		default:
			b, ok := simple[op]
			if !ok {
				return nil, fmt.Errorf("line %d: unknown instruction %q", lineNo+1, op)
			}
			if len(fields) != 1 {
				return nil, fmt.Errorf("line %d: %s takes no operands", lineNo+1, op)
			}
			emit(b)
		}
	}

	for _, pt := range patches {
		addr, ok := labels[pt.label]
		if !ok {
			return nil, fmt.Errorf("line %d: undefined label %q", pt.line, pt.label)
		}
		p.Code[pt.off] = byte(addr)
		p.Code[pt.off+1] = byte(addr >> 8)
		p.Code[pt.off+2] = byte(addr >> 16)
		p.Code[pt.off+3] = byte(addr >> 24)
	}
	return p, nil
}

// nativeID resolves a native name or numeric id.
func nativeID(s string) (int32, error) {
	if id, ok := NativeNames[s]; ok {
		return id, nil
	}
	v, err := strconv.ParseInt(s, 0, 32)
	if err != nil {
		return 0, fmt.Errorf("unknown native %q", s)
	}
	return int32(v), nil
}
