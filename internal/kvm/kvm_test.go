package kvm

import (
	"bytes"
	"strings"
	"testing"

	"oskit/internal/bmfs"
	"oskit/internal/core"
	"oskit/internal/hw"
	"oskit/internal/libc"
	"oskit/internal/lmm"
)

func run(t *testing.T, src string) (int32, *VM) {
	t.Helper()
	prog, err := Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	vm := New(prog.Code, prog.Consts)
	v, err := vm.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return v, vm
}

func TestArithmeticAndControl(t *testing.T) {
	// 10! via a loop.
	v, _ := run(t, `
		push 1      ; acc
		storg 0
		push 10     ; i
		storg 1
	loop:
		loadg 1
		jz done
		loadg 0
		loadg 1
		mul
		storg 0
		loadg 1
		push 1
		sub
		storg 1
		jmp loop
	done:
		loadg 0
		halt
	`)
	if v != 3628800 {
		t.Fatalf("10! = %d", v)
	}
}

func TestCallRetLocals(t *testing.T) {
	// Recursive fibonacci.
	v, _ := run(t, `
		push 12
		call fib 1
		halt
	fib:
		loadl 0
		push 2
		lt
		jz rec
		loadl 0
		ret
	rec:
		loadl 0
		push 1
		sub
		call fib 1
		loadl 0
		push 2
		sub
		call fib 1
		add
		ret
	`)
	if v != 144 {
		t.Fatalf("fib(12) = %d", v)
	}
}

func TestBuffersAndStrings(t *testing.T) {
	v, vm := run(t, `
	.str greet "HELLO"
		pushs greet
		storg 0
		; lowercase the first byte: buf[0] += 32
		loadg 0
		push 0
		loadg 0
		push 0
		bget
		push 32
		add
		bset
		loadg 0
		blen
		halt
	`)
	if v != 5 {
		t.Fatalf("blen = %d", v)
	}
	h, ok := vm.InternString(0)
	if !ok {
		t.Fatal("intern failed")
	}
	b, _ := vm.Buf(h)
	if string(b) != "hELLO" {
		t.Fatalf("buffer = %q", b)
	}
}

func TestFaultsTrap(t *testing.T) {
	for name, src := range map[string]string{
		"div0":       "push 1\npush 0\ndiv\nhalt",
		"underflow":  "pop\nhalt",
		"nullbuf":    "push 0\nblen\nhalt",
		"badlocal":   "loadl 99\nhalt",
		"outofrange": "push 9\npush 0\npush 1\nbset\nhalt", // bad handle 9
	} {
		prog, err := Assemble(src)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		vm := New(prog.Code, prog.Consts)
		if _, err := vm.Run(); err == nil {
			t.Errorf("%s: no trap", name)
		}
		// With a Trap handler, the fault kills the thread and the VM
		// finishes cleanly.
		vm2 := New(prog.Code, prog.Consts)
		var got *TrapError
		vm2.Trap = func(e *TrapError) error { got = e; return nil }
		if _, err := vm2.Run(); err != nil {
			t.Errorf("%s: handled trap escaped: %v", name, err)
		}
		if got == nil {
			t.Errorf("%s: handler not called", name)
		}
	}
}

func TestThreadsPreemption(t *testing.T) {
	// Two spawned counters plus main; preemption comes from Preempt()
	// as the machine timer would deliver it.
	prog, err := Assemble(`
		spawn worker
		pop
		spawn worker
		pop
	wait:
		loadg 2
		push 2
		lt
		jnz wait
		loadg 0
		loadg 1
		add
		halt
	worker:
		selfid
		storl 0
		push 0
		storl 1
	wloop:
		loadl 1
		push 20000
		ge
		jnz wdone
		loadl 1
		push 1
		add
		storl 1
		jmp wloop
	wdone:
		loadl 1
		loadl 0
		storg 3    ; scratch: which global
		loadl 0
		push 1
		eq
		jz second
		storg 0
		jmp fin
	second:
		storg 1
	fin:
		loadg 2
		push 1
		add
		storg 2
		exit
	`)
	if err != nil {
		t.Fatal(err)
	}
	vm := New(prog.Code, prog.Consts)
	vm.Quantum = 50 // frequent switches
	done := make(chan int32, 1)
	go func() {
		v, err := vm.Run()
		if err != nil {
			t.Error(err)
		}
		done <- v
	}()
	// Preempt hard from "interrupt level" while it runs.
	for i := 0; i < 100; i++ {
		vm.Preempt()
	}
	v := <-done
	if v != 40000 {
		t.Fatalf("sum = %d", v)
	}
}

func TestYieldAndSpawnInterleave(t *testing.T) {
	// A spawned thread must get CPU time when the main thread yields.
	v, _ := run(t, `
		spawn setter
		pop
	spin:
		yield
		loadg 0
		jz spin
		loadg 0
		halt
	setter:
		push 77
		storg 0
		exit
	`)
	if v != 77 {
		t.Fatalf("global = %d", v)
	}
}

func TestBreakHook(t *testing.T) {
	prog, _ := Assemble("push 1\npush 2\nadd\nhalt")
	vm := New(prog.Code, prog.Consts)
	hits := 0
	vm.BreakHook = func(pc int) bool {
		if pc == 10 { // the add instruction (after two 5-byte pushes)
			hits++
			return hits == 1
		}
		return false
	}
	if _, err := vm.Run(); err != ErrBreak {
		t.Fatalf("Run = %v, want ErrBreak", err)
	}
	// Resume: hook declines the second time.
	v, err := vm.Run()
	if err != nil || v != 3 {
		t.Fatalf("resume = %d, %v", v, err)
	}
}

func TestNativesOverLibc(t *testing.T) {
	m := hw.NewMachine(hw.Config{MemBytes: 8 << 20})
	defer m.Halt()
	arena := lmm.NewArena()
	if err := arena.AddRegion(0x100000, 4<<20, 0, 0); err != nil {
		t.Fatal(err)
	}
	arena.AddFree(0x100000, 4<<20)
	env := core.NewEnv(m, arena)
	var console bytes.Buffer
	env.Putchar = func(b byte) { console.WriteByte(b) }
	c := libc.New(env)
	fs := bmfs.New(nil)
	root, _ := fs.GetRoot()
	c.SetRoot(root)
	root.Release()
	if err := c.Mkdir("/etc", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := c.WriteFile("/etc/motd", []byte("MOTD-CONTENT"), 0o644); err != nil {
		t.Fatal(err)
	}

	prog, err := Assemble(`
	.str path "/etc/motd"
	.str sep  ": "
		pushs path
		push 0          ; O_RDONLY
		native open 2
		storg 0         ; fd
		push 64
		newbuf
		storg 1         ; buf
		loadg 0
		loadg 1
		push 64
		native read 3
		storg 2         ; n
		pushs path
		native print 1
		pop
		pushs sep
		native print 1
		pop
		loadg 2
		native putint 1
		pop
		loadg 0
		native close 1
		pop
		loadg 2
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	vm := New(prog.Code, prog.Consts)
	vm.BindLibc(c)
	v, err := vm.Run()
	if err != nil {
		t.Fatal(err)
	}
	if v != 12 {
		t.Fatalf("read returned %d", v)
	}
	out := console.String()
	if !strings.Contains(out, "/etc/motd: 12") {
		t.Fatalf("console = %q", out)
	}
	// The file contents landed in the VM buffer.
	vmBuf, _ := vm.Buf(2) // handle 2: path=1? depends on intern order
	_ = vmBuf
}

func TestAssembleErrors(t *testing.T) {
	for name, src := range map[string]string{
		"unknown op":    "frobnicate",
		"bad label":     "jmp nowhere",
		"dup label":     "a:\na:\nhalt",
		"bad imm":       "push zz",
		"extra operand": "add 3",
		"bad native":    "native nosuch 0",
		"bad str":       `.str x notquoted`,
	} {
		if _, err := Assemble(src); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
