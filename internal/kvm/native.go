package kvm

import (
	"fmt"

	"oskit/internal/com"
	"oskit/internal/libc"
)

// The native-call bridge: like Kaffe, the runtime is "written for a
// standard POSIX environment, requiring support for file I/O calls such
// as open and read, as well as BSD's socket API" (§6.1.4).  Everything
// below lands in the minimal C library's descriptor layer, so the VM is
// oblivious to which file system or protocol stack the client OS bound.

// Native ids (stable ABI for assembled programs).
const (
	NatPrint   = 0  // print(buf) -> bytes written
	NatPutInt  = 1  // putint(v) -> v
	NatTicks   = 2  // ticks() -> clock ticks (truncated)
	NatSocket  = 3  // socket(domain, type, proto) -> fd
	NatBind    = 4  // bind(fd, port) -> 0
	NatListen  = 5  // listen(fd, backlog) -> 0
	NatAccept  = 6  // accept(fd) -> connfd
	NatConnect = 7  // connect(fd, ipBE, port) -> 0
	NatSend    = 8  // send(fd, buf, n) -> sent
	NatRecv    = 9  // recv(fd, buf, max) -> received (0 = EOF)
	NatClose   = 10 // close(fd) -> 0
	NatOpen    = 11 // open(pathBuf, flags) -> fd
	NatRead    = 12 // read(fd, buf, n) -> n
	NatWrite   = 13 // write(fd, buf, n) -> n
)

// NativeNames maps assembly mnemonics to ids.
var NativeNames = map[string]int32{
	"print": NatPrint, "putint": NatPutInt, "ticks": NatTicks,
	"socket": NatSocket, "bind": NatBind, "listen": NatListen,
	"accept": NatAccept, "connect": NatConnect,
	"send": NatSend, "recv": NatRecv, "close": NatClose,
	"open": NatOpen, "read": NatRead, "write": NatWrite,
}

// BindLibc installs the standard native set over a C library instance.
func (vm *VM) BindLibc(c *libc.C) {
	buf := func(vm *VM, h int32) ([]byte, error) {
		b, ok := vm.Buf(h)
		if !ok {
			return nil, fmt.Errorf("null or dangling buffer %d", h)
		}
		return b, nil
	}
	errno := func(err error) (int32, error) {
		if err == nil {
			return 0, nil
		}
		// POSIX style: errors become -1, the program checks.
		return -1, nil
	}

	vm.RegisterNative(NatPrint, func(vm *VM, a []int32) (int32, error) {
		b, err := buf(vm, a[0])
		if err != nil {
			return 0, err
		}
		c.Printf("%s", b)
		return int32(len(b)), nil
	})
	vm.RegisterNative(NatPutInt, func(vm *VM, a []int32) (int32, error) {
		c.Printf("%d", int(a[0]))
		return a[0], nil
	})
	vm.RegisterNative(NatTicks, func(vm *VM, a []int32) (int32, error) {
		t, _ := c.GetRUsage()
		return int32(t), nil
	})
	vm.RegisterNative(NatSocket, func(vm *VM, a []int32) (int32, error) {
		fd, err := c.Socket(int(a[0]), int(a[1]), int(a[2]))
		if err != nil {
			return -1, nil
		}
		return int32(fd), nil
	})
	vm.RegisterNative(NatBind, func(vm *VM, a []int32) (int32, error) {
		return errno(c.Bind(int(a[0]), com.SockAddr{Family: com.AFInet, Port: uint16(a[1])}))
	})
	vm.RegisterNative(NatListen, func(vm *VM, a []int32) (int32, error) {
		return errno(c.Listen(int(a[0]), int(a[1])))
	})
	vm.RegisterNative(NatAccept, func(vm *VM, a []int32) (int32, error) {
		fd, _, err := c.Accept(int(a[0]))
		if err != nil {
			return -1, nil
		}
		return int32(fd), nil
	})
	vm.RegisterNative(NatConnect, func(vm *VM, a []int32) (int32, error) {
		addr := com.SockAddr{Family: com.AFInet, Port: uint16(a[2])}
		ip := uint32(a[1])
		addr.Addr = [4]byte{byte(ip >> 24), byte(ip >> 16), byte(ip >> 8), byte(ip)}
		return errno(c.Connect(int(a[0]), addr))
	})
	vm.RegisterNative(NatSend, func(vm *VM, a []int32) (int32, error) {
		b, err := buf(vm, a[1])
		if err != nil {
			return 0, err
		}
		n := int(a[2])
		if n < 0 || n > len(b) {
			return 0, fmt.Errorf("send length %d out of range", n)
		}
		sent, serr := c.Write(int(a[0]), b[:n])
		if serr != nil {
			return -1, nil
		}
		return int32(sent), nil
	})
	vm.RegisterNative(NatRecv, func(vm *VM, a []int32) (int32, error) {
		b, err := buf(vm, a[1])
		if err != nil {
			return 0, err
		}
		max := int(a[2])
		if max < 0 || max > len(b) {
			return 0, fmt.Errorf("recv length %d out of range", max)
		}
		n, rerr := c.Read(int(a[0]), b[:max])
		if rerr != nil {
			return -1, nil
		}
		return int32(n), nil
	})
	vm.RegisterNative(NatClose, func(vm *VM, a []int32) (int32, error) {
		return errno(c.Close(int(a[0])))
	})
	vm.RegisterNative(NatOpen, func(vm *VM, a []int32) (int32, error) {
		b, err := buf(vm, a[0])
		if err != nil {
			return 0, err
		}
		fd, oerr := c.Open(string(b), int(a[1]), 0o644)
		if oerr != nil {
			return -1, nil
		}
		return int32(fd), nil
	})
	vm.RegisterNative(NatRead, func(vm *VM, a []int32) (int32, error) {
		b, err := buf(vm, a[1])
		if err != nil {
			return 0, err
		}
		n := int(a[2])
		if n < 0 || n > len(b) {
			return 0, fmt.Errorf("read length out of range")
		}
		got, rerr := c.Read(int(a[0]), b[:n])
		if rerr != nil {
			return -1, nil
		}
		return int32(got), nil
	})
	vm.RegisterNative(NatWrite, func(vm *VM, a []int32) (int32, error) {
		b, err := buf(vm, a[1])
		if err != nil {
			return 0, err
		}
		n := int(a[2])
		if n < 0 || n > len(b) {
			return 0, fmt.Errorf("write length out of range")
		}
		wrote, werr := c.Write(int(a[0]), b[:n])
		if werr != nil {
			return -1, nil
		}
		return int32(wrote), nil
	})
}
