// Package kvm is the kit's language-runtime case study: a small stack
// bytecode virtual machine standing in for the Kaffe JVM of the paper's
// Java/PC project (§6.1.4), exercising the same claims:
//
//   - The minimal POSIX environment carries a ported runtime: kvm's
//     native calls land in the C library's descriptor layer (files,
//     sockets, console), so the same bytecode runs over any file system
//     or protocol stack the client binds (§6.2.1).
//   - No imposed process/thread abstraction (§6.2.3): kvm implements its
//     own green threads, with preemption driven directly by the machine
//     timer through a kit callout — no host OS thread model in the way.
//   - Exposed implementation and hardware (§6.2.4): a null buffer handle
//     raises a general-protection trap through the kernel support
//     library's documented trap path, where a client (or the GDB stub)
//     can catch it — the Java null-pointer-check trick.
//
// Programs are written in kvm assembly (asm.go) or built as FLX images
// and loaded from boot modules, the path the paper's language runtimes
// invariably preferred (§6.2.2).
package kvm

import (
	"fmt"
	"sync/atomic"

	"oskit/internal/stats"
)

// Opcodes.
const (
	opHalt  = 0x00
	opPush  = 0x01
	opPop   = 0x02
	opDup   = 0x03
	opSwap  = 0x04
	opLoadG = 0x05
	opStorG = 0x06
	opLoadL = 0x07
	opStorL = 0x08

	opAdd = 0x10
	opSub = 0x11
	opMul = 0x12
	opDiv = 0x13
	opMod = 0x14
	opNeg = 0x15
	opAnd = 0x16
	opOr  = 0x17
	opXor = 0x18
	opShl = 0x19
	opShr = 0x1a

	opEq = 0x20
	opNe = 0x21
	opLt = 0x22
	opLe = 0x23
	opGt = 0x24
	opGe = 0x25

	opJmp  = 0x30
	opJz   = 0x31
	opJnz  = 0x32
	opCall = 0x33
	opRet  = 0x34

	opNative = 0x38

	opNewBuf = 0x40
	opBGet   = 0x41
	opBSet   = 0x42
	opBLen   = 0x43
	opPushS  = 0x44

	opSpawn  = 0x50
	opYield  = 0x51
	opSelfID = 0x52
	opExit   = 0x53
)

// TrapError reports a runtime fault; the embedding kernel decides what a
// fault means (the quickstart prints it; the netcomputer raises a kern
// trap).
type TrapError struct {
	PC     int
	Thread int
	What   string
}

func (e *TrapError) Error() string {
	return fmt.Sprintf("kvm: trap at pc=%d thread=%d: %s", e.PC, e.Thread, e.What)
}

// NativeFunc is a host function callable from bytecode: it receives the
// VM (for buffer access) and the popped arguments, returning one result.
type NativeFunc func(vm *VM, args []int32) (int32, error)

// Thread is one green thread.
type Thread struct {
	ID    int
	pc    int
	stack []int32
	// frames: each frame is (callerPC, stackBase, localBase).
	frames []frame
	locals []int32
	done   bool
}

type frame struct {
	retPC     int
	stackBase int
	localBase int
}

const maxLocals = 16

// VM is one virtual machine instance.
type VM struct {
	Code   []byte
	Consts []string

	globals [256]int32
	heap    map[int32][]byte
	nextH   int32
	strs    map[int32]int32 // const index -> interned handle

	threads []*Thread
	cur     int
	nextID  int

	// Per-CPU scheduling (SetCPUs).  With cpus <= 1 the scheduler is the
	// original single-queue round-robin, byte-for-byte; with more, each
	// virtual CPU owns a FIFO run queue holding thread indices and the
	// interpreter advances CPU-by-CPU, stealing deterministically when a
	// queue drains.
	cpus   int
	runq   [][]int
	curCPU int
	nextq  int // round-robin enqueue cursor for new threads

	natives map[int32]NativeFunc

	preempt atomic.Bool //oskit:atomic
	// Quantum is the instruction budget per thread between voluntary
	// switches (preemption can cut it shorter).
	Quantum int //oskit:initonly

	// BreakHook, when set, is consulted with each pc before execution;
	// returning true suspends the VM with ErrBreak (the GDB-stub
	// cooperation point).
	BreakHook func(pc int) bool //oskit:initonly

	// Trap, when set, receives faults instead of them aborting Run.
	// Returning nil resumes with the faulting thread killed.
	Trap func(*TrapError) error

	steps uint64

	// com.Stats export: green-thread scheduler counters.  The VM has no
	// environment handle, so the embedding kernel registers StatsSet().
	set        *stats.Set
	scSwitches *stats.Counter
	scPreempts *stats.Counter
	scSpawns   *stats.Counter
	scSteals   *stats.Counter
}

// New creates a VM for a program.
func New(code []byte, consts []string) *VM {
	vm := &VM{
		Code:    code,
		Consts:  consts,
		heap:    map[int32][]byte{},
		strs:    map[int32]int32{},
		natives: map[int32]NativeFunc{},
		nextH:   1,
		Quantum: 1000,
	}
	vm.set = stats.NewSet("kvm")
	vm.scSwitches = vm.set.Counter("sched.switches")
	vm.scPreempts = vm.set.Counter("sched.preemptions")
	vm.scSpawns = vm.set.Counter("sched.spawns")
	vm.scSteals = vm.set.Counter("sched.steals")
	vm.spawn(0)
	return vm
}

// SetCPUs gives the VM n virtual CPUs, each with its own run queue;
// live threads are dealt round-robin across them and later spawns keep
// rotating.  n <= 1 restores the original single-queue scheduler
// unchanged.  The interleaving stays deterministic for a given (program,
// n) — the multiprocessor structure is modeled, the execution replayable.
func (vm *VM) SetCPUs(n int) {
	if n < 1 {
		n = 1
	}
	if n == 1 {
		vm.cpus, vm.runq = 0, nil
		return
	}
	vm.cpus = n
	vm.runq = make([][]int, n)
	vm.curCPU, vm.nextq = 0, 0
	for i, t := range vm.threads {
		if !t.done {
			vm.runq[vm.nextq%n] = append(vm.runq[vm.nextq%n], i)
			vm.nextq++
		}
	}
}

// CPUs reports the virtual CPU count (1 for the default scheduler).
func (vm *VM) CPUs() int {
	if vm.cpus < 1 {
		return 1
	}
	return vm.cpus
}

// StatsSet exposes the VM's com.Stats export for registration in a
// services registry.  The VM keeps its own reference.
func (vm *VM) StatsSet() *stats.Set { return vm.set }

// RegisterNative installs a host function under an id.
func (vm *VM) RegisterNative(id int32, fn NativeFunc) { vm.natives[id] = fn }

// Preempt requests a thread switch at the next instruction boundary;
// safe to call from interrupt level (the timer callout does).
func (vm *VM) Preempt() { vm.preempt.Store(true) }

// Steps reports executed instructions (benchmarks).
func (vm *VM) Steps() uint64 { return vm.steps }

// Threads reports live thread count.
func (vm *VM) Threads() int {
	n := 0
	for _, t := range vm.threads {
		if !t.done {
			n++
		}
	}
	return n
}

// NewBuf allocates a VM buffer and returns its handle.
func (vm *VM) NewBuf(size int32) int32 {
	h := vm.nextH
	vm.nextH++
	vm.heap[h] = make([]byte, size)
	return h
}

// Buf returns the bytes of a handle.
func (vm *VM) Buf(h int32) ([]byte, bool) {
	b, ok := vm.heap[h]
	return b, ok
}

// InternString returns a (cached) buffer handle for a constant string.
func (vm *VM) InternString(idx int32) (int32, bool) {
	if h, ok := vm.strs[idx]; ok {
		return h, true
	}
	if idx < 0 || int(idx) >= len(vm.Consts) {
		return 0, false
	}
	h := vm.NewBuf(int32(len(vm.Consts[idx])))
	copy(vm.heap[h], vm.Consts[idx])
	vm.strs[idx] = h
	return h, true
}

func (vm *VM) spawn(pc int) *Thread {
	t := &Thread{ID: vm.nextID, pc: pc, locals: make([]int32, maxLocals)}
	t.frames = []frame{{retPC: -1}}
	vm.nextID++
	vm.threads = append(vm.threads, t)
	if vm.cpus > 1 {
		cpu := vm.nextq % vm.cpus
		vm.runq[cpu] = append(vm.runq[cpu], len(vm.threads)-1)
		vm.nextq++
	}
	vm.scSpawns.Inc()
	return t
}

// ErrBreak is returned by Run when BreakHook fires.
var ErrBreak = fmt.Errorf("kvm: breakpoint")

// Run interprets until every thread halts, a fault escapes, or the
// program executes HALT; it returns the HALT value (top of stack, or 0).
func (vm *VM) Run() (int32, error) {
	for {
		var t *Thread
		if vm.cpus > 1 {
			t = vm.pickSMP()
		} else {
			t = vm.pick()
		}
		if t == nil {
			return 0, nil // all threads exited
		}
		ret, done, err := vm.runThread(t)
		if err != nil {
			return 0, err
		}
		if done {
			return ret, nil
		}
	}
}

// pick selects the next runnable thread round-robin.
func (vm *VM) pick() *Thread {
	n := len(vm.threads)
	for i := 1; i <= n; i++ {
		t := vm.threads[(vm.cur+i)%n]
		if !t.done {
			if (vm.cur+i)%n != vm.cur {
				vm.scSwitches.Inc()
			}
			vm.cur = (vm.cur + i) % n
			return t
		}
	}
	return nil
}

// pickSMP selects the next runnable thread on the multiprocessor model:
// the interpreter visits virtual CPUs round-robin, each CPU rotating
// its own FIFO queue (head runs, then goes to the tail).  A CPU whose
// queue has drained steals the tail of the first sibling holding more
// than one runnable thread — the classic deque discipline, made
// deterministic by the fixed scan order.
func (vm *VM) pickSMP() *Thread {
	n := vm.cpus
	for tried := 0; tried < n; tried++ {
		cpu := (vm.curCPU + tried) % n
		vm.prune(cpu)
		if len(vm.runq[cpu]) == 0 {
			vm.steal(cpu)
		}
		q := vm.runq[cpu]
		if len(q) == 0 {
			continue
		}
		idx := q[0]
		vm.runq[cpu] = append(q[1:], idx)
		if idx != vm.cur {
			vm.scSwitches.Inc()
		}
		vm.cur = idx
		vm.curCPU = (cpu + 1) % n
		return vm.threads[idx]
	}
	return nil
}

// prune drops finished threads from one CPU's queue.
func (vm *VM) prune(cpu int) {
	q := vm.runq[cpu][:0]
	for _, idx := range vm.runq[cpu] {
		if !vm.threads[idx].done {
			q = append(q, idx)
		}
	}
	vm.runq[cpu] = q
}

// steal moves the tail of the first sibling queue with more than one
// thread onto cpu's queue.  A sibling's last thread is never taken —
// its owner will run it without a migration.
func (vm *VM) steal(cpu int) {
	n := vm.cpus
	for d := 1; d < n; d++ {
		v := (cpu + d) % n
		vm.prune(v)
		if len(vm.runq[v]) > 1 {
			q := vm.runq[v]
			idx := q[len(q)-1]
			vm.runq[v] = q[:len(q)-1]
			vm.runq[cpu] = append(vm.runq[cpu], idx)
			vm.scSteals.Inc()
			return
		}
	}
}

// runThread executes until the quantum expires, the thread blocks or
// exits, or the whole program halts (done=true).
func (vm *VM) runThread(t *Thread) (int32, bool, error) {
	budget := vm.Quantum
	for budget > 0 {
		budget--
		if vm.preempt.Swap(false) {
			vm.scPreempts.Inc()
			return 0, false, nil // preempted: switch threads
		}
		if vm.BreakHook != nil && vm.BreakHook(t.pc) {
			return 0, false, ErrBreak
		}
		ret, halted, err := vm.step(t)
		if err != nil {
			te := &TrapError{PC: t.pc, Thread: t.ID, What: err.Error()}
			if vm.Trap != nil {
				if herr := vm.Trap(te); herr == nil {
					t.done = true // fault handled: kill the thread
					return 0, false, nil
				}
			}
			return 0, false, te
		}
		if halted {
			return ret, true, nil
		}
		if t.done {
			return 0, false, nil
		}
	}
	return 0, false, nil // quantum exhausted
}

func (t *Thread) push(v int32) { t.stack = append(t.stack, v) }

func (t *Thread) pop() (int32, error) {
	base := t.frames[len(t.frames)-1].stackBase
	if len(t.stack) <= base {
		return 0, fmt.Errorf("stack underflow")
	}
	v := t.stack[len(t.stack)-1]
	t.stack = t.stack[:len(t.stack)-1]
	return v, nil
}

func (vm *VM) imm(t *Thread) (int32, error) {
	if t.pc+4 > len(vm.Code) {
		return 0, fmt.Errorf("truncated instruction")
	}
	v := int32(vm.Code[t.pc]) | int32(vm.Code[t.pc+1])<<8 |
		int32(vm.Code[t.pc+2])<<16 | int32(vm.Code[t.pc+3])<<24
	t.pc += 4
	return v, nil
}

// step executes one instruction; halted=true on HALT.
func (vm *VM) step(t *Thread) (int32, bool, error) {
	vm.steps++
	if t.pc < 0 || t.pc >= len(vm.Code) {
		return 0, false, fmt.Errorf("pc out of range")
	}
	op := vm.Code[t.pc]
	t.pc++
	switch op {
	case opHalt:
		v := int32(0)
		if len(t.stack) > t.frames[len(t.frames)-1].stackBase {
			v, _ = t.pop()
		}
		return v, true, nil

	case opPush:
		v, err := vm.imm(t)
		if err != nil {
			return 0, false, err
		}
		t.push(v)
	case opPop:
		if _, err := t.pop(); err != nil {
			return 0, false, err
		}
	case opDup:
		v, err := t.pop()
		if err != nil {
			return 0, false, err
		}
		t.push(v)
		t.push(v)
	case opSwap:
		a, err := t.pop()
		if err != nil {
			return 0, false, err
		}
		b, err := t.pop()
		if err != nil {
			return 0, false, err
		}
		t.push(a)
		t.push(b)

	case opLoadG, opStorG:
		idx, err := vm.imm(t)
		if err != nil {
			return 0, false, err
		}
		if idx < 0 || int(idx) >= len(vm.globals) {
			return 0, false, fmt.Errorf("global %d out of range", idx)
		}
		if op == opLoadG {
			t.push(vm.globals[idx])
		} else {
			v, err := t.pop()
			if err != nil {
				return 0, false, err
			}
			vm.globals[idx] = v
		}

	case opLoadL, opStorL:
		idx, err := vm.imm(t)
		if err != nil {
			return 0, false, err
		}
		base := t.frames[len(t.frames)-1].localBase
		if idx < 0 || int(idx) >= maxLocals {
			return 0, false, fmt.Errorf("local %d out of range", idx)
		}
		if op == opLoadL {
			t.push(t.locals[base+int(idx)])
		} else {
			v, err := t.pop()
			if err != nil {
				return 0, false, err
			}
			t.locals[base+int(idx)] = v
		}

	case opAdd, opSub, opMul, opDiv, opMod, opAnd, opOr, opXor, opShl, opShr,
		opEq, opNe, opLt, opLe, opGt, opGe:
		b, err := t.pop()
		if err != nil {
			return 0, false, err
		}
		a, err := t.pop()
		if err != nil {
			return 0, false, err
		}
		v, err := alu(op, a, b)
		if err != nil {
			return 0, false, err
		}
		t.push(v)
	case opNeg:
		a, err := t.pop()
		if err != nil {
			return 0, false, err
		}
		t.push(-a)

	case opJmp:
		a, err := vm.imm(t)
		if err != nil {
			return 0, false, err
		}
		t.pc = int(a)
	case opJz, opJnz:
		a, err := vm.imm(t)
		if err != nil {
			return 0, false, err
		}
		v, err := t.pop()
		if err != nil {
			return 0, false, err
		}
		if (op == opJz && v == 0) || (op == opJnz && v != 0) {
			t.pc = int(a)
		}

	case opCall:
		addr, err := vm.imm(t)
		if err != nil {
			return 0, false, err
		}
		nargs, err := vm.imm(t)
		if err != nil {
			return 0, false, err
		}
		newBase := len(t.locals)
		t.locals = append(t.locals, make([]int32, maxLocals)...)
		for i := int(nargs) - 1; i >= 0; i-- {
			v, err := t.pop()
			if err != nil {
				return 0, false, err
			}
			t.locals[newBase+i] = v
		}
		t.frames = append(t.frames, frame{retPC: t.pc, stackBase: len(t.stack), localBase: newBase})
		t.pc = int(addr)
	case opRet:
		if len(t.frames) == 1 {
			t.done = true
			return 0, false, nil
		}
		v, err := t.pop()
		if err != nil {
			return 0, false, err
		}
		f := t.frames[len(t.frames)-1]
		t.frames = t.frames[:len(t.frames)-1]
		t.stack = t.stack[:f.stackBase]
		t.locals = t.locals[:f.localBase]
		t.pc = f.retPC
		t.push(v)

	case opNative:
		id, err := vm.imm(t)
		if err != nil {
			return 0, false, err
		}
		nargs, err := vm.imm(t)
		if err != nil {
			return 0, false, err
		}
		fn := vm.natives[id]
		if fn == nil {
			return 0, false, fmt.Errorf("undefined native %d", id)
		}
		args := make([]int32, nargs)
		for i := int(nargs) - 1; i >= 0; i-- {
			v, err := t.pop()
			if err != nil {
				return 0, false, err
			}
			args[i] = v
		}
		res, err := fn(vm, args)
		if err != nil {
			return 0, false, err
		}
		t.push(res)

	case opNewBuf:
		size, err := t.pop()
		if err != nil {
			return 0, false, err
		}
		if size < 0 || size > 1<<20 {
			return 0, false, fmt.Errorf("bad buffer size %d", size)
		}
		t.push(vm.NewBuf(size))
	case opBGet, opBSet, opBLen:
		if err := vm.bufOp(t, op); err != nil {
			return 0, false, err
		}
	case opPushS:
		idx, err := vm.imm(t)
		if err != nil {
			return 0, false, err
		}
		h, ok := vm.InternString(idx)
		if !ok {
			return 0, false, fmt.Errorf("bad string constant %d", idx)
		}
		t.push(h)

	case opSpawn:
		addr, err := vm.imm(t)
		if err != nil {
			return 0, false, err
		}
		nt := vm.spawn(int(addr))
		t.push(int32(nt.ID))
	case opYield:
		// End the quantum at the next boundary: cooperative switch.
		vm.preempt.Store(true)
	case opSelfID:
		t.push(int32(t.ID))
	case opExit:
		t.done = true

	default:
		return 0, false, fmt.Errorf("illegal opcode %#x", op)
	}
	return 0, false, nil
}

func (vm *VM) bufOp(t *Thread, op byte) error {
	switch op {
	case opBLen:
		h, err := t.pop()
		if err != nil {
			return err
		}
		b, ok := vm.heap[h]
		if !ok {
			return fmt.Errorf("null or dangling buffer %d", h)
		}
		t.push(int32(len(b)))
	case opBGet:
		i, err := t.pop()
		if err != nil {
			return err
		}
		h, err := t.pop()
		if err != nil {
			return err
		}
		b, ok := vm.heap[h]
		if !ok {
			return fmt.Errorf("null or dangling buffer %d", h)
		}
		if i < 0 || int(i) >= len(b) {
			return fmt.Errorf("buffer index %d out of range", i)
		}
		t.push(int32(b[i]))
	case opBSet:
		v, err := t.pop()
		if err != nil {
			return err
		}
		i, err := t.pop()
		if err != nil {
			return err
		}
		h, err := t.pop()
		if err != nil {
			return err
		}
		b, ok := vm.heap[h]
		if !ok {
			return fmt.Errorf("null or dangling buffer %d", h)
		}
		if i < 0 || int(i) >= len(b) {
			return fmt.Errorf("buffer index %d out of range", i)
		}
		b[i] = byte(v)
	}
	return nil
}

func alu(op byte, a, b int32) (int32, error) {
	switch op {
	case opAdd:
		return a + b, nil
	case opSub:
		return a - b, nil
	case opMul:
		return a * b, nil
	case opDiv:
		if b == 0 {
			return 0, fmt.Errorf("divide by zero")
		}
		return a / b, nil
	case opMod:
		if b == 0 {
			return 0, fmt.Errorf("divide by zero")
		}
		return a % b, nil
	case opAnd:
		return a & b, nil
	case opOr:
		return a | b, nil
	case opXor:
		return a ^ b, nil
	case opShl:
		return a << (uint(b) & 31), nil
	case opShr:
		return int32(uint32(a) >> (uint(b) & 31)), nil
	case opEq:
		return b2i(a == b), nil
	case opNe:
		return b2i(a != b), nil
	case opLt:
		return b2i(a < b), nil
	case opLe:
		return b2i(a <= b), nil
	case opGt:
		return b2i(a > b), nil
	case opGe:
		return b2i(a >= b), nil
	}
	return 0, fmt.Errorf("bad alu op")
}

func b2i(b bool) int32 {
	if b {
		return 1
	}
	return 0
}
