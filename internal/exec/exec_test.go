package exec

import (
	"bytes"
	"testing"
	"testing/quick"

	"oskit/internal/amm"
	"oskit/internal/core"
	"oskit/internal/hw"
	"oskit/internal/lmm"
)

func testEnv(t *testing.T) *core.Env {
	t.Helper()
	m := hw.NewMachine(hw.Config{MemBytes: 16 << 20})
	t.Cleanup(m.Halt)
	arena := lmm.NewArena()
	if err := arena.AddRegion(0x100000, 8<<20, 0, 0); err != nil {
		t.Fatal(err)
	}
	arena.AddFree(0x100000, 8<<20)
	return core.NewEnv(m, arena)
}

func sampleImage() *Image {
	return &Image{
		Entry: 0x1000,
		Segments: []Segment{
			{VAddr: 0x1000, Data: []byte("TEXT SEGMENT CODE"), MemSize: 0x2000, Flags: SegRead | SegExec},
			{VAddr: 0x4000, Data: []byte("DATA"), MemSize: 0x1000 + 64, Flags: SegRead | SegWrite},
		},
	}
}

func TestBuildParseRoundTrip(t *testing.T) {
	img := sampleImage()
	b := Build(img)
	got, err := Parse(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Entry != img.Entry || len(got.Segments) != 2 {
		t.Fatalf("parsed = %+v", got)
	}
	for i := range img.Segments {
		if !bytes.Equal(got.Segments[i].Data, img.Segments[i].Data) ||
			got.Segments[i].VAddr != img.Segments[i].VAddr ||
			got.Segments[i].MemSize != img.Segments[i].MemSize ||
			got.Segments[i].Flags != img.Segments[i].Flags {
			t.Fatalf("segment %d mismatch", i)
		}
	}
}

func TestParseRejectsBadImages(t *testing.T) {
	if _, err := Parse([]byte("junk")); err == nil {
		t.Fatal("junk accepted")
	}
	img := Build(sampleImage())
	for _, cut := range []int{4, 11, 20, len(img) - 1} {
		if _, err := Parse(img[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	// memsz < filesz.
	bad := Build(&Image{Segments: []Segment{{VAddr: 0, Data: make([]byte, 100), MemSize: 10}}})
	if _, err := Parse(bad); err == nil {
		t.Fatal("memsz < filesz accepted")
	}
}

func TestLoadAndReadVirtual(t *testing.T) {
	env := testEnv(t)
	l, err := Load(env, sampleImage())
	if err != nil {
		t.Fatal(err)
	}
	defer l.Unload()
	if l.Entry != 0x1000 {
		t.Fatalf("entry = %#x", l.Entry)
	}
	// Initialized data reads back.
	buf := make([]byte, 17)
	if err := l.ReadVirtual(0x1000, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "TEXT SEGMENT CODE" {
		t.Fatalf("text = %q", buf)
	}
	// BSS is zero.
	if err := l.ReadVirtual(0x4004, buf); err != nil {
		t.Fatal(err)
	}
	for _, b := range buf {
		if b != 0 {
			t.Fatal("bss not zeroed")
		}
	}
	// The AMM layout records segments with their flags.
	e, ok := l.Space.Lookup(0x1800)
	if !ok || e.Flags&amm.Allocated == 0 || e.Flags&SegExec == 0 {
		t.Fatalf("text mapping = %+v", e)
	}
	if _, ok := l.Space.Lookup(0x3000); !ok {
		t.Fatal("gap lookup failed")
	} else if e, _ := l.Space.Lookup(0x3000); e.Flags != amm.Free {
		t.Fatalf("gap flags = %#x", e.Flags)
	}
	// Unmapped reads fail.
	if err := l.ReadVirtual(0x9000, buf); err == nil {
		t.Fatal("unmapped read succeeded")
	}
	// Crossing the page-rounded segment end (0x1000 + 0x2000) fails.
	if err := l.ReadVirtual(0x3000-4, make([]byte, 16)); err == nil {
		t.Fatal("cross-segment read succeeded")
	}
}

func TestLoadRejectsOverlapsAndMisalignment(t *testing.T) {
	env := testEnv(t)
	if _, err := Load(env, &Image{Segments: []Segment{
		{VAddr: 0x1000, Data: []byte("a"), MemSize: 0x2000},
		{VAddr: 0x2000, Data: []byte("b"), MemSize: 0x1000},
	}}); err == nil {
		t.Fatal("overlapping segments accepted")
	}
	if _, err := Load(env, &Image{Segments: []Segment{
		{VAddr: 0x1004, Data: []byte("a"), MemSize: 16},
	}}); err == nil {
		t.Fatal("misaligned segment accepted")
	}
}

// Property: Build/Parse round-trips arbitrary page-aligned images.
func TestRoundTripProperty(t *testing.T) {
	f := func(entry uint32, blobs [][]byte) bool {
		img := &Image{Entry: entry}
		va := uint32(0x1000)
		for _, b := range blobs {
			if len(b) > 2048 {
				b = b[:2048]
			}
			img.Segments = append(img.Segments, Segment{
				VAddr: va, Data: b, MemSize: uint32(len(b)) + 512, Flags: SegRead,
			})
			va += 0x10000
			if len(img.Segments) == 8 {
				break
			}
		}
		got, err := Parse(Build(img))
		if err != nil || got.Entry != entry || len(got.Segments) != len(img.Segments) {
			return false
		}
		for i := range img.Segments {
			if !bytes.Equal(got.Segments[i].Data, img.Segments[i].Data) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
