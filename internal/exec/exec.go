// Package exec is the kit's program loading component (Table 3 "exec"):
// it interprets the kit's simple executable container — FLX, a segmented
// flat format playing the role the a.out/ELF interpreters played in the
// original — and loads program segments into (simulated) physical
// memory, recording the address-space shape in an AMM map so the client
// OS can manage the process image (§3.3's "management of processes'
// address spaces").
package exec

import (
	"encoding/binary"
	"fmt"

	"oskit/internal/amm"
	"oskit/internal/core"
	"oskit/internal/hw"
)

// Magic begins every FLX image.
var Magic = [4]byte{'F', 'L', 'X', '1'}

// Segment attribute flags (also stored as AMM attribute bits above
// amm.Allocated).
const (
	SegRead  = 1 << 4
	SegWrite = 1 << 5
	SegExec  = 1 << 6
)

// Segment describes one loadable region.
type Segment struct {
	// VAddr is the segment's virtual load address.
	VAddr uint32
	// Data is the initialized prefix; the rest of MemSize is zero (bss).
	Data []byte
	// MemSize is the full in-memory size (>= len(Data)).
	MemSize uint32
	// Flags are SegRead/SegWrite/SegExec.
	Flags uint32
}

// Image is a parsed executable.
type Image struct {
	Entry    uint32
	Segments []Segment
}

// Build serializes an image:
//
//	magic[4] | entry u32 | nsegs u32 |
//	nsegs × (vaddr u32 | filesz u32 | memsz u32 | flags u32) | data…
func Build(img *Image) []byte {
	out := append([]byte(nil), Magic[:]...)
	out = binary.LittleEndian.AppendUint32(out, img.Entry)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(img.Segments)))
	for _, s := range img.Segments {
		out = binary.LittleEndian.AppendUint32(out, s.VAddr)
		out = binary.LittleEndian.AppendUint32(out, uint32(len(s.Data)))
		out = binary.LittleEndian.AppendUint32(out, s.MemSize)
		out = binary.LittleEndian.AppendUint32(out, s.Flags)
	}
	for _, s := range img.Segments {
		out = append(out, s.Data...)
	}
	return out
}

// Parse decodes an image without loading it.
func Parse(b []byte) (*Image, error) {
	if len(b) < 12 || b[0] != 'F' || b[1] != 'L' || b[2] != 'X' || b[3] != '1' {
		return nil, fmt.Errorf("exec: bad magic")
	}
	le := binary.LittleEndian
	img := &Image{Entry: le.Uint32(b[4:8])}
	n := le.Uint32(b[8:12])
	if n > 64 {
		return nil, fmt.Errorf("exec: implausible segment count %d", n)
	}
	hdr := 12 + int(n)*16
	if len(b) < hdr {
		return nil, fmt.Errorf("exec: truncated header")
	}
	dataOff := hdr
	for i := 0; i < int(n); i++ {
		e := b[12+i*16:]
		filesz := int(le.Uint32(e[4:8]))
		seg := Segment{
			VAddr:   le.Uint32(e[0:4]),
			MemSize: le.Uint32(e[8:12]),
			Flags:   le.Uint32(e[12:16]),
		}
		if dataOff+filesz > len(b) {
			return nil, fmt.Errorf("exec: truncated segment %d", i)
		}
		if seg.MemSize < uint32(filesz) {
			return nil, fmt.Errorf("exec: segment %d memsz < filesz", i)
		}
		seg.Data = append([]byte(nil), b[dataOff:dataOff+filesz]...)
		dataOff += filesz
		img.Segments = append(img.Segments, seg)
	}
	return img, nil
}

// Loaded describes one loaded program.
type Loaded struct {
	Entry uint32
	// Space maps the program's virtual layout: Free gaps plus one
	// Allocated|Seg* entry per segment.
	Space *amm.Map
	// Phys maps each segment's virtual page base to its physical copy.
	Phys map[uint32]hw.PhysAddr
	env  *core.Env
	// regions tracks the physical allocations for Unload.
	regions []physRegion
}

type physRegion struct {
	addr hw.PhysAddr
	size uint32
}

const pageSize = 4096

// Load places every segment into physical memory allocated from env and
// records the virtual layout.  Segments must be page-aligned and
// disjoint.
func Load(env *core.Env, img *Image) (*Loaded, error) {
	space := amm.New(0, 1<<32)
	l := &Loaded{Entry: img.Entry, Space: space, Phys: map[uint32]hw.PhysAddr{}, env: env}
	for i, s := range img.Segments {
		if s.VAddr%pageSize != 0 {
			return nil, fmt.Errorf("exec: segment %d not page aligned", i)
		}
		size := (s.MemSize + pageSize - 1) &^ (pageSize - 1)
		if size == 0 {
			continue
		}
		if err := space.AllocateAt(uint64(s.VAddr), uint64(size), amm.Allocated|amm.Flags(s.Flags)); err != nil {
			l.Unload()
			return nil, fmt.Errorf("exec: segment %d overlaps: %v", i, err)
		}
		addr, buf, ok := env.MemAlloc(size, 0, pageSize)
		if !ok {
			l.Unload()
			return nil, fmt.Errorf("exec: out of memory for segment %d", i)
		}
		for j := range buf {
			buf[j] = 0
		}
		copy(buf, s.Data)
		l.Phys[s.VAddr] = addr
		l.regions = append(l.regions, physRegion{addr, size})
	}
	return l, nil
}

// ReadVirtual copies memory out of the loaded image by virtual address
// (for inspection and for the kvm runtime's code fetch).
func (l *Loaded) ReadVirtual(vaddr uint32, buf []byte) error {
	e, ok := l.Space.Lookup(uint64(vaddr))
	if !ok || e.Flags&amm.Allocated == 0 {
		return fmt.Errorf("exec: unmapped address %#x", vaddr)
	}
	segBase := uint32(e.Start)
	phys, ok := l.Phys[segBase]
	if !ok {
		return fmt.Errorf("exec: no physical copy for %#x", segBase)
	}
	off := vaddr - segBase
	if uint64(vaddr)+uint64(len(buf)) > e.End {
		return fmt.Errorf("exec: read crosses segment end")
	}
	src := l.env.Machine.Mem.MustSlice(phys+off, uint32(len(buf)))
	copy(buf, src)
	return nil
}

// Unload releases the physical memory.
func (l *Loaded) Unload() {
	for _, r := range l.regions {
		l.env.MemFree(r.addr, r.size)
	}
	l.regions = nil
}
