package hw

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// SectorSize is the simulated disk's sector size.
const SectorSize = 512

// ErrDiskStopped is the completion error of a request the disk failed
// because the machine powered off before (or while) servicing it.  A
// request submitted to a live disk is guaranteed to complete — with its
// transfer done, a media error, or this — never to vanish.
var ErrDiskStopped = errors.New("hw: disk stopped")

// DiskFault is one injected disk fault, produced by a DiskFaultHook.
// A zero value means "no fault".
type DiskFault struct {
	// Err, when non-nil, fails the request with this error.
	Err error
	// TornSectors, for a faulted write, is how many leading sectors
	// actually reach the platter before the failure — a torn write.
	// Zero leaves the media untouched.
	TornSectors uint32
}

// DiskFaultHook decides the fate of one request just before the media
// transfer.  It runs on the disk's service goroutine, one request at a
// time, so decisions are made in service order.
type DiskFaultHook func(write bool, sector, count uint32) DiskFault

// DiskReq is one disk transfer.  The driver fills in the geometry and, for
// writes, the data; the disk completes asynchronously and raises its IRQ.
// Buf must be Count*SectorSize bytes; for reads it is filled in place
// (simulated DMA into the driver's buffer).
type DiskReq struct {
	Write  bool
	Sector uint32
	Count  uint32
	Buf    []byte

	// Done and Err are valid once the completion interrupt fires.
	Done bool
	Err  error
}

// Disk is a simulated fixed disk with a request queue, an optional
// per-request latency, and completion interrupts.
type Disk struct {
	ic   *IntrController
	line int

	mu      sync.Mutex
	data    []byte        //oskit:guardedby mu
	queue   []*DiskReq    //oskit:guardedby mu
	done    []*DiskReq    //oskit:guardedby mu
	latency time.Duration //oskit:guardedby mu
	hook    DiskFaultHook //oskit:guardedby mu
	wake    chan struct{} //oskit:initonly
	quit    chan struct{} //oskit:initonly
	wg      sync.WaitGroup
	started bool //oskit:guardedby mu
	stopped bool //oskit:guardedby mu
}

// NewDisk creates a zero-filled disk of the given number of sectors.
func NewDisk(sectors uint32) *Disk {
	return &Disk{
		data: make([]byte, uint64(sectors)*SectorSize),
		wake: make(chan struct{}, 1),
		quit: make(chan struct{}),
	}
}

// NewDiskImage creates a disk initialized with an image (rounded up to a
// whole sector).
func NewDiskImage(image []byte) *Disk {
	sectors := (uint32(len(image)) + SectorSize - 1) / SectorSize
	d := NewDisk(sectors)
	copy(d.data, image) //oskit:allow guarded -- construction: the disk is unpublished until NewDiskImage returns
	return d
}

// Sectors returns the disk capacity in sectors.
func (d *Disk) Sectors() uint32 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return uint32(len(d.data) / SectorSize)
}

// SetLatency configures the simulated per-request service time.
func (d *Disk) SetLatency(l time.Duration) {
	d.mu.Lock()
	d.latency = l
	d.mu.Unlock()
}

// SetFaultHook installs (or, with nil, removes) the fault-injection hook
// consulted before each media transfer.
func (d *Disk) SetFaultHook(h DiskFaultHook) {
	d.mu.Lock()
	d.hook = h
	d.mu.Unlock()
}

// Image returns a copy of the raw disk contents (for test inspection).
func (d *Disk) Image() []byte {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]byte(nil), d.data...)
}

// connect attaches the disk to a machine's interrupt controller and starts
// its service goroutine; called by Machine.AttachDisk.
func (d *Disk) connect(ic *IntrController, line int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.started {
		panic("hw: disk attached twice")
	}
	if d.stopped {
		panic("hw: disk attached after power-off")
	}
	d.ic = ic
	d.line = line
	d.started = true
	d.wg.Add(1)
	go d.serve()
}

// IRQ returns the disk's interrupt line.
func (d *Disk) IRQ() int { return d.line }

// Submit queues one request.  Completion is signalled by the disk IRQ;
// the driver then collects finished requests with Reap.  A request
// submitted after power-off completes immediately with ErrDiskStopped.
func (d *Disk) Submit(r *DiskReq) {
	d.mu.Lock()
	if d.stopped {
		r.Err = ErrDiskStopped
		r.Done = true
		d.done = append(d.done, r)
		ic, line := d.ic, d.line
		d.mu.Unlock()
		if ic != nil {
			ic.Raise(line)
		}
		return
	}
	d.queue = append(d.queue, r)
	d.mu.Unlock()
	select {
	case d.wake <- struct{}{}:
	default:
	}
}

// Reap removes and returns one completed request, or nil.
func (d *Disk) Reap() *DiskReq {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.done) == 0 {
		return nil
	}
	r := d.done[0]
	d.done = d.done[1:]
	return r
}

func (d *Disk) serve() {
	defer d.wg.Done()
	for {
		d.mu.Lock()
		var r *DiskReq
		if len(d.queue) > 0 {
			r = d.queue[0]
			d.queue = d.queue[1:]
		}
		latency := d.latency
		hook := d.hook
		d.mu.Unlock()

		if r == nil {
			select {
			case <-d.wake:
				continue
			case <-d.quit:
				return
			}
		}

		if latency > 0 {
			select {
			//oskit:allow detsource -- fixed configured pacing of a serial queue; request order and fault decisions are unaffected
			case <-time.After(latency):
			case <-d.quit:
				// Power-off caught this request in flight: fail it
				// rather than drop it, so the driver's wait terminates.
				d.complete(r, ErrDiskStopped)
				return
			}
		}

		var fault DiskFault
		if hook != nil {
			fault = hook(r.Write, r.Sector, r.Count)
		}
		if fault.Err != nil {
			if r.Write && fault.TornSectors > 0 {
				torn := fault.TornSectors
				if torn > r.Count {
					torn = r.Count
				}
				_ = d.transferRange(r, torn)
			}
			d.complete(r, fault.Err)
			continue
		}
		d.complete(r, d.transfer(r))
	}
}

// complete finishes one request and raises the completion interrupt.
func (d *Disk) complete(r *DiskReq, err error) {
	r.Err = err
	r.Done = true
	d.mu.Lock()
	d.done = append(d.done, r)
	d.mu.Unlock()
	if d.ic != nil {
		d.ic.Raise(d.line)
	}
}

func (d *Disk) transfer(r *DiskReq) error {
	return d.transferRange(r, r.Count)
}

// transferRange moves the first count sectors of the request (a torn
// write moves fewer sectors than the request asked for).
func (d *Disk) transferRange(r *DiskReq, count uint32) error {
	n := uint64(count) * SectorSize
	off := uint64(r.Sector) * SectorSize
	d.mu.Lock()
	defer d.mu.Unlock()
	if off+n > uint64(len(d.data)) {
		return fmt.Errorf("hw: disk access beyond end (sector %d + %d)", r.Sector, count)
	}
	if uint64(len(r.Buf)) < n {
		return fmt.Errorf("hw: disk buffer too small: %d < %d", len(r.Buf), n)
	}
	if r.Write {
		copy(d.data[off:off+n], r.Buf)
	} else {
		copy(r.Buf, d.data[off:off+n])
	}
	return nil
}

// stop halts the service goroutine (machine power-off) and then fails
// every request still queued, so no submission is ever silently dropped:
// after stop returns, each submitted request is Done with either its
// transfer result or ErrDiskStopped.
func (d *Disk) stop() {
	d.mu.Lock()
	started := d.started
	d.started = false
	alreadyStopped := d.stopped
	d.stopped = true
	d.mu.Unlock()
	if started && !alreadyStopped {
		close(d.quit)
		d.wg.Wait()
	}
	d.mu.Lock()
	failed := d.queue
	d.queue = nil
	for _, r := range failed {
		r.Err = ErrDiskStopped
		r.Done = true
		d.done = append(d.done, r)
	}
	ic, line := d.ic, d.line
	d.mu.Unlock()
	if len(failed) > 0 && ic != nil {
		ic.Raise(line)
	}
}
