package hw

import (
	"bytes"
	"io"
	"sync"
	"testing"
	"time"
)

func TestPhysMemSlice(t *testing.T) {
	m := NewPhysMem(4096)
	if m.Size() != 4096 {
		t.Fatalf("Size = %d", m.Size())
	}
	b, err := m.Slice(100, 16)
	if err != nil {
		t.Fatal(err)
	}
	copy(b, "hello")
	b2 := m.MustSlice(100, 5)
	if string(b2) != "hello" {
		t.Fatalf("aliasing broken: %q", b2)
	}
	if _, err := m.Slice(4090, 16); err == nil {
		t.Fatal("out-of-range Slice succeeded")
	}
	// The returned slice is capacity-capped: appending must not scribble
	// on adjacent physical memory.
	b3 := m.MustSlice(0, 8)
	b3 = append(b3, 0xEE)
	if m.MustSlice(8, 1)[0] == 0xEE {
		t.Fatal("append through a physical slice corrupted neighbouring memory")
	}
}

func TestIntrDispatchAndMask(t *testing.T) {
	ic := NewIntrController()
	defer ic.stop()
	got := make(chan int, 8)
	ic.SetHandler(5, func(line int) { got <- line })

	// Masked: raising must hold the interrupt pending, not deliver it.
	ic.Raise(5)
	select {
	case <-got:
		t.Fatal("masked interrupt delivered")
	case <-time.After(20 * time.Millisecond):
	}

	// Unmask: the held interrupt fires.
	ic.SetMask(5, false)
	select {
	case l := <-got:
		if l != 5 {
			t.Fatalf("line = %d", l)
		}
	case <-time.After(time.Second):
		t.Fatal("pending interrupt never delivered after unmask")
	}
	if ic.Count(5) != 1 {
		t.Fatalf("Count = %d", ic.Count(5))
	}
}

func TestIntrDisableExcludesHandlers(t *testing.T) {
	ic := NewIntrController()
	defer ic.stop()
	var mu sync.Mutex
	var fired []int
	done := make(chan struct{}, 4)
	ic.SetHandler(3, func(line int) {
		mu.Lock()
		fired = append(fired, line)
		mu.Unlock()
		done <- struct{}{}
	})
	ic.SetMask(3, false)

	ic.Disable()
	ic.Disable() // nested, donor save_flags/cli style
	ic.Raise(3)
	time.Sleep(20 * time.Millisecond)
	mu.Lock()
	n := len(fired)
	mu.Unlock()
	if n != 0 {
		t.Fatal("handler ran inside a Disable section")
	}
	ic.Enable()
	time.Sleep(20 * time.Millisecond)
	mu.Lock()
	n = len(fired)
	mu.Unlock()
	if n != 0 {
		t.Fatal("handler ran with the outer Disable still held")
	}
	ic.Enable()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("handler never ran after Enable")
	}
}

func TestIntrHandlerSeesInIntr(t *testing.T) {
	ic := NewIntrController()
	defer ic.stop()
	res := make(chan bool, 1)
	ic.SetHandler(7, func(int) { res <- ic.InIntr() })
	ic.SetMask(7, false)
	if ic.InIntr() {
		t.Fatal("InIntr true at process level")
	}
	ic.Raise(7)
	if !<-res {
		t.Fatal("InIntr false inside a handler")
	}
}

func TestIntrCoalescing(t *testing.T) {
	// Edge-triggered coalescing: multiple raises of an already-pending
	// line may merge, but at least one dispatch must follow the last
	// raise, and draining devices in the handler is therefore correct.
	ic := NewIntrController()
	defer ic.stop()
	var mu sync.Mutex
	count := 0
	ic.SetHandler(2, func(int) { mu.Lock(); count++; mu.Unlock() })
	// Raise repeatedly while masked: these must coalesce to one.
	for i := 0; i < 100; i++ {
		ic.Raise(2)
	}
	ic.SetMask(2, false)
	deadline := time.After(time.Second)
	for {
		mu.Lock()
		c := count
		mu.Unlock()
		if c >= 1 {
			if c > 1 {
				t.Fatalf("masked raises did not coalesce: %d dispatches", c)
			}
			return
		}
		select {
		case <-deadline:
			t.Fatal("no dispatch")
		default:
			time.Sleep(time.Millisecond)
		}
	}
}

func TestTimerManualTick(t *testing.T) {
	ic := NewIntrController()
	defer ic.stop()
	tm := NewTimer(ic, IRQTimer)
	fired := make(chan struct{}, 4)
	ic.SetHandler(IRQTimer, func(int) { fired <- struct{}{} })
	ic.SetMask(IRQTimer, false)
	tm.Tick()
	select {
	case <-fired:
	case <-time.After(time.Second):
		t.Fatal("manual tick not delivered")
	}
}

func TestTimerFreeRun(t *testing.T) {
	ic := NewIntrController()
	defer ic.stop()
	tm := NewTimer(ic, IRQTimer)
	fired := make(chan struct{}, 64)
	ic.SetHandler(IRQTimer, func(int) {
		select {
		case fired <- struct{}{}:
		default:
		}
	})
	ic.SetMask(IRQTimer, false)
	tm.Start(time.Millisecond)
	defer tm.Stop()
	for i := 0; i < 3; i++ {
		select {
		case <-fired:
		case <-time.After(time.Second):
			t.Fatal("free-running timer stopped ticking")
		}
	}
	tm.Stop()
	tm.Stop() // idempotent
}

func TestSerialLoop(t *testing.T) {
	ic := NewIntrController()
	defer ic.stop()
	a := NewSerialPort(ic, IRQCom1)
	b := NewSerialPort(ic, IRQCom2)
	ConnectSerial(a, b)
	ic.SetMask(IRQCom1, false)
	ic.SetMask(IRQCom2, false)

	if _, err := a.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	n, err := b.Read(buf)
	if err != nil || string(buf[:n]) != "ping" {
		t.Fatalf("Read = %q, %v", buf[:n], err)
	}
	if _, err := b.Write([]byte("pong")); err != nil {
		t.Fatal(err)
	}
	n, err = a.Read(buf)
	if err != nil || string(buf[:n]) != "pong" {
		t.Fatalf("Read = %q, %v", buf[:n], err)
	}
}

func TestSerialWriterAndEOF(t *testing.T) {
	ic := NewIntrController()
	defer ic.stop()
	s := NewSerialPort(ic, IRQCom1)
	var captured bytes.Buffer
	var capMu sync.Mutex
	s.AttachWriter(writerFunc(func(p []byte) (int, error) {
		capMu.Lock()
		defer capMu.Unlock()
		return captured.Write(p)
	}))
	if _, err := s.Write([]byte("console out")); err != nil {
		t.Fatal(err)
	}
	capMu.Lock()
	got := captured.String()
	capMu.Unlock()
	if got != "console out" {
		t.Fatalf("captured %q", got)
	}

	s.Inject([]byte("in"))
	s.CloseInput()
	buf := make([]byte, 8)
	n, err := s.Read(buf)
	if err != nil || string(buf[:n]) != "in" {
		t.Fatalf("Read = %q, %v", buf[:n], err)
	}
	if _, err := s.Read(buf); err != io.EOF {
		t.Fatalf("after CloseInput: %v", err)
	}
	if s.Buffered() != 0 {
		t.Fatal("Buffered after drain")
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

func frame(dst, src [6]byte, payload string) []byte {
	f := make([]byte, EtherHdrLen+len(payload))
	copy(f[0:6], dst[:])
	copy(f[6:12], src[:])
	copy(f[EtherHdrLen:], payload)
	return f
}

func TestEtherDelivery(t *testing.T) {
	wire := NewEtherWire()
	icA, icB := NewIntrController(), NewIntrController()
	defer icA.stop()
	defer icB.stop()
	macA := [6]byte{2, 0, 0, 0, 0, 1}
	macB := [6]byte{2, 0, 0, 0, 0, 2}
	a := NewNIC(icA, IRQNIC0, macA)
	b := NewNIC(icB, IRQNIC0, macB)
	wire.Attach(a)
	wire.Attach(b)
	gotIRQ := make(chan struct{}, 8)
	icB.SetHandler(IRQNIC0, func(int) { gotIRQ <- struct{}{} })
	icB.SetMask(IRQNIC0, false)

	a.Transmit(frame(macB, macA, "hello b"))
	select {
	case <-gotIRQ:
	case <-time.After(time.Second):
		t.Fatal("no receive interrupt")
	}
	f := b.RxPop()
	if f == nil || string(f[EtherHdrLen:]) != "hello b" {
		t.Fatalf("RxPop = %q", f)
	}
	if b.RxPop() != nil {
		t.Fatal("ring should be empty")
	}

	// Frames for other stations are filtered out...
	a.Transmit(frame([6]byte{2, 9, 9, 9, 9, 9}, macA, "not for b"))
	// ...broadcast is accepted...
	a.Transmit(frame(BroadcastMAC, macA, "bcast"))
	select {
	case <-gotIRQ:
	case <-time.After(time.Second):
		t.Fatal("no broadcast interrupt")
	}
	f = b.RxPop()
	if f == nil || string(f[EtherHdrLen:]) != "bcast" {
		t.Fatalf("broadcast RxPop = %q", f)
	}
	// ...and promiscuous mode accepts everything.
	b.SetPromiscuous(true)
	a.Transmit(frame([6]byte{2, 9, 9, 9, 9, 9}, macA, "snoop"))
	<-gotIRQ
	if f = b.RxPop(); f == nil || string(f[EtherHdrLen:]) != "snoop" {
		t.Fatalf("promisc RxPop = %q", f)
	}

	// The sender does not hear its own frames.
	if a.RxPop() != nil {
		t.Fatal("sender received its own frame")
	}
}

func TestEtherLossInjection(t *testing.T) {
	wire := NewEtherWire()
	wire.SetLoss(1.0, 42) // drop everything
	ic := NewIntrController()
	defer ic.stop()
	macA := [6]byte{2, 0, 0, 0, 0, 1}
	macB := [6]byte{2, 0, 0, 0, 0, 2}
	a := NewNIC(ic, IRQNIC0, macA)
	b := NewNIC(ic, IRQNIC1, macB)
	wire.Attach(a)
	wire.Attach(b)
	for i := 0; i < 10; i++ {
		a.Transmit(frame(macB, macA, "x"))
	}
	tx, drops := wire.Stats()
	if tx != 10 || drops != 10 {
		t.Fatalf("stats = %d tx, %d drops", tx, drops)
	}
	if b.RxPop() != nil {
		t.Fatal("frame survived 100% loss")
	}
}

func TestEtherRingOverrun(t *testing.T) {
	wire := NewEtherWire()
	ic := NewIntrController()
	defer ic.stop()
	macA := [6]byte{2, 0, 0, 0, 0, 1}
	macB := [6]byte{2, 0, 0, 0, 0, 2}
	a := NewNIC(ic, IRQNIC0, macA)
	b := NewNIC(ic, IRQNIC1, macB) // IRQ masked: nothing drains the ring
	wire.Attach(a)
	wire.Attach(b)
	for i := 0; i < EtherRingLen+10; i++ {
		a.Transmit(frame(macB, macA, "x"))
	}
	rx, _, drops := b.Stats()
	if rx != EtherRingLen || drops != 10 {
		t.Fatalf("rx=%d drops=%d", rx, drops)
	}
}

func TestDiskReadWrite(t *testing.T) {
	m := NewMachine(Config{Name: "t", MemBytes: 1 << 20})
	defer m.Halt()
	d := m.AttachDisk(NewDisk(128))
	completions := make(chan struct{}, 8)
	m.Intr.SetHandler(d.IRQ(), func(int) { completions <- struct{}{} })
	m.Intr.SetMask(d.IRQ(), false)

	wbuf := make([]byte, 2*SectorSize)
	copy(wbuf, "sector data here")
	w := &DiskReq{Write: true, Sector: 10, Count: 2, Buf: wbuf}
	d.Submit(w)
	<-completions
	r1 := d.Reap()
	if r1 != w || !r1.Done || r1.Err != nil {
		t.Fatalf("write completion: %+v", r1)
	}

	rbuf := make([]byte, 2*SectorSize)
	r := &DiskReq{Sector: 10, Count: 2, Buf: rbuf}
	d.Submit(r)
	<-completions
	if got := d.Reap(); got != r || got.Err != nil {
		t.Fatalf("read completion: %+v", got)
	}
	if !bytes.Equal(rbuf, wbuf) {
		t.Fatal("read back differs from write")
	}

	// Out-of-range access completes with an error, not a crash.
	bad := &DiskReq{Sector: 1000, Count: 1, Buf: make([]byte, SectorSize)}
	d.Submit(bad)
	<-completions
	if got := d.Reap(); got.Err == nil {
		t.Fatal("out-of-range request succeeded")
	}
	if d.Reap() != nil {
		t.Fatal("phantom completion")
	}
}

func TestMachineAssembly(t *testing.T) {
	wire := NewEtherWire()
	m := NewMachine(Config{Name: "box"})
	defer m.Halt()
	if m.Mem.Size() != 32<<20 {
		t.Fatalf("default memory = %d", m.Mem.Size())
	}
	nic := m.AttachNIC(wire, [6]byte{2, 0, 0, 0, 0, 9}, ModelNE2K)
	if nic.IRQ() != IRQNIC0 {
		t.Fatalf("nic irq = %d", nic.IRQ())
	}
	m.AttachDisk(NewDisk(64))

	if len(m.Bus.Find(VendorRealtek, DevNE2K)) != 1 {
		t.Fatal("NE2K not on bus")
	}
	if len(m.Bus.Find(VendorMisc, DevIDE)) != 1 {
		t.Fatal("disk not on bus")
	}
	if len(m.Bus.Find(VendorMisc, DevSerial)) != 2 {
		t.Fatal("serial ports not on bus")
	}
	if len(m.Bus.Find(0xdead, 0xbeef)) != 0 {
		t.Fatal("phantom device")
	}
}

func TestDropAllRestoresFullNesting(t *testing.T) {
	ic := NewIntrController()
	defer ic.stop()
	fired := make(chan struct{}, 4)
	ic.SetHandler(6, func(int) { fired <- struct{}{} })
	ic.SetMask(6, false)

	// Nest three levels (cross-component spl stacking), then DropAll:
	// handlers must run while "asleep".
	ic.Disable()
	ic.Disable()
	ic.Disable()
	depth := ic.DropAll()
	if depth != 3 {
		t.Fatalf("depth = %d", depth)
	}
	ic.Raise(6)
	select {
	case <-fired:
	case <-time.After(time.Second):
		t.Fatal("handler blocked although nesting was dropped")
	}
	// Restore: the full exclusion is back.
	ic.RestoreAll(depth)
	ic.Raise(6)
	select {
	case <-fired:
		t.Fatal("handler ran with exclusion restored")
	case <-time.After(20 * time.Millisecond):
	}
	// Unwind the original three levels.
	ic.Enable()
	ic.Enable()
	ic.Enable()
	select {
	case <-fired:
	case <-time.After(time.Second):
		t.Fatal("handler never ran after unwind")
	}
	// Misuse panics.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("DropAll without Disable did not panic")
			}
		}()
		ic.DropAll()
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("RestoreAll(0) did not panic")
			}
		}()
		ic.RestoreAll(0)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Enable without Disable did not panic")
			}
		}()
		ic.Enable()
	}()
}

// DropAllHeld is the conditional form donor sleep paths use when they
// cannot know whether the caller entered with exclusion held (the SMP
// glue's SleepOn): a no-op returning 0 for a non-owner, a full DropAll
// for the owner.
func TestIntrDropAllHeld(t *testing.T) {
	ic := NewIntrController()
	// Not the owner: nothing to drop, nothing released.
	if n := ic.DropAllHeld(); n != 0 {
		t.Fatalf("DropAllHeld without Disable = %d, want 0", n)
	}
	// Owner with nesting: the whole depth comes off and is restorable.
	ic.Disable()
	ic.Disable()
	ic.Disable()
	n := ic.DropAllHeld()
	if n != 3 {
		t.Fatalf("DropAllHeld under 3 Disables = %d, want 3", n)
	}
	// Fully dropped: another thread can take the exclusion now.
	done := make(chan struct{})
	go func() {
		ic.Disable()
		ic.Enable()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("exclusion still held after DropAllHeld")
	}
	ic.RestoreAll(n)
	for i := 0; i < n; i++ {
		ic.Enable()
	}
	// Balanced again: a second DropAllHeld sees no ownership.
	if n := ic.DropAllHeld(); n != 0 {
		t.Fatalf("DropAllHeld after balanced unwind = %d, want 0", n)
	}
}
