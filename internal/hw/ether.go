package hw

import (
	"math/rand"
	"sync"
)

// EtherMTU is the Ethernet payload MTU; frames carry a 14-byte header.
const (
	EtherMTU     = 1500
	EtherHdrLen  = 14
	EtherMinLen  = 60 // minimum frame (without FCS)
	EtherMaxLen  = EtherHdrLen + EtherMTU
	EtherRingLen = 256 // receive ring slots per NIC (PCI-era descriptor count)
)

// BroadcastMAC is the all-ones station address.
var BroadcastMAC = [6]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}

// WireFault is the verdict a WireFaultHook passes on one frame.  The
// zero value delivers the frame untouched.
type WireFault struct {
	// Drop discards the frame (burst loss, collisions).
	Drop bool
	// Corrupt flips one payload byte at CorruptOff (modulo the frame
	// length) in every delivered copy — the FCS failure a real NIC
	// would catch, left for the protocol checksums to find here.
	Corrupt    bool
	CorruptOff int
	// Duplicate delivers the frame twice (switch flooding, link retry).
	Duplicate bool
	// Reorder holds the frame back and delivers it after the next
	// frame on the wire (adjacent-pair swap).  A held frame that no
	// later traffic flushes is lost, like a drop.
	Reorder bool
}

// WireFaultHook decides the fate of one frame.  It is called with the
// wire serialized (one frame at a time, in transmit order), so decisions
// see a deterministic event sequence for deterministic traffic.
type WireFaultHook func(frameLen int) WireFault

// heldFrame is a frame stashed by a Reorder verdict, remembering its
// sender so the late delivery still skips the right NIC.
type heldFrame struct {
	src   *NIC
	frame []byte
}

// Segment is the link a NIC transmits onto: a shared EtherWire (the
// two-PC testbeds of Tables 1 and 2) or one port of an EtherSwitch (the
// N-node cluster rig).  The transmit method is unexported so every
// segment implementation lives in this package, next to the NIC whose
// delivery contract (deliver/receiveGather) it depends on.
type Segment interface {
	// Attach joins a NIC to the segment and publishes the binding under
	// the NIC's own lock.
	Attach(n *NIC)
	transmitGather(src *NIC, parts [][]byte)
}

// EtherWire is a shared Ethernet segment.  Transmission is synchronous:
// delivery happens on the sender's thread of control, ending in the
// receiving NIC's ring and an interrupt on the receiving machine.  The
// wire is therefore never the bottleneck, which is what makes the paper's
// software-overhead comparisons (Tables 1 and 2) observable.
//
// A loss rate may be configured to exercise protocol retransmission
// paths; drops are deterministic for a given seed.  Richer hostile
// behaviour — corruption, duplication, reordering, burst loss — comes
// from a WireFaultHook (see internal/faults).
type EtherWire struct {
	mu   sync.Mutex
	nics []*NIC        //oskit:guardedby mu
	rng  *rand.Rand    //oskit:guardedby mu
	loss float64       //oskit:guardedby mu  probability a frame is dropped
	hook WireFaultHook //oskit:guardedby mu
	// hookMu serializes fault-hook invocations (the injector's burst
	// state relies on one-frame-at-a-time calls) without holding w.mu,
	// so a hook that reads wire or stats state cannot deadlock against
	// concurrent Stats/SetLoss callers — the NIC.deliver hazard class.
	hookMu sync.Mutex
	held   *heldFrame //oskit:guardedby hookMu  frame held back by a Reorder verdict

	txFrames uint64 //oskit:guardedby mu
	drops    uint64 //oskit:guardedby mu
}

// NewEtherWire creates an empty segment.
func NewEtherWire() *EtherWire {
	return &EtherWire{rng: rand.New(rand.NewSource(1))}
}

// SetLoss configures the frame-drop probability with a deterministic seed.
// Safe to toggle while traffic is flowing.
func (w *EtherWire) SetLoss(p float64, seed int64) {
	w.mu.Lock()
	w.loss = p
	w.rng = rand.New(rand.NewSource(seed))
	w.mu.Unlock()
}

// SetFaultHook installs (or, with nil, removes) the frame fault hook.
// Safe to toggle while traffic is flowing.
func (w *EtherWire) SetFaultHook(h WireFaultHook) {
	w.mu.Lock()
	w.hook = h
	w.mu.Unlock()
	// The held-back frame belongs to hookMu, not mu: clearing it under
	// mu alone would race a concurrent deliver holding hookMu.
	w.hookMu.Lock()
	w.held = nil
	w.hookMu.Unlock()
}

// Attach joins a NIC to the segment.
func (w *EtherWire) Attach(n *NIC) {
	w.mu.Lock()
	w.nics = append(w.nics, n)
	w.mu.Unlock()
	// The NIC's wire binding is published under the NIC's own lock so a
	// mid-traffic Attach on the segment races cleanly with transmits.
	n.mu.Lock()
	n.wire = w
	n.mu.Unlock()
}

// Stats reports frames transmitted and frames dropped by loss injection.
func (w *EtherWire) Stats() (tx, drops uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.txFrames, w.drops
}

// transmitGather is transmit for scattered frames: the per-receiver copy
// gathers the runs directly, so scattered and contiguous transmission
// cost the same single DMA copy.
func (w *EtherWire) transmitGather(src *NIC, parts [][]byte) {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	if total < EtherHdrLen || len(parts[0]) < 6 {
		return
	}
	w.mu.Lock()
	w.txFrames++
	dropped := w.loss > 0 && w.rng.Float64() < w.loss
	hook := w.hook
	w.mu.Unlock()

	// The hook runs outside w.mu (it may take its own locks or read the
	// wire's stats) but under hookMu, which keeps the injector's
	// one-frame-at-a-time contract.
	var fault WireFault
	if !dropped && hook != nil {
		w.hookMu.Lock()
		//oskit:allow lockhook -- hookMu exists only to serialize this call; nothing else takes it, so no callback can deadlock on it
		fault = hook(total)
		w.hookMu.Unlock()
		dropped = fault.Drop
	}

	w.mu.Lock()
	if dropped {
		w.drops++
		w.mu.Unlock()
		return
	}
	frame := parts
	if fault.Corrupt {
		flat := flatten(parts, total)
		// Corrupt the payload, not the station addresses: a flipped MAC
		// byte is just a filtered (dropped) frame, which Drop already
		// models.
		off := fault.CorruptOff
		if off < 0 {
			off = -off
		}
		if total > EtherHdrLen {
			off = EtherHdrLen + off%(total-EtherHdrLen)
		} else {
			off %= total
		}
		flat[off] ^= 0xff
		frame = [][]byte{flat}
	}
	held := w.held
	w.held = nil
	if fault.Reorder && held == nil {
		// Hold this frame back; the next transmission flushes it after
		// itself, swapping the pair on the wire.
		w.held = &heldFrame{src: src, frame: flatten(frame, total)}
		w.mu.Unlock()
		return
	}
	nics := append([]*NIC(nil), w.nics...)
	w.mu.Unlock()

	w.deliverFrame(src, nics, frame, total)
	if fault.Duplicate {
		w.deliverFrame(src, nics, frame, total)
	}
	if held != nil {
		w.deliverFrame(held.src, nics, [][]byte{held.frame}, len(held.frame))
	}
}

// deliverFrame carries one (possibly faulted) frame to every other NIC
// whose address filter accepts it.
func (w *EtherWire) deliverFrame(src *NIC, nics []*NIC, parts [][]byte, total int) {
	var dst [6]byte
	copy(dst[:], parts[0][0:6])
	for _, n := range nics {
		if n == src {
			continue
		}
		if n.accepts(dst) {
			n.receiveGather(parts, total)
		}
	}
}

// flatten gathers scattered runs into one contiguous copy.
func flatten(parts [][]byte, total int) []byte {
	flat := make([]byte, 0, total)
	for _, p := range parts {
		flat = append(flat, p...)
	}
	return flat
}

// nicRing is one receive queue: a descriptor ring, the interrupt line it
// raises, and its share of the receive ledger.  Every NIC has ring 0 on
// its legacy line; ConfigureRxQueues adds more for RSS spreading.  Each
// ring has its own lock so drain paths on different CPUs never contend.
type nicRing struct {
	line int

	mu   sync.Mutex
	ring [][]byte //oskit:guardedby mu

	rxDrops   uint64 //oskit:guardedby mu
	rxOK      uint64 //oskit:guardedby mu
	rxRaised  uint64 //oskit:guardedby mu  receive interrupts raised
	rxSuppr   uint64 //oskit:guardedby mu  receive interrupts suppressed by mitigation
	rxRearms  uint64 //oskit:guardedby mu  poller/timer re-arms that re-raised the line
	rxBatched uint64 //oskit:guardedby mu  frames drained through RxPopBatch
}

// NIC is a simulated Ethernet controller: a transmit path onto the wire
// and one or more fixed-size receive rings drained at interrupt level by
// its driver.  A single-queue NIC (the default) behaves exactly as the
// PCI-era controllers the donor drivers were written for; a multi-queue
// NIC spreads inbound flows across rings by RSS hash, each ring raising
// its own interrupt line with its own CPU affinity.
type NIC struct {
	Mac  [6]byte
	wire Segment
	ic   *IntrController
	line int // ring 0's line (the legacy single-queue IRQ)

	mu      sync.Mutex
	rings   []*nicRing  //oskit:guardedby mu
	promisc bool        //oskit:guardedby mu
	rxHook  func() bool //oskit:guardedby mu  true: drop the inbound frame (forced overrun)

	// rxMitigate, when set, suppresses the receive interrupt unless the
	// ring just went empty→non-empty: the polled (NAPI-style) drain mode.
	// The policy covers every ring.
	rxMitigate bool

	txOK     uint64 //oskit:guardedby mu
	txGather uint64 //oskit:guardedby mu
	txCsum   uint64 //oskit:guardedby mu
}

// NewNIC creates a NIC raising the given IRQ line on receive.
func NewNIC(ic *IntrController, line int, mac [6]byte) *NIC {
	return &NIC{Mac: mac, ic: ic, line: line, rings: []*nicRing{{line: line}}}
}

// IRQ returns the NIC's interrupt line (ring 0's line).
func (n *NIC) IRQ() int { return n.line }

// ConfigureRxQueues grows the NIC to q receive rings (RSS).  Ring 0 keeps
// the legacy line; each extra ring gets a message-signaled vector from the
// controller, affinitized round-robin across the machine's CPUs so rings
// drain concurrently.  Call at boot, before the device receives traffic;
// q below 2, or a NIC already configured, is a no-op.  Returns the
// interrupt line of every ring, in ring order.
func (n *NIC) ConfigureRxQueues(q int) []int {
	n.mu.Lock()
	defer n.mu.Unlock()
	for len(n.rings) < q {
		line := n.ic.AllocLine()
		if line < 0 {
			break // vector space exhausted: run with what we have
		}
		n.ic.SetAffinity(line, len(n.rings)%n.ic.NumCPUs())
		n.rings = append(n.rings, &nicRing{line: line})
	}
	lines := make([]int, len(n.rings))
	for i, r := range n.rings {
		lines[i] = r.line
	}
	return lines
}

// RxQueues reports the number of receive rings.
func (n *NIC) RxQueues() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.rings)
}

// RxIRQ returns ring q's interrupt line (-1 if no such ring).
func (n *NIC) RxIRQ(q int) int {
	n.mu.Lock()
	defer n.mu.Unlock()
	if q < 0 || q >= len(n.rings) {
		return -1
	}
	return n.rings[q].line
}

// ringOf returns ring q, or nil when out of range.
func (n *NIC) ringOf(q int) *nicRing {
	n.mu.Lock()
	defer n.mu.Unlock()
	if q < 0 || q >= len(n.rings) {
		return nil
	}
	return n.rings[q]
}

// SetPromiscuous controls whether the address filter accepts all frames.
func (n *NIC) SetPromiscuous(on bool) {
	n.mu.Lock()
	n.promisc = on
	n.mu.Unlock()
}

// SetRxFaultHook installs (or, with nil, removes) a receive fault hook:
// when it returns true the inbound frame is dropped exactly as a ring
// overrun would drop it, charging rxDrops.  Safe to toggle mid-traffic.
func (n *NIC) SetRxFaultHook(h func() bool) {
	n.mu.Lock()
	n.rxHook = h
	n.mu.Unlock()
}

// Transmit sends one complete Ethernet frame.  Called by the driver from
// any level; returns once the frame is on the wire.
func (n *NIC) Transmit(frame []byte) {
	n.mu.Lock()
	w := n.wire
	if w != nil {
		n.txOK++
	}
	n.mu.Unlock()
	if w == nil {
		return
	}
	w.transmitGather(n, [][]byte{frame})
}

// TransmitGather sends one frame scattered across several memory runs —
// the gather-DMA engine of busmaster controllers, which is how
// mbuf-chain-native drivers transmit without first flattening the chain
// in software.  The single gather into the receiving ring models the DMA
// transfer itself (the same one copy a contiguous Transmit incurs).
func (n *NIC) TransmitGather(parts [][]byte) {
	n.mu.Lock()
	w := n.wire
	if w != nil {
		n.txOK++
		if len(parts) > 1 {
			n.txGather++
		}
	}
	n.mu.Unlock()
	if w == nil {
		return
	}
	w.transmitGather(n, parts)
}

// TransmitGatherCsum is TransmitGather with transmit checksum insertion
// (the FeatCsum half of the offload engines on busmaster controllers):
// before the frame leaves the device, the controller folds the RFC 1071
// ones-complement sum over every byte from offset start to the end of
// the frame into the big-endian 16-bit field at start+off.  The
// protocol seeded that field with the folded pseudo-header sum, so by
// ones-complement commutativity the inserted value equals the software
// checksum; Ethernet runt padding is zeros and checksum-neutral.  The
// insertion happens before the frame reaches the wire, so wire-level
// corruption faults are still caught by the receiver's software verify.
func (n *NIC) TransmitGatherCsum(parts [][]byte, start, off int) {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	if start < 0 || off < 0 || start+off+2 > total {
		// Malformed descriptor: transmit as-is (the frame then carries
		// only its seed and the receiver drops it — visible, not silent).
		n.TransmitGather(parts)
		return
	}
	var sum uint32
	pos := 0
	for _, p := range parts {
		for _, b := range p {
			if pos >= start {
				if (pos-start)%2 == 0 {
					sum += uint32(b) << 8
				} else {
					sum += uint32(b)
				}
			}
			pos++
		}
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	csum := ^uint16(sum)
	putByte := func(at int, v byte) {
		for _, p := range parts {
			if at < len(p) {
				p[at] = v
				return
			}
			at -= len(p)
		}
	}
	putByte(start+off, byte(csum>>8))
	putByte(start+off+1, byte(csum))
	n.mu.Lock()
	n.txCsum++
	n.mu.Unlock()
	n.TransmitGather(parts)
}

// TxCsums reports how many transmitted frames had their transport
// checksum inserted by the controller (FeatCsum offload).
func (n *NIC) TxCsums() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.txCsum
}

// RxPop removes and returns the oldest frame in ring 0, or nil when the
// ring is empty.  Drivers call it repeatedly from their interrupt handler
// until it returns nil (the controller coalesces interrupts).
func (n *NIC) RxPop() []byte { return n.RxPopOn(0) }

// RxPopOn is RxPop against one receive ring.
func (n *NIC) RxPopOn(q int) []byte {
	r := n.ringOf(q)
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.ring) == 0 {
		return nil
	}
	f := r.ring[0]
	r.ring = r.ring[1:]
	return f
}

// Stats reports receive/transmit counters and ring-overflow drops,
// aggregated over every receive ring.
func (n *NIC) Stats() (rx, tx, drops uint64) {
	n.mu.Lock()
	rings := n.rings
	tx = n.txOK
	n.mu.Unlock()
	for _, r := range rings {
		r.mu.Lock()
		rx += r.rxOK
		drops += r.rxDrops
		r.mu.Unlock()
	}
	return rx, tx, drops
}

// TxGathers reports how many transmitted frames were fetched from a
// multi-run fragment list (the gather-DMA engine at work); a frame handed
// over as one run does not count even when sent via TransmitGather.
func (n *NIC) TxGathers() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.txGather
}

func (n *NIC) accepts(dst [6]byte) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.promisc || dst == n.Mac || dst == BroadcastMAC
}

func (n *NIC) receiveGather(parts [][]byte, total int) {
	f := make([]byte, 0, total)
	for _, p := range parts {
		f = append(f, p...)
	}
	n.deliver(f)
}

func (n *NIC) receive(frame []byte) {
	n.deliver(append([]byte(nil), frame...))
}

func (n *NIC) deliver(f []byte) {
	n.mu.Lock()
	hook := n.rxHook
	rings := n.rings
	mitigate := n.rxMitigate
	n.mu.Unlock()
	// The hook runs outside n.mu (it may call back into NIC.Stats) and is
	// consulted for every offered frame, even when the ring is already
	// full — one frame, one decision, so a seeded fault plan's decision
	// stream stays aligned with the frame sequence regardless of ring
	// occupancy or ring choice.
	injected := hook != nil && hook()
	r := rings[0]
	if len(rings) > 1 {
		r = rings[RSSRing(f, len(rings))]
	}
	r.mu.Lock()
	if injected || len(r.ring) >= EtherRingLen {
		r.rxDrops++ // ring overrun, real or injected
		r.mu.Unlock()
		return
	}
	wasEmpty := len(r.ring) == 0
	r.ring = append(r.ring, f)
	r.rxOK++
	raise := n.ic != nil
	if raise && mitigate && !wasEmpty {
		// The ring was already non-empty: the poller owes us a drain
		// pass anyway, so the edge is redundant.
		raise = false
		r.rxSuppr++
	} else if raise {
		r.rxRaised++
	}
	r.mu.Unlock()
	if raise {
		n.ic.Raise(r.line)
	}
}

// SetRxIntrMitigation switches the receive-interrupt policy.  Off (the
// default), every accepted frame raises the line — the stock per-frame
// interrupt model.  On, only the ring's empty→non-empty transition
// raises it; a polling driver drains batches and re-arms via RxRearm.
// Turning mitigation off re-raises the line if frames are pending, so
// no frame is stranded across the switch.
func (n *NIC) SetRxIntrMitigation(on bool) {
	n.mu.Lock()
	n.rxMitigate = on
	rings := n.rings
	n.mu.Unlock()
	if on || n.ic == nil {
		return
	}
	for _, r := range rings {
		r.mu.Lock()
		pending := len(r.ring) > 0
		if pending {
			r.rxRaised++
		}
		r.mu.Unlock()
		if pending {
			n.ic.Raise(r.line)
		}
	}
}

// RxPopBatch removes up to max frames (bounded by len(dst)) from ring 0
// into dst and returns the count — the polled drain a budgeted receive
// loop uses instead of per-frame RxPop.
func (n *NIC) RxPopBatch(dst [][]byte, max int) int { return n.RxPopBatchOn(0, dst, max) }

// RxPopBatchOn is RxPopBatch against one receive ring.
func (n *NIC) RxPopBatchOn(q int, dst [][]byte, max int) int {
	r := n.ringOf(q)
	if r == nil {
		return 0
	}
	if max > len(dst) {
		max = len(dst)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := len(r.ring)
	if c > max {
		c = max
	}
	if c <= 0 {
		return 0
	}
	copy(dst, r.ring[:c])
	r.ring = r.ring[c:]
	r.rxBatched += uint64(c)
	return c
}

// RxRearm re-raises ring 0's receive interrupt if frames are still
// pending — the poller's "budget exhausted, reschedule me" edge, and the
// timer backstop's recovery path for a stalled poller.  Returns whether
// the line was raised.
func (n *NIC) RxRearm() bool { return n.RxRearmOn(0) }

// RxRearmOn is RxRearm against one receive ring.
func (n *NIC) RxRearmOn(q int) bool {
	r := n.ringOf(q)
	if r == nil || n.ic == nil {
		return false
	}
	r.mu.Lock()
	fire := len(r.ring) > 0
	if fire {
		r.rxRearms++
		r.rxRaised++
	}
	r.mu.Unlock()
	if fire {
		n.ic.Raise(r.line)
	}
	return fire
}

// RxIntrCounters reports the receive-interrupt ledger — interrupts
// raised, interrupts suppressed by mitigation, and re-arms — aggregated
// over every receive ring.
func (n *NIC) RxIntrCounters() (raised, suppressed, rearms uint64) {
	n.mu.Lock()
	rings := n.rings
	n.mu.Unlock()
	for _, r := range rings {
		r.mu.Lock()
		raised += r.rxRaised
		suppressed += r.rxSuppr
		rearms += r.rxRearms
		r.mu.Unlock()
	}
	return raised, suppressed, rearms
}

// RxBatched reports how many frames left the rings through RxPopBatch.
func (n *NIC) RxBatched() uint64 {
	n.mu.Lock()
	rings := n.rings
	n.mu.Unlock()
	var c uint64
	for _, r := range rings {
		r.mu.Lock()
		c += r.rxBatched
		r.mu.Unlock()
	}
	return c
}

// WireOfForTest exposes the shared wire a NIC is attached to, or nil
// when the NIC sits on some other segment kind (test hook).
func WireOfForTest(n *NIC) *EtherWire {
	w, _ := SegmentOfForTest(n).(*EtherWire)
	return w
}

// SegmentOfForTest exposes the segment a NIC is attached to (test hook).
func SegmentOfForTest(n *NIC) Segment {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.wire
}
