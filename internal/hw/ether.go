package hw

import (
	"math/rand"
	"sync"
)

// EtherMTU is the Ethernet payload MTU; frames carry a 14-byte header.
const (
	EtherMTU     = 1500
	EtherHdrLen  = 14
	EtherMinLen  = 60 // minimum frame (without FCS)
	EtherMaxLen  = EtherHdrLen + EtherMTU
	EtherRingLen = 256 // receive ring slots per NIC (PCI-era descriptor count)
)

// BroadcastMAC is the all-ones station address.
var BroadcastMAC = [6]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}

// EtherWire is a shared Ethernet segment.  Transmission is synchronous:
// delivery happens on the sender's thread of control, ending in the
// receiving NIC's ring and an interrupt on the receiving machine.  The
// wire is therefore never the bottleneck, which is what makes the paper's
// software-overhead comparisons (Tables 1 and 2) observable.
//
// A loss rate may be configured to exercise protocol retransmission paths;
// drops are deterministic for a given seed.
type EtherWire struct {
	mu   sync.Mutex
	nics []*NIC
	rng  *rand.Rand
	loss float64 // probability a frame is dropped

	txFrames uint64
	drops    uint64
}

// NewEtherWire creates an empty segment.
func NewEtherWire() *EtherWire {
	return &EtherWire{rng: rand.New(rand.NewSource(1))}
}

// SetLoss configures the frame-drop probability with a deterministic seed.
func (w *EtherWire) SetLoss(p float64, seed int64) {
	w.mu.Lock()
	w.loss = p
	w.rng = rand.New(rand.NewSource(seed))
	w.mu.Unlock()
}

// Attach joins a NIC to the segment.
func (w *EtherWire) Attach(n *NIC) {
	w.mu.Lock()
	w.nics = append(w.nics, n)
	n.wire = w
	w.mu.Unlock()
}

// Stats reports frames transmitted and frames dropped by loss injection.
func (w *EtherWire) Stats() (tx, drops uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.txFrames, w.drops
}

// transmit carries one frame from src to every other NIC whose address
// filter accepts it.  The wire copies the frame, so the sender may reuse
// its buffer immediately (like a NIC that has DMA'd the frame out).
func (w *EtherWire) transmit(src *NIC, frame []byte) {
	w.transmitGather(src, [][]byte{frame})
}

// transmitGather is transmit for scattered frames: the per-receiver copy
// gathers the runs directly, so scattered and contiguous transmission
// cost the same single DMA copy.
func (w *EtherWire) transmitGather(src *NIC, parts [][]byte) {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	if total < EtherHdrLen || len(parts[0]) < 6 {
		return
	}
	w.mu.Lock()
	w.txFrames++
	if w.loss > 0 && w.rng.Float64() < w.loss {
		w.drops++
		w.mu.Unlock()
		return
	}
	nics := append([]*NIC(nil), w.nics...)
	w.mu.Unlock()

	var dst [6]byte
	copy(dst[:], parts[0][0:6])
	for _, n := range nics {
		if n == src {
			continue
		}
		if n.accepts(dst) {
			n.receiveGather(parts, total)
		}
	}
}

// NIC is a simulated Ethernet controller: a transmit path onto the wire
// and a fixed-size receive ring drained at interrupt level by its driver.
type NIC struct {
	Mac  [6]byte
	wire *EtherWire
	ic   *IntrController
	line int

	mu      sync.Mutex
	ring    [][]byte
	promisc bool

	rxDrops uint64
	rxOK    uint64
	txOK    uint64
}

// NewNIC creates a NIC raising the given IRQ line on receive.
func NewNIC(ic *IntrController, line int, mac [6]byte) *NIC {
	return &NIC{Mac: mac, ic: ic, line: line}
}

// IRQ returns the NIC's interrupt line.
func (n *NIC) IRQ() int { return n.line }

// SetPromiscuous controls whether the address filter accepts all frames.
func (n *NIC) SetPromiscuous(on bool) {
	n.mu.Lock()
	n.promisc = on
	n.mu.Unlock()
}

// Transmit sends one complete Ethernet frame.  Called by the driver from
// any level; returns once the frame is on the wire.
func (n *NIC) Transmit(frame []byte) {
	if n.wire == nil {
		return
	}
	n.mu.Lock()
	n.txOK++
	n.mu.Unlock()
	n.wire.transmit(n, frame)
}

// TransmitGather sends one frame scattered across several memory runs —
// the gather-DMA engine of busmaster controllers, which is how
// mbuf-chain-native drivers transmit without first flattening the chain
// in software.  The single gather into the receiving ring models the DMA
// transfer itself (the same one copy a contiguous Transmit incurs).
func (n *NIC) TransmitGather(parts [][]byte) {
	if n.wire == nil {
		return
	}
	n.mu.Lock()
	n.txOK++
	n.mu.Unlock()
	n.wire.transmitGather(n, parts)
}

// RxPop removes and returns the oldest frame in the receive ring, or nil
// when the ring is empty.  Drivers call it repeatedly from their interrupt
// handler until it returns nil (the controller coalesces interrupts).
func (n *NIC) RxPop() []byte {
	n.mu.Lock()
	defer n.mu.Unlock()
	if len(n.ring) == 0 {
		return nil
	}
	f := n.ring[0]
	n.ring = n.ring[1:]
	return f
}

// Stats reports receive/transmit counters and ring-overflow drops.
func (n *NIC) Stats() (rx, tx, drops uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.rxOK, n.txOK, n.rxDrops
}

func (n *NIC) accepts(dst [6]byte) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.promisc || dst == n.Mac || dst == BroadcastMAC
}

func (n *NIC) receiveGather(parts [][]byte, total int) {
	f := make([]byte, 0, total)
	for _, p := range parts {
		f = append(f, p...)
	}
	n.deliver(f)
}

func (n *NIC) receive(frame []byte) {
	n.deliver(append([]byte(nil), frame...))
}

func (n *NIC) deliver(f []byte) {
	n.mu.Lock()
	if len(n.ring) >= EtherRingLen {
		n.rxDrops++ // ring overrun, as on real silicon
		n.mu.Unlock()
		return
	}
	n.ring = append(n.ring, f)
	n.rxOK++
	n.mu.Unlock()
	if n.ic != nil {
		n.ic.Raise(n.line)
	}
}

// WireOfForTest exposes the segment a NIC is attached to (test hook).
func WireOfForTest(n *NIC) *EtherWire { return n.wire }
