package hw

import (
	"io"
	"sync"
)

// SerialPort is a simulated UART.  Transmit goes wherever the port is
// wired: to a peer port (ConnectSerial — the paper's serial line between
// the test machine and the machine running GDB, §3.5), or to a host-side
// io.Writer (AttachWriter — the developer watching the console).  Receive
// raises the port's IRQ and buffers bytes until read.
type SerialPort struct {
	ic   *IntrController
	line int

	mu   sync.Mutex
	cond *sync.Cond
	rx   []byte
	eof  bool

	txMu sync.Mutex
	tx   func([]byte)
}

// NewSerialPort creates an unwired port.
func NewSerialPort(ic *IntrController, line int) *SerialPort {
	s := &SerialPort{ic: ic, line: line}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// ConnectSerial cross-wires two ports: bytes written to one arrive at the
// other.
func ConnectSerial(a, b *SerialPort) {
	a.setTx(b.deliver)
	b.setTx(a.deliver)
}

// AttachWriter sends this port's transmit side to a host writer (console
// capture).  Receive is unaffected; use Inject to supply input.
func (s *SerialPort) AttachWriter(w io.Writer) {
	s.setTx(func(p []byte) { _, _ = w.Write(p) })
}

func (s *SerialPort) setTx(tx func([]byte)) {
	s.txMu.Lock()
	s.tx = tx
	s.txMu.Unlock()
}

// Write transmits bytes out the port.  An unwired port drops them (like a
// UART with nothing on the line).
func (s *SerialPort) Write(p []byte) (int, error) {
	s.txMu.Lock()
	tx := s.tx
	s.txMu.Unlock()
	if tx != nil {
		// Copy: the receiver buffers asynchronously.
		q := append([]byte(nil), p...)
		tx(q)
	}
	return len(p), nil
}

// Inject feeds bytes into the port's receive side from the host (test
// input, keystrokes).
func (s *SerialPort) Inject(p []byte) { s.deliver(append([]byte(nil), p...)) }

// CloseInput marks end-of-input: blocked and future Reads return io.EOF
// once the buffer drains.
func (s *SerialPort) CloseInput() {
	s.mu.Lock()
	s.eof = true
	s.mu.Unlock()
	s.cond.Broadcast()
}

func (s *SerialPort) deliver(p []byte) {
	s.mu.Lock()
	s.rx = append(s.rx, p...)
	s.mu.Unlock()
	s.cond.Broadcast()
	if s.ic != nil {
		s.ic.Raise(s.line)
	}
}

// Read blocks until at least one byte is available, then returns what is
// buffered (up to len(p)).  It is the polling-style read used by the GDB
// stub and console input.
func (s *SerialPort) Read(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.rx) == 0 {
		if s.eof {
			return 0, io.EOF
		}
		s.cond.Wait()
	}
	n := copy(p, s.rx)
	s.rx = s.rx[n:]
	return n, nil
}

// TryRead is a non-blocking Read returning 0 when nothing is buffered.
func (s *SerialPort) TryRead(p []byte) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := copy(p, s.rx)
	s.rx = s.rx[n:]
	return n
}

// Buffered reports how many received bytes are waiting.
func (s *SerialPort) Buffered() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.rx)
}
