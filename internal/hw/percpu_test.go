package hw

import "testing"

// TestCurCPUDispatcherExact: inside an interrupt handler, CurCPU reports
// the affinity CPU the handler was routed to — the GoID-keyed dispIDs map
// makes dispatcher identity exact.
func TestCurCPUDispatcherExact(t *testing.T) {
	ic := NewIntrControllerCPUs(4)
	defer ic.stop()
	got := make(chan int, 1)
	ic.SetHandler(5, func(int) { got <- ic.CurCPU() })
	ic.SetMask(5, false)
	for want := 0; want < 4; want++ {
		ic.SetAffinity(5, want)
		ic.Raise(5)
		if cpu := <-got; cpu != want {
			t.Fatalf("handler on affinity CPU %d saw CurCPU = %d", want, cpu)
		}
	}
}

// TestCurCPUProcessLevel: process-level goroutines get a stable in-range
// slot, and a single-CPU controller always reports 0.
func TestCurCPUProcessLevel(t *testing.T) {
	one := NewIntrController()
	defer one.stop()
	if cpu := one.CurCPU(); cpu != 0 {
		t.Fatalf("1-CPU CurCPU = %d, want 0", cpu)
	}

	ic := NewIntrControllerCPUs(4)
	defer ic.stop()
	first := ic.CurCPU()
	if first < 0 || first >= 4 {
		t.Fatalf("CurCPU = %d, out of range", first)
	}
	for i := 0; i < 8; i++ {
		if cpu := ic.CurCPU(); cpu != first {
			t.Fatalf("CurCPU not stable on one goroutine: %d then %d", first, cpu)
		}
	}
}

// TestCPUHintSpreadsAndBatches: the hint stays in range, visits every
// slot over enough calls, and holds each slot for runs (batched
// round-robin, not per-call churn).
func TestCPUHintSpreadsAndBatches(t *testing.T) {
	one := NewIntrController()
	defer one.stop()
	if h := one.CPUHint(); h != 0 {
		t.Fatalf("1-CPU CPUHint = %d, want 0", h)
	}

	ic := NewIntrControllerCPUs(4)
	defer ic.stop()
	seen := map[int]int{}
	runs, prev := 0, -1
	const calls = 16 * HintBatch
	for i := 0; i < calls; i++ {
		h := ic.CPUHint()
		if h < 0 || h >= 4 {
			t.Fatalf("CPUHint = %d, out of range", h)
		}
		seen[h]++
		if h != prev {
			runs++
			prev = h
		}
	}
	if len(seen) != 4 {
		t.Fatalf("CPUHint visited %d of 4 slots over %d calls: %v", len(seen), calls, seen)
	}
	// 16 batches of HintBatch calls can cross at most 17 slot boundaries
	// (other goroutines may advance the shared clock concurrently, so
	// allow slack — but per-call churn would give ~calls runs).
	if runs > calls/4 {
		t.Fatalf("CPUHint churned slots %d times in %d calls — batching broken", runs, calls)
	}
}

// TestMixGoIDSpreads: consecutive goroutine ids land on different slots
// rather than clustering.
func TestMixGoIDSpreads(t *testing.T) {
	seen := map[uint64]bool{}
	for id := uint64(1); id <= 64; id++ {
		seen[mixGoID(id)%8] = true
	}
	if len(seen) != 8 {
		t.Fatalf("64 consecutive goids covered %d of 8 slots", len(seen))
	}
}
