package hw

import (
	"sync"
	"testing"
	"time"
)

// Tests for the polled-receive NIC surface (E12): batched ring drain,
// interrupt mitigation, the re-arm edge, and the two receive-hook
// contracts the fault plane depends on — the hook runs outside the NIC
// lock, and it is consulted once per offered frame even when the ring
// is full.

// The receive fault hook may call back into the NIC's own accessors.
// The injector's hooks count into shared statistics and a chaos
// harness is free to snapshot NIC counters from inside one; taking
// n.mu around the hook call deadlocked exactly that.
func TestNICRxHookMayCallStats(t *testing.T) {
	_, a, b, macA, macB := twoNICs(t)

	done := make(chan struct{})
	go func() {
		defer close(done)
		b.SetRxFaultHook(func() bool {
			_, _, _ = b.Stats()          // re-enters the NIC under test
			_, _, _ = b.RxIntrCounters() // both accessor locks
			return false
		})
		a.Transmit(frame(macB, macA, "reentrant hook"))
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("deliver deadlocked: rx fault hook held under the NIC lock")
	}
	if f := b.RxPop(); f == nil || string(f[EtherHdrLen:]) != "reentrant hook" {
		t.Fatalf("frame lost: %q", f)
	}
}

// One offered frame, one hook decision — even when the ring is already
// full.  If the overrun check short-circuited past the hook, a full
// ring would silently skip draws from the seeded decision stream and
// replays would diverge from the logged plan.
func TestNICRxHookConsultedWhenRingFull(t *testing.T) {
	_, a, b, macA, macB := twoNICs(t)

	decisions := 0
	b.SetRxFaultHook(func() bool {
		decisions++
		return false
	})
	// Fill the ring to capacity (IRQ masked: nothing drains it), then
	// keep offering.
	const extra = 20
	for i := 0; i < EtherRingLen+extra; i++ {
		a.Transmit(frame(macB, macA, "x"))
	}
	if decisions != EtherRingLen+extra {
		t.Fatalf("hook consulted %d times for %d offered frames", decisions, EtherRingLen+extra)
	}
	rx, _, drops := b.Stats()
	if rx != EtherRingLen || drops != extra {
		t.Fatalf("rx=%d drops=%d, want %d/%d", rx, drops, EtherRingLen, extra)
	}
}

// Mitigation raises the line only on the ring's empty→non-empty edge;
// draining re-arms the edge; switching mitigation off with frames
// pending re-raises so nothing strands.
func TestRxIntrMitigationEdgeOnly(t *testing.T) {
	_, a, b, macA, macB := twoNICs(t)
	b.SetRxIntrMitigation(true)

	for i := 0; i < 5; i++ {
		a.Transmit(frame(macB, macA, "burst"))
	}
	raised, suppr, _ := b.RxIntrCounters()
	if raised != 1 || suppr != 4 {
		t.Fatalf("after burst: raised=%d suppressed=%d, want 1/4", raised, suppr)
	}

	// Drain the ring: the next frame is a fresh edge.
	dst := make([][]byte, 8)
	if n := b.RxPopBatch(dst, 8); n != 5 {
		t.Fatalf("RxPopBatch drained %d, want 5", n)
	}
	a.Transmit(frame(macB, macA, "fresh edge"))
	raised, suppr, _ = b.RxIntrCounters()
	if raised != 2 || suppr != 4 {
		t.Fatalf("after drain+frame: raised=%d suppressed=%d, want 2/4", raised, suppr)
	}

	// Disable with a frame still ringed: the line is re-raised, not
	// stranded.
	b.SetRxIntrMitigation(false)
	raised, _, _ = b.RxIntrCounters()
	if raised != 3 {
		t.Fatalf("disable with pending frame raised %d, want 3", raised)
	}
	// Back to the stock per-frame model.
	a.Transmit(frame(macB, macA, "stock"))
	raised, suppr, _ = b.RxIntrCounters()
	if raised != 4 || suppr != 4 {
		t.Fatalf("stock mode: raised=%d suppressed=%d, want 4/4", raised, suppr)
	}
}

// RxPopBatch bounds by both max and len(dst), preserves FIFO order,
// and ledgers the drained frames.
func TestRxPopBatchBounds(t *testing.T) {
	_, a, b, macA, macB := twoNICs(t)
	payloads := []string{"one", "two", "three", "four", "five"}
	for _, p := range payloads {
		a.Transmit(frame(macB, macA, p))
	}

	dst := make([][]byte, 2)
	if n := b.RxPopBatch(dst, 8); n != 2 { // bounded by len(dst)
		t.Fatalf("pop = %d, want 2", n)
	}
	if string(dst[0][EtherHdrLen:]) != "one" || string(dst[1][EtherHdrLen:]) != "two" {
		t.Fatalf("order broken: %q %q", dst[0][EtherHdrLen:], dst[1][EtherHdrLen:])
	}
	dst = make([][]byte, 8)
	if n := b.RxPopBatch(dst, 1); n != 1 { // bounded by max
		t.Fatalf("pop = %d, want 1", n)
	}
	if string(dst[0][EtherHdrLen:]) != "three" {
		t.Fatalf("order broken: %q", dst[0][EtherHdrLen:])
	}
	if n := b.RxPopBatch(dst, 8); n != 2 { // bounded by ring occupancy
		t.Fatalf("pop = %d, want 2", n)
	}
	if n := b.RxPopBatch(dst, 8); n != 0 { // empty
		t.Fatalf("pop on empty ring = %d", n)
	}
	if b.RxBatched() != 5 {
		t.Fatalf("RxBatched = %d, want 5", b.RxBatched())
	}
}

// RxRearm raises only when frames are pending, and ledgers the re-arm.
func TestRxRearm(t *testing.T) {
	_, a, b, macA, macB := twoNICs(t)
	if b.RxRearm() {
		t.Fatal("re-arm fired on an empty ring")
	}
	a.Transmit(frame(macB, macA, "pending"))
	if !b.RxRearm() {
		t.Fatal("re-arm did not fire with a pending frame")
	}
	raised, _, rearms := b.RxIntrCounters()
	if rearms != 1 {
		t.Fatalf("rearms = %d, want 1", rearms)
	}
	// The transmit raised once, the re-arm once more.
	if raised != 2 {
		t.Fatalf("raised = %d, want 2", raised)
	}
}

// Batch drain racing delivery at ring capacity, with the fault hook
// toggling underneath: run under -race by the tier-1 suite, and every
// frame must be conserved — accepted frames equal popped plus still
// ringed, and accepted plus dropped equals offered.
func TestRxBatchOverrunRace(t *testing.T) {
	wire, a, b, macA, macB := twoNICs(t)

	const frames = 2000
	var wg sync.WaitGroup
	popped := 0
	txDone := make(chan struct{})
	wg.Add(3)
	go func() {
		defer wg.Done()
		defer close(txDone)
		f := frame(macB, macA, "race traffic")
		for i := 0; i < frames; i++ {
			a.Transmit(f)
		}
	}()
	go func() {
		defer wg.Done()
		dst := make([][]byte, 16)
		for {
			n := b.RxPopBatch(dst, 16)
			popped += n
			if n == 0 {
				select {
				case <-txDone:
					return
				default:
				}
			}
		}
	}()
	go func() {
		defer wg.Done()
		hook := func() bool { return true }
		for i := 0; i < 200; i++ {
			b.SetRxFaultHook(hook)
			b.SetRxFaultHook(nil)
		}
	}()
	wg.Wait()

	// Final drain: anything still ringed.
	dst := make([][]byte, 64)
	for {
		n := b.RxPopBatch(dst, 64)
		if n == 0 {
			break
		}
		popped += n
	}
	rx, _, rxDrops := b.Stats()
	tx, wireDrops := wire.Stats()
	if tx != frames || wireDrops != 0 {
		t.Fatalf("wire: tx=%d drops=%d", tx, wireDrops)
	}
	if uint64(popped) != rx {
		t.Errorf("popped %d frames, NIC accepted %d", popped, rx)
	}
	if rx+rxDrops != frames {
		t.Errorf("frames unaccounted for: rx=%d drops=%d, offered %d", rx, rxDrops, frames)
	}
	if b.RxBatched() != uint64(popped) {
		t.Errorf("RxBatched = %d, popped %d", b.RxBatched(), popped)
	}
}
