package hw

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestSMPDispatchConcurrent: handlers on lines with different CPU
// affinities run concurrently — the per-CPU interrupt exclusion replaces
// the old machine-wide one.
func TestSMPDispatchConcurrent(t *testing.T) {
	ic := NewIntrControllerCPUs(2)
	defer ic.stop()
	if ic.NumCPUs() != 2 {
		t.Fatalf("NumCPUs = %d", ic.NumCPUs())
	}
	ic.SetAffinity(5, 0)
	ic.SetAffinity(6, 1)

	inA := make(chan struct{})
	release := make(chan struct{})
	bRan := make(chan struct{})
	ic.SetHandler(5, func(int) { close(inA); <-release })
	ic.SetHandler(6, func(int) { close(bRan) })
	ic.SetMask(5, false)
	ic.SetMask(6, false)

	ic.Raise(5)
	<-inA // CPU 0 is parked inside handler A
	ic.Raise(6)
	select {
	case <-bRan: // CPU 1 dispatched B while A still runs
	case <-time.After(5 * time.Second):
		t.Fatal("cross-CPU handler did not run while CPU 0 was busy")
	}
	close(release)
}

// TestSMPDisableExcludesCPU0Only: the legacy Disable section stops CPU 0
// handlers but not another CPU's.
func TestSMPDisableExcludesCPU0Only(t *testing.T) {
	ic := NewIntrControllerCPUs(2)
	defer ic.stop()
	ic.SetAffinity(7, 1)
	var cpu0Ran atomic.Bool
	cpu1Ran := make(chan struct{})
	ic.SetHandler(3, func(int) { cpu0Ran.Store(true) })
	ic.SetHandler(7, func(int) { close(cpu1Ran) })
	ic.SetMask(3, false)
	ic.SetMask(7, false)

	ic.Disable()
	ic.Raise(3)
	ic.Raise(7)
	select {
	case <-cpu1Ran:
	case <-time.After(5 * time.Second):
		ic.Enable()
		t.Fatal("CPU 1 handler blocked by CPU 0 Disable")
	}
	if cpu0Ran.Load() {
		ic.Enable()
		t.Fatal("CPU 0 handler ran inside Disable section")
	}
	ic.Enable()
	deadline := time.Now().Add(5 * time.Second)
	for !cpu0Ran.Load() {
		if time.Now().After(deadline) {
			t.Fatal("CPU 0 handler never ran after Enable")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSMPInIntrPerCPU: InIntr answers for the *calling goroutine* on a
// multi-CPU machine — process-level code is not misclassified while some
// other CPU is mid-handler.
func TestSMPInIntrPerCPU(t *testing.T) {
	ic := NewIntrControllerCPUs(2)
	defer ic.stop()
	ic.SetAffinity(8, 1)
	entered := make(chan struct{})
	release := make(chan struct{})
	var sawInIntr atomic.Bool
	ic.SetHandler(8, func(int) {
		sawInIntr.Store(ic.InIntr())
		close(entered)
		<-release
	})
	ic.SetMask(8, false)
	ic.Raise(8)
	<-entered
	if ic.InIntr() {
		t.Fatal("process level reported InIntr while CPU 1 ran a handler")
	}
	close(release)
	if !sawInIntr.Load() {
		t.Fatal("handler did not observe InIntr")
	}
}

// TestAllocLine: MSI-style vectors come from the 16..31 range, are
// unique, and run out cleanly.
func TestAllocLine(t *testing.T) {
	ic := NewIntrControllerCPUs(1)
	defer ic.stop()
	seen := map[int]bool{}
	for i := 0; i < 16; i++ {
		l := ic.AllocLine()
		if l < 16 || l >= NumIRQs || seen[l] {
			t.Fatalf("AllocLine #%d = %d (seen=%v)", i, l, seen[l])
		}
		seen[l] = true
	}
	if l := ic.AllocLine(); l != -1 {
		t.Fatalf("AllocLine past exhaustion = %d, want -1", l)
	}
}

// TestConfigureRxQueuesRSSDelivery: a multi-queue NIC spreads flows
// across rings by hash, each ring raising its own affinitized line, and
// the per-queue drain APIs return exactly what the classifier routed.
func TestConfigureRxQueuesRSSDelivery(t *testing.T) {
	m := NewMachine(Config{Name: "rx", CPUs: 4})
	defer m.Halt()
	w := NewEtherWire()
	src := m.AttachNIC(w, [6]byte{2, 0, 0, 0, 0, 1}, Model3C59X)
	dst := m.AttachNIC(w, [6]byte{2, 0, 0, 0, 0, 2}, Model3C59X)
	lines := dst.ConfigureRxQueues(4)
	if len(lines) != 4 || dst.RxQueues() != 4 {
		t.Fatalf("rings = %v (%d)", lines, dst.RxQueues())
	}
	if lines[0] != dst.IRQ() {
		t.Fatalf("ring 0 line %d != legacy IRQ %d", lines[0], dst.IRQ())
	}
	for q := 1; q < 4; q++ {
		if got := m.Intr.Affinity(lines[q]); got != q%4 {
			t.Fatalf("ring %d affinity = CPU %d, want %d", q, got, q%4)
		}
		if dst.RxIRQ(q) != lines[q] {
			t.Fatalf("RxIRQ(%d) = %d, want %d", q, dst.RxIRQ(q), lines[q])
		}
	}

	var mu sync.Mutex
	got := map[int]int{} // ring -> frames observed via its own line
	for q := 0; q < 4; q++ {
		q := q
		m.Intr.SetHandler(lines[q], func(int) {
			for dst.RxPopOn(q) != nil {
				mu.Lock()
				got[q]++
				mu.Unlock()
			}
		})
		m.Intr.SetMask(lines[q], false)
	}

	const flows, perFlow = 32, 4
	want := map[int]int{}
	for p := 0; p < flows; p++ {
		f := rssFrame(rssProtoTCP, 0x0a000001, 0x0a000002, uint16(2000+p), 5001, 0, 16)
		copy(f[0:6], dst.Mac[:])
		copy(f[6:12], src.Mac[:])
		want[RSSRing(f, 4)] += perFlow
		for i := 0; i < perFlow; i++ {
			src.Transmit(f)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		total := 0
		for _, c := range got {
			total += c
		}
		done := total == flows*perFlow
		mu.Unlock()
		if done {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("drained %v, want %v", got, want)
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	spread := 0
	for q := 0; q < 4; q++ {
		if got[q] != want[q] {
			t.Fatalf("ring %d drained %d frames, classifier said %d", q, got[q], want[q])
		}
		if got[q] > 0 {
			spread++
		}
	}
	if spread < 2 {
		t.Fatalf("32 flows all landed on %d ring(s)", spread)
	}
	rx, tx, drops := dst.Stats()
	_ = tx
	if rx != uint64(flows*perFlow) || drops != 0 {
		t.Fatalf("aggregate stats rx=%d drops=%d", rx, drops)
	}
}

// TestSingleQueueUnchanged: without ConfigureRxQueues the NIC is the
// classic single-ring device — one queue, legacy line, RxPop drains.
func TestSingleQueueUnchanged(t *testing.T) {
	ic := NewIntrController()
	defer ic.stop()
	n := NewNIC(ic, IRQNIC0, [6]byte{2, 0, 0, 0, 0, 9})
	if n.RxQueues() != 1 || n.RxIRQ(0) != IRQNIC0 || n.RxIRQ(1) != -1 {
		t.Fatalf("queues=%d irq0=%d irq1=%d", n.RxQueues(), n.RxIRQ(0), n.RxIRQ(1))
	}
	n.receive(rssFrame(rssProtoTCP, 1, 2, 3, 4, 0, 8))
	if f := n.RxPop(); f == nil {
		t.Fatal("RxPop returned nil after receive")
	}
}
