package hw

import "encoding/binary"

// Receive-side scaling: a deterministic flow hash over the IPv4 4-tuple
// so every segment of one connection lands in the same receive ring (and
// therefore drains on the same CPU, in order).  Real controllers use a
// keyed Toeplitz hash; this simulator wants determinism across runs, so
// it uses an unkeyed splitmix-style mixer with the same distribution
// properties the stack cares about.
//
// Classification rules (matching what multi-queue silicon does):
//
//   - Non-IPv4 frames (ARP, runts, unknown ethertypes) hash to ring 0.
//   - TCP and UDP hash source/destination address and port plus protocol.
//   - IP fragments hash addresses only — a non-first fragment carries no
//     ports, so including them would split one datagram's fragments
//     across rings and reorder the flow.
//   - Other IP protocols (ICMP) hash addresses and protocol.
//
// Frames too short for the headers they advertise fall back to ring 0
// rather than reading out of bounds.

const (
	rssEtherTypeIPv4 = 0x0800
	rssProtoTCP      = 6
	rssProtoUDP      = 17
)

// RSSHash computes the flow hash of one Ethernet frame.  Deterministic:
// the same frame bytes always produce the same hash, on every run.
func RSSHash(f []byte) uint32 {
	if len(f) < EtherHdrLen+20 {
		return 0
	}
	if binary.BigEndian.Uint16(f[12:14]) != rssEtherTypeIPv4 {
		return 0
	}
	ip := f[EtherHdrLen:]
	if ip[0]>>4 != 4 {
		return 0
	}
	ihl := int(ip[0]&0x0f) * 4
	if ihl < 20 || len(ip) < ihl {
		return 0
	}
	proto := ip[9]
	src := binary.BigEndian.Uint32(ip[12:16])
	dst := binary.BigEndian.Uint32(ip[16:20])
	// Fragment? (more-fragments set or a non-zero offset): 2-tuple only.
	fragField := binary.BigEndian.Uint16(ip[6:8])
	fragment := fragField&0x3fff != 0
	var ports uint32
	if !fragment && (proto == rssProtoTCP || proto == rssProtoUDP) {
		if len(ip) < ihl+4 {
			return 0
		}
		ports = uint32(binary.BigEndian.Uint16(ip[ihl:ihl+2]))<<16 |
			uint32(binary.BigEndian.Uint16(ip[ihl+2:ihl+4]))
	}
	return rssMix(uint64(src)<<32|uint64(dst), uint64(ports)<<8|uint64(proto))
}

// RSSRing maps a frame to one of nrings receive rings.
func RSSRing(f []byte, nrings int) int {
	if nrings <= 1 {
		return 0
	}
	return int(RSSHash(f) % uint32(nrings))
}

// rssMix is a splitmix64-style finalizer over the packed tuple words.
func rssMix(a, b uint64) uint32 {
	x := a ^ (b * 0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return uint32(x) ^ uint32(x>>32)
}
