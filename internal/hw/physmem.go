package hw

import "fmt"

// PhysAddr is a simulated physical memory address.
type PhysAddr = uint32

// DMALimit is the highest physical address (exclusive) reachable by the
// simulated machine's legacy DMA engines — the PC's ISA constraint the
// paper cites in §3.3: "only the first 16MB of physical memory on PCs is
// accessible to the built-in DMA controller".
const DMALimit PhysAddr = 16 << 20

// PhysMem is the machine's flat physical memory.  Addresses are offsets
// into a single backing array, so components that manipulate addresses
// arithmetically (the LMM's alignment machinery, BSD malloc's block-size
// table, page tables) operate on genuine integer addresses whose storage
// they can also touch.
//
// Code that needs to translate a buffer back to its physical address (for
// DMA programming, §4.7.8) must carry the address alongside the slice; the
// kit's allocators all hand out (address, slice) pairs for this reason.
type PhysMem struct {
	data []byte
}

// NewPhysMem allocates size bytes of zeroed physical memory.
func NewPhysMem(size uint32) *PhysMem {
	return &PhysMem{data: make([]byte, size)}
}

// Size returns the physical memory size in bytes.
func (p *PhysMem) Size() uint32 { return uint32(len(p.data)) }

// Slice returns the memory aliasing [addr, addr+size).  Out-of-range
// accesses return an error (the simulated machine-check).
func (p *PhysMem) Slice(addr PhysAddr, size uint32) ([]byte, error) {
	end := uint64(addr) + uint64(size)
	if end > uint64(len(p.data)) {
		return nil, fmt.Errorf("hw: physical access [%#x,%#x) beyond %#x", addr, end, len(p.data))
	}
	return p.data[addr:end:end], nil
}

// MustSlice is Slice for callers whose addresses were validated at
// allocation time; a bad address is a kit bug and panics like a machine
// check would halt a real CPU.
func (p *PhysMem) MustSlice(addr PhysAddr, size uint32) []byte {
	b, err := p.Slice(addr, size)
	if err != nil {
		panic(err)
	}
	return b
}
