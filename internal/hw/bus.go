package hw

import "sync"

// BusDevice describes one device the machine's bus exposes to probing.
// Drivers claim devices by (Vendor, Device) ID, exactly as the donor
// Linux drivers probe PCI/ISA hardware.
type BusDevice struct {
	Name           string
	Vendor, Device uint16
	IRQ            int
	// HW is the simulated silicon: *NIC, *Disk, or *SerialPort.
	HW any
}

// Bus is the machine's device bus.
type Bus struct {
	mu   sync.Mutex
	devs []BusDevice
}

// Add registers a device.
func (b *Bus) Add(d BusDevice) {
	b.mu.Lock()
	b.devs = append(b.devs, d)
	b.mu.Unlock()
}

// Devices returns a snapshot of everything on the bus, in attach order.
func (b *Bus) Devices() []BusDevice {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]BusDevice(nil), b.devs...)
}

// Find returns the devices matching a (vendor, device) ID pair.
func (b *Bus) Find(vendor, device uint16) []BusDevice {
	var out []BusDevice
	for _, d := range b.Devices() {
		if d.Vendor == vendor && d.Device == device {
			out = append(out, d)
		}
	}
	return out
}
