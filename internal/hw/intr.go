package hw

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// runtimeStack is indirected for testability.
var runtimeStack = func(buf []byte) int { return runtime.Stack(buf, false) }

// NumIRQs is the number of interrupt vectors.  Lines 0–15 model the PC
// PIC pair the donor drivers were written against; lines 16–31 are
// message-signaled-style vectors AllocLine hands out to multi-queue
// devices (one per NIC receive ring on SMP machines).
const NumIRQs = 32

// IntrHandler is an interrupt-level handler.  Per the execution model of
// §4.7.4, a handler runs to completion, never blocks, and must not call
// Disable (interrupts are already disabled while it runs).
type IntrHandler func(line int)

// cpuCtx is one logical CPU's dispatch context: its own interrupt-enable
// flag (cliMu), its own pending set, and its own dispatcher goroutine.
// On a 1-CPU machine there is exactly one of these and the model is the
// original two-level §4.7.4 machine, unchanged.
type cpuCtx struct {
	index int

	// cliMu is held whenever this CPU's interrupts are disabled: either
	// by a process-level Disable section (CPU 0 only — the boot CPU owns
	// the legacy process-level cli) or for the duration of one handler.
	// Sections nest per thread of control (BSD spl semantics), so the
	// context tracks the owning goroutine.
	cliMu    sync.Mutex
	cliOwner atomic.Uint64
	cliNest  int

	// inIntr is true while a handler runs on this CPU.
	inIntr atomic.Bool

	mu      sync.Mutex
	cond    *sync.Cond
	pending uint64
	stopped bool
	done    chan struct{}
}

// IntrController is the machine's interrupt controller plus the CPUs'
// interrupt-enable flags.
//
// Model (paper §4.7.4, extended): there are two levels of execution.
// Process-level activities run on ordinary goroutines and may block at
// well-defined points.  Interrupt-level activities run one at a time
// *per CPU* on that CPU's dispatcher; each interrupt line has a CPU
// affinity (default CPU 0), and Raise signals the owning CPU's
// dispatcher — the simulator's IPI.  Handlers on distinct CPUs run
// concurrently; all the legacy single-CPU invariants hold per CPU.
//
// Process level excludes CPU 0's interrupt level with Disable/Enable
// (cli/sti); these nest, like the save_flags/cli/restore_flags idiom in
// donor code.  Components that keep the giant-lock discipline therefore
// keep all their lines on CPU 0 (the default affinity); only components
// with their own fine-grained locking (the SMP network stack) spread
// lines across CPUs.
type IntrController struct {
	cpus []*cpuCtx

	// Shared line state.  masked is atomic so dispatchers can evaluate
	// their wait predicate without the line lock; RMW updates go through
	// lmu.
	lmu       sync.Mutex
	masked    atomic.Uint64
	handlers  [NumIRQs]IntrHandler
	affinity  [NumIRQs]int32 // line -> CPU index; written via lmu
	allocated uint64         // AllocLine bitmap (lines 16..31)

	counts [NumIRQs]atomic.Uint64

	// dispIDs maps dispatcher goroutine ids to their cpuCtx, giving
	// goroutine-accurate InIntr on multi-CPU machines.
	dispIDs sync.Map // uint64 -> *cpuCtx

	stopOnce sync.Once
}

// NewIntrController starts a 1-CPU controller with every line masked and
// no handlers installed.
func NewIntrController() *IntrController { return NewIntrControllerCPUs(1) }

// NewIntrControllerCPUs starts a controller with ncpu logical CPUs (one
// dispatcher each).  All lines start masked, handler-free, and
// affinitized to CPU 0.
func NewIntrControllerCPUs(ncpu int) *IntrController {
	if ncpu < 1 {
		ncpu = 1
	}
	ic := &IntrController{}
	ic.masked.Store(1<<NumIRQs - 1)
	started := make(chan struct{}, ncpu)
	for i := 0; i < ncpu; i++ {
		c := &cpuCtx{index: i, done: make(chan struct{})}
		c.cond = sync.NewCond(&c.mu)
		ic.cpus = append(ic.cpus, c)
		go ic.dispatch(c, started)
	}
	// Wait for every dispatcher to publish its goroutine id, so InIntr is
	// accurate from the first delivered interrupt on.
	for i := 0; i < ncpu; i++ {
		<-started
	}
	return ic
}

// NumCPUs reports the number of logical CPUs (dispatch contexts).
func (ic *IntrController) NumCPUs() int { return len(ic.cpus) }

// SetAffinity routes a line's interrupts to one CPU's dispatcher.
// Configure affinity at boot, before the line's device raises traffic; a
// pending interrupt raised under the old affinity is still dispatched
// there.  Out-of-range CPUs clamp to CPU 0.
func (ic *IntrController) SetAffinity(line, cpu int) {
	if line < 0 || line >= NumIRQs {
		return
	}
	if cpu < 0 || cpu >= len(ic.cpus) {
		cpu = 0
	}
	ic.lmu.Lock()
	ic.affinity[line] = int32(cpu)
	ic.lmu.Unlock()
}

// Affinity reports the CPU a line is routed to.
func (ic *IntrController) Affinity(line int) int {
	ic.lmu.Lock()
	defer ic.lmu.Unlock()
	return int(ic.affinity[line])
}

// AllocLine hands out an unused message-signaled-style vector (line ≥ 16)
// for a device queue, or -1 when all are taken.
func (ic *IntrController) AllocLine() int {
	ic.lmu.Lock()
	defer ic.lmu.Unlock()
	for line := 16; line < NumIRQs; line++ {
		if ic.allocated&(1<<line) == 0 && ic.handlers[line] == nil {
			ic.allocated |= 1 << line
			return line
		}
	}
	return -1
}

// Raise asserts an interrupt line.  It may be called from any context —
// device goroutines, interrupt handlers, process level.  Raising a line
// that is already pending is idempotent (edge-triggered coalescing, as on
// the PC's PIC): drivers must drain their device in the handler.  The
// signal lands on the line's affinity CPU — a cross-CPU Raise is the
// simulator's IPI.
func (ic *IntrController) Raise(line int) {
	if line < 0 || line >= NumIRQs {
		return
	}
	ic.lmu.Lock()
	cpu := int(ic.affinity[line])
	ic.lmu.Unlock()
	c := ic.cpus[cpu]
	c.mu.Lock()
	c.pending |= 1 << line
	c.mu.Unlock()
	c.cond.Signal()
}

// SetHandler installs (or, with nil, removes) the handler for a line.
func (ic *IntrController) SetHandler(line int, h IntrHandler) {
	if line < 0 || line >= NumIRQs {
		return
	}
	ic.lmu.Lock()
	ic.handlers[line] = h
	ic.lmu.Unlock()
}

// SetMask masks (true) or unmasks (false) one line.  Pending interrupts on
// a masked line are held, not dropped.
func (ic *IntrController) SetMask(line int, masked bool) {
	if line < 0 || line >= NumIRQs {
		return
	}
	ic.lmu.Lock()
	m := ic.masked.Load()
	if masked {
		m |= 1 << line
	} else {
		m &^= 1 << line
	}
	ic.masked.Store(m)
	ic.lmu.Unlock()
	for _, c := range ic.cpus {
		c.cond.Signal()
	}
}

// Disable enters a critical section excluding CPU 0's interrupt handlers
// (cli).  Sections nest within one thread of control; distinct threads
// exclude each other, matching per-CPU EFLAGS.IF plus the one-at-a-time
// process-level model of §4.7.4.  On a multi-CPU machine this is the
// legacy discipline: it excludes only the boot CPU, where every line
// without an explicit affinity is dispatched.
func (ic *IntrController) Disable() {
	c := ic.cpus[0]
	id := goid()
	if c.cliOwner.Load() == id {
		c.cliNest++ // nested: only the owner touches cliNest
		return
	}
	c.cliMu.Lock()
	c.cliOwner.Store(id)
	c.cliNest = 1
}

// DropAll releases the calling thread's *entire* Disable nesting,
// returning the depth for RestoreAll.  Donor sleep paths need this: BSD's
// tsleep and Linux's sleep_on drop to spl0/sti completely before
// blocking, no matter how deeply the caller's components have nested
// their exclusion — otherwise a file system sleeping inside a disk
// driver would hold interrupts off and deadlock against the completion
// handler.
func (ic *IntrController) DropAll() int {
	c := ic.cpus[0]
	if c.cliOwner.Load() == 0 {
		panic("hw: DropAll without Disable")
	}
	n := c.cliNest
	c.cliNest = 0
	c.cliOwner.Store(0)
	c.cliMu.Unlock()
	return n
}

// DropAllHeld is DropAll for callers that may not hold the exclusion: it
// releases the calling thread's entire Disable nesting and returns the
// depth, or returns 0 when this thread holds no section.  SMP glue sleep
// paths need the conditional form — their own cli seam is a no-op, but an
// *outer* component (a file system's splbio bracketing a disk driver
// call) may still have the boot CPU's exclusion open, and sleeping while
// holding it would deadlock against the completion handler.
func (ic *IntrController) DropAllHeld() int {
	c := ic.cpus[0]
	if c.cliOwner.Load() != goid() {
		return 0
	}
	n := c.cliNest
	c.cliNest = 0
	c.cliOwner.Store(0)
	c.cliMu.Unlock()
	return n
}

// RestoreAll re-acquires the exclusion at the depth DropAll returned.
func (ic *IntrController) RestoreAll(n int) {
	if n <= 0 {
		panic("hw: RestoreAll of a non-positive depth")
	}
	c := ic.cpus[0]
	c.cliMu.Lock()
	c.cliOwner.Store(goid())
	c.cliNest = n
}

// Enable leaves the innermost Disable section (sti).  The owner check
// is depth-only (goid would cost microseconds per call on the hottest
// path in the kit); unbalanced Enable still panics via the zero owner.
func (ic *IntrController) Enable() {
	c := ic.cpus[0]
	if c.cliOwner.Load() == 0 {
		panic("hw: Enable without Disable")
	}
	c.cliNest--
	if c.cliNest == 0 {
		c.cliOwner.Store(0)
		c.cliMu.Unlock()
	}
}

// InIntr reports whether the caller is running at interrupt level.  On a
// 1-CPU machine this is the original cheap flag read (true exactly while
// a handler is being dispatched — there is only one place it could run).
// On a multi-CPU machine the question is per-caller: the answer is true
// only on a dispatcher goroutine, so concurrently-running process-level
// code is not misclassified while another CPU handles an interrupt.
func (ic *IntrController) InIntr() bool {
	if len(ic.cpus) == 1 {
		return ic.cpus[0].inIntr.Load()
	}
	if v, ok := ic.dispIDs.Load(goid()); ok {
		return v.(*cpuCtx).inIntr.Load()
	}
	return false
}

// Count returns how many times a line's handler has been dispatched.
func (ic *IntrController) Count(line int) uint64 {
	if line < 0 || line >= NumIRQs {
		return 0
	}
	return ic.counts[line].Load()
}

// stop terminates every dispatcher (machine halt) and waits for them.
func (ic *IntrController) stop() {
	ic.stopOnce.Do(func() {
		for _, c := range ic.cpus {
			c.mu.Lock()
			c.stopped = true
			c.mu.Unlock()
			c.cond.Signal()
		}
		for _, c := range ic.cpus {
			<-c.done
		}
	})
}

// dispatch is one CPU's interrupt level: one handler at a time, lowest
// pending unmasked line first, each excluded against that CPU's cli
// sections.
func (ic *IntrController) dispatch(c *cpuCtx, started chan<- struct{}) {
	defer close(c.done)
	dispatcherID := goid() // hoisted: one goroutine serves this CPU's handlers
	ic.dispIDs.Store(dispatcherID, c)
	started <- struct{}{}
	for {
		c.mu.Lock()
		for !c.stopped && c.pending&^ic.masked.Load() == 0 {
			c.cond.Wait()
		}
		if c.stopped {
			c.mu.Unlock()
			return
		}
		ready := c.pending &^ ic.masked.Load()
		line := lowestBit(ready)
		c.pending &^= 1 << line
		c.mu.Unlock()
		ic.lmu.Lock()
		h := ic.handlers[line]
		ic.lmu.Unlock()
		ic.counts[line].Add(1)

		c.cliMu.Lock()
		c.cliOwner.Store(dispatcherID) // handlers may themselves nest Disable
		c.cliNest = 1
		c.inIntr.Store(true)
		if h != nil {
			h(line)
		}
		c.inIntr.Store(false)
		c.cliNest = 0
		c.cliOwner.Store(0)
		c.cliMu.Unlock()
	}
}

// GoID returns the current goroutine's id — the simulator's
// thread-of-control identity.  SMP-aware glue layers key per-"CPU"
// state (current process pointers) by it, the way a real kernel reads
// a CPU-local pointer register.
func GoID() uint64 { return goid() }

// goid extracts the current goroutine's id from the runtime stack header
// ("goroutine N [running]: …").  It is the simulator's stand-in for
// per-CPU identity; the first line of runtime.Stack output is stable
// across Go releases.
func goid() uint64 {
	var buf [32]byte
	n := runtimeStack(buf[:])
	// Skip "goroutine ".
	var id uint64
	for i := 10; i < n; i++ {
		c := buf[i]
		if c < '0' || c > '9' {
			break
		}
		id = id*10 + uint64(c-'0')
	}
	return id
}

func lowestBit(v uint64) int {
	for i := 0; i < 64; i++ {
		if v&(1<<i) != 0 {
			return i
		}
	}
	return -1
}
