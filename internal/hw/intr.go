package hw

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// runtimeStack is indirected for testability.
var runtimeStack = func(buf []byte) int { return runtime.Stack(buf, false) }

// NumIRQs is the number of interrupt request lines (PC PIC pair).
const NumIRQs = 16

// IntrHandler is an interrupt-level handler.  Per the execution model of
// §4.7.4, a handler runs to completion, never blocks, and must not call
// Disable (interrupts are already disabled while it runs).
type IntrHandler func(line int)

// IntrController is the machine's interrupt controller plus the CPU's
// interrupt-enable flag.
//
// Model (paper §4.7.4): there are two levels of execution.  Process-level
// activities run on ordinary goroutines and may block at well-defined
// points.  Interrupt-level activities run one at a time on the controller's
// dispatcher, any time interrupts are enabled.  Process level excludes
// interrupt level with Disable/Enable (cli/sti); these nest, like the
// save_flags/cli/restore_flags idiom in donor code.
//
// Disable/Enable may be called only from process level.  The kit's process
// level is serialized per machine (the kernel support library runs client
// code under a single process-level lock; see internal/kern), which makes
// the nest counter safe.
type IntrController struct {
	// cliMu is held whenever interrupts are disabled: either by a
	// process-level Disable section or for the duration of one handler.
	// Sections nest per thread of control (BSD spl semantics), so the
	// controller tracks the owning goroutine.
	cliMu    sync.Mutex
	cliOwner atomic.Uint64
	cliNest  int

	// inIntr is true while a handler runs, letting glue code implement
	// donor save_flags correctly when donor code is entered from
	// interrupt level.
	inIntr atomic.Bool

	mu       sync.Mutex
	cond     *sync.Cond
	pending  uint32
	masked   uint32
	handlers [NumIRQs]IntrHandler
	stopped  bool
	// counts[i] is the number of times line i has been dispatched.
	counts [NumIRQs]uint64

	done chan struct{}
}

// NewIntrController starts the dispatcher with every line masked and no
// handlers installed.
func NewIntrController() *IntrController {
	ic := &IntrController{masked: (1 << NumIRQs) - 1, done: make(chan struct{})}
	ic.cond = sync.NewCond(&ic.mu)
	go ic.dispatch()
	return ic
}

// Raise asserts an interrupt line.  It may be called from any context —
// device goroutines, interrupt handlers, process level.  Raising a line
// that is already pending is idempotent (edge-triggered coalescing, as on
// the PC's PIC): drivers must drain their device in the handler.
func (ic *IntrController) Raise(line int) {
	ic.mu.Lock()
	ic.pending |= 1 << line
	ic.mu.Unlock()
	ic.cond.Signal()
}

// SetHandler installs (or, with nil, removes) the handler for a line.
func (ic *IntrController) SetHandler(line int, h IntrHandler) {
	ic.mu.Lock()
	ic.handlers[line] = h
	ic.mu.Unlock()
}

// SetMask masks (true) or unmasks (false) one line.  Pending interrupts on
// a masked line are held, not dropped.
func (ic *IntrController) SetMask(line int, masked bool) {
	ic.mu.Lock()
	if masked {
		ic.masked |= 1 << line
	} else {
		ic.masked &^= 1 << line
	}
	ic.mu.Unlock()
	ic.cond.Signal()
}

// Disable enters a critical section excluding interrupt handlers (cli).
// Sections nest within one thread of control; distinct threads exclude
// each other, matching per-CPU EFLAGS.IF plus the one-at-a-time
// process-level model of §4.7.4.
func (ic *IntrController) Disable() {
	id := goid()
	if ic.cliOwner.Load() == id {
		ic.cliNest++ // nested: only the owner touches cliNest
		return
	}
	ic.cliMu.Lock()
	ic.cliOwner.Store(id)
	ic.cliNest = 1
}

// DropAll releases the calling thread's *entire* Disable nesting,
// returning the depth for RestoreAll.  Donor sleep paths need this: BSD's
// tsleep and Linux's sleep_on drop to spl0/sti completely before
// blocking, no matter how deeply the caller's components have nested
// their exclusion — otherwise a file system sleeping inside a disk
// driver would hold interrupts off and deadlock against the completion
// handler.
func (ic *IntrController) DropAll() int {
	if ic.cliOwner.Load() == 0 {
		panic("hw: DropAll without Disable")
	}
	n := ic.cliNest
	ic.cliNest = 0
	ic.cliOwner.Store(0)
	ic.cliMu.Unlock()
	return n
}

// RestoreAll re-acquires the exclusion at the depth DropAll returned.
func (ic *IntrController) RestoreAll(n int) {
	if n <= 0 {
		panic("hw: RestoreAll of a non-positive depth")
	}
	ic.cliMu.Lock()
	ic.cliOwner.Store(goid())
	ic.cliNest = n
}

// Enable leaves the innermost Disable section (sti).  The owner check
// is depth-only (goid would cost microseconds per call on the hottest
// path in the kit); unbalanced Enable still panics via the zero owner.
func (ic *IntrController) Enable() {
	if ic.cliOwner.Load() == 0 {
		panic("hw: Enable without Disable")
	}
	ic.cliNest--
	if ic.cliNest == 0 {
		ic.cliOwner.Store(0)
		ic.cliMu.Unlock()
	}
}

// InIntr reports whether the caller might be running at interrupt level
// (true exactly while a handler is being dispatched).
func (ic *IntrController) InIntr() bool { return ic.inIntr.Load() }

// Count returns how many times a line's handler has been dispatched.
func (ic *IntrController) Count(line int) uint64 {
	ic.mu.Lock()
	defer ic.mu.Unlock()
	return ic.counts[line]
}

// stop terminates the dispatcher (machine halt) and waits for it to exit.
func (ic *IntrController) stop() {
	ic.mu.Lock()
	if ic.stopped {
		ic.mu.Unlock()
		return
	}
	ic.stopped = true
	ic.mu.Unlock()
	ic.cond.Signal()
	<-ic.done
}

// dispatch is the interrupt level: one handler at a time, lowest pending
// unmasked line first, each excluded against process-level cli sections.
func (ic *IntrController) dispatch() {
	defer close(ic.done)
	dispatcherID := goid() // hoisted: one goroutine serves all handlers
	for {
		ic.mu.Lock()
		for !ic.stopped && ic.pending&^ic.masked == 0 {
			ic.cond.Wait()
		}
		if ic.stopped {
			ic.mu.Unlock()
			return
		}
		ready := ic.pending &^ ic.masked
		line := lowestBit(ready)
		ic.pending &^= 1 << line
		h := ic.handlers[line]
		ic.counts[line]++
		ic.mu.Unlock()

		ic.cliMu.Lock()
		ic.cliOwner.Store(dispatcherID) // handlers may themselves nest Disable
		ic.cliNest = 1
		ic.inIntr.Store(true)
		if h != nil {
			h(line)
		}
		ic.inIntr.Store(false)
		ic.cliNest = 0
		ic.cliOwner.Store(0)
		ic.cliMu.Unlock()
	}
}

// goid extracts the current goroutine's id from the runtime stack header
// ("goroutine N [running]: …").  It is the simulator's stand-in for
// per-CPU identity; the first line of runtime.Stack output is stable
// across Go releases.
func goid() uint64 {
	var buf [32]byte
	n := runtimeStack(buf[:])
	// Skip "goroutine ".
	var id uint64
	for i := 10; i < n; i++ {
		c := buf[i]
		if c < '0' || c > '9' {
			break
		}
		id = id*10 + uint64(c-'0')
	}
	return id
}

func lowestBit(v uint32) int {
	for i := 0; i < 32; i++ {
		if v&(1<<i) != 0 {
			return i
		}
	}
	return -1
}
