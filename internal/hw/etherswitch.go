package hw

import "sync"

// EtherSwitch is a learning Ethernet switch: the N-node fabric the
// cluster rig scales the paper's two-PC testbed onto.  Each port is a
// point-to-point segment for one NIC; the switch floods frames with
// unknown or broadcast destinations to every other port, learns source
// stations as traffic arrives, and thereafter forwards unicast frames
// to the learned port alone.
//
// Forwarding is store-and-forward with a bounded per-port egress queue:
// a frame for a port whose queue is full is dropped and counted
// (backpressure), like an output-buffered switch under congestion.
// Delivery happens on the thread of whichever sender first finds the
// port idle; concurrent senders enqueue behind it, so per-port frame
// order is FIFO regardless of contention.
//
// A WireFaultHook may be installed exactly as on an EtherWire, so the
// chaos regimes built for the two-node rig apply unchanged to switched
// clusters.
type EtherSwitch struct {
	mu    sync.Mutex
	ports []*SwitchPort           //oskit:guardedby mu
	macs  map[[6]byte]*SwitchPort //oskit:guardedby mu
	hook  WireFaultHook           //oskit:guardedby mu
	// hookMu serializes fault-hook invocations without holding sw.mu,
	// for the same reason EtherWire keeps the two apart: a hook that
	// reads switch state must not deadlock against concurrent senders.
	hookMu sync.Mutex
	held   *switchHeld //oskit:guardedby hookMu  frame held back by a Reorder verdict

	queueLen int //oskit:initonly  per-port egress queue bound

	txFrames   uint64 //oskit:guardedby mu  frames offered by attached NICs
	forwarded  uint64 //oskit:guardedby mu  unicast frames sent to the learned port
	flooded    uint64 //oskit:guardedby mu  frames flooded (broadcast or unknown station)
	filtered   uint64 //oskit:guardedby mu  unicast frames whose station sits on the ingress port
	drops      uint64 //oskit:guardedby mu  egress-queue overflows (backpressure)
	faultDrops uint64 //oskit:guardedby mu  frames dropped by the fault hook
	learned    uint64 //oskit:guardedby mu  MAC table inserts and moves
}

// switchHeld is a frame stashed by a Reorder verdict, remembering its
// ingress port so the late delivery re-runs the forwarding decision.
type switchHeld struct {
	in    *SwitchPort
	frame []byte
}

// SwitchPort is one switch port; it implements Segment for exactly one
// NIC.
type SwitchPort struct {
	sw  *EtherSwitch
	idx int

	nic      *NIC     // guarded by sw.mu
	q        [][]byte // bounded egress queue, guarded by sw.mu
	draining bool     // a sender's thread is emptying q

	egress uint64 // frames delivered out this port, guarded by sw.mu
}

// DefaultSwitchQueueLen bounds each port's egress queue: deep enough
// that transient fan-in bursts survive, shallow enough that a stalled
// receiver exerts backpressure instead of consuming unbounded memory.
const DefaultSwitchQueueLen = 64

// NewEtherSwitch creates a switch with no ports and an empty MAC table.
func NewEtherSwitch() *EtherSwitch {
	return &EtherSwitch{
		macs:     map[[6]byte]*SwitchPort{},
		queueLen: DefaultSwitchQueueLen,
	}
}

// SetPortQueueLen changes the per-port egress bound (tests exercise
// backpressure with a shallow queue).  Applies to frames enqueued after
// the call.
func (sw *EtherSwitch) SetPortQueueLen(n int) {
	if n < 1 {
		n = 1
	}
	sw.mu.Lock()
	sw.queueLen = n
	sw.mu.Unlock()
}

// NewPort adds one port.  Attach the port to a machine's NIC via
// Machine.AttachNIC, which calls Attach.
func (sw *EtherSwitch) NewPort() *SwitchPort {
	sw.mu.Lock()
	p := &SwitchPort{sw: sw, idx: len(sw.ports)}
	sw.ports = append(sw.ports, p)
	sw.mu.Unlock()
	return p
}

// Ports reports how many ports the switch has.
func (sw *EtherSwitch) Ports() int {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return len(sw.ports)
}

// SetFaultHook installs (or, with nil, removes) the frame fault hook —
// the same contract as EtherWire.SetFaultHook, called once per offered
// frame in ingress order.
func (sw *EtherSwitch) SetFaultHook(h WireFaultHook) {
	sw.mu.Lock()
	sw.hook = h
	sw.mu.Unlock()
	// The held-back frame belongs to hookMu, not mu: clearing it under
	// mu alone would race a concurrent forward holding hookMu.
	sw.hookMu.Lock()
	sw.held = nil
	sw.hookMu.Unlock()
}

// SwitchStats is the switch's forwarding ledger.
type SwitchStats struct {
	TxFrames   uint64 // frames offered by attached NICs
	Forwarded  uint64 // unicast frames sent to the learned port
	Flooded    uint64 // frames flooded (broadcast or unknown station)
	Filtered   uint64 // unicast frames filtered at the ingress port
	Drops      uint64 // egress-queue overflows (backpressure)
	FaultDrops uint64 // frames dropped by the fault hook
	Learned    uint64 // MAC table inserts and moves
	Stations   int    // MAC table size
}

// Stats reports the forwarding ledger.
func (sw *EtherSwitch) Stats() SwitchStats {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return SwitchStats{
		TxFrames:   sw.txFrames,
		Forwarded:  sw.forwarded,
		Flooded:    sw.flooded,
		Filtered:   sw.filtered,
		Drops:      sw.drops,
		FaultDrops: sw.faultDrops,
		Learned:    sw.learned,
		Stations:   len(sw.macs),
	}
}

// PortOf reports which port a station was learned on, or -1.
func (sw *EtherSwitch) PortOf(mac [6]byte) int {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	if p, ok := sw.macs[mac]; ok {
		return p.idx
	}
	return -1
}

// Attach implements Segment: binds the port's single NIC.
func (p *SwitchPort) Attach(n *NIC) {
	p.sw.mu.Lock()
	if p.nic != nil {
		p.sw.mu.Unlock()
		panic("hw: switch port already has a NIC")
	}
	p.nic = n
	p.sw.mu.Unlock()
	n.mu.Lock()
	n.wire = p
	n.mu.Unlock()
}

// Index returns the port's number on its switch.
func (p *SwitchPort) Index() int { return p.idx }

// Egress reports how many frames were delivered out this port.
func (p *SwitchPort) Egress() uint64 {
	p.sw.mu.Lock()
	defer p.sw.mu.Unlock()
	return p.egress
}

// transmitGather implements Segment: one frame arrives at the ingress
// port.  The switch flattens it (store-and-forward), consults the fault
// hook, learns the source station, and forwards.
func (p *SwitchPort) transmitGather(src *NIC, parts [][]byte) {
	sw := p.sw
	total := 0
	for _, part := range parts {
		total += len(part)
	}
	if total < EtherHdrLen || len(parts[0]) < 6 {
		return
	}
	sw.mu.Lock()
	sw.txFrames++
	hook := sw.hook
	sw.mu.Unlock()

	var fault WireFault
	if hook != nil {
		sw.hookMu.Lock()
		//oskit:allow lockhook -- hookMu exists only to serialize this call; nothing else takes it, so no callback can deadlock on it
		fault = hook(total)
		sw.hookMu.Unlock()
	}
	if fault.Drop {
		sw.mu.Lock()
		sw.faultDrops++
		sw.mu.Unlock()
		return
	}
	frame := flatten(parts, total)
	if fault.Corrupt {
		// Corrupt the payload, not the station addresses: a flipped MAC
		// byte is a filtered frame, which Drop already models — and it
		// would also poison the MAC table.
		off := fault.CorruptOff
		if off < 0 {
			off = -off
		}
		if total > EtherHdrLen {
			off = EtherHdrLen + off%(total-EtherHdrLen)
		} else {
			off %= total
		}
		frame[off] ^= 0xff
	}

	sw.mu.Lock()
	held := sw.held
	sw.held = nil
	if fault.Reorder && held == nil {
		// Hold this frame back; the next ingress flushes it after
		// itself, swapping the pair in fabric order.
		sw.held = &switchHeld{in: p, frame: frame}
		sw.mu.Unlock()
		return
	}
	sw.mu.Unlock()

	sw.switchFrame(p, frame)
	if fault.Duplicate {
		sw.switchFrame(p, append([]byte(nil), frame...))
	}
	if held != nil {
		sw.switchFrame(held.in, held.frame)
	}
}

// switchFrame makes the forwarding decision for one flattened frame and
// enqueues it on the chosen egress ports.  The switch owns frame.
func (sw *EtherSwitch) switchFrame(in *SwitchPort, frame []byte) {
	var dst, src [6]byte
	copy(dst[:], frame[0:6])
	copy(src[:], frame[6:12])

	sw.mu.Lock()
	// Learn (or move) the source station to the ingress port.  The
	// broadcast address is never a valid source; don't let a corrupt
	// frame teach it.
	if src != BroadcastMAC {
		if prev, ok := sw.macs[src]; !ok || prev != in {
			sw.macs[src] = in
			sw.learned++
		}
	}
	var egress []*SwitchPort
	if dst == BroadcastMAC {
		egress = sw.floodListLocked(in)
		sw.flooded++
	} else if out, ok := sw.macs[dst]; ok {
		if out == in {
			// The station sits behind the ingress port: filter, the way
			// a real switch suppresses same-segment traffic.
			sw.filtered++
			sw.mu.Unlock()
			return
		}
		egress = []*SwitchPort{out}
		sw.forwarded++
	} else {
		egress = sw.floodListLocked(in)
		sw.flooded++
	}

	var drain []*SwitchPort
	for i, out := range egress {
		if out.nic == nil {
			continue // unpopulated port: frame falls on the floor
		}
		if len(out.q) >= sw.queueLen {
			sw.drops++ // backpressure: egress queue full
			continue
		}
		f := frame
		if i > 0 {
			// Each NIC ring takes ownership of its slice; flooding
			// needs per-port copies beyond the first.
			f = append([]byte(nil), frame...)
		}
		out.q = append(out.q, f)
		out.egress++
		if !out.draining {
			out.draining = true
			drain = append(drain, out)
		}
	}
	sw.mu.Unlock()

	for _, out := range drain {
		out.drain()
	}
}

// floodListLocked returns every port but the ingress, in port order
// (deterministic: ports, not the MAC map, drive iteration).
func (sw *EtherSwitch) floodListLocked(in *SwitchPort) []*SwitchPort {
	out := make([]*SwitchPort, 0, len(sw.ports)-1)
	for _, p := range sw.ports {
		if p != in {
			out = append(out, p)
		}
	}
	return out
}

// drain empties the port's egress queue, delivering into the attached
// NIC's receive ring outside the switch lock.  Exactly one thread
// drains a port at a time (the draining flag); frames enqueued while it
// runs are picked up before it exits.
func (p *SwitchPort) drain() {
	sw := p.sw
	for {
		sw.mu.Lock()
		if len(p.q) == 0 {
			p.draining = false
			sw.mu.Unlock()
			return
		}
		f := p.q[0]
		p.q = p.q[1:]
		nic := p.nic
		sw.mu.Unlock()
		if nic != nil {
			var dst [6]byte
			copy(dst[:], f[0:6])
			if nic.accepts(dst) {
				nic.deliver(f)
			}
		}
	}
}

var _ Segment = (*SwitchPort)(nil)
