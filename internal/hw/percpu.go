package hw

import "sync/atomic"

// Per-CPU identity for allocator front caches (E16).
//
// Two flavours, because exactness and speed pull apart in this simulator:
//
//   - CurCPU is exact for interrupt dispatcher goroutines — it rides the
//     same GoID-keyed dispIDs affinity map that InIntr uses — and falls
//     back to a stable GoID hash for process-level goroutines.  It costs
//     a runtime.Stack parse (microseconds), so it is for registration,
//     drain verification, and tests, never for per-operation paths.
//
//   - CPUHint is the per-operation shard key the magazine caches use.  A
//     goroutine id is too expensive to fetch per allocation (measured
//     ~2.4 µs on the reference host, ~170× an uncontended mutex), and Go
//     offers no cheaper goroutine-local storage, so the hint is a batched
//     round-robin: one atomic add, with HintBatch consecutive operations
//     landing on the same CPU slot before advancing.  That spreads load
//     across every slot while keeping short alloc/free bursts CPU-local.
//     The hint only steers locality — every magazine slot is locked, so a
//     "wrong" CPU costs a trip to a different slot, never correctness.

// HintBatch is the number of consecutive CPUHint calls that share a slot
// before the hint advances to the next CPU.
const HintBatch = 64

// hintShift is log2(HintBatch).
const hintShift = 6

var hintClock atomic.Uint64

// CurCPU reports the CPU the calling goroutine is identified with: the
// owning dispatch context for interrupt dispatcher goroutines, otherwise
// a stable hash of the goroutine id across the machine's CPUs.  It is
// exact where it matters (handlers run on their affinity CPU) and stable
// everywhere, but costs a goroutine-id fetch — keep it off hot paths.
func (ic *IntrController) CurCPU() int {
	n := len(ic.cpus)
	if n <= 1 {
		return 0
	}
	id := goid()
	if v, ok := ic.dispIDs.Load(id); ok {
		return v.(*cpuCtx).index
	}
	return int(mixGoID(id) % uint64(n))
}

// CPUHint returns a cheap per-operation CPU slot in [0, NumCPUs).  See
// the package comment above: batched round-robin, locality-only.
func (ic *IntrController) CPUHint() int {
	n := len(ic.cpus)
	if n <= 1 {
		return 0
	}
	return int((hintClock.Add(1) >> hintShift) % uint64(n))
}

// mixGoID is a splitmix64-style finalizer so consecutive goroutine ids
// spread across CPUs instead of clustering on neighbouring slots.
func mixGoID(id uint64) uint64 {
	id ^= id >> 33
	id *= 0xff51afd7ed558ccd
	id ^= id >> 33
	id *= 0xc4ceb9fe1a85ec53
	id ^= id >> 33
	return id
}
