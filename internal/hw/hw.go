// Package hw is the simulated PC platform the kit runs on.
//
// The paper's OSKit ran on real x86 PCs; a Go runtime cannot (repro note in
// DESIGN.md §2), so this package substitutes a software machine that
// preserves the properties the paper's components depend on:
//
//   - A flat physical memory where addresses are integers and device DMA is
//     restricted to the low 16 MB (driving the LMM's "memory types").
//   - Asynchronous devices (NICs, disks, serial ports, a timer) that raise
//     interrupts from their own threads of control.
//   - The two-level execution model of §4.7.4: process level runs normally
//     and may block; interrupt level is entered one handler at a time, runs
//     to completion, never blocks, and is excluded by Disable/Enable
//     (cli/sti) critical sections at process level.
//
// Everything above this package — kernel support, drivers, protocol stacks,
// file systems — is written exactly as it would be against real hardware.
package hw

import "fmt"

// Config selects the shape of a simulated machine.
type Config struct {
	// Name labels the machine in logs ("sender", "receiver").
	Name string
	// MemBytes is the physical memory size; 0 means 32 MB.
	MemBytes uint32
	// CPUs is the number of logical CPUs (interrupt dispatch contexts);
	// 0 or 1 means the classic uniprocessor machine.
	CPUs int
}

// Machine is one simulated PC: memory, an interrupt controller, a device
// bus, a timer, and two serial ports.
type Machine struct {
	Name string
	Mem  *PhysMem
	Intr *IntrController
	Bus  *Bus
	// Timer raises IRQ 0.
	Timer *Timer
	// Com1 and Com2 raise IRQ 4 and IRQ 3 respectively.
	Com1, Com2 *SerialPort

	nextNIC  int
	nextDisk int
}

// CPUs reports the number of logical CPUs the machine was powered on with.
func (m *Machine) CPUs() int { return m.Intr.NumCPUs() }

// Standard IRQ line assignments (PC-style).
const (
	IRQTimer = 0
	IRQCom2  = 3
	IRQCom1  = 4
	IRQNIC0  = 9
	IRQNIC1  = 10
	IRQDisk0 = 14
	IRQDisk1 = 15
)

// NewMachine powers on a machine: memory is zeroed, the interrupt
// controller's dispatcher is running with every line masked, devices are
// idle.
func NewMachine(cfg Config) *Machine {
	if cfg.MemBytes == 0 {
		cfg.MemBytes = 32 << 20
	}
	if cfg.CPUs < 1 {
		cfg.CPUs = 1
	}
	m := &Machine{
		Name: cfg.Name,
		Mem:  NewPhysMem(cfg.MemBytes),
		Intr: NewIntrControllerCPUs(cfg.CPUs),
		Bus:  &Bus{},
	}
	m.Timer = NewTimer(m.Intr, IRQTimer)
	m.Com1 = NewSerialPort(m.Intr, IRQCom1)
	m.Com2 = NewSerialPort(m.Intr, IRQCom2)
	m.Bus.Add(BusDevice{Name: "com1", Vendor: VendorMisc, Device: DevSerial, IRQ: IRQCom1, HW: m.Com1})
	m.Bus.Add(BusDevice{Name: "com2", Vendor: VendorMisc, Device: DevSerial, IRQ: IRQCom2, HW: m.Com2})
	return m
}

// AttachNIC creates a NIC on the given segment — a shared EtherWire or
// one EtherSwitch port — and registers it on the bus.  model selects the
// (vendor, device) ID pair drivers probe for.
func (m *Machine) AttachNIC(wire Segment, mac [6]byte, model NICModel) *NIC {
	irq := IRQNIC0 + m.nextNIC
	if m.nextNIC >= 2 {
		panic("hw: too many NICs")
	}
	n := NewNIC(m.Intr, irq, mac)
	wire.Attach(n)
	name := fmt.Sprintf("nic%d", m.nextNIC)
	m.nextNIC++
	m.Bus.Add(BusDevice{Name: name, Vendor: model.Vendor, Device: model.Device, IRQ: irq, HW: n})
	return n
}

// AttachDisk registers a disk on the bus.
func (m *Machine) AttachDisk(d *Disk) *Disk {
	irq := IRQDisk0 + m.nextDisk
	if m.nextDisk >= 2 {
		panic("hw: too many disks")
	}
	d.connect(m.Intr, irq)
	name := fmt.Sprintf("hd%d", m.nextDisk)
	m.nextDisk++
	m.Bus.Add(BusDevice{Name: name, Vendor: VendorMisc, Device: DevIDE, IRQ: irq, HW: d})
	return d
}

// Halt powers the machine off: the timer stops and the interrupt
// dispatcher exits.  Matching the paper's §6.2.10 deficiency, no device
// cleanup is performed — an OSKit application that "exits" just reboots.
func (m *Machine) Halt() {
	m.Timer.Stop()
	for _, d := range m.Bus.Devices() {
		if disk, ok := d.HW.(*Disk); ok {
			disk.stop()
		}
	}
	m.Intr.stop()
}

// Device ID constants used by the simulated bus.
const (
	VendorRealtek = 0x10ec // "sne2k" NIC model
	Vendor3Com    = 0x10b7 // "s3c59x" NIC model
	VendorMisc    = 0x1af4

	DevNE2K   = 0x8029
	Dev3C59X  = 0x5950
	DevSerial = 0x0003
	DevIDE    = 0x0010
)

// NICModel identifies which simulated NIC silicon a machine carries, hence
// which donor driver will claim it at probe time.
type NICModel struct {
	Vendor, Device uint16
}

// The two NIC models the donor Linux drivers support.
var (
	ModelNE2K  = NICModel{VendorRealtek, DevNE2K}
	Model3C59X = NICModel{Vendor3Com, Dev3C59X}
)
