package hw

import (
	"encoding/binary"
	"testing"
)

// rssFrame builds a minimal Ethernet+IPv4+TCP/UDP frame for hash tests.
func rssFrame(proto byte, src, dst uint32, sport, dport uint16, fragField uint16, payload int) []byte {
	f := make([]byte, EtherHdrLen+20+4+payload)
	binary.BigEndian.PutUint16(f[12:14], rssEtherTypeIPv4)
	ip := f[EtherHdrLen:]
	ip[0] = 0x45
	ip[9] = proto
	binary.BigEndian.PutUint16(ip[6:8], fragField)
	binary.BigEndian.PutUint32(ip[12:16], src)
	binary.BigEndian.PutUint32(ip[16:20], dst)
	binary.BigEndian.PutUint16(ip[20:22], sport)
	binary.BigEndian.PutUint16(ip[22:24], dport)
	return f
}

// TestRSSFlowAffinity is the RSS correctness property: every segment of
// one flow lands on the same ring, for every ring count 1–8 — no
// intra-flow reordering regardless of queue configuration.
func TestRSSFlowAffinity(t *testing.T) {
	// A deterministic LCG generates flows; each flow emits segments of
	// varying payload sizes (the hash must not read past the 4-tuple).
	seed := uint64(0x9e3779b97f4a7c15)
	next := func() uint64 { seed = seed*6364136223846793005 + 1442695040888963407; return seed }
	for nrings := 1; nrings <= 8; nrings++ {
		for flow := 0; flow < 200; flow++ {
			proto := byte(rssProtoTCP)
			if next()%2 == 0 {
				proto = rssProtoUDP
			}
			src, dst := uint32(next()), uint32(next())
			sport, dport := uint16(next()), uint16(next())
			want := -1
			for _, payload := range []int{0, 1, 536, 1460} {
				f := rssFrame(proto, src, dst, sport, dport, 0, payload)
				ring := RSSRing(f, nrings)
				if ring < 0 || ring >= nrings {
					t.Fatalf("ring %d out of range [0,%d)", ring, nrings)
				}
				if want == -1 {
					want = ring
				} else if ring != want {
					t.Fatalf("nrings=%d flow %d: segment (payload %d) on ring %d, first on %d",
						nrings, flow, payload, ring, want)
				}
			}
		}
	}
}

// TestRSSFragmentsFollowFirst: once a datagram is fragmented, later
// fragments carry no ports — every fragment (including the first, whose
// MF bit is set) must hash by addresses only, to one common ring.
func TestRSSFragmentsFollowFirst(t *testing.T) {
	src, dst := uint32(0x0a020001), uint32(0x0a020002)
	first := rssFrame(rssProtoUDP, src, dst, 7777, 9999, 0x2000, 64)     // MF set, offset 0
	mid := rssFrame(rssProtoUDP, src, dst, 0xdead, 0xbeef, 0x2005, 64)   // MF set, offset 5 (garbage "ports")
	last := rssFrame(rssProtoUDP, src, dst, 0x1234, 0x5678, 0x000a, 64)  // offset 10
	for nrings := 2; nrings <= 8; nrings++ {
		r0 := RSSRing(first, nrings)
		if RSSRing(mid, nrings) != r0 || RSSRing(last, nrings) != r0 {
			t.Fatalf("nrings=%d: fragments split across rings %d/%d/%d",
				nrings, r0, RSSRing(mid, nrings), RSSRing(last, nrings))
		}
	}
}

// TestRSSNonIPToRingZero: ARP, runts, and truncated IP all classify to
// ring 0 (where the legacy line and CPU 0 live).
func TestRSSNonIPToRingZero(t *testing.T) {
	arp := make([]byte, 60)
	binary.BigEndian.PutUint16(arp[12:14], 0x0806)
	cases := [][]byte{
		nil,
		make([]byte, 5),
		make([]byte, EtherHdrLen),
		arp,
		rssFrame(rssProtoTCP, 1, 2, 3, 4, 0, 0)[:EtherHdrLen+19], // truncated IP header
	}
	for i, f := range cases {
		if r := RSSRing(f, 8); r != 0 {
			t.Fatalf("case %d: ring %d, want 0", i, r)
		}
	}
}

// TestRSSSpreads: distinct flows actually land on distinct rings (the
// hash is not degenerate).
func TestRSSSpreads(t *testing.T) {
	used := map[int]bool{}
	for p := uint16(1); p <= 64; p++ {
		f := rssFrame(rssProtoTCP, 0x0a020001, 0x0a020002, 1000+p, 5001, 0, 0)
		used[RSSRing(f, 4)] = true
	}
	if len(used) < 3 {
		t.Fatalf("64 flows hit only %d of 4 rings", len(used))
	}
}

// FuzzRSSHash: arbitrary bytes must never panic the classifier and must
// always map into range.
func FuzzRSSHash(f *testing.F) {
	f.Add([]byte{})
	f.Add(make([]byte, EtherHdrLen))
	f.Add(rssFrame(rssProtoTCP, 1, 2, 3, 4, 0, 32))
	f.Add(rssFrame(rssProtoUDP, 5, 6, 7, 8, 0x2000, 8))
	f.Add(rssFrame(rssProtoTCP, 1, 2, 3, 4, 0, 0)[:EtherHdrLen+21]) // truncated transport
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0x08, 0x00, 0x4f}) // IHL=15, short
	f.Fuzz(func(t *testing.T, frame []byte) {
		h1 := RSSHash(frame)
		h2 := RSSHash(frame)
		if h1 != h2 {
			t.Fatalf("hash not deterministic: %#x vs %#x", h1, h2)
		}
		for nrings := 1; nrings <= 8; nrings++ {
			if r := RSSRing(frame, nrings); r < 0 || r >= nrings {
				t.Fatalf("ring %d out of range [0,%d)", r, nrings)
			}
		}
	})
}
