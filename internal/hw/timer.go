package hw

import (
	"sync"
	"time"
)

// Timer is the machine's programmable interval timer.  It can free-run off
// the host clock (Start) for benchmarks and interactive kernels, or be
// advanced by hand (Tick) for deterministic tests.
type Timer struct {
	ic   *IntrController
	line int

	mu     sync.Mutex
	ticker *time.Ticker
	quit   chan struct{}
	wg     sync.WaitGroup
}

// NewTimer wires a timer to an interrupt line; it is stopped initially.
func NewTimer(ic *IntrController, line int) *Timer {
	return &Timer{ic: ic, line: line}
}

// Start free-runs the timer at the given interval (the simulated PC's
// clock tick; the paper's platform used 10 ms granularity).
func (t *Timer) Start(interval time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.ticker != nil {
		return
	}
	t.ticker = time.NewTicker(interval)
	t.quit = make(chan struct{})
	t.wg.Add(1)
	go func(ticker *time.Ticker, quit chan struct{}) {
		defer t.wg.Done()
		for {
			select {
			case <-ticker.C:
				t.ic.Raise(t.line)
			case <-quit:
				return
			}
		}
	}(t.ticker, t.quit)
}

// Tick raises one timer interrupt by hand.
func (t *Timer) Tick() { t.ic.Raise(t.line) }

// Stop halts a free-running timer; a stopped timer may be restarted.
func (t *Timer) Stop() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.ticker == nil {
		return
	}
	t.ticker.Stop()
	close(t.quit)
	t.wg.Wait()
	t.ticker = nil
}
