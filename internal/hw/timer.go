package hw

import (
	"sync"
	"time"
)

// Timer is the machine's programmable interval timer.  It can free-run off
// the host clock (Start) for benchmarks and interactive kernels, or be
// advanced by hand (Tick) for deterministic tests.
type Timer struct {
	ic   *IntrController
	line int

	mu     sync.Mutex
	ticker *time.Ticker  //oskit:guardedby mu
	quit   chan struct{} //oskit:guardedby mu
	wg     sync.WaitGroup
	hook   TickFaultHook //oskit:guardedby mu
	ticks  uint64        //oskit:guardedby mu
}

// TickFaultHook injects clock jitter: called with the tick's sequence
// number before its interrupt is raised; returning true suppresses the
// tick (a lost clock interrupt, the classic PC timer-jitter failure).
type TickFaultHook func(tick uint64) bool

// NewTimer wires a timer to an interrupt line; it is stopped initially.
func NewTimer(ic *IntrController, line int) *Timer {
	return &Timer{ic: ic, line: line}
}

// Start free-runs the timer at the given interval (the simulated PC's
// clock tick; the paper's platform used 10 ms granularity).
func (t *Timer) Start(interval time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.ticker != nil {
		return
	}
	//oskit:allow detsource -- the timer IS the designated wall-clock boundary; deterministic runs drive ticks manually
	t.ticker = time.NewTicker(interval)
	t.quit = make(chan struct{})
	t.wg.Add(1)
	go func(ticker *time.Ticker, quit chan struct{}) {
		defer t.wg.Done()
		for {
			select {
			case <-ticker.C:
				t.mu.Lock()
				t.ticks++
				n, hook := t.ticks, t.hook
				t.mu.Unlock()
				if hook != nil && hook(n) {
					continue // injected jitter: this tick is lost
				}
				t.ic.Raise(t.line)
			case <-quit:
				return
			}
		}
	}(t.ticker, t.quit)
}

// SetFaultHook installs (or, with nil, removes) the tick fault hook.
// Safe to toggle while the timer runs.
func (t *Timer) SetFaultHook(h TickFaultHook) {
	t.mu.Lock()
	t.hook = h
	t.mu.Unlock()
}

// Tick raises one timer interrupt by hand.
func (t *Timer) Tick() { t.ic.Raise(t.line) }

// Stop halts a free-running timer; a stopped timer may be restarted.
func (t *Timer) Stop() {
	t.mu.Lock()
	if t.ticker == nil {
		t.mu.Unlock()
		return
	}
	ticker, quit := t.ticker, t.quit
	t.ticker = nil
	// Release the lock before waiting: the tick goroutine takes it to
	// read the fault hook, so holding it across Wait would deadlock.
	t.mu.Unlock()
	ticker.Stop()
	close(quit)
	t.wg.Wait()
}
