package hw

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"
)

// Regression tests for the hardware fault plane: the hooks the
// injector (internal/faults) drives, and the completion guarantees the
// chaos harness leans on.

var errMedia = errors.New("test: injected media error")

// Every request submitted to a live disk completes — transfer done,
// media error, or ErrDiskStopped — even when power-off catches it
// queued or in flight.  Nothing is ever silently dropped.
func TestDiskStopDrainsInFlight(t *testing.T) {
	m := NewMachine(Config{Name: "t", MemBytes: 1 << 20})
	d := m.AttachDisk(NewDisk(64))
	d.SetLatency(2 * time.Millisecond)

	const n = 8
	reqs := make([]*DiskReq, n)
	for i := range reqs {
		reqs[i] = &DiskReq{Write: true, Sector: uint32(i), Count: 1, Buf: make([]byte, SectorSize)}
		d.Submit(reqs[i])
	}
	m.Halt() // races power-off against the queue on purpose

	for i, r := range reqs {
		if !r.Done {
			t.Fatalf("request %d vanished: not Done after halt", i)
		}
		if r.Err != nil && r.Err != ErrDiskStopped {
			t.Fatalf("request %d: unexpected error %v", i, r.Err)
		}
	}
	// Every completion is also reapable.
	reaped := 0
	for d.Reap() != nil {
		reaped++
	}
	if reaped != n {
		t.Fatalf("reaped %d of %d completions", reaped, n)
	}

	// Submission after power-off completes immediately, same contract.
	late := &DiskReq{Sector: 0, Count: 1, Buf: make([]byte, SectorSize)}
	d.Submit(late)
	if !late.Done || late.Err != ErrDiskStopped {
		t.Fatalf("post-halt submit: Done=%v Err=%v", late.Done, late.Err)
	}
	if got := d.Reap(); got != late {
		t.Fatalf("post-halt completion not reapable: %v", got)
	}

	// A powered-off disk must not be wired into a new machine.
	defer func() {
		if recover() == nil {
			t.Fatal("attaching a stopped disk did not panic")
		}
	}()
	NewMachine(Config{Name: "t2", MemBytes: 1 << 20}).AttachDisk(d)
}

// The disk fault hook fails requests and tears writes: a torn write
// puts exactly the hook's prefix on the platter and fails the request.
func TestDiskFaultHookTornWrite(t *testing.T) {
	m := NewMachine(Config{Name: "t", MemBytes: 1 << 20})
	defer m.Halt()
	d := m.AttachDisk(NewDisk(64))
	completions := make(chan struct{}, 8)
	m.Intr.SetHandler(d.IRQ(), func(int) { completions <- struct{}{} })
	m.Intr.SetMask(d.IRQ(), false)

	d.SetFaultHook(func(write bool, sector, count uint32) DiskFault {
		if write {
			return DiskFault{Err: errMedia, TornSectors: 1}
		}
		return DiskFault{}
	})

	wbuf := make([]byte, 3*SectorSize)
	for i := range wbuf {
		wbuf[i] = byte(i%251 + 1)
	}
	w := &DiskReq{Write: true, Sector: 8, Count: 3, Buf: wbuf}
	d.Submit(w)
	<-completions
	if got := d.Reap(); got != w || got.Err != errMedia {
		t.Fatalf("torn write completion: %+v", got)
	}

	// Reads are not faulted by this hook; read back and check the tear:
	// first sector on the platter, the rest untouched (zero).
	rbuf := make([]byte, 3*SectorSize)
	r := &DiskReq{Sector: 8, Count: 3, Buf: rbuf}
	d.Submit(r)
	<-completions
	if got := d.Reap(); got != r || got.Err != nil {
		t.Fatalf("read completion: %+v", got)
	}
	if !bytes.Equal(rbuf[:SectorSize], wbuf[:SectorSize]) {
		t.Error("torn write lost its prefix sector")
	}
	if !bytes.Equal(rbuf[SectorSize:], make([]byte, 2*SectorSize)) {
		t.Error("torn write leaked past its prefix")
	}

	// Hook removed: the same write goes through whole.
	d.SetFaultHook(nil)
	d.Submit(w)
	<-completions
	if got := d.Reap(); got.Err != nil {
		t.Fatalf("write after hook removal: %v", got.Err)
	}
}

func twoNICs(t *testing.T) (*EtherWire, *NIC, *NIC, [6]byte, [6]byte) {
	t.Helper()
	wire := NewEtherWire()
	icA, icB := NewIntrController(), NewIntrController()
	t.Cleanup(icA.stop)
	t.Cleanup(icB.stop)
	macA := [6]byte{2, 0, 0, 0, 0, 1}
	macB := [6]byte{2, 0, 0, 0, 0, 2}
	a := NewNIC(icA, IRQNIC0, macA)
	b := NewNIC(icB, IRQNIC0, macB)
	wire.Attach(a)
	wire.Attach(b)
	return wire, a, b, macA, macB
}

// Corrupt flips exactly one byte, never in the Ethernet header;
// Duplicate delivers twice; Reorder swaps adjacent frames.
func TestWireFaultVerdicts(t *testing.T) {
	wire, a, b, macA, macB := twoNICs(t)

	wire.SetFaultHook(func(frameLen int) WireFault {
		return WireFault{Corrupt: true, CorruptOff: 0}
	})
	orig := frame(macB, macA, "payload-under-test")
	a.Transmit(orig)
	got := b.RxPop()
	if got == nil {
		t.Fatal("corrupted frame not delivered")
	}
	if !bytes.Equal(got[:EtherHdrLen], orig[:EtherHdrLen]) {
		t.Error("corruption touched the Ethernet header")
	}
	diff := 0
	for i := EtherHdrLen; i < len(orig); i++ {
		if got[i] != orig[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Errorf("corruption flipped %d payload bytes, want 1", diff)
	}

	wire.SetFaultHook(func(frameLen int) WireFault {
		return WireFault{Duplicate: true}
	})
	a.Transmit(frame(macB, macA, "twice"))
	for copies := 0; copies < 2; copies++ {
		if f := b.RxPop(); f == nil || string(f[EtherHdrLen:]) != "twice" {
			t.Fatalf("duplicate delivery %d: %q", copies, f)
		}
	}
	if b.RxPop() != nil {
		t.Fatal("duplicate delivered more than twice")
	}

	reorderFirst := true
	wire.SetFaultHook(func(frameLen int) WireFault {
		f := WireFault{Reorder: reorderFirst}
		reorderFirst = false
		return f
	})
	a.Transmit(frame(macB, macA, "first"))
	if b.RxPop() != nil {
		t.Fatal("reordered frame delivered immediately")
	}
	a.Transmit(frame(macB, macA, "second"))
	if f := b.RxPop(); f == nil || string(f[EtherHdrLen:]) != "second" {
		t.Fatalf("want second frame first, got %q", f)
	}
	if f := b.RxPop(); f == nil || string(f[EtherHdrLen:]) != "first" {
		t.Fatalf("held frame not flushed, got %q", f)
	}
}

// The NIC receive hook drops frames exactly like a ring overrun,
// charging the NIC's drop counter, and stops when removed.
func TestNICRxFaultHook(t *testing.T) {
	_, a, b, macA, macB := twoNICs(t)

	b.SetRxFaultHook(func() bool { return true })
	a.Transmit(frame(macB, macA, "overrun"))
	if b.RxPop() != nil {
		t.Fatal("frame delivered through a forced overrun")
	}
	if _, _, drops := b.Stats(); drops != 1 {
		t.Errorf("rxDrops = %d, want 1", drops)
	}

	b.SetRxFaultHook(nil)
	a.Transmit(frame(macB, macA, "through"))
	if f := b.RxPop(); f == nil || string(f[EtherHdrLen:]) != "through" {
		t.Fatalf("frame lost after hook removal: %q", f)
	}
}

// The timer fault hook suppresses exactly the ticks it claims: with
// every tick suppressed no interrupt fires, and removal restores them.
func TestTimerFaultHookSuppression(t *testing.T) {
	ic := NewIntrController()
	defer ic.stop()
	tm := NewTimer(ic, IRQTimer)
	fired := make(chan struct{}, 64)
	ic.SetHandler(IRQTimer, func(int) {
		select {
		case fired <- struct{}{}:
		default:
		}
	})
	ic.SetMask(IRQTimer, false)

	tm.SetFaultHook(func(tick uint64) bool { return true })
	tm.Start(time.Millisecond)
	defer tm.Stop()
	select {
	case <-fired:
		t.Fatal("interrupt fired with every tick suppressed")
	case <-time.After(20 * time.Millisecond):
	}

	tm.SetFaultHook(nil)
	select {
	case <-fired:
	case <-time.After(time.Second):
		t.Fatal("timer dead after hook removal")
	}
}

// All the fault knobs are safe to toggle mid-traffic: transmitters,
// SetLoss, SetFaultHook and SetRxFaultHook race here, and -race must
// stay quiet while every frame is still either delivered or counted.
func TestFaultKnobTogglingUnderTraffic(t *testing.T) {
	wire, a, b, macA, macB := twoNICs(t)

	const frames = 400
	var wg sync.WaitGroup
	wg.Add(4)
	go func() {
		defer wg.Done()
		f := frame(macB, macA, "traffic")
		for i := 0; i < frames; i++ {
			a.Transmit(f)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			wire.SetLoss(0.5, int64(i))
			wire.SetLoss(0, 0)
		}
	}()
	go func() {
		defer wg.Done()
		hook := func(frameLen int) WireFault { return WireFault{Duplicate: true} }
		for i := 0; i < 100; i++ {
			wire.SetFaultHook(hook)
			wire.SetFaultHook(nil)
		}
	}()
	go func() {
		defer wg.Done()
		hook := func() bool { return true }
		for i := 0; i < 100; i++ {
			b.SetRxFaultHook(hook)
			b.SetRxFaultHook(nil)
		}
	}()
	wg.Wait()

	// Conservation: every transmitted frame was delivered, dropped by
	// loss, dropped by the rx hook, or duplicated — the ring plus the
	// counters account for all of them.
	delivered := 0
	for b.RxPop() != nil {
		delivered++
	}
	tx, wireDrops := wire.Stats()
	rx, _, rxDrops := b.Stats()
	if tx != frames {
		t.Errorf("wire counted %d transmits, want %d", tx, frames)
	}
	if uint64(delivered) != rx {
		t.Errorf("ring had %d frames, NIC counted %d", delivered, rx)
	}
	if rx+wireDrops+rxDrops < frames {
		t.Errorf("frames unaccounted for: rx=%d wireDrops=%d rxDrops=%d < tx=%d",
			rx, wireDrops, rxDrops, frames)
	}
}
