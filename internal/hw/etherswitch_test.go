package hw

import (
	"sync"
	"testing"
)

// switchRig builds an n-port switch with one ic-less NIC per port
// (delivery is synchronous on the sender's thread, so tests can pop
// rings immediately; no interrupt dispatcher is needed).
func switchRig(n int) (*EtherSwitch, []*NIC) {
	sw := NewEtherSwitch()
	nics := make([]*NIC, n)
	for i := range nics {
		nics[i] = NewNIC(nil, IRQNIC0, [6]byte{2, 0, 0, 0, 0, byte(i + 1)})
		// Promiscuous: the tests observe what reaches each port, so the
		// NIC's own station filter must not eat flooded frames.
		nics[i].SetPromiscuous(true)
		sw.NewPort().Attach(nics[i])
	}
	return sw, nics
}

func drainRing(n *NIC) []string {
	var got []string
	for f := n.RxPop(); f != nil; f = n.RxPop() {
		got = append(got, string(f[EtherHdrLen:]))
	}
	return got
}

func TestSwitchLearningAndFlood(t *testing.T) {
	sw, nics := switchRig(3)
	a, b, c := nics[0], nics[1], nics[2]

	// First frame: destination unknown — flooded to both other ports,
	// and the source station is learned at the ingress port.
	a.Transmit(frame(b.Mac, a.Mac, "a->b"))
	if got := drainRing(b); len(got) != 1 || got[0] != "a->b" {
		t.Fatalf("b ring = %q", got)
	}
	if got := drainRing(c); len(got) != 1 {
		t.Fatalf("unknown destination not flooded to c: %q", got)
	}
	if p := sw.PortOf(a.Mac); p != 0 {
		t.Fatalf("a learned on port %d, want 0", p)
	}
	if p := sw.PortOf(b.Mac); p != -1 {
		t.Fatalf("b learned without transmitting (port %d)", p)
	}

	// B replies: B is learned, and the reply is forwarded to A's port
	// alone (A was learned above).
	b.Transmit(frame(a.Mac, b.Mac, "b->a"))
	if got := drainRing(a); len(got) != 1 || got[0] != "b->a" {
		t.Fatalf("a ring = %q", got)
	}
	if got := drainRing(c); got != nil {
		t.Fatalf("learned unicast flooded to c: %q", got)
	}

	// Now A→B is unicast-forwarded, not flooded.
	a.Transmit(frame(b.Mac, a.Mac, "a->b again"))
	if got := drainRing(b); len(got) != 1 || got[0] != "a->b again" {
		t.Fatalf("b ring = %q", got)
	}
	if got := drainRing(c); got != nil {
		t.Fatalf("forwarded unicast leaked to c: %q", got)
	}

	// Broadcast reaches everyone but the sender.
	c.Transmit(frame(BroadcastMAC, c.Mac, "bcast"))
	if got := drainRing(a); len(got) != 1 || got[0] != "bcast" {
		t.Fatalf("a broadcast = %q", got)
	}
	if got := drainRing(b); len(got) != 1 || got[0] != "bcast" {
		t.Fatalf("b broadcast = %q", got)
	}
	if got := drainRing(c); got != nil {
		t.Fatal("sender heard its own broadcast")
	}

	st := sw.Stats()
	if st.Stations != 3 {
		t.Fatalf("stations = %d, want 3", st.Stations)
	}
	if st.Forwarded == 0 || st.Flooded == 0 {
		t.Fatalf("ledger did not move: %+v", st)
	}

	// A frame whose destination sits behind the ingress port is
	// filtered, not echoed back.
	a.Transmit(frame(a.Mac, a.Mac, "hairpin"))
	if got := drainRing(a); got != nil {
		t.Fatalf("hairpin frame delivered: %q", got)
	}
	if sw.Stats().Filtered == 0 {
		t.Fatal("filtered counter did not move")
	}
}

func TestSwitchStationMove(t *testing.T) {
	sw, nics := switchRig(3)
	a, b, c := nics[0], nics[1], nics[2]
	roaming := [6]byte{2, 0, 0, 0, 0, 99}

	// The roaming station first appears behind port 1...
	b.Transmit(frame(a.Mac, roaming, "from b"))
	drainRing(a)
	drainRing(c)
	if p := sw.PortOf(roaming); p != 1 {
		t.Fatalf("roaming learned on port %d, want 1", p)
	}
	// ...then moves behind port 2; the table follows.
	c.Transmit(frame(a.Mac, roaming, "from c"))
	drainRing(a)
	drainRing(b)
	if p := sw.PortOf(roaming); p != 2 {
		t.Fatalf("roaming still on port %d, want 2", p)
	}
	a.Transmit(frame(roaming, a.Mac, "to roaming"))
	if got := drainRing(c); len(got) != 1 || got[0] != "to roaming" {
		t.Fatalf("frame did not follow the move: %q", got)
	}
	if got := drainRing(b); got != nil {
		t.Fatalf("stale port still receiving: %q", got)
	}
}

func TestSwitchBackpressure(t *testing.T) {
	sw, nics := switchRig(2)
	a, b := nics[0], nics[1]
	sw.SetPortQueueLen(4)
	// Teach the switch where b is, so the test traffic is unicast.
	b.Transmit(frame(a.Mac, b.Mac, "hello"))
	drainRing(a)

	// Stall b's delivery: the rx fault hook blocks, pinning the drainer
	// thread mid-frame while later senders enqueue behind it.
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	b.SetRxFaultHook(func() bool {
		entered <- struct{}{}
		<-release
		return false
	})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		a.Transmit(frame(b.Mac, a.Mac, "in flight"))
	}()
	<-entered

	// Queue bound is 4: the first four enqueue, the last three drop.
	for i := 0; i < 7; i++ {
		a.Transmit(frame(b.Mac, a.Mac, "queued"))
	}
	if d := sw.Stats().Drops; d != 3 {
		t.Fatalf("backpressure drops = %d, want 3", d)
	}

	close(release)
	b.SetRxFaultHook(nil)
	wg.Wait()
	// Everything that was accepted (1 in flight + 4 queued) arrives, in
	// order.  Draining may release hook entries for queued frames too.
	got := drainRing(b)
	if len(got) != 5 || got[0] != "in flight" {
		t.Fatalf("delivered = %q, want 5 frames starting with the in-flight one", got)
	}
}

func TestSwitchFaultHook(t *testing.T) {
	sw, nics := switchRig(2)
	a, b := nics[0], nics[1]
	b.Transmit(frame(a.Mac, b.Mac, "learn me"))
	drainRing(a)

	// Scripted verdicts, one per offered frame.
	script := []WireFault{
		{Drop: true},
		{Corrupt: true, CorruptOff: 0},
		{Duplicate: true},
		{Reorder: true},
		{},
	}
	i := 0
	sw.SetFaultHook(func(frameLen int) WireFault {
		f := script[i%len(script)]
		i++
		return f
	})

	a.Transmit(frame(b.Mac, a.Mac, "dropped"))
	a.Transmit(frame(b.Mac, a.Mac, "corrupt"))
	a.Transmit(frame(b.Mac, a.Mac, "doubled"))
	a.Transmit(frame(b.Mac, a.Mac, "held"))
	a.Transmit(frame(b.Mac, a.Mac, "flusher"))
	got := drainRing(b)
	want := []string{"\x9corrupt", "doubled", "doubled", "flusher", "held"}
	if len(got) != len(want) {
		t.Fatalf("delivered %d frames (%q), want %d", len(got), got, len(want))
	}
	for j := range want {
		if got[j] != want[j] {
			t.Fatalf("frame %d = %q, want %q", j, got[j], want[j])
		}
	}
	st := sw.Stats()
	if st.FaultDrops != 1 {
		t.Fatalf("fault drops = %d, want 1", st.FaultDrops)
	}
}

func TestSwitchUnattachedPort(t *testing.T) {
	sw, nics := switchRig(1)
	sw.NewPort() // never attached
	a := nics[0]
	// Flooding across an unpopulated port must not panic or wedge.
	a.Transmit(frame(BroadcastMAC, a.Mac, "into the void"))
	if tx := sw.Stats().TxFrames; tx != 1 {
		t.Fatalf("txFrames = %d", tx)
	}
}
