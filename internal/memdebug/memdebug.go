// Package memdebug is the kit's memory allocation debugging library
// (paper §3.5): it tracks allocations and detects common errors such as
// buffer overruns and freeing already-freed memory — the functionality of
// the popular application-level debugging mallocs, but running in the
// minimal kernel environment the kit provides.
//
// A Tracker wraps the minimal C library's allocator.  Each allocation is
// bracketed with fence zones filled with a known pattern; Free (and
// CheckAll, callable any time) verify the fences.  Live allocations carry
// a client-supplied tag so leak reports say who allocated what.
package memdebug

import (
	"fmt"
	"io"
	"sort"

	"oskit/internal/hw"
	"oskit/internal/libc"
)

// Fence geometry and fill patterns.
const (
	FenceSize = 16
	fenceByte = 0xAB
)

// Error kinds reported by the tracker.
type ErrKind int

// Tracker error kinds.
const (
	ErrNone       ErrKind = iota
	ErrUnderrun           // bytes before the block were scribbled on
	ErrOverrun            // bytes after the block were scribbled on
	ErrBadFree            // free of an address never allocated
	ErrDoubleFree         // free of an already-freed address
)

func (k ErrKind) String() string {
	switch k {
	case ErrUnderrun:
		return "buffer underrun"
	case ErrOverrun:
		return "buffer overrun"
	case ErrBadFree:
		return "free of unallocated memory"
	case ErrDoubleFree:
		return "double free"
	}
	return "ok"
}

// Report is one detected error.
type Report struct {
	Kind ErrKind
	Addr hw.PhysAddr
	Tag  string
}

// Error implements the error interface.
func (r Report) Error() string {
	return fmt.Sprintf("memdebug: %s at %#x (allocated by %q)", r.Kind, r.Addr, r.Tag)
}

type allocation struct {
	base  hw.PhysAddr // address of the leading fence
	addr  hw.PhysAddr // user address
	size  uint32
	tag   string
	seq   uint64
	freed bool
}

// Tracker is a debugging allocator over the minimal C library.
type Tracker struct {
	c    *libc.C
	live map[hw.PhysAddr]*allocation
	// freed remembers freed user addresses so a double free is told
	// apart from a wild one.
	freed map[hw.PhysAddr]*allocation
	seq   uint64
}

// New creates a tracker over c.
func New(c *libc.C) *Tracker {
	return &Tracker{
		c:     c,
		live:  map[hw.PhysAddr]*allocation{},
		freed: map[hw.PhysAddr]*allocation{},
	}
}

// Malloc allocates size bytes tagged with tag (typically the allocating
// function's name).
func (t *Tracker) Malloc(size uint32, tag string) (hw.PhysAddr, []byte, bool) {
	total := size + 2*FenceSize
	base, raw, ok := t.c.Malloc(total)
	if !ok {
		return 0, nil, false
	}
	for i := 0; i < FenceSize; i++ {
		raw[i] = fenceByte
		raw[FenceSize+int(size)+i] = fenceByte
	}
	t.seq++
	a := &allocation{base: base, addr: base + FenceSize, size: size, tag: tag, seq: t.seq}
	t.live[a.addr] = a
	delete(t.freed, a.addr)
	return a.addr, raw[FenceSize : FenceSize+size : FenceSize+size], true
}

// Free verifies the fences and releases the block; fence damage or a bad
// address is returned as a Report error (and the block, if real, is still
// released so the kernel can limp on).
func (t *Tracker) Free(addr hw.PhysAddr) error {
	a, ok := t.live[addr]
	if !ok {
		if old, was := t.freed[addr]; was {
			return Report{Kind: ErrDoubleFree, Addr: addr, Tag: old.tag}
		}
		return Report{Kind: ErrBadFree, Addr: addr, Tag: "?"}
	}
	err := t.check(a)
	delete(t.live, addr)
	a.freed = true
	t.freed[addr] = a
	t.c.Free(a.base)
	return err
}

// CheckAll verifies every live allocation's fences, returning all damage
// found.
func (t *Tracker) CheckAll() []Report {
	var out []Report
	for _, a := range t.live {
		if err := t.check(a); err != nil {
			out = append(out, err.(Report))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

func (t *Tracker) check(a *allocation) error {
	mem := t.c.Env().Machine.Mem
	lead, err := mem.Slice(a.base, FenceSize)
	if err != nil {
		return Report{Kind: ErrBadFree, Addr: a.addr, Tag: a.tag}
	}
	trail, err := mem.Slice(a.addr+a.size, FenceSize)
	if err != nil {
		return Report{Kind: ErrBadFree, Addr: a.addr, Tag: a.tag}
	}
	for i := 0; i < FenceSize; i++ {
		if lead[i] != fenceByte {
			return Report{Kind: ErrUnderrun, Addr: a.addr, Tag: a.tag}
		}
	}
	for i := 0; i < FenceSize; i++ {
		if trail[i] != fenceByte {
			return Report{Kind: ErrOverrun, Addr: a.addr, Tag: a.tag}
		}
	}
	return nil
}

// LiveBytes reports the number of live allocated bytes (user sizes).
func (t *Tracker) LiveBytes() uint64 {
	var n uint64
	for _, a := range t.live {
		n += uint64(a.size)
	}
	return n
}

// LeakReport writes all live allocations, oldest first — run it at the
// point everything should have been freed.
func (t *Tracker) LeakReport(w io.Writer) int {
	var list []*allocation
	for _, a := range t.live {
		list = append(list, a)
	}
	sort.Slice(list, func(i, j int) bool { return list[i].seq < list[j].seq })
	for _, a := range list {
		fmt.Fprintf(w, "leak: %d bytes at %#x allocated by %q\n", a.size, a.addr, a.tag)
	}
	return len(list)
}
