package memdebug

import (
	"bytes"
	"strings"
	"testing"

	"oskit/internal/core"
	"oskit/internal/hw"
	"oskit/internal/libc"
	"oskit/internal/lmm"
)

func tracker(t *testing.T) *Tracker {
	t.Helper()
	m := hw.NewMachine(hw.Config{MemBytes: 8 << 20})
	t.Cleanup(m.Halt)
	arena := lmm.NewArena()
	if err := arena.AddRegion(0x100000, 4<<20, 0, 0); err != nil {
		t.Fatal(err)
	}
	arena.AddFree(0x100000, 4<<20)
	return New(libc.New(core.NewEnv(m, arena)))
}

func TestCleanAllocFree(t *testing.T) {
	tr := tracker(t)
	addr, buf, ok := tr.Malloc(100, "TestClean")
	if !ok || len(buf) != 100 {
		t.Fatal("Malloc failed")
	}
	for i := range buf {
		buf[i] = byte(i)
	}
	if errs := tr.CheckAll(); len(errs) != 0 {
		t.Fatalf("clean allocation reported: %v", errs)
	}
	if err := tr.Free(addr); err != nil {
		t.Fatalf("clean free reported: %v", err)
	}
	if tr.LiveBytes() != 0 {
		t.Fatalf("LiveBytes = %d", tr.LiveBytes())
	}
}

func TestOverrunDetected(t *testing.T) {
	tr := tracker(t)
	addr, _, _ := tr.Malloc(64, "overrunner")
	// The returned slice is capacity-capped, so a classic off-by-one has
	// to be simulated the way buggy C address arithmetic would do it:
	// through the flat physical memory.
	mem := tr.c.Env().Machine.Mem
	mem.MustSlice(addr+64, 1)[0] = 0x99

	errs := tr.CheckAll()
	if len(errs) != 1 || errs[0].Kind != ErrOverrun || errs[0].Tag != "overrunner" {
		t.Fatalf("CheckAll = %v", errs)
	}
	err := tr.Free(addr)
	r, ok := err.(Report)
	if !ok || r.Kind != ErrOverrun {
		t.Fatalf("Free = %v", err)
	}
	if !strings.Contains(err.Error(), "overrun") {
		t.Fatalf("error text: %v", err)
	}
}

func TestUnderrunDetected(t *testing.T) {
	tr := tracker(t)
	addr, _, _ := tr.Malloc(32, "underrunner")
	mem := tr.c.Env().Machine.Mem
	mem.MustSlice(addr-1, 1)[0] = 0x77
	err := tr.Free(addr)
	if r, ok := err.(Report); !ok || r.Kind != ErrUnderrun {
		t.Fatalf("Free = %v", err)
	}
}

func TestDoubleAndBadFree(t *testing.T) {
	tr := tracker(t)
	addr, _, _ := tr.Malloc(16, "x")
	if err := tr.Free(addr); err != nil {
		t.Fatal(err)
	}
	err := tr.Free(addr)
	if r, ok := err.(Report); !ok || r.Kind != ErrDoubleFree || r.Tag != "x" {
		t.Fatalf("double free = %v", err)
	}
	err = tr.Free(0xdead00)
	if r, ok := err.(Report); !ok || r.Kind != ErrBadFree {
		t.Fatalf("bad free = %v", err)
	}
}

func TestLeakReport(t *testing.T) {
	tr := tracker(t)
	a1, _, _ := tr.Malloc(10, "first")
	_, _, _ = tr.Malloc(20, "second")
	_, _, _ = tr.Malloc(30, "third")
	if err := tr.Free(a1); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n := tr.LeakReport(&buf)
	if n != 2 {
		t.Fatalf("leaks = %d", n)
	}
	out := buf.String()
	// Oldest first; the freed one absent.
	if strings.Contains(out, "first") {
		t.Fatal("freed allocation reported as leak")
	}
	si, ti := strings.Index(out, "second"), strings.Index(out, "third")
	if si < 0 || ti < 0 || si > ti {
		t.Fatalf("leak order wrong:\n%s", out)
	}
	if tr.LiveBytes() != 50 {
		t.Fatalf("LiveBytes = %d", tr.LiveBytes())
	}
}

func TestReuseAfterFreeIsTracked(t *testing.T) {
	tr := tracker(t)
	addr, _, _ := tr.Malloc(16, "gen1")
	_ = tr.Free(addr)
	// The allocator may hand the same address out again; the tracker
	// must then treat it as live, not doubly freed.
	addr2, _, _ := tr.Malloc(16, "gen2")
	if addr2 == addr {
		if err := tr.Free(addr2); err != nil {
			t.Fatalf("free of recycled address: %v", err)
		}
	}
}
