// Package lmm is the OSKit's list-based memory manager (paper §3.3).
//
// The LMM provides primitives for managing allocation of either physical
// or virtual memory, in kernel or user-level code, with support for
// multiple "types" of memory in one pool and for allocations with type,
// size, alignment, and address-bounds constraints — e.g. a PC device
// driver that must have buffer memory below the 16 MB ISA DMA limit.
//
// A pool (Arena) contains regions; each region covers an address range and
// carries client-defined flag bits (its memory "type") and a priority.
// Allocation requests name required flags and search regions from highest
// to lowest priority, skipping regions that lack any requested flag.  This
// lets a client give ordinary memory high priority and scarce DMA-able
// memory low priority, so DMA memory is consumed only when demanded.
//
// In keeping with the OSKit's open-implementation philosophy (§4.6), the
// free list is inspectable (FindFree, Dump) and regions may be examined
// directly; clients that only need malloc-like service can ignore all of
// that.
package lmm

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"oskit/internal/stats"
)

// Flags is a set of client-defined memory-type bits attached to regions.
// An allocation with flags f is satisfied only from regions whose flag set
// contains every bit in f.
type Flags uint32

// PageSize is the page granularity of AllocPage (x86 pages).
const PageSize = 4096

// block is one free extent [addr, addr+size).
type block struct {
	addr, size uint32
}

// Region is one contiguous address range under management.
type Region struct {
	min, max uint32 // [min, max)
	flags    Flags
	pri      int

	free      []block // sorted by addr, coalesced, non-overlapping
	freeBytes uint32
}

// Flags returns the region's memory-type bits.
func (r *Region) Flags() Flags { return r.flags }

// Range returns the region's address range [min, max).
func (r *Region) Range() (min, max uint32) { return r.min, r.max }

// Avail returns the free byte count in the region.
func (r *Region) Avail() uint32 { return r.freeBytes }

// Arena is one memory pool.  The free lists are guarded by an internal
// mutex: on a uniprocessor the kit's execution model (§4.5) already
// serializes allocation, but one arena backs several components (BSD
// malloc, Linux kmalloc, the QuickPool refill path), and on an SMP
// machine those run concurrently.  Clients needing interrupt-level
// *exclusion* still wrap it (as the Linux glue does for donor kmalloc
// calls with interrupts disabled); the mutex only protects the lists.
type Arena struct {
	mu      sync.Mutex
	regions []*Region // sorted by priority descending, then address

	// hook, when set, may veto an allocation before the free lists are
	// searched (fault injection; see SetFaultHook).
	hook func(size uint32) bool

	// Optional com.Stats handles (see AttachStats).  All updates are
	// nil-safe, so an unattached arena pays one branch per operation.
	scAllocs *stats.Counter
	scFrees  *stats.Counter
	scFails  *stats.Counter
	scLive   *stats.Gauge
}

// NewArena creates an empty pool.
func NewArena() *Arena { return &Arena{} }

// AttachStats resolves the arena's statistics in set ("lmm.*" names).
// Attaching is optional — the kernel support library attaches its
// physical-memory arena; private pools typically don't bother.
func (a *Arena) AttachStats(set *stats.Set) {
	a.scAllocs = set.Counter("lmm.allocs")
	a.scFrees = set.Counter("lmm.frees")
	a.scFails = set.Counter("lmm.failures")
	a.scLive = set.Gauge("lmm.bytes_live")
}

// SetFaultHook installs (or, with nil, removes) an allocation-failure
// hook: when it returns true the allocation fails as if no region could
// satisfy it (counted in lmm.failures).  Like every other arena
// operation it relies on the client's serialization (§4.5).
func (a *Arena) SetFaultHook(h func(size uint32) bool) {
	a.mu.Lock()
	a.hook = h
	a.mu.Unlock()
}

// AddRegion introduces the address range [addr, addr+size) with the given
// type flags and priority.  The range starts fully *allocated*; memory
// becomes available via AddFree.  (This mirrors lmm_add_region /
// lmm_add_free: the kernel support library registers all of physical
// memory as regions, then frees exactly the parts not occupied by the
// kernel and boot modules.)  Regions must not overlap.
func (a *Arena) AddRegion(addr, size uint32, flags Flags, pri int) error {
	if size == 0 {
		return fmt.Errorf("lmm: empty region")
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	max := addr + size
	if max < addr {
		return fmt.Errorf("lmm: region wraps address space")
	}
	for _, r := range a.regions {
		if addr < r.max && r.min < max {
			return fmt.Errorf("lmm: region [%#x,%#x) overlaps [%#x,%#x)", addr, max, r.min, r.max)
		}
	}
	r := &Region{min: addr, max: max, flags: flags, pri: pri}
	a.regions = append(a.regions, r)
	sort.SliceStable(a.regions, func(i, j int) bool {
		if a.regions[i].pri != a.regions[j].pri {
			return a.regions[i].pri > a.regions[j].pri
		}
		return a.regions[i].min < a.regions[j].min
	})
	return nil
}

// AddFree donates [addr, addr+size) to the free lists of whatever regions
// contain it; parts outside any region are ignored (lmm_add_free
// semantics, convenient when freeing a memory map around reserved holes).
func (a *Arena) AddFree(addr, size uint32) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, r := range a.regions {
		lo, hi := addr, addr+size
		if lo < r.min {
			lo = r.min
		}
		if hi > r.max {
			hi = r.max
		}
		if lo < hi {
			r.insertFree(lo, hi-lo)
		}
	}
}

// Free returns a block previously obtained from Alloc*.  Freeing memory
// that is already free panics: like the C LMM scribbling its free list
// through corrupt memory, a double free is a fatal client bug (and the
// memdebug wrapper exists to catch it gracefully).
func (a *Arena) Free(addr, size uint32) {
	if size == 0 {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	r := a.regionOf(addr)
	if r == nil || addr+size > r.max {
		panic(fmt.Sprintf("lmm: Free(%#x, %#x) outside any region", addr, size))
	}
	r.insertFree(addr, size)
	a.scFrees.Inc()
	a.scLive.Add(-int64(size))
}

// Alloc allocates size bytes from the highest-priority region carrying
// all the requested flags.  ok is false when no region can satisfy it.
func (a *Arena) Alloc(size uint32, flags Flags) (addr uint32, ok bool) {
	return a.AllocGen(size, flags, 0, 0, 0, ^uint32(0))
}

// AllocAligned allocates size bytes such that the returned address plus
// alignOfs is aligned on a 2^alignBits boundary (the lmm_alloc_aligned
// contract).
func (a *Arena) AllocAligned(size uint32, flags Flags, alignBits uint, alignOfs uint32) (uint32, bool) {
	return a.AllocGen(size, flags, alignBits, alignOfs, 0, ^uint32(0))
}

// AllocPage allocates one naturally aligned page.
func (a *Arena) AllocPage(flags Flags) (uint32, bool) {
	return a.AllocGen(PageSize, flags, 12, 0, 0, ^uint32(0))
}

// AllocGen is the general allocator: size bytes, required type flags,
// alignment (as in AllocAligned), within the address bounds [min, max].
func (a *Arena) AllocGen(size uint32, flags Flags, alignBits uint, alignOfs uint32, min, max uint32) (uint32, bool) {
	if size == 0 || alignBits >= 32 {
		return 0, false
	}
	// The fault hook runs outside a.mu: it is an interposed callback (it
	// may read arena stats or take its own locks), the hazard class the
	// lockhook analyzer exists for.
	a.mu.Lock()
	hook := a.hook
	a.mu.Unlock()
	if hook != nil && hook(size) {
		a.scFails.Inc()
		return 0, false
	}
	align := uint32(1) << alignBits
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, r := range a.regions {
		if r.flags&flags != flags {
			continue
		}
		for i, b := range r.free {
			// Candidate start: lowest address in the block >= min
			// satisfying the alignment phase.
			start := b.addr
			if start < min {
				start = min
			}
			start = alignUp(start, align, alignOfs)
			end := start + size
			if end < start { // overflow
				continue
			}
			if start < b.addr || end > b.addr+b.size || end-1 > max {
				continue
			}
			r.carve(i, b, start, size)
			a.scAllocs.Inc()
			a.scLive.Add(int64(size))
			return start, true
		}
	}
	a.scFails.Inc()
	return 0, false
}

// Avail reports the total free bytes in regions carrying all the given
// flags (lmm_avail).
func (a *Arena) Avail(flags Flags) uint32 {
	a.mu.Lock()
	defer a.mu.Unlock()
	var total uint32
	for _, r := range a.regions {
		if r.flags&flags == flags {
			total += r.freeBytes
		}
	}
	return total
}

// FindFree locates the first free block at or after addr, returning its
// extent and its region's flags (lmm_find_free): the open-implementation
// hook for clients that walk the free list (§4.6).
func (a *Arena) FindFree(addr uint32) (blockAddr, blockSize uint32, flags Flags, ok bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	found := false
	var best block
	var bestFlags Flags
	for _, r := range a.regions {
		for _, b := range r.free {
			end := b.addr + b.size
			if end <= addr {
				continue
			}
			start := b.addr
			if start < addr {
				start = addr
			}
			if !found || start < best.addr {
				best = block{start, end - start}
				bestFlags = r.flags
				found = true
			}
		}
	}
	if !found {
		return 0, 0, 0, false
	}
	return best.addr, best.size, bestFlags, true
}

// RemoveFree permanently removes [addr, addr+size) from the free lists
// (lmm_remove_free): used to reserve address ranges such as loaded boot
// modules (§3.2).  Free parts inside the range disappear; allocated parts
// are untouched.
func (a *Arena) RemoveFree(addr, size uint32) {
	a.mu.Lock()
	defer a.mu.Unlock()
	lo, hi := addr, addr+size
	for _, r := range a.regions {
		var out []block
		for _, b := range r.free {
			bLo, bHi := b.addr, b.addr+b.size
			// Keep the parts of b outside [lo, hi).
			if bHi <= lo || bLo >= hi {
				out = append(out, b)
				continue
			}
			if bLo < lo {
				out = append(out, block{bLo, lo - bLo})
			}
			if bHi > hi {
				out = append(out, block{hi, bHi - hi})
			}
			cut := minU32(bHi, hi) - maxU32(bLo, lo)
			r.freeBytes -= cut
		}
		r.free = out
	}
}

// Regions returns the managed regions in search (priority) order.
func (a *Arena) Regions() []*Region {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]*Region(nil), a.regions...)
}

// Dump writes a human-readable free-list listing (lmm_dump).
func (a *Arena) Dump(w io.Writer) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, r := range a.regions {
		fmt.Fprintf(w, "region [%#010x,%#010x) flags %#x pri %d free %d\n",
			r.min, r.max, uint32(r.flags), r.pri, r.freeBytes)
		for _, b := range r.free {
			fmt.Fprintf(w, "  free [%#010x,%#010x) size %#x\n", b.addr, b.addr+b.size, b.size)
		}
	}
}

// regionOf returns the region containing addr.
func (a *Arena) regionOf(addr uint32) *Region {
	for _, r := range a.regions {
		if addr >= r.min && addr < r.max {
			return r
		}
	}
	return nil
}

// insertFree adds [addr, addr+size) to the region's free list, coalescing
// with neighbours, panicking on overlap with already-free memory.
func (r *Region) insertFree(addr, size uint32) {
	i := sort.Search(len(r.free), func(i int) bool { return r.free[i].addr >= addr })
	// Overlap checks against predecessor and successor.
	if i > 0 {
		p := r.free[i-1]
		if p.addr+p.size > addr {
			panic(fmt.Sprintf("lmm: double free at %#x (overlaps free [%#x,%#x))", addr, p.addr, p.addr+p.size))
		}
	}
	if i < len(r.free) {
		n := r.free[i]
		if addr+size > n.addr {
			panic(fmt.Sprintf("lmm: double free at %#x (overlaps free [%#x,%#x))", addr, n.addr, n.addr+n.size))
		}
	}
	r.free = append(r.free, block{})
	copy(r.free[i+1:], r.free[i:])
	r.free[i] = block{addr, size}
	r.freeBytes += size
	// Coalesce with successor, then predecessor.
	if i+1 < len(r.free) && r.free[i].addr+r.free[i].size == r.free[i+1].addr {
		r.free[i].size += r.free[i+1].size
		r.free = append(r.free[:i+1], r.free[i+2:]...)
	}
	if i > 0 && r.free[i-1].addr+r.free[i-1].size == r.free[i].addr {
		r.free[i-1].size += r.free[i].size
		r.free = append(r.free[:i], r.free[i+1:]...)
	}
}

// carve removes [start, start+size) from free block i (known to contain
// it), returning leftover head/tail fragments to the free list.
func (r *Region) carve(i int, b block, start, size uint32) {
	// Remove the block.
	r.free = append(r.free[:i], r.free[i+1:]...)
	r.freeBytes -= b.size
	// Re-insert leftovers.
	if start > b.addr {
		r.insertFree(b.addr, start-b.addr)
	}
	if end, bEnd := start+size, b.addr+b.size; end < bEnd {
		r.insertFree(end, bEnd-end)
	}
}

// alignUp returns the smallest a' >= a with (a'+ofs) aligned to align.
func alignUp(a, align, ofs uint32) uint32 {
	rem := (a + ofs) & (align - 1)
	if rem == 0 {
		return a
	}
	return a + (align - rem)
}

func minU32(a, b uint32) uint32 {
	if a < b {
		return a
	}
	return b
}

func maxU32(a, b uint32) uint32 {
	if a > b {
		return a
	}
	return b
}
