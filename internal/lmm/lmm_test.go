package lmm

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// Flags used throughout the tests, mirroring how the kernel support
// library types PC physical memory.
const (
	fDMA  Flags = 1 << 0 // below 16 MB
	fHigh Flags = 1 << 1
)

func pcArena() *Arena {
	a := NewArena()
	// DMA-able memory at low priority so it is used only on demand.
	if err := a.AddRegion(0x100000, 15<<20, fDMA, 0); err != nil {
		panic(err)
	}
	if err := a.AddRegion(16<<20, 16<<20, fHigh, 10); err != nil {
		panic(err)
	}
	a.AddFree(0x100000, 15<<20)
	a.AddFree(16<<20, 16<<20)
	return a
}

func TestAllocPrefersHighPriority(t *testing.T) {
	a := pcArena()
	addr, ok := a.Alloc(4096, 0)
	if !ok {
		t.Fatal("alloc failed")
	}
	if addr < 16<<20 {
		t.Fatalf("untyped allocation came from low-priority DMA region: %#x", addr)
	}
}

func TestAllocHonorsTypeFlags(t *testing.T) {
	a := pcArena()
	addr, ok := a.Alloc(4096, fDMA)
	if !ok {
		t.Fatal("DMA alloc failed")
	}
	if addr >= 16<<20 {
		t.Fatalf("DMA allocation above the DMA limit: %#x", addr)
	}
	if _, ok := a.Alloc(4096, fDMA|fHigh); ok {
		t.Fatal("allocation with unsatisfiable flag combination succeeded")
	}
}

func TestAllocAligned(t *testing.T) {
	a := pcArena()
	for _, bits := range []uint{0, 4, 12, 16} {
		addr, ok := a.AllocAligned(100, 0, bits, 0)
		if !ok {
			t.Fatalf("aligned alloc 2^%d failed", bits)
		}
		if addr&((1<<bits)-1) != 0 {
			t.Fatalf("addr %#x not 2^%d aligned", addr, bits)
		}
	}
	// With an alignment offset: addr+ofs must be aligned.
	addr, ok := a.AllocAligned(100, 0, 12, 0x800)
	if !ok {
		t.Fatal("offset-aligned alloc failed")
	}
	if (addr+0x800)&0xfff != 0 {
		t.Fatalf("addr %#x + 0x800 not page aligned", addr)
	}
}

func TestAllocPage(t *testing.T) {
	a := pcArena()
	addr, ok := a.AllocPage(0)
	if !ok || addr&(PageSize-1) != 0 {
		t.Fatalf("AllocPage = %#x, %v", addr, ok)
	}
}

func TestAllocGenBounds(t *testing.T) {
	a := pcArena()
	// Constrain to a 64 KB window inside the DMA region.
	lo, hi := uint32(0x200000), uint32(0x20ffff)
	addr, ok := a.AllocGen(0x1000, 0, 0, 0, lo, hi)
	if !ok {
		t.Fatal("bounded alloc failed")
	}
	if addr < lo || addr+0x1000-1 > hi {
		t.Fatalf("allocation [%#x,...) escaped bounds [%#x,%#x]", addr, lo, hi)
	}
	// Impossible bounds.
	if _, ok := a.AllocGen(0x20000, 0, 0, 0, lo, lo+0x100); ok {
		t.Fatal("allocation larger than its bounds succeeded")
	}
}

func TestFreeCoalesces(t *testing.T) {
	a := NewArena()
	if err := a.AddRegion(0, 1<<20, 0, 0); err != nil {
		t.Fatal(err)
	}
	a.AddFree(0, 1<<20)
	before := a.Avail(0)
	var addrs []uint32
	for i := 0; i < 10; i++ {
		addr, ok := a.Alloc(1000, 0)
		if !ok {
			t.Fatal("alloc failed")
		}
		addrs = append(addrs, addr)
	}
	// Free in shuffled order.
	order := rand.New(rand.NewSource(7)).Perm(len(addrs))
	for _, i := range order {
		a.Free(addrs[i], 1000)
	}
	if got := a.Avail(0); got != before {
		t.Fatalf("Avail after free-all = %d, want %d", got, before)
	}
	// Everything must have coalesced back into a single block.
	r := a.Regions()[0]
	if len(r.free) != 1 {
		t.Fatalf("free list has %d blocks after full free, want 1", len(r.free))
	}
}

func TestDoubleFreePanics(t *testing.T) {
	a := NewArena()
	if err := a.AddRegion(0, 4096, 0, 0); err != nil {
		t.Fatal(err)
	}
	a.AddFree(0, 4096)
	addr, _ := a.Alloc(128, 0)
	a.Free(addr, 128)
	defer func() {
		if recover() == nil {
			t.Fatal("double free did not panic")
		}
	}()
	a.Free(addr, 128)
}

func TestRemoveFreeReservesHoles(t *testing.T) {
	a := NewArena()
	if err := a.AddRegion(0, 0x10000, 0, 0); err != nil {
		t.Fatal(err)
	}
	a.AddFree(0, 0x10000)
	// Reserve a boot module at [0x4000, 0x6000).
	a.RemoveFree(0x4000, 0x2000)
	if got := a.Avail(0); got != 0x10000-0x2000 {
		t.Fatalf("Avail = %#x", got)
	}
	// Allocations never land in the hole.
	seen := map[uint32]bool{}
	for {
		addr, ok := a.Alloc(0x1000, 0)
		if !ok {
			break
		}
		if addr >= 0x4000 && addr < 0x6000 {
			t.Fatalf("allocation inside reserved hole: %#x", addr)
		}
		seen[addr] = true
	}
	if len(seen) != 14 {
		t.Fatalf("allocated %d pages, want 14", len(seen))
	}
}

func TestFindFreeWalk(t *testing.T) {
	a := pcArena()
	addr, _ := a.Alloc(4096, fDMA)
	a.Free(addr, 4096)
	// Walk all free blocks; they must be disjoint and sorted by the walk.
	var cursor uint32
	total := uint32(0)
	for {
		bAddr, bSize, _, ok := a.FindFree(cursor)
		if !ok {
			break
		}
		if bAddr < cursor {
			t.Fatalf("walk went backwards: %#x < %#x", bAddr, cursor)
		}
		total += bSize
		cursor = bAddr + bSize
	}
	if total != a.Avail(0) {
		t.Fatalf("walked %#x bytes, Avail says %#x", total, a.Avail(0))
	}
}

func TestAddRegionOverlapRejected(t *testing.T) {
	a := NewArena()
	if err := a.AddRegion(0x1000, 0x1000, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := a.AddRegion(0x1800, 0x1000, 0, 0); err == nil {
		t.Fatal("overlapping region accepted")
	}
	if err := a.AddRegion(0, 0, 0, 0); err == nil {
		t.Fatal("empty region accepted")
	}
	if err := a.AddRegion(^uint32(0)-10, 100, 0, 0); err == nil {
		t.Fatal("wrapping region accepted")
	}
}

func TestDump(t *testing.T) {
	a := pcArena()
	var buf bytes.Buffer
	a.Dump(&buf)
	out := buf.String()
	if !strings.Contains(out, "region") || !strings.Contains(out, "free") {
		t.Fatalf("Dump output unhelpful:\n%s", out)
	}
}

// Property: a random interleaving of allocations and frees never produces
// overlapping live blocks, never hands out memory beyond region bounds,
// and conserves bytes exactly.
func TestAllocFreeInvariantsProperty(t *testing.T) {
	f := func(seed int64, ops8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		a := pcArena()
		start := a.Avail(0)
		type alloc struct{ addr, size uint32 }
		var live []alloc
		liveBytes := uint32(0)
		ops := int(ops8%64) + 16
		for i := 0; i < ops; i++ {
			if rng.Intn(2) == 0 || len(live) == 0 {
				size := uint32(rng.Intn(8192) + 1)
				flags := Flags(0)
				if rng.Intn(4) == 0 {
					flags = fDMA
				}
				addr, ok := a.Alloc(size, flags)
				if !ok {
					continue
				}
				if flags == fDMA && addr+size > 16<<20 {
					return false // escaped DMA region
				}
				for _, l := range live {
					if addr < l.addr+l.size && l.addr < addr+size {
						return false // overlap with a live block
					}
				}
				live = append(live, alloc{addr, size})
				liveBytes += size
			} else {
				i := rng.Intn(len(live))
				a.Free(live[i].addr, live[i].size)
				liveBytes -= live[i].size
				live = append(live[:i], live[i+1:]...)
			}
		}
		return a.Avail(0) == start-liveBytes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: AllocAligned always satisfies its alignment contract for any
// alignment up to 2^20 and any offset.
func TestAlignmentContractProperty(t *testing.T) {
	f := func(bits8 uint8, ofs uint32, size16 uint16) bool {
		bits := uint(bits8 % 21)
		size := uint32(size16%4096) + 1
		a := pcArena()
		addr, ok := a.AllocAligned(size, 0, bits, ofs)
		if !ok {
			return true // pool exhaustion is legal
		}
		return (addr+ofs)&((1<<bits)-1) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// A fault hook must fail allocations exactly as exhaustion would —
// counted as a failure, free lists untouched — and removal must restore
// normal service.
func TestArenaFaultHook(t *testing.T) {
	a := NewArena()
	if err := a.AddRegion(0x1000, 0x1000, 0, 0); err != nil {
		t.Fatal(err)
	}
	a.AddFree(0x1000, 0x1000)
	avail := a.Avail(0)

	deny := true
	a.SetFaultHook(func(size uint32) bool { return deny })
	if _, ok := a.Alloc(64, 0); ok {
		t.Fatal("hooked allocation succeeded")
	}
	if a.Avail(0) != avail {
		t.Fatal("failed allocation consumed free memory")
	}
	deny = false
	addr, ok := a.Alloc(64, 0)
	if !ok {
		t.Fatal("allocation failed with hook returning false")
	}
	a.Free(addr, 64)
	a.SetFaultHook(nil)
	if _, ok := a.Alloc(64, 0); !ok {
		t.Fatal("allocation failed after hook removal")
	}
}
