// Helpers shared by the analyzers for reasoning about the kit's COM layer.
package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// ComPathSuffix identifies the kit's COM package by import-path suffix, so
// the analyzers work both on the real tree ("oskit/internal/com") and on
// any future relocation of the module.
const ComPathSuffix = "internal/com"

// IsComPackage reports whether pkg is the kit's COM package.
func IsComPackage(pkg *types.Package) bool {
	return pkg != nil && (pkg.Path() == ComPathSuffix || strings.HasSuffix(pkg.Path(), "/"+ComPathSuffix))
}

// FindIUnknown locates the com.IUnknown interface type reachable from
// pkg's import graph, or nil if the package has no (transitive) dependency
// on the COM layer.
func FindIUnknown(pkg *types.Package) *types.Interface {
	seen := map[*types.Package]bool{}
	var walk func(p *types.Package) *types.Interface
	walk = func(p *types.Package) *types.Interface {
		if p == nil || seen[p] {
			return nil
		}
		seen[p] = true
		if IsComPackage(p) {
			if obj, ok := p.Scope().Lookup("IUnknown").(*types.TypeName); ok {
				if iface, ok := obj.Type().Underlying().(*types.Interface); ok {
					return iface
				}
			}
			return nil
		}
		for _, imp := range p.Imports() {
			if iface := walk(imp); iface != nil {
				return iface
			}
		}
		return nil
	}
	return walk(pkg)
}

// ImplementsIUnknown reports whether t (or *t) satisfies com.IUnknown.
func ImplementsIUnknown(t types.Type, iu *types.Interface) bool {
	if t == nil || iu == nil {
		return false
	}
	if types.Implements(t, iu) {
		return true
	}
	if _, isPtr := t.Underlying().(*types.Pointer); !isPtr {
		return types.Implements(types.NewPointer(t), iu)
	}
	return false
}

// CalleeFunc resolves a call expression to the *types.Func it invokes
// (methods included), or nil for calls of function-typed values,
// built-ins, and conversions.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				return f
			}
			return nil
		}
		// Package-qualified call (fmt.Println): no Selection entry.
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// ContainsIdentOf reports whether the expression tree rooted at n contains
// an identifier resolving to obj.
func ContainsIdentOf(info *types.Info, n ast.Node, obj types.Object) bool {
	if n == nil {
		return false
	}
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		if found {
			return false
		}
		if id, ok := x.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
			return false
		}
		return true
	})
	return found
}

// ExprPath renders a selector chain such as "n.mu" for diagnostics and
// for keying held-mutex sets; non-ident/selector shapes render as "?".
func ExprPath(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return ExprPath(e.X) + "." + e.Sel.Name
	case *ast.StarExpr:
		return ExprPath(e.X)
	}
	return "?"
}
