// Fixtures for the lock-hierarchy rule: ranked wrapper locks in the
// freebsd/net shape (E14), with in-order acquisitions that must stay
// silent, out-of-order and same-rank acquisitions that must be flagged,
// and a waived same-rank nesting mirroring the TIME_WAIT pcb recycle.
package lockhooktest

import "sync"

//oskit:lockrank 10
type stackLock struct{ sync.Mutex }

//oskit:lockrank 20
type pcbLock struct{ sync.Mutex }

//oskit:lockrank 30
type demuxLock struct{ sync.RWMutex }

type stack struct {
	mu      stackLock
	demuxMu demuxLock
}

type pcb struct {
	mu pcbLock
}

// registerInOrder climbs the hierarchy: 10, then 20, then 30.  Silent.
func registerInOrder(s *stack, tp *pcb) {
	s.mu.Lock()
	tp.mu.Lock()
	s.demuxMu.Lock()
	s.demuxMu.Unlock()
	tp.mu.Unlock()
	s.mu.Unlock()
}

// lookupDropThenLock is the fast-path shape: the demux lock is released
// before the pcb lock is taken, so no ordering edge exists.  Silent.
func lookupDropThenLock(s *stack, tp *pcb) {
	s.demuxMu.RLock()
	s.demuxMu.RUnlock()
	tp.mu.Lock()
	tp.mu.Unlock()
}

// invertStackUnderPcb takes the stack lock (10) under a pcb lock (20) —
// the inversion the hierarchy exists to outlaw.
func invertStackUnderPcb(s *stack, tp *pcb) {
	tp.mu.Lock()
	s.mu.Lock() // want `acquiring s\.mu \(lockrank 10\) while holding tp\.mu \(lockrank 20\) violates the lock hierarchy`
	s.mu.Unlock()
	tp.mu.Unlock()
}

// coupleDemuxThenPcb holds the demux bucket (30) while locking the pcb
// (20): the coupled lookup the fast path deliberately avoids.
func coupleDemuxThenPcb(s *stack, tp *pcb) {
	s.demuxMu.RLock()
	tp.mu.Lock() // want `acquiring tp\.mu \(lockrank 20\) while holding s\.demuxMu \(lockrank 30\) violates the lock hierarchy`
	tp.mu.Unlock()
	s.demuxMu.RUnlock()
}

// nestSameRank locks two pcbs (20, 20): same rank is also out of order.
func nestSameRank(a, b *pcb) {
	a.mu.Lock()
	b.mu.Lock() // want `acquiring b\.mu \(lockrank 20\) while holding a\.mu \(lockrank 20\) violates the lock hierarchy`
	b.mu.Unlock()
	a.mu.Unlock()
}

// recycleWaived is the TIME_WAIT recycle shape: a deliberate same-rank
// nesting, deadlock-free by reachability, waived at the site.  Silent.
func recycleWaived(s *stack, cur, old *pcb) {
	s.mu.Lock()
	cur.mu.Lock()
	old.mu.Lock() //oskit:allow lockhook -- same-rank pcb nesting; victim only reachable under the stack lock, which is held
	old.mu.Unlock()
	cur.mu.Unlock()
	s.mu.Unlock()
}

// unrankedStaysOutside: a plain sync.Mutex held while a ranked lock is
// taken (and vice versa) is not an ordering edge.  Silent.
func unrankedStaysOutside(s *stack) {
	var plain sync.Mutex
	plain.Lock()
	s.mu.Lock()
	s.mu.Unlock()
	plain.Unlock()
}
