// Fixtures for the E16 per-CPU allocation-front ranks: the magazine
// slot and depot locks (76, 77) slot between the mbuf cluster lock (70)
// and the BSD malloc lock (81).  The in-order shapes — depot exchange
// under a slot, a cluster freed into the front while mclMu is held —
// stay silent; inversions that would deadlock the front against its
// backing allocator are flagged.  Without the 76/77 rank entries none
// of the flagged shapes would produce a diagnostic, which is what these
// fixtures pin.
package lockhooktest

import "sync"

//oskit:lockrank 70
type mclLock struct{ sync.Mutex }

//oskit:lockrank 76
type cpuSlotLock struct{ sync.Mutex }

//oskit:lockrank 77
type magDepotLock struct{ sync.Mutex }

//oskit:lockrank 81
type kmallocLock struct{ sync.Mutex }

type magCache struct {
	slotMu  cpuSlotLock
	depotMu magDepotLock
}

type allocator struct {
	mclMu mclLock
	mu    kmallocLock
}

// magazineExchange is the depot trade: the CPU slot (76) holds its lock
// while swapping magazines with the depot (77).  In order; silent.
func magazineExchange(c *magCache) {
	c.slotMu.Lock()
	c.depotMu.Lock()
	c.depotMu.Unlock()
	c.slotMu.Unlock()
}

// clusterFreeIntoFront is the clRef release shape: the cluster table
// lock (70) is held while the block stashes into a CPU slot (76).
// Ascending; silent.
func clusterFreeIntoFront(a *allocator, c *magCache) {
	a.mclMu.Lock()
	c.slotMu.Lock()
	c.slotMu.Unlock()
	a.mclMu.Unlock()
}

// depotThenSlot takes a CPU slot (76) while holding the depot (77):
// the inversion of the exchange order, a deadlock against a concurrent
// magazineExchange.
func depotThenSlot(c *magCache) {
	c.depotMu.Lock()
	c.slotMu.Lock() // want `acquiring c\.slotMu \(lockrank 76\) while holding c\.depotMu \(lockrank 77\) violates the lock hierarchy`
	c.slotMu.Unlock()
	c.depotMu.Unlock()
}

// backingCallsFront takes a CPU slot (76) under the backing allocator's
// lock (81): the backing allocator must never call into the front —
// the front frees into it during drain with its slot lock released.
func backingCallsFront(a *allocator, c *magCache) {
	a.mu.Lock()
	c.slotMu.Lock() // want `acquiring c\.slotMu \(lockrank 76\) while holding a\.mu \(lockrank 81\) violates the lock hierarchy`
	c.slotMu.Unlock()
	a.mu.Unlock()
}

// slotPairSameRank locks two CPU slots (76, 76): cross-slot nesting is
// outlawed — the drain and exchange paths touch one slot at a time.
func slotPairSameRank(x, y *magCache) {
	x.slotMu.Lock()
	y.slotMu.Lock() // want `acquiring y\.slotMu \(lockrank 76\) while holding x\.slotMu \(lockrank 76\) violates the lock hierarchy`
	y.slotMu.Unlock()
	x.slotMu.Unlock()
}

// frontThenBacking is the miss path with the slot lock released first:
// consult the cache, drop its lock, then enter the backing allocator.
// No edge; silent.
func frontThenBacking(a *allocator, c *magCache) {
	c.slotMu.Lock()
	c.slotMu.Unlock()
	a.mu.Lock()
	a.mu.Unlock()
}
