// Fixtures for lockhook: the NIC.deliver self-deadlock shape from PR 4
// (an interposable hook field fired while the object's own mutex is
// held) in its direct, via-local, and via-helper forms, plus the fixed
// snapshot-then-call shapes that must stay silent.
package lockhooktest

import "sync"

type nic struct {
	mu     sync.Mutex
	rxHook func([]byte)
	frames uint64
}

// deliverDeadlock is the PR 4 bug verbatim: the hook runs under n.mu,
// so a hook that calls back into the nic (or blocks on its own lock
// taken elsewhere under n.mu) deadlocks.
func (n *nic) deliverDeadlock(frame []byte) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.frames++
	if n.rxHook != nil {
		n.rxHook(frame) // want `call to hook/interposer field n\.rxHook while mutex n\.mu is held`
	}
}

// deliverViaLocal hides the field call behind a local copy; the hook
// still runs under the lock.
func (n *nic) deliverViaLocal(frame []byte) {
	hook := n.rxHook
	n.mu.Lock()
	n.frames++
	if hook != nil {
		hook(frame) // want `call to hook/interposer n\.rxHook \(via hook\) while mutex n\.mu is held`
	}
	n.mu.Unlock()
}

// fireLocked is a helper that invokes the hook; any caller holding a
// mutex is tainted through the package-local call graph.
func (n *nic) fireLocked(frame []byte) {
	if n.rxHook != nil {
		n.rxHook(frame)
	}
}

// deliverViaHelper reaches the hook indirectly.
func (n *nic) deliverViaHelper(frame []byte) {
	n.mu.Lock()
	n.fireLocked(frame) // want `call to fireLocked, which may invoke a hook/interposer, while mutex n\.mu is held`
	n.mu.Unlock()
}

// deliverFixed is the PR 4 fix: counters under the lock, hook snapshot
// taken under the lock, invocation after the unlock.
func (n *nic) deliverFixed(frame []byte) {
	n.mu.Lock()
	n.frames++
	hook := n.rxHook
	n.mu.Unlock()
	if hook != nil {
		hook(frame)
	}
}

// deliverUnlocked never holds a mutex around the hook at all.
func (n *nic) deliverUnlocked(frame []byte) {
	if n.rxHook != nil {
		n.rxHook(frame)
	}
}

// closureBuiltUnderLock constructs a callback while locked but does not
// run it there; function literal bodies are outside the lock region.
func (n *nic) closureBuiltUnderLock() func([]byte) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return func(frame []byte) {
		if n.rxHook != nil {
			n.rxHook(frame)
		}
	}
}

// deliverWaived documents a reviewed exception, the ether hookMu shape:
// a dedicated mutex that exists only to serialize the hook and is taken
// nowhere else cannot participate in a cycle.
func (n *nic) deliverWaived(frame []byte) {
	n.mu.Lock()
	//oskit:allow lockhook -- n.mu is dedicated to serializing this hook in this fixture
	n.rxHook(frame)
	n.mu.Unlock()
}
