package lockhook_test

import (
	"testing"

	"oskit/internal/analysis"
	"oskit/internal/analysis/analysistest"
	"oskit/internal/analysis/lockhook"
)

func TestLockhook(t *testing.T) {
	analysistest.Run(t, []*analysis.Analyzer{lockhook.Analyzer}, "lockhooktest")
}
