// Package lockhook flags calls that can run arbitrary interposed code —
// a registered fault or stats hook, an env.MemAlloc-style allocator
// interposer, any function-typed struct field — while a sync.Mutex or
// sync.RWMutex is held.  Hooks are installed by other components
// (internal/faults, stats readers, tests) and may call back into the
// object that invoked them; doing so under that object's own lock is the
// self-deadlock fixed by hand in NIC.deliver (PR 4), and under any lock
// it inverts lock order against the hook's own synchronization.
//
// Detection is intra-package: a call is "hook-like" if it invokes a
// function-typed struct field (directly, or via a local variable the
// field was copied into), and the property propagates through the
// package-local call graph, so a helper that fires a hook taints its
// callers too.  Mutex state is tracked linearly per block: x.mu.Lock()
// opens a held region closed by x.mu.Unlock(); defer x.mu.Unlock() holds
// to the end of the function.  Function literals are not scanned as part
// of the enclosing region (a callback built under a lock runs later, not
// under it) unless invoked on the spot.
//
// The pass also enforces the documented lock hierarchy (E14).  A named
// struct type that embeds sync.Mutex or sync.RWMutex and carries an
//
//	//oskit:lockrank N
//
// directive in its doc comment is a ranked lock.  Ranks order
// acquisition: while any ranked lock is held, only locks of strictly
// higher rank may be acquired.  Acquiring an equal or lower rank is
// reported — the deadlock-prone shape — and deliberate same-rank
// nestings (the TIME_WAIT pcb recycle) carry //oskit:allow waivers at
// the site, keeping every exception visible.  Like the hook rule the
// rank rule is intra-package and linear per function: it catches
// inversions written in one function body, not orders threaded through
// call chains or across packages.
//
// The two rules partition the locks: the hook rule applies to plain
// (unranked) mutexes, whose job is to guard hook registries and small
// object state, while ranked locks are a component's declared internal
// exclusion — the data path under them invokes its own interposition
// points (the interface output binding, allocator services) on purpose,
// and what may nest under a ranked lock is governed by the hierarchy
// declaration instead.
package lockhook

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"

	"oskit/internal/analysis"
)

// Analyzer is the lockhook pass.
var Analyzer = &analysis.Analyzer{
	Name: "lockhook",
	Doc:  "no fault/stats hook or interposable function field may be called while a sync.Mutex/RWMutex is held; //oskit:lockrank locks must be acquired in increasing rank order",
	Run:  run,
}

// rankDirective is the doc-comment marker declaring a ranked lock type.
const rankDirective = "//oskit:lockrank"

func run(pass *analysis.Pass) error {
	c := &checker{pass: pass, mayHook: map[*types.Func]bool{}, ranks: map[*types.TypeName]int{}}
	c.collectRanks()
	// Round 1: functions that call a hook field directly.
	type fnDecl struct {
		fn   *types.Func
		decl *ast.FuncDecl
	}
	var decls []fnDecl
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pass.Info.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			decls = append(decls, fnDecl{obj, fd})
			if c.callsHookDirectly(fd.Body) {
				c.mayHook[obj] = true
			}
		}
	}
	// Fixpoint: propagate may-call-hook through package-local calls.
	for changed := true; changed; {
		changed = false
		for _, d := range decls {
			if c.mayHook[d.fn] {
				continue
			}
			tainted := false
			ast.Inspect(d.decl.Body, func(n ast.Node) bool {
				if tainted {
					return false
				}
				if _, isLit := n.(*ast.FuncLit); isLit {
					return false // runs later, not at this call site
				}
				if call, ok := n.(*ast.CallExpr); ok {
					if callee := analysis.CalleeFunc(pass.Info, call); callee != nil && c.mayHook[callee] {
						tainted = true
					}
				}
				return true
			})
			if tainted {
				c.mayHook[d.fn] = true
				changed = true
			}
		}
	}
	// Round 2: scan each function's lock regions.
	for _, d := range decls {
		c.hookLocals = map[types.Object]string{}
		c.collectHookLocals(d.decl.Body)
		c.scanBlock(d.decl.Body, map[string]int{})
	}
	return nil
}

type checker struct {
	pass    *analysis.Pass
	mayHook map[*types.Func]bool
	// hookLocals are local vars holding a copy of a hook field
	// (hook := n.rxHook), mapped to a description of their origin.
	hookLocals map[types.Object]string
	// ranks maps package-local lock wrapper types to their declared
	// //oskit:lockrank, collected before scanning.
	ranks map[*types.TypeName]int
}

// collectRanks finds ranked lock declarations: named struct types whose
// doc comment carries an //oskit:lockrank directive.
func (c *checker) collectRanks() {
	for _, file := range c.pass.Files {
		for _, d := range file.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				rank, ok := rankOf(gd.Doc, ts.Doc)
				if !ok {
					continue
				}
				if tn, ok := c.pass.Info.Defs[ts.Name].(*types.TypeName); ok {
					c.ranks[tn] = rank
				}
			}
		}
	}
}

// rankOf parses the first //oskit:lockrank directive in the doc groups.
func rankOf(groups ...*ast.CommentGroup) (int, bool) {
	for _, g := range groups {
		if g == nil {
			continue
		}
		for _, line := range g.List {
			rest, ok := strings.CutPrefix(line.Text, rankDirective)
			if !ok {
				continue
			}
			n, err := strconv.Atoi(strings.TrimSpace(rest))
			if err == nil && n > 0 {
				return n, true
			}
		}
	}
	return 0, false
}

// hookField returns a description if expr selects a function-typed
// struct field — the interposition points this analyzer protects.
func (c *checker) hookField(e ast.Expr) (string, bool) {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	s, ok := c.pass.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return "", false
	}
	if _, isFunc := s.Obj().Type().Underlying().(*types.Signature); !isFunc {
		return "", false
	}
	return analysis.ExprPath(sel), true
}

// callsHookDirectly reports whether the body invokes a hook field or a
// local copy of one (ignoring nested function literals).
func (c *checker) callsHookDirectly(body *ast.BlockStmt) bool {
	locals := map[types.Object]bool{}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			for i, r := range n.Rhs {
				if i >= len(n.Lhs) {
					break
				}
				if _, ok := c.hookField(r); ok {
					if id, ok := n.Lhs[i].(*ast.Ident); ok {
						if obj := c.pass.Info.Defs[id]; obj != nil {
							locals[obj] = true
						} else if obj := c.pass.Info.Uses[id]; obj != nil {
							locals[obj] = true
						}
					}
				}
			}
		case *ast.CallExpr:
			if _, ok := c.hookField(n.Fun); ok {
				found = true
				return false
			}
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if obj := c.pass.Info.Uses[id]; obj != nil && locals[obj] {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

// collectHookLocals records local variables assigned from hook fields so
// calls through them are recognized inside lock regions.
func (c *checker) collectHookLocals(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if as, ok := n.(*ast.AssignStmt); ok {
			for i, r := range as.Rhs {
				if i >= len(as.Lhs) {
					break
				}
				desc, ok := c.hookField(r)
				if !ok {
					continue
				}
				if id, ok := as.Lhs[i].(*ast.Ident); ok {
					if obj := c.pass.Info.Defs[id]; obj != nil {
						c.hookLocals[obj] = desc
					} else if obj := c.pass.Info.Uses[id]; obj != nil {
						c.hookLocals[obj] = desc
					}
				}
			}
		}
		return true
	})
}

// mutexRecv returns the normalized path of m in a call m.Lock() and its
// declared rank (0 if unranked) if m's type is sync.Mutex, sync.RWMutex,
// or a package-local ranked wrapper around one.
func (c *checker) mutexRecv(sel *ast.SelectorExpr) (string, int, bool) {
	t := c.pass.Info.TypeOf(sel.X)
	if t == nil {
		return "", 0, false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", 0, false
	}
	if rank, ok := c.ranks[named.Obj()]; ok {
		return analysis.ExprPath(sel.X), rank, true
	}
	if named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" {
		return "", 0, false
	}
	if name := named.Obj().Name(); name != "Mutex" && name != "RWMutex" {
		return "", 0, false
	}
	return analysis.ExprPath(sel.X), 0, true
}

// lockOp classifies a statement as a Lock/Unlock on a mutex path.
func (c *checker) lockOp(call *ast.CallExpr) (path, op string, rank int, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", 0, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock", "TryLock", "TryRLock":
	default:
		return "", "", 0, false
	}
	path, rank, isMu := c.mutexRecv(sel)
	if !isMu {
		return "", "", 0, false
	}
	return path, sel.Sel.Name, rank, true
}

// scanBlock walks statements in order, tracking the held-mutex set, and
// reports hook-like calls made while anything is held.  Nested blocks
// get a copy of the current set: acquisitions inside a branch do not leak
// into the code after it (a deliberate under-approximation).
func (c *checker) scanBlock(block *ast.BlockStmt, heldIn map[string]int) {
	held := map[string]int{}
	for k, v := range heldIn {
		held[k] = v
	}
	for _, stmt := range block.List {
		c.scanStmt(stmt, held)
	}
}

func (c *checker) scanStmt(stmt ast.Stmt, held map[string]int) {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if path, op, rank, ok := c.lockOp(call); ok {
				switch op {
				case "Lock", "RLock":
					c.checkRank(call, path, rank, held)
					held[path] = rank
				case "Unlock", "RUnlock":
					delete(held, path)
				}
				return
			}
		}
		c.checkExpr(s.X, held)
	case *ast.DeferStmt:
		if _, op, _, ok := c.lockOp(s.Call); ok && (op == "Unlock" || op == "RUnlock") {
			// Held to the end of the function; the set stays as-is.
			return
		}
		// Arguments are evaluated now; the deferred body runs at exit,
		// possibly after an unlock — only scan the arguments.
		for _, a := range s.Call.Args {
			c.checkExpr(a, held)
		}
	case *ast.GoStmt:
		for _, a := range s.Call.Args {
			c.checkExpr(a, held)
		}
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			c.checkExpr(r, held)
		}
		for _, l := range s.Lhs {
			c.checkExpr(l, held)
		}
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			c.checkExpr(r, held)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			c.scanStmt(s.Init, held)
		}
		c.checkExpr(s.Cond, held)
		c.scanBlock(s.Body, held)
		if s.Else != nil {
			c.scanStmt(s.Else, held)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			c.scanStmt(s.Init, held)
		}
		if s.Cond != nil {
			c.checkExpr(s.Cond, held)
		}
		c.scanBlock(s.Body, held)
	case *ast.RangeStmt:
		c.checkExpr(s.X, held)
		c.scanBlock(s.Body, held)
	case *ast.SwitchStmt:
		if s.Init != nil {
			c.scanStmt(s.Init, held)
		}
		if s.Tag != nil {
			c.checkExpr(s.Tag, held)
		}
		for _, cc := range s.Body.List {
			if cl, ok := cc.(*ast.CaseClause); ok {
				for _, st := range cl.Body {
					c.scanStmt(st, held)
				}
			}
		}
	case *ast.TypeSwitchStmt:
		for _, cc := range s.Body.List {
			if cl, ok := cc.(*ast.CaseClause); ok {
				for _, st := range cl.Body {
					c.scanStmt(st, held)
				}
			}
		}
	case *ast.SelectStmt:
		for _, cc := range s.Body.List {
			if cl, ok := cc.(*ast.CommClause); ok {
				for _, st := range cl.Body {
					c.scanStmt(st, held)
				}
			}
		}
	case *ast.BlockStmt:
		c.scanBlock(s, held)
	case *ast.SendStmt:
		c.checkExpr(s.Chan, held)
		c.checkExpr(s.Value, held)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						c.checkExpr(v, held)
					}
				}
			}
		}
	case *ast.LabeledStmt:
		c.scanStmt(s.Stmt, held)
	}
}

// checkExpr reports hook-like calls inside e made while an unranked
// mutex is held.  Nested function literals are skipped: they execute
// later.  Ranked locks are exempt from the hook rule — their contents
// are the component's own data path, policed by the rank rule.
func (c *checker) checkExpr(e ast.Expr, held map[string]int) {
	if e == nil || !hasUnranked(held) {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			c.checkCall(n, held)
		}
		return true
	})
}

// checkRank reports an acquisition that violates the declared lock
// hierarchy: while a ranked lock is held, only strictly higher ranks
// may be taken.  Unranked sync mutexes (rank 0) stay outside the rule.
func (c *checker) checkRank(call *ast.CallExpr, path string, rank int, held map[string]int) {
	if rank == 0 {
		return
	}
	for heldPath, heldRank := range held {
		if heldRank == 0 || heldRank < rank {
			continue
		}
		c.pass.Reportf(call.Pos(), "acquiring %s (lockrank %d) while holding %s (lockrank %d) violates the lock hierarchy (acquire in increasing rank order)", path, rank, heldPath, heldRank)
	}
}

// hasUnranked reports whether any plain (rank 0) mutex is held.
func hasUnranked(held map[string]int) bool {
	for _, rank := range held {
		if rank == 0 {
			return true
		}
	}
	return false
}

// heldList names the held unranked mutexes for a hook diagnostic.
func heldList(held map[string]int) string {
	keys := make([]string, 0, len(held))
	for k, rank := range held {
		if rank == 0 {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return strings.Join(keys, ", ")
}

func (c *checker) checkCall(call *ast.CallExpr, held map[string]int) {
	if desc, ok := c.hookField(call.Fun); ok {
		c.pass.Reportf(call.Pos(), "call to hook/interposer field %s while mutex %s is held (hooks may call back or take their own locks)", desc, heldList(held))
		return
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if obj := c.pass.Info.Uses[id]; obj != nil {
			if desc, ok := c.hookLocals[obj]; ok {
				c.pass.Reportf(call.Pos(), "call to hook/interposer %s (via %s) while mutex %s is held", desc, id.Name, heldList(held))
				return
			}
		}
	}
	if callee := analysis.CalleeFunc(c.pass.Info, call); callee != nil && c.mayHook[callee] {
		c.pass.Reportf(call.Pos(), "call to %s, which may invoke a hook/interposer, while mutex %s is held", callee.Name(), heldList(held))
	}
}
