// Package analysistest runs an analyzer over golden fixtures, in the
// style of golang.org/x/tools/go/analysis/analysistest: fixture packages
// live under testdata/src/<name>/ and mark the lines where a diagnostic
// is expected with
//
//	code // want "regexp"
//
// (several `"re"` literals on one line expect several diagnostics).
// Fixtures may import real kit packages — oskit/internal/com and friends
// resolve through compiled export data — so positive fixtures can
// reproduce historical bug shapes against the real interfaces and
// negative fixtures can mirror the fixed code.  //oskit:allow directives
// are honored, so suppression behavior is golden-tested too.
package analysistest

import (
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"oskit/internal/analysis"
)

// expectation is one `// want` entry.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

var wantRE = regexp.MustCompile(`(?:"((?:[^"\\]|\\.)*)"|` + "`([^`]*)`" + `)`)

// Run applies the analyzers to each named fixture package under
// dir/testdata/src and compares diagnostics against the fixtures' want
// comments.
func Run(t *testing.T, analyzers []*analysis.Analyzer, fixtures ...string) {
	t.Helper()
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for _, fixture := range fixtures {
		fixture := fixture
		t.Run(fixture, func(t *testing.T) {
			t.Helper()
			fixtureDir := filepath.Join(cwd, "testdata", "src", fixture)
			prog, err := analysis.LoadFixtureDir(cwd, fixtureDir)
			if err != nil {
				t.Fatalf("loading fixture: %v", err)
			}
			res, err := analysis.Run(prog, analyzers)
			if err != nil {
				t.Fatalf("running analyzers: %v", err)
			}
			wants, err := collectWants(fixtureDir)
			if err != nil {
				t.Fatal(err)
			}
			for _, d := range res.Diagnostics {
				pos := prog.Fset.Position(d.Pos)
				if !match(wants, pos, d.Message) {
					t.Errorf("%s:%d: unexpected diagnostic: [%s] %s", filepath.Base(pos.Filename), pos.Line, d.Analyzer, d.Message)
				}
			}
			for _, w := range wants {
				if !w.matched {
					t.Errorf("%s:%d: expected diagnostic matching %q, got none", filepath.Base(w.file), w.line, w.raw)
				}
			}
		})
	}
}

// collectWants scans the fixture files for `// want` comments.
func collectWants(dir string) ([]*expectation, error) {
	files, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		return nil, err
	}
	var out []*expectation
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		for i, line := range strings.Split(string(data), "\n") {
			// `// want "re"` is the usual form; `/* want "re" */` exists
			// for lines whose line-comment slot is taken by a directive
			// under test (e.g. an //oskit:allow waiver).
			var spec string
			if idx := strings.Index(line, "// want "); idx >= 0 {
				spec = line[idx+len("// want "):]
			} else if idx := strings.Index(line, "/* want "); idx >= 0 {
				spec = line[idx+len("/* want "):]
				if j := strings.Index(spec, "*/"); j >= 0 {
					spec = spec[:j]
				}
			} else {
				continue
			}
			ms := wantRE.FindAllStringSubmatch(spec, -1)
			if len(ms) == 0 {
				return nil, fmt.Errorf("%s:%d: malformed want comment %q", file, i+1, spec)
			}
			for _, m := range ms {
				raw := m[1]
				if raw == "" {
					raw = m[2]
				}
				re, err := regexp.Compile(raw)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad want regexp: %v", file, i+1, err)
				}
				out = append(out, &expectation{file: file, line: i + 1, re: re, raw: raw})
			}
		}
	}
	return out, nil
}

func match(wants []*expectation, pos token.Position, msg string) bool {
	for _, w := range wants {
		if w.matched || w.line != pos.Line || filepath.Base(w.file) != filepath.Base(pos.Filename) {
			continue
		}
		if w.re.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}
