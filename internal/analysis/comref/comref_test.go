package comref_test

import (
	"testing"

	"oskit/internal/analysis"
	"oskit/internal/analysis/analysistest"
	"oskit/internal/analysis/comref"
)

func TestComref(t *testing.T) {
	analysistest.Run(t, []*analysis.Analyzer{comref.Analyzer}, "comreftest")
}
