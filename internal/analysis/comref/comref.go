// Package comref enforces the COM reference rule of paper §4.4.2: a
// successful QueryInterface — or any Get*/Lookup*/First accessor that
// transfers a reference, such as core.Registry.First or
// dev.Framework.LookupByIID — hands the caller one reference that "must
// eventually be Released".
//
// The check is intra-procedural and flow-insensitive: a reference is
// considered satisfied if, anywhere in the acquiring function, it is
// Released (directly or via defer) or it escapes the function — returned,
// passed to another call, stored into a field, map, slice, global, or
// composite literal, or sent on a channel.  What it flags is the shape
// behind the PR 1 storage leaks: an acquired reference that is only ever
// read locally (or discarded outright) and therefore can never be
// Released by anyone.
package comref

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"oskit/internal/analysis"
)

// Analyzer is the comref pass.
var Analyzer = &analysis.Analyzer{
	Name: "comref",
	Doc:  "a COM reference obtained from QueryInterface or a Get*/Lookup*/First accessor must be Released or escape",
	Run:  run,
}

// acquisition is one call that transfers a COM reference into the
// function.
type acquisition struct {
	pos  token.Pos
	desc string
	obj  types.Object // local var holding the reference (nil: discarded)
	// aliases are additional objects holding the same reference (the
	// value vars of ranges over an acquired slice).
	aliases []types.Object
	slice   bool
}

func run(pass *analysis.Pass) error {
	iu := analysis.FindIUnknown(pass.Pkg)
	if iu == nil {
		return nil // package has no COM dependency; nothing to check
	}
	c := &checker{pass: pass, iu: iu}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					c.checkBody(fn.Body)
				}
				return false // checkBody descends into nested FuncLits itself
			}
			return true
		})
	}
	return nil
}

type checker struct {
	pass *analysis.Pass
	iu   *types.Interface
}

// acquisitionOf classifies a call: does it transfer a COM reference to
// the caller?  Returns a description ("QueryInterface(com.DirIID)") and
// whether the transferred value is a slice of references.
func (c *checker) acquisitionOf(call *ast.CallExpr) (desc string, slice, ok bool) {
	fn := analysis.CalleeFunc(c.pass.Info, call)
	if fn == nil {
		return "", false, false
	}
	name := fn.Name()
	transfer := name == "QueryInterface" ||
		strings.HasPrefix(name, "Get") ||
		strings.HasPrefix(name, "Lookup") ||
		name == "First"
	if !transfer {
		return "", false, false
	}
	sig, ok2 := fn.Type().(*types.Signature)
	if !ok2 || sig.Results().Len() == 0 {
		return "", false, false
	}
	res := sig.Results().At(0).Type()
	if analysis.ImplementsIUnknown(res, c.iu) {
		return callDesc(name, call), false, true
	}
	if sl, isSlice := res.Underlying().(*types.Slice); isSlice && analysis.ImplementsIUnknown(sl.Elem(), c.iu) {
		return callDesc(name, call), true, true
	}
	return "", false, false
}

func callDesc(name string, call *ast.CallExpr) string {
	if len(call.Args) == 1 {
		if arg := analysis.ExprPath(call.Args[0]); arg != "?" {
			return name + "(" + arg + ")"
		}
	}
	return name
}

// checkBody analyzes one function body: collect acquisitions, then test
// each for a discharge anywhere in the same body.  Nested function
// literals are checked as their own scopes (a reference acquired in a
// closure must be discharged in that closure or escape it).
func (c *checker) checkBody(body *ast.BlockStmt) {
	var acqs []*acquisition
	objOf := func(e ast.Expr) types.Object {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name == "_" {
			return nil
		}
		if def := c.pass.Info.Defs[id]; def != nil {
			return def
		}
		return c.pass.Info.Uses[id]
	}

	// Pass 1: acquisitions.
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			c.checkBody(n.Body) // separate scope
			return false
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok {
				if desc, _, ok := c.acquisitionOf(call); ok {
					c.pass.Reportf(call.Pos(), "result of %s carries a COM reference but is discarded (never Released)", desc)
				}
				return false // don't re-visit as a plain CallExpr
			}
		case *ast.AssignStmt:
			if len(n.Rhs) != 1 {
				return true
			}
			call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr)
			if !ok {
				return true
			}
			desc, slice, ok := c.acquisitionOf(call)
			if !ok {
				return true
			}
			obj := objOf(n.Lhs[0])
			if obj == nil {
				c.pass.Reportf(call.Pos(), "result of %s carries a COM reference but is assigned to _ (never Released)", desc)
				return true
			}
			acqs = append(acqs, &acquisition{pos: call.Pos(), desc: desc, obj: obj, slice: slice})
		case *ast.RangeStmt:
			call, ok := ast.Unparen(n.X).(*ast.CallExpr)
			if !ok {
				return true
			}
			desc, slice, ok := c.acquisitionOf(call)
			if !ok || !slice {
				return true
			}
			if n.Value == nil {
				c.pass.Reportf(call.Pos(), "ranging over %s drops COM references (elements never Released)", desc)
				return true
			}
			if obj := objOf(n.Value); obj != nil {
				acqs = append(acqs, &acquisition{pos: call.Pos(), desc: desc, obj: obj})
			}
		}
		return true
	})
	if len(acqs) == 0 {
		return
	}

	// Acquired slices that are ranged over transfer the obligation to
	// the range value var: record it as an alias.
	for _, a := range acqs {
		if !a.slice {
			continue
		}
		ast.Inspect(body, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			if id, ok := ast.Unparen(rng.X).(*ast.Ident); ok && c.pass.Info.Uses[id] == a.obj && rng.Value != nil {
				if v := objOf(rng.Value); v != nil {
					a.aliases = append(a.aliases, v)
				}
			}
			return true
		})
	}

	// Pass 2: discharges.
	for _, a := range acqs {
		if !c.discharged(body, a) {
			c.pass.Reportf(a.pos, "COM reference from %s is never Released and does not escape this function", a.desc)
		}
	}
}

// carries reports whether expression e evaluates to the tracked
// reference itself (possibly through parens, a type assertion, an
// address-of, or as an element of a composite literal).  Crucially, a
// call *on* the reference (d.ReadDir(...)) and a comparison (d != nil)
// do not carry it — reading through a reference is not an escape.
func (c *checker) carries(e ast.Expr, objs []types.Object) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		use := c.pass.Info.Uses[e]
		for _, o := range objs {
			if use != nil && use == o {
				return true
			}
		}
	case *ast.TypeAssertExpr:
		return c.carries(e.X, objs)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return c.carries(e.X, objs)
		}
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			if c.carries(el, objs) {
				return true
			}
		}
	}
	return false
}

// discharged reports whether the obligation is met anywhere in body:
// the reference is Released (directly, deferred, or inside a closure
// that captured it) or escapes as a value.
func (c *checker) discharged(body *ast.BlockStmt, a *acquisition) bool {
	objs := append([]types.Object{a.obj}, a.aliases...)
	done := false
	ast.Inspect(body, func(n ast.Node) bool {
		if done {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			// v.Release() — possibly through a type assertion,
			// v.(com.Dir).Release().
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
				if (sel.Sel.Name == "Release" || sel.Sel.Name == "ReleaseAll") && c.carries(sel.X, objs) {
					done = true
					return false
				}
			}
			// v passed to any call: ownership may transfer.
			for _, arg := range n.Args {
				if c.carries(arg, objs) {
					done = true
					return false
				}
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if c.carries(r, objs) {
					done = true
					return false
				}
			}
		case *ast.AssignStmt:
			// v on the right of any assignment other than the
			// no-op `_ = v`: stored somewhere (field, map entry,
			// global, other local, composite literal, ...).
			allBlank := true
			for _, l := range n.Lhs {
				if id, ok := l.(*ast.Ident); !ok || id.Name != "_" {
					allBlank = false
				}
			}
			if allBlank {
				return true
			}
			for _, r := range n.Rhs {
				// Skip the acquiring assignment itself.
				if r.Pos() <= a.pos && a.pos < r.End() {
					continue
				}
				if c.carries(r, objs) {
					done = true
					return false
				}
			}
		case *ast.SendStmt:
			if c.carries(n.Value, objs) {
				done = true
				return false
			}
		}
		return true
	})
	return done
}
