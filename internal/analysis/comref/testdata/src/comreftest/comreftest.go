// Positive fixtures for comref: COM references acquired and then lost —
// the storage-leak shapes fixed by hand in PR 1, here against the real
// kit interfaces.
package comreftest

import (
	"oskit/internal/com"
	"oskit/internal/core"
)

// leakReadOnly acquires an interface, reads through it, and never
// Releases it: the reference can no longer be dropped by anyone.
func leakReadOnly(f com.File) uint64 {
	d, err := f.QueryInterface(com.DirIID) // want `COM reference from QueryInterface\(com\.DirIID\) is never Released`
	if err != nil {
		return 0
	}
	ents, _ := d.(com.Dir).ReadDir(0, 0)
	return uint64(len(ents))
}

// leakDiscarded drops the result on the floor outright.
func leakDiscarded(f com.File) {
	f.QueryInterface(com.DirIID) // want `carries a COM reference but is discarded`
}

// leakBlank assigns the reference to the blank identifier: the probe
// still transfers a reference on success.
func leakBlank(f com.File) bool {
	_, err := f.QueryInterface(com.DirIID) // want `assigned to _`
	return err == nil
}

// leakRegistryFirst loses a registry reference (First hands out one new
// reference per call).
func leakRegistryFirst(reg *core.Registry) bool {
	obj := reg.First(com.StatsIID) // want `COM reference from First\(com\.StatsIID\) is never Released`
	return obj != nil
}

// leakRangeLookup ranges over a Lookup result without releasing the
// elements.
func leakRangeLookup(reg *core.Registry) int {
	n := 0
	for _, obj := range reg.Lookup(com.StatsIID) { // want `COM reference from Lookup\(com\.StatsIID\) is never Released`
		if obj != nil {
			n++
		}
	}
	return n
}

// leakInClosure: each scope is checked on its own, so a closure that
// acquires must discharge inside the closure or escape it.
func leakInClosure(f com.File) func() {
	return func() {
		d, err := f.QueryInterface(com.DirIID) // want `never Released`
		if err == nil && d != nil {
			_ = d.(com.Dir)
		}
	}
}
