// Negative fixtures for comref: every acquisition is Released on some
// path or escapes — the shapes of the code as fixed (libc resolve, the
// rxpoll batch negotiation, fileserver open).
package comreftest

import (
	"oskit/internal/com"
	"oskit/internal/core"
)

type holder struct {
	batch com.NetIOBatch
}

// okDeferRelease is the conventional acquire/defer pattern.
func okDeferRelease(f com.File) ([]com.Dirent, error) {
	d, err := f.QueryInterface(com.DirIID)
	if err != nil {
		return nil, com.ErrNotDir
	}
	defer d.Release()
	return d.(com.Dir).ReadDir(0, 0)
}

// okReleaseThroughAssertion releases via a type assertion on the
// acquired value.
func okReleaseThroughAssertion(f com.File) {
	d, err := f.QueryInterface(com.DirIID)
	if err != nil {
		return
	}
	d.(com.Dir).Release()
}

// okEscapeStore stores the reference into a field: ownership moved (the
// rxpoll §4.4.2 negotiation shape).
func (h *holder) okEscapeStore(recv com.NetIO) {
	if obj, err := recv.QueryInterface(com.NetIOBatchIID); err == nil {
		h.batch = obj.(com.NetIOBatch)
	}
}

// okEscapeReturn returns the reference to the caller.
func okEscapeReturn(f com.File) (com.Dir, error) {
	d, err := f.QueryInterface(com.DirIID)
	if err != nil {
		return nil, err
	}
	return d.(com.Dir), nil
}

// okEscapeArg hands the reference to another function, which may take
// ownership.
func okEscapeArg(f com.File, sink func(com.IUnknown)) {
	d, err := f.QueryInterface(com.DirIID)
	if err != nil {
		return
	}
	sink(d)
}

// okWalkRelease is the libc resolve shape: release the old reference as
// the walk advances, release on every error path.
func okWalkRelease(root com.Dir, parts []string) (com.Dir, error) {
	cur := root
	for _, p := range parts {
		next, err := cur.Lookup(p)
		cur.Release()
		if err != nil {
			return nil, err
		}
		sub, qerr := next.QueryInterface(com.DirIID)
		next.Release()
		if qerr != nil {
			return nil, com.ErrNotDir
		}
		cur = sub.(com.Dir)
	}
	return cur, nil
}

// okRangeRelease releases each element of a Lookup result.
func okRangeRelease(reg *core.Registry) int {
	n := 0
	for _, obj := range reg.Lookup(com.StatsIID) {
		n++
		obj.Release()
	}
	return n
}

// okSliceEscapes returns the acquired slice whole.
func okSliceEscapes(reg *core.Registry) []com.IUnknown {
	return reg.Lookup(com.StatsIID)
}

// okSuppressed documents a deliberate process-lifetime reference.
func okSuppressed(reg *core.Registry) bool {
	//oskit:allow comref -- held for process life by design
	obj := reg.First(com.StatsIID)
	return obj != nil
}
