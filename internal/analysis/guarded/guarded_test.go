package guarded_test

import (
	"testing"

	"oskit/internal/analysis"
	"oskit/internal/analysis/analysistest"
	"oskit/internal/analysis/guarded"
)

func TestGuarded(t *testing.T) {
	analysistest.Run(t, []*analysis.Analyzer{guarded.Analyzer}, "guardedtest")
}
