package guardedtest

import "sync/atomic"

// counters is the per-field //oskit:atomic shape.
type counters struct {
	hits  uint64 //oskit:atomic
	drops uint64 //oskit:atomic
}

// gauges takes the annotation on the type declaration: every field is
// atomic unless it carries its own directive.
//
//oskit:atomic
type gauges struct {
	cur int64
	max int64
}

type dev struct {
	stats counters
	g     gauges
	seq   atomic.Uint32 //oskit:atomic
}

func (d *dev) Bump() {
	atomic.AddUint64(&d.stats.hits, 1) // ok: &f feeds sync/atomic
	atomic.AddInt64(&d.g.max, 1)       // ok: type-level default, same shape
	d.seq.Add(1)                       // ok: methods are atomic.T's own
}

func (d *dev) Racy() {
	d.stats.hits++ // want `non-atomic write of counters\.hits \(//oskit:atomic\): access it via sync/atomic`
}

func (d *dev) Read() uint64 {
	return d.stats.drops // want `non-atomic read of counters\.drops \(//oskit:atomic\)`
}

func (d *dev) TypeLevel() {
	d.g.cur = 3 // want `non-atomic write of gauges\.cur \(//oskit:atomic\)`
}

// Snapshot copies into a local value struct: per-goroutine copies are
// exempt, the shared side still goes through sync/atomic.
func Snapshot(d *dev) counters {
	var out counters
	out.hits = atomic.LoadUint64(&d.stats.hits)
	out.drops = atomic.LoadUint64(&d.stats.drops)
	return out
}
