package guardedtest

var wring ring

// DrainAtShutdown is a reviewed exception: the waiver carries a reason,
// so the suppressed finding stays silent.
func DrainAtShutdown() {
	wring.count = 0 //oskit:allow guarded -- shutdown path runs single-threaded after every worker has joined
}

// ForgotReason shows the waiver-hygiene rule: an //oskit:allow without a
// reason after -- is itself a diagnostic (under the pseudo-analyzer
// "allow"), and no waiver can suppress it.
func ForgotReason() {
	wring.count = 0 /* want `waiver for guarded has no reason` */ //oskit:allow guarded --
}

// absorbAtCall shows that a waiver on a call line absorbs the callee's
// inherited obligation at that site: the finding is reported here (and
// suppressed, marking the waiver used) instead of propagating further.
func absorbAtCall(r *ring) {
	r.bumpLocked() //oskit:allow guarded -- fixture: reviewed lock-free fast path, revalidated by the callee
}

// DriveAbsorb stays clean: if the obligation leaked past the waived
// site, this exported wrapper would report reaching ring.count.
func DriveAbsorb(r *ring) { absorbAtCall(r) }
