// Package guardedtest seeds the single-guard //oskit:guardedby shapes:
// accesses under Lock/defer Unlock/RLock are clean, unlocked accesses to
// package-level state report at the access, wrong-instance locks do not
// satisfy sibling guards, helper functions inherit lock requirements that
// are discharged at call sites or reported in exported entry points, and
// goroutine bodies start from an empty lockset.
package guardedtest

import "sync"

// ring is the single-guard shape: every access to buf/count holds mu.
type ring struct {
	mu    sync.Mutex
	buf   []int //oskit:guardedby mu
	count int   //oskit:guardedby mu
}

func (r *ring) pushLocked(v int) {
	r.mu.Lock()
	r.buf = append(r.buf, v)
	r.count++
	r.mu.Unlock()
}

func (r *ring) pushDeferred(v int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.buf = append(r.buf, v)
	r.count++
}

var gring ring

// BumpGlobal loses the lock: package-level state reports at the access.
func BumpGlobal() {
	gring.count++ // want `write to ring\.count needs gring\.mu held exclusively \(//oskit:guardedby mu\)`
}

// PeekGlobal reads unlocked.
func PeekGlobal() int {
	return gring.count // want `read of ring\.count needs gring\.mu held \(//oskit:guardedby mu\)`
}

// GlobalLocked is the clean version of the two above.
func GlobalLocked(v int) {
	gring.mu.Lock()
	defer gring.mu.Unlock()
	gring.buf = append(gring.buf, v)
	gring.count++
}

// MixedInstances holds a's lock but touches b: sibling guards demand the
// exact instance (the TIME_WAIT-recycle bug shape).
func MixedInstances(a, b *ring) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.count++ // want `exported MixedInstances reaches ring\.count \(//oskit:guardedby mu\) without mu held exclusively`
}

// bumpLocked documents the "caller holds r.mu" convention: the unguarded
// access becomes a requirement discharged at every call site.
func (r *ring) bumpLocked() { r.count++ }

func (r *ring) bumpTwice() {
	r.bumpLocked()
	r.bumpLocked()
}

// BumpSafely discharges bumpTwice's inherited requirement two levels up.
func BumpSafely(r *ring) {
	r.mu.Lock()
	r.bumpTwice()
	r.mu.Unlock()
}

// CallerForgets propagates bumpLocked's requirement into an exported
// function, where callers outside the package can never meet it.
func CallerForgets(r *ring) {
	r.bumpLocked() // want `exported CallerForgets reaches ring\.count \(//oskit:guardedby mu\) without mu held exclusively`
}

// CallSiteReport calls through a caller-local binding: the exact
// instance is untrackable past this frame, so the obligation degrades
// to its type-qualified form and surfaces at the exported boundary.
func CallSiteReport() {
	r := &gring
	r.bumpLocked() // want `exported CallSiteReport reaches ring\.count \(//oskit:guardedby mu\) without a ring\.mu held exclusively`
}

// ringHolder reaches bumpLocked through a non-local binding (a global),
// where the exact path stays expressible: the unmet requirement is
// reported at the call site itself, naming the precise lock.
var ringHolder = &gring

func globalCallNoLock() {
	ringHolder.bumpLocked() // want `call to bumpLocked needs ringHolder\.mu held exclusively: the callee accesses ring\.count \(//oskit:guardedby mu\)`
}

// DriveGlobalCall keeps globalCallNoLock reachable so its site report
// fires (unexported and uncalled would stay silent).
func DriveGlobalCall() { globalCallNoLock() }

// table is the RLock-for-read shape.
type table struct {
	mu sync.RWMutex
	m  map[int]int //oskit:guardedby mu
}

var gtable = table{m: map[int]int{}}

func ReadShared(k int) int {
	gtable.mu.RLock()
	defer gtable.mu.RUnlock()
	return gtable.m[k]
}

func WriteExclusive(k, v int) {
	gtable.mu.Lock()
	defer gtable.mu.Unlock()
	gtable.m[k] = v
}

// WriteShared writes under a read lock: writes need the exclusive side.
func WriteShared(k, v int) {
	gtable.mu.RLock()
	gtable.m[k] = v // want `write to table\.m needs gtable\.mu held exclusively \(//oskit:guardedby mu\)`
	gtable.mu.RUnlock()
}

// DeleteUnlocked hits the mutating-builtin path.
func DeleteUnlocked(k int) {
	delete(gtable.m, k) // want `write to table\.m needs gtable\.mu held exclusively`
}

// SpawnRacy holds the lock, but the goroutine body runs after release:
// function literals start from an empty lockset.
func SpawnRacy() {
	gring.mu.Lock()
	defer gring.mu.Unlock()
	go func() {
		gring.count++ // want `write to ring\.count needs gring\.mu held exclusively`
	}()
}

// Calling a method through a pointer-typed field only loads the
// pointer: a read of the field, never a write — even with a pointer
// receiver on the method.
type sink struct{ n int }

func (k *sink) bump() { k.n++ }

type holder struct {
	mu  sync.Mutex
	out *sink //oskit:guardedby mu
}

var gholder = holder{out: &sink{}}

func UseSinkLocked() {
	gholder.mu.Lock()
	gholder.out.bump()
	gholder.mu.Unlock()
}

func UseSinkUnlocked() {
	gholder.out.bump() // want `read of holder\.out needs gholder\.mu held \(//oskit:guardedby mu\)`
}
