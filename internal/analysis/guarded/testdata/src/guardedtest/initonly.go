package guardedtest

import "sync"

// iface is the configuration shape: addr/mtu are written during
// construction (or reconfiguration under the owner's lock) and read
// unguarded on the hot path.
type iface struct {
	mu   sync.Mutex
	addr uint32 //oskit:initonly
	mtu  int    //oskit:initonly
	txq  []int  //oskit:guardedby mu
}

func NewIface(addr uint32) *iface {
	it := &iface{addr: addr}
	it.mtu = 1500 // ok: constructor by name, object still fresh
	return it
}

// Configure rewrites config under the owner's lock: the sanctioned
// ifconfig shape.
func (it *iface) Configure(mtu int) {
	it.mu.Lock()
	it.mtu = mtu // ok: config write under the owner's lock
	it.mu.Unlock()
}

// Reconfigure writes config with traffic live and no lock.
func (it *iface) Reconfigure(mtu int) {
	it.mtu = mtu // want `write to iface\.mtu outside construction \(//oskit:initonly\)`
}

// MTU reads are free: the field is quiescent after init.
func (it *iface) MTU() int {
	return it.mtu
}

func (it *iface) Enqueue(v int) {
	it.mu.Lock()
	defer it.mu.Unlock()
	it.txq = append(it.txq, v)
}
