package guardedtest

import "sync"

// stack/pcb reproduce the tcpcb-identity pattern: hash entries and pcb
// identity fields are written under BOTH locks (A+B) and read under
// EITHER; state takes the A|B form (any one exclusive hold writes).
type stack struct {
	mu    sync.Mutex
	dmu   sync.RWMutex
	hash  map[uint64]*pcb //oskit:guardedby mu+dmu
	pcbs  []*pcb          //oskit:guardedby mu
	first *pcb
}

type pcb struct {
	mu sync.Mutex
	s  *stack

	laddr uint32  //oskit:guardedby mu+s.mu
	state uint32  //oskit:guardedby mu|s.mu
	seq   uint32  //oskit:guardedby mu
	buf   sockbuf //oskit:guardedby mu
}

// sockbuf's owner lives on another object with no backpointer: any
// holder of a pcb.mu qualifies (the type-qualified form).
type sockbuf struct {
	cc int //oskit:guardedby pcb.mu
}

func (sb *sockbuf) drain(n int) { sb.cc -= n }

func (s *stack) Register(k uint64, tp *pcb) {
	s.mu.Lock()
	tp.mu.Lock()
	s.dmu.Lock()
	s.hash[k] = tp       // ok: write holds both mu and dmu
	tp.laddr = uint32(k) // ok: tp.mu plus an owner-typed stack lock
	s.pcbs = append(s.pcbs, tp)
	s.dmu.Unlock()
	tp.mu.Unlock()
	s.mu.Unlock()
}

func (s *stack) Lookup(k uint64) *pcb {
	s.dmu.RLock()
	tp := s.hash[k] // ok: reads take either guard; dmu shared suffices
	s.dmu.RUnlock()
	return tp
}

// Local reads identity under just one of the two A+B guards.
func (tp *pcb) Local() uint32 {
	tp.mu.Lock()
	defer tp.mu.Unlock()
	return tp.laddr
}

// WriteHashUnderOne holds only one of the two write guards.
func (s *stack) WriteHashUnderOne(k uint64, tp *pcb) {
	s.mu.Lock()
	s.hash[k] = tp // want `exported WriteHashUnderOne reaches stack\.hash \(//oskit:guardedby mu\+dmu\) without dmu held exclusively`
	s.mu.Unlock()
}

// Laddr reads identity with neither lock held.
func Laddr(tp *pcb) uint32 {
	return tp.laddr // want `exported Laddr reaches pcb\.laddr \(//oskit:guardedby mu\+s\.mu\) without one of mu, s\.mu held`
}

// Abort writes the | field under one exclusive hold: enough.
func (s *stack) Abort(tp *pcb) {
	s.mu.Lock()
	tp.state = 9 // ok: s.mu is one of the two any-write guards
	s.mu.Unlock()
}

// AbortShared only has the read side: | writes need an exclusive hold.
func (s *stack) AbortShared(tp *pcb) {
	s.dmu.RLock()
	tp.state = 9 // want `exported AbortShared reaches pcb\.state \(//oskit:guardedby mu\|s\.mu\) without one of mu, s\.mu held exclusively`
	s.dmu.RUnlock()
}

// Consume reaches sockbuf state through its owning pcb's lock: the
// method call on the guarded field and the type-qualified cc guard are
// both satisfied by tp.mu.
func (tp *pcb) Consume(n int) {
	tp.mu.Lock()
	tp.buf.drain(n) // ok: tp.mu satisfies drain's "a pcb.mu holder"
	tp.buf.cc -= n  // ok: type-qualified guard matched by owner type
	tp.mu.Unlock()
}

func (tp *pcb) ConsumeUnlocked(n int) {
	tp.buf.drain(n) // want `exported ConsumeUnlocked reaches pcb\.buf \(//oskit:guardedby mu\) without mu held exclusively` `exported ConsumeUnlocked reaches sockbuf\.cc \(//oskit:guardedby pcb\.mu\) without a pcb\.mu held exclusively`
}

// AliasLocked shows alias canonicalization: tp.mu and s.first.mu are the
// same lock once the local alias is expanded.
func (s *stack) AliasLocked() {
	tp := s.first
	tp.mu.Lock()
	s.first.seq++ // ok: canonical path s.first.mu == tp.mu
	tp.mu.Unlock()
}

// sweepStates ranges the pcb list through locals the callers cannot
// name: the one-of obligation degrades to its type-qualified form and
// travels up, where CountActive's stack lock discharges it.
func (s *stack) sweepStates() int {
	n := 0
	for _, p := range s.pcbs {
		if p.state > 0 {
			n++
		}
	}
	return n
}

func CountActive(s *stack) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sweepStates()
}

// SweepNoLock leaves the degraded obligation unmet all the way to the
// exported boundary.
func SweepNoLock(s *stack) int {
	return s.sweepStates() // want `exported SweepNoLock reaches stack\.pcbs \(//oskit:guardedby mu\) without mu held` `exported SweepNoLock reaches pcb\.state \(//oskit:guardedby mu\|s\.mu\) without one of a pcb\.mu, a stack\.mu held`
}
