package guardedtest

import "sync"

// badspec exercises the malformed-annotation diagnostics: unknown guard
// fields, non-mutex guards, mixed +/| specs, and empty specs all report
// at the directive.
type badspec struct {
	mu sync.Mutex
	a  int //oskit:guardedby lock // want `bad //oskit:guardedby spec "lock": no field "lock" in badspec`
	b  int //oskit:guardedby a // want `bad //oskit:guardedby spec "a": "a" is not a sync\.Mutex/RWMutex \(or a wrapper embedding one\)`
	c  int //oskit:guardedby mu+a|b // want `bad //oskit:guardedby spec "mu\+a\|b": mixing \+ and \| is ambiguous`
	d  int /* want `//oskit:guardedby needs a guard: a field path \(mu, s\.mu\), A\+B, A\|B, or Type\.lock` */ //oskit:guardedby
}
