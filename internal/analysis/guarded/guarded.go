// Package guarded enforces per-field ownership annotations — the
// machine-checked replacement for the prose "field-ownership rules" the
// SMP lock hierarchy used to carry in locks.go.  A struct field (or a
// whole struct, via a directive on the type declaration) declares its
// owner:
//
//	//oskit:guardedby mu          access requires mu held (RLock ok for reads)
//	//oskit:guardedby mu+s.mu     write requires BOTH held exclusively,
//	                              read requires EITHER (the tcpcb-identity
//	                              and Stack.tcpHash pattern)
//	//oskit:guardedby mu|s.mu     write requires ANY ONE held exclusively,
//	                              read requires either
//	//oskit:atomic                access only via sync/atomic (&f is the
//	                              sanctioned shape; direct reads/writes flag)
//	//oskit:initonly              written during construction/configuration
//	                              (before concurrency starts), read unguarded
//
// Guard paths are dotted field paths from the annotated field's owning
// struct ("mu", "s.mu" through a backpointer), or a package-scope type
// qualification ("tcpcb.mu") meaning "the named lock of some instance of
// that type is held" — for state whose owner lives on another object with
// no backpointer (a sockbuf's pcb, a Proc's sleep queue).
//
// The checker tracks locksets intraprocedurally with lockhook's held-mutex
// discipline — Lock/RLock open a region closed by Unlock/RUnlock, defer
// Unlock holds to function end, nested blocks get copies so branch
// acquisitions do not leak — and resolves guards through calls: an
// unguarded access whose base is the function's receiver or a parameter
// becomes a lock *requirement* of that function, discharged at every
// intra-package call site (and propagated transitively when the caller
// passes its own receiver/parameter through).  A requirement that survives
// into an exported function is reported there: callers outside the package
// cannot hold package-internal locks, so exported entry points must
// acquire them.
//
// Deliberate under-approximations, chosen to keep the default tree clean
// without hiding the historical bug shapes: guards reached through a
// backpointer (path length > 1, or a type qualification) may be satisfied
// by any held lock of the matching owner type and field — "tp.mu held"
// satisfies "so.tcp.mu needed" — while sibling guards ("mu") demand an
// exact path match, which is what catches holding the *wrong* instance's
// lock (the TIME_WAIT recycle shape).  Objects still under construction
// are exempt: locals born from composite literals/new/make, plain
// value-struct copies, and writes inside New*/Init*/make-named
// constructors for initonly fields.  Function literals are scanned as
// independent bodies with an empty lockset (they run later, locking for
// themselves), without requirement adoption.  Unexported functions whose
// requirements are never called from package code (test-only helpers;
// test files are excluded from analysis) stay silent.  Cross-package
// field accesses are not checked: annotations live in package syntax.
package guarded

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"oskit/internal/analysis"
)

// Analyzer is the guarded pass.
var Analyzer = &analysis.Analyzer{
	Name: "guarded",
	Doc:  "//oskit:guardedby, //oskit:atomic and //oskit:initonly field-ownership annotations must hold: every access to an annotated field happens under its declared lock(s), via sync/atomic, or before concurrency starts",
	Run:  run,
}

// Annotation directives, recognized in a field's doc or trailing comment
// (or on the struct type declaration, covering every field not carrying
// its own directive).
const (
	guardedByDirective = "//oskit:guardedby"
	atomicDirective    = "//oskit:atomic"
	initOnlyDirective  = "//oskit:initonly"
)

type annKind int

const (
	annGuarded annKind = iota
	annAtomic
	annInitOnly
)

// guardPath is one resolved guard: a dotted field path from the owning
// struct, or a type-qualified lock ("Glue.slpMu").
type guardPath struct {
	raw      string
	segs     []string        // field path from the owning struct (nil if typeQual)
	typeQual bool            // "Type.lock": any holder of that type's lock
	owner    *types.TypeName // named type owning the final lock field
	lock     string          // the lock field's name
}

// fieldAnn is one annotated field.
type fieldAnn struct {
	kind    annKind
	paths   []*guardPath
	all     bool   // "+" spec: writes need every lock; "|"/single: any one
	raw     string // spec text, for diagnostics
	ownerTn *types.TypeName
	strct   string // owning struct name, for diagnostics
	field   string
}

// heldLock is one entry of the lockset: how the lock is held and, for
// owner-type alias matching, whose lock it is.
type heldLock struct {
	write bool
	owner *types.TypeName
	lock  string
}

// need is one lock an access demands: an exact canonical path when the
// base expression is a pure chain, and/or an owner-type match.
type need struct {
	canon string // canonical path ("tp.s.mu"), "" if not expressible
	owner *types.TypeName
	lock  string
}

type needSet struct {
	needs []need
	all   bool
	write bool
}

// relNeed is a need expressed relative to a function's receiver or
// parameter, carried by a requirement.  owner (nil = exact-instance
// only) is the matching discipline; ownTn always records the lock
// field's owning type, so a rebase that loses the exact instance can
// degrade to type matching instead of becoming unsatisfiable.
type relNeed struct {
	rel   []string // path below the target object; nil for type-qualified
	owner *types.TypeName
	ownTn *types.TypeName
	lock  string
}

// requirement: "this function must be entered with these locks held on
// its receiver (-1) or parameter (index)".
type requirement struct {
	target int
	rels   []relNeed
	all    bool
	write  bool
	strct  string
	field  string
	guard  string
	pos    token.Pos
	key    string
}

// callSite is one intra-package static call with the caller's lockset.
type callSite struct {
	caller *funcScan
	call   *ast.CallExpr
	held   map[string]*heldLock
	recv   *argInfo
	args   []*argInfo
}

// argInfo describes one argument (or the receiver) at a call site.
type argInfo struct {
	segs  []string
	root  types.Object
	fresh bool
}

type checker struct {
	pass  *analysis.Pass
	anns  map[token.Pos]*fieldAnn
	reqs  map[*types.Func]map[string]*requirement
	sites map[*types.Func][]*callSite

	// absorb maps filename → lines covered by an //oskit:allow that
	// names this analyzer.  A waived call site absorbs the callee's
	// obligations: the finding is reported there (and suppressed by
	// the driver, marking the waiver used) instead of propagating to
	// every transitive caller.
	absorb map[string]map[int]bool
}

func run(pass *analysis.Pass) error {
	c := &checker{
		pass:   pass,
		anns:   map[token.Pos]*fieldAnn{},
		reqs:   map[*types.Func]map[string]*requirement{},
		sites:  map[*types.Func][]*callSite{},
		absorb: map[string]map[int]bool{},
	}
	c.collectAnnotations()
	c.collectAbsorbs()
	if len(c.anns) == 0 {
		return nil // unannotated package: nothing to track
	}
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pass.Info.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			c.scanFunc(fd, fn)
		}
	}
	c.discharge()
	return nil
}

// collectAbsorbs records the lines covered by //oskit:allow directives
// naming this analyzer, mirroring the driver's coverage rule (the
// directive's own line for trailing comments, the next line for a
// comment above).
func (c *checker) collectAbsorbs() {
	for _, file := range c.pass.Files {
		for _, cg := range file.Comments {
			for _, cm := range cg.List {
				names, _, ok := analysis.ParseAllow(cm.Text)
				if !ok {
					continue
				}
				covers := false
				for _, n := range names {
					if n == "guarded" || n == "all" {
						covers = true
					}
				}
				if !covers {
					continue
				}
				pos := c.pass.Fset.Position(cm.Pos())
				lines := c.absorb[pos.Filename]
				if lines == nil {
					lines = map[int]bool{}
					c.absorb[pos.Filename] = lines
				}
				lines[pos.Line] = true
				lines[pos.Line+1] = true
			}
		}
	}
}

// allowedAt reports whether a diagnostic at pos would be waived.
func (c *checker) allowedAt(pos token.Pos) bool {
	p := c.pass.Fset.Position(pos)
	return c.absorb[p.Filename][p.Line]
}

// --- annotation collection.

func (c *checker) collectAnnotations() {
	for _, file := range c.pass.Files {
		for _, d := range file.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				tn, _ := c.pass.Info.Defs[ts.Name].(*types.TypeName)
				if tn == nil {
					continue
				}
				typeDefault := c.parseDirective(tn, gd.Doc, ts.Doc)
				for _, field := range st.Fields.List {
					ann := c.parseDirective(tn, field.Doc, field.Comment)
					if ann == nil {
						ann = typeDefault
					}
					if ann == nil || len(field.Names) == 0 {
						continue // embedded fields stay unannotated
					}
					for _, name := range field.Names {
						if obj, ok := c.pass.Info.Defs[name].(*types.Var); ok {
							a := *ann
							a.field = obj.Name()
							c.anns[obj.Pos()] = &a
						}
					}
				}
			}
		}
	}
}

// parseDirective finds the first annotation directive in the comment
// groups and resolves it against the owning struct, reporting malformed
// specs in place.  Field name is filled in by the caller.
func (c *checker) parseDirective(tn *types.TypeName, groups ...*ast.CommentGroup) *fieldAnn {
	for _, g := range groups {
		if g == nil {
			continue
		}
		for _, line := range g.List {
			text := line.Text
			switch {
			case text == atomicDirective || strings.HasPrefix(text, atomicDirective+" "):
				return &fieldAnn{kind: annAtomic, ownerTn: tn, strct: tn.Name()}
			case text == initOnlyDirective || strings.HasPrefix(text, initOnlyDirective+" "):
				return &fieldAnn{kind: annInitOnly, ownerTn: tn, strct: tn.Name()}
			case strings.HasPrefix(text, guardedByDirective):
				rest := strings.TrimPrefix(text, guardedByDirective)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue
				}
				spec := strings.TrimSpace(rest)
				if i := strings.Index(spec, " "); i >= 0 {
					spec = spec[:i]
				}
				if spec == "" {
					c.pass.Reportf(line.Pos(), "%s needs a guard: a field path (mu, s.mu), A+B, A|B, or Type.lock", guardedByDirective)
					return nil
				}
				return c.resolveSpec(tn, spec, line.Pos())
			}
		}
	}
	return nil
}

func (c *checker) resolveSpec(tn *types.TypeName, spec string, pos token.Pos) *fieldAnn {
	if strings.Contains(spec, "+") && strings.Contains(spec, "|") {
		c.pass.Reportf(pos, "bad %s spec %q: mixing + and | is ambiguous", guardedByDirective, spec)
		return nil
	}
	ann := &fieldAnn{kind: annGuarded, raw: spec, ownerTn: tn, strct: tn.Name()}
	parts := []string{spec}
	if strings.Contains(spec, "+") {
		ann.all = true
		parts = strings.Split(spec, "+")
	} else if strings.Contains(spec, "|") {
		parts = strings.Split(spec, "|")
	}
	for _, p := range parts {
		gp, err := c.resolvePath(tn, p)
		if err != "" {
			c.pass.Reportf(pos, "bad %s spec %q: %s", guardedByDirective, spec, err)
			return nil
		}
		ann.paths = append(ann.paths, gp)
	}
	return ann
}

// resolvePath validates one guard path against the owning struct (or the
// package scope, for Type.lock qualifications) and records the lock's
// owner type for alias matching.
func (c *checker) resolvePath(tn *types.TypeName, path string) (*guardPath, string) {
	segs := strings.Split(path, ".")
	// A two-segment path whose head is not a field but names a
	// package-scope struct type is a type qualification.
	if len(segs) == 2 && fieldOf(tn.Type(), segs[0]) == nil {
		if qtn, ok := c.pass.Pkg.Scope().Lookup(segs[0]).(*types.TypeName); ok {
			f := fieldOf(qtn.Type(), segs[1])
			if f == nil {
				return nil, fmt.Sprintf("type %s has no field %q", segs[0], segs[1])
			}
			if !isMutexType(f.Type()) {
				return nil, fmt.Sprintf("%s.%s is not a sync.Mutex/RWMutex (or a wrapper embedding one)", segs[0], segs[1])
			}
			return &guardPath{raw: path, typeQual: true, owner: qtn, lock: segs[1]}, ""
		}
	}
	cur := tn.Type()
	ownerTn := tn
	for i, seg := range segs {
		f := fieldOf(cur, seg)
		if f == nil {
			return nil, fmt.Sprintf("no field %q in %s", seg, typeName(cur))
		}
		if i == len(segs)-1 {
			if !isMutexType(f.Type()) {
				return nil, fmt.Sprintf("%q is not a sync.Mutex/RWMutex (or a wrapper embedding one)", path)
			}
		} else {
			cur = f.Type()
			ownerTn = namedTypeName(cur)
		}
	}
	return &guardPath{raw: path, segs: segs, owner: ownerTn, lock: segs[len(segs)-1]}, ""
}

// fieldOf finds a direct field by name in t's underlying struct.
func fieldOf(t types.Type, name string) *types.Var {
	st, ok := deref(t).Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	for i := 0; i < st.NumFields(); i++ {
		if f := st.Field(i); f.Name() == name {
			return f
		}
	}
	return nil
}

func deref(t types.Type) types.Type {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

func namedTypeName(t types.Type) *types.TypeName {
	if n, ok := deref(t).(*types.Named); ok {
		return n.Obj()
	}
	if a, ok := deref(t).(*types.Alias); ok {
		return a.Obj()
	}
	return nil
}

func typeName(t types.Type) string {
	if tn := namedTypeName(t); tn != nil {
		return tn.Name()
	}
	return t.String()
}

// isMutexType reports whether t is sync.Mutex/RWMutex or a struct
// embedding one (the //oskit:lockrank wrapper shape).
func isMutexType(t types.Type) bool {
	t = deref(t)
	if n, ok := t.(*types.Named); ok {
		obj := n.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
			(obj.Name() == "Mutex" || obj.Name() == "RWMutex") {
			return true
		}
	}
	if st, ok := t.Underlying().(*types.Struct); ok {
		for i := 0; i < st.NumFields(); i++ {
			if f := st.Field(i); f.Embedded() && isMutexType(f.Type()) {
				return true
			}
		}
	}
	return false
}

// --- function scanning.

type funcScan struct {
	c       *checker
	fn      *types.Func // nil inside a function literal
	recv    types.Object
	params  []types.Object
	ctor    bool
	lit     bool
	aliases map[types.Object][]string     // local := pure selector chain
	roots   map[types.Object]types.Object // alias's ultimate root object
	fresh   map[types.Object]bool         // locals born from lit/new/make
}

// ctorName reports whether a function name marks construction-time code,
// where initonly writes are legal.
func ctorName(name string) bool {
	if name == "init" {
		return true
	}
	for _, p := range []string{"New", "new", "Init", "init", "Make", "make", "mk"} {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

func (c *checker) scanFunc(fd *ast.FuncDecl, fn *types.Func) {
	fs := &funcScan{
		c: c, fn: fn, ctor: ctorName(fn.Name()),
		aliases: map[types.Object][]string{},
		roots:   map[types.Object]types.Object{},
		fresh:   map[types.Object]bool{},
	}
	if fd.Recv != nil && len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
		fs.recv = c.pass.Info.Defs[fd.Recv.List[0].Names[0]]
	}
	for _, f := range fd.Type.Params.List {
		if len(f.Names) == 0 {
			fs.params = append(fs.params, nil)
			continue
		}
		for _, n := range f.Names {
			fs.params = append(fs.params, c.pass.Info.Defs[n])
		}
	}
	fs.scanBlock(fd.Body, map[string]*heldLock{})
}

// scanLit scans a function literal as an independent body: empty lockset
// (it runs later; it locks for itself), aliases inherited for naming,
// no requirement adoption and no construction-time freshness (the
// enclosing function may have published the objects by the time it runs).
func (c *checker) scanLit(lit *ast.FuncLit, outer *funcScan) {
	fs := &funcScan{
		c: c, lit: true,
		aliases: map[types.Object][]string{},
		roots:   map[types.Object]types.Object{},
		fresh:   map[types.Object]bool{},
	}
	for k, v := range outer.aliases {
		fs.aliases[k] = v
	}
	for k, v := range outer.roots {
		fs.roots[k] = v
	}
	fs.scanBlock(lit.Body, map[string]*heldLock{})
}

func (fs *funcScan) targetOf(o types.Object) (int, bool) {
	if o == nil || fs.lit {
		return 0, false
	}
	if o == fs.recv && o != nil {
		return -1, true
	}
	for i, p := range fs.params {
		if p != nil && p == o {
			return i, true
		}
	}
	return 0, false
}

// chain decomposes a pure selector chain into segments and its root
// identifier; returns nil segments for any other shape.
func (fs *funcScan) chain(e ast.Expr) ([]string, *ast.Ident) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return []string{e.Name}, e
	case *ast.SelectorExpr:
		segs, root := fs.chain(e.X)
		if segs == nil {
			return nil, nil
		}
		return append(segs, e.Sel.Name), root
	case *ast.StarExpr:
		return fs.chain(e.X)
	}
	return nil, nil
}

// canon renders e as a canonical dotted path with local aliases expanded
// (tp := so.tcp makes "tp.mu" canonical as "so.tcp.mu"), plus the
// ultimate root object.  Non-pure shapes return nil segments.
func (fs *funcScan) canon(e ast.Expr) ([]string, types.Object) {
	segs, rootID := fs.chain(e)
	if segs == nil {
		return nil, nil
	}
	root := fs.c.objOf(rootID)
	if root == nil {
		return segs, nil
	}
	if pre, ok := fs.aliases[root]; ok {
		out := append(append([]string{}, pre...), segs[1:]...)
		return out, fs.roots[root]
	}
	return segs, root
}

func (c *checker) objOf(id *ast.Ident) types.Object {
	if o := c.pass.Info.Uses[id]; o != nil {
		return o
	}
	return c.pass.Info.Defs[id]
}

// freshExpr reports expressions that build a new, unpublished object.
func freshExpr(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			_, ok := ast.Unparen(e.X).(*ast.CompositeLit)
			return ok
		}
	case *ast.CallExpr:
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
			return id.Name == "new" || id.Name == "make"
		}
	}
	return false
}

// valueLocal reports whether o is a function-local variable (or value
// parameter/receiver) holding a plain struct value: a per-goroutine copy
// whose fields cannot race.
func (fs *funcScan) valueLocal(o types.Object) bool {
	v, ok := o.(*types.Var)
	if !ok || v.IsField() {
		return false
	}
	if v.Parent() == fs.c.pass.Pkg.Scope() {
		return false // package-level state is shared
	}
	switch v.Type().Underlying().(type) {
	case *types.Struct, *types.Basic, *types.Array:
		return true
	}
	return false
}

// --- the lockset-tracking statement walk (lockhook's discipline plus
// IncDec, mutating builtins and write-mode propagation).

func copyHeld(in map[string]*heldLock) map[string]*heldLock {
	out := make(map[string]*heldLock, len(in))
	for k, v := range in {
		out[k] = v
	}
	return out
}

func (fs *funcScan) scanBlock(block *ast.BlockStmt, heldIn map[string]*heldLock) {
	held := copyHeld(heldIn)
	for _, stmt := range block.List {
		fs.scanStmt(stmt, held)
	}
}

// lockOp classifies call as Lock/Unlock family on a mutex-typed
// receiver, returning the canonical lock path and owner identity.
func (fs *funcScan) lockOp(call *ast.CallExpr) (path string, h *heldLock, op string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", nil, "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock", "TryLock", "TryRLock":
	default:
		return "", nil, "", false
	}
	t := fs.c.pass.Info.TypeOf(sel.X)
	if t == nil || !isMutexType(t) {
		return "", nil, "", false
	}
	segs, _ := fs.canon(sel.X)
	if segs == nil {
		segs = []string{analysis.ExprPath(sel.X)}
	}
	h = &heldLock{lock: segs[len(segs)-1]}
	if s2, ok := ast.Unparen(sel.X).(*ast.SelectorExpr); ok {
		if ot := fs.c.pass.Info.TypeOf(s2.X); ot != nil {
			h.owner = namedTypeName(ot)
		}
	}
	return strings.Join(segs, "."), h, sel.Sel.Name, true
}

func (fs *funcScan) scanStmt(stmt ast.Stmt, held map[string]*heldLock) {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if path, h, op, ok := fs.lockOp(call); ok {
				switch op {
				case "Lock", "TryLock":
					h.write = true
					held[path] = h
				case "RLock", "TryRLock":
					held[path] = h
				case "Unlock", "RUnlock":
					delete(held, path)
				}
				return
			}
		}
		fs.visit(s.X, held, false)
	case *ast.IncDecStmt:
		fs.visit(s.X, held, true)
	case *ast.DeferStmt:
		if _, _, op, ok := fs.lockOp(s.Call); ok && (op == "Unlock" || op == "RUnlock") {
			return // held to the end of the function
		}
		// The deferred call runs at exit; defer-unlocked locks are still
		// held there, explicitly-unlocked ones may not be — recording the
		// current set is the usual case (defers pair with defer Unlock).
		fs.visitCall(s.Call, held)
	case *ast.GoStmt:
		// The goroutine runs outside this critical section: record its
		// callee with an empty lockset.
		fs.visitCallHeld(s.Call, held, map[string]*heldLock{})
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			fs.visit(r, held, false)
		}
		for _, l := range s.Lhs {
			if id, ok := l.(*ast.Ident); ok && id.Name == "_" {
				continue
			}
			fs.visit(l, held, true)
		}
		fs.recordLocals(s)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			fs.visit(r, held, false)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			fs.scanStmt(s.Init, held)
		}
		fs.visit(s.Cond, held, false)
		fs.scanBlock(s.Body, held)
		if s.Else != nil {
			fs.scanStmt(s.Else, held)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			fs.scanStmt(s.Init, held)
		}
		if s.Cond != nil {
			fs.visit(s.Cond, held, false)
		}
		if s.Post != nil {
			fs.scanStmt(s.Post, held)
		}
		fs.scanBlock(s.Body, held)
	case *ast.RangeStmt:
		fs.visit(s.X, held, false)
		fs.scanBlock(s.Body, held)
	case *ast.SwitchStmt:
		if s.Init != nil {
			fs.scanStmt(s.Init, held)
		}
		if s.Tag != nil {
			fs.visit(s.Tag, held, false)
		}
		for _, cc := range s.Body.List {
			if cl, ok := cc.(*ast.CaseClause); ok {
				inner := copyHeld(held)
				for _, st := range cl.Body {
					fs.scanStmt(st, inner)
				}
			}
		}
	case *ast.TypeSwitchStmt:
		for _, cc := range s.Body.List {
			if cl, ok := cc.(*ast.CaseClause); ok {
				inner := copyHeld(held)
				for _, st := range cl.Body {
					fs.scanStmt(st, inner)
				}
			}
		}
	case *ast.SelectStmt:
		for _, cc := range s.Body.List {
			if cl, ok := cc.(*ast.CommClause); ok {
				inner := copyHeld(held)
				for _, st := range cl.Body {
					fs.scanStmt(st, inner)
				}
			}
		}
	case *ast.BlockStmt:
		fs.scanBlock(s, held)
	case *ast.SendStmt:
		fs.visit(s.Chan, held, false)
		fs.visit(s.Value, held, false)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						fs.visit(v, held, false)
					}
				}
			}
		}
	case *ast.LabeledStmt:
		fs.scanStmt(s.Stmt, held)
	}
}

// recordLocals updates the alias and freshness maps after an assignment.
func (fs *funcScan) recordLocals(s *ast.AssignStmt) {
	if len(s.Lhs) != len(s.Rhs) {
		return
	}
	for i, l := range s.Lhs {
		id, ok := l.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		obj := fs.c.objOf(id)
		if obj == nil {
			continue
		}
		delete(fs.aliases, obj)
		delete(fs.roots, obj)
		delete(fs.fresh, obj)
		r := ast.Unparen(s.Rhs[i])
		if freshExpr(r) {
			fs.fresh[obj] = true
			continue
		}
		// tp := so.tcp (and sb := &tp.sndBuf) make tp/sb aliases.
		target := r
		if ue, ok := r.(*ast.UnaryExpr); ok && ue.Op == token.AND {
			target = ast.Unparen(ue.X)
		}
		if _, isSel := target.(*ast.SelectorExpr); isSel {
			if segs, root := fs.canon(target); segs != nil && root != nil {
				fs.aliases[obj] = segs
				fs.roots[obj] = root
				if fs.fresh[root] {
					fs.fresh[obj] = true
				}
			}
		}
	}
}

// --- expression walk.

type accessKind int

const (
	accessNormal accessKind = iota
	accessAddr
	accessRecv
)

func (fs *funcScan) visit(e ast.Expr, held map[string]*heldLock, write bool) {
	switch e := e.(type) {
	case nil:
	case *ast.Ident, *ast.BasicLit:
	case *ast.SelectorExpr:
		fs.checkAccess(e, held, write, accessNormal)
		// A write lands on the selected field; it propagates to the
		// base only through value embedding.  A pointer-typed base is
		// merely loaded — the write mutates the pointee, not the base.
		if write {
			if _, isPtr := fs.c.pass.Info.TypeOf(e.X).Underlying().(*types.Pointer); isPtr {
				write = false
			}
		}
		fs.visit(e.X, held, write)
	case *ast.StarExpr:
		fs.visit(e.X, held, write)
	case *ast.ParenExpr:
		fs.visit(e.X, held, write)
	case *ast.IndexExpr:
		fs.visit(e.X, held, write)
		fs.visit(e.Index, held, false)
	case *ast.IndexListExpr:
		fs.visit(e.X, held, write)
	case *ast.SliceExpr:
		fs.visit(e.X, held, write)
		fs.visit(e.Low, held, false)
		fs.visit(e.High, held, false)
		fs.visit(e.Max, held, false)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			if sel, ok := ast.Unparen(e.X).(*ast.SelectorExpr); ok {
				fs.checkAccess(sel, held, true, accessAddr)
				fs.visit(sel.X, held, false)
				return
			}
		}
		fs.visit(e.X, held, false)
	case *ast.BinaryExpr:
		fs.visit(e.X, held, false)
		fs.visit(e.Y, held, false)
	case *ast.CallExpr:
		fs.visitCall(e, held)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				fs.visit(kv.Key, held, false)
				fs.visit(kv.Value, held, false)
				continue
			}
			fs.visit(el, held, false)
		}
	case *ast.KeyValueExpr:
		fs.visit(e.Key, held, false)
		fs.visit(e.Value, held, false)
	case *ast.TypeAssertExpr:
		fs.visit(e.X, held, false)
	case *ast.FuncLit:
		fs.c.scanLit(e, fs)
	}
}

func (fs *funcScan) visitCall(call *ast.CallExpr, held map[string]*heldLock) {
	fs.visitCallHeld(call, held, held)
}

// visitCallHeld walks a call's operands under `held` but records the
// call site with `siteHeld` (empty for go statements: the callee runs
// outside the caller's critical section).
func (fs *funcScan) visitCallHeld(call *ast.CallExpr, held, siteHeld map[string]*heldLock) {
	info := fs.c.pass.Info
	// Mutating builtins write their first argument.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			for i, a := range call.Args {
				w := i == 0 && (b.Name() == "delete" || b.Name() == "clear" || b.Name() == "copy")
				fs.visit(a, held, w)
			}
			return
		}
	}
	var recvExpr ast.Expr
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s, ok := info.Selections[sel]; ok {
			switch s.Kind() {
			case types.MethodVal:
				recvExpr = sel.X
				if rsel, ok := ast.Unparen(sel.X).(*ast.SelectorExpr); ok {
					// A guarded field used as method receiver: pointer
					// receivers may mutate, value receivers only read.
					// A field that is itself a pointer is only loaded —
					// the method mutates the pointee, not the field.
					w := ptrRecv(s.Obj())
					if _, isPtr := info.TypeOf(rsel).Underlying().(*types.Pointer); isPtr {
						w = false
					}
					fs.checkAccess(rsel, held, w, accessRecv)
					fs.visit(rsel.X, held, false)
				} else {
					fs.visit(sel.X, held, false)
				}
			case types.FieldVal:
				// Calling a function-typed field reads the field.
				fs.checkAccess(sel, held, false, accessNormal)
				fs.visit(sel.X, held, false)
			default:
				fs.visit(sel.X, held, false)
			}
		}
		// Package-qualified calls (atomic.AddUint64): nothing to check
		// on the Fun itself.
	} else {
		fs.visit(call.Fun, held, false)
	}
	for _, a := range call.Args {
		fs.visit(a, held, false)
	}
	// Record intra-package static call sites for requirement discharge.
	callee := analysis.CalleeFunc(info, call)
	if callee == nil || callee.Pkg() != fs.c.pass.Pkg {
		return
	}
	site := &callSite{caller: fs, call: call, held: copyHeld(siteHeld)}
	if recvExpr != nil {
		site.recv = fs.argInfoOf(recvExpr)
	}
	for _, a := range call.Args {
		site.args = append(site.args, fs.argInfoOf(a))
	}
	fs.c.sites[callee] = append(fs.c.sites[callee], site)
}

func ptrRecv(obj types.Object) bool {
	f, ok := obj.(*types.Func)
	if !ok {
		return true
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return true
	}
	_, isPtr := sig.Recv().Type().(*types.Pointer)
	return isPtr
}

func (fs *funcScan) argInfoOf(e ast.Expr) *argInfo {
	if ue, ok := ast.Unparen(e).(*ast.UnaryExpr); ok && ue.Op == token.AND {
		e = ue.X
	}
	segs, root := fs.canon(e)
	fresh := freshExpr(e) || (root != nil && fs.fresh[root])
	return &argInfo{segs: segs, root: root, fresh: fresh}
}

// --- the access check.

func (fs *funcScan) checkAccess(sel *ast.SelectorExpr, held map[string]*heldLock, write bool, kind accessKind) {
	s, ok := fs.c.pass.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return
	}
	ann := fs.c.anns[s.Obj().Pos()]
	if ann == nil {
		return
	}
	baseSegs, baseRoot := fs.canon(sel.X)
	if baseRoot != nil && (fs.fresh[baseRoot] || fs.valueLocal(baseRoot)) {
		return // object under construction or a per-goroutine value copy
	}
	if freshExpr(sel.X) {
		return
	}
	switch ann.kind {
	case annAtomic:
		if kind == accessAddr || kind == accessRecv {
			return // &f feeds sync/atomic; methods are atomic.T's own
		}
		fs.c.pass.Reportf(sel.Sel.Pos(), "non-atomic %s of %s.%s (%s): access it via sync/atomic",
			rw(write), ann.strct, ann.field, atomicDirective)
	case annInitOnly:
		if !write {
			return // reads are free: the field is quiescent after init
		}
		if fs.ctor || fs.lockOnBase(held, baseSegs, ann.ownerTn) {
			return
		}
		fs.c.pass.Reportf(sel.Sel.Pos(), "write to %s.%s outside construction (%s): config fields are written before traffic, or under one of the owner's locks",
			ann.strct, ann.field, initOnlyDirective)
	case annGuarded:
		w := write || kind == accessAddr
		ns := buildNeeds(ann, baseSegs, w)
		if satisfied(held, ns) {
			return
		}
		// For an A+B write with one side acquired locally (the
		// tcpHash shape: demuxMu taken inline, Stack.mu inherited),
		// only the unmet conjuncts travel to the callers.
		paths := ann.paths
		if ns.all && w {
			paths = nil
			for i, n := range ns.needs {
				if !matchNeed(held, n, true) {
					paths = append(paths, ann.paths[i])
				}
			}
		}
		// A waiver on the access line absorbs the obligation: report
		// here (the driver suppresses it and counts the waiver used)
		// rather than pushing the requirement onto every caller.
		if fs.c.allowedAt(sel.Sel.Pos()) {
			fs.c.pass.Reportf(sel.Sel.Pos(), "%s %s.%s needs %s (%s %s)",
				rwTo(w), ann.strct, ann.field, describe(ns), guardedByDirective, ann.raw)
			return
		}
		if baseRoot != nil && baseSegs != nil {
			if t, ok := fs.targetOf(baseRoot); ok {
				fs.c.addReq(fs.fn, reqFor(ann, paths, t, baseSegs, w, sel.Sel.Pos()))
				return // the obligation moves to this function's callers
			}
		}
		// A function-local base the callers cannot name (a ranged
		// element, a map value, a lookup result): the exact-instance
		// discipline is untrackable, so the obligation degrades to its
		// type-qualified form and still travels up the call graph.
		// Package-level vars stay exact: their path is globally
		// meaningful, so the precise report here beats a degraded one.
		if fs.fn != nil && isFuncLocal(baseRoot) {
			if r := ambientReq(ann, paths, w, sel.Sel.Pos()); r != nil {
				fs.c.addReq(fs.fn, r)
				return
			}
		}
		fs.c.pass.Reportf(sel.Sel.Pos(), "%s %s.%s needs %s (%s %s)",
			rwTo(w), ann.strct, ann.field, describe(ns), guardedByDirective, ann.raw)
	}
}

func rw(write bool) string {
	if write {
		return "write"
	}
	return "read"
}

func rwTo(write bool) string {
	if write {
		return "write to"
	}
	return "read of"
}

// lockOnBase reports whether any held lock plausibly belongs to the
// accessed object: a lock under the base path, or any lock whose owner
// is the annotated struct type (the Ifconfig-holds-s.mu shape).
func (fs *funcScan) lockOnBase(held map[string]*heldLock, baseSegs []string, ownerTn *types.TypeName) bool {
	prefix := ""
	if baseSegs != nil {
		prefix = strings.Join(baseSegs, ".") + "."
	}
	for path, h := range held {
		if prefix != "" && strings.HasPrefix(path, prefix) {
			return true
		}
		if h.owner != nil && h.owner == ownerTn {
			return true
		}
	}
	return false
}

func buildNeeds(ann *fieldAnn, baseSegs []string, write bool) *needSet {
	ns := &needSet{all: ann.all, write: write}
	base := ""
	if baseSegs != nil {
		base = strings.Join(baseSegs, ".")
	}
	for _, gp := range ann.paths {
		n := need{lock: gp.lock}
		if !gp.typeQual && base != "" {
			n.canon = base + "." + strings.Join(gp.segs, ".")
		}
		// Backpointer and type-qualified guards accept any holder of the
		// owner type's lock; sibling guards ("mu") demand the exact
		// instance — unless the base is inexpressible, where the type
		// match is the only handle left.
		if gp.typeQual || len(gp.segs) > 1 || base == "" {
			n.owner = gp.owner
		}
		ns.needs = append(ns.needs, n)
	}
	return ns
}

func matchNeed(held map[string]*heldLock, n need, write bool) bool {
	if n.canon != "" {
		if h := held[n.canon]; h != nil && (h.write || !write) {
			return true
		}
	}
	if n.owner != nil {
		for _, h := range held {
			if h.owner == n.owner && h.lock == n.lock && (h.write || !write) {
				return true
			}
		}
	}
	return false
}

func satisfied(held map[string]*heldLock, ns *needSet) bool {
	if ns.all && ns.write {
		for _, n := range ns.needs {
			if !matchNeed(held, n, true) {
				return false
			}
		}
		return true
	}
	for _, n := range ns.needs {
		if matchNeed(held, n, ns.write) {
			return true
		}
	}
	return false
}

func describe(ns *needSet) string {
	var parts []string
	for _, n := range ns.needs {
		switch {
		case n.canon != "":
			parts = append(parts, n.canon)
		case n.owner != nil:
			parts = append(parts, "a "+n.owner.Name()+"."+n.lock)
		default:
			parts = append(parts, n.lock)
		}
	}
	switch {
	case len(parts) == 1 && ns.write:
		return parts[0] + " held exclusively"
	case len(parts) == 1:
		return parts[0] + " held"
	case ns.all && ns.write:
		return "all of " + strings.Join(parts, ", ") + " held exclusively"
	case ns.write:
		return "one of " + strings.Join(parts, ", ") + " held exclusively"
	default:
		return "one of " + strings.Join(parts, ", ") + " held"
	}
}

// --- requirements: guard obligations discharged at call sites.

func reqFor(ann *fieldAnn, paths []*guardPath, target int, baseSegs []string, write bool, pos token.Pos) *requirement {
	r := &requirement{
		target: target, all: ann.all && len(paths) > 1, write: write,
		strct: ann.strct, field: ann.field, guard: ann.raw, pos: pos,
	}
	below := baseSegs[1:] // path from the target object down to the base
	for _, gp := range paths {
		rn := relNeed{owner: gp.owner, ownTn: gp.owner, lock: gp.lock}
		if !gp.typeQual {
			rn.rel = append(append([]string{}, below...), gp.segs...)
			if len(gp.segs) == 1 && len(below) == 0 {
				// Sibling guard rooted directly at the target keeps its
				// exact-instance discipline at call sites too.
				rn.owner = nil
			}
		}
		r.rels = append(r.rels, rn)
	}
	var keys []string
	for _, rn := range r.rels {
		o := ""
		if rn.owner != nil {
			o = rn.owner.Name()
		}
		keys = append(keys, strings.Join(rn.rel, ".")+"@"+o+"."+rn.lock)
	}
	r.key = fmt.Sprintf("%d|%v|%v|%s", target, write, r.all, strings.Join(keys, "&"))
	return r
}

// isFuncLocal reports whether o is a variable declared inside some
// function body (not a package-level var, parameter, or field).
func isFuncLocal(o types.Object) bool {
	v, ok := o.(*types.Var)
	if !ok || v.IsField() {
		return false
	}
	scope := v.Parent()
	if scope == nil {
		return false
	}
	return scope != v.Pkg().Scope() && scope.Parent() != types.Universe
}

// ambientReq expresses an obligation on an object the function's
// callers cannot name: every guard degrades to "any holder of the
// owner type's lock" (target -2, no argument binding).  Nil if some
// guard has no named owner to degrade to.
func ambientReq(ann *fieldAnn, paths []*guardPath, write bool, pos token.Pos) *requirement {
	r := &requirement{
		target: -2, all: ann.all && len(paths) > 1, write: write,
		strct: ann.strct, field: ann.field, guard: ann.raw, pos: pos,
	}
	var keys []string
	for _, gp := range paths {
		if gp.owner == nil {
			return nil
		}
		r.rels = append(r.rels, relNeed{owner: gp.owner, ownTn: gp.owner, lock: gp.lock})
		keys = append(keys, "@"+gp.owner.Name()+"."+gp.lock)
	}
	r.key = fmt.Sprintf("-2|%v|%v|%s", write, r.all, strings.Join(keys, "&"))
	return r
}

// ambientFromRels degrades a rebased requirement the same way: every
// remaining rel becomes "any holder of the owner type's lock".  Nil if
// some rel lacks a recorded owner type.
func ambientFromRels(rels []relNeed, r *requirement, pos token.Pos) *requirement {
	nr := &requirement{
		target: -2, all: r.all && len(rels) > 1, write: r.write,
		strct: r.strct, field: r.field, guard: r.guard, pos: pos,
	}
	var keys []string
	for _, rn := range rels {
		if rn.ownTn == nil {
			return nil
		}
		nr.rels = append(nr.rels, relNeed{owner: rn.ownTn, ownTn: rn.ownTn, lock: rn.lock})
		keys = append(keys, "@"+rn.ownTn.Name()+"."+rn.lock)
	}
	nr.key = fmt.Sprintf("-2|%v|%v|%s", nr.write, nr.all, strings.Join(keys, "&"))
	return nr
}

func (c *checker) addReq(fn *types.Func, r *requirement) bool {
	if fn == nil {
		return false
	}
	m := c.reqs[fn]
	if m == nil {
		m = map[string]*requirement{}
		c.reqs[fn] = m
	}
	if _, ok := m[r.key]; ok {
		return false
	}
	m[r.key] = r
	return true
}

// needsAt instantiates a requirement's needs at a call site argument.
func needsAt(r *requirement, ai *argInfo) *needSet {
	ns := &needSet{all: r.all, write: r.write}
	base := ""
	if ai != nil && ai.segs != nil {
		base = strings.Join(ai.segs, ".")
	}
	for _, rn := range r.rels {
		n := need{owner: rn.owner, lock: rn.lock}
		if rn.rel != nil && base != "" {
			n.canon = base + "." + strings.Join(rn.rel, ".")
		}
		if base == "" && n.owner == nil && rn.owner != nil {
			n.owner = rn.owner
		}
		ns.needs = append(ns.needs, n)
	}
	return ns
}

// discharge checks every requirement against every recorded call site,
// propagating through callers that pass their own receiver or parameters,
// until the obligation is met, reported at an unsatisfiable site, or
// surfaces in an exported function.
func (c *checker) discharge() {
	type siteReq struct {
		site *callSite
		key  string
	}
	done := map[siteReq]bool{}
	for changed := true; changed; {
		changed = false
		for fn, reqs := range c.reqs {
			for _, site := range c.sites[fn] {
				for key, r := range reqs {
					sr := siteReq{site, key}
					if done[sr] {
						continue
					}
					done[sr] = true
					ai := site.recv
					if r.target >= 0 {
						if r.target >= len(site.args) {
							continue // variadic/mismatched shape: skip
						}
						ai = site.args[r.target]
					}
					if r.target == -2 {
						ai = nil // ambient: type-qualified, no binding
					} else if ai == nil || ai.fresh {
						continue
					}
					ns := needsAt(r, ai)
					if satisfied(site.held, ns) {
						continue
					}
					// An all-form obligation partially met here only
					// propagates its unmet conjuncts.
					rels := r.rels
					if r.all && r.write {
						rels = nil
						for i, n := range ns.needs {
							if !matchNeed(site.held, n, true) {
								rels = append(rels, r.rels[i])
							}
						}
					}
					// A waiver on the call line absorbs the callee's
					// obligations at this site: report here (the
					// driver suppresses it, marking the waiver used)
					// instead of propagating further up.
					if c.allowedAt(site.call.Pos()) {
						c.pass.Reportf(site.call.Pos(), "call to %s needs %s: the callee accesses %s.%s (%s %s)",
							fn.Name(), describe(ns), r.strct, r.field, guardedByDirective, r.guard)
						continue
					}
					if r.target == -2 && site.caller != nil && site.caller.fn != nil {
						// Ambient obligations forward unchanged: they
						// carry no argument binding to rebase.
						nr := &requirement{
							target: -2, all: r.all && len(rels) > 1, write: r.write,
							strct: r.strct, field: r.field, guard: r.guard,
							pos: site.call.Pos(), rels: rels,
						}
						var keys []string
						for _, rn := range nr.rels {
							keys = append(keys, "@"+rn.owner.Name()+"."+rn.lock)
						}
						nr.key = fmt.Sprintf("-2|%v|%v|%s", r.write, nr.all, strings.Join(keys, "&"))
						if c.addReq(site.caller.fn, nr) {
							changed = true
						}
						continue
					}
					if ai != nil && ai.root != nil && ai.segs != nil && site.caller != nil {
						if t, ok := site.caller.targetOf(ai.root); ok {
							nr := &requirement{
								target: t, all: r.all && len(rels) > 1, write: r.write,
								strct: r.strct, field: r.field, guard: r.guard,
								pos: site.call.Pos(),
							}
							below := ai.segs[1:]
							for _, rn := range rels {
								nrn := relNeed{owner: rn.owner, ownTn: rn.ownTn, lock: rn.lock}
								if rn.rel != nil {
									nrn.rel = append(append([]string{}, below...), rn.rel...)
								}
								if len(below) > 0 && nrn.owner == nil {
									// Rebasing through an intermediate
									// field loses the exact instance;
									// fall back to owner-type matching.
									nrn.owner = rn.ownTn
								}
								nr.rels = append(nr.rels, nrn)
							}
							var keys []string
							for _, rn := range nr.rels {
								o := ""
								if rn.owner != nil {
									o = rn.owner.Name()
								}
								keys = append(keys, strings.Join(rn.rel, ".")+"@"+o+"."+rn.lock)
							}
							nr.key = fmt.Sprintf("%d|%v|%v|%s", t, r.write, r.all, strings.Join(keys, "&"))
							if c.addReq(site.caller.fn, nr) {
								changed = true
							}
							continue
						}
						if isFuncLocal(ai.root) && site.caller.fn != nil {
							// A caller-local binding (range element,
							// lookup result): degrade the unmet
							// obligation to its type-qualified form and
							// keep walking the call graph.
							if nr := ambientFromRels(rels, r, site.call.Pos()); nr != nil {
								if c.addReq(site.caller.fn, nr) {
									changed = true
								}
								continue
							}
						}
					}
					c.pass.Reportf(site.call.Pos(), "call to %s needs %s: the callee accesses %s.%s (%s %s)",
						fn.Name(), describe(ns), r.strct, r.field, guardedByDirective, r.guard)
				}
			}
		}
	}
	// Requirements surviving in exported functions can never be met:
	// callers outside the package cannot hold package-internal locks.
	for fn, reqs := range c.reqs {
		if !ast.IsExported(fn.Name()) {
			continue // unexported and uncalled stays silent (test-only helpers)
		}
		for _, r := range reqs {
			ns := &needSet{all: r.all, write: r.write}
			for _, rn := range r.rels {
				n := need{owner: rn.owner, lock: rn.lock}
				if rn.rel != nil {
					n.canon = strings.Join(rn.rel, ".")
				}
				ns.needs = append(ns.needs, n)
			}
			c.pass.Reportf(r.pos, "exported %s reaches %s.%s (%s %s) without %s: acquire the lock inside the exported entry point",
				fn.Name(), r.strct, r.field, guardedByDirective, r.guard, describe(ns))
		}
	}
}
