// Package guidreg audits the GUID namespace that §4.4.2's interface
// negotiation depends on.  QueryInterface dispatches purely on GUID
// value, so two interfaces sharing an IID silently alias each other: the
// query succeeds and hands back the wrong contract.  The analyzer sees
// the whole program at once and enforces:
//
//   - every com.NewGUID call is built from compile-time constants (a GUID
//     computed at run time cannot be audited or compared across builds);
//   - every GUID is registered exactly once: each literal lives in a
//     single package-level var (the registration), and no two
//     registrations share a value;
//   - registrations are non-zero and follow the *IID naming convention
//     that makes them discoverable.
package guidreg

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"oskit/internal/analysis"
)

// Analyzer is the guidreg pass.
var Analyzer = &analysis.Analyzer{
	Name:       "guidreg",
	Doc:        "every COM GUID literal must be constant, registered once as a package-level var, and unique program-wide",
	RunProgram: runProgram,
}

// registration is one com.NewGUID call found in the program.
type registration struct {
	pos     token.Pos
	posStr  string
	varName string // enclosing package-level var, or ""
	pkg     string
	key     string // canonical value, "" if non-constant
}

func runProgram(prog *analysis.Program, report func(analysis.Diagnostic)) error {
	reportf := func(pos token.Pos, format string, args ...any) {
		report(analysis.Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
	}
	byKey := map[string]*registration{}
	for _, pkg := range prog.Packages {
		for _, file := range pkg.Files {
			collectFile(prog, pkg, file, func(r *registration, call *ast.CallExpr) {
				if r.key == "" {
					reportf(r.pos, "GUID components must be compile-time constants (a run-time GUID cannot be audited for uniqueness)")
					return
				}
				if r.varName == "" {
					reportf(r.pos, "GUID literal must be registered as a package-level var, not built ad hoc")
				} else if !strings.Contains(r.varName, "IID") && !strings.Contains(r.varName, "GUID") {
					reportf(r.pos, "GUID registration %s should follow the *IID naming convention", r.varName)
				}
				if isZeroKey(r.key) {
					reportf(r.pos, "GUID is all-zero; the null GUID matches nothing in §4.4.2 negotiation")
				}
				if prev, dup := byKey[r.key]; dup {
					reportf(r.pos, "GUID collision: value already registered as %s.%s at %s (QueryInterface dispatch would alias the two interfaces)",
						prev.pkg, prev.varName, prev.posStr)
				} else {
					byKey[r.key] = r
				}
			})
		}
	}
	return nil
}

// collectFile finds com.NewGUID calls and hands each to fn with its
// registration context.
func collectFile(prog *analysis.Program, pkg *analysis.Package, file *ast.File, fn func(*registration, *ast.CallExpr)) {
	// Package-level var specs, so a call can be attributed to its
	// registration var.
	varOf := map[ast.Expr]string{}
	for _, d := range file.Decls {
		gd, ok := d.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR {
			continue
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, v := range vs.Values {
				if i < len(vs.Names) {
					varOf[v] = vs.Names[i].Name
				}
			}
		}
	}
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := analysis.CalleeFunc(pkg.Info, call)
		if callee == nil || callee.Name() != "NewGUID" || !analysis.IsComPackage(callee.Pkg()) {
			return true
		}
		r := &registration{
			pos:     call.Pos(),
			posStr:  prog.Fset.Position(call.Pos()).String(),
			varName: varOf[ast.Expr(call)],
			pkg:     pkg.Pkg.Name(),
			key:     constKey(pkg.Info, call),
		}
		fn(r, call)
		return false
	})
}

// constKey renders the call's arguments as a canonical value string, or
// "" if any argument is not a compile-time constant.
func constKey(info *types.Info, call *ast.CallExpr) string {
	var parts []string
	for _, arg := range call.Args {
		tv, ok := info.Types[arg]
		if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
			return ""
		}
		parts = append(parts, tv.Value.ExactString())
	}
	return strings.Join(parts, ",")
}

func isZeroKey(key string) bool {
	for _, p := range strings.Split(key, ",") {
		if p != "0" {
			return false
		}
	}
	return true
}
