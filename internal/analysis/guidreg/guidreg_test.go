package guidreg_test

import (
	"testing"

	"oskit/internal/analysis"
	"oskit/internal/analysis/analysistest"
	"oskit/internal/analysis/guidreg"
)

func TestGuidreg(t *testing.T) {
	analysistest.Run(t, []*analysis.Analyzer{guidreg.Analyzer}, "guidregtest")
}
