// Fixtures for guidreg: the GUID namespace rules of §4.4.2 negotiation.
package guidregtest

import "oskit/internal/com"

// GoodIID is a well-formed registration: constant components, unique
// value, package-level var, *IID name.
var GoodIID = com.NewGUID(0x1000_0001, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10)

// AnotherGUID uses the alternative accepted naming suffix.
var AnotherGUID = com.NewGUID(0x1000_0002, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10)

// CollidingIID reuses GoodIID's value: QueryInterface would alias the
// two contracts.
var CollidingIID = com.NewGUID(0x1000_0001, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10) // want `GUID collision: value already registered as guidregtest\.GoodIID`

// badName does not advertise itself as an IID.
var badName = com.NewGUID(0x1000_0003, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10) // want `should follow the \*IID naming convention`

// NullIID is the null GUID, which matches nothing.
var NullIID = com.NewGUID(0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0) // want `GUID is all-zero`

// makeRuntime builds a GUID from a run-time value, so its uniqueness
// cannot be audited.
func makeRuntime(d1 uint32) com.GUID {
	return com.NewGUID(d1, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10) // want `GUID components must be compile-time constants`
}

// makeAdHoc registers nothing: the literal lives inside a function.
func makeAdHoc() com.GUID {
	return com.NewGUID(0x1000_0004, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10) // want `must be registered as a package-level var`
}
