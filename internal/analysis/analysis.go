// Package analysis is a self-contained miniature of the
// golang.org/x/tools/go/analysis framework, built only on the standard
// library so the kit stays dependency-free (the same "no required support
// code" discipline §4.4.3 demands of components applies to the toolchain
// that checks them).
//
// An Analyzer is a named invariant checker over one type-checked package
// (Run) or over the whole program at once (RunProgram, for invariants such
// as GUID uniqueness that only exist across packages).  The runner applies
// a suite of analyzers to a loaded Program and post-filters diagnostics
// through //oskit:allow suppression comments, keeping every waiver visible
// and countable instead of silently swallowed.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"time"
)

// Diagnostic is one finding: a position, a message, and the analyzer that
// produced it.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// Package is one type-checked package: syntax, types, and provenance.
type Package struct {
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info
	Dir        string
	ImportPath string
}

// Program is the unit the runner operates on: every package selected for
// analysis, sharing one FileSet.
type Program struct {
	Fset     *token.FileSet
	Packages []*Package
}

// Pass carries one analyzer's view of one package plus the reporting
// channel.  It mirrors x/tools' analysis.Pass closely enough that the
// analyzers would port with little friction.
type Pass struct {
	Analyzer *Analyzer
	*Package
	report func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...), Analyzer: p.Analyzer.Name})
}

// Analyzer is one invariant checker.  Exactly one of Run and RunProgram
// must be set: Run sees one package at a time; RunProgram sees the whole
// program (for cross-package invariants such as GUID uniqueness).
type Analyzer struct {
	Name string
	Doc  string

	Run        func(*Pass) error
	RunProgram func(*Program, func(Diagnostic)) error
}

// Validate reports whether the analyzer set is well-formed: names unique
// and non-empty, exactly one run hook each.  The structure test asserts
// this so a conflicting registration fails tier-1 immediately.
func Validate(analyzers []*Analyzer) error {
	seen := map[string]bool{}
	for _, a := range analyzers {
		if a.Name == "" {
			return fmt.Errorf("analyzer with empty name")
		}
		if seen[a.Name] {
			return fmt.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		if (a.Run == nil) == (a.RunProgram == nil) {
			return fmt.Errorf("analyzer %q must set exactly one of Run and RunProgram", a.Name)
		}
	}
	return nil
}

// Result is the outcome of running a suite: diagnostics that stand,
// diagnostics waived by //oskit:allow comments (kept so drivers can report
// how many waivers are in force), the waiver directives themselves, and
// per-analyzer wall-clock timings (so CI can budget the lint step).
type Result struct {
	Diagnostics []Diagnostic
	Suppressed  []Diagnostic
	Waivers     []*Waiver
	Timings     []Timing
}

// Waiver is one //oskit:allow directive found in the program: where it
// sits, which analyzers it names, the reviewed reason after `--`, and how
// many diagnostics it actually suppressed in this run.
type Waiver struct {
	Pos        token.Pos
	Analyzers  []string
	Reason     string
	Suppressed int
}

// Timing is one analyzer's wall-clock cost over the whole program.
type Timing struct {
	Analyzer string
	Elapsed  time.Duration
}

// AllowPrefix is the comment directive that waives one diagnostic:
//
//	//oskit:allow <analyzer>[,<analyzer>...] [-- reason]
//
// placed on the flagged line or on the line directly above it.  The
// driver counts applied waivers so suppressions stay visible in output.
const AllowPrefix = "//oskit:allow"

// ParseAllow exposes the //oskit:allow parser to analyzers that adapt
// their behavior at waived sites — e.g. reporting at a waived call site
// (where the driver suppresses it and counts the waiver used) instead
// of propagating the obligation to every transitive caller.
func ParseAllow(text string) (names []string, reason string, ok bool) {
	return parseAllow(text)
}

// allowSet maps filename → line → analyzer name → the waiver directive
// covering that (line, analyzer), so a match can be attributed back to
// the //oskit:allow comment that granted it.
type allowSet map[string]map[int]map[string]*Waiver

func collectAllows(prog *Program) (allowSet, []*Waiver) {
	out := allowSet{}
	var waivers []*Waiver
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					names, reason, ok := parseAllow(c.Text)
					if !ok {
						continue
					}
					w := &Waiver{Pos: c.Pos(), Analyzers: names, Reason: reason}
					waivers = append(waivers, w)
					pos := prog.Fset.Position(c.Pos())
					byLine := out[pos.Filename]
					if byLine == nil {
						byLine = map[int]map[string]*Waiver{}
						out[pos.Filename] = byLine
					}
					// The directive covers its own line (trailing
					// comment) and the next line (comment above).
					for _, line := range []int{pos.Line, pos.Line + 1} {
						set := byLine[line]
						if set == nil {
							set = map[string]*Waiver{}
							byLine[line] = set
						}
						for _, n := range names {
							set[n] = w
						}
					}
				}
			}
		}
	}
	return out, waivers
}

// parseAllow extracts the analyzer names and the reviewed reason (the
// text after `--`, empty if absent) from an //oskit:allow comment.
func parseAllow(text string) (names []string, reason string, ok bool) {
	if !strings.HasPrefix(text, AllowPrefix) {
		return nil, "", false
	}
	rest := strings.TrimPrefix(text, AllowPrefix)
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return nil, "", false // e.g. //oskit:allowance
	}
	if i := strings.Index(rest, "--"); i >= 0 {
		reason = strings.TrimSpace(rest[i+len("--"):])
		rest = rest[:i]
	}
	for _, f := range strings.FieldsFunc(rest, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' }) {
		names = append(names, f)
	}
	return names, reason, len(names) > 0
}

func (a allowSet) allows(fset *token.FileSet, d Diagnostic) *Waiver {
	pos := fset.Position(d.Pos)
	byLine := a[pos.Filename]
	if byLine == nil {
		return nil
	}
	set := byLine[pos.Line]
	if set == nil {
		return nil
	}
	if w := set[d.Analyzer]; w != nil {
		return w
	}
	return set["all"]
}

// Run applies the analyzers to every package of the program and splits
// the findings into standing and suppressed diagnostics, each sorted by
// position.
func Run(prog *Program, analyzers []*Analyzer) (*Result, error) {
	if err := Validate(analyzers); err != nil {
		return nil, err
	}
	var all []Diagnostic
	report := func(d Diagnostic) { all = append(all, d) }
	res := &Result{}
	for _, a := range analyzers {
		start := time.Now()
		if a.RunProgram != nil {
			name := a.Name
			if err := a.RunProgram(prog, func(d Diagnostic) {
				d.Analyzer = name
				report(d)
			}); err != nil {
				return nil, fmt.Errorf("%s: %w", a.Name, err)
			}
			res.Timings = append(res.Timings, Timing{Analyzer: a.Name, Elapsed: time.Since(start)})
			continue
		}
		for _, pkg := range prog.Packages {
			pass := &Pass{Analyzer: a, Package: pkg, report: report}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.ImportPath, err)
			}
		}
		res.Timings = append(res.Timings, Timing{Analyzer: a.Name, Elapsed: time.Since(start)})
	}
	allows, waivers := collectAllows(prog)
	res.Waivers = waivers
	// A waiver is a reviewed exception: one without a reason after `--`
	// is unreviewed by definition and is itself a diagnostic (reported
	// under the pseudo-analyzer "allow", which //oskit:allow cannot
	// waive away since the directive only covers real analyzer names).
	for _, w := range waivers {
		if w.Reason == "" {
			all = append(all, Diagnostic{
				Pos:      w.Pos,
				Analyzer: "allow",
				Message:  fmt.Sprintf("%s waiver for %s has no reason: write %s %s -- <why>", AllowPrefix, strings.Join(w.Analyzers, ","), AllowPrefix, strings.Join(w.Analyzers, ",")),
			})
		}
	}
	for _, d := range all {
		if w := allows.allows(prog.Fset, d); w != nil && d.Analyzer != "allow" {
			w.Suppressed++
			res.Suppressed = append(res.Suppressed, d)
		} else {
			res.Diagnostics = append(res.Diagnostics, d)
		}
	}
	byPos := func(ds []Diagnostic) func(i, j int) bool {
		return func(i, j int) bool {
			pi, pj := prog.Fset.Position(ds[i].Pos), prog.Fset.Position(ds[j].Pos)
			if pi.Filename != pj.Filename {
				return pi.Filename < pj.Filename
			}
			if pi.Line != pj.Line {
				return pi.Line < pj.Line
			}
			return ds[i].Message < ds[j].Message
		}
	}
	sort.Slice(res.Diagnostics, byPos(res.Diagnostics))
	sort.Slice(res.Suppressed, byPos(res.Suppressed))
	return res, nil
}
