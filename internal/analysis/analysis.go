// Package analysis is a self-contained miniature of the
// golang.org/x/tools/go/analysis framework, built only on the standard
// library so the kit stays dependency-free (the same "no required support
// code" discipline §4.4.3 demands of components applies to the toolchain
// that checks them).
//
// An Analyzer is a named invariant checker over one type-checked package
// (Run) or over the whole program at once (RunProgram, for invariants such
// as GUID uniqueness that only exist across packages).  The runner applies
// a suite of analyzers to a loaded Program and post-filters diagnostics
// through //oskit:allow suppression comments, keeping every waiver visible
// and countable instead of silently swallowed.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding: a position, a message, and the analyzer that
// produced it.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// Package is one type-checked package: syntax, types, and provenance.
type Package struct {
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info
	Dir        string
	ImportPath string
}

// Program is the unit the runner operates on: every package selected for
// analysis, sharing one FileSet.
type Program struct {
	Fset     *token.FileSet
	Packages []*Package
}

// Pass carries one analyzer's view of one package plus the reporting
// channel.  It mirrors x/tools' analysis.Pass closely enough that the
// analyzers would port with little friction.
type Pass struct {
	Analyzer *Analyzer
	*Package
	report func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...), Analyzer: p.Analyzer.Name})
}

// Analyzer is one invariant checker.  Exactly one of Run and RunProgram
// must be set: Run sees one package at a time; RunProgram sees the whole
// program (for cross-package invariants such as GUID uniqueness).
type Analyzer struct {
	Name string
	Doc  string

	Run        func(*Pass) error
	RunProgram func(*Program, func(Diagnostic)) error
}

// Validate reports whether the analyzer set is well-formed: names unique
// and non-empty, exactly one run hook each.  The structure test asserts
// this so a conflicting registration fails tier-1 immediately.
func Validate(analyzers []*Analyzer) error {
	seen := map[string]bool{}
	for _, a := range analyzers {
		if a.Name == "" {
			return fmt.Errorf("analyzer with empty name")
		}
		if seen[a.Name] {
			return fmt.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		if (a.Run == nil) == (a.RunProgram == nil) {
			return fmt.Errorf("analyzer %q must set exactly one of Run and RunProgram", a.Name)
		}
	}
	return nil
}

// Result is the outcome of running a suite: diagnostics that stand, and
// diagnostics waived by //oskit:allow comments (kept so drivers can report
// how many waivers are in force).
type Result struct {
	Diagnostics []Diagnostic
	Suppressed  []Diagnostic
}

// AllowPrefix is the comment directive that waives one diagnostic:
//
//	//oskit:allow <analyzer>[,<analyzer>...] [-- reason]
//
// placed on the flagged line or on the line directly above it.  The
// driver counts applied waivers so suppressions stay visible in output.
const AllowPrefix = "//oskit:allow"

// allowSet maps filename → line → analyzer names allowed there.
type allowSet map[string]map[int]map[string]bool

func collectAllows(prog *Program) allowSet {
	out := allowSet{}
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					names, ok := parseAllow(c.Text)
					if !ok {
						continue
					}
					pos := prog.Fset.Position(c.Pos())
					byLine := out[pos.Filename]
					if byLine == nil {
						byLine = map[int]map[string]bool{}
						out[pos.Filename] = byLine
					}
					// The directive covers its own line (trailing
					// comment) and the next line (comment above).
					for _, line := range []int{pos.Line, pos.Line + 1} {
						set := byLine[line]
						if set == nil {
							set = map[string]bool{}
							byLine[line] = set
						}
						for _, n := range names {
							set[n] = true
						}
					}
				}
			}
		}
	}
	return out
}

// parseAllow extracts the analyzer names from an //oskit:allow comment.
func parseAllow(text string) ([]string, bool) {
	if !strings.HasPrefix(text, AllowPrefix) {
		return nil, false
	}
	rest := strings.TrimPrefix(text, AllowPrefix)
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return nil, false // e.g. //oskit:allowance
	}
	if i := strings.Index(rest, "--"); i >= 0 {
		rest = rest[:i] // trailing justification
	}
	var names []string
	for _, f := range strings.FieldsFunc(rest, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' }) {
		names = append(names, f)
	}
	return names, len(names) > 0
}

func (a allowSet) allows(fset *token.FileSet, d Diagnostic) bool {
	pos := fset.Position(d.Pos)
	byLine := a[pos.Filename]
	if byLine == nil {
		return false
	}
	set := byLine[pos.Line]
	return set != nil && (set[d.Analyzer] || set["all"])
}

// Run applies the analyzers to every package of the program and splits
// the findings into standing and suppressed diagnostics, each sorted by
// position.
func Run(prog *Program, analyzers []*Analyzer) (*Result, error) {
	if err := Validate(analyzers); err != nil {
		return nil, err
	}
	var all []Diagnostic
	report := func(d Diagnostic) { all = append(all, d) }
	for _, a := range analyzers {
		if a.RunProgram != nil {
			name := a.Name
			if err := a.RunProgram(prog, func(d Diagnostic) {
				d.Analyzer = name
				report(d)
			}); err != nil {
				return nil, fmt.Errorf("%s: %w", a.Name, err)
			}
			continue
		}
		for _, pkg := range prog.Packages {
			pass := &Pass{Analyzer: a, Package: pkg, report: report}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.ImportPath, err)
			}
		}
	}
	allows := collectAllows(prog)
	res := &Result{}
	for _, d := range all {
		if allows.allows(prog.Fset, d) {
			res.Suppressed = append(res.Suppressed, d)
		} else {
			res.Diagnostics = append(res.Diagnostics, d)
		}
	}
	byPos := func(ds []Diagnostic) func(i, j int) bool {
		return func(i, j int) bool {
			pi, pj := prog.Fset.Position(ds[i].Pos), prog.Fset.Position(ds[j].Pos)
			if pi.Filename != pj.Filename {
				return pi.Filename < pj.Filename
			}
			if pi.Line != pj.Line {
				return pi.Line < pj.Line
			}
			return ds[i].Message < ds[j].Message
		}
	}
	sort.Slice(res.Diagnostics, byPos(res.Diagnostics))
	sort.Slice(res.Suppressed, byPos(res.Suppressed))
	return res, nil
}
