package detsource_test

import (
	"testing"

	"oskit/internal/analysis"
	"oskit/internal/analysis/analysistest"
	"oskit/internal/analysis/detsource"
)

func TestDetsource(t *testing.T) {
	analysistest.Run(t, []*analysis.Analyzer{detsource.Analyzer}, "internal/hw", "ungated")
}

func TestGated(t *testing.T) {
	for path, want := range map[string]bool{
		"oskit/internal/hw":          true,
		"oskit/internal/faults/soak": true,
		"oskit/internal/linux/dev":   true,
		"internal/hw":                true,
		"oskit/internal/stats":       false,
		"oskit/cmd/oskitcheck":       false,
	} {
		if got := detsource.Gated(path); got != want {
			t.Errorf("Gated(%q) = %v, want %v", path, got, want)
		}
	}
}
