// Package detsource guards the seed-reproducibility contract from PR 2:
// every fault decision, and everything the simulated hardware does in
// response, must replay bit-for-bit from `seed=N`.  In the packages on
// that contract — internal/faults, internal/hw, and the encapsulated
// donor glue (internal/linux, internal/freebsd, internal/netbsd) — the
// analyzer flags the three ways wall-clock and scheduler entropy leak
// into decision streams:
//
//   - time.Now / time.Since / time.Until and friends (wall-clock reads;
//     simulated time comes from hw.Timer ticks);
//   - the math/rand and math/rand/v2 package-level convenience functions,
//     which draw from the global, process-seeded source (rand.New over an
//     explicit seeded Source remains fine and is what EtherWire does);
//   - ranging over a map while producing an ordered side effect (append
//     to an outer slice, channel send, or stream write): Go randomizes
//     map iteration order per run, so the output order diverges between
//     replays.  Collect-then-sort is recognized and allowed.
package detsource

import (
	"go/ast"
	"go/types"
	"strings"

	"oskit/internal/analysis"
)

// Analyzer is the detsource pass.
var Analyzer = &analysis.Analyzer{
	Name: "detsource",
	Doc:  "determinism-contract packages may not read wall clocks, the global rand source, or emit map-ordered side effects",
	Run:  run,
}

// gatedSuffixes are the import-path subtrees under the determinism
// contract (matched as path segments below the module root).
var gatedSuffixes = []string{
	"internal/faults",
	"internal/hw",
	"internal/linux",
	"internal/freebsd",
	"internal/netbsd",
}

// Gated reports whether an import path is under the determinism contract.
func Gated(importPath string) bool {
	for _, s := range gatedSuffixes {
		if strings.HasSuffix(importPath, s) || strings.Contains(importPath, s+"/") {
			return true
		}
	}
	return false
}

// wallClockFuncs are the time package functions that read the machine
// clock.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTicker": true, "NewTimer": true,
}

// seededConstructors are the math/rand functions that do NOT touch the
// global source and therefore stay allowed.
var seededConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func run(pass *analysis.Pass) error {
	if !Gated(pass.ImportPath) {
		return nil
	}
	for _, file := range pass.Files {
		checkEntropyUses(pass, file)
		ast.Inspect(file, func(n ast.Node) bool {
			if fd, ok := n.(*ast.FuncDecl); ok && fd.Body != nil {
				checkMapOrder(pass, fd.Body)
				return false
			}
			return true
		})
	}
	return nil
}

// checkEntropyUses flags wall-clock reads and global-source rand calls.
func checkEntropyUses(pass *analysis.Pass, file *ast.File) {
	for id, obj := range pass.Info.Uses {
		if id.Pos() < file.Pos() || id.Pos() > file.End() {
			continue
		}
		fn, ok := obj.(*types.Func)
		if !ok || fn.Pkg() == nil {
			continue
		}
		switch fn.Pkg().Path() {
		case "time":
			if wallClockFuncs[fn.Name()] {
				pass.Reportf(id.Pos(), "time.%s reads the wall clock in a determinism-contract package (decisions must replay from seed; use hw.Timer ticks)", fn.Name())
			}
		case "math/rand", "math/rand/v2":
			if fn.Type().(*types.Signature).Recv() != nil {
				continue // method on an explicitly-seeded *rand.Rand
			}
			if !seededConstructors[fn.Name()] {
				pass.Reportf(id.Pos(), "rand.%s draws from the global process-seeded source (use rand.New with an explicit seed from the fault plan)", fn.Name())
			}
		}
	}
}

// checkMapOrder flags map-range loops whose body produces an ordered side
// effect, unless the collected result is sorted afterwards in the same
// function.
func checkMapOrder(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.Info.TypeOf(rng.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		checkMapRangeBody(pass, body, rng)
		return true
	})
}

func checkMapRangeBody(pass *analysis.Pass, fnBody *ast.BlockStmt, rng *ast.RangeStmt) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			pass.Reportf(n.Pos(), "channel send inside a map range: delivery order depends on map iteration order (iterate a sorted key slice instead)")
		case *ast.AssignStmt:
			// x = append(x, ...) where x is declared outside the loop.
			for i, r := range n.Rhs {
				call, ok := ast.Unparen(r).(*ast.CallExpr)
				if !ok {
					continue
				}
				id, ok := ast.Unparen(call.Fun).(*ast.Ident)
				if !ok || id.Name != "append" {
					continue
				}
				if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); !isBuiltin {
					continue
				}
				if i >= len(n.Lhs) {
					continue
				}
				target, ok := ast.Unparen(n.Lhs[i]).(*ast.Ident)
				if !ok {
					continue
				}
				obj := pass.Info.Uses[target]
				if obj == nil {
					obj = pass.Info.Defs[target]
				}
				if obj == nil || !declaredOutside(obj, rng) {
					continue
				}
				if sortedLater(pass, fnBody, obj) {
					continue
				}
				pass.Reportf(n.Pos(), "append to %s inside a map range builds a map-ordered slice (sort it afterwards, or iterate sorted keys)", target.Name)
			}
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok {
				if fn := analysis.CalleeFunc(pass.Info, call); fn != nil && isStreamWrite(fn) {
					pass.Reportf(n.Pos(), "%s inside a map range emits map-ordered output (iterate a sorted key slice instead)", fn.FullName())
				}
			}
		}
		return true
	})
}

// declaredOutside reports whether obj's declaration precedes the range
// statement (so the slice outlives the loop).
func declaredOutside(obj types.Object, rng *ast.RangeStmt) bool {
	return obj.Pos() < rng.Pos()
}

// sortedLater reports whether obj is passed to a sort/slices sorting
// function anywhere in the function body (the collect-then-sort idiom).
func sortedLater(pass *analysis.Pass, fnBody *ast.BlockStmt, obj types.Object) bool {
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := analysis.CalleeFunc(pass.Info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		switch fn.Pkg().Path() {
		case "sort", "slices":
		default:
			return true
		}
		for _, arg := range call.Args {
			if analysis.ContainsIdentOf(pass.Info, arg, obj) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// isStreamWrite reports whether fn is an ordered-output primitive.
func isStreamWrite(fn *types.Func) bool {
	switch fn.Name() {
	case "Write", "WriteString", "WriteByte", "Fprintf", "Fprintln", "Fprint",
		"Printf", "Println", "Print":
		return true
	}
	return false
}
