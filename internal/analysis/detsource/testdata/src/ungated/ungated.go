// Fixture for detsource outside the gated subtrees: identical entropy
// uses draw no diagnostics, because the determinism contract only
// covers internal/faults, internal/hw, and the donor glue.
package ungated

import (
	"math/rand"
	"time"
)

func entropyIsFineHere() (time.Time, int) {
	return time.Now(), rand.Intn(8)
}
