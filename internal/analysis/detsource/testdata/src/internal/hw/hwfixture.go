// Fixture for detsource placed at import path "internal/hw", inside the
// determinism contract: wall-clock reads, global rand draws, and
// map-ordered side effects must all be flagged; the seeded-source and
// collect-then-sort idioms must stay silent.
package hw

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"
)

// entropy reads the wall clock and the global rand source.
func entropy(t0 time.Time) (time.Duration, int) {
	now := time.Now()   // want `time\.Now reads the wall clock in a determinism-contract package`
	d := time.Since(t0) // want `time\.Since reads the wall clock in a determinism-contract package`
	_ = now
	return d, rand.Intn(8) // want `rand\.Intn draws from the global process-seeded source`
}

// seeded draws from an explicitly-seeded source, the EtherWire idiom.
func seeded(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64()
}

// mapOrderLeak builds an output slice in map order.
func mapOrderLeak(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want `append to out inside a map range builds a map-ordered slice`
	}
	return out
}

// mapOrderSorted is the collect-then-sort idiom: allowed.
func mapOrderSorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// mapOrderSend delivers map entries on a channel in iteration order.
func mapOrderSend(m map[string]int, ch chan<- string) {
	for k := range m {
		ch <- k // want `channel send inside a map range`
	}
}

// mapOrderWrite streams map entries in iteration order.
func mapOrderWrite(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want `fmt\.Fprintf inside a map range emits map-ordered output`
	}
}

// mapOrderLocal appends into a slice scoped to one iteration; no order
// escapes the loop.
func mapOrderLocal(m map[string][]int) int {
	total := 0
	for _, vs := range m {
		var row []int
		row = append(row, vs...)
		total += len(row)
	}
	return total
}

// waived documents a reviewed wall-clock use.
func waived() time.Time {
	//oskit:allow detsource -- fixture: designated wall-clock boundary
	return time.Now()
}
