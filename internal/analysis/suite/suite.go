// Package suite registers the kit's analyzers in one place, so the
// oskitcheck driver, the vet integration, and the structure tests all see
// the same set.
package suite

import (
	"oskit/internal/analysis"
	"oskit/internal/analysis/comref"
	"oskit/internal/analysis/detsource"
	"oskit/internal/analysis/guarded"
	"oskit/internal/analysis/guidreg"
	"oskit/internal/analysis/lockhook"
)

// All returns the full analyzer suite in stable order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		comref.Analyzer,
		lockhook.Analyzer,
		guarded.Analyzer,
		guidreg.Analyzer,
		detsource.Analyzer,
	}
}
