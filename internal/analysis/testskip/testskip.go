// Package testskip is a structure-test fixture: its only non-test file
// is clean under the analyzer suite, while its _test.go deliberately
// violates a guarded annotation.  TestLintSkipsTestFiles drives both
// oskitcheck modes (standalone and `go vet -vettool`) over this package
// and expects silence, pinning the contract that test files stay
// outside the invariants in both.
package testskip

import "sync"

// Box is shared state with a machine-checked owner.
type Box struct {
	mu sync.Mutex
	n  int //oskit:guardedby mu
}

// Bump is the disciplined accessor; test files are free to skip the
// lock, which is exactly what this fixture's _test.go does.
func (b *Box) Bump() {
	b.mu.Lock()
	b.n++
	b.mu.Unlock()
}

// Value reads under the lock.
func (b *Box) Value() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.n
}
