package testskip

import "testing"

// TestRacyBump touches Box.n without its lock: if either oskitcheck
// mode analyzed test files, this would be a guarded diagnostic and
// TestLintSkipsTestFiles (structure_test.go) would fail.
func TestRacyBump(t *testing.T) {
	var b Box
	b.n++
	if b.Value() != 1 {
		t.Fatal("lost the bump")
	}
}
