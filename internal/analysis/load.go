// Package loading for the analysis suite.
//
// The kit deliberately takes no dependency on golang.org/x/tools, so
// instead of go/packages the loader leans on the go tool itself:
// `go list -export -deps -json` yields compiled export data for every
// dependency (standard library included), and the packages under analysis
// are then parsed and type-checked from source with a gc importer whose
// lookup function reads those export files.  This is the same division of
// labor vet's unitchecker uses — full syntax for the packages being
// checked, export data for everything below them.
package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// listedPackage is the subset of `go list -json` output the loader uses.
type listedPackage struct {
	Dir        string
	ImportPath string
	Export     string
	Standard   bool
	GoFiles    []string
	Module     *struct{ Path string }
}

// LoadConfig selects what to analyze.
type LoadConfig struct {
	// Dir is the directory go commands run in (any directory inside the
	// module); empty means the current directory.
	Dir string
	// Patterns are go list package patterns naming the packages to
	// analyze from source (e.g. "./...").
	Patterns []string
	// ExtraImports are import paths that must be importable (via export
	// data) even if nothing in Patterns depends on them.  The fixture
	// loader uses this for packages a testdata fixture imports.
	ExtraImports []string
}

// goList runs `go list -export -deps -json` over the given patterns and
// decodes the stream.
func goList(dir string, patterns []string, deps bool) ([]*listedPackage, error) {
	args := []string{"list", "-export", "-json=ImportPath,Export,Dir,GoFiles,Standard,Module"}
	if deps {
		args = append(args, "-deps")
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var out []*listedPackage
	dec := json.NewDecoder(&stdout)
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		out = append(out, &p)
	}
	return out, nil
}

// exportImporter returns a types.Importer reading gc export data from the
// given importPath→file map.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
}

// newInfo allocates a fully-populated types.Info.
func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// typeCheckDir parses and type-checks the non-test Go files of one
// directory as the package importPath, resolving imports via exports.
func typeCheckDir(fset *token.FileSet, dir, importPath string, goFiles []string, exports map[string]string) (*Package, error) {
	var files []*ast.File
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := newInfo()
	conf := types.Config{Importer: exportImporter(fset, exports)}
	pkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, err
	}
	return &Package{
		Fset:       fset,
		Files:      files,
		Pkg:        pkg,
		Info:       info,
		Dir:        dir,
		ImportPath: importPath,
	}, nil
}

// Load builds a Program: the packages matching cfg.Patterns are parsed
// and type-checked from source; their dependencies (and cfg.ExtraImports)
// resolve through compiled export data.
func Load(cfg LoadConfig) (*Program, error) {
	patterns := cfg.Patterns
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	// One -deps walk provides export data for the whole closure.
	listAll, err := goList(cfg.Dir, append(append([]string{}, patterns...), cfg.ExtraImports...), true)
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	for _, p := range listAll {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	// A second, shallow list identifies exactly the packages the
	// patterns name (the -deps stream mixes targets and dependencies).
	targets, err := goList(cfg.Dir, patterns, false)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	prog := &Program{Fset: fset}
	for _, t := range targets {
		if t.Standard || len(t.GoFiles) == 0 {
			continue
		}
		pkg, err := typeCheckDir(fset, t.Dir, t.ImportPath, t.GoFiles, exports)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %w", t.ImportPath, err)
		}
		prog.Packages = append(prog.Packages, pkg)
	}
	return prog, nil
}

// VetPackage is the slice of a vet-tool config the loader needs: one
// package's sources plus the import→export-file maps the go command
// computed.
type VetPackage struct {
	Dir         string
	ImportPath  string
	GoFiles     []string
	ImportMap   map[string]string
	PackageFile map[string]string
}

// LoadVetPackage type-checks the single package described by a vet-tool
// config, resolving imports through the export files the go command
// already built.
func LoadVetPackage(vp VetPackage) (*Program, error) {
	fset := token.NewFileSet()
	exports := map[string]string{}
	for path, mapped := range vp.ImportMap {
		if file, ok := vp.PackageFile[mapped]; ok {
			exports[path] = file
		}
	}
	for path, file := range vp.PackageFile {
		if _, ok := exports[path]; !ok {
			exports[path] = file
		}
	}
	var goFiles []string
	for _, f := range vp.GoFiles {
		// The go command hands vet tools test files too; skip them so
		// vet mode checks the same sources as the standalone driver
		// (test-harness idioms — QueryInterface existence probes,
		// time.After select timeouts — are not under the invariants).
		if strings.HasSuffix(f, "_test.go") {
			continue
		}
		if filepath.IsAbs(f) {
			rel, err := filepath.Rel(vp.Dir, f)
			if err != nil {
				return nil, err
			}
			f = rel
		}
		goFiles = append(goFiles, f)
	}
	if len(goFiles) == 0 {
		// A pure test package (pkg_test): nothing under analysis.
		return &Program{Fset: fset}, nil
	}
	pkg, err := typeCheckDir(fset, vp.Dir, vp.ImportPath, goFiles, exports)
	if err != nil {
		return nil, err
	}
	return &Program{Fset: fset, Packages: []*Package{pkg}}, nil
}

// LoadFixtureDir type-checks a single directory of Go files (typically an
// analysistest fixture under testdata/src/<name>) that is invisible to go
// list.  Imports are resolved by listing the fixture's own import paths
// from moduleDir and reading their export data.
func LoadFixtureDir(moduleDir, fixtureDir string) (*Program, error) {
	matches, err := filepath.Glob(filepath.Join(fixtureDir, "*.go"))
	if err != nil {
		return nil, err
	}
	if len(matches) == 0 {
		return nil, fmt.Errorf("no Go files in %s", fixtureDir)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	importSet := map[string]bool{}
	for _, m := range matches {
		f, err := parser.ParseFile(fset, m, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			importSet[path] = true
		}
	}
	var imports []string
	for p := range importSet {
		imports = append(imports, p)
	}
	exports := map[string]string{}
	if len(imports) > 0 {
		listed, err := goList(moduleDir, imports, true)
		if err != nil {
			return nil, err
		}
		for _, p := range listed {
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	// The fixture's import path is its path below testdata/src, so a
	// fixture named "internal/hw" exercises path-gated analyzers.
	importPath := filepath.Base(fixtureDir)
	if i := strings.Index(filepath.ToSlash(fixtureDir), "/testdata/src/"); i >= 0 {
		importPath = filepath.ToSlash(fixtureDir)[i+len("/testdata/src/"):]
	}
	info := newInfo()
	conf := types.Config{Importer: exportImporter(fset, exports)}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking fixture %s: %w", fixtureDir, err)
	}
	prog := &Program{Fset: fset}
	prog.Packages = append(prog.Packages, &Package{
		Fset:       fset,
		Files:      files,
		Pkg:        tpkg,
		Info:       info,
		Dir:        fixtureDir,
		ImportPath: importPath,
	})
	return prog, nil
}
