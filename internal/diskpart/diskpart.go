// Package diskpart is the kit's disk partitioning component (Table 3
// "diskpart"): it interprets PC partition tables — the classic MBR at
// sector 0 plus BSD-style disklabels inside BSD slices — and hands each
// partition back as its own BlkIO view, so any file system component can
// be bound to any partition of any disk driver at run time (§4.2.2).
package diskpart

import (
	"encoding/binary"
	"fmt"

	"oskit/internal/com"
)

// SectorSize is the PC sector size partition tables speak in.
const SectorSize = 512

// Partition types we recognize specially.
const (
	TypeEmpty = 0x00
	TypeFAT16 = 0x06
	TypeLinux = 0x83
	TypeBSD   = 0xa5 // carries a disklabel with sub-partitions
)

// MBR geometry.
const (
	mbrTableOff  = 446
	mbrEntrySize = 16
	mbrSigOff    = 510
)

// Disklabel geometry (simplified BSD label in the slice's second sector).
const (
	LabelMagic  = 0x82564557
	labelSector = 1
)

// Partition describes one addressable region of a disk.
type Partition struct {
	// Name is "s1".."s4" for MBR slices, "s2a".."s2h" for disklabel
	// sub-partitions.
	Name string
	// Start and Size are in bytes.
	Start, Size uint64
	// Type is the MBR type byte (or the label fstype).
	Type byte
}

// ReadPartitions scans the MBR and any BSD disklabels, returning every
// partition found in disk order.
func ReadPartitions(dev com.BlkIO) ([]Partition, error) {
	sector := make([]byte, SectorSize)
	if n, err := dev.Read(sector, 0); err != nil || n != SectorSize {
		return nil, com.ErrIO
	}
	if sector[mbrSigOff] != 0x55 || sector[mbrSigOff+1] != 0xAA {
		return nil, com.ErrInval // no partition table
	}
	devSize, err := dev.Size()
	if err != nil {
		return nil, err
	}
	var out []Partition
	for i := 0; i < 4; i++ {
		e := sector[mbrTableOff+i*mbrEntrySize:]
		ptype := e[4]
		lbaStart := binary.LittleEndian.Uint32(e[8:12])
		lbaCount := binary.LittleEndian.Uint32(e[12:16])
		if ptype == TypeEmpty || lbaCount == 0 {
			continue
		}
		p := Partition{
			Name:  fmt.Sprintf("s%d", i+1),
			Start: uint64(lbaStart) * SectorSize,
			Size:  uint64(lbaCount) * SectorSize,
			Type:  ptype,
		}
		if p.Start+p.Size > devSize {
			return nil, com.ErrInval // table points off the disk
		}
		out = append(out, p)
		if ptype == TypeBSD {
			subs, err := readDisklabel(dev, p)
			if err == nil {
				out = append(out, subs...)
			}
		}
	}
	return out, nil
}

// readDisklabel parses the label in a BSD slice.
func readDisklabel(dev com.BlkIO, slice Partition) ([]Partition, error) {
	sector := make([]byte, SectorSize)
	if n, err := dev.Read(sector, slice.Start+labelSector*SectorSize); err != nil || n != SectorSize {
		return nil, com.ErrIO
	}
	if binary.LittleEndian.Uint32(sector[0:4]) != LabelMagic {
		return nil, com.ErrInval
	}
	n := int(binary.LittleEndian.Uint16(sector[4:6]))
	if n > 8 {
		return nil, com.ErrInval
	}
	var out []Partition
	for i := 0; i < n; i++ {
		e := sector[8+i*12:]
		off := binary.LittleEndian.Uint32(e[0:4])
		size := binary.LittleEndian.Uint32(e[4:8])
		fstype := e[8]
		if size == 0 {
			continue
		}
		p := Partition{
			Name:  fmt.Sprintf("%s%c", slice.Name, 'a'+i),
			Start: slice.Start + uint64(off)*SectorSize,
			Size:  uint64(size) * SectorSize,
			Type:  fstype,
		}
		if p.Start+p.Size > slice.Start+slice.Size {
			continue // label entry escapes the slice; skip it
		}
		out = append(out, p)
	}
	return out, nil
}

// --- builders (the fdisk/disklabel side, used by tools and tests).

// MBREntry describes one slice for WriteMBR.
type MBREntry struct {
	Type              byte
	StartLBA, Sectors uint32
}

// WriteMBR writes a partition table to sector 0.
func WriteMBR(dev com.BlkIO, entries []MBREntry) error {
	if len(entries) > 4 {
		return com.ErrInval
	}
	sector := make([]byte, SectorSize)
	if n, err := dev.Read(sector, 0); err != nil || n != SectorSize {
		return com.ErrIO
	}
	for i := range sector[mbrTableOff:mbrSigOff] {
		sector[mbrTableOff+i] = 0
	}
	for i, e := range entries {
		b := sector[mbrTableOff+i*mbrEntrySize:]
		b[4] = e.Type
		binary.LittleEndian.PutUint32(b[8:12], e.StartLBA)
		binary.LittleEndian.PutUint32(b[12:16], e.Sectors)
	}
	sector[mbrSigOff], sector[mbrSigOff+1] = 0x55, 0xAA
	if n, err := dev.Write(sector, 0); err != nil || n != SectorSize {
		return com.ErrIO
	}
	return nil
}

// LabelEntry describes one disklabel sub-partition (offsets relative to
// the slice, in sectors).
type LabelEntry struct {
	Offset, Sectors uint32
	FSType          byte
}

// WriteDisklabel writes a label into a slice starting at sliceStart
// bytes.
func WriteDisklabel(dev com.BlkIO, sliceStart uint64, entries []LabelEntry) error {
	if len(entries) > 8 {
		return com.ErrInval
	}
	sector := make([]byte, SectorSize)
	binary.LittleEndian.PutUint32(sector[0:4], LabelMagic)
	binary.LittleEndian.PutUint16(sector[4:6], uint16(len(entries)))
	for i, e := range entries {
		b := sector[8+i*12:]
		binary.LittleEndian.PutUint32(b[0:4], e.Offset)
		binary.LittleEndian.PutUint32(b[4:8], e.Sectors)
		b[8] = e.FSType
	}
	if n, err := dev.Write(sector, sliceStart+labelSector*SectorSize); err != nil || n != SectorSize {
		return com.ErrIO
	}
	return nil
}

// Open returns a BlkIO view of one partition (one reference to the
// caller); the view holds a reference on the underlying device.
func Open(dev com.BlkIO, p Partition) com.BlkIO {
	dev.AddRef()
	v := &view{dev: dev, start: p.Start, size: p.Size}
	v.Init()
	v.OnLastRelease = func() { dev.Release() }
	return v
}

// view is the partition window.
type view struct {
	com.RefCount
	dev         com.BlkIO
	start, size uint64
}

// QueryInterface implements com.IUnknown.
func (v *view) QueryInterface(iid com.GUID) (com.IUnknown, error) {
	switch iid {
	case com.UnknownIID, com.BlkIOIID:
		v.AddRef()
		return v, nil
	}
	return nil, com.ErrNoInterface
}

// BlockSize implements com.BlkIO (inherited from the device).
func (v *view) BlockSize() uint { return v.dev.BlockSize() }

// Read implements com.BlkIO.
func (v *view) Read(buf []byte, offset uint64) (uint, error) {
	if offset >= v.size {
		return 0, nil
	}
	if offset+uint64(len(buf)) > v.size {
		return 0, com.ErrInval
	}
	return v.dev.Read(buf, v.start+offset)
}

// Write implements com.BlkIO.
func (v *view) Write(buf []byte, offset uint64) (uint, error) {
	if offset+uint64(len(buf)) > v.size {
		return 0, com.ErrInval
	}
	return v.dev.Write(buf, v.start+offset)
}

// Size implements com.BlkIO.
func (v *view) Size() (uint64, error) { return v.size, nil }

// SetSize implements com.BlkIO; partitions are fixed.
func (v *view) SetSize(uint64) error { return com.ErrNotImplemented }

var _ com.BlkIO = (*view)(nil)
