package diskpart

import (
	"testing"

	"oskit/internal/com"
)

func blank(t *testing.T, sectors uint32) com.BlkIO {
	t.Helper()
	return com.NewMemBuf(make([]byte, sectors*SectorSize))
}

func TestMBRRoundTrip(t *testing.T) {
	dev := blank(t, 4096)
	err := WriteMBR(dev, []MBREntry{
		{Type: TypeLinux, StartLBA: 64, Sectors: 1000},
		{Type: TypeFAT16, StartLBA: 1064, Sectors: 500},
	})
	if err != nil {
		t.Fatal(err)
	}
	parts, err := ReadPartitions(dev)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 2 {
		t.Fatalf("parts = %+v", parts)
	}
	if parts[0].Name != "s1" || parts[0].Start != 64*512 || parts[0].Size != 1000*512 || parts[0].Type != TypeLinux {
		t.Fatalf("s1 = %+v", parts[0])
	}
	if parts[1].Name != "s2" || parts[1].Type != TypeFAT16 {
		t.Fatalf("s2 = %+v", parts[1])
	}
}

func TestNoTableRejected(t *testing.T) {
	if _, err := ReadPartitions(blank(t, 64)); err != com.ErrInval {
		t.Fatalf("blank disk: %v", err)
	}
}

func TestTablePointingOffDiskRejected(t *testing.T) {
	dev := blank(t, 128)
	if err := WriteMBR(dev, []MBREntry{{Type: TypeLinux, StartLBA: 64, Sectors: 100000}}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadPartitions(dev); err == nil {
		t.Fatal("oversized partition accepted")
	}
}

func TestDisklabelSubPartitions(t *testing.T) {
	dev := blank(t, 8192)
	if err := WriteMBR(dev, []MBREntry{{Type: TypeBSD, StartLBA: 64, Sectors: 8000}}); err != nil {
		t.Fatal(err)
	}
	err := WriteDisklabel(dev, 64*512, []LabelEntry{
		{Offset: 16, Sectors: 4000, FSType: 7}, // a: ffs
		{Offset: 4016, Sectors: 2000, FSType: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	parts, err := ReadPartitions(dev)
	if err != nil {
		t.Fatal(err)
	}
	// s1 (the slice) + s1a + s1b.
	if len(parts) != 3 {
		t.Fatalf("parts = %+v", parts)
	}
	if parts[1].Name != "s1a" || parts[1].Start != (64+16)*512 || parts[1].Size != 4000*512 {
		t.Fatalf("s1a = %+v", parts[1])
	}
	if parts[2].Name != "s1b" {
		t.Fatalf("s1b = %+v", parts[2])
	}
}

func TestPartitionView(t *testing.T) {
	dev := blank(t, 4096)
	if err := WriteMBR(dev, []MBREntry{{Type: TypeLinux, StartLBA: 64, Sectors: 1000}}); err != nil {
		t.Fatal(err)
	}
	parts, _ := ReadPartitions(dev)
	v := Open(dev, parts[0])
	if size, _ := v.Size(); size != 1000*512 {
		t.Fatalf("view size = %d", size)
	}
	// Writes land at the right absolute offset.
	if _, err := v.Write([]byte("partition data!!"), 512); err != nil {
		t.Fatal(err)
	}
	raw := make([]byte, 16)
	if _, err := dev.Read(raw, (64+1)*512); err != nil {
		t.Fatal(err)
	}
	if string(raw) != "partition data!!" {
		t.Fatalf("raw = %q", raw)
	}
	// Reads bounded by the view.
	if _, err := v.Read(make([]byte, 512), 1000*512); err != nil {
		t.Fatal("read at exact end should be EOF-like, got error")
	}
	if _, err := v.Write(make([]byte, 512), 1000*512-256); err != com.ErrInval {
		t.Fatalf("overhang write: %v", err)
	}
	if err := v.SetSize(1); err != com.ErrNotImplemented {
		t.Fatalf("SetSize: %v", err)
	}
	// Reference management: view holds the device.
	base := dev.(*com.MemBuf)
	if base.Refs() != 2 {
		t.Fatalf("device refs = %d", base.Refs())
	}
	v.Release()
	if base.Refs() != 1 {
		t.Fatalf("device refs after view release = %d", base.Refs())
	}
}
