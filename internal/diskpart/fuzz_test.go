package diskpart

import (
	"testing"

	"oskit/internal/com"
)

// FuzzReadPartitions feeds arbitrary on-disk bytes to the partition
// scanner: hand-rolled MBRs, truncated disks, disklabels whose counts
// and offsets lie.  The scanner's contract under hostile media is to
// return an error or a partial table — never panic, never index past
// the device.
func FuzzReadPartitions(f *testing.F) {
	// A blank disk, a valid MBR+disklabel image, and a bare MBR.
	f.Add(make([]byte, 4*SectorSize))

	img := make([]byte, 4096*SectorSize)
	dev := com.NewMemBuf(img)
	if err := WriteMBR(dev, []MBREntry{
		{Type: TypeBSD, StartLBA: 64, Sectors: 3000},
		{Type: TypeLinux, StartLBA: 3100, Sectors: 500},
	}); err != nil {
		f.Fatal(err)
	}
	if err := WriteDisklabel(dev, 64*SectorSize, []LabelEntry{
		{Offset: 16, Sectors: 2000, FSType: 7},
	}); err != nil {
		f.Fatal(err)
	}
	dev.Release()
	f.Add(append([]byte(nil), img[:8*SectorSize]...))

	mbrOnly := make([]byte, 8*SectorSize)
	dev = com.NewMemBuf(mbrOnly)
	if err := WriteMBR(dev, []MBREntry{{Type: TypeLinux, StartLBA: 2, Sectors: 4}}); err != nil {
		f.Fatal(err)
	}
	dev.Release()
	f.Add(append([]byte(nil), mbrOnly...))

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			return
		}
		dev := com.NewMemBuf(append([]byte(nil), data...))
		defer dev.Release()
		parts, err := ReadPartitions(dev)
		if err != nil {
			return
		}
		// Whatever parsed must at least stay on the device.
		size := uint64(len(data))
		for _, p := range parts {
			if p.Start+p.Size > size {
				t.Errorf("partition %q [%d,%d) exceeds device size %d",
					p.Name, p.Start, p.Start+p.Size, size)
			}
		}
	})
}
