package smp

import "sync"

// TestSchedule is a seeded, deterministic concurrency harness: it
// drives N virtual CPUs through one serialized interleaving chosen
// entirely by a seed, the same reproducibility contract the fault plane
// has (internal/faults: every decision is a pure function of the seed
// and an event index, no shared RNG, so a failing run is replayed from
// nothing but its seed).
//
// Each virtual CPU is a goroutine running the caller's body; exactly
// one runs at a time.  At every yield point the harness picks the next
// runnable CPU by hashing (seed, step) — splitmix64, the fault plane's
// mixer — modulo the runnable set, and records the pick.  Two runs of
// the same (seed, n, body) therefore execute the identical
// interleaving, and sweeping seeds sweeps interleavings: a lock-order
// or lost-wakeup bug that only bites under one ordering is found by a
// seed loop and then pinned as a regression test with that seed, which
// is how the per-connection-locking tests in internal/freebsd/net use
// this.
//
// The harness serializes the bodies, so it exercises orderings, not
// data races — run the same bodies unserialized under -race for those.
type TestSchedule struct {
	seed uint64
	n    int

	mu    sync.Mutex
	cond  *sync.Cond
	cur   int // CPU currently allowed to run
	done  []bool
	live  int
	step  uint64
	trace []int
}

// NewTestSchedule prepares a harness for n virtual CPUs driven by seed.
func NewTestSchedule(seed int64, n int) *TestSchedule {
	if n < 1 {
		n = 1
	}
	s := &TestSchedule{seed: uint64(seed), n: n, done: make([]bool, n), live: n, cur: -1}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// Run executes body once per virtual CPU (identities 0..n-1) under the
// seeded interleaving and returns the recorded schedule: the sequence
// of CPU picks, one per yield point plus one per CPU exit.  The body
// must call yield() at every point where an interleaving decision
// should be possible — typically before and after each lock
// acquisition under test.  Run blocks until every CPU's body returns.
func (s *TestSchedule) Run(body func(cpu int, yield func())) []int {
	var wg sync.WaitGroup
	for cpu := 0; cpu < s.n; cpu++ {
		cpu := cpu
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.waitTurn(cpu)
			body(cpu, func() { s.yield(cpu) })
			s.exit(cpu)
		}()
	}
	s.mu.Lock()
	s.advance()
	s.mu.Unlock()
	wg.Wait()
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]int(nil), s.trace...)
}

// waitTurn blocks cpu until the schedule hands it the (single) slot.
func (s *TestSchedule) waitTurn(cpu int) {
	s.mu.Lock()
	for s.cur != cpu {
		s.cond.Wait()
	}
	s.mu.Unlock()
}

// yield is one interleaving decision point: the running CPU offers the
// slot back and blocks until the schedule picks it again (possibly
// immediately — the pick is over every runnable CPU, itself included).
func (s *TestSchedule) yield(cpu int) {
	s.mu.Lock()
	s.advance()
	for s.cur != cpu {
		s.cond.Wait()
	}
	s.mu.Unlock()
}

// exit retires cpu and hands the slot to a survivor.
func (s *TestSchedule) exit(cpu int) {
	s.mu.Lock()
	s.done[cpu] = true
	s.live--
	s.advance()
	s.mu.Unlock()
}

// advance picks the next CPU — a pure function of (seed, step) over the
// runnable set, recorded in the trace.  Called with mu held.
func (s *TestSchedule) advance() {
	if s.live == 0 {
		s.cur = -1
		s.cond.Broadcast()
		return
	}
	pick := int(schedMix(s.seed, s.step) % uint64(s.live))
	s.step++
	for cpu := 0; cpu < s.n; cpu++ {
		if s.done[cpu] {
			continue
		}
		if pick == 0 {
			s.cur = cpu
			s.trace = append(s.trace, cpu)
			s.cond.Broadcast()
			return
		}
		pick--
	}
}

// schedMix is the splitmix64-style finalizer over (seed, step) — the
// harness's entire source of randomness, identical in shape to the
// fault plane's mixer so the two planes share one reproducibility
// story.
func schedMix(seed, idx uint64) uint64 {
	x := seed ^ (idx+1)*0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
