package smp

import (
	"testing"
)

// TestScheduleDeterministic is the harness's core contract: the same
// (seed, n, body) executes the identical interleaving, replayable from
// the seed alone — the fault plane's reproducibility story.
func TestScheduleDeterministic(t *testing.T) {
	run := func(seed int64) ([]int, []int) {
		var order []int
		s := NewTestSchedule(seed, 4)
		trace := s.Run(func(cpu int, yield func()) {
			for i := 0; i < 5; i++ {
				order = append(order, cpu) // serialized: no race
				yield()
			}
		})
		return trace, order
	}
	t1, o1 := run(42)
	t2, o2 := run(42)
	if len(t1) == 0 || len(t1) != len(t2) {
		t.Fatalf("trace lengths %d vs %d", len(t1), len(t2))
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatalf("trace diverged at %d: %d vs %d", i, t1[i], t2[i])
		}
	}
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatalf("execution order diverged at %d", i)
		}
	}
	// A different seed picks a different interleaving (with 4 CPUs and
	// 20+ decision points, identical traces would mean the seed is dead).
	t3, _ := run(1042)
	same := len(t3) == len(t1)
	if same {
		for i := range t1 {
			if t1[i] != t3[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("seeds 42 and 1042 produced identical interleavings")
	}
}

// TestScheduleSerializes checks the single-slot invariant: bodies never
// overlap, so unsynchronized shared state sees no lost updates.
func TestScheduleSerializes(t *testing.T) {
	counter := 0
	inBody := 0
	s := NewTestSchedule(7, 8)
	s.Run(func(cpu int, yield func()) {
		for i := 0; i < 1000; i++ {
			inBody++
			if inBody != 1 {
				t.Errorf("two CPUs in the critical region")
			}
			counter++
			inBody--
			if i%100 == 0 {
				yield()
			}
		}
	})
	if counter != 8000 {
		t.Fatalf("counter = %d (lost updates)", counter)
	}
}

// TestScheduleEveryCPURuns: the pick function must not starve a CPU
// forever — every identity appears in the trace.
func TestScheduleEveryCPURuns(t *testing.T) {
	const n = 6
	seen := make([]bool, n)
	s := NewTestSchedule(3, n)
	s.Run(func(cpu int, yield func()) {
		seen[cpu] = true
		yield()
	})
	for cpu, ok := range seen {
		if !ok {
			t.Fatalf("cpu %d never ran", cpu)
		}
	}
}
