// Package smp is the kit's minimal multiprocessor support library (Table
// 3 "smp", 868 filtered lines in the paper; similarly modest here).  On
// the simulated platform "processors" are goroutines pinned to CPU
// identities; the library provides what the paper's clients needed:
// processor enumeration and startup, spin locks that compose with the
// interrupt-exclusion model, and a rendezvous barrier.
package smp

import (
	"errors"
	"sync"
	"sync/atomic"

	"oskit/internal/core"
)

// System is one machine's MP state.
type System struct {
	env  *core.Env
	n    int
	wg   sync.WaitGroup
	once sync.Once
}

// New prepares an n-processor system over env (processor 0 is the boot
// processor the kernel support library already started).
func New(env *core.Env, n int) *System {
	if n < 1 {
		n = 1
	}
	return &System{env: env, n: n}
}

// NumCPUs returns the processor count.
func (s *System) NumCPUs() int { return s.n }

// StartAll boots the application processors: fn runs concurrently with
// cpu identities 1..n-1 (the caller is cpu 0).  It returns immediately;
// Wait joins.
func (s *System) StartAll(fn func(cpu int)) {
	s.once.Do(func() {
		for cpu := 1; cpu < s.n; cpu++ {
			cpu := cpu
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				fn(cpu)
			}()
		}
	})
}

// Wait blocks until every application processor's fn returned.
func (s *System) Wait() { s.wg.Wait() }

// SpinLock is a test-and-set lock usable from any processor.  Unlike a
// plain mutex it composes with the execution model: LockIntr also raises
// interrupt exclusion (spin_lock_irqsave), so the same lock can protect
// state shared with interrupt handlers.
type SpinLock struct {
	held atomic.Bool
}

// Lock spins until the lock is acquired.
func (l *SpinLock) Lock() {
	for !l.held.CompareAndSwap(false, true) {
		// Spin; the simulated platform has real parallelism underneath,
		// so pure spinning makes progress.
	}
}

// Unlock releases the lock.
func (l *SpinLock) Unlock() {
	if !l.held.CompareAndSwap(true, false) {
		panic("smp: unlock of unheld spin lock")
	}
}

// TryLock attempts the lock without spinning.
func (l *SpinLock) TryLock() bool { return l.held.CompareAndSwap(false, true) }

// LockIntr acquires the lock with interrupts excluded, returning the
// unlock (spin_lock_irqsave/spin_unlock_irqrestore).
func (l *SpinLock) LockIntr(env *core.Env) func() {
	inIntr := env.InIntr()
	if !inIntr {
		env.IntrDisable()
	}
	l.Lock()
	return func() {
		l.Unlock()
		if !inIntr {
			env.IntrEnable()
		}
	}
}

// ErrBarrierClosed is returned by Sync when the barrier has been
// poisoned with Close: the rendezvous can never complete because a
// participant is gone.
var ErrBarrierClosed = errors.New("smp: barrier closed")

// Barrier is a reusable rendezvous for n processors.
type Barrier struct {
	mu     sync.Mutex
	cond   *sync.Cond
	n      int
	count  int
	gen    int
	closed bool
}

// NewBarrier creates a barrier for n participants.
func NewBarrier(n int) *Barrier {
	b := &Barrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Sync blocks until all n participants have arrived, or until the
// barrier is closed — a processor that panicked or was shut down never
// arrives, and without the poison path every surviving participant
// would block forever.  Returns ErrBarrierClosed once Close has run.
func (b *Barrier) Sync() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return ErrBarrierClosed
	}
	gen := b.gen
	b.count++
	if b.count == b.n {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
		return nil
	}
	for gen == b.gen && !b.closed {
		b.cond.Wait()
	}
	if b.closed && gen == b.gen {
		return ErrBarrierClosed
	}
	return nil
}

// Close poisons the barrier: every blocked Sync wakes with
// ErrBarrierClosed, and every later Sync fails immediately.  Idempotent.
// Call it when a participant exits abnormally so its siblings don't
// deadlock waiting for an arrival that will never come.
func (b *Barrier) Close() {
	b.mu.Lock()
	if !b.closed {
		b.closed = true
		b.cond.Broadcast()
	}
	b.mu.Unlock()
}
