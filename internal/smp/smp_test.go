package smp

import (
	"sync/atomic"
	"testing"

	"oskit/internal/core"
	"oskit/internal/hw"
)

func TestStartAllAndWait(t *testing.T) {
	m := hw.NewMachine(hw.Config{MemBytes: 1 << 20})
	defer m.Halt()
	env := core.NewEnv(m, nil)
	s := New(env, 4)
	if s.NumCPUs() != 4 {
		t.Fatalf("NumCPUs = %d", s.NumCPUs())
	}
	var mask atomic.Uint32
	s.StartAll(func(cpu int) { mask.Or(1 << cpu) })
	s.StartAll(func(cpu int) { mask.Or(1 << 31) }) // second call: no-op
	s.Wait()
	if mask.Load() != 0b1110 {
		t.Fatalf("cpu mask = %#b", mask.Load())
	}
}

func TestSpinLockMutualExclusion(t *testing.T) {
	var l SpinLock
	counter := 0
	b := NewBarrier(4)
	s := New(nil2(t), 5)
	s.StartAll(func(cpu int) {
		if err := b.Sync(); err != nil {
			t.Errorf("Sync: %v", err)
		}
		for i := 0; i < 10000; i++ {
			l.Lock()
			counter++
			l.Unlock()
		}
	})
	s.Wait()
	if counter != 40000 {
		t.Fatalf("counter = %d (lost updates)", counter)
	}
	if !l.TryLock() {
		t.Fatal("TryLock on free lock failed")
	}
	if l.TryLock() {
		t.Fatal("TryLock on held lock succeeded")
	}
	l.Unlock()
	defer func() {
		if recover() == nil {
			t.Fatal("double unlock did not panic")
		}
	}()
	l.Unlock()
}

func TestLockIntrExcludesHandlers(t *testing.T) {
	m := hw.NewMachine(hw.Config{MemBytes: 1 << 20})
	defer m.Halt()
	env := core.NewEnv(m, nil)
	shared := 0
	fired := make(chan struct{}, 1)
	var l SpinLock
	m.Intr.SetHandler(5, func(int) {
		// Handler also takes the lock (from interrupt level).
		unlock := l.LockIntr(env)
		shared++
		unlock()
		fired <- struct{}{}
	})
	m.Intr.SetMask(5, false)

	unlock := l.LockIntr(env) // process level: interrupts now excluded
	m.Intr.Raise(5)
	shared++
	unlock()
	<-fired
	if shared != 2 {
		t.Fatalf("shared = %d", shared)
	}
}

func TestBarrierReuse(t *testing.T) {
	const n = 3
	b := NewBarrier(n)
	var phase atomic.Int32
	var wrong atomic.Int32
	s := New(nil2(t), n+1)
	s.StartAll(func(cpu int) {
		for round := int32(1); round <= 5; round++ {
			b.Sync()
			if phase.Load() != round-1 && phase.Load() != round {
				wrong.Add(1)
			}
			if cpu == 1 {
				phase.Store(round)
			}
			b.Sync()
		}
	})
	s.Wait()
	if wrong.Load() != 0 {
		t.Fatalf("%d barrier-phase violations", wrong.Load())
	}
	if phase.Load() != 5 {
		t.Fatalf("phase = %d", phase.Load())
	}
}

// TestBarrierClose is the poison-path regression: before Close existed,
// a participant that exits abnormally (panic, shutdown) left its
// siblings blocked in Sync forever — this test deadlocked.  Close wakes
// every waiter with ErrBarrierClosed and fails all later arrivals.
func TestBarrierClose(t *testing.T) {
	b := NewBarrier(3)
	errs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() { errs <- b.Sync() }() // only 2 of 3 arrive: blocked
	}
	// The third participant dies instead of arriving.
	b.Close()
	for i := 0; i < 2; i++ {
		if err := <-errs; err != ErrBarrierClosed {
			t.Fatalf("waiter %d: err = %v, want ErrBarrierClosed", i, err)
		}
	}
	if err := b.Sync(); err != ErrBarrierClosed {
		t.Fatalf("post-close Sync: err = %v, want ErrBarrierClosed", err)
	}
	b.Close() // idempotent
}

func nil2(t *testing.T) *core.Env {
	t.Helper()
	m := hw.NewMachine(hw.Config{MemBytes: 1 << 20})
	t.Cleanup(m.Halt)
	return core.NewEnv(m, nil)
}
