package kern

import (
	"encoding/binary"
	"fmt"

	"oskit/internal/core"
	"oskit/internal/hw"
)

// x86-style two-level page tables, built in simulated physical memory
// exactly as the real kernel support library built them in RAM: a page
// directory of 1024 4-byte entries, each pointing at a page table of 1024
// entries mapping 4 KB pages.  The encodings are the real i386 bit
// layouts, so tests can check them against the architecture manual.
//
// This is one of the deliberately machine-specific facilities of §3.2:
// higher-level components may build architecture-neutral layers above it,
// but the raw mechanism stays accessible.

// PageSize is the i386 page size.
const PageSize = 4096

// Page table entry bits (i386).
const (
	PTEPresent  uint32 = 1 << 0
	PTEWrite    uint32 = 1 << 1
	PTEUser     uint32 = 1 << 2
	PTEAccessed uint32 = 1 << 5
	PTEDirty    uint32 = 1 << 6
	pteAddrMask uint32 = 0xfffff000
)

// PageDir is one address space: a page directory plus the page tables it
// points to, all living in (simulated) physical memory allocated from the
// environment's memory service.
type PageDir struct {
	env    *core.Env
	pdAddr hw.PhysAddr
	pd     []byte
}

// NewPageDir allocates an empty page directory.
func NewPageDir(env *core.Env) (*PageDir, error) {
	addr, buf, ok := env.MemAlloc(PageSize, 0, PageSize)
	if !ok {
		return nil, fmt.Errorf("kern: out of memory for page directory")
	}
	for i := range buf {
		buf[i] = 0
	}
	return &PageDir{env: env, pdAddr: addr, pd: buf}, nil
}

// Base returns the physical address of the page directory (what would be
// loaded into CR3).
func (p *PageDir) Base() hw.PhysAddr { return p.pdAddr }

// Map establishes va -> pa with the given PTE permission bits (PTEPresent
// is implied).  Both addresses must be page aligned.  An existing mapping
// is replaced.
func (p *PageDir) Map(va, pa uint32, flags uint32) error {
	if va&(PageSize-1) != 0 || pa&(PageSize-1) != 0 {
		return fmt.Errorf("kern: unaligned mapping %#x -> %#x", va, pa)
	}
	pt, err := p.pageTable(va, true)
	if err != nil {
		return err
	}
	pti := (va >> 12) & 0x3ff
	putPTE(pt, pti, pa|flags|PTEPresent)
	return nil
}

// Unmap removes the mapping for va; absent mappings are ignored.
func (p *PageDir) Unmap(va uint32) {
	pt, err := p.pageTable(va, false)
	if err != nil || pt == nil {
		return
	}
	putPTE(pt, (va>>12)&0x3ff, 0)
}

// Translate walks the tables as the MMU would, returning the physical
// address for va and the PTE flags.
func (p *PageDir) Translate(va uint32) (pa uint32, flags uint32, ok bool) {
	pt, err := p.pageTable(va, false)
	if err != nil || pt == nil {
		return 0, 0, false
	}
	pte := getPTE(pt, (va>>12)&0x3ff)
	if pte&PTEPresent == 0 {
		return 0, 0, false
	}
	return pte&pteAddrMask | va&(PageSize-1), pte &^ pteAddrMask, true
}

// pageTable returns the page table covering va, creating it when create
// is set; returns nil with no error when absent and not creating.
func (p *PageDir) pageTable(va uint32, create bool) ([]byte, error) {
	pdi := va >> 22
	pde := getPTE(p.pd, pdi)
	if pde&PTEPresent == 0 {
		if !create {
			return nil, nil
		}
		addr, buf, ok := p.env.MemAlloc(PageSize, 0, PageSize)
		if !ok {
			return nil, fmt.Errorf("kern: out of memory for page table")
		}
		for i := range buf {
			buf[i] = 0
		}
		// Directory entries carry Write|User so the PTE governs.
		putPTE(p.pd, pdi, addr|PTEPresent|PTEWrite|PTEUser)
		return buf, nil
	}
	return p.env.Machine.Mem.Slice(pde&pteAddrMask, PageSize)
}

// Free releases the directory and every page table (not the mapped
// frames, which the client owns).
func (p *PageDir) Free() {
	for pdi := uint32(0); pdi < 1024; pdi++ {
		pde := getPTE(p.pd, pdi)
		if pde&PTEPresent != 0 {
			p.env.MemFree(pde&pteAddrMask, PageSize)
		}
	}
	p.env.MemFree(p.pdAddr, PageSize)
	p.pd = nil
}

func getPTE(table []byte, i uint32) uint32 {
	return binary.LittleEndian.Uint32(table[i*4:])
}

func putPTE(table []byte, i uint32, v uint32) {
	binary.LittleEndian.PutUint32(table[i*4:], v)
}
