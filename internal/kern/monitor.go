package kern

import (
	"fmt"
	"strconv"
	"strings"

	"oskit/internal/com"
	"oskit/internal/hw"
)

// Monitor is the local kernel debugger the paper lists as future work
// (§3.5: "we plan to integrate a local debugger into the OSKit as well,
// which can be used when a separate machine running GDB is not
// available").  It is a kern.Debugger that, on any trap, drops into a
// command loop on the console: inspect and patch physical memory, dump
// the documented trap frame, then continue or halt.
//
// Commands:
//
//	r                 dump the trap frame registers
//	m <addr> [len]    hex-dump physical memory (addr hex, len decimal)
//	w <addr> <b>...   write bytes (all hex)
//	c                 continue the interrupted computation
//	halt              decline the trap (falls to the default handler)
//	help              this text
type Monitor struct {
	console com.Stream
	mem     *hw.PhysMem

	// Entered counts monitor activations (tests).
	Entered int
}

// NewMonitor builds a monitor talking on console (normally the kernel
// console stream) and inspecting mem.
func NewMonitor(console com.Stream, mem *hw.PhysMem) *Monitor {
	return &Monitor{console: console, mem: mem}
}

// Trap implements Debugger.
func (mon *Monitor) Trap(f *TrapFrame) bool {
	mon.Entered++
	mon.printf("\nmonitor: %s\n%s\n", trapName(f.TrapNo), f.String())
	for {
		mon.printf("kd> ")
		line, ok := mon.readLine()
		if !ok {
			return false // console gone: let the default handler rule
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "c":
			return true
		case "halt":
			return false
		case "r":
			mon.printf("%s\n", f.String())
		case "m":
			mon.dump(fields[1:])
		case "w":
			mon.write(fields[1:])
		case "help":
			mon.printf("r | m <addr> [len] | w <addr> <byte>... | c | halt\n")
		default:
			mon.printf("?%s (try help)\n", fields[0])
		}
	}
}

func (mon *Monitor) dump(args []string) {
	if len(args) < 1 {
		mon.printf("m <hexaddr> [len]\n")
		return
	}
	addr, err := strconv.ParseUint(strings.TrimPrefix(args[0], "0x"), 16, 32)
	if err != nil {
		mon.printf("bad address %q\n", args[0])
		return
	}
	n := uint64(64)
	if len(args) > 1 {
		if v, err := strconv.ParseUint(args[1], 10, 16); err == nil {
			n = v
		}
	}
	buf, err := mon.mem.Slice(uint32(addr), uint32(n))
	if err != nil {
		mon.printf("%v\n", err)
		return
	}
	for off := 0; off < len(buf); off += 16 {
		end := off + 16
		if end > len(buf) {
			end = len(buf)
		}
		mon.printf("%08x ", addr+uint64(off))
		for i := off; i < end; i++ {
			mon.printf(" %02x", buf[i])
		}
		mon.printf("  ")
		for i := off; i < end; i++ {
			c := buf[i]
			if c < 32 || c > 126 {
				c = '.'
			}
			mon.printf("%c", c)
		}
		mon.printf("\n")
	}
}

func (mon *Monitor) write(args []string) {
	if len(args) < 2 {
		mon.printf("w <hexaddr> <hexbyte>...\n")
		return
	}
	addr, err := strconv.ParseUint(strings.TrimPrefix(args[0], "0x"), 16, 32)
	if err != nil {
		mon.printf("bad address %q\n", args[0])
		return
	}
	buf, err := mon.mem.Slice(uint32(addr), uint32(len(args)-1))
	if err != nil {
		mon.printf("%v\n", err)
		return
	}
	for i, a := range args[1:] {
		v, err := strconv.ParseUint(a, 16, 8)
		if err != nil {
			mon.printf("bad byte %q\n", a)
			return
		}
		buf[i] = byte(v)
	}
	mon.printf("ok\n")
}

func (mon *Monitor) printf(format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	_, _ = mon.console.Write([]byte(msg))
}

// readLine gathers console bytes to a newline, echoing nothing (the
// console device echoes if it wants to).
func (mon *Monitor) readLine() (string, bool) {
	var line []byte
	var b [1]byte
	for {
		n, err := mon.console.Read(b[:])
		if err != nil || n == 0 {
			return "", false
		}
		switch b[0] {
		case '\n', '\r':
			return string(line), true
		default:
			line = append(line, b[0])
		}
	}
}
