package kern

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	"oskit/internal/boot"
	"oskit/internal/core"
	"oskit/internal/hw"
)

// consoleCapture attaches a buffer to a machine's Com1.
type consoleCapture struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (c *consoleCapture) Write(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.buf.Write(p)
}

func (c *consoleCapture) String() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.buf.String()
}

func TestBootHelloWorld(t *testing.T) {
	m := hw.NewMachine(hw.Config{Name: "hello"})
	cap := &consoleCapture{}
	m.Com1.AttachWriter(cap)
	img := boot.BuildImage("kernel hello -- USER=utah", nil)
	code, err := Boot(m, img, func(k *Kernel, args []string, env map[string]string) int {
		k.Printf("Hello, World! args=%v user=%s\n", args, env["USER"])
		return 42
	})
	if err != nil {
		t.Fatal(err)
	}
	if code != 42 {
		t.Fatalf("exit code = %d", code)
	}
	out := cap.String()
	if !strings.Contains(out, "Hello, World! args=[kernel hello] user=utah") {
		t.Fatalf("console output = %q", out)
	}
	if !strings.Contains(out, "\r\n") {
		t.Fatal("console did not cook newlines")
	}
}

func TestBootReservesModulesAndLowMemory(t *testing.T) {
	m := hw.NewMachine(hw.Config{MemBytes: 8 << 20})
	img := boot.BuildImage("k", []boot.ModuleSpec{
		{String: "mod", Data: bytes.Repeat([]byte{0x5A}, 3000)},
	})
	_, err := Boot(m, img, func(k *Kernel, args []string, env map[string]string) int {
		mod, ok := k.Info.FindModule("mod")
		if !ok {
			t.Error("module missing from Info")
			return 1
		}
		// The module's memory must be intact and never handed out.
		data := k.Machine.Mem.MustSlice(mod.Addr, mod.Size)
		for range [200]int{} {
			addr, _, ok := k.Env.MemAlloc(4096, 0, 0)
			if !ok {
				break
			}
			if addr < ReservedBase {
				t.Errorf("allocation in reserved low memory: %#x", addr)
			}
			if addr+4096 > mod.Addr && addr < mod.Addr+mod.Size {
				t.Errorf("allocation inside boot module: %#x", addr)
			}
		}
		if data[0] != 0x5A || data[2999] != 0x5A {
			t.Error("boot module corrupted")
		}
		return 0
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBootClockRuns(t *testing.T) {
	m := hw.NewMachine(hw.Config{})
	img := boot.BuildImage("k", nil)
	_, err := Boot(m, img, func(k *Kernel, args []string, env map[string]string) int {
		m.Timer.Start(time.Millisecond)
		deadline := time.After(2 * time.Second)
		for k.Env.Ticks() < 3 {
			select {
			case <-deadline:
				t.Error("clock did not advance")
				return 1
			default:
				time.Sleep(time.Millisecond)
			}
		}
		return 0
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTrapDefaultPanics(t *testing.T) {
	m := hw.NewMachine(hw.Config{})
	defer m.Halt()
	k, err := Setup(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("default trap handler did not panic the kernel")
		}
	}()
	k.Trap(&TrapFrame{TrapNo: TrapGPF, Err: 0x10, EIP: 0xdeadbeef})
}

func TestTrapHandlerOverride(t *testing.T) {
	m := hw.NewMachine(hw.Config{})
	defer m.Halt()
	k, err := Setup(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	var seen *TrapFrame
	old := k.SetTrapHandler(TrapBreakpoint, func(k *Kernel, f *TrapFrame) error {
		seen = f
		return nil
	})
	if old != nil {
		t.Fatal("fresh vector had a handler")
	}
	k.Breakpoint(0x1234)
	if seen == nil || seen.EIP != 0x1234 || seen.TrapNo != TrapBreakpoint {
		t.Fatalf("handler saw %+v", seen)
	}
}

type fakeDebugger struct {
	frames []*TrapFrame
	eat    bool
}

func (d *fakeDebugger) Trap(f *TrapFrame) bool {
	d.frames = append(d.frames, f)
	return d.eat
}

func TestDebuggerSeesTrapsFirst(t *testing.T) {
	m := hw.NewMachine(hw.Config{})
	defer m.Halt()
	k, err := Setup(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	d := &fakeDebugger{eat: true}
	k.SetDebugger(d)
	handlerRan := false
	k.SetTrapHandler(TrapBreakpoint, func(*Kernel, *TrapFrame) error {
		handlerRan = true
		return nil
	})
	k.Breakpoint(1)
	if len(d.frames) != 1 {
		t.Fatal("debugger did not see the trap")
	}
	if handlerRan {
		t.Fatal("vector handler ran although debugger consumed the trap")
	}
	// Debugger declining passes through to the vector.
	d.eat = false
	k.Breakpoint(2)
	if !handlerRan {
		t.Fatal("vector handler skipped after debugger declined")
	}
	k.SetDebugger(nil)
}

func TestTrapFrameRegsRoundTrip(t *testing.T) {
	f := &TrapFrame{EAX: 1, ECX: 2, EDX: 3, EBX: 4, ESP: 5, EBP: 6, ESI: 7, EDI: 8,
		EIP: 9, EFLAGS: 10, CS: 11, SS: 12, DS: 13, ES: 14, FS: 15, GS: 16}
	regs := f.Regs()
	for i, v := range regs {
		if v != uint32(i+1) {
			t.Fatalf("reg %d = %d (GDB ordering broken)", i, v)
		}
	}
	if !f.SetReg(8, 0xfeed) || f.EIP != 0xfeed {
		t.Fatal("SetReg(eip) failed")
	}
	if f.SetReg(99, 0) || f.SetReg(-1, 0) {
		t.Fatal("bad register index accepted")
	}
	if !strings.Contains(f.String(), "eip=0000feed") {
		t.Fatalf("frame dump: %s", f.String())
	}
}

func TestPageDirMapTranslate(t *testing.T) {
	m := hw.NewMachine(hw.Config{MemBytes: 8 << 20})
	defer m.Halt()
	k, err := Setup(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	pd, err := NewPageDir(k.Env)
	if err != nil {
		t.Fatal(err)
	}
	defer pd.Free()
	if pd.Base()&(PageSize-1) != 0 {
		t.Fatalf("page directory not page aligned: %#x", pd.Base())
	}

	// Map a user page and a kernel page in different 4 MB regions.
	if err := pd.Map(0x0040_0000, 0x0030_0000, PTEWrite|PTEUser); err != nil {
		t.Fatal(err)
	}
	if err := pd.Map(0xC000_1000, 0x0031_0000, PTEWrite); err != nil {
		t.Fatal(err)
	}

	pa, flags, ok := pd.Translate(0x0040_0ABC)
	if !ok || pa != 0x0030_0ABC {
		t.Fatalf("translate = %#x, %v", pa, ok)
	}
	if flags&PTEUser == 0 || flags&PTEWrite == 0 || flags&PTEPresent == 0 {
		t.Fatalf("flags = %#x", flags)
	}
	pa, flags, ok = pd.Translate(0xC000_1FFF)
	if !ok || pa != 0x0031_0FFF || flags&PTEUser != 0 {
		t.Fatalf("kernel translate = %#x flags=%#x ok=%v", pa, flags, ok)
	}

	// Unmapped addresses miss.
	if _, _, ok := pd.Translate(0x0800_0000); ok {
		t.Fatal("translated an unmapped address")
	}
	pd.Unmap(0x0040_0000)
	if _, _, ok := pd.Translate(0x0040_0000); ok {
		t.Fatal("translated an unmapped page")
	}
	// Unaligned mappings rejected.
	if err := pd.Map(0x1001, 0x2000, 0); err == nil {
		t.Fatal("unaligned va accepted")
	}
	if err := pd.Map(0x1000, 0x2002, 0); err == nil {
		t.Fatal("unaligned pa accepted")
	}
}

func TestPageDirEntriesAreRealI386Encodings(t *testing.T) {
	m := hw.NewMachine(hw.Config{MemBytes: 8 << 20})
	defer m.Halt()
	k, _ := Setup(m, nil)
	pd, err := NewPageDir(k.Env)
	if err != nil {
		t.Fatal(err)
	}
	defer pd.Free()
	if err := pd.Map(0x0000_3000, 0x0050_0000, PTEWrite); err != nil {
		t.Fatal(err)
	}
	// Walk the raw memory as the MMU would: PDE 0 -> PT, PTE 3.
	pdMem := m.Mem.MustSlice(pd.Base(), PageSize)
	pde := uint32(pdMem[0]) | uint32(pdMem[1])<<8 | uint32(pdMem[2])<<16 | uint32(pdMem[3])<<24
	if pde&PTEPresent == 0 {
		t.Fatal("PDE 0 not present")
	}
	pt := m.Mem.MustSlice(pde&0xfffff000, PageSize)
	off := 3 * 4
	pte := uint32(pt[off]) | uint32(pt[off+1])<<8 | uint32(pt[off+2])<<16 | uint32(pt[off+3])<<24
	if pte != 0x0050_0000|PTEPresent|PTEWrite {
		t.Fatalf("raw PTE = %#x", pte)
	}
}

func TestMemAvailAndEnvDefaults(t *testing.T) {
	m := hw.NewMachine(hw.Config{MemBytes: 8 << 20})
	defer m.Halt()
	k, err := Setup(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	avail := k.MemAvail()
	if avail == 0 || avail > 8<<20 {
		t.Fatalf("MemAvail = %d", avail)
	}
	// DMA-typed allocations stay below the limit even on this small
	// machine (whole memory is below 16 MB, so this just checks flags
	// plumbing).
	addr, _, ok := k.Env.MemAlloc(4096, core.MemDMA, 0)
	if !ok || addr >= hw.DMALimit {
		t.Fatalf("DMA alloc = %#x, %v", addr, ok)
	}
}
