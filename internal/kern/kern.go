// Package kern is the kit's kernel support library (paper §3.2): easy
// access to the raw (simulated) hardware without overhead or obscured
// abstractions.
//
// Like its x86 original — which moved the processor from 16-bit mode into
// a convenient 32-bit execution environment, built segment and page
// tables, installed an interrupt vector table with default handlers, and
// located the boot modules — Boot does everything necessary so that
// "interrupts, traps, debugging, and other standard facilities work as
// expected", then calls the client's Main with the arguments and
// environment passed by the boot loader.  A "Hello World" kernel is as
// simple as a "Hello World" application (examples/quickstart).
//
// Everything Boot installs can be modified or overridden by the client
// OS: trap handlers, the memory arena, every Env service.  The
// architecture-specific pieces (trap frame layout, page tables) are
// deliberately exposed (§4.6) — the layout of the trap frame is
// documented and is the same for synchronous traps and hardware
// interrupts, the fix the paper reports making for ML/OS and Java/PC
// (§6.2.10).
package kern

import (
	"fmt"

	"oskit/internal/boot"
	"oskit/internal/com"
	"oskit/internal/core"
	"oskit/internal/hw"
	"oskit/internal/lmm"
	"oskit/internal/stats"
)

// ReservedBase is the physical memory below which the kit never
// allocates: the BIOS/kernel-image analog of the PC's low 1 MB.
const ReservedBase hw.PhysAddr = 0x100000

// Main is the client OS entry point, called once the machine is up.  The
// returned value becomes the kernel's exit code.
type Main func(k *Kernel, args []string, env map[string]string) int

// Kernel is the per-machine kernel support state.
type Kernel struct {
	Machine *hw.Machine
	Env     *core.Env
	Info    *boot.Info
	Console *Console

	traps    [NumTraps]TrapHandler
	debugger Debugger
}

// Boot brings a machine into the convenient execution environment and
// runs main on it, returning main's exit code.
//
// Steps, mirroring §3.2: load the boot image (modules into physical
// memory); build the LMM arena typing memory below hw.DMALimit as
// DMA-able at low priority; reserve the low-memory kernel area and every
// boot module; create the Env with its defaults; install default trap
// handlers and the clock interrupt; unmask the timer; call main.
//
// When main returns, the machine is simply halted without any cleanup —
// the §6.2.10 deficiency is reproduced faithfully: network peers of an
// exiting kernel are left hanging.
func Boot(m *hw.Machine, image []byte, main Main) (int, error) {
	k, err := Setup(m, image)
	if err != nil {
		return 0, err
	}
	defer m.Halt()
	args, env := k.Info.Args()
	return main(k, args, env), nil
}

// Setup performs all of Boot's machine initialization but returns the
// Kernel instead of calling a Main, for clients (and tests) that drive
// the machine themselves.  The caller owns the eventual Machine.Halt.
func Setup(m *hw.Machine, image []byte) (*Kernel, error) {
	var info *boot.Info
	if image != nil {
		var err error
		info, err = boot.Load(image, m.Mem)
		if err != nil {
			return nil, err
		}
	} else {
		info = &boot.Info{MemBytes: m.Mem.Size()}
	}

	arena, err := buildArena(m.Mem, info)
	if err != nil {
		return nil, err
	}
	env := core.NewEnv(m, arena)

	// Export the physical-memory arena's statistics as a com.Stats set
	// so evalrig and oskit-stats can discover the machine's allocator
	// behaviour next to the network counters.
	set := stats.NewSet("kern")
	arena.AttachStats(set)
	env.Registry.Register(com.StatsIID, set)
	set.Release()

	k := &Kernel{Machine: m, Env: env, Info: info}
	k.Console = newConsole(m.Com1)
	env.Putchar = k.Console.Putchar

	for v := range k.traps {
		k.traps[v] = nil
	}

	// The clock interrupt advances the tick counter and runs callouts.
	m.Intr.SetHandler(hw.IRQTimer, func(int) { env.Clock().Tick() })
	m.Intr.SetMask(hw.IRQTimer, false)

	return k, nil
}

// buildArena types the machine's physical memory the way the paper's
// kernel support library did: DMA-able low memory in a low-priority
// region so it is consumed only on demand, everything else high priority.
// The kernel area below ReservedBase and all boot modules are reserved.
func buildArena(mem *hw.PhysMem, info *boot.Info) (*lmm.Arena, error) {
	arena := lmm.NewArena()
	size := mem.Size()
	dmaTop := size
	if dmaTop > hw.DMALimit {
		dmaTop = hw.DMALimit
	}
	if err := arena.AddRegion(0, dmaTop, core.LMMFlagDMA, 0); err != nil {
		return nil, err
	}
	if size > dmaTop {
		if err := arena.AddRegion(dmaTop, size-dmaTop, core.LMMFlagHigh, 10); err != nil {
			return nil, err
		}
	}
	arena.AddFree(0, size)
	arena.RemoveFree(0, ReservedBase)
	for _, mod := range info.Modules {
		// Reserve whole pages: the loader placed modules page-aligned.
		end := (mod.Addr + mod.Size + lmm.PageSize - 1) &^ (lmm.PageSize - 1)
		arena.RemoveFree(mod.Addr, end-mod.Addr)
	}
	return arena, nil
}

// MemAvail reports free physical memory (a convenience over the arena).
func (k *Kernel) MemAvail() uint32 {
	if a := k.Env.Arena(); a != nil {
		return a.Avail(0)
	}
	return 0
}

// Printf formats to the kernel console (the quick diagnostic path; the
// minimal C library provides the full formatted-output stack).
func (k *Kernel) Printf(format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	for i := 0; i < len(msg); i++ {
		k.Console.Putchar(msg[i])
	}
}
