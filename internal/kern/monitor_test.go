package kern

import (
	"strings"
	"sync"
	"testing"

	"oskit/internal/com"
	"oskit/internal/hw"
)

// scriptedStream plays a canned command script and records output.
type scriptedStream struct {
	com.RefCount
	mu    sync.Mutex
	input []byte
	out   strings.Builder
}

func newScripted(script string) *scriptedStream {
	s := &scriptedStream{input: []byte(script)}
	s.Init()
	return s
}

func (s *scriptedStream) QueryInterface(iid com.GUID) (com.IUnknown, error) {
	if iid == com.UnknownIID || iid == com.StreamIID {
		s.AddRef()
		return s, nil
	}
	return nil, com.ErrNoInterface
}

func (s *scriptedStream) Read(buf []byte) (uint, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.input) == 0 {
		return 0, nil // console gone
	}
	n := copy(buf, s.input)
	s.input = s.input[n:]
	return uint(n), nil
}

func (s *scriptedStream) Write(buf []byte) (uint, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.out.Write(buf)
	return uint(len(buf)), nil
}

func (s *scriptedStream) output() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.out.String()
}

func TestMonitorSession(t *testing.T) {
	m := hw.NewMachine(hw.Config{MemBytes: 4 << 20})
	defer m.Halt()
	k, err := Setup(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	copy(m.Mem.MustSlice(0x1000, 8), "MONDATA!")

	console := newScripted(strings.Join([]string{
		"help",
		"r",
		"m 1000 8",
		"w 1000 58 59", // patch "XY" over "MO"
		"m 1000 8",
		"bogus",
		"c",
	}, "\n") + "\n")
	mon := NewMonitor(console, m.Mem)
	k.SetDebugger(mon)

	k.Breakpoint(0xBEEF)
	if mon.Entered != 1 {
		t.Fatalf("Entered = %d", mon.Entered)
	}
	out := console.output()
	for _, want := range []string{
		"monitor: trap: breakpoint",
		"eip=0000beef",
		"4d 4f 4e 44 41 54 41 21", // MONDATA! hex
		"MONDATA!",
		"ok",
		"XYNDATA!",
		"?bogus",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q\n%s", want, out)
		}
	}
	// The patch really landed in physical memory.
	if string(m.Mem.MustSlice(0x1000, 2)) != "XY" {
		t.Fatal("w command did not write memory")
	}
}

func TestMonitorHaltDeclinesTrap(t *testing.T) {
	m := hw.NewMachine(hw.Config{MemBytes: 1 << 20})
	defer m.Halt()
	k, _ := Setup(m, nil)
	console := newScripted("halt\n")
	k.SetDebugger(NewMonitor(console, m.Mem))
	handled := false
	k.SetTrapHandler(TrapBreakpoint, func(*Kernel, *TrapFrame) error {
		handled = true
		return nil
	})
	k.Breakpoint(1)
	if !handled {
		t.Fatal("halt did not fall through to the vector handler")
	}
}

func TestMonitorConsoleGone(t *testing.T) {
	m := hw.NewMachine(hw.Config{MemBytes: 1 << 20})
	defer m.Halt()
	k, _ := Setup(m, nil)
	console := newScripted("") // EOF immediately
	k.SetDebugger(NewMonitor(console, m.Mem))
	fellThrough := false
	k.SetTrapHandler(TrapBreakpoint, func(*Kernel, *TrapFrame) error {
		fellThrough = true
		return nil
	})
	k.Breakpoint(1)
	if !fellThrough {
		t.Fatal("dead console did not decline the trap")
	}
}
