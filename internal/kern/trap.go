package kern

import "fmt"

// NumTraps is the size of the trap vector table (x86 exception vectors).
const NumTraps = 32

// Well-known trap vectors (x86 numbering).
const (
	TrapDivide     = 0 // divide error
	TrapDebug      = 1 // single step
	TrapBreakpoint = 3 // int3
	TrapOverflow   = 4
	TrapBound      = 5
	TrapInvalidOp  = 6
	TrapGPF        = 13 // general protection fault
	TrapPageFault  = 14
)

// TrapFrame is the saved processor state pushed on a trap.
//
// Its layout is part of the kit's documented interface, and — per the
// §6.2.10 fix — the *same* frame is used for hardware interrupts, so
// language runtimes handling preemption (ML/OS, Java/PC) can always get
// at the interrupted state.  Register names and the order of Regs()
// follow the i386 GDB remote protocol so the gdb stub can ship frames to
// a debugger verbatim.
type TrapFrame struct {
	TrapNo uint32
	// Err is the hardware error code (page faults, GPF); Cr2 is the
	// faulting address for page faults.
	Err uint32
	Cr2 uint32

	EAX, ECX, EDX, EBX uint32
	ESP, EBP, ESI, EDI uint32
	EIP, EFLAGS        uint32
	CS, SS, DS, ES     uint32
	FS, GS             uint32
}

// NumRegs is the i386 GDB register count.
const NumRegs = 16

// Regs returns the registers in i386 GDB remote-protocol order:
// eax, ecx, edx, ebx, esp, ebp, esi, edi, eip, eflags, cs, ss, ds, es,
// fs, gs.
func (f *TrapFrame) Regs() [NumRegs]uint32 {
	return [NumRegs]uint32{
		f.EAX, f.ECX, f.EDX, f.EBX,
		f.ESP, f.EBP, f.ESI, f.EDI,
		f.EIP, f.EFLAGS,
		f.CS, f.SS, f.DS, f.ES, f.FS, f.GS,
	}
}

// SetReg stores a register by GDB index, returning false for a bad index.
func (f *TrapFrame) SetReg(i int, v uint32) bool {
	regs := []*uint32{
		&f.EAX, &f.ECX, &f.EDX, &f.EBX,
		&f.ESP, &f.EBP, &f.ESI, &f.EDI,
		&f.EIP, &f.EFLAGS,
		&f.CS, &f.SS, &f.DS, &f.ES, &f.FS, &f.GS,
	}
	if i < 0 || i >= len(regs) {
		return false
	}
	*regs[i] = v
	return true
}

// String renders the frame in the classic panic-dump shape.
func (f *TrapFrame) String() string {
	return fmt.Sprintf(
		"trap %d err=%#x cr2=%#x\n"+
			"eax=%08x ecx=%08x edx=%08x ebx=%08x\n"+
			"esp=%08x ebp=%08x esi=%08x edi=%08x\n"+
			"eip=%08x eflags=%08x",
		f.TrapNo, f.Err, f.Cr2,
		f.EAX, f.ECX, f.EDX, f.EBX,
		f.ESP, f.EBP, f.ESI, f.EDI,
		f.EIP, f.EFLAGS)
}

// TrapHandler handles one trap.  Returning nil resumes the interrupted
// computation; returning an error falls through to the default handler
// (console dump and kernel panic).
type TrapHandler func(k *Kernel, f *TrapFrame) error

// Debugger is the hook the GDB stub implements (§3.5).  If attached, it
// sees every trap before the vector table; Handled true means the
// debugger consumed the trap (the stub blocks inside Trap until the
// remote GDB continues).
type Debugger interface {
	Trap(f *TrapFrame) (handled bool)
}

// SetTrapHandler installs a handler for a vector, returning the previous
// one.  Clients can thereby take over, say, breakpoint traps while
// leaving the default behaviour for the rest — the Java/PC null-pointer
// trick of §6.2.4.
func (k *Kernel) SetTrapHandler(vec int, h TrapHandler) TrapHandler {
	if vec < 0 || vec >= NumTraps {
		panic(fmt.Sprintf("kern: bad trap vector %d", vec))
	}
	old := k.traps[vec]
	k.traps[vec] = h
	return old
}

// SetDebugger attaches (or, with nil, detaches) a trap-level debugger.
func (k *Kernel) SetDebugger(d Debugger) { k.debugger = d }

// Trap dispatches a trap as the CPU would: debugger first, then the
// vector table, then the default handler.  Kernel-mode components raise
// traps by calling this (the simulated INT instruction); the kvm runtime
// raises TrapGPF for null-pointer accesses this way.
func (k *Kernel) Trap(f *TrapFrame) {
	if d := k.debugger; d != nil {
		if d.Trap(f) {
			return
		}
	}
	if f.TrapNo < NumTraps {
		if h := k.traps[f.TrapNo]; h != nil {
			if err := h(k, f); err == nil {
				return
			}
		}
	}
	k.defaultTrap(f)
}

// Breakpoint raises a breakpoint trap carrying the given marker address
// as its EIP; with a debugger attached this enters the remote GDB
// session.
func (k *Kernel) Breakpoint(eip uint32) {
	f := &TrapFrame{TrapNo: TrapBreakpoint, EIP: eip, CS: 0x08, SS: 0x10, EFLAGS: 0x202}
	k.Trap(f)
}

// defaultTrap is the default handler: dump the documented frame on the
// console and panic the kernel.
func (k *Kernel) defaultTrap(f *TrapFrame) {
	k.Printf("panic: unexpected %s\n", trapName(f.TrapNo))
	k.Printf("%s\n", f.String())
	k.Env.Panic("unhandled trap %d", f.TrapNo)
}

func trapName(no uint32) string {
	names := map[uint32]string{
		TrapDivide:     "divide error",
		TrapDebug:      "debug trap",
		TrapBreakpoint: "breakpoint",
		TrapOverflow:   "overflow",
		TrapBound:      "bound check",
		TrapInvalidOp:  "invalid opcode",
		TrapGPF:        "general protection fault",
		TrapPageFault:  "page fault",
	}
	if n, ok := names[no]; ok {
		return fmt.Sprintf("trap: %s", n)
	}
	return fmt.Sprintf("trap %d", no)
}
