package kern

import (
	"oskit/internal/com"
	"oskit/internal/hw"
)

// Console is the kernel console: a thin cooked layer over the machine's
// first serial port.  It is what the Env's default Putchar feeds and what
// the minimal C library's stdio bottoms out in.
type Console struct {
	com.RefCount
	port *hw.SerialPort
}

func newConsole(port *hw.SerialPort) *Console {
	c := &Console{port: port}
	c.Init()
	return c
}

// Putchar emits one byte, expanding "\n" to "\r\n" as serial consoles
// expect.
func (c *Console) Putchar(b byte) {
	if b == '\n' {
		_, _ = c.port.Write([]byte{'\r', '\n'})
		return
	}
	_, _ = c.port.Write([]byte{b})
}

// QueryInterface implements com.IUnknown.
func (c *Console) QueryInterface(iid com.GUID) (com.IUnknown, error) {
	switch iid {
	case com.UnknownIID, com.StreamIID:
		c.AddRef()
		return c, nil
	}
	return nil, com.ErrNoInterface
}

// Read implements com.Stream: blocking console input.
func (c *Console) Read(buf []byte) (uint, error) {
	n, err := c.port.Read(buf)
	if err != nil {
		return 0, com.ErrIO
	}
	return uint(n), nil
}

// Write implements com.Stream.
func (c *Console) Write(buf []byte) (uint, error) {
	for _, b := range buf {
		c.Putchar(b)
	}
	return uint(len(buf)), nil
}

var _ com.Stream = (*Console)(nil)
