package stats

import (
	"strings"
	"sync"
	"testing"

	"oskit/internal/com"
)

// TestShardAggregation: IncOn charges land on slots, Load and Snapshot
// see the aggregate, reset clears everything.
func TestShardAggregation(t *testing.T) {
	s := NewSet("shardtest")
	defer s.Release()
	c := s.Counter("ops")
	c.Inc() // pre-shard charge lands on the base word
	c.Shard(4)
	c.IncOn(0)
	c.IncOn(2)
	c.IncOn(2)
	c.IncOn(9)  // out of range: base word
	c.IncOn(-1) // out of range: base word
	if got := c.Load(); got != 6 {
		t.Fatalf("Load = %d, want 6", got)
	}
	if v, ok := Get(s.Snapshot(), "ops"); !ok || v != 6 {
		t.Fatalf("Snapshot ops = %d,%v, want 6", v, ok)
	}
	loads := c.ShardLoads()
	if len(loads) != 4 || loads[0] != 1 || loads[1] != 0 || loads[2] != 2 || loads[3] != 0 {
		t.Fatalf("ShardLoads = %v", loads)
	}
	pc := s.SnapshotPerCPU()
	if len(pc) != 4 {
		t.Fatalf("SnapshotPerCPU rows = %d, want 4", len(pc))
	}
	if v, ok := Get(pc, "ops.cpu2"); !ok || v != 2 {
		t.Fatalf("ops.cpu2 = %d,%v, want 2", v, ok)
	}
	s.Reset()
	if got := c.Load(); got != 0 {
		t.Fatalf("Load after Reset = %d", got)
	}
	if loads := c.ShardLoads(); loads[2] != 0 {
		t.Fatalf("shard 2 after Reset = %d", loads[2])
	}
}

// TestShardGrowPreservesAndUnshardedBehaviour: growing keeps slot
// values; unsharded counters have no per-CPU rows and IncOn falls back
// to the base word.
func TestShardGrowPreservesAndUnshardedBehaviour(t *testing.T) {
	var c Counter
	c.IncOn(3) // unsharded: base word
	if c.ShardLoads() != nil {
		t.Fatal("unsharded counter reported shard loads")
	}
	c.Shard(2)
	c.IncOn(1)
	c.Shard(4) // grow
	c.IncOn(3)
	c.Shard(2) // shrink ignored
	if got := len(c.ShardLoads()); got != 4 {
		t.Fatalf("slots after shrink attempt = %d, want 4", got)
	}
	if loads := c.ShardLoads(); loads[1] != 1 || loads[3] != 1 {
		t.Fatalf("ShardLoads = %v", loads)
	}
	if got := c.Load(); got != 3 {
		t.Fatalf("Load = %d, want 3", got)
	}

	var nilC *Counter
	nilC.Shard(4)
	nilC.IncOn(0)
	if nilC.ShardLoads() != nil || nilC.Load() != 0 {
		t.Fatal("nil counter sharding not a no-op")
	}

	s := NewSet("unsharded")
	defer s.Release()
	s.Counter("plain").Inc()
	if rows := s.SnapshotPerCPU(); len(rows) != 0 {
		t.Fatalf("unsharded set SnapshotPerCPU = %v, want empty", rows)
	}
}

// TestShardConcurrent: concurrent IncOn across slots plus Load/Snapshot
// readers, under -race in the tier-1 set; the aggregate is exact.
func TestShardConcurrent(t *testing.T) {
	s := NewSet("shardrace")
	defer s.Release()
	c := s.Counter("ops")
	c.Shard(4)
	const workers, each = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				c.IncOn(w % 4)
				if i%128 == 0 {
					c.Load()
					s.Snapshot()
					s.SnapshotPerCPU()
				}
			}
		}(w)
	}
	wg.Wait()
	if got := c.Load(); got != workers*each {
		t.Fatalf("Load = %d, want %d", got, workers*each)
	}
}

// TestWriteTablePerCPU: the -percpu table renders shard rows and says so
// when there is nothing sharded.
func TestWriteTablePerCPU(t *testing.T) {
	s := NewSet("quickpool")
	defer s.Release()
	c := s.Counter("qp.allocs")
	c.Shard(2)
	c.IncOn(0)
	c.IncOn(1)
	c.IncOn(1)
	var b strings.Builder
	WriteTablePerCPU(&b, []com.Stats{s}, false)
	out := b.String()
	if !strings.Contains(out, "qp.allocs.cpu0") || !strings.Contains(out, "qp.allocs.cpu1") {
		t.Fatalf("per-cpu table missing shard rows:\n%s", out)
	}

	empty := NewSet("plain")
	defer empty.Release()
	b.Reset()
	WriteTablePerCPU(&b, []com.Stats{empty}, false)
	if !strings.Contains(b.String(), "no per-cpu sharded statistics") {
		t.Fatalf("empty per-cpu table = %q", b.String())
	}
}
