// Package stats is the kit's statistics component: a cheap,
// allocation-free counter/gauge/histogram registry exported through the
// com.Stats interface, in the spirit of BSD's kstat framework.
//
// The design follows the constraints of the kit's execution model
// (§4.5): statistics are updated from interrupt level on packet and
// block-I/O hot paths, so every update is a single atomic operation on
// pre-resolved state — no locks, no allocation, no map lookups.
// Components resolve their counters once at initialization
// (set.Counter("mbuf.allocs")) and hold the returned pointers; the
// update methods are nil-safe so optionally instrumented libraries
// (the LMM, the AMM) cost one predictable branch when no set is
// attached.
//
// A Set implements com.Stats and is meant to be registered in the
// services registry under com.StatsIID (dynamic binding, §4.2.2); the
// evalrig and cmd/oskit-stats discover every exporter that way and
// print the merged table beside the paper's Tables 1–2 numbers.
package stats

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"oskit/internal/com"
)

// Counter is a monotonically increasing event count.  The zero value is
// usable; all methods are safe on a nil receiver (no-op / zero).
//
// A counter is normally one shared atomic word.  Hot-path counters on
// multi-CPU machines can be sharded (E16): Shard(n) equips the counter
// with n padded per-CPU slots, IncOn(cpu) charges one without touching
// the shared word, and Load (hence Snapshot, WriteStats, and every soak
// invariant) sums the base word plus every slot — aggregate-on-snapshot,
// so sharding is invisible to readers.  Inc/Add keep charging the base
// word, which doubles as the overflow slot for out-of-range CPUs.
type Counter struct {
	v      atomic.Uint64
	shards atomic.Pointer[[]counterShard]
}

// counterShard pads each slot to its own cache line so per-CPU charges
// do not false-share.
type counterShard struct {
	v atomic.Uint64
	_ [56]byte
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Shard equips the counter with n per-CPU slots.  Call at configuration
// time, before hot-path traffic (like every other registration step):
// installing slots concurrently with IncOn may misplace — never lose to
// the race detector, but misattribute — in-flight charges.  Growing an
// already-sharded counter preserves existing slot values; shrinking is
// ignored.
func (c *Counter) Shard(n int) {
	if c == nil || n <= 0 {
		return
	}
	old := c.shards.Load()
	if old != nil && len(*old) >= n {
		return
	}
	s := make([]counterShard, n)
	if old != nil {
		for i := range *old {
			s[i].v.Store((*old)[i].v.Load())
		}
	}
	c.shards.Store(&s)
}

// IncOn adds one, charged to the given CPU's slot when the counter is
// sharded and the slot exists; otherwise to the base word.
func (c *Counter) IncOn(cpu int) {
	if c == nil {
		return
	}
	if sp := c.shards.Load(); sp != nil && cpu >= 0 && cpu < len(*sp) {
		(*sp)[cpu].v.Add(1)
		return
	}
	c.v.Add(1)
}

// Load reads the current count: the base word plus every shard slot.
func (c *Counter) Load() uint64 {
	if c == nil {
		return 0
	}
	n := c.v.Load()
	if sp := c.shards.Load(); sp != nil {
		for i := range *sp {
			n += (*sp)[i].v.Load()
		}
	}
	return n
}

// ShardLoads reads the per-slot counts of a sharded counter (nil when
// unsharded) — the oskit-stats -percpu breakdown.
func (c *Counter) ShardLoads() []uint64 {
	if c == nil {
		return nil
	}
	sp := c.shards.Load()
	if sp == nil {
		return nil
	}
	out := make([]uint64, len(*sp))
	for i := range *sp {
		out[i] = (*sp)[i].v.Load()
	}
	return out
}

func (c *Counter) reset() {
	c.v.Store(0)
	if sp := c.shards.Load(); sp != nil {
		for i := range *sp {
			(*sp)[i].v.Store(0)
		}
	}
}

// Gauge is an instantaneous level (bytes live, buffer occupancy) that
// also tracks its high-water mark.  Safe on a nil receiver.
type Gauge struct {
	v  atomic.Int64
	hi atomic.Int64
}

// Set records an absolute level.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
	g.raise(v)
}

// Add adjusts the level by delta (negative to lower it).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.raise(g.v.Add(delta))
}

// raise lifts the high-water mark to at least v.
func (g *Gauge) raise(v int64) {
	for {
		hi := g.hi.Load()
		if v <= hi || g.hi.CompareAndSwap(hi, v) {
			return
		}
	}
}

// Load reads the current level.
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// High reads the high-water mark.
func (g *Gauge) High() int64 {
	if g == nil {
		return 0
	}
	return g.hi.Load()
}

func (g *Gauge) reset() {
	g.v.Store(0)
	g.hi.Store(0)
}

// Histogram is a fixed-bucket distribution: Observe(v) increments the
// first bucket whose upper bound is >= v, or the overflow bucket.
// Bounds are set at creation; observation is one atomic add plus a
// short linear scan of the (small, fixed) bound slice.  Safe on a nil
// receiver.
type Histogram struct {
	bounds  []uint64 // ascending upper bounds
	buckets []atomic.Uint64
	over    atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	for i, b := range h.bounds {
		if v <= b {
			h.buckets[i].Add(1)
			return
		}
	}
	h.over.Add(1)
}

// Count reads the total number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum reads the running sum of observed values.
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

func (h *Histogram) reset() {
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
	h.over.Store(0)
	h.count.Store(0)
	h.sum.Store(0)
}

// metric is the registration record for one named statistic.
type metric struct {
	name string
	c    *Counter
	g    *Gauge
	h    *Histogram
}

// Set is one component's named collection of statistics, exported as a
// com.Stats object.  Registration (Counter/Gauge/Histogram) takes a
// lock and may allocate; it happens once, at component initialization.
// The returned handles are then updated lock-free.
type Set struct {
	com.RefCount
	name string

	mu      sync.Mutex
	metrics []metric       //oskit:guardedby mu
	byName  map[string]int //oskit:guardedby mu
}

// NewSet creates an empty set named for its exporting component.  The
// caller owns one reference.
func NewSet(name string) *Set {
	s := &Set{name: name, byName: map[string]int{}}
	s.Init()
	return s
}

// QueryInterface implements com.IUnknown.
func (s *Set) QueryInterface(iid com.GUID) (com.IUnknown, error) {
	switch iid {
	case com.UnknownIID, com.StatsIID:
		s.AddRef()
		return s, nil
	}
	return nil, com.ErrNoInterface
}

// StatsName implements com.Stats.
func (s *Set) StatsName() string { return s.name }

// Counter returns the counter registered under name, creating it on
// first use ("subsys.counter" naming).  Idempotent: the same name
// always yields the same counter, so several call sites may share one.
func (s *Set) Counter(name string) *Counter {
	s.mu.Lock()
	defer s.mu.Unlock()
	if i, ok := s.byName[name]; ok {
		if s.metrics[i].c == nil {
			panic(fmt.Sprintf("stats: %s.%s registered with a different type", s.name, name))
		}
		return s.metrics[i].c
	}
	c := &Counter{}
	s.byName[name] = len(s.metrics)
	s.metrics = append(s.metrics, metric{name: name, c: c})
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use.
func (s *Set) Gauge(name string) *Gauge {
	s.mu.Lock()
	defer s.mu.Unlock()
	if i, ok := s.byName[name]; ok {
		if s.metrics[i].g == nil {
			panic(fmt.Sprintf("stats: %s.%s registered with a different type", s.name, name))
		}
		return s.metrics[i].g
	}
	g := &Gauge{}
	s.byName[name] = len(s.metrics)
	s.metrics = append(s.metrics, metric{name: name, g: g})
	return g
}

// Histogram returns the histogram registered under name with the given
// ascending upper bounds, creating it on first use.  Bounds are fixed
// at creation; a second caller gets the existing histogram (its bounds
// win).
func (s *Set) Histogram(name string, bounds []uint64) *Histogram {
	s.mu.Lock()
	defer s.mu.Unlock()
	if i, ok := s.byName[name]; ok {
		if s.metrics[i].h == nil {
			panic(fmt.Sprintf("stats: %s.%s registered with a different type", s.name, name))
		}
		return s.metrics[i].h
	}
	h := &Histogram{bounds: append([]uint64(nil), bounds...)}
	h.buckets = make([]atomic.Uint64, len(h.bounds))
	s.byName[name] = len(s.metrics)
	s.metrics = append(s.metrics, metric{name: name, h: h})
	return h
}

// Snapshot implements com.Stats: every statistic, registration order,
// with gauges expanded to value + ".hiwat" and histograms to per-bucket
// ".le_<bound>" rows plus ".count" and ".sum".
func (s *Set) Snapshot() []com.Statistic {
	s.mu.Lock()
	ms := append([]metric(nil), s.metrics...)
	s.mu.Unlock()
	out := make([]com.Statistic, 0, len(ms))
	for _, m := range ms {
		switch {
		case m.c != nil:
			out = append(out, com.Statistic{Name: m.name, Value: int64(m.c.Load())})
		case m.g != nil:
			out = append(out,
				com.Statistic{Name: m.name, Value: m.g.Load()},
				com.Statistic{Name: m.name + ".hiwat", Value: m.g.High()})
		case m.h != nil:
			for i, b := range m.h.bounds {
				out = append(out, com.Statistic{
					Name:  fmt.Sprintf("%s.le_%d", m.name, b),
					Value: int64(m.h.buckets[i].Load()),
				})
			}
			out = append(out,
				com.Statistic{Name: m.name + ".over", Value: int64(m.h.over.Load())},
				com.Statistic{Name: m.name + ".count", Value: int64(m.h.Count())},
				com.Statistic{Name: m.name + ".sum", Value: int64(m.h.Sum())})
		}
	}
	return out
}

// SnapshotPerCPU returns the per-CPU shard breakdown of every sharded
// counter in the set, registration order, one "<counter>.cpu<i>" row per
// slot (charges that landed on the shared base word appear in the
// aggregate Snapshot row, not here).  Sets with no sharded counters
// return nothing — the default single-CPU configuration has no per-CPU
// story to tell.
func (s *Set) SnapshotPerCPU() []com.Statistic {
	s.mu.Lock()
	ms := append([]metric(nil), s.metrics...)
	s.mu.Unlock()
	var out []com.Statistic
	for _, m := range ms {
		if m.c == nil {
			continue
		}
		for i, v := range m.c.ShardLoads() {
			out = append(out, com.Statistic{
				Name:  fmt.Sprintf("%s.cpu%d", m.name, i),
				Value: int64(v),
			})
		}
	}
	return out
}

// Reset implements com.Stats.
func (s *Set) Reset() {
	s.mu.Lock()
	ms := append([]metric(nil), s.metrics...)
	s.mu.Unlock()
	for _, m := range ms {
		switch {
		case m.c != nil:
			m.c.reset()
		case m.g != nil:
			m.g.reset()
		case m.h != nil:
			m.h.reset()
		}
	}
}

// Get reads one statistic from a snapshot by name (tests, asserts).
func Get(snap []com.Statistic, name string) (int64, bool) {
	for _, st := range snap {
		if st.Name == name {
			return st.Value, true
		}
	}
	return 0, false
}

// Lookup is the discovery seam: anything with the registry's Lookup
// method (core.Registry, without importing it — the stats component
// must stay below the LMM in the dependency order).
type Lookup interface {
	Lookup(iid com.GUID) []com.IUnknown
}

// Discover finds every com.Stats exporter in a services registry.  The
// returned objects each carry one reference (COM rules); release them
// when done.
func Discover(reg Lookup) []com.Stats {
	if reg == nil {
		return nil
	}
	objs := reg.Lookup(com.StatsIID)
	out := make([]com.Stats, 0, len(objs))
	for _, o := range objs {
		if st, ok := o.(com.Stats); ok {
			out = append(out, st)
		} else {
			o.Release()
		}
	}
	return out
}

// WriteTable renders every exporter's snapshot as an aligned
// "component  statistic  value" table, components sorted by name, rows
// in registration order, omitting zero-valued rows when terse is set
// (the evalrig report mode — a ttcp run touches a fraction of the
// registered statistics).
func WriteTable(w io.Writer, sets []com.Stats, terse bool) {
	sorted := append([]com.Stats(nil), sets...)
	sort.SliceStable(sorted, func(i, j int) bool {
		return sorted[i].StatsName() < sorted[j].StatsName()
	})
	wrote := false
	for _, set := range sorted {
		for _, st := range set.Snapshot() {
			if terse && st.Value == 0 {
				continue
			}
			fmt.Fprintf(w, "%-14s %-28s %12d\n", set.StatsName(), st.Name, st.Value)
			wrote = true
		}
	}
	if !wrote {
		fmt.Fprintln(w, "(no statistics recorded)")
	}
}

// WriteTablePerCPU renders every exporter's per-CPU shard breakdown in
// the WriteTable format (cmd/oskit-stats -percpu).  Exporters that are
// not *Set-backed, or have no sharded counters, contribute nothing.
func WriteTablePerCPU(w io.Writer, sets []com.Stats, terse bool) {
	sorted := append([]com.Stats(nil), sets...)
	sort.SliceStable(sorted, func(i, j int) bool {
		return sorted[i].StatsName() < sorted[j].StatsName()
	})
	wrote := false
	for _, set := range sorted {
		pc, ok := set.(interface{ SnapshotPerCPU() []com.Statistic })
		if !ok {
			continue
		}
		for _, st := range pc.SnapshotPerCPU() {
			if terse && st.Value == 0 {
				continue
			}
			fmt.Fprintf(w, "%-14s %-28s %12d\n", set.StatsName(), st.Name, st.Value)
			wrote = true
		}
	}
	if !wrote {
		fmt.Fprintln(w, "(no per-cpu sharded statistics)")
	}
}
