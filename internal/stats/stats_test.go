package stats_test

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"oskit/internal/com"
	"oskit/internal/core"
	"oskit/internal/stats"
)

func TestCounterGaugeHistogram(t *testing.T) {
	s := stats.NewSet("test")
	c := s.Counter("sub.events")
	c.Inc()
	c.Add(4)
	if c.Load() != 5 {
		t.Fatalf("counter = %d, want 5", c.Load())
	}

	g := s.Gauge("sub.level")
	g.Set(10)
	g.Add(-3)
	g.Set(4)
	if g.Load() != 4 || g.High() != 10 {
		t.Fatalf("gauge = %d hi %d, want 4 hi 10", g.Load(), g.High())
	}

	h := s.Histogram("sub.lat", []uint64{10, 100, 1000})
	for _, v := range []uint64{1, 9, 10, 11, 99, 5000} {
		h.Observe(v)
	}
	if h.Count() != 6 || h.Sum() != 1+9+10+11+99+5000 {
		t.Fatalf("histogram count %d sum %d", h.Count(), h.Sum())
	}
	snap := s.Snapshot()
	for name, want := range map[string]int64{
		"sub.events":      5,
		"sub.level":       4,
		"sub.level.hiwat": 10,
		"sub.lat.le_10":   3,
		"sub.lat.le_100":  2,
		"sub.lat.le_1000": 0,
		"sub.lat.over":    1,
		"sub.lat.count":   6,
	} {
		if got, ok := stats.Get(snap, name); !ok || got != want {
			t.Errorf("snapshot %s = %d (present %v), want %d", name, got, ok, want)
		}
	}

	s.Reset()
	if c.Load() != 0 || g.Load() != 0 || g.High() != 0 || h.Count() != 0 {
		t.Fatal("Reset left residue")
	}
}

// TestNilSafety: the optional-instrumentation contract — every update
// method is a no-op on nil, so libraries with no set attached pay one
// branch.
func TestNilSafety(t *testing.T) {
	var c *stats.Counter
	var g *stats.Gauge
	var h *stats.Histogram
	c.Inc()
	c.Add(7)
	g.Set(3)
	g.Add(-1)
	h.Observe(9)
	if c.Load() != 0 || g.Load() != 0 || g.High() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil metrics must read as zero")
	}
}

// TestIdempotentRegistration: call sites sharing a name share the
// metric.
func TestIdempotentRegistration(t *testing.T) {
	s := stats.NewSet("test")
	a := s.Counter("x.n")
	b := s.Counter("x.n")
	if a != b {
		t.Fatal("same name must return the same counter")
	}
	a.Inc()
	if b.Load() != 1 {
		t.Fatal("shared counter not shared")
	}
}

// TestCOMDiscovery: a Set registers under StatsIID and is found by
// Discover through the services registry — the dynamic-binding path
// every report uses.
func TestCOMDiscovery(t *testing.T) {
	reg := core.NewRegistry()
	s := stats.NewSet("mycomp")
	s.Counter("a.b").Add(42)
	reg.Register(com.StatsIID, s)

	// QueryInterface honours the COM contract.
	obj, err := s.QueryInterface(com.StatsIID)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := obj.(com.Stats); !ok {
		t.Fatal("QueryInterface(StatsIID) did not return a com.Stats")
	}
	obj.Release()
	if _, err := s.QueryInterface(com.BlkIOIID); err == nil {
		t.Fatal("unexpected interface")
	}

	found := stats.Discover(reg)
	if len(found) != 1 || found[0].StatsName() != "mycomp" {
		t.Fatalf("Discover found %d sets", len(found))
	}
	if v, ok := stats.Get(found[0].Snapshot(), "a.b"); !ok || v != 42 {
		t.Fatalf("discovered snapshot a.b = %d", v)
	}
	var buf bytes.Buffer
	stats.WriteTable(&buf, []com.Stats{found[0]}, true)
	if !strings.Contains(buf.String(), "mycomp") || !strings.Contains(buf.String(), "a.b") {
		t.Fatalf("table missing rows:\n%s", buf.String())
	}
	for _, f := range found {
		f.Release()
	}
}

// TestConcurrentUpdates: the allocation-free hot path under the race
// detector — the tier-1 recipe runs this package with -race.
func TestConcurrentUpdates(t *testing.T) {
	s := stats.NewSet("race")
	c := s.Counter("c.n")
	g := s.Gauge("g.n")
	h := s.Histogram("h.n", []uint64{4, 16, 64})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				g.Add(1)
				h.Observe(uint64(j % 100))
				if j%100 == 0 {
					_ = s.Snapshot()
				}
			}
		}(i)
	}
	wg.Wait()
	if c.Load() != 8000 || g.Load() != 8000 || h.Count() != 8000 {
		t.Fatalf("lost updates: c=%d g=%d h=%d", c.Load(), g.Load(), h.Count())
	}
	if g.High() != 8000 {
		t.Fatalf("gauge hiwat %d, want 8000 (monotone adds)", g.High())
	}
}
