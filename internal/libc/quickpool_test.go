package libc

import (
	"sync"
	"testing"

	"oskit/internal/com"
	"oskit/internal/hw"
	"oskit/internal/stats"
)

// The service constructor publishes the pool the way every kit service
// is published: the allocator itself under com.AllocatorIID, its
// statistics under com.StatsIID, both discoverable by GUID (§4.2.2) —
// and the counters move with traffic.
func TestQuickPoolService(t *testing.T) {
	c := testC(t)
	p := NewQuickPoolService(c)

	obj := c.Env().Registry.First(com.AllocatorIID)
	if obj == nil {
		t.Fatal("allocator service not registered")
	}
	alloc, ok := obj.(com.Allocator)
	if !ok {
		t.Fatalf("registered object is %T, not com.Allocator", obj)
	}
	qi, err := alloc.QueryInterface(com.AllocatorIID)
	if err != nil {
		t.Fatalf("QueryInterface(AllocatorIID): %v", err)
	}
	qi.Release()

	// Round-trip through the COM face.
	addr, mem, ok := alloc.AllocMem(64)
	if !ok || len(mem) != 64 {
		t.Fatalf("AllocMem = %v len %d", ok, len(mem))
	}
	alloc.FreeMem(addr, 64)
	a2, _, _ := alloc.AllocMem(64)
	if a2 != addr {
		t.Fatalf("freed block not recycled: %#x vs %#x", a2, addr)
	}
	alloc.FreeMem(a2, 64)

	// The stats set is discoverable and accounts for the traffic: two
	// allocs, two frees, one refill, one free-list hit.
	var snap []com.Statistic
	for _, s := range stats.Discover(c.Env().Registry) {
		if s.StatsName() == "quickpool" {
			snap = s.Snapshot()
		}
		s.Release()
	}
	if snap == nil {
		t.Fatal("quickpool stats set not discoverable")
	}
	want := map[string]int64{
		"qp.allocs": 2, "qp.frees": 2, "qp.refills": 1, "qp.hits": 1, "qp.fails": 0,
	}
	for name, v := range want {
		if got, ok := stats.Get(snap, name); !ok || got != v {
			t.Errorf("%s = %d (ok=%v), want %d", name, got, ok, v)
		}
	}
	_ = p
}

// The fault hook vetoes allocations before any free list runs, counts
// them as qp.fails, and comes off cleanly.
func TestQuickPoolAllocFaultHook(t *testing.T) {
	c := testC(t)
	p := NewQuickPoolService(c)
	fails := 0
	p.SetAllocFaultHook(func(size uint32) bool {
		fails++
		return fails <= 2 // fail the first two
	})
	if _, _, ok := p.Alloc(32); ok {
		t.Fatal("first allocation should fail under the hook")
	}
	if _, _, ok := p.Alloc(32); ok {
		t.Fatal("second allocation should fail under the hook")
	}
	a, _, ok := p.Alloc(32)
	if !ok {
		t.Fatal("third allocation should succeed")
	}
	p.Free(a, 32)
	p.SetAllocFaultHook(nil)
	if _, _, ok := p.Alloc(32); !ok {
		t.Fatal("allocation with hook removed should succeed")
	}
	if v := p.StatsSet().Counter("qp.fails").Load(); v != 2 {
		t.Fatalf("qp.fails = %d, want 2", v)
	}
}

// Concurrent allocate/free traffic from many goroutines: the pool's
// free lists are guarded by the environment's interrupt exclusion, so
// this must be race-clean (the -race tier runs this package) and end
// balanced.
func TestQuickPoolConcurrent(t *testing.T) {
	c := testC(t)
	p := NewQuickPoolService(c)
	const (
		workers = 8
		rounds  = 400
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			sizes := []uint32{16, 24, 128, 512, 2048}
			var held []hw.PhysAddr
			var heldSize []uint32
			for i := 0; i < rounds; i++ {
				size := sizes[(i+w)%len(sizes)]
				a, _, ok := p.Alloc(size)
				if !ok {
					t.Error("pool exhausted under concurrent load")
					return
				}
				held = append(held, a)
				heldSize = append(heldSize, size)
				if len(held) > 4 {
					p.Free(held[0], heldSize[0])
					held, heldSize = held[1:], heldSize[1:]
				}
			}
			for i := range held {
				p.Free(held[i], heldSize[i])
			}
		}()
	}
	wg.Wait()
	allocs := p.StatsSet().Counter("qp.allocs").Load()
	frees := p.StatsSet().Counter("qp.frees").Load()
	if allocs != uint64(workers*rounds) || frees != allocs {
		t.Fatalf("allocs/frees = %d/%d, want %d balanced", allocs, frees, workers*rounds)
	}
}
