package libc

// Formatted output, built per §4.3.1: Printf is implemented in terms of
// Puts (complete output lines) and Putchar (everything else); it does no
// buffering and allocates nothing but the formatted string.  The
// formatter itself is the kit's own — no locales, no floating point —
// with the verb subset kernel code actually uses.

// Printf formats and writes to the console services.  Supported verbs:
// %d %i (signed), %u (unsigned), %x %X (hex), %o (octal), %b (binary),
// %c (byte), %s (string or []byte), %p (pointer-style hex), %v (best
// effort), %% — with optional '-', '0' flags, width, and '.' precision
// for %s.  Unknown verbs are printed literally, C-style.
func (c *C) Printf(format string, args ...any) {
	s := Sprintf(format, args...)
	// Emit whole lines through Puts, the remainder through Putchar,
	// making the documented dependency structure real: overriding Puts
	// redirects line-oriented output.
	for {
		nl := indexByte(s, '\n')
		if nl < 0 {
			break
		}
		c.Puts(s[:nl])
		s = s[nl+1:]
	}
	for i := 0; i < len(s); i++ {
		c.Putchar(s[i])
	}
}

// Sprintf formats into a string using the kit formatter.
func Sprintf(format string, args ...any) string {
	var out []byte
	argi := 0
	nextArg := func() (any, bool) {
		if argi >= len(args) {
			return nil, false
		}
		a := args[argi]
		argi++
		return a, true
	}
	for i := 0; i < len(format); i++ {
		ch := format[i]
		if ch != '%' {
			out = append(out, ch)
			continue
		}
		i++
		if i >= len(format) {
			out = append(out, '%')
			break
		}
		// Flags.
		leftAlign, zeroPad := false, false
		for ; i < len(format); i++ {
			if format[i] == '-' {
				leftAlign = true
			} else if format[i] == '0' {
				zeroPad = true
			} else {
				break
			}
		}
		// Width.
		width := 0
		for ; i < len(format) && format[i] >= '0' && format[i] <= '9'; i++ {
			width = width*10 + int(format[i]-'0')
		}
		// Precision.
		prec := -1
		if i < len(format) && format[i] == '.' {
			i++
			prec = 0
			for ; i < len(format) && format[i] >= '0' && format[i] <= '9'; i++ {
				prec = prec*10 + int(format[i]-'0')
			}
		}
		if i >= len(format) {
			break
		}
		verb := format[i]
		var body string
		switch verb {
		case '%':
			body = "%"
		case 'd', 'i':
			a, ok := nextArg()
			if !ok {
				body = "%!d(MISSING)"
				break
			}
			v, neg := toInt(a)
			body = formatUint(v, 10, false)
			if neg {
				body = "-" + body
			}
		case 'u':
			a, _ := nextArg()
			v, _ := toInt(a)
			body = formatUint(v, 10, false)
		case 'x':
			a, _ := nextArg()
			v, _ := toInt(a)
			body = formatUint(v, 16, false)
		case 'X':
			a, _ := nextArg()
			v, _ := toInt(a)
			body = formatUint(v, 16, true)
		case 'o':
			a, _ := nextArg()
			v, _ := toInt(a)
			body = formatUint(v, 8, false)
		case 'b':
			a, _ := nextArg()
			v, _ := toInt(a)
			body = formatUint(v, 2, false)
		case 'p':
			a, _ := nextArg()
			v, _ := toInt(a)
			body = "0x" + formatUint(v, 16, false)
		case 'c':
			a, _ := nextArg()
			v, _ := toInt(a)
			body = string([]byte{byte(v)})
		case 's', 'v':
			a, ok := nextArg()
			if !ok {
				body = "%!s(MISSING)"
				break
			}
			body = toString(a)
			if prec >= 0 && prec < len(body) {
				body = body[:prec]
			}
		default:
			// C libraries print unknown conversions literally.
			out = append(out, '%', verb)
			continue
		}
		out = appendPadded(out, body, width, leftAlign, zeroPad && !leftAlign)
	}
	return string(out)
}

func appendPadded(out []byte, s string, width int, left, zero bool) []byte {
	pad := width - len(s)
	fill := byte(' ')
	if zero {
		fill = '0'
	}
	if left {
		out = append(out, s...)
		for ; pad > 0; pad-- {
			out = append(out, ' ')
		}
		return out
	}
	// Zero padding goes after a sign.
	if zero && len(s) > 0 && s[0] == '-' {
		out = append(out, '-')
		s = s[1:]
		pad = width - 1 - len(s)
	}
	for ; pad > 0; pad-- {
		out = append(out, fill)
	}
	return append(out, s...)
}

// toInt coerces integer-ish arguments to (magnitude, negative).
func toInt(a any) (uint64, bool) {
	switch v := a.(type) {
	case int:
		return mag(int64(v))
	case int8:
		return mag(int64(v))
	case int16:
		return mag(int64(v))
	case int32:
		return mag(int64(v))
	case int64:
		return mag(v)
	case uint:
		return uint64(v), false
	case uint8:
		return uint64(v), false
	case uint16:
		return uint64(v), false
	case uint32:
		return uint64(v), false
	case uint64:
		return v, false
	case uintptr:
		return uint64(v), false
	case bool:
		if v {
			return 1, false
		}
		return 0, false
	}
	return 0, false
}

func mag(v int64) (uint64, bool) {
	if v < 0 {
		return uint64(-v), true
	}
	return uint64(v), false
}

func toString(a any) string {
	switch v := a.(type) {
	case string:
		return v
	case []byte:
		return string(v)
	case []string:
		out := "["
		for i, s := range v {
			if i > 0 {
				out += " "
			}
			out += s
		}
		return out + "]"
	case error:
		return v.Error()
	case nil:
		return "<nil>"
	}
	if u, neg := toInt(a); neg {
		return "-" + formatUint(u, 10, false)
	} else if u != 0 || isIntKind(a) {
		return formatUint(u, 10, false)
	}
	return "<?>"
}

func isIntKind(a any) bool {
	switch a.(type) {
	case int, int8, int16, int32, int64, uint, uint8, uint16, uint32, uint64, uintptr, bool:
		return true
	}
	return false
}

const digits = "0123456789abcdef"
const digitsUpper = "0123456789ABCDEF"

func formatUint(v uint64, base uint64, upper bool) string {
	d := digits
	if upper {
		d = digitsUpper
	}
	if v == 0 {
		return "0"
	}
	var buf [64]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = d[v%base]
		v /= base
	}
	return string(buf[i:])
}

func indexByte(s string, b byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == b {
			return i
		}
	}
	return -1
}

// Atoi parses a decimal integer with optional sign, stopping at the first
// non-digit (C semantics: no error, garbage yields 0).
func Atoi(s string) int {
	i, neg := 0, false
	if i < len(s) && (s[i] == '-' || s[i] == '+') {
		neg = s[i] == '-'
		i++
	}
	n := 0
	for ; i < len(s) && s[i] >= '0' && s[i] <= '9'; i++ {
		n = n*10 + int(s[i]-'0')
	}
	if neg {
		return -n
	}
	return n
}
