package libc

import (
	"os"
	"strconv"
	"sync"
	"testing"

	"oskit/internal/core"
	"oskit/internal/hw"
	"oskit/internal/lmm"
	"oskit/internal/smp"
	"oskit/internal/stats"
)

// hammerCPUs honors the OSKIT_CPUS override check.sh uses to widen the
// contention hammers (the 8-CPU alloc-contention smoke).
func hammerCPUs(def int) int {
	if s := os.Getenv("OSKIT_CPUS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 1 {
			return n
		}
	}
	return def
}

// testCCPUs is testC over a multi-CPU machine.
func testCCPUs(t *testing.T, cpus int) *C {
	t.Helper()
	m := hw.NewMachine(hw.Config{MemBytes: 8 << 20, CPUs: cpus})
	t.Cleanup(m.Halt)
	arena := lmm.NewArena()
	if err := arena.AddRegion(0x100000, 4<<20, core.LMMFlagDMA, 0); err != nil {
		t.Fatal(err)
	}
	arena.AddFree(0x100000, 4<<20)
	return New(core.NewEnv(m, arena))
}

// TestMagazineSingleCPUNoOp: on a 1-CPU machine EnableMagazines refuses —
// the default configuration must stay byte-identical, down to the
// absence of the qp.magazine_hits row.
func TestMagazineSingleCPUNoOp(t *testing.T) {
	p := NewQuickPoolService(testC(t))
	p.EnableMagazines()
	if p.MagazinesEnabled() {
		t.Fatal("magazines enabled on a 1-CPU machine")
	}
	if _, ok := stats.Get(p.StatsSet().Snapshot(), "qp.magazine_hits"); ok {
		t.Fatal("qp.magazine_hits registered without magazines")
	}
}

// TestMagazineHitsAndLedger: with magazines on, alloc/free cycles are
// served CPU-locally (qp.magazine_hits), per-op counters still charge
// once per operation, and DrainMagazines returns every block to the
// shared lists with the slab ledger intact.
func TestMagazineHitsAndLedger(t *testing.T) {
	p := NewQuickPoolService(testCCPUs(t, 4))
	p.EnableMagazines()
	if !p.MagazinesEnabled() {
		t.Fatal("magazines not enabled on a 4-CPU machine")
	}
	p.EnableMagazines() // idempotent

	const n = 48
	var addrs []hw.PhysAddr
	for i := 0; i < n; i++ {
		addr, buf, ok := p.Alloc(100)
		if !ok || len(buf) != 100 {
			t.Fatalf("Alloc %d failed (ok=%v len=%d)", i, ok, len(buf))
		}
		addrs = append(addrs, addr)
	}
	for _, a := range addrs {
		p.Free(a, 100)
	}
	// Second wave: the frees above filled magazines, so these hit.
	for i := 0; i < n; i++ {
		addr, _, ok := p.Alloc(100)
		if !ok {
			t.Fatalf("second-wave Alloc %d failed", i)
		}
		addrs[i] = addr
	}
	for _, a := range addrs {
		p.Free(a, 100)
	}

	snap := p.StatsSet().Snapshot()
	allocs, _ := stats.Get(snap, "qp.allocs")
	frees, _ := stats.Get(snap, "qp.frees")
	hits, _ := stats.Get(snap, "qp.magazine_hits")
	if allocs != 2*n || frees != 2*n {
		t.Fatalf("qp.allocs/frees = %d/%d, want %d/%d", allocs, frees, 2*n, 2*n)
	}
	if hits == 0 {
		t.Fatal("qp.magazine_hits = 0 after warm alloc/free cycles")
	}

	cachedInMags := p.MagazineCached()
	if cachedInMags == 0 {
		t.Fatal("no blocks cached in magazines after frees")
	}
	slabs, cached := p.Stats()
	if cached+cachedInMags != slabs*slabBlocks {
		t.Fatalf("ledger before drain: lists %d + magazines %d != slabs %d * %d",
			cached, cachedInMags, slabs, slabBlocks)
	}
	p.DrainMagazines()
	if got := p.MagazineCached(); got != 0 {
		t.Fatalf("MagazineCached after drain = %d", got)
	}
	slabs, cached = p.Stats()
	if cached != slabs*slabBlocks {
		t.Fatalf("ledger after drain: lists %d != slabs %d * %d", cached, slabs, slabBlocks)
	}
	// Counters did not move on drain.
	snap = p.StatsSet().Snapshot()
	if a2, _ := stats.Get(snap, "qp.allocs"); a2 != allocs {
		t.Fatalf("drain moved qp.allocs %d -> %d", allocs, a2)
	}
	if f2, _ := stats.Get(snap, "qp.frees"); f2 != frees {
		t.Fatalf("drain moved qp.frees %d -> %d", frees, f2)
	}
	// The pool stays usable after a drain, magazines still on.
	if _, _, ok := p.Alloc(100); !ok {
		t.Fatal("Alloc after drain failed")
	}
}

// TestMagazineHookDecisionStream: the fault hook sees exactly one
// decision per Alloc, in call order, with the same sizes the global-lock
// path would show — magazine state must not shift the stream.  Verified
// by running the same operation sequence against a magazine pool and a
// global pool and comparing the recorded streams.
func TestMagazineHookDecisionStream(t *testing.T) {
	run := func(p *QuickPool) (sizes []uint32, oks []bool) {
		var mu sync.Mutex
		n := 0
		p.SetAllocFaultHook(func(size uint32) bool {
			mu.Lock()
			sizes = append(sizes, size)
			n++
			fire := n%5 == 0 // every 5th decision fails, like AllocFailNth
			mu.Unlock()
			return fire
		})
		var live []hw.PhysAddr
		for i := 0; i < 64; i++ {
			size := uint32(32 + (i%3)*100)
			addr, _, ok := p.Alloc(size)
			oks = append(oks, ok)
			if ok {
				live = append(live, addr)
			}
			if i%2 == 1 && len(live) > 0 {
				a := live[len(live)-1]
				live = live[:len(live)-1]
				p.Free(a, uint32(32+((i-1)%3)*100))
			}
		}
		_ = live
		return sizes, oks
	}

	mag := NewQuickPool(testCCPUs(t, 4))
	mag.enableMagazinesKeyed(4, func() int { return 1 })
	global := NewQuickPool(testC(t))

	magSizes, magOKs := run(mag)
	globSizes, globOKs := run(global)
	if len(magSizes) != 64 || len(globSizes) != 64 {
		t.Fatalf("decision counts: magazine %d, global %d, want 64 each",
			len(magSizes), len(globSizes))
	}
	for i := range magSizes {
		if magSizes[i] != globSizes[i] || magOKs[i] != globOKs[i] {
			t.Fatalf("decision %d diverged: magazine (%d,%v) vs global (%d,%v)",
				i, magSizes[i], magOKs[i], globSizes[i], globOKs[i])
		}
	}
}

// TestMagazineLargeAndOverflow: sizes above the largest class fall
// through to Malloc (and count); sustained one-way frees overflow the
// depot into the shared lists without losing blocks.
func TestMagazineLargeAndOverflow(t *testing.T) {
	p := NewQuickPoolService(testCCPUs(t, 2))
	p.enableMagazinesKeyed(2, func() int { return 0 })

	addr, buf, ok := p.Alloc(8192)
	if !ok || len(buf) != 8192 {
		t.Fatalf("large Alloc = %v len %d", ok, len(buf))
	}
	p.Free(addr, 8192)

	// One-way traffic: alloc everything, then free everything.  The
	// depot caps, so the tail lands on the shared lists; nothing leaks.
	const n = 400
	addrs := make([]hw.PhysAddr, 0, n)
	for i := 0; i < n; i++ {
		a, _, ok := p.Alloc(64)
		if !ok {
			t.Fatalf("Alloc %d failed", i)
		}
		addrs = append(addrs, a)
	}
	for _, a := range addrs {
		p.Free(a, 64)
	}
	slabs, cached := p.Stats()
	if cached+p.MagazineCached() != slabs*slabBlocks {
		t.Fatalf("blocks leaked: lists %d + magazines %d != %d", cached, p.MagazineCached(), slabs*slabBlocks)
	}
	snap := p.StatsSet().Snapshot()
	allocs, _ := stats.Get(snap, "qp.allocs")
	frees, _ := stats.Get(snap, "qp.frees")
	if allocs != n+1 || frees != n+1 {
		t.Fatalf("qp.allocs/frees = %d/%d, want %d", allocs, frees, n+1)
	}
}

// TestMagazineCrossCPUInterleavings: the E16 satellite — a seeded
// interleaving sweep of the cross-CPU free path: CPU 0 allocates, CPU 1
// frees the same blocks, with a yield before and after every pool call
// so depot exchanges land mid-flight in different places each seed.
// Every seed must preserve the block ledger and the per-op counters.
func TestMagazineCrossCPUInterleavings(t *testing.T) {
	for seed := int64(0); seed < 24; seed++ {
		p := NewQuickPoolService(testCCPUs(t, 2))

		// The schedule serializes bodies, so a plain variable carries
		// the running CPU's identity to the pool's shard key.
		cur := 0
		var curMu sync.Mutex
		p.enableMagazinesKeyed(2, func() int {
			curMu.Lock()
			defer curMu.Unlock()
			return cur
		})
		setCur := func(c int) {
			curMu.Lock()
			cur = c
			curMu.Unlock()
		}

		const blocks = 3 * magazineRounds // enough to force depot traffic
		var (
			handMu sync.Mutex
			handed []hw.PhysAddr
			done0  bool
		)
		sched := smp.NewTestSchedule(seed, 2)
		sched.Run(func(cpu int, yield func()) {
			if cpu == 0 {
				for i := 0; i < blocks; i++ {
					yield()
					setCur(0)
					addr, _, ok := p.Alloc(128)
					if !ok {
						t.Errorf("seed %d: alloc %d failed", seed, i)
						return
					}
					yield()
					handMu.Lock()
					handed = append(handed, addr)
					handMu.Unlock()
				}
				handMu.Lock()
				done0 = true
				handMu.Unlock()
				return
			}
			// CPU 1 frees whatever CPU 0 has handed over, yielding at
			// every step so the interleaving decides how the magazines
			// and depot trade.
			freed := 0
			for freed < blocks {
				yield()
				handMu.Lock()
				var addr hw.PhysAddr
				have := len(handed) > 0
				if have {
					addr = handed[len(handed)-1]
					handed = handed[:len(handed)-1]
				} else if done0 {
					handMu.Unlock()
					if freed < blocks {
						t.Errorf("seed %d: producer done but only %d/%d freed", seed, freed, blocks)
					}
					return
				}
				handMu.Unlock()
				if !have {
					continue
				}
				setCur(1)
				p.Free(addr, 128)
				yield()
				freed++
			}
		})

		slabs, cached := p.Stats()
		if cached+p.MagazineCached() != slabs*slabBlocks {
			t.Fatalf("seed %d: ledger broken: lists %d + magazines %d != slabs %d * %d",
				seed, cached, p.MagazineCached(), slabs, slabBlocks)
		}
		snap := p.StatsSet().Snapshot()
		allocs, _ := stats.Get(snap, "qp.allocs")
		frees, _ := stats.Get(snap, "qp.frees")
		if allocs != blocks || frees != blocks {
			t.Fatalf("seed %d: qp.allocs/frees = %d/%d, want %d", seed, allocs, frees, blocks)
		}
		p.DrainMagazines()
		if slabs, cached := p.Stats(); cached != slabs*slabBlocks {
			t.Fatalf("seed %d: drain ledger: lists %d != slabs %d * %d", seed, cached, slabs, slabBlocks)
		}
	}
}

// TestMagazineConcurrent: unserialized hammering from many goroutines
// with magazines on (run under -race in the tier-1 race set).
func TestMagazineConcurrent(t *testing.T) {
	p := NewQuickPoolService(testCCPUs(t, hammerCPUs(4)))
	p.EnableMagazines()
	var wg sync.WaitGroup
	// Concurrent readers of every exported view — Stats, MagazineCached,
	// the snapshot and per-CPU snapshot paths — pin the E16 gauge audit:
	// all backing state reads take the owning lock, so the race detector
	// stays quiet while traffic runs.
	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			p.Stats()
			p.MagazineCached()
			p.StatsSet().Snapshot()
			p.StatsSet().SnapshotPerCPU()
		}
	}()
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var live []hw.PhysAddr
			size := uint32(16 << (w % 4))
			for i := 0; i < 400; i++ {
				if addr, _, ok := p.Alloc(size); ok {
					live = append(live, addr)
				}
				if len(live) > 8 || (i%3 == 0 && len(live) > 0) {
					p.Free(live[len(live)-1], size)
					live = live[:len(live)-1]
				}
			}
			for _, a := range live {
				p.Free(a, size)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	readers.Wait()
	slabs, cached := p.Stats()
	if cached+p.MagazineCached() != slabs*slabBlocks {
		t.Fatalf("ledger: lists %d + magazines %d != slabs %d * %d",
			cached, p.MagazineCached(), slabs, slabBlocks)
	}
	snap := p.StatsSet().Snapshot()
	allocs, _ := stats.Get(snap, "qp.allocs")
	frees, _ := stats.Get(snap, "qp.frees")
	if allocs != frees {
		t.Fatalf("qp.allocs %d != qp.frees %d after full free", allocs, frees)
	}
}
