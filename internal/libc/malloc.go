package libc

import (
	"encoding/binary"

	"oskit/internal/core"
	"oskit/internal/hw"
)

// Kernel malloc over the environment's memory service (by default the
// LMM, §3.3).  Unlike C's, the kit's lmm_free wants the block size back,
// so Malloc keeps an 8-byte header *in the allocated memory itself* —
// size and a magic — and hands out the address past it.  The header magic
// doubles as a cheap corruption tripwire; the memdebug component layers
// full guard-zone checking above this.

const (
	mallocHdrSize  = 8
	mallocMagic    = 0x05111997 // SOSP-16's year, as good a magic as any
	mallocFreeFill = 0xDD
)

// Malloc allocates size bytes, returning the (simulated) physical address
// and a slice aliasing the storage.  ok is false on exhaustion, like a
// NULL return.
func (c *C) Malloc(size uint32) (addr hw.PhysAddr, buf []byte, ok bool) {
	return c.mallocFlags(size, 0)
}

// MallocDMA is Malloc constrained to DMA-able memory — what the default
// device-driver memory hook hands to donor drivers (§4.2.1).
func (c *C) MallocDMA(size uint32) (hw.PhysAddr, []byte, bool) {
	return c.mallocFlags(size, core.MemDMA)
}

func (c *C) mallocFlags(size uint32, flags core.MemFlags) (hw.PhysAddr, []byte, bool) {
	total := size + mallocHdrSize
	if total < size { // overflow
		return 0, nil, false
	}
	base, raw, ok := c.env.MemAlloc(total, flags, 8)
	if !ok {
		return 0, nil, false
	}
	binary.LittleEndian.PutUint32(raw[0:4], total)
	binary.LittleEndian.PutUint32(raw[4:8], mallocMagic)
	return base + mallocHdrSize, raw[mallocHdrSize:], true
}

// Calloc is Malloc plus zero fill (MemAlloc memory may be recycled).
func (c *C) Calloc(n, size uint32) (hw.PhysAddr, []byte, bool) {
	total := n * size
	if n != 0 && total/n != size {
		return 0, nil, false
	}
	addr, buf, ok := c.Malloc(total)
	if !ok {
		return 0, nil, false
	}
	for i := range buf {
		buf[i] = 0
	}
	return addr, buf, true
}

// Free releases a Malloc'd block by address.  A bad or doubled free is
// detected by the header magic and reported through the environment's
// Panic service.
func (c *C) Free(addr hw.PhysAddr) {
	if addr == 0 {
		return // free(NULL) is a no-op
	}
	base := addr - mallocHdrSize
	hdr, err := c.env.Machine.Mem.Slice(base, mallocHdrSize)
	if err != nil {
		c.env.Panic("libc: Free(%#x): %v", addr, err)
		return
	}
	total := binary.LittleEndian.Uint32(hdr[0:4])
	magic := binary.LittleEndian.Uint32(hdr[4:8])
	if magic != mallocMagic {
		c.env.Panic("libc: Free(%#x): bad or double free (magic %#x)", addr, magic)
		return
	}
	// Poison so a use-after-free is loud and a double free is caught.
	body, _ := c.env.Machine.Mem.Slice(base, total)
	for i := range body {
		body[i] = mallocFreeFill
	}
	c.env.MemFree(base, total)
}

// MallocSize reports the usable size of a live Malloc'd block.
func (c *C) MallocSize(addr hw.PhysAddr) (uint32, bool) {
	hdr, err := c.env.Machine.Mem.Slice(addr-mallocHdrSize, mallocHdrSize)
	if err != nil || binary.LittleEndian.Uint32(hdr[4:8]) != mallocMagic {
		return 0, false
	}
	return binary.LittleEndian.Uint32(hdr[0:4]) - mallocHdrSize, nil == err
}

// Realloc resizes a block, copying the prefix.
func (c *C) Realloc(addr hw.PhysAddr, newSize uint32) (hw.PhysAddr, []byte, bool) {
	if addr == 0 {
		return c.Malloc(newSize)
	}
	oldSize, ok := c.MallocSize(addr)
	if !ok {
		return 0, nil, false
	}
	newAddr, newBuf, ok := c.Malloc(newSize)
	if !ok {
		return 0, nil, false
	}
	old, err := c.env.Machine.Mem.Slice(addr, minU32(oldSize, newSize))
	if err == nil {
		copy(newBuf, old)
	}
	c.Free(addr)
	return newAddr, newBuf, true
}

func minU32(a, b uint32) uint32 {
	if a < b {
		return a
	}
	return b
}
