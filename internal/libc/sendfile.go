package libc

import "oskit/internal/com"

// Sendfile transmits count bytes of the file behind inFd, starting at
// offset, down the stream socket behind outFd — the classic
// sendfile(2) shape, explicit-offset form (the descriptor's seek
// offset is neither consulted nor advanced).
//
// When the socket answers for com.SockSendfileIID the transfer takes
// the stack's sendfile path: zero-copy when the stack's configuration
// and the file agree, an in-stack read-and-append loop otherwise.  A
// socket without the interface gets a read/write loop through a user
// buffer here, with identical wire behaviour — the negotiation ladder
// of §4.4.2, applied to the POSIX layer.
func (c *C) Sendfile(outFd, inFd int, offset, count uint64) (uint64, error) {
	s, err := c.sockFD(outFd)
	if err != nil {
		return 0, err
	}
	d, err := c.getFD(inFd)
	if err != nil {
		return 0, err
	}
	if d.kind != fdFile {
		return 0, com.ErrInval
	}
	f := d.file

	if obj, qerr := s.QueryInterface(com.SockSendfileIID); qerr == nil {
		sf := obj.(com.SockSendfile)
		n, err := sf.SendFile(f, offset, count)
		sf.Release()
		return n, err
	}

	// Fallback: the socket has no sendfile entry; stage through a
	// user-space buffer.
	var total uint64
	buf := make([]byte, 8192)
	for total < count {
		want := count - total
		if want > uint64(len(buf)) {
			want = uint64(len(buf))
		}
		n, err := f.ReadAt(buf[:want], offset+total)
		if err != nil {
			return total, err
		}
		if n == 0 {
			return total, com.ErrInval // past EOF: caller over-asked
		}
		data := buf[:n]
		for len(data) > 0 {
			w, werr := s.Write(data)
			if werr != nil {
				return total, werr
			}
			total += uint64(w)
			data = data[w:]
		}
	}
	return total, nil
}
