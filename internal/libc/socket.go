package libc

import "oskit/internal/com"

// BSD socket functions (paper §5).  The C library maps these directly to
// the methods of the Socket COM interface; socket() uses the
// client-registered socket factory, so this code works with any protocol
// stack providing the two interfaces — FreeBSD-style, Linux-style, or a
// test stub.

// Socket creates a socket descriptor.
func (c *C) Socket(domain, typ, protocol int) (int, error) {
	c.mu.Lock()
	creator := c.creator
	if creator != nil {
		creator.AddRef()
	}
	c.mu.Unlock()
	if creator == nil {
		return -1, com.ErrInval // no stack registered
	}
	defer creator.Release()
	s, err := creator.CreateSocket(domain, typ, protocol)
	if err != nil {
		return -1, err
	}
	return c.installFD(&fdesc{kind: fdSocket, sock: s}), nil
}

// sockFD fetches the Socket behind a descriptor.
func (c *C) sockFD(fd int) (com.Socket, error) {
	d, err := c.getFD(fd)
	if err != nil {
		return nil, err
	}
	if d.kind != fdSocket {
		return nil, com.ErrInval // ENOTSOCK territory
	}
	return d.sock, nil
}

// Bind assigns a local address.
func (c *C) Bind(fd int, addr com.SockAddr) error {
	s, err := c.sockFD(fd)
	if err != nil {
		return err
	}
	return s.Bind(addr)
}

// Connect initiates a connection.
func (c *C) Connect(fd int, addr com.SockAddr) error {
	s, err := c.sockFD(fd)
	if err != nil {
		return err
	}
	return s.Connect(addr)
}

// Listen marks a socket passive.
func (c *C) Listen(fd int, backlog int) error {
	s, err := c.sockFD(fd)
	if err != nil {
		return err
	}
	return s.Listen(backlog)
}

// Accept blocks for a connection, returning the new descriptor and peer.
func (c *C) Accept(fd int) (int, com.SockAddr, error) {
	s, err := c.sockFD(fd)
	if err != nil {
		return -1, com.SockAddr{}, err
	}
	ns, peer, err := s.Accept()
	if err != nil {
		return -1, com.SockAddr{}, err
	}
	return c.installFD(&fdesc{kind: fdSocket, sock: ns}), peer, nil
}

// SendTo transmits a datagram.
func (c *C) SendTo(fd int, buf []byte, to com.SockAddr) (int, error) {
	s, err := c.sockFD(fd)
	if err != nil {
		return 0, err
	}
	n, err := s.SendTo(buf, to)
	return int(n), err
}

// RecvFrom receives a datagram and its source.
func (c *C) RecvFrom(fd int, buf []byte) (int, com.SockAddr, error) {
	s, err := c.sockFD(fd)
	if err != nil {
		return 0, com.SockAddr{}, err
	}
	n, from, err := s.RecvFrom(buf)
	return int(n), from, err
}

// Shutdown closes one or both directions.
func (c *C) Shutdown(fd int, how int) error {
	s, err := c.sockFD(fd)
	if err != nil {
		return err
	}
	return s.Shutdown(how)
}

// GetSockName returns the local address.
func (c *C) GetSockName(fd int) (com.SockAddr, error) {
	s, err := c.sockFD(fd)
	if err != nil {
		return com.SockAddr{}, err
	}
	return s.GetSockName()
}

// GetPeerName returns the remote address.
func (c *C) GetPeerName(fd int) (com.SockAddr, error) {
	s, err := c.sockFD(fd)
	if err != nil {
		return com.SockAddr{}, err
	}
	return s.GetPeerName()
}

// SetSockOpt sets a named option.
func (c *C) SetSockOpt(fd int, name string, value int) error {
	s, err := c.sockFD(fd)
	if err != nil {
		return err
	}
	return s.SetSockOpt(name, value)
}

// GetSockOpt reads a named option.
func (c *C) GetSockOpt(fd int, name string) (int, error) {
	s, err := c.sockFD(fd)
	if err != nil {
		return 0, err
	}
	return s.GetSockOpt(name)
}
