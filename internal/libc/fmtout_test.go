package libc

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestSprintfVerbs(t *testing.T) {
	cases := []struct {
		format string
		args   []any
		want   string
	}{
		{"plain", nil, "plain"},
		{"%d", []any{42}, "42"},
		{"%d", []any{-42}, "-42"},
		{"%i", []any{7}, "7"},
		{"%u", []any{uint32(7)}, "7"},
		{"%x", []any{255}, "ff"},
		{"%X", []any{255}, "FF"},
		{"%o", []any{8}, "10"},
		{"%b", []any{5}, "101"},
		{"%c", []any{65}, "A"},
		{"%s", []any{"str"}, "str"},
		{"%s", []any{[]byte("bs")}, "bs"},
		{"%v", []any{-3}, "-3"},
		{"%p", []any{uint32(0x1000)}, "0x1000"},
		{"%%", nil, "%"},
		{"%5d", []any{42}, "   42"},
		{"%-5d|", []any{42}, "42   |"},
		{"%05d", []any{42}, "00042"},
		{"%05d", []any{-42}, "-0042"},
		{"%08x", []any{0xabc}, "00000abc"},
		{"%.3s", []any{"abcdef"}, "abc"},
		{"%10.3s|", []any{"abcdef"}, "       abc|"},
		{"a=%d b=%s c=%x", []any{1, "two", 3}, "a=1 b=two c=3"},
		{"%d", nil, "%!d(MISSING)"},
		{"%s", nil, "%!s(MISSING)"},
		{"%q", []any{1}, "%q"}, // unknown verb printed literally
		{"trailing %", nil, "trailing %"},
		{"%d", []any{int64(1) << 40}, "1099511627776"},
		{"%s", []any{error(fmt.Errorf("boom"))}, "boom"},
		{"%s", []any{nil}, "<nil>"},
	}
	for _, c := range cases {
		if got := Sprintf(c.format, c.args...); got != c.want {
			t.Errorf("Sprintf(%q, %v) = %q, want %q", c.format, c.args, got, c.want)
		}
	}
}

// Property: for the verb/flag subset shared with package fmt, the kit's
// formatter agrees with the reference implementation.
func TestSprintfMatchesFmtProperty(t *testing.T) {
	fInt := func(v int32, w uint8) bool {
		width := int(w % 12)
		format := fmt.Sprintf("%%%dd", width)
		return Sprintf(format, v) == fmt.Sprintf(format, v)
	}
	if err := quick.Check(fInt, nil); err != nil {
		t.Error("width:", err)
	}
	fHex := func(v uint32) bool {
		return Sprintf("%x|%X|%o|%b", v, v, v, v) == fmt.Sprintf("%x|%X|%o|%b", v, v, v, v)
	}
	if err := quick.Check(fHex, nil); err != nil {
		t.Error("bases:", err)
	}
	fZero := func(v int32, w uint8) bool {
		width := int(w%10) + 1
		format := fmt.Sprintf("%%0%dd", width)
		return Sprintf(format, v) == fmt.Sprintf(format, v)
	}
	if err := quick.Check(fZero, nil); err != nil {
		t.Error("zero pad:", err)
	}
	fStr := func(raw []byte, w uint8) bool {
		// ASCII only: a C library pads by bytes, fmt pads by runes.
		b := make([]byte, len(raw))
		for i, c := range raw {
			b[i] = c % 0x7f
		}
		s := string(b)
		width := int(w % 12)
		format := fmt.Sprintf("%%%ds", width)
		return Sprintf(format, s) == fmt.Sprintf(format, s)
	}
	if err := quick.Check(fStr, nil); err != nil {
		t.Error("string width:", err)
	}
}

func TestAtoi(t *testing.T) {
	cases := map[string]int{
		"0": 0, "42": 42, "-42": -42, "+7": 7,
		"123abc": 123, "abc": 0, "": 0, "-": 0,
	}
	for in, want := range cases {
		if got := Atoi(in); got != want {
			t.Errorf("Atoi(%q) = %d, want %d", in, got, want)
		}
	}
}

func TestSprintfStringSlice(t *testing.T) {
	got := Sprintf("args=%v", []string{"kernel", "-v"})
	if got != "args=[kernel -v]" {
		t.Errorf("Sprintf %%v []string = %q", got)
	}
	if Sprintf("%v", []string{}) != "[]" {
		t.Error("empty slice formatting")
	}
}
