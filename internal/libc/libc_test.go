package libc

import (
	"bytes"
	"strings"
	"testing"

	"oskit/internal/bmfs"
	"oskit/internal/com"
	"oskit/internal/core"
	"oskit/internal/hw"
	"oskit/internal/lmm"
)

func testC(t *testing.T) *C {
	t.Helper()
	m := hw.NewMachine(hw.Config{MemBytes: 8 << 20})
	t.Cleanup(m.Halt)
	arena := lmm.NewArena()
	if err := arena.AddRegion(0x100000, 4<<20, core.LMMFlagDMA, 0); err != nil {
		t.Fatal(err)
	}
	arena.AddFree(0x100000, 4<<20)
	return New(core.NewEnv(m, arena))
}

func TestPrintfBottomsOutInPutchar(t *testing.T) {
	c := testC(t)
	var out bytes.Buffer
	// The paper's headline property: provide only Putchar and formatted
	// output works (§4.3.1).
	c.Putchar = func(b byte) { out.WriteByte(b) }
	c.Printf("boot: %d modules, %s ready\n", 3, "console")
	if out.String() != "boot: 3 modules, console ready\n" {
		t.Fatalf("output = %q", out.String())
	}
}

func TestPrintfRoutesLinesThroughPuts(t *testing.T) {
	c := testC(t)
	var lines []string
	var raw bytes.Buffer
	c.Putchar = func(b byte) { raw.WriteByte(b) }
	c.Puts = func(s string) { lines = append(lines, s) }
	c.Printf("line one\nline two\ntail")
	if len(lines) != 2 || lines[0] != "line one" || lines[1] != "line two" {
		t.Fatalf("Puts saw %q", lines)
	}
	if raw.String() != "tail" {
		t.Fatalf("Putchar saw %q", raw.String())
	}
}

func TestMallocFreeRoundTrip(t *testing.T) {
	c := testC(t)
	addr, buf, ok := c.Malloc(100)
	if !ok || len(buf) != 100 {
		t.Fatalf("Malloc = %#x, %d bytes, %v", addr, len(buf), ok)
	}
	if size, ok := c.MallocSize(addr); !ok || size != 100 {
		t.Fatalf("MallocSize = %d, %v", size, ok)
	}
	buf[0], buf[99] = 1, 2
	// The slice aliases simulated physical memory.
	if c.Env().Machine.Mem.MustSlice(addr, 100)[99] != 2 {
		t.Fatal("Malloc slice does not alias machine memory")
	}
	c.Free(addr)
	c.Free(0) // free(NULL): no-op
}

func TestMallocDoubleFreeDetected(t *testing.T) {
	c := testC(t)
	addr, _, _ := c.Malloc(64)
	c.Free(addr)
	defer func() {
		if recover() == nil {
			t.Fatal("double free undetected")
		}
	}()
	c.Free(addr)
}

func TestCallocZeroes(t *testing.T) {
	c := testC(t)
	// Dirty some memory, free it, then calloc and check zeroing.
	addr, buf, _ := c.Malloc(256)
	for i := range buf {
		buf[i] = 0xFF
	}
	c.Free(addr)
	_, buf2, ok := c.Calloc(16, 16)
	if !ok {
		t.Fatal("Calloc failed")
	}
	for i, b := range buf2 {
		if b != 0 {
			t.Fatalf("Calloc memory dirty at %d: %#x", i, b)
		}
	}
	// Overflowing multiplication rejected.
	if _, _, ok := c.Calloc(1<<20, 1<<20); ok {
		t.Fatal("overflowing Calloc succeeded")
	}
}

func TestRealloc(t *testing.T) {
	c := testC(t)
	addr, buf, _ := c.Malloc(8)
	copy(buf, "12345678")
	addr2, buf2, ok := c.Realloc(addr, 16)
	if !ok || string(buf2[:8]) != "12345678" {
		t.Fatalf("Realloc lost data: %q", buf2[:8])
	}
	if _, ok := c.MallocSize(addr); ok {
		t.Fatal("old block still live after Realloc")
	}
	c.Free(addr2)
	// Realloc(0) behaves like Malloc.
	addr3, _, ok := c.Realloc(0, 32)
	if !ok {
		t.Fatal("Realloc(0) failed")
	}
	c.Free(addr3)
}

func TestMallocDMAFlag(t *testing.T) {
	c := testC(t)
	addr, _, ok := c.MallocDMA(128)
	if !ok || addr >= hw.DMALimit {
		t.Fatalf("MallocDMA = %#x, %v", addr, ok)
	}
	c.Free(addr)
}

func TestQuickPool(t *testing.T) {
	c := testC(t)
	p := NewQuickPool(c)
	// Small allocations round-trip and recycle.
	a1, b1, ok := p.Alloc(24)
	if !ok || len(b1) != 24 {
		t.Fatalf("Alloc = %v len %d", ok, len(b1))
	}
	p.Free(a1, 24)
	a2, _, _ := p.Alloc(24)
	if a2 != a1 {
		t.Fatalf("freed block not recycled: %#x vs %#x", a2, a1)
	}
	slabs1, _ := p.Stats()
	// A burst within one slab must not allocate more slabs.
	var addrs []hw.PhysAddr
	for i := 0; i < slabBlocks-1; i++ {
		a, _, ok := p.Alloc(24)
		if !ok {
			t.Fatal("pool alloc failed")
		}
		addrs = append(addrs, a)
	}
	slabs2, _ := p.Stats()
	if slabs2 != slabs1 {
		t.Fatalf("burst within slab allocated %d new slabs", slabs2-slabs1)
	}
	for _, a := range addrs {
		p.Free(a, 24)
	}
	// Large allocations fall through to malloc.
	aBig, bufBig, ok := p.Alloc(10000)
	if !ok || len(bufBig) != 10000 {
		t.Fatal("large Alloc failed")
	}
	if _, ok := c.MallocSize(aBig); !ok {
		t.Fatal("large allocation did not come from Malloc")
	}
	p.Free(aBig, 10000)
}

func mountTestFS(t *testing.T, c *C) *bmfs.FS {
	t.Helper()
	fs := bmfs.New(nil)
	root, err := fs.GetRoot()
	if err != nil {
		t.Fatal(err)
	}
	c.SetRoot(root)
	root.Release()
	return fs
}

func TestOpenReadWriteSeekClose(t *testing.T) {
	c := testC(t)
	mountTestFS(t, c)
	fd, err := c.Open("/etc/fstab", OWrOnly|OCreat, 0o644)
	if err == nil {
		t.Fatal("creating under a missing directory should fail")
	}
	if err := c.Mkdir("/etc", 0o755); err != nil {
		t.Fatal(err)
	}
	fd, err = c.Open("/etc/fstab", ORdWr|OCreat, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := c.Write(fd, []byte("root on sd0")); err != nil || n != 11 {
		t.Fatalf("Write = %d, %v", n, err)
	}
	if _, err := c.Lseek(fd, 0, SeekSet); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 32)
	n, err := c.Read(fd, buf)
	if err != nil || string(buf[:n]) != "root on sd0" {
		t.Fatalf("Read = %q, %v", buf[:n], err)
	}
	// SeekEnd and SeekCur.
	pos, err := c.Lseek(fd, -3, SeekEnd)
	if err != nil || pos != 8 {
		t.Fatalf("Lseek end = %d, %v", pos, err)
	}
	n, _ = c.Read(fd, buf)
	if string(buf[:n]) != "sd0" {
		t.Fatalf("tail = %q", buf[:n])
	}
	if _, err := c.Lseek(fd, -100, SeekCur); err != com.ErrInval {
		t.Fatalf("negative seek: %v", err)
	}
	st, err := c.Fstat(fd)
	if err != nil || st.Size != 11 {
		t.Fatalf("Fstat = %+v, %v", st, err)
	}
	if err := c.Close(fd); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(fd); err != com.ErrBadF {
		t.Fatalf("double close: %v", err)
	}
}

func TestOpenFlagsSemantics(t *testing.T) {
	c := testC(t)
	mountTestFS(t, c)
	if err := c.WriteFile("/f", []byte("0123456789"), 0o644); err != nil {
		t.Fatal(err)
	}
	// O_EXCL on existing file.
	if _, err := c.Open("/f", OWrOnly|OCreat|OExcl, 0o644); err != com.ErrExist {
		t.Fatalf("O_EXCL: %v", err)
	}
	// O_TRUNC empties.
	fd, err := c.Open("/f", OWrOnly|OTrunc, 0)
	if err != nil {
		t.Fatal(err)
	}
	_ = c.Close(fd)
	if st, _ := c.Stat("/f"); st.Size != 0 {
		t.Fatalf("O_TRUNC left %d bytes", st.Size)
	}
	// O_APPEND writes at EOF regardless of seeks.
	fd, _ = c.Open("/f", OWrOnly|OAppend, 0)
	_, _ = c.Write(fd, []byte("aa"))
	_, _ = c.Lseek(fd, 0, SeekSet)
	_, _ = c.Write(fd, []byte("bb"))
	_ = c.Close(fd)
	data, _ := c.ReadFile("/f")
	if string(data) != "aabb" {
		t.Fatalf("O_APPEND contents = %q", data)
	}
	// Opening a directory for writing fails; reading gives a dir fd.
	if _, err := c.Open("/", OWrOnly, 0); err != com.ErrIsDir {
		t.Fatalf("write-open dir: %v", err)
	}
	fd, err = c.Open("/", ORdOnly, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Read(fd, make([]byte, 4)); err != com.ErrIsDir {
		t.Fatalf("read on dir fd: %v", err)
	}
	st, err := c.Fstat(fd)
	if err != nil || st.Mode&com.ModeIFMT != com.ModeIFDIR {
		t.Fatalf("dir Fstat = %+v, %v", st, err)
	}
	_ = c.Close(fd)
}

func TestPathOps(t *testing.T) {
	c := testC(t)
	mountTestFS(t, c)
	if err := c.Mkdir("/a", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := c.Mkdir("/a/b", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := c.WriteFile("/a/b/file", []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	ents, err := c.ListDir("/a/b")
	if err != nil || len(ents) != 1 || ents[0].Name != "file" {
		t.Fatalf("ListDir = %+v, %v", ents, err)
	}
	if err := c.Rename("/a/b/file", "/a/file2"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Stat("/a/b/file"); err != com.ErrNoEnt {
		t.Fatalf("stat after rename: %v", err)
	}
	if err := c.Truncate("/a/file2", 10); err != nil {
		t.Fatal(err)
	}
	st, _ := c.Stat("/a/file2")
	if st.Size != 10 {
		t.Fatalf("after truncate: %d", st.Size)
	}
	if err := c.Rmdir("/a/b"); err != nil {
		t.Fatal(err)
	}
	if err := c.Unlink("/a/file2"); err != nil {
		t.Fatal(err)
	}
	// Path through a file is ENOTDIR.
	if err := c.WriteFile("/plain", nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Stat("/plain/sub"); err != com.ErrNotDir {
		t.Fatalf("path through file: %v", err)
	}
	// No root mounted.
	c.SetRoot(nil)
	if _, err := c.Stat("/x"); err != com.ErrNoEnt {
		t.Fatalf("no root: %v", err)
	}
}

func TestDupSharesObjectNotOffset(t *testing.T) {
	c := testC(t)
	mountTestFS(t, c)
	if err := c.WriteFile("/f", []byte("abcdef"), 0o644); err != nil {
		t.Fatal(err)
	}
	fd, _ := c.Open("/f", ORdOnly, 0)
	buf := make([]byte, 3)
	_, _ = c.Read(fd, buf)
	fd2, err := c.Dup(fd)
	if err != nil {
		t.Fatal(err)
	}
	// The dup starts at the duplicated offset but advances independently.
	n, _ := c.Read(fd2, buf)
	if string(buf[:n]) != "def" {
		t.Fatalf("dup read = %q", buf[:n])
	}
	n, _ = c.Read(fd, buf)
	if string(buf[:n]) != "def" {
		t.Fatalf("original read = %q", buf[:n])
	}
	_ = c.Close(fd)
	_ = c.Close(fd2)
}

func TestStdio(t *testing.T) {
	c := testC(t)
	stream := &stubStream{}
	stream.Init()
	c.SetStdio(stream)
	if n, err := c.Write(1, []byte("out")); err != nil || n != 3 {
		t.Fatalf("Write(1) = %d, %v", n, err)
	}
	if stream.wrote.String() != "out" {
		t.Fatalf("stdout captured %q", stream.wrote.String())
	}
	stream.toRead = []byte("in")
	buf := make([]byte, 8)
	n, err := c.Read(0, buf)
	if err != nil || string(buf[:n]) != "in" {
		t.Fatalf("Read(0) = %q, %v", buf[:n], err)
	}
}

type stubStream struct {
	com.RefCount
	wrote  bytes.Buffer
	toRead []byte
}

func (s *stubStream) QueryInterface(iid com.GUID) (com.IUnknown, error) {
	if iid == com.UnknownIID || iid == com.StreamIID {
		s.AddRef()
		return s, nil
	}
	return nil, com.ErrNoInterface
}

func (s *stubStream) Read(buf []byte) (uint, error) {
	n := copy(buf, s.toRead)
	s.toRead = s.toRead[n:]
	return uint(n), nil
}

func (s *stubStream) Write(buf []byte) (uint, error) {
	s.wrote.Write(buf)
	return uint(len(buf)), nil
}

func TestGetRUsage(t *testing.T) {
	c := testC(t)
	ticks0, nanos := c.GetRUsage()
	if nanos != core.DefaultTickNanos {
		t.Fatalf("tick duration = %d", nanos)
	}
	c.Env().Clock().Tick()
	ticks1, _ := c.GetRUsage()
	if ticks1 != ticks0+1 {
		t.Fatalf("ticks did not advance: %d -> %d", ticks0, ticks1)
	}
}

func TestSprintfUsedByPrintfHasNoBuffering(t *testing.T) {
	// Regression guard for the "no buffering" documented property: every
	// Putchar lands before Printf returns.
	c := testC(t)
	var got []byte
	c.Putchar = func(b byte) { got = append(got, b) }
	c.Printf("x=%d", 5)
	if string(got) != "x=5" {
		t.Fatalf("output after return = %q", got)
	}
	_ = strings.TrimSpace("")
}
