// Package libc is the kit's minimal C library (paper §3.4): a library
// designed around minimizing dependencies rather than maximizing
// functionality.
//
// Its structure follows §4.3.1's function-library rules.  Every service is
// a replaceable function with documented dependencies:
//
//   - Printf is implemented in terms of Puts and Putchar.
//   - The default Puts is implemented only in terms of Putchar.
//   - Putchar defaults to the environment's console service.
//
// So a client that supplies nothing but a Putchar gets working formatted
// console output.  (In a standard C library, overriding one function
// changing another's behaviour would be a bug; here it is the point.)
//
// There is no buffering anywhere: the standard I/O calls rely directly on
// the underlying read and write operations.  Locales and floating-point
// formatting are not supported, exactly as in the original.
//
// The POSIX layer (fd.go, file.go, socket.go) maps file descriptors to
// references to COM objects, which is what lets the BSD socket functions
// work with any protocol stack that provides socket and socket-factory
// interfaces (§5), and open/read/write work against any file system
// component.
package libc

import (
	"sync"

	"oskit/internal/com"
	"oskit/internal/core"
)

// C is one instance of the minimal C library bound to an environment.
// (A library instance per kernel, not global state: several simulated
// machines run in one test process.)
type C struct {
	env *core.Env

	// Putchar emits one byte.  Default: the environment's console.
	Putchar func(c byte)
	// Puts writes a string followed by a newline.  The default is
	// implemented only in terms of Putchar.
	Puts func(s string)

	mu      sync.Mutex
	fds     []*fdesc
	root    com.Dir
	creator com.SocketFactory
}

// New creates a library instance over env.  Descriptors 0, 1, 2 are bound
// to the console stream if one is supplied via SetStdio; until then I/O
// on them returns ErrBadF.
func New(env *core.Env) *C {
	c := &C{env: env}
	c.Putchar = func(b byte) { env.Putchar(b) }
	c.Puts = func(s string) {
		for i := 0; i < len(s); i++ {
			c.Putchar(s[i])
		}
		c.Putchar('\n')
	}
	c.fds = make([]*fdesc, 3)
	return c
}

// Env returns the environment the instance is bound to.
func (c *C) Env() *core.Env { return c.env }

// SetStdio binds descriptors 0, 1, 2 to a stream (normally the kernel
// console).
func (c *C) SetStdio(s com.Stream) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for fd := 0; fd <= 2; fd++ {
		if old := c.fds[fd]; old != nil {
			old.close()
		}
		s.AddRef()
		c.fds[fd] = &fdesc{kind: fdStream, stream: s}
	}
}

// SetRoot installs the root directory the POSIX path calls resolve
// against (the client mounts a file system by passing its root here —
// run-time binding, §4.2.2).
func (c *C) SetRoot(root com.Dir) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.root != nil {
		c.root.Release()
	}
	if root != nil {
		root.AddRef()
	}
	c.root = root
}

// SetSocketCreator registers the socket factory used by Socket — the
// posix_set_socketcreator call from the paper's §5 initialization
// sequence.
func (c *C) SetSocketCreator(f com.SocketFactory) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.creator != nil {
		c.creator.Release()
	}
	if f != nil {
		f.AddRef()
	}
	c.creator = f
}

// GetRUsage reports consumed time as the pair (ticks, nanoseconds per
// tick).  Like the paper's ttcp port, which implemented getrusage from
// the timers kept by the networking code, this is a thin view of the
// kit's clock — at the clock's coarse 10 ms granularity.
func (c *C) GetRUsage() (ticks uint64, tickNanos uint64) {
	return c.env.Ticks(), c.env.TickNanos
}
