package libc

import "oskit/internal/hw"

// QuickPool is the high-level allocator the paper's §6.2.10 deficiency
// list calls for: profiling the benchmark kernels showed significant time
// in memory allocation because the LMM "is designed for flexibility and
// space efficiency rather than common-case performance", and the authors
// proposed layering a conventional fast allocator for small fixed-size
// structures on top of the existing low-level one.  This is that
// allocator, built here as the paper's future work.
//
// It is a power-of-two segregated free-list allocator: size classes from
// 16 bytes to 4 KB, each class refilled a slab at a time from the
// underlying Malloc, with freed blocks pushed onto a per-class LIFO.
// Larger requests fall through to Malloc directly.
//
// The E10 benchmark (bench_test.go) measures QuickPool against raw LMM
// allocation, reproducing the shape of the paper's observation.
type QuickPool struct {
	c *C
	// classes[i] holds free blocks of size 16<<i.
	classes [maxClass][]poolBlock
	// slabs tracks slab base addresses per class for accounting.
	slabCount [maxClass]int
}

type poolBlock struct {
	addr hw.PhysAddr
	buf  []byte
}

const (
	minClassShift = 4 // 16 bytes
	maxClass      = 9 // 16 << 8 = 4096
	slabBlocks    = 64
)

// NewQuickPool creates a pool over the library's malloc.
func NewQuickPool(c *C) *QuickPool { return &QuickPool{c: c} }

// classFor returns the size class index for size, or -1 when the request
// should fall through to Malloc.
func classFor(size uint32) int {
	cls := 0
	for s := uint32(1) << minClassShift; cls < maxClass; cls, s = cls+1, s<<1 {
		if size <= s {
			return cls
		}
	}
	return -1
}

// Alloc returns a block of at least size bytes.
func (p *QuickPool) Alloc(size uint32) (hw.PhysAddr, []byte, bool) {
	cls := classFor(size)
	if cls < 0 {
		return p.c.Malloc(size)
	}
	if len(p.classes[cls]) == 0 && !p.refill(cls) {
		return 0, nil, false
	}
	list := p.classes[cls]
	b := list[len(list)-1]
	p.classes[cls] = list[:len(list)-1]
	return b.addr, b.buf[:size], true
}

// Free returns a block allocated with Alloc; size must be the requested
// size (the fast path keeps no headers — that is where the speed comes
// from).
func (p *QuickPool) Free(addr hw.PhysAddr, size uint32) {
	cls := classFor(size)
	if cls < 0 {
		p.c.Free(addr)
		return
	}
	blockSize := uint32(1) << (minClassShift + cls)
	buf, err := p.c.env.Machine.Mem.Slice(addr, blockSize)
	if err != nil {
		p.c.env.Panic("libc: QuickPool.Free(%#x): %v", addr, err)
		return
	}
	p.classes[cls] = append(p.classes[cls], poolBlock{addr, buf})
}

// refill carves one slab from the underlying malloc into class blocks.
func (p *QuickPool) refill(cls int) bool {
	blockSize := uint32(1) << (minClassShift + cls)
	addr, buf, ok := p.c.Malloc(blockSize * slabBlocks)
	if !ok {
		return false
	}
	for i := uint32(0); i < slabBlocks; i++ {
		off := i * blockSize
		p.classes[cls] = append(p.classes[cls], poolBlock{
			addr: addr + off,
			buf:  buf[off : off+blockSize : off+blockSize],
		})
	}
	p.slabCount[cls]++
	return true
}

// Stats reports slabs allocated per class (for tests).
func (p *QuickPool) Stats() (slabs int, cached int) {
	for i := 0; i < maxClass; i++ {
		slabs += p.slabCount[i]
		cached += len(p.classes[i])
	}
	return
}
