package libc

import (
	"sync"
	"sync/atomic"

	"oskit/internal/com"
	"oskit/internal/hw"
	"oskit/internal/stats"
)

// QuickPool is the high-level allocator the paper's §6.2.10 deficiency
// list calls for: profiling the benchmark kernels showed significant time
// in memory allocation because the LMM "is designed for flexibility and
// space efficiency rather than common-case performance", and the authors
// proposed layering a conventional fast allocator for small fixed-size
// structures on top of the existing low-level one.  This is that
// allocator, built here as the paper's future work.
//
// It is a power-of-two segregated free-list allocator: size classes from
// 16 bytes to 4 KB, each class refilled a slab at a time from the
// underlying Malloc, with freed blocks pushed onto a per-class LIFO.
// Larger requests fall through to Malloc directly.
//
// The free lists are protected by a ranked leaf mutex rather than the
// environment's interrupt exclusion: on a multi-CPU machine interrupt
// exclusion is per-CPU, so two rings' handlers (or a handler and a
// process-level thread on another CPU) would race on the lists — and a
// thread that disables interrupts while holding a protocol lock can
// deadlock against a dispatcher whose handler wants that same lock.
// The pool may still be called from interrupt handlers and from
// concurrent process-level threads alike; the lock is taken below every
// protocol and glue lock (rank 82) and only the LMM's own internal
// mutex sits beneath it.  A pool created with NewQuickPoolService is additionally
// a COM object answering for com.Allocator — the packet paths of the
// fast-path configuration discover and bind it through the registry
// (§4.2.2) — and exports "quickpool" statistics plus an allocation-failure
// hook for the fault-injection plane.
//
// NOTE: addresses handed out by the pool sit 8 bytes past their Malloc
// header and are therefore never naturally aligned to large powers of
// two.  Clients with alignment-dependent address arithmetic (the mbuf
// cluster refcount table, §4.7.7 property 1) must not draw those
// allocations from a pool.
//
// The E10 benchmark (bench_test.go) measures QuickPool against raw LMM
// allocation, reproducing the shape of the paper's observation; E11
// measures it inside the fast-path packet configuration.
type QuickPool struct {
	com.RefCount
	c *C

	// mu guards the free lists, the slab counts and the fault hook.
	mu poolLock
	// classes[i] holds free blocks of size 16<<i.
	classes [maxClass][]poolBlock //oskit:guardedby mu
	// slabs tracks slab base addresses per class for accounting.
	slabCount [maxClass]int //oskit:guardedby mu

	// hook, when set, may veto an allocation before any free list or
	// refill runs (fault injection).  Read and written under mu, like
	// the free lists.  hookA mirrors it atomically for the magazine
	// fast path, which consults the hook with no locks held.
	hook  func(size uint32) bool //oskit:guardedby mu
	hookA atomic.Pointer[func(size uint32) bool]

	// mags, when set, is the per-CPU magazine front (E16, magazine.go).
	// Nil on the default path: single-CPU pools never install it, so
	// Alloc/Free cost one atomic load + branch over the seed behaviour.
	mags atomic.Pointer[poolMagazines]

	// com.Stats export (nil-safe: a plain NewQuickPool pool counts
	// nothing, the service constructor wires a "quickpool" set).
	// scMagHits exists only once magazines are enabled, so default
	// configurations snapshot exactly the seed's rows.
	statsSet  *stats.Set //oskit:initonly
	scAllocs  *stats.Counter
	scFrees   *stats.Counter
	scHits    *stats.Counter
	scRefills *stats.Counter
	scFails   *stats.Counter
	scMagHits *stats.Counter
}

type poolBlock struct {
	addr hw.PhysAddr
	buf  []byte
}

// poolLock is the fast allocator's free-list lock: a leaf below every
// protocol, glue and stack lock (only the LMM's internal mutex is
// deeper, and that one is invisible to the ranked set).
//
//oskit:lockrank 82
type poolLock struct{ sync.Mutex }

const (
	minClassShift = 4 // 16 bytes
	maxClass      = 9 // 16 << 8 = 4096
	slabBlocks    = 64
)

// NewQuickPool creates a pool over the library's malloc.
func NewQuickPool(c *C) *QuickPool {
	p := &QuickPool{c: c}
	p.Init()
	return p
}

// NewQuickPoolService creates a pool and publishes it: the pool itself
// under com.AllocatorIID and its statistics set ("quickpool") under
// com.StatsIID, both in the environment's services registry.  The
// registry holds the returned references alive; the caller keeps its own.
func NewQuickPoolService(c *C) *QuickPool {
	p := NewQuickPool(c)
	set := stats.NewSet("quickpool")
	p.statsSet = set
	p.scAllocs = set.Counter("qp.allocs")
	p.scFrees = set.Counter("qp.frees")
	p.scHits = set.Counter("qp.hits")
	p.scRefills = set.Counter("qp.refills")
	p.scFails = set.Counter("qp.fails")
	c.env.Registry.Register(com.StatsIID, set)
	set.Release()
	c.env.Registry.Register(com.AllocatorIID, p)
	return p
}

// QueryInterface implements com.IUnknown: the pool answers for the
// allocator service.
func (p *QuickPool) QueryInterface(iid com.GUID) (com.IUnknown, error) {
	switch iid {
	case com.UnknownIID, com.AllocatorIID:
		p.AddRef()
		return p, nil
	}
	return nil, com.ErrNoInterface
}

// SetAllocFaultHook installs (or, with nil, removes) an allocation
// fault-injection hook: when it returns true the allocation fails as
// exhaustion would (counted in qp.fails).  Safe to toggle mid-traffic.
func (p *QuickPool) SetAllocFaultHook(h func(size uint32) bool) {
	p.mu.Lock()
	p.hook = h
	if h == nil {
		p.hookA.Store(nil)
	} else {
		p.hookA.Store(&h)
	}
	p.mu.Unlock()
}

// StatsSet returns the pool's com.Stats export (nil for a plain pool).
func (p *QuickPool) StatsSet() *stats.Set { return p.statsSet }

// classFor returns the size class index for size, or -1 when the request
// should fall through to Malloc.
func classFor(size uint32) int {
	cls := 0
	for s := uint32(1) << minClassShift; cls < maxClass; cls, s = cls+1, s<<1 {
		if size <= s {
			return cls
		}
	}
	return -1
}

// Alloc returns a block of at least size bytes.  Safe from interrupt
// handlers and concurrent process-level threads.
func (p *QuickPool) Alloc(size uint32) (hw.PhysAddr, []byte, bool) {
	if m := p.mags.Load(); m != nil {
		return p.allocMagazine(m, size)
	}
	p.mu.Lock()
	addr, buf, ok, hit := p.allocLocked(size)
	p.mu.Unlock()
	if !ok {
		p.scFails.Inc()
		return 0, nil, false
	}
	p.scAllocs.Inc()
	if hit {
		p.scHits.Inc()
	}
	return addr, buf, true
}

func (p *QuickPool) allocLocked(size uint32) (hw.PhysAddr, []byte, bool, bool) {
	if p.hook != nil && p.hook(size) {
		return 0, nil, false, false
	}
	cls := classFor(size)
	if cls < 0 {
		addr, buf, ok := p.c.Malloc(size)
		return addr, buf, ok, false
	}
	hit := len(p.classes[cls]) > 0
	if !hit && !p.refill(cls) {
		return 0, nil, false, false
	}
	list := p.classes[cls]
	b := list[len(list)-1]
	p.classes[cls] = list[:len(list)-1]
	return b.addr, b.buf[:size], true, hit
}

// Free returns a block allocated with Alloc; size must be the requested
// size (the fast path keeps no headers — that is where the speed comes
// from).  Safe from the same contexts as Alloc.
func (p *QuickPool) Free(addr hw.PhysAddr, size uint32) {
	if m := p.mags.Load(); m != nil {
		p.freeMagazine(m, addr, size)
		return
	}
	p.mu.Lock()
	p.freeLocked(addr, size)
	p.mu.Unlock()
	p.scFrees.Inc()
}

func (p *QuickPool) freeLocked(addr hw.PhysAddr, size uint32) {
	cls := classFor(size)
	if cls < 0 {
		p.c.Free(addr)
		return
	}
	blockSize := uint32(1) << (minClassShift + cls)
	buf, err := p.c.env.Machine.Mem.Slice(addr, blockSize)
	if err != nil {
		p.c.env.Panic("libc: QuickPool.Free(%#x): %v", addr, err)
		return
	}
	p.classes[cls] = append(p.classes[cls], poolBlock{addr, buf})
}

// AllocMem implements com.Allocator over Alloc.
func (p *QuickPool) AllocMem(size uint32) (uint32, []byte, bool) {
	addr, buf, ok := p.Alloc(size)
	return uint32(addr), buf, ok
}

// FreeMem implements com.Allocator over Free.
func (p *QuickPool) FreeMem(addr uint32, size uint32) {
	p.Free(hw.PhysAddr(addr), size)
}

// refill carves one slab from the underlying malloc into class blocks.
// Called with mu held.
func (p *QuickPool) refill(cls int) bool {
	blockSize := uint32(1) << (minClassShift + cls)
	addr, buf, ok := p.c.Malloc(blockSize * slabBlocks)
	if !ok {
		return false
	}
	for i := uint32(0); i < slabBlocks; i++ {
		off := i * blockSize
		p.classes[cls] = append(p.classes[cls], poolBlock{
			addr: addr + off,
			buf:  buf[off : off+blockSize : off+blockSize],
		})
	}
	p.slabCount[cls]++
	p.scRefills.Inc()
	return true
}

// Stats reports slabs allocated per class (for tests).
func (p *QuickPool) Stats() (slabs int, cached int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := 0; i < maxClass; i++ {
		slabs += p.slabCount[i]
		cached += len(p.classes[i])
	}
	return
}

var _ com.Allocator = (*QuickPool)(nil)
