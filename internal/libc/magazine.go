package libc

import (
	"oskit/internal/hw"
	"oskit/internal/percpu"
)

// Per-CPU magazine front over QuickPool (E16).
//
// On a multi-CPU machine every allocation otherwise funnels through the
// pool's single poolLock (rank 82) — exactly the §6.2.10 "fast allocator"
// turned serialization stall.  EnableMagazines fronts each size class
// with a percpu.Cache: the common alloc/free touches one CPU-local
// magazine lock, the shared free lists only on magazine misses and
// overflows, and the depot only on magazine exchange.
//
// Invariants the front preserves:
//
//   - One fault-hook decision per user Alloc, in call order, before the
//     magazine is consulted — the seed-reproducible decision stream
//     (qp.send/qp.recv) is identical to the global-lock path's, and
//     magazine state never shifts it.  The hook is read through an
//     atomic mirror with no locks held (the lockhook analyzer's
//     hook-under-mutex hazard class stays empty).
//
//   - qp.allocs/qp.frees charge once per user operation whether served
//     by a magazine or the shared lists, so every Imbalances/AllocPairs
//     soak invariant is front-agnostic; magazine traffic is additionally
//     visible as qp.magazine_hits.  The counters are registered and
//     sharded only here, so a pool that never enables magazines — the
//     default configuration — snapshots byte-identical rows.
//
//   - DrainMagazines (Halt) pushes every cached block back onto the
//     shared lists with no counter movement: Stats() accounting and the
//     slab ledger balance exactly as if magazines never existed.
type poolMagazines struct {
	caches [maxClass]*percpu.Cache[poolBlock]
}

// magazineRounds is the per-magazine capacity of the QuickPool front.
const magazineRounds = 16

// EnableMagazines fronts the pool's size classes with per-CPU magazine
// caches.  Call at configuration time, before traffic, on multi-CPU
// machines; on a single-CPU machine it is a no-op (the global lock is
// uncontended there, and the default configuration must stay
// byte-identical).  Enabling is idempotent.
func (p *QuickPool) EnableMagazines() {
	machine := p.c.env.Machine
	ncpu := machine.CPUs()
	if ncpu <= 1 || p.mags.Load() != nil {
		return
	}
	m := &poolMagazines{}
	hint := machine.Intr.CPUHint
	for cls := range m.caches {
		m.caches[cls] = percpu.New[poolBlock](ncpu, magazineRounds, hint)
	}
	if p.statsSet != nil {
		p.scMagHits = p.statsSet.Counter("qp.magazine_hits")
		p.scAllocs.Shard(ncpu)
		p.scFrees.Shard(ncpu)
		p.scMagHits.Shard(ncpu)
	}
	p.mags.Store(m)
}

// enableMagazinesKeyed is the test seam: magazines over an explicit CPU
// count and shard-key function, so seeded interleaving tests drive the
// cross-CPU paths deterministically.
func (p *QuickPool) enableMagazinesKeyed(ncpu int, cpuFn func() int) {
	m := &poolMagazines{}
	for cls := range m.caches {
		m.caches[cls] = percpu.New[poolBlock](ncpu, magazineRounds, cpuFn)
	}
	if p.statsSet != nil {
		p.scMagHits = p.statsSet.Counter("qp.magazine_hits")
		p.scAllocs.Shard(ncpu)
		p.scFrees.Shard(ncpu)
		p.scMagHits.Shard(ncpu)
	}
	p.mags.Store(m)
}

// MagazinesEnabled reports whether the per-CPU front is active.
func (p *QuickPool) MagazinesEnabled() bool { return p.mags.Load() != nil }

// MagazineCached reports how many blocks the front currently holds
// across every CPU magazine and the depot (tests, drain ledgers).
func (p *QuickPool) MagazineCached() int {
	m := p.mags.Load()
	if m == nil {
		return 0
	}
	n := 0
	for _, c := range m.caches {
		n += c.Cached()
	}
	return n
}

// DrainMagazines returns every magazine-cached block to the shared free
// lists.  Called on Halt so soak ledgers balance; the pool remains
// usable (and the front stays enabled) afterwards.
func (p *QuickPool) DrainMagazines() {
	m := p.mags.Load()
	if m == nil {
		return
	}
	for cls, cache := range m.caches {
		var blocks []poolBlock
		cache.Drain(func(b poolBlock) { blocks = append(blocks, b) })
		if len(blocks) == 0 {
			continue
		}
		p.mu.Lock()
		p.classes[cls] = append(p.classes[cls], blocks...)
		p.mu.Unlock()
	}
}

// allocMagazine is Alloc with the per-CPU front engaged.  The fault hook
// fires exactly once, first, with no locks held; a magazine hit then
// never touches shared state, and a miss takes one block from the shared
// lists (refilling a slab if needed) without a second hook decision.
func (p *QuickPool) allocMagazine(m *poolMagazines, size uint32) (hw.PhysAddr, []byte, bool) {
	if h := p.hookA.Load(); h != nil && (*h)(size) {
		p.scFails.Inc()
		return 0, nil, false
	}
	cls := classFor(size)
	if cls < 0 {
		addr, buf, ok := p.c.Malloc(size)
		if !ok {
			p.scFails.Inc()
			return 0, nil, false
		}
		p.scAllocs.Inc()
		return addr, buf, true
	}
	if b, cpu, ok := m.caches[cls].Get(); ok {
		p.scAllocs.IncOn(cpu)
		p.scMagHits.IncOn(cpu)
		return b.addr, b.buf[:size], true
	}
	p.mu.Lock()
	hit := len(p.classes[cls]) > 0
	if !hit && !p.refill(cls) {
		p.mu.Unlock()
		p.scFails.Inc()
		return 0, nil, false
	}
	list := p.classes[cls]
	b := list[len(list)-1]
	p.classes[cls] = list[:len(list)-1]
	p.mu.Unlock()
	p.scAllocs.Inc()
	if hit {
		p.scHits.Inc()
	}
	return b.addr, b.buf[:size], true
}

// freeMagazine is Free with the per-CPU front engaged: stash on the
// caller's CPU magazine; overflow (depot at capacity) falls back to the
// shared lists.
func (p *QuickPool) freeMagazine(m *poolMagazines, addr hw.PhysAddr, size uint32) {
	cls := classFor(size)
	if cls < 0 {
		p.c.Free(addr)
		p.scFrees.Inc()
		return
	}
	blockSize := uint32(1) << (minClassShift + cls)
	buf, err := p.c.env.Machine.Mem.Slice(addr, blockSize)
	if err != nil {
		p.c.env.Panic("libc: QuickPool.Free(%#x): %v", addr, err)
		return
	}
	if cpu, ok := m.caches[cls].Put(poolBlock{addr, buf}); ok {
		p.scFrees.IncOn(cpu)
		return
	}
	p.mu.Lock()
	p.classes[cls] = append(p.classes[cls], poolBlock{addr, buf})
	p.mu.Unlock()
	p.scFrees.Inc()
}
