package libc

import (
	"strings"

	"oskit/internal/com"
)

// POSIX path calls.  Paths are resolved one component at a time against
// the mounted root directory — the traversal policy lives here in the C
// library, because the file system components deliberately accept only
// single components (§3.8), which is also what lets wrappers like
// examples/fileserver interpose per-component checks.

// Open flags (Linux-flavoured values, as donor code expects).
const (
	ORdOnly = 0x0
	OWrOnly = 0x1
	ORdWr   = 0x2
	OCreat  = 0x40
	OExcl   = 0x80
	OTrunc  = 0x200
	OAppend = 0x400
)

// Open opens (optionally creating) a file and returns a descriptor.
func (c *C) Open(path string, flags int, mode uint32) (int, error) {
	dir, leaf, err := c.resolveParent(path)
	if err != nil {
		return -1, err
	}
	defer dir.Release()

	if leaf == "" { // opening the root itself
		if flags&(OWrOnly|ORdWr|OTrunc|OAppend) != 0 {
			return -1, com.ErrIsDir
		}
		dir.AddRef()
		return c.installFD(&fdesc{kind: fdDir, dir: dir}), nil
	}

	var f com.File
	if flags&OCreat != 0 {
		f, err = dir.Create(leaf, mode, flags&OExcl != 0)
	} else {
		f, err = dir.Lookup(leaf)
	}
	if err != nil {
		return -1, err
	}

	// Directory?
	if sub, qerr := f.QueryInterface(com.DirIID); qerr == nil {
		f.Release()
		if flags&(OWrOnly|ORdWr|OTrunc|OAppend) != 0 {
			sub.Release()
			return -1, com.ErrIsDir
		}
		return c.installFD(&fdesc{kind: fdDir, dir: sub.(com.Dir)}), nil
	}

	if flags&OTrunc != 0 {
		if err := f.SetSize(0); err != nil {
			f.Release()
			return -1, err
		}
	}
	return c.installFD(&fdesc{kind: fdFile, file: f, app: flags&OAppend != 0}), nil
}

// Stat resolves a path and returns its metadata.
func (c *C) Stat(path string) (com.Stat, error) {
	f, err := c.resolve(path)
	if err != nil {
		return com.Stat{}, err
	}
	defer f.Release()
	return f.GetStat()
}

// Mkdir creates a directory.
func (c *C) Mkdir(path string, mode uint32) error {
	dir, leaf, err := c.resolveParent(path)
	if err != nil {
		return err
	}
	defer dir.Release()
	if leaf == "" {
		return com.ErrExist
	}
	return dir.Mkdir(leaf, mode)
}

// Unlink removes a file.
func (c *C) Unlink(path string) error {
	dir, leaf, err := c.resolveParent(path)
	if err != nil {
		return err
	}
	defer dir.Release()
	if leaf == "" {
		return com.ErrIsDir
	}
	return dir.Unlink(leaf)
}

// Rmdir removes an empty directory.
func (c *C) Rmdir(path string) error {
	dir, leaf, err := c.resolveParent(path)
	if err != nil {
		return err
	}
	defer dir.Release()
	if leaf == "" {
		return com.ErrBusy
	}
	return dir.Rmdir(leaf)
}

// Rename moves oldPath to newPath (same file system).
func (c *C) Rename(oldPath, newPath string) error {
	oldDir, oldLeaf, err := c.resolveParent(oldPath)
	if err != nil {
		return err
	}
	defer oldDir.Release()
	newDir, newLeaf, err := c.resolveParent(newPath)
	if err != nil {
		return err
	}
	defer newDir.Release()
	if oldLeaf == "" || newLeaf == "" {
		return com.ErrInval
	}
	return oldDir.Rename(oldLeaf, newDir, newLeaf)
}

// Truncate resizes a file by path.
func (c *C) Truncate(path string, size uint64) error {
	f, err := c.resolve(path)
	if err != nil {
		return err
	}
	defer f.Release()
	return f.SetSize(size)
}

// ListDir returns a directory's entries.
func (c *C) ListDir(path string) ([]com.Dirent, error) {
	f, err := c.resolve(path)
	if err != nil {
		return nil, err
	}
	defer f.Release()
	d, qerr := f.QueryInterface(com.DirIID)
	if qerr != nil {
		return nil, com.ErrNotDir
	}
	defer d.Release()
	return d.(com.Dir).ReadDir(0, 0)
}

// ReadFile is the convenience slurp used by loaders (exec, kvm): the
// whole file as a byte slice.
func (c *C) ReadFile(path string) ([]byte, error) {
	f, err := c.resolve(path)
	if err != nil {
		return nil, err
	}
	defer f.Release()
	st, err := f.GetStat()
	if err != nil {
		return nil, err
	}
	out := make([]byte, st.Size)
	var off uint64
	for off < st.Size {
		n, err := f.ReadAt(out[off:], off)
		if err != nil {
			return nil, err
		}
		if n == 0 {
			break
		}
		off += uint64(n)
	}
	return out[:off], nil
}

// WriteFile creates/replaces path with data.
func (c *C) WriteFile(path string, data []byte, mode uint32) error {
	fd, err := c.Open(path, OWrOnly|OCreat|OTrunc, mode)
	if err != nil {
		return err
	}
	defer func() { _ = c.Close(fd) }()
	for len(data) > 0 {
		n, err := c.Write(fd, data)
		if err != nil {
			return err
		}
		data = data[n:]
	}
	return nil
}

// resolve walks path fully, returning the final File (one reference).
func (c *C) resolve(path string) (com.File, error) {
	dir, leaf, err := c.resolveParent(path)
	if err != nil {
		return nil, err
	}
	if leaf == "" {
		return dir, nil
	}
	defer dir.Release()
	return dir.Lookup(leaf)
}

// resolveParent walks all but the last component, returning the parent
// directory (one reference) and the leaf name ("" for the root).
func (c *C) resolveParent(path string) (com.Dir, string, error) {
	c.mu.Lock()
	root := c.root
	if root != nil {
		root.AddRef()
	}
	c.mu.Unlock()
	if root == nil {
		return nil, "", com.ErrNoEnt
	}
	parts := splitPath(path)
	if len(parts) == 0 {
		return root, "", nil
	}
	cur := root
	for _, p := range parts[:len(parts)-1] {
		next, err := cur.Lookup(p)
		cur.Release()
		if err != nil {
			return nil, "", err
		}
		sub, qerr := next.QueryInterface(com.DirIID)
		next.Release()
		if qerr != nil {
			return nil, "", com.ErrNotDir
		}
		cur = sub.(com.Dir)
	}
	return cur, parts[len(parts)-1], nil
}

// splitPath breaks a slash path into components, dropping empty ones and
// ".".
func splitPath(path string) []string {
	var out []string
	for _, p := range strings.Split(path, "/") {
		if p == "" || p == "." {
			continue
		}
		out = append(out, p)
	}
	return out
}
