package libc

import "oskit/internal/com"

// The POSIX descriptor layer: file descriptors are small integers naming
// references to COM objects (paper §5).  Seek offsets live here, in the
// descriptor, because the kit's File interface is stateless (offsets are
// explicit), keeping per-open state out of file system components.

type fdKind int

const (
	fdFile fdKind = iota
	fdDir
	fdStream
	fdSocket
)

type fdesc struct {
	kind   fdKind
	file   com.File
	dir    com.Dir
	offset uint64
	app    bool // O_APPEND
	stream com.Stream
	sock   com.Socket
}

func (f *fdesc) close() {
	switch f.kind {
	case fdFile:
		f.file.Release()
	case fdDir:
		f.dir.Release()
	case fdStream:
		f.stream.Release()
	case fdSocket:
		_ = f.sock.Close()
		f.sock.Release()
	}
}

// installFD places d in the lowest free slot (POSIX allocation order).
func (c *C) installFD(d *fdesc) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, e := range c.fds {
		if e == nil {
			c.fds[i] = d
			return i
		}
	}
	c.fds = append(c.fds, d)
	return len(c.fds) - 1
}

func (c *C) getFD(fd int) (*fdesc, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if fd < 0 || fd >= len(c.fds) || c.fds[fd] == nil {
		return nil, com.ErrBadF
	}
	return c.fds[fd], nil
}

// Close releases a descriptor.
func (c *C) Close(fd int) error {
	c.mu.Lock()
	if fd < 0 || fd >= len(c.fds) || c.fds[fd] == nil {
		c.mu.Unlock()
		return com.ErrBadF
	}
	d := c.fds[fd]
	c.fds[fd] = nil
	c.mu.Unlock()
	d.close()
	return nil
}

// Read reads from any descriptor kind, advancing file offsets.
func (c *C) Read(fd int, buf []byte) (int, error) {
	d, err := c.getFD(fd)
	if err != nil {
		return 0, err
	}
	switch d.kind {
	case fdFile:
		n, err := d.file.ReadAt(buf, d.offset)
		if err != nil {
			return 0, err
		}
		d.offset += uint64(n)
		return int(n), nil
	case fdStream:
		n, err := d.stream.Read(buf)
		return int(n), err
	case fdSocket:
		n, err := d.sock.Read(buf)
		return int(n), err
	}
	return 0, com.ErrIsDir
}

// Write writes to any descriptor kind, honouring O_APPEND.
func (c *C) Write(fd int, buf []byte) (int, error) {
	d, err := c.getFD(fd)
	if err != nil {
		return 0, err
	}
	switch d.kind {
	case fdFile:
		if d.app {
			st, err := d.file.GetStat()
			if err != nil {
				return 0, err
			}
			d.offset = st.Size
		}
		n, err := d.file.WriteAt(buf, d.offset)
		if err != nil {
			return 0, err
		}
		d.offset += uint64(n)
		return int(n), nil
	case fdStream:
		n, err := d.stream.Write(buf)
		return int(n), err
	case fdSocket:
		n, err := d.sock.Write(buf)
		return int(n), err
	}
	return 0, com.ErrIsDir
}

// Seek whence values.
const (
	SeekSet = 0
	SeekCur = 1
	SeekEnd = 2
)

// Lseek repositions a file descriptor's offset.
func (c *C) Lseek(fd int, offset int64, whence int) (uint64, error) {
	d, err := c.getFD(fd)
	if err != nil {
		return 0, err
	}
	if d.kind != fdFile {
		return 0, com.ErrInval // ESPIPE territory
	}
	var base uint64
	switch whence {
	case SeekSet:
		base = 0
	case SeekCur:
		base = d.offset
	case SeekEnd:
		st, err := d.file.GetStat()
		if err != nil {
			return 0, err
		}
		base = st.Size
	default:
		return 0, com.ErrInval
	}
	pos := int64(base) + offset
	if pos < 0 {
		return 0, com.ErrInval
	}
	d.offset = uint64(pos)
	return d.offset, nil
}

// Dup duplicates a descriptor (both share the COM object but not the
// offset, matching the kit's stateless-File model; the original OSKit's
// openfile objects behaved likewise).
func (c *C) Dup(fd int) (int, error) {
	d, err := c.getFD(fd)
	if err != nil {
		return 0, err
	}
	nd := *d
	switch d.kind {
	case fdFile:
		d.file.AddRef()
	case fdDir:
		d.dir.AddRef()
	case fdStream:
		d.stream.AddRef()
	case fdSocket:
		d.sock.AddRef()
	}
	return c.installFD(&nd), nil
}

// Fstat returns metadata for a file or directory descriptor.
func (c *C) Fstat(fd int) (com.Stat, error) {
	d, err := c.getFD(fd)
	if err != nil {
		return com.Stat{}, err
	}
	switch d.kind {
	case fdFile:
		return d.file.GetStat()
	case fdDir:
		return d.dir.GetStat()
	}
	return com.Stat{}, com.ErrInval
}

// InstallFile installs an already-open com.File as a descriptor (one
// new reference is taken) — the reverse of FdObject, for clients that
// obtained the object through a native interface (e.g. a §3.8 security
// wrapper's per-component walk) and want to continue through the POSIX
// layer.
func (c *C) InstallFile(f com.File) int {
	f.AddRef()
	return c.installFD(&fdesc{kind: fdFile, file: f})
}

// FdObject exposes the COM object behind a descriptor (one new
// reference), letting clients escape to the native interfaces — the open
// implementation idea applied to the POSIX layer.
func (c *C) FdObject(fd int) (com.IUnknown, error) {
	d, err := c.getFD(fd)
	if err != nil {
		return nil, err
	}
	switch d.kind {
	case fdFile:
		d.file.AddRef()
		return d.file, nil
	case fdDir:
		d.dir.AddRef()
		return d.dir, nil
	case fdStream:
		d.stream.AddRef()
		return d.stream, nil
	case fdSocket:
		d.sock.AddRef()
		return d.sock, nil
	}
	return nil, com.ErrBadF
}
