// Package core is the heart of the kit: the component framework the rest
// of the OSKit hangs off.
//
// It supplies the two separability mechanisms of paper §4.2:
//
//   - Overridable functions (§4.2.1): Env is a bundle of function-valued
//     services (memory allocation, console output, logging, interrupt
//     control, sleep records, time) with working defaults.  Components
//     take an *Env; the client OS overrides exactly the services it wants
//     to own — the f_dev_mem_alloc pattern.
//   - Dynamic binding (§4.2.2): Registry lets the client OS register COM
//     objects by interface GUID and bind components together at run time
//     (any file system to any block device, any protocol stack to any
//     driver), with no link-time dependencies between them.
//
// It also documents the kit's execution models (§4.5) and provides the
// component-wide locking recipe for using non-reentrant encapsulated
// components from multithreaded clients (§4.7.4).
package core

import (
	"fmt"
	"os"

	"oskit/internal/hw"
	"oskit/internal/lmm"
)

// MemFlags are memory-type constraints understood by Env.MemAlloc.
type MemFlags uint32

const (
	// MemDMA demands memory a legacy DMA engine can address (below
	// hw.DMALimit on the simulated PC).
	MemDMA MemFlags = 1 << 0
)

// LMM region flags used by the default memory service; the kernel support
// library types physical memory with these when it builds the boot arena.
const (
	LMMFlagDMA  lmm.Flags = 1 << 0 // below 16 MB
	LMMFlagHigh lmm.Flags = 1 << 1 // above 16 MB
)

// DefaultTickNanos is the simulated clock granularity: 10 ms, the
// granularity the paper's ttcp timing had to compensate for (§5).
const DefaultTickNanos = 10_000_000

// Env is the execution environment a component runs against: the
// documented "all around" of §4.5.  Every field has a working default
// installed by NewEnv; the client OS overrides individual services by
// assigning the fields before handing the Env to components.
type Env struct {
	// Machine is the underlying simulated hardware.
	Machine *hw.Machine

	// MemAlloc allocates size bytes of (simulated) physical memory with
	// the given constraints, returning the address and a slice aliasing
	// the storage.  The default draws from the kit's LMM arena; a client
	// OS with its own physical memory manager overrides this (§4.2.1).
	MemAlloc func(size uint32, flags MemFlags, align uint32) (hw.PhysAddr, []byte, bool)
	// MemFree returns memory obtained from MemAlloc.
	MemFree func(addr hw.PhysAddr, size uint32)

	// Putchar is the console output primitive.  The minimal C library's
	// entire formatted-output stack bottoms out here, so a client that
	// provides nothing but a Putchar gets working printf (§4.3.1).
	Putchar func(c byte)

	// Log emits a diagnostic line; Panic reports an unrecoverable kit
	// error and must not return.
	Log   func(format string, args ...any)
	Panic func(format string, args ...any)

	// IntrDisable/IntrEnable are cli/sti (nesting); InIntr reports
	// interrupt level.  Defaults bind to the machine's controller.
	IntrDisable func()
	IntrEnable  func()
	InIntr      func() bool

	// SleepInit/Sleep/Wakeup are the sleep-record mechanism of §4.7.6:
	// the single, extremely simple blocking abstraction the client OS
	// must provide so encapsulated components can block.  A sleep record
	// is like a condition variable on which only one thread of control
	// can wait at a time.
	SleepInit func() *SleepRec
	Sleep     func(*SleepRec)
	Wakeup    func(*SleepRec)

	// TickNanos is the duration of one clock tick in nanoseconds.
	TickNanos uint64

	clock    *Clock
	Registry *Registry

	arena *lmm.Arena
}

// NewEnv builds an environment over a machine with every service at its
// default.  arena supplies the default memory service and may be nil if
// the client overrides MemAlloc/MemFree (full separability: using the
// drivers does not force using the kit's memory manager, §4.2).
func NewEnv(m *hw.Machine, arena *lmm.Arena) *Env {
	e := &Env{
		Machine:   m,
		TickNanos: DefaultTickNanos,
		Registry:  NewRegistry(),
		arena:     arena,
		clock:     NewClock(),
	}
	e.MemAlloc = e.defaultMemAlloc
	e.MemFree = e.defaultMemFree
	e.Putchar = func(c byte) { _, _ = os.Stdout.Write([]byte{c}) }
	e.Log = func(format string, args ...any) {
		msg := fmt.Sprintf(format, args...)
		for i := 0; i < len(msg); i++ {
			e.Putchar(msg[i])
		}
		e.Putchar('\n')
	}
	e.Panic = func(format string, args ...any) {
		panic("oskit: " + fmt.Sprintf(format, args...))
	}
	e.IntrDisable = m.Intr.Disable
	e.IntrEnable = m.Intr.Enable
	e.InIntr = m.Intr.InIntr
	e.SleepInit = NewSleepRec
	e.Sleep = func(r *SleepRec) { r.Sleep() }
	e.Wakeup = func(r *SleepRec) { r.Wakeup() }
	return e
}

// Arena exposes the default LMM arena (nil if the client supplied its own
// memory service): open implementation, §4.6.
func (e *Env) Arena() *lmm.Arena { return e.arena }

// Clock returns the environment's tick clock and callout service.
func (e *Env) Clock() *Clock { return e.clock }

// Ticks returns the tick count since boot.
func (e *Env) Ticks() uint64 { return e.clock.Ticks() }

// AfterTicks schedules fn to run at interrupt level after delay ticks,
// returning a cancel function (the service donor timeout/untimeout glue
// is built on, §4.7.6).
func (e *Env) AfterTicks(delay uint64, fn func()) (cancel func()) {
	return e.clock.After(delay, fn)
}

func (e *Env) defaultMemAlloc(size uint32, flags MemFlags, align uint32) (hw.PhysAddr, []byte, bool) {
	if e.arena == nil {
		return 0, nil, false
	}
	var lf lmm.Flags
	if flags&MemDMA != 0 {
		lf |= LMMFlagDMA
	}
	bits := uint(0)
	for align > 1 {
		bits++
		align >>= 1
	}
	addr, ok := e.arena.AllocAligned(size, lf, bits, 0)
	if !ok {
		return 0, nil, false
	}
	buf, err := e.Machine.Mem.Slice(addr, size)
	if err != nil {
		e.arena.Free(addr, size)
		return 0, nil, false
	}
	return addr, buf, true
}

func (e *Env) defaultMemFree(addr hw.PhysAddr, size uint32) {
	if e.arena != nil {
		e.arena.Free(addr, size)
	}
}
