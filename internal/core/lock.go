package core

import "sync"

// ComponentLock is the recipe of §4.7.4 for using the kit's encapsulated
// components — which are not inherently thread safe — from multithreaded
// or multiprocessor clients: take a component-wide lock just before
// entering the component and release it when the component returns *and*
// across any blocking calls the component makes back to the client.
//
// The kit's sleep glue cooperates: a component's Sleep service, wrapped
// with WrapSleep, drops the lock for the duration of the block so other
// process-level threads can enter the component, exactly as the donor
// kernels' sleep released the implicit big lock.
//
// Separate components may use separate locks (one around the file system,
// one around the network stack), giving the medium-grained concurrency
// the paper describes; the ablation benchmark in the top-level bench
// suite measures precisely that choice.
type ComponentLock struct {
	mu sync.Mutex
}

// Enter takes the component lock.
func (l *ComponentLock) Enter() { l.mu.Lock() }

// Leave releases the component lock.
func (l *ComponentLock) Leave() { l.mu.Unlock() }

// WrapSleep derives a Sleep service that releases the component lock
// while blocked.  Install it in the Env handed to the locked component:
//
//	env.Sleep = lock.WrapSleep(env.Sleep)
func (l *ComponentLock) WrapSleep(sleep func(*SleepRec)) func(*SleepRec) {
	return func(r *SleepRec) {
		l.mu.Unlock()
		sleep(r)
		l.mu.Lock()
	}
}
