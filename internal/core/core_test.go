package core

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	"oskit/internal/com"
	"oskit/internal/hw"
	"oskit/internal/lmm"
)

func testEnv(t *testing.T) (*Env, *hw.Machine) {
	t.Helper()
	m := hw.NewMachine(hw.Config{Name: "t", MemBytes: 4 << 20})
	t.Cleanup(m.Halt)
	arena := lmm.NewArena()
	if err := arena.AddRegion(0x10000, 2<<20, LMMFlagDMA, 0); err != nil {
		t.Fatal(err)
	}
	arena.AddFree(0x10000, 2<<20)
	return NewEnv(m, arena), m
}

func TestEnvDefaultMemAlloc(t *testing.T) {
	e, m := testEnv(t)
	addr, buf, ok := e.MemAlloc(4096, MemDMA, 4096)
	if !ok {
		t.Fatal("MemAlloc failed")
	}
	if addr%4096 != 0 {
		t.Fatalf("alignment violated: %#x", addr)
	}
	if addr >= hw.DMALimit {
		t.Fatalf("DMA memory above limit: %#x", addr)
	}
	// The slice aliases machine memory.
	buf[0] = 0xAB
	if m.Mem.MustSlice(addr, 1)[0] != 0xAB {
		t.Fatal("MemAlloc slice does not alias physical memory")
	}
	e.MemFree(addr, 4096)
	if _, _, ok := e.MemAlloc(1, 0, 0); !ok {
		t.Fatal("alloc after free failed")
	}
}

func TestEnvMemAllocOverride(t *testing.T) {
	// Full separability: a client with its own allocator overrides the
	// service; no arena needed at all (§4.2.1).
	m := hw.NewMachine(hw.Config{MemBytes: 1 << 20})
	defer m.Halt()
	e := NewEnv(m, nil)
	if _, _, ok := e.MemAlloc(64, 0, 0); ok {
		t.Fatal("default alloc with no arena should fail")
	}
	backing := make([]byte, 1024)
	e.MemAlloc = func(size uint32, flags MemFlags, align uint32) (hw.PhysAddr, []byte, bool) {
		return 0x42, backing[:size], true
	}
	addr, buf, ok := e.MemAlloc(64, 0, 0)
	if !ok || addr != 0x42 || len(buf) != 64 {
		t.Fatal("override not used")
	}
}

func TestEnvLogBottomsOutInPutchar(t *testing.T) {
	e, _ := testEnv(t)
	var out bytes.Buffer
	e.Putchar = func(c byte) { out.WriteByte(c) }
	e.Log("value %d", 7)
	if out.String() != "value 7\n" {
		t.Fatalf("Log wrote %q", out.String())
	}
}

func TestSleepRecWakeupBeforeSleep(t *testing.T) {
	r := NewSleepRec()
	r.Wakeup()
	r.Wakeup() // coalesces; must not block or panic
	done := make(chan struct{})
	go func() {
		r.Sleep()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("pending wakeup lost")
	}
}

func TestSleepRecBlocksUntilWakeup(t *testing.T) {
	r := NewSleepRec()
	done := make(chan struct{})
	go func() {
		r.Sleep()
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("Sleep returned without Wakeup")
	case <-time.After(20 * time.Millisecond):
	}
	r.Wakeup()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Wakeup did not unblock sleeper")
	}
}

func TestClockCallouts(t *testing.T) {
	c := NewClock()
	var mu sync.Mutex
	var fired []string
	add := func(s string) func() {
		return func() { mu.Lock(); fired = append(fired, s); mu.Unlock() }
	}
	c.After(0, add("a")) // next tick
	c.After(2, add("b"))
	cancelC := c.After(1, add("c"))
	cancelC()
	cancelC() // idempotent

	c.Tick()
	mu.Lock()
	got := strings.Join(fired, "")
	mu.Unlock()
	if got != "a" {
		t.Fatalf("after tick 1: %q", got)
	}
	c.Tick()
	c.Tick()
	mu.Lock()
	got = strings.Join(fired, "")
	mu.Unlock()
	if got != "ab" {
		t.Fatalf("after tick 3: %q (cancelled callout ran?)", got)
	}
	if c.Ticks() != 3 {
		t.Fatalf("Ticks = %d", c.Ticks())
	}
}

func TestClockCalloutOrderAmongEqualDeadlines(t *testing.T) {
	c := NewClock()
	var mu sync.Mutex
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		c.After(0, func() { mu.Lock(); order = append(order, i); mu.Unlock() })
	}
	c.Tick()
	mu.Lock()
	defer mu.Unlock()
	for i, v := range order {
		if v != i {
			t.Fatalf("callout order = %v", order)
		}
	}
}

func TestRegistryRoundTrip(t *testing.T) {
	r := NewRegistry()
	b := com.NewMemBuf(make([]byte, 8))
	r.Register(com.BlkIOIID, b)
	if b.Refs() != 2 {
		t.Fatalf("registry did not take a reference: %d", b.Refs())
	}
	got := r.First(com.BlkIOIID)
	if got != com.IUnknown(b) {
		t.Fatal("First returned wrong object")
	}
	got.Release()
	all := r.Lookup(com.BlkIOIID)
	if len(all) != 1 {
		t.Fatalf("Lookup returned %d objects", len(all))
	}
	all[0].Release()
	if r.First(com.SocketIID) != nil {
		t.Fatal("lookup of unregistered interface succeeded")
	}
	if !r.Unregister(com.BlkIOIID, b) {
		t.Fatal("Unregister failed")
	}
	if r.Unregister(com.BlkIOIID, b) {
		t.Fatal("double Unregister succeeded")
	}
	if b.Refs() != 1 {
		t.Fatalf("reference leak through registry: %d", b.Refs())
	}
}

func TestComponentLockWrapSleep(t *testing.T) {
	var l ComponentLock
	rec := NewSleepRec()
	sleep := l.WrapSleep(func(r *SleepRec) { r.Sleep() })

	l.Enter()
	entered := make(chan struct{})
	go func() {
		// A second thread can enter the component while the first is
		// blocked in sleep.
		l.Enter()
		close(entered)
		rec.Wakeup()
		l.Leave()
	}()
	sleep(rec) // releases the lock, blocks, re-acquires
	select {
	case <-entered:
	default:
		t.Fatal("lock was not released across the blocking call")
	}
	l.Leave()
}

func TestInventoryConsistent(t *testing.T) {
	if err := CheckInventory(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	WriteStructure(&buf)
	out := buf.String()
	for _, want := range []string{"Client Operating System", "encapsulated", "freebsd_net", "lmm"} {
		if !strings.Contains(out, want) {
			t.Errorf("structure dump missing %q", want)
		}
	}
	if _, ok := FindComponent("lmm"); !ok {
		t.Error("FindComponent(lmm) failed")
	}
	if _, ok := FindComponent("nope"); ok {
		t.Error("FindComponent(nope) succeeded")
	}
}

func TestEnvClockIntegration(t *testing.T) {
	e, _ := testEnv(t)
	var mu sync.Mutex
	n := 0
	cancel := e.AfterTicks(1, func() { mu.Lock(); n++; mu.Unlock() })
	defer cancel()
	e.Clock().Tick()
	e.Clock().Tick()
	mu.Lock()
	defer mu.Unlock()
	if n != 1 {
		t.Fatalf("callout ran %d times", n)
	}
	if e.Ticks() != 2 {
		t.Fatalf("Ticks = %d", e.Ticks())
	}
}
