package core

import (
	"fmt"
	"io"
	"sort"
)

// Kind classifies a component's provenance, matching the structure of
// Figure 1 and Table 3 of the paper: native kit code, thin glue, or
// donor-style encapsulated code.
type Kind int

// Component provenance kinds.
const (
	KindNative Kind = iota
	KindGlue
	KindEncapsulated
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindNative:
		return "native"
	case KindGlue:
		return "glue"
	case KindEncapsulated:
		return "encapsulated"
	}
	return "?"
}

// Component is one entry in the kit's structural inventory.
type Component struct {
	// Name is the library name, following Table 3 of the paper
	// ("boot", "kern", "lmm", "freebsd_net", …).
	Name string
	// Dir is the repository directory holding the component.
	Dir string
	// Kind is the provenance class.
	Kind Kind
	// MachineDep is true for components tied to the (simulated) x86 PC.
	MachineDep bool
	// Deps names the inventory components this one uses.
	Deps []string
	// Desc is the one-line description printed in structure dumps.
	Desc string
}

// Inventory is the kit's component list, mirroring Table 3 row for row
// (minus the paper's in-progress X11 row and its math library, per
// DESIGN.md §6).  cmd/oskit-graph renders it as Figure 1;
// cmd/oskit-sizes joins it with source-line counts to regenerate Table 3.
var Inventory = []Component{
	{Name: "boot", Dir: "internal/boot", Kind: KindNative, MachineDep: true, Deps: []string{"lmm"}, Desc: "Bootstrap support (MultiBoot-style images and modules)"},
	{Name: "kern", Dir: "internal/kern", Kind: KindNative, MachineDep: true, Deps: []string{"core", "lmm", "boot", "hw", "stats"}, Desc: "Kernel support library"},
	{Name: "smp", Dir: "internal/smp", Kind: KindNative, MachineDep: true, Deps: []string{"core"}, Desc: "Multiprocessor support"},
	{Name: "lmm", Dir: "internal/lmm", Kind: KindNative, MachineDep: false, Deps: []string{"stats"}, Desc: "List memory manager"},
	{Name: "amm", Dir: "internal/amm", Kind: KindNative, MachineDep: false, Deps: []string{"stats"}, Desc: "Address map manager"},
	{Name: "c", Dir: "internal/libc", Kind: KindNative, MachineDep: false, Deps: []string{"core", "com"}, Desc: "Minimal C library"},
	{Name: "memdebug", Dir: "internal/memdebug", Kind: KindNative, MachineDep: false, Deps: []string{"core"}, Desc: "Malloc debugging"},
	{Name: "diskpart", Dir: "internal/diskpart", Kind: KindNative, MachineDep: false, Deps: []string{"com"}, Desc: "Disk partitioning"},
	{Name: "fsread", Dir: "internal/fsread", Kind: KindNative, MachineDep: false, Deps: []string{"com"}, Desc: "File system reading"},
	{Name: "exec", Dir: "internal/exec", Kind: KindNative, MachineDep: false, Deps: []string{"amm", "com"}, Desc: "Program loading"},
	{Name: "com", Dir: "internal/com", Kind: KindNative, MachineDep: false, Deps: nil, Desc: "COM interfaces and support"},
	{Name: "stats", Dir: "internal/stats", Kind: KindNative, MachineDep: false, Deps: []string{"com"}, Desc: "Statistics component (kstat-style counters exported as com.Stats)"},
	{Name: "core", Dir: "internal/core", Kind: KindNative, MachineDep: false, Deps: []string{"com", "lmm", "hw"}, Desc: "Component framework (osenv, registry, execution models)"},
	{Name: "hw", Dir: "internal/hw", Kind: KindNative, MachineDep: true, Deps: nil, Desc: "Simulated PC platform (substitution substrate)"},
	{Name: "fdev", Dir: "internal/dev", Kind: KindNative, MachineDep: false, Deps: []string{"core", "com"}, Desc: "Device driver support"},
	{Name: "gdb", Dir: "internal/gdb", Kind: KindNative, MachineDep: true, Deps: []string{"hw", "kern"}, Desc: "GDB remote-protocol stub"},
	{Name: "linux_dev", Dir: "internal/linux/dev", Kind: KindGlue, MachineDep: true, Deps: []string{"core", "com", "fdev", "linux_legacy", "stats"}, Desc: "Linux driver glue"},
	{Name: "linux_legacy", Dir: "internal/linux/legacy", Kind: KindEncapsulated, MachineDep: true, Deps: nil, Desc: "Linux-style drivers and skbuffs (donor code)"},
	{Name: "linux_net", Dir: "internal/linux/net", Kind: KindEncapsulated, MachineDep: false, Deps: []string{"linux_legacy", "stats"}, Desc: "Linux-style TCP/IP (baseline stack)"},
	{Name: "freebsd_glue", Dir: "internal/freebsd/glue", Kind: KindGlue, MachineDep: false, Deps: []string{"core", "com", "stats"}, Desc: "FreeBSD environment emulation (curproc, sleep/wakeup, malloc)"},
	{Name: "freebsd_dev", Dir: "internal/freebsd/dev", Kind: KindGlue, MachineDep: true, Deps: []string{"freebsd_glue", "fdev"}, Desc: "FreeBSD character drivers and support"},
	{Name: "freebsd_net", Dir: "internal/freebsd/net", Kind: KindEncapsulated, MachineDep: false, Deps: []string{"freebsd_glue", "com", "stats"}, Desc: "FreeBSD-style TCP/IP network stack"},
	{Name: "netbsd_fs", Dir: "internal/netbsd/fs", Kind: KindEncapsulated, MachineDep: false, Deps: []string{"freebsd_glue", "com", "stats"}, Desc: "NetBSD-style FFS file system"},
	{Name: "kvm", Dir: "internal/kvm", Kind: KindNative, MachineDep: false, Deps: []string{"c", "stats"}, Desc: "Bytecode VM (language-runtime case study)"},
	{Name: "bmfs", Dir: "internal/bmfs", Kind: KindNative, MachineDep: false, Deps: []string{"boot", "com", "stats"}, Desc: "Boot-module RAM file system"},
	{Name: "linux_fs", Dir: "internal/linux/fs", Kind: KindEncapsulated, MachineDep: false, Deps: []string{"linux_legacy", "com"}, Desc: "Linux-style ext2-flavoured file system (the paper's in-progress row)"},
	{Name: "evalrig", Dir: "internal/evalrig", Kind: KindNative, MachineDep: false, Deps: []string{"kern", "c", "fdev", "linux_dev", "linux_net", "freebsd_net"}, Desc: "Evaluation testbed (Tables 1-2 configurations)"},
}

// FindComponent looks a component up by name.
func FindComponent(name string) (Component, bool) {
	for _, c := range Inventory {
		if c.Name == name {
			return c, true
		}
	}
	return Component{}, false
}

// CheckInventory validates the inventory's internal consistency: unique
// names and resolvable dependencies.  Returning an error rather than
// panicking lets tools print something useful.
func CheckInventory() error {
	seen := map[string]bool{}
	for _, c := range Inventory {
		if seen[c.Name] {
			return fmt.Errorf("core: duplicate inventory component %q", c.Name)
		}
		seen[c.Name] = true
	}
	for _, c := range Inventory {
		for _, d := range c.Deps {
			if !seen[d] {
				return fmt.Errorf("core: component %q depends on unknown %q", c.Name, d)
			}
		}
	}
	return nil
}

// WriteStructure renders the Figure 1 structure: the client OS on top,
// native and glue components in the middle, encapsulated donor code
// shaded at the bottom, with dependency edges.
func WriteStructure(w io.Writer) {
	byKind := map[Kind][]Component{}
	for _, c := range Inventory {
		byKind[c.Kind] = append(byKind[c.Kind], c)
	}
	fmt.Fprintln(w, "Client Operating System or Language Run-Time System")
	fmt.Fprintln(w, "====================================================")
	for _, k := range []Kind{KindNative, KindGlue, KindEncapsulated} {
		list := byKind[k]
		sort.Slice(list, func(i, j int) bool { return list[i].Name < list[j].Name })
		fmt.Fprintf(w, "[%s]\n", k)
		for _, c := range list {
			fmt.Fprintf(w, "  %-14s %s\n", c.Name, c.Desc)
			if len(c.Deps) > 0 {
				fmt.Fprintf(w, "  %-14s -> %v\n", "", c.Deps)
			}
		}
	}
}
