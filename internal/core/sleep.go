package core

// SleepRec is the kit's minimal blocking abstraction (paper §4.7.6): like
// a condition variable except that only one thread of control can wait on
// it at a time.  Encapsulated components emulate their donor OS's richer
// sleep/wakeup machinery on top of nothing but this, and a client OS can
// replace it with condition variables, event objects, or — as in the
// kit's single-threaded example kernels — a busy-wait on one bit.
//
// A wakeup with no sleeper pending is remembered once ("binary
// semaphore" behaviour), which is what makes the interrupt-completes-
// before-the-sleep race benign: the classic lost-wakeup window between a
// driver starting I/O and going to sleep.
type SleepRec struct {
	ch chan struct{}
}

// NewSleepRec creates a sleep record with no wakeup pending.
func NewSleepRec() *SleepRec { return &SleepRec{ch: make(chan struct{}, 1)} }

// Sleep blocks the calling process-level thread until the next (or a
// pending) Wakeup.  It must not be called at interrupt level or inside an
// IntrDisable section.
func (r *SleepRec) Sleep() { <-r.ch }

// Wakeup unblocks the sleeper, or marks the record so the next Sleep
// returns immediately.  Safe from interrupt level; never blocks.
func (r *SleepRec) Wakeup() {
	select {
	case r.ch <- struct{}{}:
	default:
	}
}
