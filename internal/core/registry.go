package core

import (
	"sync"

	"oskit/internal/com"
)

// Registry is the kit's services database: the rendezvous point for
// dynamic binding (§4.2.2).  Components register the COM objects they
// export under interface GUIDs; the client OS looks them up and wires
// components together at run time.  Neither side acquires a link-time
// dependency on the other.
type Registry struct {
	mu      sync.Mutex
	entries map[com.GUID][]com.IUnknown
}

// NewRegistry creates an empty database.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[com.GUID][]com.IUnknown)}
}

// Register adds obj under iid (an object may be registered under several
// interface IDs).  The registry holds one reference.
func (r *Registry) Register(iid com.GUID, obj com.IUnknown) {
	obj.AddRef()
	r.mu.Lock()
	r.entries[iid] = append(r.entries[iid], obj)
	r.mu.Unlock()
}

// Unregister removes one registration of obj under iid, dropping the
// registry's reference; it reports whether anything was removed.
func (r *Registry) Unregister(iid com.GUID, obj com.IUnknown) bool {
	r.mu.Lock()
	list := r.entries[iid]
	for i, o := range list {
		if o == obj {
			r.entries[iid] = append(append([]com.IUnknown{}, list[:i]...), list[i+1:]...)
			r.mu.Unlock()
			obj.Release()
			return true
		}
	}
	r.mu.Unlock()
	return false
}

// Lookup returns all objects registered under iid, in registration order,
// with one new reference each.
func (r *Registry) Lookup(iid com.GUID) []com.IUnknown {
	r.mu.Lock()
	list := append([]com.IUnknown(nil), r.entries[iid]...)
	r.mu.Unlock()
	for _, o := range list {
		o.AddRef()
	}
	return list
}

// First returns the first object registered under iid (one new
// reference), or nil.
func (r *Registry) First(iid com.GUID) com.IUnknown {
	r.mu.Lock()
	defer r.mu.Unlock()
	if list := r.entries[iid]; len(list) > 0 {
		list[0].AddRef()
		return list[0]
	}
	return nil
}
