package core

import (
	"container/heap"
	"sync"
)

// Clock is the kit's tick counter plus a callout table: functions
// scheduled to run at interrupt level after a number of ticks.  The
// kernel support library advances it from the timer interrupt; donor
// timeout/untimeout and TCP's timers sit on top.
type Clock struct {
	mu    sync.Mutex
	ticks uint64
	q     calloutHeap
	seq   uint64
}

// NewClock creates a clock at tick zero.
func NewClock() *Clock { return &Clock{} }

// Ticks returns the current tick count.
func (c *Clock) Ticks() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ticks
}

// Tick advances the clock one tick and runs expired callouts.  It is
// called from the timer interrupt handler, so callouts run at interrupt
// level: they must not block (§4.7.4).
func (c *Clock) Tick() {
	c.mu.Lock()
	c.ticks++
	now := c.ticks
	var due []*callout
	for len(c.q) > 0 && c.q[0].when <= now {
		co := heap.Pop(&c.q).(*callout)
		if !co.cancelled {
			due = append(due, co)
		}
	}
	c.mu.Unlock()
	for _, co := range due {
		co.fn()
	}
}

// After schedules fn to run delay ticks from now (delay 0 means on the
// next tick).  The returned cancel function is idempotent and reports
// nothing; cancelling an already-run callout is harmless.
func (c *Clock) After(delay uint64, fn func()) (cancel func()) {
	c.mu.Lock()
	c.seq++
	co := &callout{when: c.ticks + delay + 1, seq: c.seq, fn: fn}
	heap.Push(&c.q, co)
	c.mu.Unlock()
	return func() {
		c.mu.Lock()
		co.cancelled = true
		c.mu.Unlock()
	}
}

// Pending reports how many callouts are scheduled (including cancelled
// ones not yet reaped); for tests.
func (c *Clock) Pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.q)
}

type callout struct {
	when      uint64
	seq       uint64 // FIFO among equal deadlines
	fn        func()
	cancelled bool
	index     int
}

type calloutHeap []*callout

func (h calloutHeap) Len() int { return len(h) }
func (h calloutHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}
func (h calloutHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *calloutHeap) Push(x any) {
	co := x.(*callout)
	co.index = len(*h)
	*h = append(*h, co)
}
func (h *calloutHeap) Pop() any {
	old := *h
	n := len(old)
	co := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return co
}
