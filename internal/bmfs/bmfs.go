// Package bmfs is the boot-module file system (paper §6.2.2): a RAM file
// system, accessible immediately upon bootstrap through the POSIX layer's
// standard open/close/read/write interfaces, populated from the boot
// modules the loader placed in memory.
//
// A module whose string is "bin/init args…" appears as the file
// /bin/init (only the first whitespace-separated word of the string names
// the file; the rest is the module's argument text, retrievable with
// ModuleArgs).  Intermediate directories are created on demand.
//
// The paper's clients leaned on this heavily: Fluke's first user program
// and root file system, ML/OS's precompiled heap image, Java/PC's class
// files all came from boot modules, because it "invariably proved to be
// by far the most simple, robust, and convenient" way to get data to a
// young kernel.  The kit's bmfs is writable — it is an ordinary RAM FS
// once populated — which is what lets it act as a root file system.
package bmfs

import (
	"sort"
	"strings"
	"sync"

	"oskit/internal/boot"
	"oskit/internal/com"
	"oskit/internal/hw"
	"oskit/internal/stats"
)

// FS is the boot-module RAM file system.  It implements com.FileSystem.
type FS struct {
	com.RefCount
	mu      sync.Mutex
	root    *node
	nextIno uint32
	ticks   func() uint64 // time source for stamps; may be nil
	args    map[string]string

	// com.Stats export.  The file system has no environment handle, so
	// whoever assembles the configuration registers StatsSet().
	set       *stats.Set
	scReads   *stats.Counter
	scWrites  *stats.Counter
	scRdBytes *stats.Counter
	scWrBytes *stats.Counter
	scLookups *stats.Counter
}

// node is one file or directory.
type node struct {
	fs *FS
	com.RefCount
	ino      uint32
	mode     uint32
	data     []byte           // regular files
	children map[string]*node // directories
	nlink    uint32
	mtime    uint64
}

// New creates an empty RAM file system.  ticks supplies timestamps and
// may be nil.
func New(ticks func() uint64) *FS {
	fs := &FS{ticks: ticks, args: map[string]string{}, nextIno: 1}
	fs.Init()
	fs.set = stats.NewSet("bmfs")
	fs.scReads = fs.set.Counter("fs.reads")
	fs.scWrites = fs.set.Counter("fs.writes")
	fs.scRdBytes = fs.set.Counter("fs.read_bytes")
	fs.scWrBytes = fs.set.Counter("fs.write_bytes")
	fs.scLookups = fs.set.Counter("fs.lookups")
	fs.root = fs.newNode(com.ModeIFDIR|0o755, fs.now())
	fs.root.children = map[string]*node{}
	return fs
}

// StatsSet exposes the file system's com.Stats export for registration
// in a services registry.  The FS keeps its own reference.
func (f *FS) StatsSet() *stats.Set { return f.set }

// Populate creates files from the boot modules described by info, reading
// their contents out of physical memory.  It returns the number of files
// created.
func (f *FS) Populate(info *boot.Info, mem *hw.PhysMem) (int, error) {
	n := 0
	for _, m := range info.Modules {
		name, rest, _ := strings.Cut(m.String, " ")
		name = strings.Trim(name, "/")
		if name == "" {
			continue
		}
		data, err := mem.Slice(m.Addr, m.Size)
		if err != nil {
			return n, err
		}
		if err := f.writeFile(name, append([]byte(nil), data...)); err != nil {
			return n, err
		}
		f.mu.Lock()
		f.args["/"+name] = rest
		f.mu.Unlock()
		n++
	}
	return n, nil
}

// ModuleArgs returns the argument text that followed the file name in the
// boot-module string for path (e.g. "/bin/init").
func (f *FS) ModuleArgs(path string) string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.args[path]
}

// writeFile creates path (slash-separated, relative to root) with data,
// making intermediate directories.
func (f *FS) writeFile(path string, data []byte) error {
	ts := f.now()
	f.mu.Lock()
	defer f.mu.Unlock()
	parts := strings.Split(path, "/")
	dir := f.root
	for _, p := range parts[:len(parts)-1] {
		child, ok := dir.children[p]
		if !ok {
			child = f.newNode(com.ModeIFDIR|0o755, ts)
			child.children = map[string]*node{}
			dir.children[p] = child
			dir.nlink++
		}
		if child.mode&com.ModeIFMT != com.ModeIFDIR {
			return com.ErrNotDir
		}
		dir = child
	}
	leaf := parts[len(parts)-1]
	file, ok := dir.children[leaf]
	if !ok {
		file = f.newNode(com.ModeIFREG|0o644, ts)
		dir.children[leaf] = file
	}
	if file.mode&com.ModeIFMT != com.ModeIFREG {
		return com.ErrIsDir
	}
	file.data = data
	file.mtime = ts
	return nil
}

// newNode allocates a node stamped with ts.  Callers pass a timestamp
// read *before* taking f.mu: the ticks source is an interposable
// function field and must not run under the lock (lockhook).
func (f *FS) newNode(mode uint32, ts uint64) *node {
	n := &node{fs: f, ino: f.nextIno, mode: mode, nlink: 1, mtime: ts}
	f.nextIno++
	n.Init()
	return n
}

func (f *FS) now() uint64 {
	if f.ticks == nil {
		return 0
	}
	return f.ticks()
}

// --- com.FileSystem ---

// QueryInterface implements com.IUnknown.
func (f *FS) QueryInterface(iid com.GUID) (com.IUnknown, error) {
	switch iid {
	case com.UnknownIID, com.FileSystemIID:
		f.AddRef()
		return f, nil
	}
	return nil, com.ErrNoInterface
}

// GetRoot implements com.FileSystem.
func (f *FS) GetRoot() (com.Dir, error) {
	f.root.AddRef()
	return f.root, nil
}

// StatFS implements com.FileSystem.
func (f *FS) StatFS() (com.StatFS, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	var files, bytes uint64
	var walk func(*node)
	walk = func(n *node) {
		files++
		bytes += uint64(len(n.data))
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(f.root)
	return com.StatFS{BlockSize: 1, TotalBlocks: bytes, TotalFiles: files}, nil
}

// Sync implements com.FileSystem; RAM needs no flushing.
func (f *FS) Sync() error { return nil }

// Unmount implements com.FileSystem.
func (f *FS) Unmount() error { return nil }

var _ com.FileSystem = (*FS)(nil)

// --- node as com.File / com.Dir ---

// QueryInterface implements com.IUnknown: directories answer for Dir and
// File, regular files for File only.
func (n *node) QueryInterface(iid com.GUID) (com.IUnknown, error) {
	switch iid {
	case com.UnknownIID, com.FileIID:
		n.AddRef()
		return n, nil
	case com.DirIID:
		if n.isDir() {
			n.AddRef()
			return n, nil
		}
	}
	return nil, com.ErrNoInterface
}

func (n *node) isDir() bool { return n.mode&com.ModeIFMT == com.ModeIFDIR }

// ReadAt implements com.File.
func (n *node) ReadAt(buf []byte, offset uint64) (uint, error) {
	n.fs.mu.Lock()
	defer n.fs.mu.Unlock()
	if n.isDir() {
		return 0, com.ErrIsDir
	}
	if offset >= uint64(len(n.data)) {
		return 0, nil
	}
	got := uint(copy(buf, n.data[offset:]))
	n.fs.scReads.Inc()
	n.fs.scRdBytes.Add(uint64(got))
	return got, nil
}

// WriteAt implements com.File, extending with a zero-filled gap when the
// offset is past EOF.
func (n *node) WriteAt(buf []byte, offset uint64) (uint, error) {
	ts := n.fs.now()
	n.fs.mu.Lock()
	defer n.fs.mu.Unlock()
	if n.isDir() {
		return 0, com.ErrIsDir
	}
	end := offset + uint64(len(buf))
	if end > uint64(len(n.data)) {
		grown := make([]byte, end)
		copy(grown, n.data)
		n.data = grown
	}
	copy(n.data[offset:], buf)
	n.mtime = ts
	n.fs.scWrites.Inc()
	n.fs.scWrBytes.Add(uint64(len(buf)))
	return uint(len(buf)), nil
}

// GetStat implements com.File.
func (n *node) GetStat() (com.Stat, error) {
	n.fs.mu.Lock()
	defer n.fs.mu.Unlock()
	return com.Stat{
		Ino:     n.ino,
		Mode:    n.mode,
		Nlink:   n.nlink,
		Size:    uint64(len(n.data)),
		Blocks:  uint64(len(n.data)),
		Mtime:   n.mtime,
		BlkSize: 1,
	}, nil
}

// SetSize implements com.File.
func (n *node) SetSize(size uint64) error {
	ts := n.fs.now()
	n.fs.mu.Lock()
	defer n.fs.mu.Unlock()
	if n.isDir() {
		return com.ErrIsDir
	}
	if size <= uint64(len(n.data)) {
		n.data = n.data[:size]
	} else {
		grown := make([]byte, size)
		copy(grown, n.data)
		n.data = grown
	}
	n.mtime = ts
	return nil
}

// Sync implements com.File.
func (n *node) Sync() error { return nil }

// Lookup implements com.Dir.  name is a single component (§3.8).
func (n *node) Lookup(name string) (com.File, error) {
	n.fs.mu.Lock()
	defer n.fs.mu.Unlock()
	child, err := n.lookupLocked(name)
	if err != nil {
		return nil, err
	}
	n.fs.scLookups.Inc()
	child.AddRef()
	return child, nil
}

func (n *node) lookupLocked(name string) (*node, error) {
	if !n.isDir() {
		return nil, com.ErrNotDir
	}
	if err := checkName(name); err != nil {
		return nil, err
	}
	if name == "." {
		return n, nil
	}
	child, ok := n.children[name]
	if !ok {
		return nil, com.ErrNoEnt
	}
	return child, nil
}

// Create implements com.Dir.
func (n *node) Create(name string, mode uint32, excl bool) (com.File, error) {
	ts := n.fs.now()
	n.fs.mu.Lock()
	defer n.fs.mu.Unlock()
	if !n.isDir() {
		return nil, com.ErrNotDir
	}
	if err := checkName(name); err != nil {
		return nil, err
	}
	if existing, ok := n.children[name]; ok {
		if excl {
			return nil, com.ErrExist
		}
		if existing.isDir() {
			return nil, com.ErrIsDir
		}
		existing.AddRef()
		return existing, nil
	}
	file := n.fs.newNode(com.ModeIFREG|mode&^com.ModeIFMT, ts)
	n.children[name] = file
	n.mtime = ts
	file.AddRef()
	return file, nil
}

// Mkdir implements com.Dir.
func (n *node) Mkdir(name string, mode uint32) error {
	ts := n.fs.now()
	n.fs.mu.Lock()
	defer n.fs.mu.Unlock()
	if !n.isDir() {
		return com.ErrNotDir
	}
	if err := checkName(name); err != nil {
		return err
	}
	if _, ok := n.children[name]; ok {
		return com.ErrExist
	}
	d := n.fs.newNode(com.ModeIFDIR|mode&^com.ModeIFMT, ts)
	d.children = map[string]*node{}
	n.children[name] = d
	n.nlink++
	n.mtime = ts
	return nil
}

// Unlink implements com.Dir.
func (n *node) Unlink(name string) error {
	ts := n.fs.now()
	n.fs.mu.Lock()
	defer n.fs.mu.Unlock()
	child, err := n.lookupLocked(name)
	if err != nil {
		return err
	}
	if child.isDir() {
		return com.ErrIsDir
	}
	delete(n.children, name)
	n.mtime = ts
	child.Release()
	return nil
}

// Rmdir implements com.Dir.
func (n *node) Rmdir(name string) error {
	ts := n.fs.now()
	n.fs.mu.Lock()
	defer n.fs.mu.Unlock()
	child, err := n.lookupLocked(name)
	if err != nil {
		return err
	}
	if !child.isDir() {
		return com.ErrNotDir
	}
	if len(child.children) != 0 {
		return com.ErrNotEmpty
	}
	delete(n.children, name)
	n.nlink--
	n.mtime = ts
	child.Release()
	return nil
}

// Rename implements com.Dir.
func (n *node) Rename(old string, newDir com.Dir, newName string) error {
	dst, ok := newDir.(*node)
	if !ok || dst.fs != n.fs {
		return com.ErrXDev
	}
	ts := n.fs.now()
	n.fs.mu.Lock()
	defer n.fs.mu.Unlock()
	child, err := n.lookupLocked(old)
	if err != nil {
		return err
	}
	if !dst.isDir() {
		return com.ErrNotDir
	}
	if err := checkName(newName); err != nil {
		return err
	}
	if existing, ok := dst.children[newName]; ok {
		if existing.isDir() {
			return com.ErrIsDir
		}
		existing.Release()
	}
	delete(n.children, old)
	dst.children[newName] = child
	n.mtime = ts
	dst.mtime = ts
	return nil
}

// ReadDir implements com.Dir, in name order.
func (n *node) ReadDir(start, count int) ([]com.Dirent, error) {
	n.fs.mu.Lock()
	defer n.fs.mu.Unlock()
	if !n.isDir() {
		return nil, com.ErrNotDir
	}
	names := make([]string, 0, len(n.children))
	for name := range n.children {
		names = append(names, name)
	}
	sort.Strings(names)
	if start < 0 || start > len(names) {
		return nil, com.ErrInval
	}
	names = names[start:]
	if count > 0 && count < len(names) {
		names = names[:count]
	}
	out := make([]com.Dirent, len(names))
	for i, name := range names {
		out[i] = com.Dirent{Ino: n.children[name].ino, Name: name}
	}
	return out, nil
}

var _ com.Dir = (*node)(nil)

// checkName enforces the single-component rule of §3.8.
func checkName(name string) error {
	if name == "" || name == ".." {
		return com.ErrInval
	}
	if strings.ContainsRune(name, '/') {
		return com.ErrInval
	}
	if len(name) > 255 {
		return com.ErrNameLong
	}
	return nil
}
