package bmfs

import (
	"bytes"
	"testing"

	"oskit/internal/boot"
	"oskit/internal/com"
	"oskit/internal/hw"
)

func populated(t *testing.T) *FS {
	t.Helper()
	mem := hw.NewPhysMem(8 << 20)
	img := boot.BuildImage("kernel", []boot.ModuleSpec{
		{String: "bin/init -s single-user", Data: []byte("INIT")},
		{String: "etc/motd", Data: []byte("welcome\n")},
		{String: "heap.img", Data: bytes.Repeat([]byte{7}, 4096)},
	})
	info, err := boot.Load(img, mem)
	if err != nil {
		t.Fatal(err)
	}
	fs := New(nil)
	n, err := fs.Populate(info, mem)
	if err != nil || n != 3 {
		t.Fatalf("Populate = %d, %v", n, err)
	}
	return fs
}

// lookupPath walks slash-separated components, per the single-component
// interface contract.
func lookupPath(t *testing.T, fs *FS, parts ...string) com.File {
	t.Helper()
	root, err := fs.GetRoot()
	if err != nil {
		t.Fatal(err)
	}
	var cur com.File = root
	for _, p := range parts {
		d, ok := cur.(com.Dir)
		if !ok {
			t.Fatalf("%q not a directory", p)
		}
		next, err := d.Lookup(p)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", p, err)
		}
		cur.Release()
		cur = next
	}
	return cur
}

func TestPopulateFromBootModules(t *testing.T) {
	fs := populated(t)
	f := lookupPath(t, fs, "bin", "init")
	defer f.Release()
	buf := make([]byte, 16)
	n, err := f.ReadAt(buf, 0)
	if err != nil || string(buf[:n]) != "INIT" {
		t.Fatalf("init contents = %q, %v", buf[:n], err)
	}
	if fs.ModuleArgs("/bin/init") != "-s single-user" {
		t.Fatalf("ModuleArgs = %q", fs.ModuleArgs("/bin/init"))
	}
	st, err := f.GetStat()
	if err != nil || st.Size != 4 || st.Mode&com.ModeIFMT != com.ModeIFREG {
		t.Fatalf("stat = %+v, %v", st, err)
	}
}

func TestSingleComponentRule(t *testing.T) {
	fs := populated(t)
	root, _ := fs.GetRoot()
	defer root.Release()
	if _, err := root.Lookup("bin/init"); err != com.ErrInval {
		t.Fatalf("multi-component lookup: %v", err)
	}
	if _, err := root.Lookup(".."); err != com.ErrInval {
		t.Fatalf("dot-dot lookup: %v", err)
	}
	if _, err := root.Lookup(""); err != com.ErrInval {
		t.Fatalf("empty lookup: %v", err)
	}
	self, err := root.Lookup(".")
	if err != nil {
		t.Fatalf("dot lookup: %v", err)
	}
	self.Release()
}

func TestCreateWriteRead(t *testing.T) {
	fs := New(nil)
	root, _ := fs.GetRoot()
	defer root.Release()
	f, err := root.Create("notes", 0o600, true)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Release()
	if _, err := f.WriteAt([]byte("hello"), 0); err != nil {
		t.Fatal(err)
	}
	// Sparse write: gap must read back as zeros.
	if _, err := f.WriteAt([]byte("end"), 10); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 32)
	n, _ := f.ReadAt(buf, 0)
	want := append([]byte("hello"), 0, 0, 0, 0, 0, 'e', 'n', 'd')
	if !bytes.Equal(buf[:n], want) {
		t.Fatalf("contents = %q", buf[:n])
	}
	// Exclusive create of an existing name fails; non-exclusive returns it.
	if _, err := root.Create("notes", 0o600, true); err != com.ErrExist {
		t.Fatalf("excl create: %v", err)
	}
	same, err := root.Create("notes", 0o600, false)
	if err != nil {
		t.Fatal(err)
	}
	st, _ := same.GetStat()
	if st.Size != 13 {
		t.Fatalf("reopened size = %d", st.Size)
	}
	same.Release()
	// Truncate.
	if err := f.SetSize(5); err != nil {
		t.Fatal(err)
	}
	n, _ = f.ReadAt(buf, 0)
	if string(buf[:n]) != "hello" {
		t.Fatalf("after truncate: %q", buf[:n])
	}
}

func TestMkdirUnlinkRmdir(t *testing.T) {
	fs := New(nil)
	root, _ := fs.GetRoot()
	defer root.Release()
	if err := root.Mkdir("d", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := root.Mkdir("d", 0o755); err != com.ErrExist {
		t.Fatalf("duplicate mkdir: %v", err)
	}
	df, _ := root.Lookup("d")
	d := mustDir(t, df)
	if _, err := d.Create("f", 0o644, true); err != nil {
		t.Fatal(err)
	}
	if err := root.Rmdir("d"); err != com.ErrNotEmpty {
		t.Fatalf("rmdir non-empty: %v", err)
	}
	if err := root.Unlink("d"); err != com.ErrIsDir {
		t.Fatalf("unlink dir: %v", err)
	}
	if err := d.Unlink("f"); err != nil {
		t.Fatal(err)
	}
	if err := d.Unlink("f"); err != com.ErrNoEnt {
		t.Fatalf("double unlink: %v", err)
	}
	d.Release()
	if err := root.Rmdir("d"); err != nil {
		t.Fatal(err)
	}
	if _, err := root.Lookup("d"); err != com.ErrNoEnt {
		t.Fatalf("lookup after rmdir: %v", err)
	}
}

func TestRename(t *testing.T) {
	fs := populated(t)
	root, _ := fs.GetRoot()
	defer root.Release()
	etcF, _ := root.Lookup("etc")
	etc := mustDir(t, etcF)
	defer etc.Release()
	// Move /heap.img into /etc/heap.
	if err := root.Rename("heap.img", etc, "heap"); err != nil {
		t.Fatal(err)
	}
	if _, err := root.Lookup("heap.img"); err != com.ErrNoEnt {
		t.Fatal("source still present after rename")
	}
	f, err := etc.Lookup("heap")
	if err != nil {
		t.Fatal(err)
	}
	st, _ := f.GetStat()
	if st.Size != 4096 {
		t.Fatalf("renamed size = %d", st.Size)
	}
	f.Release()
	// Rename over an existing file replaces it.
	if err := etc.Rename("heap", etc, "motd"); err != nil {
		t.Fatal(err)
	}
	f, _ = etc.Lookup("motd")
	st, _ = f.GetStat()
	if st.Size != 4096 {
		t.Fatalf("replace-rename size = %d", st.Size)
	}
	f.Release()
}

func TestReadDirPaging(t *testing.T) {
	fs := populated(t)
	root, _ := fs.GetRoot()
	defer root.Release()
	all, err := root.ReadDir(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// bin, etc, heap.img in name order.
	if len(all) != 3 || all[0].Name != "bin" || all[1].Name != "etc" || all[2].Name != "heap.img" {
		t.Fatalf("ReadDir = %+v", all)
	}
	page, err := root.ReadDir(1, 1)
	if err != nil || len(page) != 1 || page[0].Name != "etc" {
		t.Fatalf("paged ReadDir = %+v, %v", page, err)
	}
	if _, err := root.ReadDir(-1, 0); err != com.ErrInval {
		t.Fatalf("negative start: %v", err)
	}
	if out, err := root.ReadDir(3, 0); err != nil || len(out) != 0 {
		t.Fatalf("start at end: %+v, %v", out, err)
	}
}

func TestQueryInterfaceShapes(t *testing.T) {
	fs := populated(t)
	if _, err := fs.QueryInterface(com.FileSystemIID); err != nil {
		t.Fatal(err)
	}
	root, _ := fs.GetRoot()
	defer root.Release()
	// A directory answers for Dir and File.
	if _, err := root.QueryInterface(com.DirIID); err != nil {
		t.Fatal(err)
	}
	// A regular file answers for File but not Dir.
	f := lookupPath(t, fs, "etc", "motd")
	defer f.Release()
	if _, err := f.QueryInterface(com.FileIID); err != nil {
		t.Fatal(err)
	}
	if _, err := f.QueryInterface(com.DirIID); err != com.ErrNoInterface {
		t.Fatalf("file answered for Dir: %v", err)
	}
	if _, ok := f.(com.Dir); ok {
		// Interface satisfaction is structural in Go, but the COM query
		// is the contract: directory ops on a file must fail.
		if _, err := f.(com.Dir).Lookup("x"); err != com.ErrNotDir {
			t.Fatalf("dir op on file: %v", err)
		}
	}
}

func TestStatFS(t *testing.T) {
	fs := populated(t)
	st, err := fs.StatFS()
	if err != nil {
		t.Fatal(err)
	}
	// root, bin, etc, init, motd, heap.img = 6 nodes.
	if st.TotalFiles != 6 {
		t.Fatalf("TotalFiles = %d", st.TotalFiles)
	}
	if st.TotalBlocks != 4+8+4096 {
		t.Fatalf("TotalBlocks = %d", st.TotalBlocks)
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := fs.Unmount(); err != nil {
		t.Fatal(err)
	}
}

func mustDir(t *testing.T, f com.File) com.Dir {
	t.Helper()
	d, ok := f.(com.Dir)
	if !ok {
		t.Fatal("not a Dir")
	}
	return d
}
