// Package benchjson loads the BENCH_*.json files scripts/bench.sh
// records — the per-experiment matrix-benchmark medians checked into
// the repository root.
//
// Two file shapes exist historically: a single object (one matched
// benchmark) and an array of objects (several).  Files recorded before
// E16 also lack the "host" stamp (go version, GOMAXPROCS, CPU count)
// bench.sh now writes.  Load accepts every combination, so old
// recordings keep parsing next to new ones.
package benchjson

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
)

// Host is the machine stamp bench.sh records with each benchmark.
type Host struct {
	Go         string `json:"go"`
	GoMaxProcs int    `json:"gomaxprocs"`
	CPUs       int    `json:"cpus"`
}

// Entry is one recorded benchmark: its name, the per-row medians, and
// (on files recorded since E16) the host stamp.  Host is nil on older
// files.
type Entry struct {
	Bench   string             `json:"bench"`
	Host    *Host              `json:"host,omitempty"`
	Metrics map[string]float64 `json:"metrics"`
}

// Load reads one BENCH_*.json file in either historical shape and
// returns its entries.
func Load(path string) ([]Entry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Parse(data)
}

// Parse is Load on bytes already in hand.
func Parse(data []byte) ([]Entry, error) {
	trimmed := bytes.TrimSpace(data)
	if len(trimmed) == 0 {
		return nil, fmt.Errorf("benchjson: empty recording")
	}
	if trimmed[0] == '[' {
		var entries []Entry
		if err := json.Unmarshal(trimmed, &entries); err != nil {
			return nil, fmt.Errorf("benchjson: %w", err)
		}
		return entries, nil
	}
	var e Entry
	if err := json.Unmarshal(trimmed, &e); err != nil {
		return nil, fmt.Errorf("benchjson: %w", err)
	}
	return []Entry{e}, nil
}
