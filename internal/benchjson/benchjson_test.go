package benchjson

import (
	"path/filepath"
	"testing"
)

// TestLoadsEveryCheckedInRecording: every BENCH_*.json in the
// repository root parses, whatever vintage its shape — the backfill
// tolerance the host-stamp change must preserve.
func TestLoadsEveryCheckedInRecording(t *testing.T) {
	files, err := filepath.Glob("../../BENCH_*.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no BENCH_*.json recordings found at the repository root")
	}
	for _, f := range files {
		entries, err := Load(f)
		if err != nil {
			t.Errorf("%s: %v", filepath.Base(f), err)
			continue
		}
		for _, e := range entries {
			if e.Bench == "" {
				t.Errorf("%s: entry with empty bench name", filepath.Base(f))
			}
			if len(e.Metrics) == 0 {
				t.Errorf("%s: %s has no metrics", filepath.Base(f), e.Bench)
			}
		}
	}
}

// TestParseShapes pins the four accepted shapes: object/array, each
// with and without the host stamp.
func TestParseShapes(t *testing.T) {
	oldObj := `{"bench":"BenchmarkX","metrics":{"ns/op":12}}`
	newObj := `{"bench":"BenchmarkX","host":{"go":"go1.24.0","gomaxprocs":1,"cpus":1},"metrics":{"ns/op":12}}`
	cases := []struct {
		name string
		data string
		host bool
	}{
		{"old-object", oldObj, false},
		{"new-object", newObj, true},
		{"old-array", "[" + oldObj + "," + oldObj + "]", false},
		{"new-array", "[" + newObj + "]", true},
	}
	for _, tc := range cases {
		entries, err := Parse([]byte(tc.data))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		for _, e := range entries {
			if e.Bench != "BenchmarkX" || e.Metrics["ns/op"] != 12 {
				t.Fatalf("%s: parsed %+v", tc.name, e)
			}
			if tc.host && (e.Host == nil || e.Host.Go != "go1.24.0") {
				t.Fatalf("%s: host stamp lost: %+v", tc.name, e.Host)
			}
			if !tc.host && e.Host != nil {
				t.Fatalf("%s: phantom host stamp: %+v", tc.name, e.Host)
			}
		}
	}
	if _, err := Parse([]byte("  ")); err == nil {
		t.Fatal("empty recording parsed")
	}
}
