package gdb

import (
	"fmt"

	"oskit/internal/kern"
)

// Client is a minimal GDB-side implementation of the remote serial
// protocol, playing the role of the developer's GDB on the other machine
// of §3.5.  The kit ships it so the stub can be exercised end to end in
// tests and so headless tools can poke a stopped kernel.
type Client struct {
	port rw
}

// NewClient speaks the protocol over any byte transport (normally the
// host end of a simulated serial line).
func NewClient(port rw) *Client { return &Client{port: port} }

// WaitStop blocks until the target reports a stop, returning the signal
// number from the S/T packet.
func (c *Client) WaitStop() (int, error) {
	pkt, err := readPacketFrom(c.port, true)
	if err != nil {
		return 0, err
	}
	return parseStop(pkt)
}

func parseStop(pkt string) (int, error) {
	if len(pkt) < 3 || (pkt[0] != 'S' && pkt[0] != 'T') {
		return 0, fmt.Errorf("gdb: not a stop packet: %q", pkt)
	}
	hi, e1 := unhex(pkt[1])
	lo, e2 := unhex(pkt[2])
	if e1 != nil || e2 != nil {
		return 0, fmt.Errorf("gdb: bad stop packet: %q", pkt)
	}
	return int(hi<<4 | lo), nil
}

// roundTrip sends one command and returns the reply payload.
func (c *Client) roundTrip(cmd string) (string, error) {
	if err := writePacketTo(c.port, cmd, true); err != nil {
		return "", err
	}
	return readPacketFrom(c.port, true)
}

// HaltReason re-queries why the target is stopped ('?').
func (c *Client) HaltReason() (int, error) {
	pkt, err := c.roundTrip("?")
	if err != nil {
		return 0, err
	}
	return parseStop(pkt)
}

// ReadRegs fetches the register file in kern.TrapFrame GDB order.
func (c *Client) ReadRegs() ([kern.NumRegs]uint32, error) {
	var regs [kern.NumRegs]uint32
	pkt, err := c.roundTrip("g")
	if err != nil {
		return regs, err
	}
	if len(pkt) < kern.NumRegs*8 {
		return regs, fmt.Errorf("gdb: short g reply: %q", pkt)
	}
	for i := 0; i < kern.NumRegs; i++ {
		v, err := parseHex32LE(pkt[i*8 : (i+1)*8])
		if err != nil {
			return regs, err
		}
		regs[i] = v
	}
	return regs, nil
}

// WriteReg stores one register by GDB index ('P' packet).
func (c *Client) WriteReg(index int, value uint32) error {
	val := appendHex32LE(nil, value)
	reply, err := c.roundTrip(fmt.Sprintf("P%x=%s", index, val))
	if err != nil {
		return err
	}
	if reply != "OK" {
		return fmt.Errorf("gdb: WriteReg: %q", reply)
	}
	return nil
}

// ReadMem reads n bytes of target memory at addr.
func (c *Client) ReadMem(addr uint32, n uint32) ([]byte, error) {
	pkt, err := c.roundTrip(fmt.Sprintf("m%x,%x", addr, n))
	if err != nil {
		return nil, err
	}
	if len(pkt) > 0 && pkt[0] == 'E' {
		return nil, fmt.Errorf("gdb: ReadMem: %s", pkt)
	}
	out := make([]byte, len(pkt)/2)
	for i := range out {
		hi, e1 := unhex(pkt[2*i])
		lo, e2 := unhex(pkt[2*i+1])
		if e1 != nil || e2 != nil {
			return nil, fmt.Errorf("gdb: bad hex in m reply")
		}
		out[i] = hi<<4 | lo
	}
	return out, nil
}

// WriteMem stores bytes into target memory.
func (c *Client) WriteMem(addr uint32, data []byte) error {
	hex := make([]byte, 0, len(data)*2)
	for _, b := range data {
		hex = append(hex, hexDigits[b>>4], hexDigits[b&0xf])
	}
	reply, err := c.roundTrip(fmt.Sprintf("M%x,%x:%s", addr, len(data), hex))
	if err != nil {
		return err
	}
	if reply != "OK" {
		return fmt.Errorf("gdb: WriteMem: %q", reply)
	}
	return nil
}

// SetBreakpoint plants a software breakpoint at addr.
func (c *Client) SetBreakpoint(addr uint32) error {
	reply, err := c.roundTrip(fmt.Sprintf("Z0,%x,1", addr))
	if err != nil {
		return err
	}
	if reply != "OK" {
		return fmt.Errorf("gdb: SetBreakpoint: %q", reply)
	}
	return nil
}

// ClearBreakpoint removes a breakpoint.
func (c *Client) ClearBreakpoint(addr uint32) error {
	reply, err := c.roundTrip(fmt.Sprintf("z0,%x,1", addr))
	if err != nil {
		return err
	}
	if reply != "OK" {
		return fmt.Errorf("gdb: ClearBreakpoint: %q", reply)
	}
	return nil
}

// Continue resumes the target and blocks until the next stop.
func (c *Client) Continue() (int, error) {
	if err := writePacketTo(c.port, "c", true); err != nil {
		return 0, err
	}
	return c.WaitStop()
}

// Step single-steps the target and blocks until it stops again.
func (c *Client) Step() (int, error) {
	if err := writePacketTo(c.port, "s", true); err != nil {
		return 0, err
	}
	return c.WaitStop()
}

// Kill terminates the target (no reply is defined).
func (c *Client) Kill() error {
	return writePacketTo(c.port, "k", true)
}

// Detach releases the target.
func (c *Client) Detach() error {
	reply, err := c.roundTrip("D")
	if err != nil {
		return err
	}
	if reply != "OK" {
		return fmt.Errorf("gdb: Detach: %q", reply)
	}
	return nil
}
