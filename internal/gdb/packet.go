package gdb

import (
	"fmt"
	"io"
)

// GDB remote serial protocol framing: $<payload>#<2-hex checksum>, where
// the checksum is the payload bytes summed modulo 256; each packet is
// acknowledged with '+' (or '-' to request retransmission).

const hexDigits = "0123456789abcdef"

// rw is the byte transport both Stub and Client frame packets over.
type rw interface {
	Read(p []byte) (int, error)
	Write(p []byte) (int, error)
}

// readPacketFrom scans for a framed packet, verifies its checksum, and
// acknowledges it.
func readPacketFrom(port rw, ack bool) (string, error) {
	one := make([]byte, 1)
	readByte := func() (byte, error) {
		for {
			n, err := port.Read(one)
			if err != nil {
				return 0, err
			}
			if n == 1 {
				return one[0], nil
			}
		}
	}
	for {
		// Hunt for '$' (skipping acks and line noise).
		for {
			b, err := readByte()
			if err != nil {
				return "", err
			}
			if b == '$' {
				break
			}
		}
		var payload []byte
		for {
			b, err := readByte()
			if err != nil {
				return "", err
			}
			if b == '#' {
				break
			}
			payload = append(payload, b)
		}
		h1, err := readByte()
		if err != nil {
			return "", err
		}
		h2, err := readByte()
		if err != nil {
			return "", err
		}
		d1, e1 := unhex(h1)
		d2, e2 := unhex(h2)
		sum := checksum(payload)
		if e1 != nil || e2 != nil || d1<<4|d2 != sum {
			if ack {
				_, _ = port.Write([]byte{'-'})
			}
			continue // re-hunt; sender will retransmit
		}
		if ack {
			_, _ = port.Write([]byte{'+'})
		}
		return string(payload), nil
	}
}

// writePacketTo frames and sends payload, waiting for the '+' ack when
// ack mode is on.
func writePacketTo(port rw, payload string, ack bool) error {
	frame := make([]byte, 0, len(payload)+4)
	frame = append(frame, '$')
	frame = append(frame, payload...)
	sum := checksum([]byte(payload))
	frame = append(frame, '#', hexDigits[sum>>4], hexDigits[sum&0xf])
	for attempt := 0; attempt < 5; attempt++ {
		if _, err := port.Write(frame); err != nil {
			return err
		}
		if !ack {
			return nil
		}
		one := make([]byte, 1)
		for {
			n, err := port.Read(one)
			if err != nil {
				return err
			}
			if n == 0 {
				continue
			}
			if one[0] == '+' {
				return nil
			}
			if one[0] == '-' {
				break // retransmit
			}
			// Stray byte (e.g. an interrupt char): keep scanning.
		}
	}
	return fmt.Errorf("gdb: packet never acknowledged")
}

func (s *Stub) readPacket() (string, error) { return readPacketFrom(s.port, !s.noAckMode) }

func (s *Stub) writePacket(payload string) {
	_ = writePacketTo(s.port, payload, !s.noAckMode)
}

func checksum(b []byte) byte {
	var sum byte
	for _, c := range b {
		sum += c
	}
	return sum
}

func unhex(b byte) (byte, error) {
	switch {
	case b >= '0' && b <= '9':
		return b - '0', nil
	case b >= 'a' && b <= 'f':
		return b - 'a' + 10, nil
	case b >= 'A' && b <= 'F':
		return b - 'A' + 10, nil
	}
	return 0, io.ErrUnexpectedEOF
}

// appendHex32LE appends a 32-bit value as 8 hex digits in little-endian
// byte order, the i386 'g'-packet convention.
func appendHex32LE(out []byte, v uint32) []byte {
	for i := 0; i < 4; i++ {
		b := byte(v >> (8 * i))
		out = append(out, hexDigits[b>>4], hexDigits[b&0xf])
	}
	return out
}

// parseHex32LE inverts appendHex32LE.
func parseHex32LE(s string) (uint32, error) {
	if len(s) < 8 {
		return 0, io.ErrUnexpectedEOF
	}
	var v uint32
	for i := 0; i < 4; i++ {
		hi, err1 := unhex(s[2*i])
		lo, err2 := unhex(s[2*i+1])
		if err1 != nil || err2 != nil {
			return 0, io.ErrUnexpectedEOF
		}
		v |= uint32(hi<<4|lo) << (8 * i)
	}
	return v, nil
}
