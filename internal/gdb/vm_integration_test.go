package gdb

import (
	"testing"
	"time"

	"oskit/internal/hw"
	"oskit/internal/kern"
	"oskit/internal/kvm"
)

// TestGDBDebugsVM is the paper's §3.5 debugging story end to end: the
// kernel runs a language runtime (kvm), the GDB stub fields its traps
// and serves the remote protocol over the serial line, and "GDB on the
// other machine" (the in-repo client) plants a breakpoint, inspects
// state, single-steps, and continues the program to completion.
func TestGDBDebugsVM(t *testing.T) {
	m := hw.NewMachine(hw.Config{MemBytes: 8 << 20})
	defer m.Halt()
	k, err := kern.Setup(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Wire the stub to Com2 and a host-side GDB client to the far end.
	hostPort := hw.NewSerialPort(nil, 0)
	hw.ConnectSerial(m.Com2, hostPort)
	stub := New(m.Com2, m.Mem)
	k.SetDebugger(stub)
	client := NewClient(hostPort)

	// A counting loop; we will breakpoint inside it.
	prog, err := kvm.Assemble(`
		push 0
		storg 0
	loop:
		loadg 0
		push 10
		ge
		jnz done
		loadg 0
		push 1
		add
		storg 0
		jmp loop
	done:
		loadg 0
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	vm := kvm.New(prog.Code, prog.Consts)
	// The cooperative contract: the VM consults the stub's breakpoint
	// table per instruction and raises a breakpoint trap on a hit; a
	// pending single-step raises a debug trap after one instruction.
	stepOne := false
	vm.BreakHook = func(pc int) bool {
		hit := stub.IsBreakpoint(uint32(pc)) || stepOne
		if hit {
			trapNo := uint32(kern.TrapBreakpoint)
			if stepOne {
				trapNo = kern.TrapDebug
				stepOne = false
			}
			f := &kern.TrapFrame{TrapNo: trapNo, EIP: uint32(pc)}
			k.Trap(f) // blocks inside the stub until GDB resumes
			if stub.Killed() {
				return true // suspend the VM
			}
			stepOne = stub.StepPending()
		}
		return false
	}

	// The loop body's first instruction is `loadg 0` at the loop label:
	// offset = push(5)+storg(5) = 10.  The breakpoint is planted before
	// the program starts (the stub answers protocol requests only while
	// the target is stopped, so an attached GDB would have set it at
	// load time); all further interaction happens over the wire.
	const loopPC = 10
	stubPlant(stub, loopPC)

	done := make(chan int32, 1)
	go func() {
		v, err := vm.Run()
		if err != nil {
			t.Error(err)
		}
		done <- v
	}()

	sig, err := client.WaitStop()
	if err != nil || sig != 5 {
		t.Fatalf("WaitStop = %d, %v", sig, err)
	}
	regs, err := client.ReadRegs()
	if err != nil {
		t.Fatal(err)
	}
	if regs[8] != loopPC { // EIP
		t.Fatalf("stopped at pc %d, want %d", regs[8], loopPC)
	}
	// Single-step: the next stop is one instruction later.
	if _, err := client.Step(); err != nil {
		t.Fatal(err)
	}
	regs, _ = client.ReadRegs()
	if regs[8] == loopPC {
		t.Fatal("step did not advance")
	}
	// Clear the breakpoint and continue to completion.
	if err := client.ClearBreakpoint(loopPC); err != nil {
		t.Fatal(err)
	}
	go func() {
		// The final continue gets no stop reply; fire and forget.
		_, _ = client.Continue()
	}()
	select {
	case v := <-done:
		if v != 10 {
			t.Fatalf("program result = %d", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("program never completed after continue")
	}
}

// stubPlant inserts a breakpoint as an attached GDB would have before
// resuming the target (the stub's table is the authority either way).
func stubPlant(s *Stub, pc uint32) {
	s.mu.Lock()
	s.breakpoints[pc] = true
	s.mu.Unlock()
}
