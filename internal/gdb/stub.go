// Package gdb is the kit's serial-line stub for the GNU debugger (paper
// §3.5): a small module that handles traps in the client OS environment
// and talks GDB's standard remote serial protocol over a serial line to a
// debugger running on another machine.
//
// The stub implements kern.Debugger.  When a trap enters it, it reports a
// stop to the remote GDB and then serves protocol requests — read/write
// registers (the documented trap frame, in i386 GDB order), read/write
// (simulated) physical memory, set/clear breakpoints — until the remote
// resumes the target with continue or step.
//
// Breakpoints are cooperative: execution engines that want them (the kvm
// bytecode VM does) ask IsBreakpoint(pc) per instruction and raise a
// breakpoint trap on a hit; single-step works the same way via
// StepPending.  This mirrors the real stub's contract, where the
// breakpoint instruction and the TF bit did that work in hardware.
package gdb

import (
	"fmt"
	"sync"

	"oskit/internal/hw"
	"oskit/internal/kern"
)

// Stub is one remote-debugging session endpoint.
type Stub struct {
	port *hw.SerialPort
	mem  *hw.PhysMem

	mu          sync.Mutex
	breakpoints map[uint32]bool
	stepping    bool
	killed      bool
	// noAckMode is negotiated via QStartNoAckMode.
	noAckMode bool
}

// New creates a stub speaking on port, exposing mem to the debugger.
func New(port *hw.SerialPort, mem *hw.PhysMem) *Stub {
	return &Stub{port: port, mem: mem, breakpoints: map[uint32]bool{}}
}

// IsBreakpoint reports whether a cooperative execution engine should trap
// at pc.
func (s *Stub) IsBreakpoint(pc uint32) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.breakpoints[pc]
}

// StepPending reports (and consumes) a pending single-step request: a
// cooperating engine executes one instruction and raises a debug trap.
func (s *Stub) StepPending() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	p := s.stepping
	s.stepping = false
	return p
}

// Killed reports whether the remote debugger issued a kill.
func (s *Stub) Killed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.killed
}

// Trap implements kern.Debugger: report the stop and serve the remote
// until it resumes us.  Returns true (trap consumed) unless the debugger
// killed or detached from the target.
func (s *Stub) Trap(f *kern.TrapFrame) bool {
	s.writePacket(stopReply(f))
	for {
		pkt, err := s.readPacket()
		if err != nil {
			return false // serial line gone: fall to the default handler
		}
		resume, alive := s.handle(pkt, f)
		if resume {
			return alive
		}
	}
}

// handle processes one packet; resume true ends the stop, alive false
// means the target was killed/detached.
func (s *Stub) handle(pkt string, f *kern.TrapFrame) (resume, alive bool) {
	if pkt == "" {
		s.writePacket("")
		return false, true
	}
	switch pkt[0] {
	case '?':
		s.writePacket(stopReply(f))
	case 'g':
		regs := f.Regs()
		out := make([]byte, 0, len(regs)*8)
		for _, r := range regs {
			out = appendHex32LE(out, r)
		}
		s.writePacket(string(out))
	case 'G':
		body := pkt[1:]
		for i := 0; i < kern.NumRegs && (i+1)*8 <= len(body); i++ {
			v, err := parseHex32LE(body[i*8 : (i+1)*8])
			if err != nil {
				s.writePacket("E01")
				return false, true
			}
			f.SetReg(i, v)
		}
		s.writePacket("OK")
	case 'P': // Pn=r — write one register
		var idx int
		var val string
		if _, err := fmt.Sscanf(pkt, "P%x=%s", &idx, &val); err != nil {
			s.writePacket("E01")
			return false, true
		}
		v, err := parseHex32LE(val)
		if err != nil || !f.SetReg(idx, v) {
			s.writePacket("E01")
			return false, true
		}
		s.writePacket("OK")
	case 'm': // maddr,len — read memory
		var addr, n uint32
		if _, err := fmt.Sscanf(pkt, "m%x,%x", &addr, &n); err != nil {
			s.writePacket("E01")
			return false, true
		}
		buf, err := s.mem.Slice(addr, n)
		if err != nil {
			s.writePacket("E02")
			return false, true
		}
		out := make([]byte, 0, n*2)
		for _, b := range buf {
			out = append(out, hexDigits[b>>4], hexDigits[b&0xf])
		}
		s.writePacket(string(out))
	case 'M': // Maddr,len:hexbytes — write memory
		var addr, n uint32
		var data string
		if _, err := fmt.Sscanf(pkt, "M%x,%x:%s", &addr, &n, &data); err != nil {
			s.writePacket("E01")
			return false, true
		}
		buf, err := s.mem.Slice(addr, n)
		if err != nil || uint32(len(data)) < 2*n {
			s.writePacket("E02")
			return false, true
		}
		for i := uint32(0); i < n; i++ {
			hi, err1 := unhex(data[2*i])
			lo, err2 := unhex(data[2*i+1])
			if err1 != nil || err2 != nil {
				s.writePacket("E01")
				return false, true
			}
			buf[i] = hi<<4 | lo
		}
		s.writePacket("OK")
	case 'Z', 'z': // Z0,addr,kind — set/clear software breakpoint
		var typ, addr, kind uint32
		if _, err := fmt.Sscanf(pkt[1:], "%x,%x,%x", &typ, &addr, &kind); err != nil || typ != 0 {
			s.writePacket("") // unsupported breakpoint type
			return false, true
		}
		s.mu.Lock()
		if pkt[0] == 'Z' {
			s.breakpoints[addr] = true
		} else {
			delete(s.breakpoints, addr)
		}
		s.mu.Unlock()
		s.writePacket("OK")
	case 'c': // continue
		return true, true
	case 's': // single step
		s.mu.Lock()
		s.stepping = true
		s.mu.Unlock()
		return true, true
	case 'k': // kill
		s.mu.Lock()
		s.killed = true
		s.mu.Unlock()
		return true, false
	case 'D': // detach
		s.writePacket("OK")
		return true, false
	case 'H': // set thread for subsequent ops — single-threaded target
		s.writePacket("OK")
	case 'q':
		switch {
		case pkt == "qAttached":
			s.writePacket("1")
		case hasPrefix(pkt, "qSupported"):
			s.writePacket("PacketSize=4000;swbreak+")
		case pkt == "qC":
			s.writePacket("QC0")
		default:
			s.writePacket("")
		}
	default:
		// Unknown command: the protocol's mandated reply is the empty
		// packet.
		s.writePacket("")
	}
	return false, true
}

// stopReply builds the T/S stop packet for a trap: SIGTRAP for
// breakpoints and steps, SIGSEGV for faults.
func stopReply(f *kern.TrapFrame) string {
	sig := 5 // SIGTRAP
	switch f.TrapNo {
	case kern.TrapPageFault, kern.TrapGPF:
		sig = 11 // SIGSEGV
	case kern.TrapDivide:
		sig = 8 // SIGFPE
	}
	return fmt.Sprintf("S%02x", sig)
}

func hasPrefix(s, p string) bool { return len(s) >= len(p) && s[:len(p)] == p }
