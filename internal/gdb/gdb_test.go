package gdb

import (
	"testing"
	"testing/quick"
	"time"

	"oskit/internal/hw"
	"oskit/internal/kern"
)

// pipePair builds a stub/client serial pair (the simulated serial line of
// §3.5 with GDB on the far machine).
func pipePair() (target, host *hw.SerialPort) {
	target = hw.NewSerialPort(nil, 0)
	host = hw.NewSerialPort(nil, 0)
	hw.ConnectSerial(target, host)
	return
}

func TestFullDebugSession(t *testing.T) {
	targetPort, hostPort := pipePair()
	mem := hw.NewPhysMem(1 << 20)
	copy(mem.MustSlice(0x1000, 8), "SENTINEL")
	stub := New(targetPort, mem)

	frame := &kern.TrapFrame{TrapNo: kern.TrapBreakpoint, EIP: 0x4000, EAX: 0x1111, ESP: 0x9000}
	done := make(chan bool, 1)
	go func() { done <- stub.Trap(frame) }()

	c := NewClient(hostPort)
	sig, err := c.WaitStop()
	if err != nil || sig != 5 {
		t.Fatalf("WaitStop = %d, %v (want SIGTRAP)", sig, err)
	}
	// '?' re-query.
	if sig, err = c.HaltReason(); err != nil || sig != 5 {
		t.Fatalf("HaltReason = %d, %v", sig, err)
	}
	// Registers arrive in i386 GDB order.
	regs, err := c.ReadRegs()
	if err != nil {
		t.Fatal(err)
	}
	if regs[0] != 0x1111 || regs[4] != 0x9000 || regs[8] != 0x4000 {
		t.Fatalf("regs = %#v", regs)
	}
	// Poke EIP through the wire; the kernel's frame must change.
	if err := c.WriteReg(8, 0x4242); err != nil {
		t.Fatal(err)
	}
	// Read and patch target memory.
	data, err := c.ReadMem(0x1000, 8)
	if err != nil || string(data) != "SENTINEL" {
		t.Fatalf("ReadMem = %q, %v", data, err)
	}
	if err := c.WriteMem(0x1004, []byte("RIES")); err != nil {
		t.Fatal(err)
	}
	if string(mem.MustSlice(0x1000, 8)) != "SENTRIES" {
		t.Fatal("WriteMem did not hit target memory")
	}
	// Out-of-range memory access is an error packet, not a crash.
	if _, err := c.ReadMem(0xFFFFFF00, 16); err == nil {
		t.Fatal("out-of-range ReadMem succeeded")
	}
	// Plant a breakpoint, then continue.
	if err := c.SetBreakpoint(0x5000); err != nil {
		t.Fatal(err)
	}
	if _, err := c.roundTrip("Hg0"); err != nil { // thread ops are accepted
		t.Fatal(err)
	}
	if reply, err := c.roundTrip("qSupported:xmlRegisters=i386"); err != nil || reply == "" {
		t.Fatalf("qSupported = %q, %v", reply, err)
	}
	if reply, err := c.roundTrip("vMustReplyEmpty"); err != nil || reply != "" {
		t.Fatalf("unknown command reply = %q, %v", reply, err)
	}
	go func() {
		if _, err := c.Continue(); err != nil {
			// Continue's stop reply comes from the *next* trap below.
			t.Error(err)
		}
	}()
	alive := <-done
	if !alive {
		t.Fatal("continue killed the target")
	}
	if frame.EIP != 0x4242 {
		t.Fatalf("register write lost: eip=%#x", frame.EIP)
	}
	// The cooperative engine consults the breakpoint table.
	if !stub.IsBreakpoint(0x5000) || stub.IsBreakpoint(0x5004) {
		t.Fatal("breakpoint table wrong")
	}

	// Hit the breakpoint: trap again; the pending Continue sees the stop.
	frame2 := &kern.TrapFrame{TrapNo: kern.TrapBreakpoint, EIP: 0x5000}
	go func() { done <- stub.Trap(frame2) }()
	time.Sleep(10 * time.Millisecond) // let Continue's WaitStop consume it
	// Clear it and step.
	if err := c.ClearBreakpoint(0x5000); err != nil {
		t.Fatal(err)
	}
	if stub.IsBreakpoint(0x5000) {
		t.Fatal("breakpoint survived clear")
	}
	stepDone := make(chan int, 1)
	go func() {
		sig, _ := c.Step()
		stepDone <- sig
	}()
	<-done // target resumed
	if !stub.StepPending() {
		t.Fatal("step not pending after 's'")
	}
	if stub.StepPending() {
		t.Fatal("StepPending did not consume the request")
	}
	// Engine executes one instruction and re-enters with a debug trap.
	frame3 := &kern.TrapFrame{TrapNo: kern.TrapDebug, EIP: 0x5001}
	go func() { done <- stub.Trap(frame3) }()
	if sig := <-stepDone; sig != 5 {
		t.Fatalf("step stop sig = %d", sig)
	}
	// Kill ends the session; Trap reports the target not alive.
	if err := c.Kill(); err != nil {
		t.Fatal(err)
	}
	if alive := <-done; alive {
		t.Fatal("kill left the target alive")
	}
	if !stub.Killed() {
		t.Fatal("Killed flag unset")
	}
}

func TestStopReplySignals(t *testing.T) {
	cases := map[uint32]string{
		kern.TrapBreakpoint: "S05",
		kern.TrapDebug:      "S05",
		kern.TrapPageFault:  "S0b",
		kern.TrapGPF:        "S0b",
		kern.TrapDivide:     "S08",
	}
	for trap, want := range cases {
		if got := stopReply(&kern.TrapFrame{TrapNo: trap}); got != want {
			t.Errorf("stopReply(%d) = %q, want %q", trap, got, want)
		}
	}
}

func TestPacketChecksumRejection(t *testing.T) {
	target, host := pipePair()
	// Send a corrupted packet, then a good one; the reader must NAK the
	// bad one and deliver the good one.
	go func() {
		_, _ = host.Write([]byte("$bad#00"))
		// Wait for the '-' NAK before retransmitting, as GDB would.
		one := make([]byte, 1)
		for {
			n, _ := host.Read(one)
			if n == 1 && one[0] == '-' {
				break
			}
		}
		_ = writePacketTo(host, "good", false)
	}()
	pkt, err := readPacketFrom(target, true)
	if err != nil || pkt != "good" {
		t.Fatalf("readPacket = %q, %v", pkt, err)
	}
}

// Property: the hex32 little-endian codec round-trips all values.
func TestHex32RoundTripProperty(t *testing.T) {
	f := func(v uint32) bool {
		enc := appendHex32LE(nil, v)
		got, err := parseHex32LE(string(enc))
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: packet framing round-trips arbitrary payload strings that
// avoid the protocol's framing metacharacters.
func TestPacketRoundTripProperty(t *testing.T) {
	f := func(raw []byte) bool {
		payload := make([]byte, 0, len(raw))
		for _, b := range raw {
			switch b {
			case '$', '#', '+', '-':
				continue
			default:
				payload = append(payload, b)
			}
		}
		target, host := pipePair()
		errc := make(chan error, 1)
		go func() { errc <- writePacketTo(host, string(payload), true) }()
		got, err := readPacketFrom(target, true)
		if err != nil || got != string(payload) {
			return false
		}
		return <-errc == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
