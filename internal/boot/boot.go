// Package boot is the kit's bootstrap support (paper §3.1).
//
// The paper's OSKit supports the MultiBoot standard: a simple, general
// interface between boot loaders and kernels, whose key research-friendly
// feature is *boot modules* — arbitrary flat files the loader places in
// reserved physical memory along with the kernel, each tagged with an
// arbitrary user-defined string.  The kernel interprets modules however it
// sees fit: initial programs, device data, file system images, a language
// runtime's precompiled heap (the ML/OS case, §6.2.2).
//
// This package defines the kit's boot-image container format (the
// MultiBoot analog for the simulated PC), a builder used by the mkbootimg
// tool, and the loader that places modules into a machine's physical
// memory and produces the Info structure handed to the kernel.
package boot

import (
	"encoding/binary"
	"fmt"
	"strings"

	"oskit/internal/hw"
)

// Magic begins every boot image.
var Magic = [8]byte{'O', 'S', 'K', 'B', 'O', 'O', 'T', '1'}

// ModuleSpec is one module given to the image builder.
type ModuleSpec struct {
	// String is the arbitrary user-defined string associated with the
	// module; by convention the kit's clients use it as a path name.
	String string
	// Data is the flat file contents; the loader never interprets it.
	Data []byte
}

// Module is one boot module as placed in memory by the loader.
type Module struct {
	// Addr and Size locate the module in physical memory.
	Addr hw.PhysAddr
	Size uint32
	// String is the module's user-defined string.
	String string
}

// Info is what the boot loader hands the kernel: the MultiBoot info
// analog.  The kernel support library locates the modules through it and
// reserves their memory before initializing the free pool (§3.2).
type Info struct {
	// Cmdline is the kernel command line as given to the builder.
	Cmdline string
	// MemBytes is the machine's physical memory size.
	MemBytes uint32
	// Modules lists the loaded boot modules in image order.
	Modules []Module
}

// Args splits the command line into the argv passed to the client's Main;
// words of the form NAME=VALUE after a "--" separator become environment
// variables instead.
func (i *Info) Args() (args []string, env map[string]string) {
	env = map[string]string{}
	fields := strings.Fields(i.Cmdline)
	inEnv := false
	for _, f := range fields {
		switch {
		case f == "--":
			inEnv = true
		case inEnv:
			if k, v, ok := strings.Cut(f, "="); ok {
				env[k] = v
			}
		default:
			args = append(args, f)
		}
	}
	return args, env
}

// FindModule returns the first module whose string equals s.
func (i *Info) FindModule(s string) (Module, bool) {
	for _, m := range i.Modules {
		if m.String == s {
			return m, true
		}
	}
	return Module{}, false
}

// BuildImage serializes a command line and modules into a boot image.
//
// Layout (all integers little-endian uint32 unless noted):
//
//	magic[8] | cmdlineLen cmdline | nModules | n × (strLen str dataLen data)
func BuildImage(cmdline string, modules []ModuleSpec) []byte {
	var out []byte
	out = append(out, Magic[:]...)
	out = appendU32(out, uint32(len(cmdline)))
	out = append(out, cmdline...)
	out = appendU32(out, uint32(len(modules)))
	for _, m := range modules {
		out = appendU32(out, uint32(len(m.String)))
		out = append(out, m.String...)
		out = appendU32(out, uint32(len(m.Data)))
		out = append(out, m.Data...)
	}
	return out
}

// ParseImage decodes a boot image without loading it.
func ParseImage(img []byte) (cmdline string, modules []ModuleSpec, err error) {
	r := reader{buf: img}
	var magic [8]byte
	copy(magic[:], r.bytes(8))
	if r.err != nil || magic != Magic {
		return "", nil, fmt.Errorf("boot: bad magic")
	}
	cmdline = string(r.bytes(int(r.u32())))
	n := r.u32()
	if r.err != nil {
		return "", nil, r.err
	}
	if n > 1<<16 {
		return "", nil, fmt.Errorf("boot: implausible module count %d", n)
	}
	for i := uint32(0); i < n; i++ {
		s := string(r.bytes(int(r.u32())))
		d := r.bytes(int(r.u32()))
		if r.err != nil {
			return "", nil, r.err
		}
		modules = append(modules, ModuleSpec{String: s, Data: append([]byte(nil), d...)})
	}
	return cmdline, modules, nil
}

// LoadBase is the physical address at which the loader starts placing
// modules (above the classical 1 MB "upper memory" boundary, leaving room
// for a kernel image below).
const LoadBase hw.PhysAddr = 0x200000

// Load places an image's modules into a machine's physical memory,
// page-aligned and consecutive from LoadBase, and returns the boot Info.
// It is the boot-loader half of the handoff; the kernel support library
// does the reserving.
func Load(img []byte, mem *hw.PhysMem) (*Info, error) {
	cmdline, mods, err := ParseImage(img)
	if err != nil {
		return nil, err
	}
	info := &Info{Cmdline: cmdline, MemBytes: mem.Size()}
	addr := LoadBase
	for _, m := range mods {
		size := uint32(len(m.Data))
		dst, err := mem.Slice(addr, size)
		if err != nil {
			return nil, fmt.Errorf("boot: module %q does not fit at %#x: %v", m.String, addr, err)
		}
		copy(dst, m.Data)
		info.Modules = append(info.Modules, Module{Addr: addr, Size: size, String: m.String})
		addr = pageAlign(addr + size)
	}
	return info, nil
}

func pageAlign(a hw.PhysAddr) hw.PhysAddr { return (a + 0xfff) &^ 0xfff }

func appendU32(b []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(b, v)
}

type reader struct {
	buf []byte
	off int
	err error
}

func (r *reader) bytes(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.buf) {
		r.err = fmt.Errorf("boot: truncated image")
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

func (r *reader) u32() uint32 {
	b := r.bytes(4)
	if r.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}
