package boot

import (
	"bytes"
	"testing"
	"testing/quick"

	"oskit/internal/hw"
)

func TestImageRoundTrip(t *testing.T) {
	mods := []ModuleSpec{
		{String: "bin/init", Data: []byte("init program")},
		{String: "etc/config -flag", Data: []byte{0, 1, 2, 255}},
		{String: "empty", Data: nil},
	}
	img := BuildImage("kernel -v -- HOME=/ TERM=vt100", mods)
	cmdline, got, err := ParseImage(img)
	if err != nil {
		t.Fatal(err)
	}
	if cmdline != "kernel -v -- HOME=/ TERM=vt100" {
		t.Fatalf("cmdline = %q", cmdline)
	}
	if len(got) != len(mods) {
		t.Fatalf("modules = %d", len(got))
	}
	for i := range mods {
		if got[i].String != mods[i].String || !bytes.Equal(got[i].Data, mods[i].Data) {
			t.Fatalf("module %d mismatch: %+v", i, got[i])
		}
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	if _, _, err := ParseImage([]byte("not an image")); err == nil {
		t.Fatal("garbage accepted")
	}
	// Truncations at every byte boundary must error, not panic.
	img := BuildImage("cmd", []ModuleSpec{{String: "m", Data: []byte("xyz")}})
	for cut := 0; cut < len(img); cut++ {
		if _, _, err := ParseImage(img[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestLoadPlacesModules(t *testing.T) {
	mem := hw.NewPhysMem(8 << 20)
	img := BuildImage("k", []ModuleSpec{
		{String: "a", Data: bytes.Repeat([]byte{0xAA}, 5000)},
		{String: "b", Data: []byte("bee")},
	})
	info, err := Load(img, mem)
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Modules) != 2 {
		t.Fatalf("modules = %d", len(info.Modules))
	}
	a, b := info.Modules[0], info.Modules[1]
	if a.Addr != LoadBase || a.Size != 5000 {
		t.Fatalf("module a at %#x size %d", a.Addr, a.Size)
	}
	if b.Addr&0xfff != 0 || b.Addr < a.Addr+a.Size {
		t.Fatalf("module b at %#x", b.Addr)
	}
	if got := mem.MustSlice(a.Addr, 4)[0]; got != 0xAA {
		t.Fatalf("module a contents = %#x", got)
	}
	if string(mem.MustSlice(b.Addr, b.Size)) != "bee" {
		t.Fatal("module b contents wrong")
	}
	if info.MemBytes != 8<<20 {
		t.Fatalf("MemBytes = %d", info.MemBytes)
	}

	m, ok := info.FindModule("b")
	if !ok || m.Addr != b.Addr {
		t.Fatal("FindModule failed")
	}
	if _, ok := info.FindModule("zzz"); ok {
		t.Fatal("FindModule found phantom")
	}
}

func TestLoadRejectsOversizedModules(t *testing.T) {
	mem := hw.NewPhysMem(4 << 20)
	img := BuildImage("k", []ModuleSpec{{String: "big", Data: make([]byte, 4<<20)}})
	if _, err := Load(img, mem); err == nil {
		t.Fatal("module larger than memory accepted")
	}
}

func TestInfoArgsAndEnv(t *testing.T) {
	info := &Info{Cmdline: "kernel -v --trace -- PATH=/bin DEBUG=1 malformed"}
	args, env := info.Args()
	if len(args) != 3 || args[0] != "kernel" || args[2] != "--trace" {
		t.Fatalf("args = %v", args)
	}
	if env["PATH"] != "/bin" || env["DEBUG"] != "1" {
		t.Fatalf("env = %v", env)
	}
	if _, ok := env["malformed"]; ok {
		t.Fatal("malformed env var accepted")
	}
}

// Property: build/parse round-trips any module set.
func TestRoundTripProperty(t *testing.T) {
	f := func(cmdline string, names []string, blobs [][]byte) bool {
		n := len(names)
		if len(blobs) < n {
			n = len(blobs)
		}
		var mods []ModuleSpec
		for i := 0; i < n; i++ {
			mods = append(mods, ModuleSpec{String: names[i], Data: blobs[i]})
		}
		img := BuildImage(cmdline, mods)
		c2, m2, err := ParseImage(img)
		if err != nil || c2 != cmdline || len(m2) != len(mods) {
			return false
		}
		for i := range mods {
			if m2[i].String != mods[i].String || !bytes.Equal(m2[i].Data, mods[i].Data) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
