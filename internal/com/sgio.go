package com

// SGBufIOIID identifies the scatter-gather BufIO extension interface.
var SGBufIOIID = NewGUID(0x4aa7dff0, 0x7c74, 0x11cf,
	0xb5, 0x00, 0x08, 0x00, 0x09, 0x53, 0xad, 0xc2)

// SGBufIO extends BufIO for objects whose storage is local memory but not
// necessarily one contiguous extent: it exposes the storage as an ordered
// fragment list.  This is the §4.4.2 interface-extension idiom applied to
// the §4.7.3 buffer-representation problem: the base BufIO Map contract
// *requires* declining ranges that span storage runs (an mbuf chain), which
// forces the consumer onto the Read copy — the measured send-side cost of
// Table 1.  A producer that additionally answers for SGBufIO lets a
// gather-capable consumer walk the runs in place; one that does not simply
// fails QueryInterface and the consumer falls back exactly as before, so
// the extension is invisible to existing bindings.
type SGBufIO interface {
	BufIO

	// MapSG returns the byte range [offset, offset+amount) as an ordered
	// list of storage runs, zero-copy.  The runs remain valid until
	// UnmapSG (or the final Release).  Fails with ErrInval when the range
	// exceeds the object.
	MapSG(offset, amount uint) ([][]byte, error)

	// UnmapSG releases a fragment list obtained from MapSG.
	UnmapSG(parts [][]byte) error
}

// AllocatorIID identifies the fast-allocator service interface.
var AllocatorIID = NewGUID(0x4aa7dff1, 0x7c74, 0x11cf,
	0xb5, 0x00, 0x08, 0x00, 0x09, 0x53, 0xad, 0xc2)

// Allocator is a discoverable memory-allocation service: the §6.2.10
// remedy (a conventional fast allocator for small fixed-size structures
// layered on the LMM) exported the way every other kit service is, so a
// client OS can look it up by GUID in the registry and bind its packet
// paths to it at run time (§4.2.2).
type Allocator interface {
	IUnknown

	// AllocMem returns a block of at least size bytes: its (simulated)
	// physical address and a slice aliasing the storage.  ok is false on
	// exhaustion.
	AllocMem(size uint32) (addr uint32, mem []byte, ok bool)

	// FreeMem returns a block obtained from AllocMem; size must be the
	// requested size (fast pools keep no per-block headers).
	FreeMem(addr uint32, size uint32)
}
