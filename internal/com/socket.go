package com

// Socket interfaces (paper §5).  The minimal C library's BSD socket
// functions map directly onto these methods by associating file descriptors
// with references to COM objects; because socket() uses a client-provided
// SocketFactory, the C library works with any protocol stack that provides
// these two interfaces.

// Address/protocol families (the subset the kit's stacks implement).
const (
	AFInet = 2 // IPv4
)

// Socket types.
const (
	SockStream = 1 // TCP
	SockDgram  = 2 // UDP
)

// Shutdown directions.
const (
	ShutRead  = 0
	ShutWrite = 1
	ShutBoth  = 2
)

// SockAddr is a protocol address: for AFInet, a 4-byte IP and a port.
type SockAddr struct {
	Family int
	Addr   [4]byte
	Port   uint16
}

// SocketIID identifies the Socket interface.
var SocketIID = NewGUID(0x4aa7dfe5, 0x7c74, 0x11cf,
	0xb5, 0x00, 0x08, 0x00, 0x09, 0x53, 0xad, 0xc2)

// Socket mirrors the BSD socket operations.
type Socket interface {
	IUnknown

	// Bind assigns a local address.
	Bind(addr SockAddr) error
	// Connect initiates (TCP) or fixes (UDP) a remote address.  For
	// SockStream it blocks until established or refused.
	Connect(addr SockAddr) error
	// Listen marks the socket passive with the given backlog.
	Listen(backlog int) error
	// Accept blocks for an incoming connection, returning the connected
	// socket and the peer address.
	Accept() (Socket, SockAddr, error)
	// Read receives data; for SockStream it blocks until at least one
	// byte (or EOF: 0, nil); for SockDgram it returns one datagram.
	Read(buf []byte) (uint, error)
	// Write sends data, blocking for socket-buffer space as needed.
	Write(buf []byte) (uint, error)
	// RecvFrom is Read plus the source address (datagram sockets).
	RecvFrom(buf []byte) (uint, SockAddr, error)
	// SendTo is Write to an explicit destination (datagram sockets).
	SendTo(buf []byte, to SockAddr) (uint, error)
	// Shutdown closes one or both directions.
	Shutdown(how int) error
	// GetSockName returns the local address.
	GetSockName() (SockAddr, error)
	// GetPeerName returns the remote address.
	GetPeerName() (SockAddr, error)
	// SetSockOpt sets a named integer option ("rcvbuf", "sndbuf",
	// "nodelay", "reuseaddr", …); unknown options return ErrInval.
	SetSockOpt(name string, value int) error
	// GetSockOpt reads a named integer option.
	GetSockOpt(name string) (int, error)
	// Close releases the socket (TCP: orderly close).
	Close() error
}

// SocketFactoryIID identifies the SocketFactory interface.
var SocketFactoryIID = NewGUID(0x4aa7dfe6, 0x7c74, 0x11cf,
	0xb5, 0x00, 0x08, 0x00, 0x09, 0x53, 0xad, 0xc2)

// SocketFactory creates sockets; a protocol stack exports one and the
// client registers it with the C library (posix_set_socketcreator, §5).
type SocketFactory interface {
	IUnknown

	// CreateSocket makes a new unbound socket.
	CreateSocket(domain, typ, protocol int) (Socket, error)
}
