// Package com implements the subset of the Component Object Model that the
// OSKit adopted as the framework for its component interfaces (paper §4.4).
//
// At its lowest level COM is a language-independent protocol letting
// components in one address space rendezvous and interact while remaining
// independently evolvable.  The Go rendering keeps the three properties the
// paper relies on:
//
//   - Implementation hiding (§4.4.1): interfaces are pure method sets; an
//     object's concrete type is never required by a client.
//   - Interface extension and evolution (§4.4.2): every object implements
//     IUnknown and can be queried at run time, by GUID, for any other
//     interface it exports ("safe downcasting"), allowing extended
//     interfaces such as BufIO to coexist with the base BlkIO.
//   - No required support code (§4.4.3): interfaces here are purely
//     behavioral contracts; there is no common infrastructure an
//     implementation must link against.
//
// Interfaces are identified by GUIDs so new interfaces can be defined
// independently with essentially no chance of collision.
package com

import (
	"fmt"
	"sync/atomic"
)

// GUID is a DCE-style globally unique identifier naming a COM interface.
//
// The layout follows the classic (data1, data2, data3, data4[8]) form used
// by the OSKit's GUID macro (see Figure 2 of the paper).
type GUID struct {
	Data1 uint32
	Data2 uint16
	Data3 uint16
	Data4 [8]byte
}

// NewGUID assembles a GUID from the eleven literal components used by the
// OSKit's GUID() macro, e.g. the blkio IID
// GUID(0x4aa7dfe1, 0x7c74, 0x11cf, 0xb5,0x00, 0x08,0x00,0x09,0x53,0xad,0xc2).
func NewGUID(d1 uint32, d2, d3 uint16, b0, b1, b2, b3, b4, b5, b6, b7 byte) GUID {
	return GUID{d1, d2, d3, [8]byte{b0, b1, b2, b3, b4, b5, b6, b7}}
}

// String renders the GUID in the conventional 8-4-4-4-12 hex form.
func (g GUID) String() string {
	return fmt.Sprintf("%08x-%04x-%04x-%02x%02x-%02x%02x%02x%02x%02x%02x",
		g.Data1, g.Data2, g.Data3,
		g.Data4[0], g.Data4[1], g.Data4[2], g.Data4[3],
		g.Data4[4], g.Data4[5], g.Data4[6], g.Data4[7])
}

// IUnknown is the root of every COM interface: reference management plus
// run-time interface discovery.
//
// QueryInterface returns an object implementing the interface identified by
// iid, or ErrNoInterface.  A successful query transfers one reference to the
// caller (COM rules); the returned value must eventually be Released.
type IUnknown interface {
	// QueryInterface asks the object for another of its interfaces.
	QueryInterface(iid GUID) (IUnknown, error)
	// AddRef increments and returns the reference count.
	AddRef() uint32
	// Release decrements the reference count, destroying the object when
	// it reaches zero, and returns the new count.
	Release() uint32
}

// UnknownIID identifies the IUnknown interface itself; querying for it must
// succeed on every COM object.
var UnknownIID = NewGUID(0x00000000, 0x0000, 0x0000, 0xc0, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x46)

// RefCount is an embeddable reference count providing the AddRef/Release
// half of IUnknown.  The zero value has count zero; constructors normally
// call Init (or set the count with AddRef) before handing the object out.
//
// OnLastRelease, if non-nil, runs when the count drops to zero (the analog
// of a COM destructor); it is the hook by which, e.g., the Linux glue frees
// an skbuff once external code drops the last BufIO reference (§4.7.3).
type RefCount struct {
	count         atomic.Uint32
	OnLastRelease func()
}

// Init sets the reference count to 1, the conventional state of a freshly
// constructed object owned by its creator.
func (r *RefCount) Init() {
	r.count.Store(1)
	refdebugInit(r)
}

// AddRef implements IUnknown.
func (r *RefCount) AddRef() uint32 {
	n := r.count.Add(1)
	refdebugAddRef(r, n)
	return n
}

// Release implements IUnknown.
//
// An over-release (a call with the count already zero) wraps the counter
// to ^uint32(0); a later AddRef/Release pair then re-crosses zero and
// runs OnLastRelease a second time — a double free of whatever the
// destructor guards (an skbuff, an mbuf chain, the partition view's
// device reference).  Builds with the oskitrefdebug tag detect both the
// over-release and the resurrection at the moment they happen; see
// refdebug_on.go.
func (r *RefCount) Release() uint32 {
	n := r.count.Add(^uint32(0)) // decrement
	refdebugRelease(r, n)
	if n == 0 && r.OnLastRelease != nil {
		r.OnLastRelease()
	}
	return n
}

// Refs reports the current reference count (for tests and leak checking).
func (r *RefCount) Refs() uint32 { return r.count.Load() }
