//go:build !oskitrefdebug

package com

// Reference-count lifecycle checking compiles away in normal builds;
// builds tagged oskitrefdebug get the checking versions in
// refdebug_on.go.
func refdebugInit(r *RefCount)              {}
func refdebugAddRef(r *RefCount, n uint32)  {}
func refdebugRelease(r *RefCount, n uint32) {}
