package com

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestOnLastReleaseExactlyOnce hammers one object from many goroutines
// and pins the destructor contract the OnLastRelease users (skbIO,
// mbufIO, the diskpart view) depend on: however the releases interleave,
// OnLastRelease runs exactly once, and only after every reference is
// gone.  Run it under -race: the interesting failure is two goroutines
// both deciding they dropped the last reference.
func TestOnLastReleaseExactlyOnce(t *testing.T) {
	const rounds = 200
	const holders = 8
	for round := 0; round < rounds; round++ {
		var destroyed atomic.Uint32
		r := &RefCount{}
		r.Init()
		r.OnLastRelease = func() { destroyed.Add(1) }
		for i := 0; i < holders; i++ {
			r.AddRef()
		}
		var wg sync.WaitGroup
		for i := 0; i < holders+1; i++ { // holders' refs plus the creator's
			wg.Add(1)
			go func() {
				defer wg.Done()
				r.Release()
			}()
		}
		wg.Wait()
		if got := destroyed.Load(); got != 1 {
			t.Fatalf("round %d: OnLastRelease ran %d times, want exactly 1", round, got)
		}
		if n := r.Refs(); n != 0 {
			t.Fatalf("round %d: %d references left after final Release", round, n)
		}
	}
}

// TestReleaseWithoutDestructor checks the destructor hook stays optional.
func TestReleaseWithoutDestructor(t *testing.T) {
	r := &RefCount{}
	r.Init()
	if n := r.Release(); n != 0 {
		t.Fatalf("Release = %d, want 0", n)
	}
}
