package com

// FaultIID identifies the FaultInjector interface: the kit's uniform
// fault-injection contract.
//
// The paper validates re-hosted donor code only along the happy path
// (§5's ttcp/rtcp runs); components get no uniform way to be driven
// through hostile device behaviour.  FaultInjector closes that gap the
// COM way (§4.4): the configuration that owns the simulated hardware
// registers one injector in the services registry, and any client —
// the evalrig, the examples, a measurement harness — can discover it,
// read back the plan it is executing, and report how many faults fired,
// with no link-time dependency in either direction.
var FaultIID = NewGUID(0x4aa7dfef, 0x7c74, 0x11cf,
	0xb5, 0x00, 0x08, 0x00, 0x09, 0x53, 0xad, 0xc2)

// FaultInjector is the read side of a fault-injection plane.  The
// concrete wiring (which devices, which allocators) belongs to whoever
// assembles the configuration; through this interface clients observe
// what hostile behaviour a run was subjected to and whether any of it
// actually fired — the assertion every chaos test needs.
type FaultInjector interface {
	IUnknown
	// FaultPlan renders the active plan in its textual "key=value ..."
	// form; feeding the same string back into a new run reproduces the
	// identical fault sequence (the plan embeds its seed).
	FaultPlan() string
	// FaultSeed returns the seed every injection decision derives from.
	FaultSeed() int64
	// FaultsInjected reports the total number of faults fired so far,
	// across every injection point.
	FaultsInjected() uint64
}
