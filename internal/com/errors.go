package com

import "fmt"

// Error is the OSKit's error_t: a numeric error code shared by every COM
// interface in the kit.  Codes below 0x1000 mirror the COM/OSKit reserved
// range; the rest mirror the POSIX errno values the encapsulated components
// translate to and from in their glue layers (§4.7.2).
type Error uint32

// COM-level and OSKit-reserved error codes.
const (
	// ErrNoInterface is returned by QueryInterface when the object does
	// not export the requested interface.
	ErrNoInterface Error = 0x80004002
	// ErrUnexpected is a catastrophic, unclassifiable failure.
	ErrUnexpected Error = 0x8000ffff
	// ErrNotImplemented marks methods an implementation chose not to
	// provide (legal for optional behaviour such as SetSize on a raw
	// disk).
	ErrNotImplemented Error = 0x80004001
)

// POSIX-shaped error codes used across the OSKit interfaces.
const (
	ErrPerm      Error = 0x1001 // operation not permitted
	ErrNoEnt     Error = 0x1002 // no such file or directory
	ErrIO        Error = 0x1005 // I/O error
	ErrBadF      Error = 0x1009 // bad file handle
	ErrAgain     Error = 0x100b // resource temporarily unavailable
	ErrNoMem     Error = 0x100c // out of memory
	ErrAccess    Error = 0x100d // permission denied
	ErrFault     Error = 0x100e // bad address
	ErrBusy      Error = 0x1010 // device busy
	ErrExist     Error = 0x1011 // file exists
	ErrNoDev     Error = 0x1013 // no such device
	ErrNotDir    Error = 0x1014 // not a directory
	ErrIsDir     Error = 0x1015 // is a directory
	ErrInval     Error = 0x1016 // invalid argument
	ErrNFile     Error = 0x1017 // file table overflow
	ErrNoSpace   Error = 0x101c // no space left on device
	ErrROFS      Error = 0x101e // read-only file system
	ErrPipe      Error = 0x1020 // broken pipe
	ErrNameLong  Error = 0x1024 // file name too long
	ErrNotEmpty  Error = 0x1027 // directory not empty
	ErrAddrInUse Error = 0x1030 // address already in use
	ErrNoPorts   Error = 0x1031 // can't assign requested address (EADDRNOTAVAIL: ephemeral range exhausted)
	ErrConnReset Error = 0x1036 // connection reset by peer
	ErrNotConn   Error = 0x1039 // socket is not connected
	ErrTimedOut  Error = 0x103c // operation timed out
	ErrConnRef   Error = 0x103d // connection refused
	ErrHostDown  Error = 0x1040 // host is down or unreachable
	ErrInProg    Error = 0x1044 // operation now in progress
	ErrXDev      Error = 0x1048 // cross-device link
	ErrRange     Error = 0x1049 // result out of range
)

var errText = map[Error]string{
	ErrNoInterface:    "no such interface",
	ErrUnexpected:     "unexpected error",
	ErrNotImplemented: "not implemented",
	ErrPerm:           "operation not permitted",
	ErrNoEnt:          "no such file or directory",
	ErrIO:             "I/O error",
	ErrBadF:           "bad file handle",
	ErrAgain:          "resource temporarily unavailable",
	ErrNoMem:          "out of memory",
	ErrAccess:         "permission denied",
	ErrFault:          "bad address",
	ErrBusy:           "device busy",
	ErrExist:          "file exists",
	ErrNoDev:          "no such device",
	ErrNotDir:         "not a directory",
	ErrIsDir:          "is a directory",
	ErrInval:          "invalid argument",
	ErrNFile:          "file table overflow",
	ErrNoSpace:        "no space left on device",
	ErrROFS:           "read-only file system",
	ErrPipe:           "broken pipe",
	ErrNameLong:       "file name too long",
	ErrNotEmpty:       "directory not empty",
	ErrAddrInUse:      "address already in use",
	ErrNoPorts:        "can't assign requested address",
	ErrConnReset:      "connection reset by peer",
	ErrNotConn:        "socket is not connected",
	ErrTimedOut:       "operation timed out",
	ErrConnRef:        "connection refused",
	ErrHostDown:       "host is down",
	ErrInProg:         "operation now in progress",
	ErrXDev:           "cross-device link",
	ErrRange:          "result out of range",
}

// Error implements the error interface.
func (e Error) Error() string {
	if s, ok := errText[e]; ok {
		return "oskit: " + s
	}
	return fmt.Sprintf("oskit: error %#x", uint32(e))
}
