package com

// Network packet-exchange interfaces (paper §5).
//
// When the client OS binds a protocol stack to a network device driver, the
// two components exchange NetIO callbacks which are subsequently used to
// pass packets back and forth asynchronously: the driver calls the stack's
// NetIO when a packet arrives, and the stack calls the driver's NetIO to
// transmit.  Packets are opaque BufIO objects, so neither side sees the
// other's internal buffer representation (skbuff vs mbuf, §4.7.3).

// NetIOIID identifies the NetIO interface.
var NetIOIID = NewGUID(0x4aa7dfe3, 0x7c74, 0x11cf,
	0xb5, 0x00, 0x08, 0x00, 0x09, 0x53, 0xad, 0xc2)

// NetIO is a unidirectional packet sink.
type NetIO interface {
	IUnknown

	// Push hands one packet to the sink.  size is the number of valid
	// bytes in the packet, which may be less than pkt.Size() when the
	// producer over-allocates.  Push consumes one reference to pkt: the
	// sink Releases it (or holds it) as it pleases.
	//
	// Push never blocks; it may be called from interrupt level.
	Push(pkt BufIO, size uint) error

	// AllocBufIO asks the sink to manufacture a packet buffer in the
	// sink's own native representation, so the producer can fill it in
	// place and avoid a conversion copy on Push.  Sinks that do not care
	// return ErrNotImplemented.
	AllocBufIO(size uint) (BufIO, error)
}

// NetIOFunc adapts an ordinary function to the NetIO interface; the
// resulting object is not reference counted (AddRef/Release are no-ops
// returning 1) and answers QueryInterface for IUnknown and NetIO only.
type NetIOFunc func(pkt BufIO, size uint) error

// QueryInterface implements IUnknown.
func (f NetIOFunc) QueryInterface(iid GUID) (IUnknown, error) {
	switch iid {
	case UnknownIID, NetIOIID:
		return f, nil
	}
	return nil, ErrNoInterface
}

// AddRef implements IUnknown; the adapter is statically allocated.
func (f NetIOFunc) AddRef() uint32 { return 1 }

// Release implements IUnknown.
func (f NetIOFunc) Release() uint32 { return 1 }

// Push implements NetIO by calling the function.
func (f NetIOFunc) Push(pkt BufIO, size uint) error { return f(pkt, size) }

// AllocBufIO implements NetIO; function adapters have no native buffers.
func (f NetIOFunc) AllocBufIO(size uint) (BufIO, error) { return nil, ErrNotImplemented }

// NetIOBatchIID identifies the batched packet-sink extension.  A
// producer that drains its hardware in batches (a polled receive loop)
// queries its peer's NetIO for this interface (§4.4.2: extension by
// GUID negotiation, never by changing NetIO itself); a sink that
// answers can ingest a whole batch in one softint pass and amortize
// its per-packet completion work — a sink that does not answer still
// receives every packet through per-frame Push.
var NetIOBatchIID = NewGUID(0x4aa7dff2, 0x7c74, 0x11cf,
	0xb5, 0x00, 0x08, 0x00, 0x09, 0x53, 0xad, 0xc2)

// NetIOBatch is a packet sink that accepts batched delivery.
type NetIOBatch interface {
	NetIO

	// PushBatch hands pkts[i] (sizes[i] valid bytes each) to the sink in
	// order, with the same per-packet contract as Push: one reference
	// per packet is consumed, the sink never blocks, interrupt level is
	// fine.  The sink processes the whole batch before doing deferred
	// completion work (ACKs, wakeups), which is the point.  The first
	// per-packet error is returned after the rest of the batch has still
	// been consumed.
	PushBatch(pkts []BufIO, sizes []uint) error
}

// EtherDevIID identifies the EtherDev interface implemented by Ethernet
// device nodes in the fdev framework.
var EtherDevIID = NewGUID(0x4aa7dfe4, 0x7c74, 0x11cf,
	0xb5, 0x00, 0x08, 0x00, 0x09, 0x53, 0xad, 0xc2)

// EtherDev is the open/configure view of an Ethernet device.
type EtherDev interface {
	IUnknown

	// Open brings the interface up.  recv is the sink the driver will
	// Push received packets to (from interrupt level); the returned
	// NetIO is the sink the client pushes packets to for transmission.
	Open(recv NetIO) (send NetIO, err error)

	// Close shuts the interface down and forgets the receive sink.
	Close() error

	// GetAddr returns the station (MAC) address.
	GetAddr() [6]byte
}
