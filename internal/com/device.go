package com

// Device-framework interfaces (paper §3.6).  Each device driver — whether
// derived from Linux or BSD — exports this common set of basic interfaces
// which hide the nature and origin of the driver; extended driver-specific
// interfaces remain reachable through QueryInterface (open implementation,
// §4.6).

// DeviceIID identifies the Device interface, the common "front" of every
// device node registered by a driver.
var DeviceIID = NewGUID(0x4aa7dfea, 0x7c74, 0x11cf,
	0xb5, 0x00, 0x08, 0x00, 0x09, 0x53, 0xad, 0xc2)

// DeviceInfo describes a device node.
type DeviceInfo struct {
	Name        string // short node name, e.g. "eth0", "hd0", "com1"
	Description string // human-readable description
	Vendor      string // donor/source of the driver, e.g. "linux", "freebsd"
	Driver      string // driver name, e.g. "sne2k"
}

// Device is a probed, registered device node.  Its functional interface
// (EtherDev, BlkIO, Stream, …) is obtained via QueryInterface.
type Device interface {
	IUnknown

	// GetInfo describes the node.
	GetInfo() DeviceInfo
}

// DriverIID identifies the Driver interface.
var DriverIID = NewGUID(0x4aa7dfeb, 0x7c74, 0x11cf,
	0xb5, 0x00, 0x08, 0x00, 0x09, 0x53, 0xad, 0xc2)

// Driver is a registered device driver: a single entry point used to probe
// for and register the hardware it controls (component-library style,
// §4.3.2).
type Driver interface {
	IUnknown

	// GetInfo describes the driver (Name/Description/Vendor fields).
	GetInfo() DeviceInfo
}

// StreamIID identifies the Stream interface, the byte-stream view of
// character devices (console, serial ports).
var StreamIID = NewGUID(0x4aa7dfec, 0x7c74, 0x11cf,
	0xb5, 0x00, 0x08, 0x00, 0x09, 0x53, 0xad, 0xc2)

// Stream is sequential byte I/O.
type Stream interface {
	IUnknown

	// Read blocks until at least one byte is available (or EOF: 0, nil).
	Read(buf []byte) (uint, error)
	// Write writes the buffer, blocking as needed.
	Write(buf []byte) (uint, error)
}

// ClockIID identifies the Clock interface.
var ClockIID = NewGUID(0x4aa7dfed, 0x7c74, 0x11cf,
	0xb5, 0x00, 0x08, 0x00, 0x09, 0x53, 0xad, 0xc2)

// Clock exposes the kit's time base (10 ms ticks on the simulated PC, the
// granularity the paper's ttcp timing contends with).
type Clock interface {
	IUnknown

	// Ticks returns the tick count since boot.
	Ticks() uint64
	// TickDuration returns the nanoseconds represented by one tick.
	TickDuration() uint64
}
