package com

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestGUIDStringForm(t *testing.T) {
	// The blkio IID from Figure 2 of the paper.
	got := BlkIOIID.String()
	want := "4aa7dfe1-7c74-11cf-b500-08000953adc2"
	if got != want {
		t.Errorf("BlkIOIID.String() = %q, want %q", got, want)
	}
}

func TestGUIDsAreDistinct(t *testing.T) {
	ids := map[GUID]string{}
	for _, x := range []struct {
		name string
		iid  GUID
	}{
		{"unknown", UnknownIID},
		{"blkio", BlkIOIID},
		{"bufio", BufIOIID},
		{"netio", NetIOIID},
		{"etherdev", EtherDevIID},
		{"socket", SocketIID},
		{"socketfactory", SocketFactoryIID},
		{"file", FileIID},
		{"dir", DirIID},
		{"filesystem", FileSystemIID},
		{"device", DeviceIID},
		{"driver", DriverIID},
		{"stream", StreamIID},
		{"clock", ClockIID},
	} {
		if prev, dup := ids[x.iid]; dup {
			t.Errorf("GUID collision: %s and %s share %v", prev, x.name, x.iid)
		}
		ids[x.iid] = x.name
	}
}

func TestRefCountLifecycle(t *testing.T) {
	var destroyed bool
	var rc RefCount
	rc.OnLastRelease = func() { destroyed = true }
	rc.Init()
	if rc.AddRef() != 2 {
		t.Fatal("AddRef after Init should yield 2")
	}
	if rc.Release() != 1 {
		t.Fatal("Release should yield 1")
	}
	if destroyed {
		t.Fatal("destructor ran with references outstanding")
	}
	if rc.Release() != 0 {
		t.Fatal("final Release should yield 0")
	}
	if !destroyed {
		t.Fatal("destructor did not run at refcount zero")
	}
}

func TestErrorStrings(t *testing.T) {
	if ErrNoEnt.Error() == "" || ErrNoInterface.Error() == "" {
		t.Fatal("error strings must be non-empty")
	}
	var e error = ErrInval
	if e.Error() != "oskit: invalid argument" {
		t.Errorf("ErrInval = %q", e.Error())
	}
	if Error(0x9999).Error() != "oskit: error 0x9999" {
		t.Errorf("unknown code formatting: %q", Error(0x9999).Error())
	}
}

func TestMemBufQueryInterface(t *testing.T) {
	b := NewMemBuf(make([]byte, 64))
	// Every COM object answers for IUnknown.
	u, err := b.QueryInterface(UnknownIID)
	if err != nil {
		t.Fatalf("QueryInterface(IUnknown): %v", err)
	}
	u.Release()
	// MemBuf exports both the base and the extension interface.
	bi, err := b.QueryInterface(BlkIOIID)
	if err != nil {
		t.Fatalf("QueryInterface(BlkIO): %v", err)
	}
	if _, ok := bi.(BlkIO); !ok {
		t.Fatal("BlkIO query did not return a BlkIO")
	}
	bi.Release()
	xi, err := b.QueryInterface(BufIOIID)
	if err != nil {
		t.Fatalf("QueryInterface(BufIO): %v", err)
	}
	if _, ok := xi.(BufIO); !ok {
		t.Fatal("BufIO query did not return a BufIO")
	}
	xi.Release()
	// Unknown interfaces fail cleanly.
	if _, err := b.QueryInterface(SocketIID); err != ErrNoInterface {
		t.Fatalf("bogus query: got %v, want ErrNoInterface", err)
	}
	if b.Refs() != 1 {
		t.Fatalf("reference leak: %d refs after queries released", b.Refs())
	}
}

func TestMemBufReadWrite(t *testing.T) {
	b := NewMemBuf(make([]byte, 16))
	if _, err := b.Write([]byte("hello"), 3); err != nil {
		t.Fatal(err)
	}
	out := make([]byte, 5)
	n, err := b.Read(out, 3)
	if err != nil || n != 5 || string(out) != "hello" {
		t.Fatalf("Read = %d %v %q", n, err, out)
	}
	// Reads at EOF return 0, nil.
	if n, err := b.Read(out, 16); n != 0 || err != nil {
		t.Fatalf("read at EOF = %d, %v", n, err)
	}
	// Writes past the end are rejected.
	if _, err := b.Write(make([]byte, 8), 12); err != ErrInval {
		t.Fatalf("overlong write: %v", err)
	}
	// Map aliases the storage.
	m, err := b.Map(3, 5)
	if err != nil {
		t.Fatal(err)
	}
	m[0] = 'H'
	n, _ = b.Read(out, 3)
	if string(out[:n]) != "Hello" {
		t.Fatalf("Map does not alias storage: %q", out[:n])
	}
	if err := b.Unmap(m); err != nil {
		t.Fatal(err)
	}
}

func TestMemBufWire(t *testing.T) {
	plain := NewMemBuf(make([]byte, 8))
	if _, err := plain.Wire(); err != ErrNotImplemented {
		t.Fatalf("plain buffer Wire: %v", err)
	}
	phys := NewMemBufPhys(make([]byte, 8), 0x100000)
	a, err := phys.Wire()
	if err != nil || a != 0x100000 {
		t.Fatalf("Wire = %#x, %v", a, err)
	}
	if err := phys.Unwire(); err != nil {
		t.Fatal(err)
	}
}

// Property: for any data and any in-range (offset, length), a round trip of
// Write then Read through the BlkIO view returns the bytes written.
func TestMemBufRoundTripProperty(t *testing.T) {
	f := func(data []byte, off8 uint8) bool {
		size := len(data) + int(off8) + 1
		b := NewMemBuf(make([]byte, size))
		if _, err := b.Write(data, uint64(off8)); err != nil {
			return false
		}
		out := make([]byte, len(data))
		n, err := b.Read(out, uint64(off8))
		return err == nil && int(n) == len(data) && bytes.Equal(out, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: ReadFullBufIO returns identical bytes whether or not Map is
// available (the copy-avoidance fallback must be semantically invisible).
func TestReadFullEquivalenceProperty(t *testing.T) {
	f := func(data []byte) bool {
		if len(data) == 0 {
			return true
		}
		mappable := NewMemBuf(append([]byte(nil), data...))
		got1, err1 := ReadFullBufIO(mappable, uint(len(data)))
		unmappable := &noMapBuf{MemBuf: NewMemBuf(append([]byte(nil), data...))}
		got2, err2 := ReadFullBufIO(unmappable, uint(len(data)))
		return err1 == nil && err2 == nil &&
			bytes.Equal(got1, data) && bytes.Equal(got2, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// noMapBuf simulates a BufIO whose storage is not contiguous (an mbuf
// chain): Map always fails, forcing the Read fallback.
type noMapBuf struct{ *MemBuf }

func (b *noMapBuf) Map(offset, amount uint) ([]byte, error) {
	return nil, ErrNotImplemented
}

func TestNetIOFunc(t *testing.T) {
	var gotSize uint
	sink := NetIOFunc(func(pkt BufIO, size uint) error {
		gotSize = size
		pkt.Release()
		return nil
	})
	if _, err := sink.QueryInterface(NetIOIID); err != nil {
		t.Fatalf("NetIOFunc must answer for NetIO: %v", err)
	}
	if _, err := sink.QueryInterface(BlkIOIID); err != ErrNoInterface {
		t.Fatalf("NetIOFunc must reject other IIDs: %v", err)
	}
	pkt := NewMemBuf(make([]byte, 60))
	if err := sink.Push(pkt, 42); err != nil {
		t.Fatal(err)
	}
	if gotSize != 42 {
		t.Fatalf("Push size = %d", gotSize)
	}
	if _, err := sink.AllocBufIO(64); err != ErrNotImplemented {
		t.Fatalf("AllocBufIO on func adapter: %v", err)
	}
}
