//go:build oskitrefdebug

package com

import "testing"

func mustPanic(t *testing.T, want string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("no panic; want one mentioning %q", want)
		}
	}()
	f()
}

// TestRefdebugOverRelease: releasing a dead object must stop the program
// at the over-release, not at the eventual second OnLastRelease.
func TestRefdebugOverRelease(t *testing.T) {
	r := &RefCount{}
	r.Init()
	r.Release()
	mustPanic(t, "over-release", func() { r.Release() })
}

// TestRefdebugResurrection: AddRef on a destroyed object is a
// use-after-free in waiting.
func TestRefdebugResurrection(t *testing.T) {
	r := &RefCount{}
	r.Init()
	r.Release()
	mustPanic(t, "resurrection", func() { r.AddRef() })
}

// TestRefdebugReinit: object pools may re-Init a destroyed RefCount; the
// ledger entry must clear.
func TestRefdebugReinit(t *testing.T) {
	r := &RefCount{}
	r.Init()
	r.Release()
	r.Init()
	if n := r.AddRef(); n != 2 {
		t.Fatalf("AddRef after re-Init = %d, want 2", n)
	}
	r.Release()
	r.Release()
}
