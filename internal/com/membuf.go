package com

// MemBuf is the trivial BufIO implementation: a packet or data buffer held
// in ordinary contiguous memory.  Components use it when they have no
// native buffer representation of their own; it is also the reference
// implementation the interface tests run against.
type MemBuf struct {
	RefCount
	data []byte
	// phys is the simulated physical address of data, when the buffer
	// aliases machine memory; zero means "not wireable".
	phys uint32
}

// NewMemBuf wraps an existing byte slice as a BufIO with one reference.
func NewMemBuf(data []byte) *MemBuf {
	b := &MemBuf{data: data}
	b.Init()
	return b
}

// NewMemBufPhys wraps a slice that aliases simulated physical memory at
// address phys, making the buffer wireable for DMA.
func NewMemBufPhys(data []byte, phys uint32) *MemBuf {
	b := NewMemBuf(data)
	b.phys = phys
	return b
}

// QueryInterface implements IUnknown.
func (b *MemBuf) QueryInterface(iid GUID) (IUnknown, error) {
	switch iid {
	case UnknownIID, BlkIOIID, BufIOIID:
		b.AddRef()
		return b, nil
	}
	return nil, ErrNoInterface
}

// BlockSize implements BlkIO; memory buffers are byte-granular.
func (b *MemBuf) BlockSize() uint { return 1 }

// Read implements BlkIO.
func (b *MemBuf) Read(buf []byte, offset uint64) (uint, error) {
	if offset >= uint64(len(b.data)) {
		return 0, nil
	}
	n := copy(buf, b.data[offset:])
	return uint(n), nil
}

// Write implements BlkIO.
func (b *MemBuf) Write(buf []byte, offset uint64) (uint, error) {
	if offset+uint64(len(buf)) > uint64(len(b.data)) {
		return 0, ErrInval
	}
	n := copy(b.data[offset:], buf)
	return uint(n), nil
}

// Size implements BlkIO.
func (b *MemBuf) Size() (uint64, error) { return uint64(len(b.data)), nil }

// SetSize implements BlkIO; a MemBuf may shrink (reslice) but not grow.
func (b *MemBuf) SetSize(size uint64) error {
	if size > uint64(len(b.data)) {
		return ErrNotImplemented
	}
	b.data = b.data[:size]
	return nil
}

// Map implements BufIO: the whole buffer is one contiguous extent.
func (b *MemBuf) Map(offset, amount uint) ([]byte, error) {
	if uint64(offset)+uint64(amount) > uint64(len(b.data)) {
		return nil, ErrInval
	}
	return b.data[offset : offset+amount], nil
}

// Unmap implements BufIO (no-op: mappings are plain slices).
func (b *MemBuf) Unmap(buf []byte) error { return nil }

// Wire implements BufIO.
func (b *MemBuf) Wire() (uint32, error) {
	if b.phys == 0 {
		return 0, ErrNotImplemented
	}
	return b.phys, nil
}

// Unwire implements BufIO.
func (b *MemBuf) Unwire() error { return nil }

var _ BufIO = (*MemBuf)(nil)

// ReadFullBufIO copies size bytes out of any BufIO, using Map when the
// implementation supports it and falling back on Read — the exact pattern
// the Linux transmit glue uses on "foreign" packet objects (§4.7.3).
func ReadFullBufIO(b BufIO, size uint) ([]byte, error) {
	if m, err := b.Map(0, size); err == nil {
		out := make([]byte, size)
		copy(out, m)
		if err := b.Unmap(m); err != nil {
			return nil, err
		}
		return out, nil
	}
	out := make([]byte, size)
	n, err := b.Read(out, 0)
	if err != nil {
		return nil, err
	}
	if n < size {
		return nil, ErrIO
	}
	return out, nil
}
