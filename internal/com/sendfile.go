package com

// SendfileIID identifies the file-side zero-copy export interface.
var SendfileIID = NewGUID(0x4aa7dff5, 0x7c74, 0x11cf,
	0xb5, 0x00, 0x08, 0x00, 0x09, 0x53, 0xad, 0xc2)

// Sendfile is the file-side half of the zero-copy serving path (E15):
// a file object that can export a byte range of its backing store —
// buffer-cache pages, for the NetBSD file system — as an SGBufIO whose
// reference count *pins* those pages for exactly as long as anything
// still holds a fragment.  It is negotiated per §4.4.2: a socket layer
// that wants zero-copy asks the file for SendfileIID; a file that
// cannot export in place (or a range it cannot, e.g. one spanning a
// hole) fails, and the caller falls back to the ReadAt copy path
// unchanged.  The extension is therefore invisible to every existing
// File binding, exactly like SGBufIO was to BufIO.
type Sendfile interface {
	IUnknown

	// MapFileSG exports the byte range [offset, offset+amount) of the
	// file as a pinned scatter-gather object.  The returned SGBufIO owns
	// one reference per underlying page; MapSG on it yields the runs
	// in file order, and the final Release unpins every page.  Fails
	// with ErrInval when the range exceeds the file and with ErrIO when
	// the range cannot be exported in place.
	MapFileSG(offset, amount uint64) (SGBufIO, error)
}

// SockSendfileIID identifies the socket-side sendfile entry interface.
var SockSendfileIID = NewGUID(0x4aa7dff3, 0x7c74, 0x11cf,
	0xb5, 0x00, 0x08, 0x00, 0x09, 0x53, 0xad, 0xc2)

// SockSendfile is the socket-side half: a stream socket that can send
// a file's bytes directly.  The implementation negotiates SendfileIID
// with the file; when that succeeds the payload travels as external
// mbufs referencing the file's pinned pages (never copied), and when
// it fails the socket falls back to an internal read-and-write loop
// with identical on-the-wire behaviour.  Like Socket.Write, the call
// blocks for send-buffer space and may send fewer bytes than asked
// only on error.
type SockSendfile interface {
	IUnknown

	// SendFile sends length bytes of f starting at offset.  Returns the
	// number of bytes queued (== length on success).
	SendFile(f File, offset, length uint64) (uint64, error)
}

// TxCsumIID identifies the transmit checksum-offload descriptor
// interface.
var TxCsumIID = NewGUID(0x4aa7dff4, 0x7c74, 0x11cf,
	0xb5, 0x00, 0x08, 0x00, 0x09, 0x53, 0xad, 0xc2)

// TxCsum lets a packet object tell the transmit path that its
// transport checksum has not been computed: the protocol seeded the
// checksum field with the folded pseudo-header sum and left the rest
// to the wire side.  A FeatCsum device folds the ones-complement sum
// over [start, end) into the 16-bit field at start+off during the
// gather pass; a transmit path without the engine finishes the sum in
// software before the frame leaves, so the wire image is identical
// either way.  Packets in a default configuration never answer for
// this interface at all.
type TxCsum interface {
	IUnknown

	// CsumSpec reports whether the packet needs hardware checksumming,
	// and if so the byte offset where summing starts (start) and the
	// offset of the 16-bit checksum field relative to start (off).
	CsumSpec() (needs bool, start, off int)
}
