//go:build oskitrefdebug

package com

import (
	"fmt"
	"sync"
)

// The oskitrefdebug build enforces the two RefCount lifecycle rules an
// atomic counter cannot enforce by itself:
//
//   - Release is never called on an already-destroyed object.  The
//     plain build wraps the counter to ^uint32(0) and keeps going; a
//     later AddRef/Release pair then re-crosses zero and fires
//     OnLastRelease a second time, double-freeing whatever the
//     destructor guards.
//   - AddRef never resurrects a destroyed object (handing out a
//     reference to a corpse is a use-after-free in waiting).
//
// Destroyed objects are remembered by pointer in a process-global
// ledger, in the spirit of memdebug's freed-address map (§3.5); entries
// persist until the same RefCount is re-Initialized (object pooling),
// so a debug build trades memory for certainty.  Violations panic: in a
// debugging build the right moment to stop is the first broken
// invariant, not the crash it eventually causes.

var refdebug = struct {
	sync.Mutex
	dead map[*RefCount]bool
}{dead: map[*RefCount]bool{}}

func refdebugInit(r *RefCount) {
	refdebug.Lock()
	delete(refdebug.dead, r)
	refdebug.Unlock()
}

func refdebugAddRef(r *RefCount, n uint32) {
	refdebug.Lock()
	defer refdebug.Unlock()
	if refdebug.dead[r] {
		panic(fmt.Sprintf("com: AddRef on destroyed object %p (count now %d): resurrection after final Release", r, n))
	}
}

func refdebugRelease(r *RefCount, n uint32) {
	refdebug.Lock()
	defer refdebug.Unlock()
	if n == ^uint32(0) {
		panic(fmt.Sprintf("com: Release on object %p with count already zero: over-release (OnLastRelease could run twice)", r))
	}
	if n == 0 {
		refdebug.dead[r] = true
	}
}
