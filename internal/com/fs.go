package com

// File system interfaces (paper §3.8).  These are deliberately similar to
// the internal VFS interface used by Unix file systems, and of fine enough
// granularity that wrapping code can interpose on every operation: in
// particular Dir.Lookup accepts only a single pathname component, which is
// what let the Utah secure file server do per-component permission checking
// without touching the file system internals.

// Stat is file metadata (a pruned struct stat).
type Stat struct {
	Ino     uint32 // inode number
	Mode    uint32 // type and permission bits
	Nlink   uint32 // link count
	UID     uint32
	GID     uint32
	Size    uint64 // size in bytes
	Blocks  uint64 // blocks allocated
	Atime   uint64 // access time, ticks
	Mtime   uint64 // modification time, ticks
	Ctime   uint64 // change time, ticks
	BlkSize uint32 // preferred I/O size
}

// Mode bits (a pruned POSIX set).
const (
	ModeIFMT  = 0o170000 // mask for the type bits
	ModeIFREG = 0o100000 // regular file
	ModeIFDIR = 0o040000 // directory
	ModeIRWXU = 0o000700
	ModeIRUSR = 0o000400
	ModeIWUSR = 0o000200
	ModeIXUSR = 0o000100
	ModeIRWXG = 0o000070
	ModeIRWXO = 0o000007
)

// StatFS is file system metadata.
type StatFS struct {
	BlockSize   uint32
	TotalBlocks uint64
	FreeBlocks  uint64
	TotalFiles  uint64
	FreeFiles   uint64
}

// Dirent is one directory entry as returned by Dir.ReadDir.
type Dirent struct {
	Ino  uint32
	Name string
}

// FileIID identifies the File interface.
var FileIID = NewGUID(0x4aa7dfe7, 0x7c74, 0x11cf,
	0xb5, 0x00, 0x08, 0x00, 0x09, 0x53, 0xad, 0xc2)

// File is an open-less, stateless view of a file: all I/O carries explicit
// offsets, so per-descriptor seek state lives in the client (the minimal C
// library's POSIX layer keeps it in the fd table).
type File interface {
	IUnknown

	// ReadAt reads up to len(buf) bytes at the given offset.  Reading at
	// or beyond end-of-file returns 0, nil.
	ReadAt(buf []byte, offset uint64) (uint, error)
	// WriteAt writes len(buf) bytes at the given offset, extending the
	// file as needed.
	WriteAt(buf []byte, offset uint64) (uint, error)
	// GetStat returns the file's metadata.
	GetStat() (Stat, error)
	// SetSize truncates or extends the file.
	SetSize(size uint64) error
	// Sync flushes the file's dirty data and metadata to stable storage.
	Sync() error
}

// DirIID identifies the Dir interface.
var DirIID = NewGUID(0x4aa7dfe8, 0x7c74, 0x11cf,
	0xb5, 0x00, 0x08, 0x00, 0x09, 0x53, 0xad, 0xc2)

// Dir is a directory.  Every Dir is also a File (directories have
// metadata); name arguments are single pathname components containing no
// '/' — multi-component traversal is the client's (or a wrapper's) job.
type Dir interface {
	File

	// Lookup resolves one component to a File (which may itself be a
	// Dir; use QueryInterface with DirIID to find out).
	Lookup(name string) (File, error)
	// Create makes a regular file; if it already exists and excl is
	// false the existing file is returned.
	Create(name string, mode uint32, excl bool) (File, error)
	// Mkdir makes a subdirectory.
	Mkdir(name string, mode uint32) error
	// Unlink removes a regular file.
	Unlink(name string) error
	// Rmdir removes an empty subdirectory.
	Rmdir(name string) error
	// Rename moves old (a component in this directory) to newName in
	// newDir, which must belong to the same file system.
	Rename(old string, newDir Dir, newName string) error
	// ReadDir returns the directory's entries starting at index start
	// ("." and ".." excluded), up to count of them (count <= 0: all).
	ReadDir(start, count int) ([]Dirent, error)
}

// FileSystemIID identifies the FileSystem interface.
var FileSystemIID = NewGUID(0x4aa7dfe9, 0x7c74, 0x11cf,
	0xb5, 0x00, 0x08, 0x00, 0x09, 0x53, 0xad, 0xc2)

// FileSystem is a mounted file system.
type FileSystem interface {
	IUnknown

	// GetRoot returns the root directory (one reference to the caller).
	GetRoot() (Dir, error)
	// StatFS returns file system metadata.
	StatFS() (StatFS, error)
	// Sync flushes all dirty state to the underlying BlkIO.
	Sync() error
	// Unmount flushes and detaches; further operations fail.
	Unmount() error
}
