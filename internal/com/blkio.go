package com

// This file is the Go rendering of Figure 2 of the paper: the OSKit's COM
// interface for block I/O, implemented by every disk device driver as well
// as by other components (partition views, RAM disks, file-backed stores).
//
// The original C interface is a struct whose first member points to a
// dispatch table (blkio_ops) of eight methods:
//
//	query, addref, release, getblocksize, read, write, getsize, setsize
//
// The Go interface carries the same eight methods; query/addref/release come
// from the embedded IUnknown.

// BlkIOIID identifies the BlkIO interface.  The constants are the exact
// GUID printed in Figure 2.
var BlkIOIID = NewGUID(0x4aa7dfe1, 0x7c74, 0x11cf,
	0xb5, 0x00, 0x08, 0x00, 0x09, 0x53, 0xad, 0xc2)

// BlkIO is absolute-offset block I/O.  Offsets and sizes are in bytes, but
// implementations may require callers to respect BlockSize granularity
// (raw disk drivers do; buffered objects need not).
type BlkIO interface {
	IUnknown

	// BlockSize returns the natural block size of the object.  Reads and
	// writes whose offset or amount is not a multiple of this size may be
	// rejected with ErrInval by strict implementations.
	BlockSize() uint

	// Read copies up to len(buf) bytes starting at the absolute byte
	// offset into buf, returning the number of bytes actually read.
	// Reading at end-of-object returns 0, nil.
	Read(buf []byte, offset uint64) (uint, error)

	// Write copies len(buf) bytes from buf to the absolute byte offset,
	// returning the number of bytes actually written.
	Write(buf []byte, offset uint64) (uint, error)

	// Size returns the current size of the object in bytes.
	Size() (uint64, error)

	// SetSize grows or truncates the object.  Fixed-size objects (raw
	// disks, partitions) return ErrNotImplemented.
	SetSize(size uint64) error
}

// BufIOIID identifies the BufIO extension interface (§4.4.2).
var BufIOIID = NewGUID(0x4aa7dfe2, 0x7c74, 0x11cf,
	0xb5, 0x00, 0x08, 0x00, 0x09, 0x53, 0xad, 0xc2)

// BufIO extends BlkIO for objects whose data happens to live in local
// memory, adding direct pointer-based access so clients can avoid copies in
// the common case (§4.4.2, §4.7.3).  Network packet buffers are the
// canonical implementors: the Linux glue exports skbuffs and the FreeBSD
// glue exports mbufs through this interface.
//
// Raw, unbuffered disk drivers provide only the base BlkIO; querying them
// for BufIO fails, and clients fall back on Read/Write.
type BufIO interface {
	BlkIO

	// Map returns a slice aliasing the object's storage for the byte
	// range [offset, offset+amount).  It fails with ErrNotImplemented if
	// the implementation cannot expose that range as one contiguous
	// local-memory extent (e.g. the range spans links of an mbuf chain),
	// in which case the caller must fall back on Read.  The mapping
	// remains valid until Unmap (or the final Release).
	Map(offset, amount uint) ([]byte, error)

	// Unmap releases a mapping obtained from Map.
	Unmap(buf []byte) error

	// Wire pins the object's storage so device DMA may address it, and
	// returns the (simulated) physical address.  Implementations whose
	// storage is not in DMA-able memory return ErrNotImplemented.
	Wire() (physAddr uint32, err error)

	// Unwire releases a Wire pin.
	Unwire() error
}
