package com

// StatsIID identifies the Stats interface: the kit's uniform
// observability contract, in the spirit of Solaris/BSD kstat.
//
// The paper evaluates the OSKit entirely through measurement (§5's
// ttcp/rtcp tables, §6's footprint inventories), but gives components
// no uniform way to report what they are doing; every measurement had
// to be wired up by hand.  Stats closes that gap the COM way (§4.4):
// any component may export a named set of monotonic counters, gauges,
// and fixed-bucket histograms, and any client can discover every
// exporter at run time by looking StatsIID up in the services registry
// — no link-time dependency in either direction.
var StatsIID = NewGUID(0x4aa7dfee, 0x7c74, 0x11cf,
	0xb5, 0x00, 0x08, 0x00, 0x09, 0x53, 0xad, 0xc2)

// Statistic is one sampled statistic: a name and its value at snapshot time.
//
// Names follow the kit's "subsys.counter" convention (e.g.
// "mbuf.allocs", "tcp.segs_in", "malloc.bytes_live").  Derived entries
// append a suffix segment: a gauge g also reports "g.hiwat" (its
// high-water mark), a histogram h reports "h.le_<bound>" per bucket
// plus "h.count" and "h.sum".
type Statistic struct {
	Name  string
	Value int64
}

// Stats is the observability interface a component exports: a named,
// snapshot-on-read view of its internal event counters.
//
// Snapshot returns a consistent-enough sample of every statistic in
// the set (individual values are read atomically; the set as a whole
// is sampled while the component may still be running, which is the
// kstat contract too).  Reset zeroes every statistic, letting a
// measurement harness bracket exactly one run.
type Stats interface {
	IUnknown
	// StatsName names the exporting component ("freebsd_net",
	// "linux_dev", ...), the prefix under which reports group its rows.
	StatsName() string
	// Snapshot samples every statistic in a stable order.
	Snapshot() []Statistic
	// Reset zeroes every statistic (counters, gauges and their
	// high-water marks, histogram buckets).
	Reset()
}
