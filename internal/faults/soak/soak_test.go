package soak

import (
	"reflect"
	"testing"
	"time"

	"oskit/internal/evalrig"
	"oskit/internal/faults"
)

// soakTick is the machine clock for soak pairs: faster than the
// benchmarks' 1 ms so TCP's slow timer (50 ticks) recovers from
// injected loss in tens of milliseconds of host time instead of
// hundreds.
const soakTick = 250 * time.Microsecond

// The acceptance test: the Table-1 ttcp transfer completes with its
// end-to-end checksum intact under every soak regime — including 20%
// burst loss with disk errors — while the fault counters prove the
// regime actually fired and the allocation ledgers stay balanced.
func TestTTCPSoakRegimes(t *testing.T) {
	if testing.Short() {
		t.Skip("soak transfers are slow")
	}
	for i, reg := range TTCPRegimes() {
		reg := reg
		port := uint16(5600 + i)
		t.Run(reg.Name, func(t *testing.T) {
			p, err := evalrig.NewPair(evalrig.OSKit, soakTick)
			if err != nil {
				t.Fatal(err)
			}
			defer p.Halt()
			in := p.EnableFaults(reg.Plan)
			t.Logf("plan: %s", in.FaultPlan())

			if err := RunTTCP(p, 32, 4096, port, reg.Plan.Seed, 120*time.Second); err != nil {
				t.Fatalf("ttcp under %q (reproduce with plan %q): %v",
					reg.Name, in.FaultPlan(), err)
			}
			if reg.Plan.Active() {
				if in.FaultsInjected() == 0 {
					t.Errorf("regime %q injected nothing", reg.Name)
				}
			} else if in.FaultsInjected() != 0 {
				t.Errorf("clean regime injected %d faults", in.FaultsInjected())
			}
			for _, n := range []*evalrig.Node{p.Sender, p.Receiver} {
				for _, bad := range Imbalances(n) {
					t.Errorf("%s: %s", n.Machine.Name, bad)
				}
			}
			// The injector is discoverable on both nodes like any other
			// registered service.
			if v, ok := p.Sender.Stat("faults", "injected.total"); !ok {
				t.Error("faults stats set not discoverable via the registry")
			} else if reg.Plan.Active() && v == 0 {
				t.Error("registry sees zero injected faults under an active regime")
			}
		})
	}
}

// Allocation-failure chaos: with the memory service failing underneath
// the stack (the Nth allocation plus a steady rate), the transfer may
// or may not complete — graceful failure is allowed, crashing or
// leaking is not.
func TestTTCPAllocFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("soak transfers are slow")
	}
	p, err := evalrig.NewPair(evalrig.OSKit, soakTick)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Halt()
	plan := faults.Plan{Seed: 4, AllocFailNth: 2, AllocRate: 0.02}
	in := p.EnableFaults(plan)

	if err := RunTTCP(p, 16, 4096, 5650, plan.Seed, 60*time.Second); err != nil {
		// Allowed: the socket layer surfaces injected exhaustion as an
		// I/O error.  What is not allowed is taking the suite down or
		// leaking — checked below either way.
		t.Logf("transfer failed gracefully under alloc faults: %v", err)
	}
	if in.FaultsInjected() == 0 {
		t.Error("alloc regime injected nothing (alloc.nth=2 should always fire)")
	}
	for _, n := range []*evalrig.Node{p.Sender, p.Receiver} {
		for _, bad := range Imbalances(n) {
			t.Errorf("%s: %s", n.Machine.Name, bad)
		}
	}
}

// The FFS-over-IDE workload completes with byte-exact integrity while
// the disk injects errors and torn writes, and the run's own counters
// prove the hostility was real.
func TestDiskSoakUnderFaults(t *testing.T) {
	plan := faults.Plan{Seed: 7, DiskErr: 0.05, DiskTorn: 0.03}
	res, err := RunDiskSoak(plan, 4, 8192)
	if err != nil {
		t.Fatalf("disk soak (reproduce with plan %q): %v", plan.String(), err)
	}
	if res.Injected == 0 {
		t.Error("no faults injected at 5% error + 3% torn rates")
	}
	if res.Retries == 0 {
		t.Error("faults were injected but no operation ever retried")
	}
	t.Logf("injected %d faults, %d retries", res.Injected, res.Retries)
}

// The reproducibility contract, asserted end to end: one logged seed
// replays an identical fault sequence across two runs of the same soak.
func TestDiskSoakSeedReproducible(t *testing.T) {
	plan := faults.Plan{Seed: 11, DiskErr: 0.08, DiskTorn: 0.04}
	a, err := RunDiskSoak(plan, 4, 8192)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunDiskSoak(plan, 4, 8192)
	if err != nil {
		t.Fatal(err)
	}
	if a.Injected != b.Injected {
		t.Errorf("runs injected %d vs %d faults", a.Injected, b.Injected)
	}
	if !reflect.DeepEqual(a.Trace, b.Trace) {
		t.Errorf("fault traces differ between runs of one seed:\n  run1 %v\n  run2 %v", a.Trace, b.Trace)
	}
	if a.Injected == 0 {
		t.Error("reproducibility vacuous: nothing was injected")
	}
}

// A clean-plan disk soak must see zero faults and zero retries: the
// injector's decision plane is inert when the plan says so.
func TestDiskSoakCleanPlan(t *testing.T) {
	res, err := RunDiskSoak(faults.Plan{Seed: 1}, 2, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if res.Injected != 0 || res.Retries != 0 {
		t.Fatalf("clean plan injected %d faults, %d retries", res.Injected, res.Retries)
	}
}

// The RAM file system is indifferent to every fault regime by
// construction; its workload is the harness's negative control.
func TestBmfsWorkload(t *testing.T) {
	if err := RunBmfsWorkload(8, 4096, 3); err != nil {
		t.Fatal(err)
	}
}
