package soak

// HTTP file serving under chaos (E15): the zero-copy sendfile workload
// — verified GETs through the security wrapper, bodies travelling as
// pinned buffer-cache pages — must answer every request with its body
// CRC intact while the switch fabric corrupts, duplicates and reorders
// frames and the disk under the file system throws errors and tears
// writes.  TCP's recovery and the serving path's op-level ErrIO retry
// are what is on trial; the page-pin ledger and the allocation
// counters are the witnesses.

import (
	"testing"
	"time"

	"oskit/internal/evalrig"
)

func TestHTTPSoakRegimes(t *testing.T) {
	if testing.Short() {
		t.Skip("soak serving runs are slow")
	}
	var cleanSum uint32
	for i, reg := range HTTPRegimes() {
		reg := reg
		port := uint16(5800 + i)
		t.Run(reg.Name, func(t *testing.T) {
			c, err := evalrig.NewCluster(evalrig.OSKit, 3, soakTick, evalrig.Options{
				FastPath: true, DiskSectors: 16384,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer c.Halt()

			// One payload seed across every regime: with all bodies
			// verified, the checksum must match between regimes too.
			opts := evalrig.HTTPOptions{
				Requests: 32, Workers: 2, Files: 3, FileBytes: 20000,
				Seed: 99, Port: port, Probes: true,
			}
			// Format, mount and populate before the regime arms: mkfs
			// has no retry contract (a torn superblock is not a serving
			// failure), and the soak is about the serving path.
			if err := evalrig.PopulateHTTP(c.Server(), opts); err != nil {
				t.Fatal(err)
			}
			in := c.EnableFaults(reg.Plan)
			t.Logf("plan: %s", in.FaultPlan())
			res, err := RunHTTP(c, opts, 120*time.Second)
			if err != nil {
				t.Fatalf("http under %q (reproduce with plan %q): %v",
					reg.Name, in.FaultPlan(), err)
			}
			// Every request must be answered: loss, corruption and disk
			// errors are for TCP and the retry contract to absorb, not
			// to surface as failed requests.
			if res.Failed != 0 || res.Requests != opts.Requests {
				t.Fatalf("http under %q: %d ok, %d failed (plan %q): %v",
					reg.Name, res.Requests, res.Failed, in.FaultPlan(), res.Errors)
			}
			// With every body verified, the checksum is a pure function
			// of the payload seeding — the hostile runs must reproduce
			// the clean run's sum bit for bit.
			if reg.Plan.Active() {
				if in.FaultsInjected() == 0 {
					t.Errorf("regime %q injected nothing", reg.Name)
				}
				if res.CheckSum != cleanSum {
					t.Errorf("hostile checksum %08x differs from clean %08x",
						res.CheckSum, cleanSum)
				}
			} else {
				if in.FaultsInjected() != 0 {
					t.Errorf("clean regime injected %d faults", in.FaultsInjected())
				}
				cleanSum = res.CheckSum
			}
			// No page pin survives the run: retransmissions stretch pin
			// lifetimes, but every transmit completion lands eventually.
			waitPinsDrained(t, c.Server())
			for i, n := range c.Nodes {
				for _, bad := range Imbalances(n) {
					t.Errorf("node %d (%s): %s", i, n.Machine.Name, bad)
				}
			}
		})
	}
}

// waitPinsDrained asserts the server's pinned-page gauge reaches zero:
// the last unpin rides the final transmit completion (or socket
// teardown), which may trail the client's last verified byte by a few
// scheduler beats.
func waitPinsDrained(t *testing.T, srv *evalrig.Node) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		pinned, ok := srv.Stat("netbsd_fs", "bcache.pinned")
		if !ok {
			t.Error("bcache stats not discoverable on the server node")
			return
		}
		if pinned == 0 {
			return
		}
		if time.Now().After(deadline) {
			pins, _ := srv.Stat("netbsd_fs", "bcache.pins")
			unpins, _ := srv.Stat("netbsd_fs", "bcache.unpins")
			t.Errorf("%d buffer-cache pages still pinned after the run (pins=%d unpins=%d)",
				pinned, pins, unpins)
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
}
