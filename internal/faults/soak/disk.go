package soak

import (
	"fmt"
	"hash/crc32"
	"math/rand"

	"oskit/internal/bmfs"
	"oskit/internal/com"
	"oskit/internal/dev"
	"oskit/internal/diskpart"
	"oskit/internal/faults"
	bsdglue "oskit/internal/freebsd/glue"
	"oskit/internal/hw"
	"oskit/internal/kern"
	linuxdev "oskit/internal/linux/dev"
	netbsdfs "oskit/internal/netbsd/fs"
)

// DiskResult is one disk soak's outcome: what the injector did (for
// reproducibility assertions) and how hard the workload had to work.
type DiskResult struct {
	// Injected is the total number of faults fired.
	Injected uint64
	// Trace is the per-point fired-index trace — the run's replayable
	// fault sequence.
	Trace map[string][]uint64
	// Retries counts file-system operations that failed on an injected
	// I/O error and were reattempted.
	Retries int
}

// diskRetryLimit bounds reattempts of one operation.  At the soak
// regimes' error rates the chance of exhausting it is (rate)^limit —
// negligible — so hitting it means the fault plane broke retryability.
const diskRetryLimit = 100

// RunDiskSoak runs an FFS read-write workload over the donor IDE
// driver against a disk injecting errors and torn writes per plan: the
// §4.2.2 component chain (FFS → partition view → IDE → disk) under
// hostile media.  The workload writes `files` files of `payloadLen`
// seed-determined bytes with op-level retries while faults fire, syncs,
// then turns faults off and verifies integrity the hard way: fsck,
// unmount, remount, byte-for-byte compare.  The buffer cache's failure
// contract (failed writeback stays dirty, failed read stays invalid) is
// what makes retries sound; this soak is that contract's proof.
//
// The workload issues disk requests serially, so the injector's
// decision sequence — and therefore the returned Trace — is a pure
// function of the plan.  Two runs of the same plan return identical
// traces, which TestDiskSoakSeedReproducible asserts.
func RunDiskSoak(plan faults.Plan, files, payloadLen int) (*DiskResult, error) {
	res := &DiskResult{}

	m := hw.NewMachine(hw.Config{Name: "disksoak", MemBytes: 32 << 20})
	defer m.Halt()
	disk := hw.NewDisk(16384) // 8 MB
	m.AttachDisk(disk)
	k, err := kern.Setup(m, nil)
	if err != nil {
		return nil, err
	}
	fw := dev.NewFramework(k.Env)
	linuxdev.InitIDE(fw)
	fw.Probe()
	disks := fw.LookupByIID(com.BlkIOIID)
	if len(disks) != 1 {
		return nil, fmt.Errorf("soak: IDE probe found %d disks", len(disks))
	}
	raw := disks[0].(com.BlkIO)
	defer raw.Release()

	if err := diskpart.WriteMBR(raw, []diskpart.MBREntry{
		{Type: diskpart.TypeBSD, StartLBA: 64, Sectors: 16000},
	}); err != nil {
		return nil, err
	}
	if err := diskpart.WriteDisklabel(raw, 64*512, []diskpart.LabelEntry{
		{Offset: 16, Sectors: 15000, FSType: 7},
	}); err != nil {
		return nil, err
	}
	parts, err := diskpart.ReadPartitions(raw)
	if err != nil {
		return nil, err
	}
	var ffsPart diskpart.Partition
	for _, p := range parts {
		if p.Name == "s1a" {
			ffsPart = p
		}
	}
	if ffsPart.Size == 0 {
		return nil, fmt.Errorf("soak: no s1a partition in %+v", parts)
	}
	vol := diskpart.Open(raw, ffsPart)
	defer vol.Release()
	if err := netbsdfs.Mkfs(vol, 0); err != nil {
		return nil, err
	}
	fs, err := netbsdfs.Mount(bsdglue.New(k.Env), vol)
	if err != nil {
		return nil, err
	}

	// Setup is done; from here the media is hostile.  The injector is
	// registered in the machine's registry like any other service, so
	// oskit-stats-style clients would see the regime.
	in := faults.NewInjector(plan)
	defer in.Release()
	k.Env.Registry.Register(com.FaultIID, in)
	k.Env.Registry.Register(com.StatsIID, in.StatsSet())
	disk.SetFaultHook(in.DiskHook("disk"))

	retry := func(what string, op func() error) error {
		for attempt := 0; attempt < diskRetryLimit; attempt++ {
			err := op()
			if err == nil {
				return nil
			}
			if err != com.ErrIO {
				return fmt.Errorf("soak: %s: %w", what, err)
			}
			res.Retries++
		}
		return fmt.Errorf("soak: %s still failing after %d attempts", what, diskRetryLimit)
	}

	// Write phase, faults on.  Content is seed-determined so the verify
	// phase can regenerate it.
	root, err := fs.GetRoot()
	if err != nil {
		return nil, err
	}
	sums := make([]uint32, files)
	for i := 0; i < files; i++ {
		payload := diskPayload(plan.Seed, i, payloadLen)
		sums[i] = crc32.ChecksumIEEE(payload)
		var f com.File
		// Non-exclusive create keeps the retry idempotent: an attempt
		// that failed after entering the directory succeeds as an open
		// on the next try.
		if err := retry("create", func() error {
			var err error
			f, err = root.Create(fileName(i), 0o644, false)
			return err
		}); err != nil {
			root.Release()
			return nil, err
		}
		if err := retry("write", func() error {
			var off uint64
			for off < uint64(len(payload)) {
				n, err := f.WriteAt(payload[off:], off)
				if err != nil {
					return err
				}
				off += uint64(n)
			}
			return nil
		}); err != nil {
			f.Release()
			root.Release()
			return nil, err
		}
		f.Release()
	}
	root.Release()
	// Push the dirty cache through the hostile disk.
	if err := retry("sync", fs.Sync); err != nil {
		return nil, err
	}

	// Verify phase, faults off: the platter must hold exactly what was
	// written, injected errors and torn writes notwithstanding.
	disk.SetFaultHook(nil)
	res.Injected = in.FaultsInjected()
	res.Trace = in.Trace()
	if errs := fs.Fsck(); len(errs) != 0 {
		return nil, fmt.Errorf("soak: fsck after fault run: %v", errs)
	}
	if err := fs.Unmount(); err != nil {
		return nil, err
	}
	fs2, err := netbsdfs.Mount(bsdglue.New(k.Env), vol)
	if err != nil {
		return nil, err
	}
	defer func() { _ = fs2.Unmount() }()
	root2, err := fs2.GetRoot()
	if err != nil {
		return nil, err
	}
	defer root2.Release()
	buf := make([]byte, payloadLen)
	for i := 0; i < files; i++ {
		f, err := root2.Lookup(fileName(i))
		if err != nil {
			return nil, fmt.Errorf("soak: %s lost: %w", fileName(i), err)
		}
		var off uint64
		for off < uint64(payloadLen) {
			n, err := f.ReadAt(buf[off:], off)
			if err != nil || n == 0 {
				f.Release()
				return nil, fmt.Errorf("soak: reread %s at %d: %d, %v", fileName(i), off, n, err)
			}
			off += uint64(n)
		}
		f.Release()
		if got := crc32.ChecksumIEEE(buf); got != sums[i] {
			return nil, fmt.Errorf("soak: %s corrupted: crc %08x, want %08x", fileName(i), got, sums[i])
		}
	}
	return res, nil
}

// RunBmfsWorkload drives the boot-module RAM file system through the
// same write/reread/verify shape as the disk soak.  bmfs has no device
// underneath — the point of running it inside a fault regime is the
// negative space: a RAM file system must be entirely indifferent to
// disk and wire hostility.
func RunBmfsWorkload(files, payloadLen int, seed int64) error {
	fs := bmfs.New(nil)
	defer fs.Release()
	root, err := fs.GetRoot()
	if err != nil {
		return err
	}
	defer root.Release()
	for i := 0; i < files; i++ {
		payload := diskPayload(seed, i, payloadLen)
		f, err := root.Create(fileName(i), 0o644, true)
		if err != nil {
			return err
		}
		if _, err := f.WriteAt(payload, 0); err != nil {
			f.Release()
			return err
		}
		f.Release()
	}
	buf := make([]byte, payloadLen)
	for i := 0; i < files; i++ {
		f, err := root.Lookup(fileName(i))
		if err != nil {
			return err
		}
		n, err := f.ReadAt(buf, 0)
		f.Release()
		if err != nil || int(n) != payloadLen {
			return fmt.Errorf("soak: bmfs reread %s: %d, %v", fileName(i), n, err)
		}
		want := diskPayload(seed, i, payloadLen)
		if crc32.ChecksumIEEE(buf) != crc32.ChecksumIEEE(want) {
			return fmt.Errorf("soak: bmfs %s corrupted", fileName(i))
		}
	}
	return nil
}

func fileName(i int) string { return fmt.Sprintf("soak%03d", i) }

// diskPayload is the seed-determined content of one soak file.
func diskPayload(seed int64, file, n int) []byte {
	rng := rand.New(rand.NewSource(seed + int64(file)*7919))
	b := make([]byte, n)
	rng.Read(b)
	return b
}
