//go:build oskitrefdebug

package soak

// The page-pin ledger regression, run under the oskitrefdebug build:
// serving files zero-copy while the wire forces retransmissions is the
// hardest lifecycle the sendfile export faces — every lost segment
// stretches a pinned page's life past the request that mapped it, and
// every duplicate ACK is a chance to over-release the external mbuf
// holding it.  The refdebug ledger turns any over-release or
// resurrection on the COM objects into a panic, the pin gauge proves
// no page survives the run, and the allocation pairs prove no release
// path went uncounted.  Teardown (Halt: unmount, stack teardown,
// machine halt) runs inside the test so a pin leaked to teardown
// panics here, not in some later rig.

import (
	"testing"
	"time"

	"oskit/internal/evalrig"
	"oskit/internal/faults"
)

func TestHTTPPinLedgerUnderRetransmits(t *testing.T) {
	c, err := evalrig.NewCluster(evalrig.OSKit, 2, soakTick, evalrig.Options{
		FastPath: true, DiskSectors: 16384,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Halt()
	opts := evalrig.HTTPOptions{
		Requests: 24, Workers: 2, Files: 2, FileBytes: 20000,
		Seed: 42, Port: 5900,
	}
	if err := evalrig.PopulateHTTP(c.Server(), opts); err != nil {
		t.Fatal(err)
	}
	// Heavy loss with bursts: nearly every window loses a segment, so
	// pinned pages routinely outlive their request and are re-sent from
	// the retransmit queue's shared ext-mbuf references.
	in := c.EnableFaults(faults.Plan{Seed: 5, WireDrop: 0.15, WireBurst: 2})
	t.Logf("plan: %s", in.FaultPlan())

	res, err := RunHTTP(c, opts, 120*time.Second)
	if err != nil {
		t.Fatalf("http under retransmits (reproduce with plan %q): %v", in.FaultPlan(), err)
	}
	if res.Failed != 0 {
		t.Fatalf("%d of %d requests failed (plan %q): %v",
			res.Failed, res.Failed+res.Requests, in.FaultPlan(), res.Errors)
	}
	if in.FaultsInjected() == 0 {
		t.Fatal("the loss plan injected nothing — the retransmit path was never exercised")
	}
	waitPinsDrained(t, c.Server())
	srv := c.Server()
	pins, _ := srv.Stat("netbsd_fs", "bcache.pins")
	unpins, _ := srv.Stat("netbsd_fs", "bcache.unpins")
	if pins == 0 {
		t.Fatal("no page was ever pinned — the zero-copy path never engaged")
	}
	if pins != unpins {
		t.Errorf("pin ledger imbalanced after drain: pins=%d unpins=%d", pins, unpins)
	}
	for i, n := range c.Nodes {
		for _, bad := range Imbalances(n) {
			t.Errorf("node %d (%s): %s", i, n.Machine.Name, bad)
		}
	}
	// Teardown under the ledger: an over-release on any COM object the
	// serving path touched panics inside Halt.
	c.Halt()
}

// TestSMPMagazineDrainLedger runs connection churn on a 4-CPU
// fast-path cluster — every per-CPU allocation front engaged — and
// tears it down under the refdebug ledger.  The Halt-time magazine
// drain frees every cached block back through the pool and the BSD
// malloc with their user operations already counted; an over-release, a
// double free, or a drain that charged a counter pair twice panics or
// fails here.  This is the E16 ledger contract: after drain, soak sees
// the same balanced totals the global-lock configuration produces.
func TestSMPMagazineDrainLedger(t *testing.T) {
	c, err := evalrig.NewCluster(evalrig.OSKit, 3, soakTick, evalrig.Options{
		FastPath: true, CPUs: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Halt()
	if !c.Server().QP.MagazinesEnabled() {
		t.Fatal("magazines not engaged on the SMP fast-path server")
	}
	res, err := evalrig.ChurnTCP(c, evalrig.ChurnOptions{
		Conns: 96, Workers: 3, ReqBytes: 256, Port: 5901, Seed: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 0 {
		t.Fatalf("%d of %d churn cycles failed: %v", res.Failed, res.Failed+res.Conns, res.Errors)
	}
	if v, _ := c.Server().Stat("quickpool", "qp.magazine_hits"); v == 0 {
		t.Error("magazines never hit during churn — the front was not exercised")
	}
	for i, n := range c.Nodes {
		for _, bad := range Imbalances(n) {
			t.Errorf("node %d (%s): %s", i, n.Machine.Name, bad)
		}
	}
	// Halt inside the test: the per-CPU drains run here, under the
	// refdebug ledger, and the machines power off with every cached
	// block returned.
	c.Halt()
}
