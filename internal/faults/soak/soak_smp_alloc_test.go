package soak

import (
	"reflect"
	"sort"
	"testing"
	"time"

	"oskit/internal/evalrig"
	"oskit/internal/faults"
)

// TestSMPAllocFaultsReplay extends the qp decision-stream
// reproducibility contract to the E16 per-CPU fronts: on a 4-CPU
// fast-path pair the magazine layer serves allocations CPU-locally,
// but every allocation still consumes exactly one decision from the
// injector's stream — consulted through the atomic hook mirror before
// any cache is touched — so the same plan replayed over the same event
// count fires the same decision indices.  Concurrent CPUs can *record*
// their fired indices out of order (the trace append is a separate
// critical section from the index draw), so the comparison is on the
// sorted trace: same set of fired indices, not same append order.
func TestSMPAllocFaultsReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("soak transfers are slow")
	}
	plan := faults.Plan{Seed: 16, WireDrop: 0.05, AllocFailNth: 40, AllocRate: 0.002}
	p, err := evalrig.NewPairOpts(evalrig.OSKit, soakTick, evalrig.Options{FastPath: true, CPUs: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Halt()
	if !p.Sender.QP.MagazinesEnabled() {
		t.Fatal("magazines not engaged on the SMP fast-path sender")
	}
	in := p.EnableFaults(plan)

	if err := RunTTCP(p, 16, 4096, 5662, plan.Seed, 60*time.Second); err != nil {
		t.Logf("transfer failed gracefully under qp alloc faults: %v", err)
	}

	qp := in.Point("qp.send")
	if qp.Events() < 40 {
		t.Fatalf("qp.send decided only %d events", qp.Events())
	}
	if qp.Injected() == 0 {
		t.Error("no faults fired at the qp seam")
	}
	if v, ok := p.Sender.Stat("quickpool", "qp.fails"); !ok || v == 0 {
		t.Errorf("pool counted no injected failures (ok=%v, v=%d)", ok, v)
	}
	if v, _ := p.Sender.Stat("quickpool", "qp.magazine_hits"); v == 0 {
		t.Error("magazines never hit during the faulted run — the front was not exercised")
	}
	for _, n := range []*evalrig.Node{p.Sender, p.Receiver} {
		for _, bad := range Imbalances(n) {
			t.Errorf("%s: %s", n.Machine.Name, bad)
		}
	}

	replay := faults.NewInjector(plan)
	fail := replay.AllocFailFunc("qp.send")
	for i := uint64(0); i < qp.Events(); i++ {
		fail(128)
	}
	got, want := replay.Point("qp.send").Fired(), qp.Fired()
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	if !reflect.DeepEqual(got, want) {
		t.Errorf("qp.send decision stream not reproducible from plan %q:\n  run    %v\n  replay %v",
			in.FaultPlan(), want, got)
	}
	replay.Release()
}
