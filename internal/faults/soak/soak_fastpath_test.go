package soak

import (
	"reflect"
	"testing"
	"time"

	"oskit/internal/evalrig"
	"oskit/internal/faults"
)

// The fast-path soak regime: the opt-in E11 configuration (scatter-
// gather transmit, QuickPool packet allocation) carries the CRC-
// verified transfer through the harness's hostile-wire regime.  The
// fast path removes a copy from the send side, so every corrupted or
// reordered frame now carries bytes the NIC gathered straight out of
// mbuf chains — if the gather path mis-slices a chain, TCP's checksum
// catches it here.  The QuickPool ledger must balance like every other
// allocator's.
func TestFastPathSoakHostileWire(t *testing.T) {
	if testing.Short() {
		t.Skip("soak transfers are slow")
	}
	plan := faults.Plan{
		Seed: 13, WireCorrupt: 0.05, WireDup: 0.05, WireReorder: 0.05,
		NICOverflow: 0.05, TimerJitter: 0.10,
	}
	p, err := evalrig.NewPairOpts(evalrig.OSKit, soakTick, evalrig.Options{FastPath: true})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Halt()
	in := p.EnableFaults(plan)
	t.Logf("plan: %s", in.FaultPlan())

	if err := RunTTCP(p, 32, 4096, 5660, plan.Seed, 120*time.Second); err != nil {
		t.Fatalf("fast-path ttcp (reproduce with plan %q): %v", in.FaultPlan(), err)
	}
	if in.FaultsInjected() == 0 {
		t.Error("hostile-wire regime injected nothing")
	}
	// The run really took the fast path: the pool served packet
	// allocations and the sender left via scatter-gather, not the
	// flatten copy.
	if v, ok := p.Sender.Stat("quickpool", "qp.allocs"); !ok || v == 0 {
		t.Errorf("quickpool served no allocations (ok=%v, v=%d)", ok, v)
	}
	if v, _ := p.Sender.Stat("linux_dev", "xmit.sg"); v == 0 {
		t.Error("no scatter-gather sends on the fast-path sender")
	}
	if v, _ := p.Sender.Stat("linux_dev", "xmit.flattened"); v != 0 {
		t.Errorf("%d flatten copies on the fast-path sender", v)
	}
	// The E12 receive side rode the same hostile regime: the receiver
	// drained its ring through the mitigated poll loop and the stack
	// ingested batches — and the CRC verification above proves the
	// batched path delivered every byte intact despite the injected
	// overruns, corruption and jittered re-arm timer.
	if v, _ := p.Receiver.Stat("linux_dev", "rx.batched-frames"); v == 0 {
		t.Error("no frames drained through the receive poll loop")
	}
	if v, _ := p.Receiver.Stat("linux_dev", "rx.intr-suppressed"); v == 0 {
		t.Error("interrupt mitigation never suppressed an edge on the receiver")
	}
	if v, _ := p.Receiver.Stat("freebsd_net", "ether.rx_batches"); v == 0 {
		t.Error("stack saw no batched deliveries on the receiver")
	}
	for _, n := range []*evalrig.Node{p.Sender, p.Receiver} {
		for _, bad := range Imbalances(n) {
			t.Errorf("%s: %s", n.Machine.Name, bad)
		}
	}
}

// Allocation-failure chaos at the QuickPool seam: the injector fails
// allocations inside the very allocator the fast-path packet code
// draws from (small mbufs, receive skbuffs).  The transfer may fail
// gracefully — an injected exhaustion inside a send can surface as
// ErrNoMem, exactly like real exhaustion — but nothing may crash or
// leak, and the qp decision stream must replay bit-identically from
// the logged plan: the reproducibility contract extended to the new
// injection point.  (Whole-run traces are not comparable across runs —
// ttcp's interleaving is not deterministic — so reproducibility is
// asserted on the decision stream itself: same plan, same point, same
// event count ⇒ same fired indices.)
func TestFastPathAllocFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("soak transfers are slow")
	}
	plan := faults.Plan{Seed: 14, WireDrop: 0.05, AllocFailNth: 40, AllocRate: 0.002}
	p, err := evalrig.NewPairOpts(evalrig.OSKit, soakTick, evalrig.Options{FastPath: true})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Halt()
	in := p.EnableFaults(plan)

	if err := RunTTCP(p, 16, 4096, 5661, plan.Seed, 60*time.Second); err != nil {
		t.Logf("transfer failed gracefully under qp alloc faults: %v", err)
	}

	// The qp seam was exercised and fired (alloc.nth=40 is guaranteed
	// once the sender's pool has decided 40 allocations, which a
	// 16-block transfer always reaches).
	qp := in.Point("qp.send")
	if qp.Events() < 40 {
		t.Fatalf("qp.send decided only %d events", qp.Events())
	}
	if qp.Injected() == 0 {
		t.Error("no faults fired at the qp seam")
	}
	if v, ok := p.Sender.Stat("quickpool", "qp.fails"); !ok || v == 0 {
		t.Errorf("pool counted no injected failures (ok=%v, v=%d)", ok, v)
	}
	for _, n := range []*evalrig.Node{p.Sender, p.Receiver} {
		for _, bad := range Imbalances(n) {
			t.Errorf("%s: %s", n.Machine.Name, bad)
		}
	}

	// Seed-reproducibility of the qp decision stream: replay the same
	// number of events through a fresh injector built from the same
	// plan and require the identical fired-index trace.
	replay := faults.NewInjector(plan)
	fail := replay.AllocFailFunc("qp.send")
	for i := uint64(0); i < qp.Events(); i++ {
		fail(128)
	}
	if got, want := replay.Point("qp.send").Fired(), qp.Fired(); !reflect.DeepEqual(got, want) {
		t.Errorf("qp.send decision stream not reproducible from plan %q:\n  run    %v\n  replay %v",
			in.FaultPlan(), want, got)
	}
	replay.Release()
}
