// Package soak is the chaos/soak harness over the fault-injection
// plane: it runs the paper's evaluation workloads — the Table-1 ttcp
// transfer and an FFS-over-IDE read-write job — to completion under
// hostile fault regimes, and supplies the invariants every such run is
// checked against (end-to-end data integrity, balanced allocation
// counters, reproducibility of the fault sequence from its seed).
//
// The harness is deliberately thin: regimes are just named Plans, the
// workloads are the evalrig's own, and the assertions read the same
// com.Stats counters any client of the kit reads.  A failing soak logs
// only its plan string; re-running with that string replays the
// identical fault sequence (see internal/faults).
package soak

import (
	"fmt"
	"time"

	"oskit/internal/evalrig"
	"oskit/internal/faults"
)

// Regime is one named fault plan.
type Regime struct {
	Name string
	Plan faults.Plan
}

// TTCPRegimes are the fault regimes the ttcp soak runs under.  Each
// must let the transfer complete with the byte stream intact: TCP's
// checksums and retransmission are what is on trial.
//
//   - clean: no faults; the control run.
//   - loss-burst-diskerr: 20% burst frame loss plus a disk-error/torn-
//     write rate (the acceptance regime; the disk knobs drive the disk
//     soak and are inert on a diskless rig).
//   - hostile-wire: corruption, duplication, reordering, receive-ring
//     overruns and clock jitter together.
func TTCPRegimes() []Regime {
	return []Regime{
		{Name: "clean", Plan: faults.Plan{Seed: 1}},
		{Name: "loss-burst-diskerr", Plan: faults.Plan{
			Seed: 2, WireDrop: 0.20, WireBurst: 4, DiskErr: 0.05, DiskTorn: 0.02}},
		{Name: "hostile-wire", Plan: faults.Plan{
			Seed: 3, WireCorrupt: 0.05, WireDup: 0.05, WireReorder: 0.05,
			NICOverflow: 0.05, TimerJitter: 0.10}},
	}
}

// RunTTCP drives the checksummed Table-1 transfer under whatever faults
// are already enabled on the pair, with a watchdog: a transfer that a
// fault regime wedges (rather than merely slows) fails loudly instead
// of hanging the suite.  On success the two CRC-32 sums are equal by
// construction of the return, so callers assert err == nil.
func RunTTCP(p *evalrig.Pair, blocks, blockSize int, port uint16, seed int64, timeout time.Duration) error {
	type out struct {
		sent, recvd uint32
		err         error
	}
	done := make(chan out, 1)
	go func() {
		s, r, err := evalrig.TTCPVerified(p, blocks, blockSize, port, seed)
		done <- out{s, r, err}
	}()
	select {
	case o := <-done:
		if o.err != nil {
			return o.err
		}
		if o.sent != o.recvd {
			return fmt.Errorf("soak: checksum mismatch: sent %08x, received %08x", o.sent, o.recvd)
		}
		return nil
	//oskit:allow detsource -- hang watchdog only; fires after the workload is already wedged, never on a decision path
	case <-time.After(timeout):
		return fmt.Errorf("soak: ttcp did not complete within %v", timeout)
	}
}

// ChurnRegimes are the fault regimes the cluster connection-churn soak
// runs under.  Churn multiplies the *handshake and teardown* count
// rather than the byte count, so a hostile wire here stresses SYN
// retransmission, FIN recovery, and TIME_WAIT recycling instead of the
// bulk-transfer window.
func ChurnRegimes() []Regime {
	return []Regime{
		{Name: "clean", Plan: faults.Plan{Seed: 1}},
		{Name: "hostile-wire", Plan: faults.Plan{
			Seed: 3, WireCorrupt: 0.05, WireDup: 0.05, WireReorder: 0.05,
			NICOverflow: 0.05, TimerJitter: 0.10}},
	}
}

// RunClusterChurn drives the E13 connection churn on a switched cluster
// under whatever faults are already enabled, with the same hang
// watchdog as the ttcp soak: a regime that wedges the churn fails
// loudly instead of hanging the suite.
func RunClusterChurn(c *evalrig.Cluster, opts evalrig.ChurnOptions, timeout time.Duration) (evalrig.ChurnResult, error) {
	type out struct {
		res evalrig.ChurnResult
		err error
	}
	done := make(chan out, 1)
	go func() {
		r, err := evalrig.ChurnTCP(c, opts)
		done <- out{r, err}
	}()
	select {
	case o := <-done:
		return o.res, o.err
	//oskit:allow detsource -- hang watchdog only; fires after the workload is already wedged, never on a decision path
	case <-time.After(timeout):
		return evalrig.ChurnResult{}, fmt.Errorf("soak: churn did not complete within %v", timeout)
	}
}

// HTTPRegimes are the fault regimes the HTTP file-serving soak (E15)
// runs under.  File serving stacks a second fault surface on top of the
// wire: the disk under the buffer cache, whose injected errors the
// serving path must absorb through its op-level retry contract while
// the zero-copy machinery keeps pages pinned across retransmissions.
//
//   - clean: no faults; the control run.
//   - hostile-wire: corruption, duplication, reordering, ring overruns
//     and clock jitter — every retransmission stretches the life of the
//     pinned pages riding the lost segments.
//   - loss-burst-diskerr: burst frame loss on the wire plus disk
//     errors and torn writes under the file system (the acceptance
//     regime for the serving path's two-sided retry story).
func HTTPRegimes() []Regime {
	return []Regime{
		{Name: "clean", Plan: faults.Plan{Seed: 1}},
		{Name: "hostile-wire", Plan: faults.Plan{
			Seed: 3, WireCorrupt: 0.05, WireDup: 0.05, WireReorder: 0.05,
			NICOverflow: 0.05, TimerJitter: 0.10}},
		{Name: "loss-burst-diskerr", Plan: faults.Plan{
			Seed: 2, WireDrop: 0.10, WireBurst: 3, DiskErr: 0.05, DiskTorn: 0.02}},
	}
}

// RunHTTP drives the E15 HTTP file-serving workload on a cluster under
// whatever faults are already enabled, with the same hang watchdog as
// the other soaks: a regime that wedges the workload fails loudly
// instead of hanging the suite.
func RunHTTP(c *evalrig.Cluster, opts evalrig.HTTPOptions, timeout time.Duration) (evalrig.HTTPResult, error) {
	type out struct {
		res evalrig.HTTPResult
		err error
	}
	done := make(chan out, 1)
	go func() {
		r, err := evalrig.HTTPGet(c, opts)
		done <- out{r, err}
	}()
	select {
	case o := <-done:
		return o.res, o.err
	//oskit:allow detsource -- hang watchdog only; fires after the workload is already wedged, never on a decision path
	case <-time.After(timeout):
		return evalrig.HTTPResult{}, fmt.Errorf("soak: http workload did not complete within %v", timeout)
	}
}

// AllocPair names one alloc/free counter pair in one stats set.
type AllocPair struct {
	Set, Alloc, Free string
}

// AllocPairs are the kit's allocation counter pairs: mbufs and mbuf
// clusters (freebsd_net), BSD kernel malloc (bsd_malloc), the kernel
// arena (kern), the Linux driver glue's kmalloc (linux_dev), and the
// QuickPool allocator service of the fast-path configuration
// (quickpool; its stats set exists only on fast-path nodes, so the
// pair is skipped everywhere else), and the buffer-cache page pins of
// the zero-copy sendfile path (netbsd_fs; only on nodes that mounted a
// file system).  For pins the invariant reads: every unpin matches a
// pin, so a transmit completion can never release a page the sendfile
// export didn't pin.
func AllocPairs() []AllocPair {
	return []AllocPair{
		{"freebsd_net", "mbuf.allocs", "mbuf.frees"},
		{"freebsd_net", "mbuf.cluster_allocs", "mbuf.cluster_frees"},
		{"bsd_malloc", "malloc.allocs", "malloc.frees"},
		{"kern", "lmm.allocs", "lmm.frees"},
		{"linux_dev", "kmalloc.allocs", "kmalloc.frees"},
		{"quickpool", "qp.allocs", "qp.frees"},
		{"netbsd_fs", "bcache.pins", "bcache.unpins"},
	}
}

// Imbalances checks every allocation counter pair present on the node
// and reports violations of the balance invariant: every release path
// is counted, so frees can never lead allocs — not even after a fault
// regime has failed allocations and error paths have torn down
// half-built chains.  Pairs whose stats set the configuration does not
// register are skipped; a node that exposes none of them is reported,
// since that means the check looked at nothing.
func Imbalances(n *evalrig.Node) []string {
	var bad []string
	checked := 0
	for _, p := range AllocPairs() {
		allocs, ok1 := n.Stat(p.Set, p.Alloc)
		frees, ok2 := n.Stat(p.Set, p.Free)
		if !ok1 || !ok2 {
			continue
		}
		checked++
		if frees > allocs {
			bad = append(bad, fmt.Sprintf("%s: %s = %d > %s = %d",
				p.Set, p.Free, frees, p.Alloc, allocs))
		}
	}
	if checked == 0 {
		bad = append(bad, "no allocation counter pairs discoverable on the node")
	}
	return bad
}
