package soak

// Cluster churn under chaos: the E13 workload — many short connections
// from a generator pool at one server — must complete every cycle with
// its echo verified even while the switch fabric corrupts, duplicates
// and reorders frames, receive rings overflow, and clocks jitter.  TCP's
// handshake retransmission and teardown recovery are what is on trial;
// connection-count accounting and the allocation ledgers are the
// witnesses.

import (
	"testing"
	"time"

	"oskit/internal/evalrig"
)

func TestClusterChurnSoakRegimes(t *testing.T) {
	if testing.Short() {
		t.Skip("soak churns are slow")
	}
	var cleanSum uint32
	for i, reg := range ChurnRegimes() {
		reg := reg
		port := uint16(5700 + i)
		t.Run(reg.Name, func(t *testing.T) {
			c, err := evalrig.NewCluster(evalrig.OSKit, 4, soakTick, evalrig.Options{})
			if err != nil {
				t.Fatal(err)
			}
			defer c.Halt()
			in := c.EnableFaults(reg.Plan)
			t.Logf("plan: %s", in.FaultPlan())

			// One payload seed across every regime: with all cycles
			// completing, the checksum must match between regimes too.
			opts := evalrig.ChurnOptions{
				Conns: 32, Workers: 2, ReqBytes: 128, Port: port, Seed: 99,
			}
			res, err := RunClusterChurn(c, opts, 120*time.Second)
			if err != nil {
				t.Fatalf("churn under %q (reproduce with plan %q): %v",
					reg.Name, in.FaultPlan(), err)
			}
			// Every cycle must complete: loss and corruption are for TCP
			// to absorb, not to surface as failed connections.
			if res.Failed != 0 || res.Conns != opts.Conns {
				t.Fatalf("churn under %q: %d ok, %d failed (plan %q): %v",
					reg.Name, res.Conns, res.Failed, in.FaultPlan(), res.Errors)
			}
			// With all cycles completed, the verification checksum is a
			// pure function of the payload seeding — the hostile run must
			// reproduce the clean run's sum bit for bit.
			if reg.Plan.Active() {
				if in.FaultsInjected() == 0 {
					t.Errorf("regime %q injected nothing", reg.Name)
				}
				if res.CheckSum != cleanSum {
					t.Errorf("hostile checksum %08x differs from clean %08x",
						res.CheckSum, cleanSum)
				}
			} else {
				if in.FaultsInjected() != 0 {
					t.Errorf("clean regime injected %d faults", in.FaultsInjected())
				}
				cleanSum = res.CheckSum
			}
			for i, n := range c.Nodes {
				for _, bad := range Imbalances(n) {
					t.Errorf("node %d (%s): %s", i, n.Machine.Name, bad)
				}
			}
		})
	}
}
