package faults

import (
	"fmt"
	"strconv"
	"strings"
)

// Plan describes one fault regime: which hostile behaviours are active
// and at what intensity, plus the seed every injection decision derives
// from.  The zero value (with any seed) injects nothing.
//
// Plans have a textual form — space-separated "key=value" pairs, e.g.
//
//	seed=42 wire.drop=0.2 wire.burst=4 disk.err=0.01
//
// that String renders and ParsePlan reads back, so a soak failure is
// reproduced by pasting one logged line into a flag.  Rates are
// probabilities in [0,1] decided per event; alloc.nth is a schedule
// (fail exactly the Nth allocation); alloc.pressure is a threshold
// (fail every allocation once live bytes exceed it).
type Plan struct {
	// Seed drives every injection decision.  Two runs of the same
	// workload under the same plan see the same fault sequence.
	Seed int64

	// WireDrop is the per-frame drop probability; when a drop fires,
	// WireBurst-1 following frames are dropped too (burst loss).
	WireDrop  float64
	WireBurst int

	// WireCorrupt flips one payload byte per faulted frame; WireDup
	// delivers the frame twice; WireReorder swaps it with the next
	// frame on the wire.
	WireCorrupt float64
	WireDup     float64
	WireReorder float64

	// NICOverflow drops an inbound frame at the receive ring as an
	// overrun would, per-frame.
	NICOverflow float64

	// DiskErr fails a request with ErrInjected; DiskTorn fails a write
	// after a prefix of its sectors reached the media (torn write).
	DiskErr  float64
	DiskTorn float64

	// TimerJitter suppresses a clock tick (lost timer interrupt).
	TimerJitter float64

	// AllocRate fails an allocation per-event; AllocFailNth fails
	// exactly the Nth (1-based) allocation a point sees; AllocPressure
	// fails every allocation while live bytes exceed the threshold.
	AllocRate     float64
	AllocFailNth  uint64
	AllocPressure uint64
}

// Active reports whether the plan injects anything at all.
func (p Plan) Active() bool {
	return p.WireDrop > 0 || p.WireCorrupt > 0 || p.WireDup > 0 ||
		p.WireReorder > 0 || p.NICOverflow > 0 || p.DiskErr > 0 ||
		p.DiskTorn > 0 || p.TimerJitter > 0 || p.AllocRate > 0 ||
		p.AllocFailNth > 0 || p.AllocPressure > 0
}

// String renders the plan in its textual form: the seed first, then
// every active knob, in a fixed order.  ParsePlan(p.String()) == p.
func (p Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "seed=%d", p.Seed)
	rate := func(key string, v float64) {
		if v != 0 {
			b.WriteByte(' ')
			b.WriteString(key)
			b.WriteByte('=')
			b.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
		}
	}
	uint_ := func(key string, v uint64) {
		if v != 0 {
			fmt.Fprintf(&b, " %s=%d", key, v)
		}
	}
	rate("wire.drop", p.WireDrop)
	uint_("wire.burst", uint64(p.WireBurst))
	rate("wire.corrupt", p.WireCorrupt)
	rate("wire.dup", p.WireDup)
	rate("wire.reorder", p.WireReorder)
	rate("nic.overflow", p.NICOverflow)
	rate("disk.err", p.DiskErr)
	rate("disk.torn", p.DiskTorn)
	rate("timer.jitter", p.TimerJitter)
	rate("alloc.rate", p.AllocRate)
	uint_("alloc.nth", p.AllocFailNth)
	uint_("alloc.pressure", p.AllocPressure)
	return b.String()
}

// ParsePlan reads the textual plan form.  Pairs may be separated by
// spaces or commas; unknown keys and malformed values are errors, so a
// typo in a flag fails loudly instead of running the wrong regime.
func ParsePlan(s string) (Plan, error) {
	var p Plan
	fields := strings.FieldsFunc(s, func(r rune) bool {
		return r == ' ' || r == '\t' || r == ','
	})
	for _, f := range fields {
		key, val, ok := strings.Cut(f, "=")
		if !ok {
			return Plan{}, fmt.Errorf("faults: plan field %q is not key=value", f)
		}
		var err error
		switch key {
		case "seed":
			p.Seed, err = strconv.ParseInt(val, 10, 64)
		case "wire.drop":
			p.WireDrop, err = parseRate(val)
		case "wire.burst":
			var n uint64
			n, err = strconv.ParseUint(val, 10, 31)
			p.WireBurst = int(n)
		case "wire.corrupt":
			p.WireCorrupt, err = parseRate(val)
		case "wire.dup":
			p.WireDup, err = parseRate(val)
		case "wire.reorder":
			p.WireReorder, err = parseRate(val)
		case "nic.overflow":
			p.NICOverflow, err = parseRate(val)
		case "disk.err":
			p.DiskErr, err = parseRate(val)
		case "disk.torn":
			p.DiskTorn, err = parseRate(val)
		case "timer.jitter":
			p.TimerJitter, err = parseRate(val)
		case "alloc.rate":
			p.AllocRate, err = parseRate(val)
		case "alloc.nth":
			p.AllocFailNth, err = strconv.ParseUint(val, 10, 64)
		case "alloc.pressure":
			p.AllocPressure, err = strconv.ParseUint(val, 10, 64)
		default:
			return Plan{}, fmt.Errorf("faults: unknown plan key %q", key)
		}
		if err != nil {
			return Plan{}, fmt.Errorf("faults: plan value %s=%q: %v", key, val, err)
		}
	}
	return p, nil
}

func parseRate(val string) (float64, error) {
	v, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return 0, err
	}
	if v < 0 || v > 1 {
		return 0, fmt.Errorf("rate outside [0,1]")
	}
	return v, nil
}
