package faults

import (
	"sync/atomic"

	"oskit/internal/core"
	"oskit/internal/hw"
)

// This file turns a Plan into the concrete hooks the simulated hardware
// and the kit's memory services accept.  Each factory binds a set of
// injection points once; the returned hook is then a pure consumer of
// those points' decision streams.

// WireHook builds the frame-fault hook for an Ethernet segment,
// covering burst loss, corruption, duplication and reordering.  The
// wire serializes hook calls (one frame at a time), so the burst state
// needs no lock of its own.
func (in *Injector) WireHook() hw.WireFaultHook {
	plan := in.plan
	drop := in.Point("wire.drop")
	corrupt := in.Point("wire.corrupt")
	dup := in.Point("wire.dup")
	reorder := in.Point("wire.reorder")
	// wire.drop is the long-run fraction of frames lost; wire.burst only
	// clusters those losses into runs.  A burst of b frames therefore
	// *starts* with probability rate/b, keeping "20% burst loss" at 20%
	// of frames rather than 20% of burst opportunities.
	startRate := plan.WireDrop
	if plan.WireBurst > 1 {
		startRate /= float64(plan.WireBurst)
	}
	burstLeft := 0
	return func(frameLen int) hw.WireFault {
		var f hw.WireFault
		if burstLeft > 0 {
			// Continuation of a burst begun below: the drop is
			// unconditional but still charged to the point, so traces
			// and counters see every lost frame.
			burstLeft--
			drop.FireNext()
			f.Drop = true
			return f
		}
		if fired, _ := drop.Roll(startRate); fired {
			if plan.WireBurst > 1 {
				burstLeft = plan.WireBurst - 1
			}
			f.Drop = true
			return f
		}
		if fired, h := corrupt.Roll(plan.WireCorrupt); fired {
			f.Corrupt = true
			// The same hash that fired the fault picks the byte, so the
			// corruption position replays with the decision.
			f.CorruptOff = int(h % uint64(frameLen))
		}
		if fired, _ := dup.Roll(plan.WireDup); fired {
			f.Duplicate = true
		}
		if fired, _ := reorder.Roll(plan.WireReorder); fired {
			f.Reorder = true
		}
		return f
	}
}

// NICRxHook builds a receive-ring overrun hook for one NIC; name keeps
// the two rig nodes' NICs on distinct decision streams (for example
// "nic.rx.send" and "nic.rx.recv").
func (in *Injector) NICRxHook(name string) func() bool {
	plan := in.plan
	p := in.Point(name)
	return func() bool {
		fired, _ := p.Roll(plan.NICOverflow)
		return fired
	}
}

// DiskHook builds the media-fault hook for one disk.  Torn writes are
// decided first (they are the more specific fault); a torn write
// transfers a hash-chosen strict prefix of the request's sectors and
// then fails it with ErrInjected.
func (in *Injector) DiskHook(name string) hw.DiskFaultHook {
	plan := in.plan
	errPt := in.Point(name + ".err")
	tornPt := in.Point(name + ".torn")
	return func(write bool, sector, count uint32) hw.DiskFault {
		if write {
			if fired, h := tornPt.Roll(plan.DiskTorn); fired {
				var torn uint32
				if count > 1 {
					torn = 1 + uint32(h%uint64(count-1))
				}
				return hw.DiskFault{Err: ErrInjected, TornSectors: torn}
			}
		}
		if fired, _ := errPt.Roll(plan.DiskErr); fired {
			return hw.DiskFault{Err: ErrInjected}
		}
		return hw.DiskFault{}
	}
}

// TimerHook builds the clock-jitter hook for one machine's timer.
func (in *Injector) TimerHook(name string) hw.TickFaultHook {
	plan := in.plan
	p := in.Point(name)
	return func(tick uint64) bool {
		fired, _ := p.Roll(plan.TimerJitter)
		return fired
	}
}

// AllocFailFunc builds an allocation-failure decision for one
// allocator (the LMM arena, the BSD kernel malloc, the Linux kmalloc
// buckets): rate-based plus the fail-the-Nth schedule.  The Nth is
// 1-based and per-point, so "alloc.nth=3" fails the third allocation
// each named allocator attempts.
func (in *Injector) AllocFailFunc(name string) func(size uint32) bool {
	plan := in.plan
	p := in.Point(name)
	return func(size uint32) bool {
		idx := p.next()
		if plan.AllocFailNth != 0 && idx+1 == plan.AllocFailNth {
			p.fire(idx)
			return true
		}
		if plan.AllocRate > 0 && hashBelow(mix(p.seed, idx), plan.AllocRate) {
			p.fire(idx)
			return true
		}
		return false
	}
}

// WrapAlloc interposes the injector on an environment's memory service
// — the paper's overridable-functions pattern (§4.2.1) pointed at
// hostility: every component drawing pages through env.MemAlloc (the
// LMM default, BSD malloc refill, Linux kmalloc buckets) sees injected
// failure without knowing the injector exists.  Beyond AllocFailFunc's
// rate and Nth schedules it enforces alloc.pressure: once live bytes
// (allocs minus frees through this seam) exceed the threshold, every
// further allocation fails until frees bring the level back down.
// Call after boot, so setup cannot be failed mid-construction.
func (in *Injector) WrapAlloc(env *core.Env, name string) {
	plan := in.plan
	p := in.Point(name)
	var live atomic.Int64
	origAlloc, origFree := env.MemAlloc, env.MemFree
	env.MemAlloc = func(size uint32, flags core.MemFlags, align uint32) (hw.PhysAddr, []byte, bool) {
		idx := p.next()
		fired := plan.AllocFailNth != 0 && idx+1 == plan.AllocFailNth
		if !fired && plan.AllocPressure != 0 && live.Load() >= int64(plan.AllocPressure) {
			fired = true
		}
		if !fired && plan.AllocRate > 0 && hashBelow(mix(p.seed, idx), plan.AllocRate) {
			fired = true
		}
		if fired {
			p.fire(idx)
			return 0, nil, false
		}
		addr, buf, ok := origAlloc(size, flags, align)
		if ok {
			live.Add(int64(size))
		}
		return addr, buf, ok
	}
	env.MemFree = func(addr hw.PhysAddr, size uint32) {
		live.Add(-int64(size))
		origFree(addr, size)
	}
}
