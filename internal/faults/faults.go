// Package faults is the kit's deterministic fault-injection plane.
//
// The paper's claim is that unmodified donor code keeps working when
// re-hosted on thin glue, but its evaluation (§5) only ever drives the
// happy path of the hardware.  This package supplies the hostile half:
// disk I/O errors and torn writes, frame corruption, duplication,
// reordering and burst loss on the Ethernet segment, NIC ring overruns,
// clock jitter, and allocation failure in the kit's memory services —
// every fault described by one Plan and reproducible from one seed.
//
// Determinism is the design center.  An injection decision is a pure
// function of (seed, injection point, event index): the hash of the
// point's seeded stream at the index of the event being decided.  No
// shared RNG is consumed, so concurrent injection points cannot steal
// each other's randomness, and a workload that presents the same event
// sequence to a point sees the identical fault sequence on every run —
// which is what lets a soak test log nothing but its seed and still be
// replayed exactly.
//
// Every injected fault is counted in a com.Stats set ("faults", rows
// "<point>.events" / "<point>.injected"), and the injector itself is a
// COM object answering for com.FaultIID, so rigs and examples discover
// the active plan through the services registry (§4.2.2) exactly the
// way they discover statistics.
package faults

import (
	"errors"
	"sort"
	"sync"
	"sync/atomic"

	"oskit/internal/com"
	"oskit/internal/stats"
)

// ErrInjected is the error carried by injected I/O failures, so tests
// and retry loops can tell deliberate hostility from real bugs.
var ErrInjected = errors.New("faults: injected I/O error")

// traceCap bounds each point's fired-index trace; soak runs inject far
// fewer faults than this, and the cap keeps a pathological plan from
// turning the trace into a leak.
const traceCap = 8192

// Injector executes one Plan.  It hands out injection points (named,
// independently seeded decision streams) and implements
// com.FaultInjector for registry discovery.
type Injector struct {
	com.RefCount
	plan Plan

	set     *stats.Set
	scTotal *stats.Counter
	total   atomic.Uint64

	mu     sync.Mutex
	points map[string]*Point
}

// NewInjector builds an injector for plan.  The caller owns one
// reference (COM rules).
func NewInjector(plan Plan) *Injector {
	in := &Injector{
		plan:   plan,
		set:    stats.NewSet("faults"),
		points: map[string]*Point{},
	}
	in.scTotal = in.set.Counter("injected.total")
	in.Init()
	return in
}

// Plan returns the plan the injector executes.
func (in *Injector) Plan() Plan { return in.plan }

// StatsSet returns the injector's com.Stats export; register it under
// com.StatsIID next to the injector's own com.FaultIID registration.
func (in *Injector) StatsSet() *stats.Set { return in.set }

// QueryInterface implements com.IUnknown.
func (in *Injector) QueryInterface(iid com.GUID) (com.IUnknown, error) {
	switch iid {
	case com.UnknownIID, com.FaultIID:
		in.AddRef()
		return in, nil
	}
	return nil, com.ErrNoInterface
}

// FaultPlan implements com.FaultInjector.
func (in *Injector) FaultPlan() string { return in.plan.String() }

// FaultSeed implements com.FaultInjector.
func (in *Injector) FaultSeed() int64 { return in.plan.Seed }

// FaultsInjected implements com.FaultInjector.
func (in *Injector) FaultsInjected() uint64 { return in.total.Load() }

// Point returns the named injection point, creating it on first use.
// Idempotent: call sites sharing a name share one decision stream.
func (in *Injector) Point(name string) *Point {
	in.mu.Lock()
	defer in.mu.Unlock()
	if p, ok := in.points[name]; ok {
		return p
	}
	p := &Point{
		name:       name,
		seed:       pointSeed(in.plan.Seed, name),
		in:         in,
		scEvents:   in.set.Counter(name + ".events"),
		scInjected: in.set.Counter(name + ".injected"),
	}
	in.points[name] = p
	return p
}

// Trace returns, per point, the event indices at which faults fired so
// far (capped at traceCap each) — the replayable fault sequence a soak
// test compares across two runs of the same seed.
func (in *Injector) Trace() map[string][]uint64 {
	in.mu.Lock()
	names := make([]*Point, 0, len(in.points))
	for _, p := range in.points {
		names = append(names, p)
	}
	in.mu.Unlock()
	// Point order must not depend on map iteration: the trace is
	// compared across runs of the same seed (detsource).
	sort.Slice(names, func(i, j int) bool { return names[i].name < names[j].name })
	out := make(map[string][]uint64, len(names))
	for _, p := range names {
		out[p.name] = p.Fired()
	}
	return out
}

// Point is one named injection point: an event counter plus a seeded,
// index-addressed decision stream.  Updates are one atomic plus (on
// fire) one short mutex section, so points sit on interrupt-level hot
// paths the way stats counters do.
type Point struct {
	name string
	seed uint64
	in   *Injector

	events     atomic.Uint64
	injected   atomic.Uint64
	scEvents   *stats.Counter
	scInjected *stats.Counter

	mu    sync.Mutex
	fired []uint64
}

// Name returns the point's name.
func (p *Point) Name() string { return p.name }

// Events reports how many events the point has decided.
func (p *Point) Events() uint64 { return p.events.Load() }

// Injected reports how many of them it faulted.
func (p *Point) Injected() uint64 { return p.injected.Load() }

// Fired returns a copy of the fired-index trace.
func (p *Point) Fired() []uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]uint64(nil), p.fired...)
}

// Roll decides one event against rate, returning whether the fault
// fires plus the event's hash (for deriving secondary parameters such
// as a corruption offset — same seed, same index, same parameters).
func (p *Point) Roll(rate float64) (fired bool, h uint64) {
	idx := p.next()
	h = mix(p.seed, idx)
	if rate > 0 && hashBelow(h, rate) {
		p.fire(idx)
		return true, h
	}
	return false, h
}

// FireNext unconditionally faults the next event — burst-loss
// continuations and schedule hits.
func (p *Point) FireNext() {
	p.fire(p.next())
}

// next consumes one event index.
func (p *Point) next() uint64 {
	p.scEvents.Inc()
	return p.events.Add(1) - 1
}

// fire records an injected fault at idx.
func (p *Point) fire(idx uint64) {
	p.injected.Add(1)
	p.scInjected.Inc()
	p.in.total.Add(1)
	p.in.scTotal.Inc()
	p.mu.Lock()
	if len(p.fired) < traceCap {
		p.fired = append(p.fired, idx)
	}
	p.mu.Unlock()
}

// --- the decision function.

// mix is a splitmix64-style finalizer over (seed, index): the entire
// source of randomness, consumed positionally so streams never
// interfere.
func mix(seed, idx uint64) uint64 {
	x := seed ^ (idx+1)*0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// hashBelow maps h onto [0,1) with 53-bit resolution and compares.
func hashBelow(h uint64, rate float64) bool {
	return float64(h>>11)*(1.0/(1<<53)) < rate
}

// pointSeed derives a point's stream seed from the plan seed and the
// point's name (FNV-1a), so renaming or adding points never perturbs
// the streams of the others.
func pointSeed(seed int64, name string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return mix(uint64(seed), h)
}

var _ com.FaultInjector = (*Injector)(nil)
