package faults

import (
	"errors"
	"reflect"
	"testing"

	"oskit/internal/com"
	"oskit/internal/hw"
	"oskit/internal/stats"
)

// Two injectors on the same plan must make identical decisions for
// identical event sequences — the property every soak replay rests on.
func TestDecisionsDeterministic(t *testing.T) {
	plan := Plan{Seed: 42, WireDrop: 0.2, DiskErr: 0.1, DiskTorn: 0.05}
	run := func() ([]bool, []uint64) {
		in := NewInjector(plan)
		defer in.Release()
		p := in.Point("wire.drop")
		var decisions []bool
		for i := 0; i < 500; i++ {
			fired, _ := p.Roll(plan.WireDrop)
			decisions = append(decisions, fired)
		}
		return decisions, p.Fired()
	}
	d1, t1 := run()
	d2, t2 := run()
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatalf("decision %d differs between runs: %v vs %v", i, d1[i], d2[i])
		}
	}
	if len(t1) != len(t2) {
		t.Fatalf("trace lengths differ: %d vs %d", len(t1), len(t2))
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatalf("trace index %d differs: %d vs %d", i, t1[i], t2[i])
		}
	}
	if len(t1) == 0 {
		t.Fatal("20% drop over 500 events fired nothing")
	}
}

// Different seeds must give different fault sequences, and distinct
// points under one seed must have independent streams.
func TestStreamsIndependent(t *testing.T) {
	a := NewInjector(Plan{Seed: 1, WireDrop: 0.5})
	b := NewInjector(Plan{Seed: 2, WireDrop: 0.5})
	defer a.Release()
	defer b.Release()
	same := 0
	const n = 256
	for i := 0; i < n; i++ {
		fa, _ := a.Point("wire.drop").Roll(0.5)
		fb, _ := b.Point("wire.drop").Roll(0.5)
		if fa == fb {
			same++
		}
	}
	if same == n {
		t.Fatal("seeds 1 and 2 produced identical decision streams")
	}
	// Two points of one injector: same seed, different names.
	c := NewInjector(Plan{Seed: 7})
	defer c.Release()
	same = 0
	for i := 0; i < n; i++ {
		f1, _ := c.Point("x").Roll(0.5)
		f2, _ := c.Point("y").Roll(0.5)
		if f1 == f2 {
			same++
		}
	}
	if same == n {
		t.Fatal("points x and y share one decision stream")
	}
}

func TestRollRateZeroNeverFires(t *testing.T) {
	in := NewInjector(Plan{Seed: 3})
	defer in.Release()
	p := in.Point("quiet")
	for i := 0; i < 1000; i++ {
		if fired, _ := p.Roll(0); fired {
			t.Fatal("rate 0 fired")
		}
	}
	if p.Events() != 1000 || p.Injected() != 0 {
		t.Fatalf("events=%d injected=%d, want 1000/0", p.Events(), p.Injected())
	}
}

func TestPlanStringRoundTrip(t *testing.T) {
	plans := []Plan{
		{Seed: 42},
		{Seed: -7, WireDrop: 0.2, WireBurst: 4, DiskErr: 0.01},
		{Seed: 1, WireCorrupt: 0.125, WireDup: 0.5, WireReorder: 0.0625,
			NICOverflow: 0.03125, DiskTorn: 0.25, TimerJitter: 0.1,
			AllocRate: 0.015625, AllocFailNth: 3, AllocPressure: 1 << 20},
	}
	for _, p := range plans {
		s := p.String()
		got, err := ParsePlan(s)
		if err != nil {
			t.Fatalf("ParsePlan(%q): %v", s, err)
		}
		if got != p {
			t.Fatalf("round trip changed the plan:\n  in  %+v\n  via %q\n  out %+v", p, s, got)
		}
	}
}

func TestParsePlanRejectsGarbage(t *testing.T) {
	for _, s := range []string{
		"seed",                // not key=value
		"seed=abc",            // bad int
		"wire.drop=2",         // rate out of range
		"wire.drop=-0.1",      // rate out of range
		"bogus.knob=1",        // unknown key
		"seed=1 wire.drop=xx", // bad float
	} {
		if _, err := ParsePlan(s); err == nil {
			t.Errorf("ParsePlan(%q) accepted garbage", s)
		}
	}
}

func TestParsePlanSeparators(t *testing.T) {
	p, err := ParsePlan("seed=9,wire.drop=0.5, disk.err=0.25")
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 9 || p.WireDrop != 0.5 || p.DiskErr != 0.25 {
		t.Fatalf("comma-separated plan parsed wrong: %+v", p)
	}
}

// A fired drop with wire.burst=n must take exactly n consecutive frames.
func TestWireHookBurstLoss(t *testing.T) {
	plan := Plan{Seed: 11, WireDrop: 0.05, WireBurst: 4}
	in := NewInjector(plan)
	defer in.Release()
	hook := in.WireHook()
	var drops []int
	for i := 0; i < 2000; i++ {
		if hook(1500).Drop {
			drops = append(drops, i)
		}
	}
	if len(drops) == 0 {
		t.Fatal("no drops at 5% over 2000 frames")
	}
	// Every run of consecutive dropped frames must be a multiple of the
	// burst length (bursts can abut, but never fragment).
	run := 1
	for i := 1; i <= len(drops); i++ {
		if i < len(drops) && drops[i] == drops[i-1]+1 {
			run++
			continue
		}
		if run%plan.WireBurst != 0 {
			t.Fatalf("burst of %d frames, want multiples of %d (drops %v)", run, plan.WireBurst, drops)
		}
		run = 1
	}
	if got := in.Point("wire.drop").Injected(); got != uint64(len(drops)) {
		t.Fatalf("drop point counted %d, hook dropped %d", got, len(drops))
	}
}

func TestWireHookCorruptOffsetInRange(t *testing.T) {
	in := NewInjector(Plan{Seed: 5, WireCorrupt: 1})
	defer in.Release()
	hook := in.WireHook()
	for i := 0; i < 100; i++ {
		f := hook(64)
		if !f.Corrupt {
			t.Fatal("corrupt rate 1 did not fire")
		}
		if f.CorruptOff < 0 || f.CorruptOff >= 64 {
			t.Fatalf("corrupt offset %d outside frame of 64", f.CorruptOff)
		}
	}
}

// A torn write must tear a strict prefix: at least 0 and fewer than the
// request's sectors, derived from the same hash as the decision.
func TestDiskHookTornWrites(t *testing.T) {
	in := NewInjector(Plan{Seed: 13, DiskTorn: 1})
	defer in.Release()
	hook := in.DiskHook("disk")
	for i := 0; i < 100; i++ {
		f := hook(true, 0, 8)
		if !errors.Is(f.Err, ErrInjected) {
			t.Fatalf("torn rate 1 did not fail the write: %v", f.Err)
		}
		if f.TornSectors >= 8 {
			t.Fatalf("torn %d of 8 sectors is not a strict prefix", f.TornSectors)
		}
	}
	// Reads never tear; with only DiskTorn active they pass untouched.
	if f := hook(false, 0, 8); f.Err != nil {
		t.Fatalf("read faulted under a torn-write-only plan: %v", f.Err)
	}
}

func TestAllocFailNth(t *testing.T) {
	in := NewInjector(Plan{Seed: 17, AllocFailNth: 3})
	defer in.Release()
	fail := in.AllocFailFunc("alloc.test")
	var failed []int
	for i := 1; i <= 10; i++ {
		if fail(64) {
			failed = append(failed, i)
		}
	}
	if len(failed) != 1 || failed[0] != 3 {
		t.Fatalf("alloc.nth=3 failed allocations %v, want exactly [3]", failed)
	}
}

// The injector is a COM object: discoverable via FaultIID, counting
// into a com.Stats set.
func TestInjectorCOMContract(t *testing.T) {
	plan := Plan{Seed: 23, WireDrop: 0.5}
	in := NewInjector(plan)
	defer in.Release()

	unk, err := in.QueryInterface(com.FaultIID)
	if err != nil {
		t.Fatalf("QueryInterface(FaultIID): %v", err)
	}
	fi := unk.(com.FaultInjector)
	defer fi.Release()
	if fi.FaultSeed() != 23 {
		t.Fatalf("FaultSeed = %d", fi.FaultSeed())
	}
	back, err := ParsePlan(fi.FaultPlan())
	if err != nil || back != plan {
		t.Fatalf("FaultPlan %q does not round-trip: %+v, %v", fi.FaultPlan(), back, err)
	}
	if _, err := in.QueryInterface(com.StatsIID); err == nil {
		t.Fatal("injector answered for StatsIID; its stats live in StatsSet()")
	}

	p := in.Point("wire.drop")
	for i := 0; i < 200; i++ {
		p.Roll(plan.WireDrop)
	}
	if fi.FaultsInjected() == 0 {
		t.Fatal("FaultsInjected stayed 0 after 200 rolls at 50%")
	}
	snap := in.StatsSet().Snapshot()
	ev, ok1 := stats.Get(snap, "wire.drop.events")
	inj, ok2 := stats.Get(snap, "wire.drop.injected")
	tot, ok3 := stats.Get(snap, "injected.total")
	if !ok1 || !ok2 || !ok3 {
		t.Fatalf("stats rows missing: %v %v %v", ok1, ok2, ok3)
	}
	if ev != 200 || inj == 0 || tot != inj {
		t.Fatalf("events=%d injected=%d total=%d", ev, inj, tot)
	}
}

// End-to-end through the simulated wire: a hooked EtherWire under a
// corrupt-everything plan flips exactly one payload byte per frame.
func TestWireHookOnEtherWire(t *testing.T) {
	in := NewInjector(Plan{Seed: 29, WireCorrupt: 1})
	defer in.Release()

	w := hw.NewEtherWire()
	a := hw.NewNIC(nil, 0, [6]byte{2, 0, 0, 0, 0, 1})
	b := hw.NewNIC(nil, 0, [6]byte{2, 0, 0, 0, 0, 2})
	w.Attach(a)
	w.Attach(b)
	w.SetFaultHook(in.WireHook())

	frame := make([]byte, 64)
	copy(frame[0:6], b.Mac[:])
	copy(frame[6:12], a.Mac[:])
	a.Transmit(frame)

	got := b.RxPop()
	if got == nil {
		t.Fatal("corrupted frame was not delivered")
	}
	diff := 0
	for i := range frame {
		if got[i] != frame[i] {
			diff++
			if i < hw.EtherHdrLen {
				t.Fatalf("corruption hit the ether header at byte %d", i)
			}
		}
	}
	if diff != 1 {
		t.Fatalf("%d bytes differ, want exactly 1", diff)
	}
	if in.FaultsInjected() == 0 {
		t.Fatal("injector counted no faults")
	}
}

// The NIC receive hook draws one decision per offered frame even when
// the ring is full: ring occupancy must not desynchronize the seeded
// decision stream from the frame sequence, or a replay from the logged
// plan would fire at different frames than the run it reproduces.
func TestNICRxHookDecisionStreamIgnoresRingOccupancy(t *testing.T) {
	plan := Plan{Seed: 31, NICOverflow: 0.1}
	in := NewInjector(plan)
	defer in.Release()

	w := hw.NewEtherWire()
	a := hw.NewNIC(nil, 0, [6]byte{2, 0, 0, 0, 0, 1})
	b := hw.NewNIC(nil, 0, [6]byte{2, 0, 0, 0, 0, 2}) // never drained
	w.Attach(a)
	w.Attach(b)
	b.SetRxFaultHook(in.NICRxHook("nic.rx.test"))

	// Offer far more frames than the ring holds: the tail arrives with
	// the ring at capacity and must still consume decisions.
	const offered = hw.EtherRingLen + 200
	f := make([]byte, 64)
	copy(f[0:6], b.Mac[:])
	copy(f[6:12], a.Mac[:])
	for i := 0; i < offered; i++ {
		a.Transmit(f)
	}

	p := in.Point("nic.rx.test")
	if p.Events() != offered {
		t.Fatalf("point decided %d events for %d offered frames", p.Events(), offered)
	}
	if p.Injected() == 0 {
		t.Fatal("10%% overflow over the run fired nothing")
	}

	// Replay the decision stream from a fresh injector on the same plan:
	// the fired-index trace must be bit-identical, ring or no ring.
	replay := NewInjector(plan)
	defer replay.Release()
	hook := replay.NICRxHook("nic.rx.test")
	for i := 0; i < offered; i++ {
		hook()
	}
	if got, want := replay.Point("nic.rx.test").Fired(), p.Fired(); !reflect.DeepEqual(got, want) {
		t.Fatalf("decision stream not reproducible:\n  run    %v\n  replay %v", want, got)
	}
}
