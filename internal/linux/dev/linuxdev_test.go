package linuxdev

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"oskit/internal/com"
	"oskit/internal/core"
	"oskit/internal/dev"
	"oskit/internal/hw"
	"oskit/internal/kern"
)

// rig builds a machine with the requested NIC model(s) and a disk, booted
// far enough for driver work.
type rig struct {
	m   *hw.Machine
	k   *kern.Kernel
	fw  *dev.Framework
	nic *hw.NIC
}

func newRig(t *testing.T, wire *hw.EtherWire, mac byte, model hw.NICModel) *rig {
	t.Helper()
	m := hw.NewMachine(hw.Config{Name: "rig", MemBytes: 8 << 20})
	t.Cleanup(m.Halt)
	var nic *hw.NIC
	if wire != nil {
		nic = m.AttachNIC(wire, [6]byte{2, 0, 0, 0, 0, mac}, model)
	}
	k, err := kern.Setup(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	fw := dev.NewFramework(k.Env)
	return &rig{m: m, k: k, fw: fw, nic: nic}
}

// sink collects pushed packets.
type sink struct {
	com.RefCount
	mu   sync.Mutex
	pkts [][]byte
	cond chan struct{}
}

func newSink() *sink {
	s := &sink{cond: make(chan struct{}, 64)}
	s.Init()
	return s
}

func (s *sink) QueryInterface(iid com.GUID) (com.IUnknown, error) {
	if iid == com.UnknownIID || iid == com.NetIOIID {
		s.AddRef()
		return s, nil
	}
	return nil, com.ErrNoInterface
}

func (s *sink) Push(pkt com.BufIO, size uint) error {
	data, err := com.ReadFullBufIO(pkt, size)
	pkt.Release()
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.pkts = append(s.pkts, data)
	s.mu.Unlock()
	select {
	case s.cond <- struct{}{}:
	default:
	}
	return nil
}

func (s *sink) AllocBufIO(size uint) (com.BufIO, error) { return nil, com.ErrNotImplemented }

func (s *sink) wait(t *testing.T, n int) [][]byte {
	t.Helper()
	deadline := time.After(2 * time.Second)
	for {
		s.mu.Lock()
		if len(s.pkts) >= n {
			out := append([][]byte(nil), s.pkts...)
			s.mu.Unlock()
			return out
		}
		s.mu.Unlock()
		select {
		case <-s.cond:
		case <-deadline:
			t.Fatalf("timed out waiting for %d packets", n)
		}
	}
}

func openEther(t *testing.T, r *rig) (com.EtherDev, com.NetIO, *sink) {
	t.Helper()
	InitEthernet(r.fw)
	if n := r.fw.Probe(); n != 1 {
		t.Fatalf("probe claimed %d devices", n)
	}
	devs := r.fw.LookupByIID(com.EtherDevIID)
	if len(devs) != 1 {
		t.Fatalf("ether devices = %d", len(devs))
	}
	ed := devs[0].(com.EtherDev)
	rx := newSink()
	tx, err := ed.Open(rx)
	if err != nil {
		t.Fatal(err)
	}
	return ed, tx, rx
}

func ethFrame(dst, src [6]byte, payload []byte) []byte {
	f := make([]byte, 14+len(payload))
	copy(f[0:6], dst[:])
	copy(f[6:12], src[:])
	f[12], f[13] = 0x08, 0x00
	copy(f[14:], payload)
	return f
}

// TestEtherEndToEnd drives both donor drivers over the wire: a PIO-style
// sne2k machine talking to a busmaster-style s3c59x machine, each through
// the COM interfaces only.
func TestEtherEndToEnd(t *testing.T) {
	wire := hw.NewEtherWire()
	a := newRig(t, wire, 1, hw.ModelNE2K)
	b := newRig(t, wire, 2, hw.Model3C59X)
	edA, txA, rxA := openEther(t, a)
	edB, txB, rxB := openEther(t, b)

	if edA.GetAddr() != [6]byte{2, 0, 0, 0, 0, 1} {
		t.Fatalf("A mac = %v", edA.GetAddr())
	}

	// A -> B via a foreign (MemBuf) packet: exercises the map-to-fake-
	// skbuff transmit path.
	payload := bytes.Repeat([]byte{0xA5}, 100)
	f := ethFrame(edB.GetAddr(), edA.GetAddr(), payload)
	if err := txA.Push(com.NewMemBuf(f), uint(len(f))); err != nil {
		t.Fatal(err)
	}
	got := rxB.wait(t, 1)
	if !bytes.Equal(got[0], f) {
		t.Fatalf("B received %d bytes, want %d", len(got[0]), len(f))
	}

	// B -> A via a native skbuff from AllocBufIO: the no-copy fill path.
	f2 := ethFrame(edA.GetAddr(), edB.GetAddr(), []byte("native skb path"))
	bio, err := txB.AllocBufIO(uint(len(f2)))
	if err != nil {
		t.Fatal(err)
	}
	m, err := bio.Map(0, uint(len(f2)))
	if err != nil {
		t.Fatal(err)
	}
	copy(m, f2)
	if err := bio.Unmap(m); err != nil {
		t.Fatal(err)
	}
	if err := txB.Push(bio, uint(len(f2))); err != nil {
		t.Fatal(err)
	}
	got = rxA.wait(t, 1)
	if !bytes.Equal(got[0], f2) {
		t.Fatalf("A received %q", got[0])
	}

	// Driver-specific stats are reachable through the node (§4.6).
	if nodeA, ok := edA.(*etherDev); ok {
		if nodeA.Stats().TxPackets != 1 || nodeA.Stats().RxPackets != 1 {
			t.Fatalf("A stats = %+v", nodeA.Stats())
		}
	}

	if err := edA.Close(); err != nil {
		t.Fatal(err)
	}
	if err := edA.Close(); err == nil {
		t.Fatal("double close succeeded")
	}
	txA.Release()
	txB.Release()
	edA.Release()
	edB.Release()
}

// TestForeignUnmappablePacket exercises the read-copy fallback of §4.7.3.
func TestForeignUnmappablePacket(t *testing.T) {
	wire := hw.NewEtherWire()
	a := newRig(t, wire, 1, hw.ModelNE2K)
	b := newRig(t, wire, 2, hw.ModelNE2K)
	edA, txA, _ := openEther(t, a)
	_, _, rxB := openEther(t, b)

	f := ethFrame([6]byte{2, 0, 0, 0, 0, 2}, edA.GetAddr(), []byte("chained"))
	pkt := &noMapBuf{MemBuf: com.NewMemBuf(f)}
	if err := txA.Push(pkt, uint(len(f))); err != nil {
		t.Fatal(err)
	}
	got := rxB.wait(t, 1)
	if !bytes.Equal(got[0], f) {
		t.Fatalf("received %q", got[0])
	}
}

type noMapBuf struct{ *com.MemBuf }

func (b *noMapBuf) Map(offset, amount uint) ([]byte, error) {
	return nil, com.ErrNotImplemented
}

func TestNativeSkbRecognition(t *testing.T) {
	m := hw.NewMachine(hw.Config{MemBytes: 4 << 20})
	defer m.Halt()
	k, err := kern.Setup(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	g := GlueFor(k.Env)
	skb := g.kern.AllocSKB(64)
	if skb == nil {
		t.Fatal("AllocSKB failed")
	}
	skb.Put(64)
	bio := g.wrapSKB(skb)
	// Own objects are recognized...
	if got, ok := g.nativeSKB(bio); !ok {
		t.Fatal("native skb not recognized")
	} else {
		got.Free()
	}
	// ...objects from another glue instance are foreign.
	m2 := hw.NewMachine(hw.Config{MemBytes: 4 << 20})
	defer m2.Halt()
	k2, _ := kern.Setup(m2, nil)
	g2 := GlueFor(k2.Env)
	if _, ok := g2.nativeSKB(bio); ok {
		t.Fatal("foreign skb recognized as native")
	}
	// ...and plain MemBufs are foreign.
	if _, ok := g.nativeSKB(com.NewMemBuf(make([]byte, 8))); ok {
		t.Fatal("MemBuf recognized as native")
	}
	// Releasing the BufIO frees the skbuff.
	if bio.Release() != 0 {
		t.Fatal("refs remain")
	}
	if skb.Users() != 0 {
		t.Fatalf("skb users = %d after last release", skb.Users())
	}
}

func TestIDEBlkIO(t *testing.T) {
	r := newRig(t, nil, 0, hw.NICModel{})
	r.m.AttachDisk(hw.NewDisk(256))
	InitIDE(r.fw)
	if n := r.fw.Probe(); n != 1 {
		t.Fatalf("probe = %d", n)
	}
	blks := r.fw.LookupByIID(com.BlkIOIID)
	if len(blks) != 1 {
		t.Fatalf("blkio devices = %d", len(blks))
	}
	b := blks[0].(com.BlkIO)
	defer b.Release()

	if b.BlockSize() != 512 {
		t.Fatalf("BlockSize = %d", b.BlockSize())
	}
	size, err := b.Size()
	if err != nil || size != 256*512 {
		t.Fatalf("Size = %d, %v", size, err)
	}
	// Raw disks reject unaligned I/O.
	if _, err := b.Read(make([]byte, 100), 0); err != com.ErrInval {
		t.Fatalf("unaligned read: %v", err)
	}
	if _, err := b.Read(make([]byte, 512), 7); err != com.ErrInval {
		t.Fatalf("unaligned offset: %v", err)
	}
	if _, err := b.Read(make([]byte, 512), 256*512); err != com.ErrInval {
		t.Fatalf("out-of-range read: %v", err)
	}
	if err := b.SetSize(1); err != com.ErrNotImplemented {
		t.Fatalf("SetSize: %v", err)
	}
	// BufIO must NOT be available on a raw disk (§4.4.2).
	if _, err := b.QueryInterface(com.BufIOIID); err != com.ErrNoInterface {
		t.Fatalf("raw disk exported BufIO: %v", err)
	}

	// Write/read through the donor request+sleep path.
	wdata := bytes.Repeat([]byte("sector pattern! "), 512*4/16)
	n, err := b.Write(wdata, 3*512)
	if err != nil || n != uint(len(wdata)) {
		t.Fatalf("Write = %d, %v", n, err)
	}
	rdata := make([]byte, len(wdata))
	n, err = b.Read(rdata, 3*512)
	if err != nil || n != uint(len(rdata)) {
		t.Fatalf("Read = %d, %v", n, err)
	}
	if !bytes.Equal(rdata, wdata) {
		t.Fatal("read back differs")
	}
	// The bits really are on the simulated platter.
	disks := r.m.Bus.Find(hw.VendorMisc, hw.DevIDE)
	img := disks[0].HW.(*hw.Disk).Image()
	if !bytes.Equal(img[3*512:3*512+16], []byte("sector pattern! ")) {
		t.Fatal("disk image does not contain written data")
	}
}

func TestKmallocGFPDMA(t *testing.T) {
	m := hw.NewMachine(hw.Config{MemBytes: 8 << 20})
	defer m.Halt()
	k, _ := kern.Setup(m, nil)
	g := GlueFor(k.Env)
	b := g.kern.Kmalloc(4096, 0x80 /* GFPDMA */)
	if b == nil || b.Addr >= hw.DMALimit {
		t.Fatalf("GFP_DMA kmalloc at %#x", b.Addr)
	}
	g.kern.Kfree(b)
	if g.kern.Jiffies() != k.Env.Ticks() {
		t.Fatal("jiffies not wired to the kit clock")
	}
	// PhysToVirt is the direct map.
	p := g.kern.PhysToVirt(0x200000, 4)
	p[0] = 0xEE
	if m.Mem.MustSlice(0x200000, 1)[0] != 0xEE {
		t.Fatal("PhysToVirt is not the direct physical map")
	}
}

func TestCurrentManufacturedOnDemand(t *testing.T) {
	m := hw.NewMachine(hw.Config{MemBytes: 4 << 20})
	defer m.Halt()
	k, _ := kern.Setup(m, nil)
	g := GlueFor(k.Env)
	if g.kern.Current != nil {
		t.Fatal("current set before entry")
	}
	restore := g.enter("test-entry")
	if g.kern.Current == nil || g.kern.Current.Comm != "test-entry" {
		t.Fatalf("current = %+v", g.kern.Current)
	}
	inner := g.enter("nested")
	if g.kern.Current.Comm != "nested" {
		t.Fatal("nested entry did not switch current")
	}
	inner()
	if g.kern.Current.Comm != "test-entry" {
		t.Fatal("restore did not pop to outer entry")
	}
	restore()
	if g.kern.Current != nil {
		t.Fatal("current leaked after restore")
	}
	_ = core.DefaultTickNanos
}

// An injected kmalloc failure must look exactly like GFP exhaustion —
// nil return, counted in kmalloc.failures — and clear when removed.
func TestKmallocFaultHook(t *testing.T) {
	m := hw.NewMachine(hw.Config{Name: "kmfault", MemBytes: 8 << 20})
	t.Cleanup(m.Halt)
	k, _ := kern.Setup(m, nil)
	g := GlueFor(k.Env)

	g.SetKmallocFaultHook(func(size uint32) bool { return true })
	if b := g.Kernel().Kmalloc(128, 0); b != nil {
		t.Fatal("hooked kmalloc succeeded")
	}
	g.SetKmallocFaultHook(nil)
	b := g.Kernel().Kmalloc(128, 0)
	if b == nil {
		t.Fatal("kmalloc failed after hook removal")
	}
	g.Kernel().Kfree(b)
}
