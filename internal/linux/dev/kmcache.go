package linuxdev

import (
	"oskit/internal/com"
	"oskit/internal/linux/legacy"
	"oskit/internal/percpu"
)

// Per-CPU front over the fast-path kmalloc route (E16).
//
// With EnableFastPath bound to a QuickPool, every packet-sized kmalloc
// still serializes on klMu (rank 75) before it even reaches the pool —
// the donor exclusion is the hot lock, not the allocator behind it.
// EnableAllocCache fronts that route with percpu.Cache magazines of
// whole *legacy.KBuf records, one cache per power-of-two class in
// [16, 4096] (the pool's own classes), so a cached hit or stash touches
// one CPU-local lock and skips klMu entirely.
//
// The discipline mirrors the QuickPool magazine front (libc/magazine.go)
// and the BSD malloc front (freebsd/glue/cpucache.go):
//
//   - one fault-hook decision per Kmalloc of a fronted size, read
//     through an atomic mirror with no locks held, before the cache is
//     consulted; a miss goes straight to the frozen pool binding with
//     the decision already consumed, and sizes the front does not serve
//     (> 4096 bytes, or any size when the front is off) ride the stock
//     closure with its under-lock hook consult — either way exactly one
//     decision per user operation, in user-operation order;
//   - every user operation charges kmalloc.allocs/kmalloc.frees exactly
//     once (cached traffic additionally shows as kmalloc.cpu_hits);
//   - DrainAllocCache returns every cached block to the pool uncounted
//     in the kmalloc pair — the stash that parked it already counted as
//     a kfree — while the pool's own qp.frees charge balances the
//     qp.allocs its AllocMem charged, so both ledgers quiesce exactly
//     as if the front never existed.
//
// Class consistency: a pool block's Data slice is 3-index-sliced to its
// exact power-of-two capacity, so cap(Data) names the pool class.  The
// stash gate admits only Pooled KBufs with such a cap; a hit reslices
// Data to the new request's length, which rounds back up to the same
// class, so the eventual pool.FreeMem(addr, len(Data)) frees into the
// class the block came from no matter how many reuses intervened.
//
// The front freezes its own pool reference at enable time (with its own
// COM ref), so cache hits and misses never touch the klMu-guarded
// g.pool binding.  The percpu locks (ranks 76/77) are leaves here taken
// with no donor lock held.
type kmFront struct {
	pool   com.Allocator
	caches [kmFrontClasses]*percpu.Cache[*legacy.KBuf]
}

const (
	kmFrontMinShift = 4 // 16-byte minimum class, the pool's own floor
	kmFrontClasses  = 9 // 16 .. 4096
	kmFrontMax      = 4096
	kmFrontRounds   = 16
)

// kmCacheClass maps a size to its front class, or -1.
func kmCacheClass(size uint32) int {
	if size == 0 || size > kmFrontMax {
		return -1
	}
	bs := uint32(1) << kmFrontMinShift
	for i := 0; i < kmFrontClasses; i++ {
		if size <= bs {
			return i
		}
		bs <<= 1
	}
	return -1
}

// cacheForBlock returns the cache a freed KBuf stashes into, or nil if
// the block is not a whole pool-class block (the stash gate).
func (f *kmFront) cacheForBlock(b *legacy.KBuf) *percpu.Cache[*legacy.KBuf] {
	c := uint32(cap(b.Data))
	if c < 1<<kmFrontMinShift || c > kmFrontMax || c&(c-1) != 0 {
		return nil
	}
	return f.caches[kmCacheClass(c)]
}

// EnableAllocCache fronts the fast-path kmalloc route with per-CPU
// magazine caches.  Requires a multi-CPU machine and an EnableFastPath
// pool binding (the native-kmalloc monolithic baseline is never
// fronted); refuses otherwise, keeping the default path byte-identical.
// Idempotent.  Call at configuration time, before traffic.
func (g *Glue) EnableAllocCache() {
	machine := g.env.Machine
	ncpu := machine.CPUs()
	if ncpu <= 1 || g.front.Load() != nil {
		return
	}
	unlock := g.kmLock()
	pool := g.pool //oskit:allow guarded -- under g.kmLock(): klMu in SMP mode, interrupt exclusion (cli) on the uniprocessor default; the lock wrapper is opaque to the tracker
	native := g.nativeKmalloc
	unlock()
	if pool == nil || native || !g.fastpath.Load() {
		return
	}
	pool.AddRef()
	f := &kmFront{pool: pool}
	hint := machine.Intr.CPUHint
	for i := range f.caches {
		f.caches[i] = percpu.New[*legacy.KBuf](ncpu, kmFrontRounds, hint)
	}
	if g.statsSet != nil {
		g.scKmCPUHits = g.statsSet.Counter("kmalloc.cpu_hits")
		g.scKmallocs.Shard(ncpu)
		g.scKfrees.Shard(ncpu)
		g.scKmCPUHits.Shard(ncpu)
	}
	g.front.Store(f)
}

// AllocCacheEnabled reports whether the per-CPU kmalloc front is active.
func (g *Glue) AllocCacheEnabled() bool { return g.front.Load() != nil }

// AllocCached reports how many KBufs the front currently holds (tests,
// drain ledgers).
func (g *Glue) AllocCached() int {
	f := g.front.Load()
	if f == nil {
		return 0
	}
	n := 0
	for _, c := range f.caches {
		n += c.Cached()
	}
	return n
}

// DrainAllocCache returns every front-cached block to the pool.  The
// kfrees that parked these blocks were already counted at stash time,
// so nothing moves in the kmalloc pair; the pool-side frees balance the
// allocs that produced the blocks.  Called on Halt; the front stays
// enabled and usable.
func (g *Glue) DrainAllocCache() {
	f := g.front.Load()
	if f == nil {
		return
	}
	for _, c := range f.caches {
		c.Drain(func(b *legacy.KBuf) {
			f.pool.FreeMem(b.Addr, uint32(len(b.Data)))
		})
	}
}

// kmallocCached is Kmalloc for a front-served size: one hook decision,
// no locks held, then the CPU-local cache; a miss goes to the frozen
// pool with the decision already consumed.
func (g *Glue) kmallocCached(f *kmFront, size uint32) *legacy.KBuf {
	if h := g.kmHookA.Load(); h != nil && (*h)(size) {
		g.scKmFails.Inc()
		return nil
	}
	if b, cpu, ok := f.caches[kmCacheClass(size)].Get(); ok {
		b.Data = b.Data[:size]
		g.scKmallocs.IncOn(cpu)
		g.scKmCPUHits.IncOn(cpu)
		return b
	}
	if addr, buf, ok := f.pool.AllocMem(size); ok {
		g.scKmallocs.Inc()
		return &legacy.KBuf{Addr: addr, Data: buf, Pooled: true}
	}
	g.scKmFails.Inc()
	return nil
}
