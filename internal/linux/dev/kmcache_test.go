package linuxdev

import (
	"os"
	"strconv"
	"sync"
	"testing"

	"oskit/internal/hw"
	"oskit/internal/kern"
	"oskit/internal/libc"
	"oskit/internal/linux/legacy"
	"oskit/internal/stats"
)

// hammerCPUs honors the OSKIT_CPUS override check.sh uses to widen the
// contention hammers (the 8-CPU alloc-contention smoke).
func hammerCPUs(def int) int {
	if s := os.Getenv("OSKIT_CPUS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 1 {
			return n
		}
	}
	return def
}

// testKmGlue builds a glue with the fast-path pool bound, on a machine
// with the given CPU count (SMP discipline on for cpus > 1) — the
// preconditions EnableAllocCache checks.
func testKmGlue(t *testing.T, cpus int) *Glue {
	t.Helper()
	m := hw.NewMachine(hw.Config{Name: "kmfront", MemBytes: 16 << 20, CPUs: cpus})
	t.Cleanup(m.Halt)
	k, err := kern.Setup(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	g := GlueFor(k.Env)
	if cpus > 1 {
		g.SetSMP(true)
	}
	g.EnableFastPath(libc.NewQuickPoolService(libc.New(k.Env)))
	return g
}

func kmSnap(g *Glue) map[string]int64 {
	out := map[string]int64{}
	for _, s := range stats.Discover(g.env.Registry) {
		if s.StatsName() == "linux_dev" {
			for _, st := range s.Snapshot() {
				out[st.Name] = st.Value
			}
		}
		s.Release()
	}
	return out
}

// TestKmCacheSingleCPURefuses: the default path stays byte-identical —
// no front, no kmalloc.cpu_hits row.
func TestKmCacheSingleCPURefuses(t *testing.T) {
	g := testKmGlue(t, 1)
	g.EnableAllocCache()
	if g.AllocCacheEnabled() {
		t.Fatal("front enabled on a 1-CPU machine")
	}
	b := g.Kernel().Kmalloc(2048, 0)
	if b == nil {
		t.Fatal("Kmalloc failed")
	}
	g.Kernel().Kfree(b)
	snap := kmSnap(g)
	if _, ok := snap["kmalloc.cpu_hits"]; ok {
		t.Fatal("kmalloc.cpu_hits registered without the front")
	}
	if snap["kmalloc.allocs"] != 1 || snap["kmalloc.frees"] != 1 {
		t.Fatalf("allocs/frees = %d/%d", snap["kmalloc.allocs"], snap["kmalloc.frees"])
	}
}

// TestKmCacheRefusesWithoutPool: the front requires the fast-path pool
// binding; a plain multi-CPU glue refuses.
func TestKmCacheRefusesWithoutPool(t *testing.T) {
	m := hw.NewMachine(hw.Config{Name: "kmnopool", MemBytes: 8 << 20, CPUs: 4})
	t.Cleanup(m.Halt)
	k, err := kern.Setup(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	g := GlueFor(k.Env)
	g.SetSMP(true)
	g.EnableAllocCache()
	if g.AllocCacheEnabled() {
		t.Fatal("front enabled without a pool binding")
	}
}

// TestKmCacheHitsAndLedger: warm reuse hits the front, every user op
// charges the kmalloc pair exactly once, and drain returns every block
// to the pool (qp pair balances) without moving the kmalloc counters.
func TestKmCacheHitsAndLedger(t *testing.T) {
	g := testKmGlue(t, 4)
	g.EnableAllocCache()
	if !g.AllocCacheEnabled() {
		t.Fatal("front not enabled")
	}
	g.EnableAllocCache() // idempotent

	const n = 24
	var kbufs []*legacy.KBuf
	for wave := 0; wave < 2; wave++ {
		kbufs = kbufs[:0]
		for i := 0; i < n; i++ {
			b := g.Kernel().Kmalloc(2048, 0)
			if b == nil || len(b.Data) != 2048 {
				t.Fatalf("wave %d Kmalloc %d failed", wave, i)
			}
			if !b.Pooled {
				t.Fatalf("wave %d block %d not pool-backed", wave, i)
			}
			kbufs = append(kbufs, b)
		}
		for _, b := range kbufs {
			g.Kernel().Kfree(b)
		}
	}

	snap := kmSnap(g)
	if snap["kmalloc.allocs"] != 2*n || snap["kmalloc.frees"] != 2*n {
		t.Fatalf("allocs/frees = %d/%d, want %d", snap["kmalloc.allocs"], snap["kmalloc.frees"], 2*n)
	}
	if snap["kmalloc.cpu_hits"] == 0 {
		t.Fatal("kmalloc.cpu_hits = 0 after warm waves")
	}
	if g.AllocCached() == 0 {
		t.Fatal("nothing cached in the front after frees")
	}
	g.DrainAllocCache()
	if got := g.AllocCached(); got != 0 {
		t.Fatalf("AllocCached after drain = %d", got)
	}
	snap = kmSnap(g)
	if snap["kmalloc.allocs"] != 2*n || snap["kmalloc.frees"] != 2*n {
		t.Fatalf("drain moved counters: allocs/frees = %d/%d", snap["kmalloc.allocs"], snap["kmalloc.frees"])
	}
	// The pool's own ledger quiesced: every block the front returned
	// went back to the class it came from.
	qAllocs, qFrees := quickpoolPair(t, g.front.Load().pool.(*libc.QuickPool))
	if qAllocs != qFrees {
		t.Fatalf("qp.allocs/qp.frees = %d/%d after drain", qAllocs, qFrees)
	}
}

// quickpoolPair reads the pool's qp.allocs/qp.frees counters.
func quickpoolPair(t *testing.T, p *libc.QuickPool) (allocs, frees int64) {
	t.Helper()
	for _, st := range p.StatsSet().Snapshot() {
		switch st.Name {
		case "qp.allocs":
			allocs = st.Value
		case "qp.frees":
			frees = st.Value
		}
	}
	return allocs, frees
}

// TestKmCacheClassConsistency: a cached block reused at a smaller size
// in the same class still frees into its original pool class — the
// reslice-on-hit rule.  Exercised by allocating 2048 then 1500 (both
// class 2048) and letting the ledger check above catch any mismatch.
func TestKmCacheClassConsistency(t *testing.T) {
	g := testKmGlue(t, 2)
	g.EnableAllocCache()
	b := g.Kernel().Kmalloc(2048, 0)
	if b == nil {
		t.Fatal("Kmalloc(2048) failed")
	}
	g.Kernel().Kfree(b)
	b2 := g.Kernel().Kmalloc(1500, 0)
	if b2 == nil {
		t.Fatal("Kmalloc(1500) failed")
	}
	if len(b2.Data) != 1500 || cap(b2.Data) != 2048 {
		t.Fatalf("reuse len/cap = %d/%d, want 1500/2048", len(b2.Data), cap(b2.Data))
	}
	g.Kernel().Kfree(b2)
	g.DrainAllocCache()
	pool := g.front.Load().pool.(*libc.QuickPool)
	qAllocs, qFrees := quickpoolPair(t, pool)
	if qAllocs != qFrees {
		t.Fatalf("qp.allocs/qp.frees = %d/%d after drain", qAllocs, qFrees)
	}
	snap := kmSnap(g)
	if snap["kmalloc.cpu_hits"] != 1 {
		t.Fatalf("kmalloc.cpu_hits = %d, want 1", snap["kmalloc.cpu_hits"])
	}
}

// TestKmCacheHookStream: the fault hook fires once per Kmalloc of a
// fronted size, and a veto counts as a failure without touching the
// cache.
func TestKmCacheHookStream(t *testing.T) {
	g := testKmGlue(t, 2)
	g.EnableAllocCache()
	var decisions []uint32
	n := 0
	g.SetKmallocFaultHook(func(size uint32) bool {
		decisions = append(decisions, size)
		n++
		return n%3 == 0
	})
	fails := 0
	var live []*legacy.KBuf
	for i := 0; i < 12; i++ {
		b := g.Kernel().Kmalloc(2048, 0)
		if b == nil {
			fails++
			continue
		}
		live = append(live, b)
	}
	g.SetKmallocFaultHook(nil)
	for _, b := range live {
		g.Kernel().Kfree(b)
	}
	if len(decisions) != 12 {
		t.Fatalf("hook saw %d decisions, want 12 (one per Kmalloc)", len(decisions))
	}
	if fails != 4 {
		t.Fatalf("fails = %d, want 4 (every 3rd decision)", fails)
	}
	snap := kmSnap(g)
	if snap["kmalloc.failures"] != 4 {
		t.Fatalf("kmalloc.failures = %d, want 4", snap["kmalloc.failures"])
	}
	if snap["kmalloc.allocs"] != 8 || snap["kmalloc.frees"] != 8 {
		t.Fatalf("allocs/frees = %d/%d, want 8/8", snap["kmalloc.allocs"], snap["kmalloc.frees"])
	}
}

// TestKmCacheConcurrentAudit pins the E16 gauge audit for the kmalloc
// set: concurrent Kmalloc/Kfree traffic through the front, snapshot
// readers, and hook togglers run clean under the race detector, and the
// pair balances exactly after a full free and drain.
func TestKmCacheConcurrentAudit(t *testing.T) {
	g := testKmGlue(t, hammerCPUs(4))
	g.EnableAllocCache()
	var traffic, pollers sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 6; w++ {
		traffic.Add(1)
		go func(w int) {
			defer traffic.Done()
			sizes := []uint32{64, 256, 2048}
			var held []*legacy.KBuf
			for i := 0; i < 300; i++ {
				b := g.Kernel().Kmalloc(sizes[(w+i)%len(sizes)], 0)
				if b == nil {
					continue
				}
				held = append(held, b)
				if len(held) >= 8 {
					for _, h := range held {
						g.Kernel().Kfree(h)
					}
					held = held[:0]
				}
			}
			for _, h := range held {
				g.Kernel().Kfree(h)
			}
		}(w)
	}
	pollers.Add(1)
	go func() {
		defer pollers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = kmSnap(g)
			_ = g.AllocCached()
		}
	}()
	pollers.Add(1)
	go func() {
		defer pollers.Done()
		n := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			n++
			if n%2 == 0 {
				g.SetKmallocFaultHook(func(size uint32) bool { return false })
			} else {
				g.SetKmallocFaultHook(nil)
			}
		}
	}()
	traffic.Wait()
	close(stop)
	pollers.Wait()
	g.SetKmallocFaultHook(nil)
	g.DrainAllocCache()
	snap := kmSnap(g)
	if snap["kmalloc.allocs"] != snap["kmalloc.frees"] {
		t.Fatalf("allocs %d != frees %d after full free and drain",
			snap["kmalloc.allocs"], snap["kmalloc.frees"])
	}
	qAllocs, qFrees := quickpoolPair(t, g.front.Load().pool.(*libc.QuickPool))
	if qAllocs != qFrees {
		t.Fatalf("qp.allocs %d != qp.frees %d after drain", qAllocs, qFrees)
	}
}

// TestKmCacheLargeUntouched: sizes above the pool range ride the stock
// closure even with the front on.
func TestKmCacheLargeUntouched(t *testing.T) {
	g := testKmGlue(t, 2)
	g.EnableAllocCache()
	b := g.Kernel().Kmalloc(8192, 0)
	if b == nil {
		t.Fatal("Kmalloc(8192) failed")
	}
	if b.Pooled {
		t.Fatal("large block marked pooled")
	}
	g.Kernel().Kfree(b)
	if g.AllocCached() != 0 {
		t.Fatal("large block landed in the front")
	}
	snap := kmSnap(g)
	if snap["kmalloc.cpu_hits"] != 0 {
		t.Fatalf("kmalloc.cpu_hits = %d for uncached size", snap["kmalloc.cpu_hits"])
	}
}
