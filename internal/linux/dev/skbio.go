package linuxdev

import (
	"oskit/internal/com"
	"oskit/internal/linux/legacy"
)

// skbIO exports an skbuff as a COM BufIO object without copying: "the
// COM interface is simply a one-word field in the skbuff structure in
// which the glue code places a pointer to a function table providing
// methods to access the skbuff's contents" (§4.7.3).  Here the one-word
// field is skb.COMSlot and the function table is Go's method set.
//
// The object owns one skbuff reference, dropped when the last COM
// reference goes away.
type skbIO struct {
	com.RefCount
	g   *Glue
	skb *legacy.SKBuff
}

// wrapSKB wraps an skbuff, consuming the caller's skb reference.
func (g *Glue) wrapSKB(skb *legacy.SKBuff) *skbIO {
	b := &skbIO{g: g, skb: skb}
	b.Init()
	b.OnLastRelease = func() { skb.COMSlot = nil; skb.Free() }
	skb.COMSlot = b
	return b
}

// nativeSKB recognizes the glue's own BufIO objects — the donor-side
// fast path of §4.7.3, where "the Linux glue code can easily recognize
// 'foreign' bufio objects by checking their function table pointer".
// The returned skbuff carries a fresh reference.
func (g *Glue) nativeSKB(pkt com.BufIO) (*legacy.SKBuff, bool) {
	if b, ok := pkt.(*skbIO); ok && b.g == g {
		return b.skb.Get(), true
	}
	return nil, false
}

// QueryInterface implements com.IUnknown.
func (b *skbIO) QueryInterface(iid com.GUID) (com.IUnknown, error) {
	switch iid {
	case com.UnknownIID, com.BlkIOIID, com.BufIOIID:
		b.AddRef()
		return b, nil
	}
	return nil, com.ErrNoInterface
}

// BlockSize implements com.BlkIO.
func (b *skbIO) BlockSize() uint { return 1 }

// Read implements com.BlkIO.
func (b *skbIO) Read(buf []byte, offset uint64) (uint, error) {
	if offset >= uint64(b.skb.Len) {
		return 0, nil
	}
	return uint(copy(buf, b.skb.Data[offset:])), nil
}

// Write implements com.BlkIO.
func (b *skbIO) Write(buf []byte, offset uint64) (uint, error) {
	if offset+uint64(len(buf)) > uint64(b.skb.Len) {
		return 0, com.ErrInval
	}
	return uint(copy(b.skb.Data[offset:], buf)), nil
}

// Size implements com.BlkIO.
func (b *skbIO) Size() (uint64, error) { return uint64(b.skb.Len), nil }

// SetSize implements com.BlkIO: shrink only (skb_trim).
func (b *skbIO) SetSize(size uint64) error {
	if size > uint64(b.skb.Len) {
		return com.ErrNotImplemented
	}
	b.skb.Trim(int(size))
	return nil
}

// Map implements com.BufIO: skbuffs are always contiguous, so mapping
// always succeeds — which is why the receive path of §5 never copies.
func (b *skbIO) Map(offset, amount uint) ([]byte, error) {
	if uint64(offset)+uint64(amount) > uint64(b.skb.Len) {
		return nil, com.ErrInval
	}
	return b.skb.Data[offset : offset+amount], nil
}

// Unmap implements com.BufIO.
func (b *skbIO) Unmap(buf []byte) error { return nil }

// Wire implements com.BufIO, returning the skbuff's physical address for
// DMA; fake skbuffs decline.
func (b *skbIO) Wire() (uint32, error) {
	addr, ok := b.skb.PhysAddr()
	if !ok {
		return 0, com.ErrNotImplemented
	}
	return addr, nil
}

// Unwire implements com.BufIO.
func (b *skbIO) Unwire() error { return nil }

var _ com.BufIO = (*skbIO)(nil)
