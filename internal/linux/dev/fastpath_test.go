package linuxdev

import (
	"bytes"
	"sync"
	"testing"

	"oskit/internal/com"
	"oskit/internal/hw"
	"oskit/internal/libc"
)

// sgBuf is a producer that cannot be mapped contiguously but exports
// its fragment list — the shape a chained mbuf presents to the glue.
type sgBuf struct {
	*com.MemBuf
	data []byte
}

func newSGBuf(data []byte) *sgBuf {
	return &sgBuf{MemBuf: com.NewMemBuf(data), data: data}
}

func (b *sgBuf) Map(offset, amount uint) ([]byte, error) {
	return nil, com.ErrNotImplemented
}

func (b *sgBuf) QueryInterface(iid com.GUID) (com.IUnknown, error) {
	if iid == com.SGBufIOIID {
		b.AddRef()
		return b, nil
	}
	return b.MemBuf.QueryInterface(iid)
}

// MapSG splits the packet into 64-byte runs, like a chain of small
// mbufs.
func (b *sgBuf) MapSG(offset, amount uint) ([][]byte, error) {
	if offset+amount > uint(len(b.data)) {
		return nil, com.ErrInval
	}
	var parts [][]byte
	for cur := b.data[offset : offset+amount]; len(cur) > 0; {
		n := 64
		if n > len(cur) {
			n = len(cur)
		}
		parts = append(parts, cur[:n])
		cur = cur[n:]
	}
	return parts, nil
}

func (b *sgBuf) UnmapSG(parts [][]byte) error { return nil }

var _ com.SGBufIO = (*sgBuf)(nil)

// TestFastPathSGXmit pins the new branch of the §4.7.3 decision tree in
// isolation: an unmappable producer with a fragment list leaves through
// the gather path on a FeatSG device (no flatten copy), and the frame
// on the wire is intact.
func TestFastPathSGXmit(t *testing.T) {
	wire := hw.NewEtherWire()
	a := newRig(t, wire, 1, hw.Model3C59X)
	b := newRig(t, wire, 2, hw.Model3C59X)
	edA, txA, _ := openEther(t, a)
	_, _, rxB := openEther(t, b)
	defer txA.Release()
	defer edA.Release()

	g := GlueFor(a.k.Env)
	pool := libc.NewQuickPoolService(libc.New(a.k.Env))
	g.EnableFastPath(pool)

	payload := bytes.Repeat([]byte{0x5A}, 300)
	f := ethFrame([6]byte{2, 0, 0, 0, 0, 2}, edA.GetAddr(), payload)
	if err := txA.Push(newSGBuf(f), uint(len(f))); err != nil {
		t.Fatal(err)
	}
	got := rxB.wait(t, 1)
	if !bytes.Equal(got[0], f) {
		t.Fatalf("received %d bytes, want %d", len(got[0]), len(f))
	}
	_, _, sg, flattened := g.XmitCounters()
	if sg != 1 || flattened != 0 {
		t.Fatalf("xmit counters sg=%d flattened=%d, want 1/0", sg, flattened)
	}
	if a.nic.TxGathers() != 1 {
		t.Fatalf("NIC gather transmits = %d, want 1", a.nic.TxGathers())
	}
}

// TestFastPathConcurrentAllocXmit hammers the QuickPool-backed kmalloc
// from several goroutines while another streams scatter-gather packets
// through the same glue — the contention pattern of a fast-path node
// under load (process-level senders against interrupt-level receive
// allocation).  Run under -race by the tier-1 suite; must end with the
// pool balanced.
func TestFastPathConcurrentAllocXmit(t *testing.T) {
	wire := hw.NewEtherWire()
	a := newRig(t, wire, 1, hw.Model3C59X)
	b := newRig(t, wire, 2, hw.Model3C59X)
	edA, txA, _ := openEther(t, a)
	_, _, rxB := openEther(t, b)
	defer txA.Release()
	defer edA.Release()

	g := GlueFor(a.k.Env)
	pool := libc.NewQuickPoolService(libc.New(a.k.Env))
	g.EnableFastPath(pool)

	const (
		pkts    = 200
		workers = 4
		rounds  = 400
	)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		f := ethFrame([6]byte{2, 0, 0, 0, 0, 2}, edA.GetAddr(),
			bytes.Repeat([]byte{0xC3}, 200))
		for i := 0; i < pkts; i++ {
			if err := txA.Push(newSGBuf(f), uint(len(f))); err != nil {
				t.Errorf("push %d: %v", i, err)
				return
			}
		}
	}()
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			sizes := []uint32{32, 96, 128, 1024}
			for i := 0; i < rounds; i++ {
				kb := g.Kernel().Kmalloc(sizes[(i+w)%len(sizes)], 0)
				if kb == nil {
					t.Error("kmalloc failed under concurrent load")
					return
				}
				if !kb.Pooled {
					t.Error("fast-path kmalloc did not draw from the pool")
					return
				}
				kb.Data[0] = byte(i)
				g.Kernel().Kfree(kb)
			}
		}()
	}
	wg.Wait()
	rxB.wait(t, pkts)

	_, _, sg, flattened := g.XmitCounters()
	if sg != pkts || flattened != 0 {
		t.Fatalf("xmit counters sg=%d flattened=%d, want %d/0", sg, flattened, pkts)
	}
	allocs := pool.StatsSet().Counter("qp.allocs").Load()
	frees := pool.StatsSet().Counter("qp.frees").Load()
	if allocs != uint64(workers*rounds) || frees != allocs {
		t.Fatalf("pool allocs/frees = %d/%d, want %d balanced", allocs, frees, workers*rounds)
	}
}
