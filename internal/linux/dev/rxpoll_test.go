package linuxdev

import (
	"bytes"
	"testing"

	"oskit/internal/com"
	"oskit/internal/hw"
	"oskit/internal/libc"
)

// batchSink is a receive sink that negotiates the com.NetIOBatch
// extension and records the batch boundaries it was handed.
type batchSink struct {
	*sink
	batches []int // frames per PushBatch call
}

func newBatchSink() *batchSink { return &batchSink{sink: newSink()} }

func (s *batchSink) QueryInterface(iid com.GUID) (com.IUnknown, error) {
	if iid == com.NetIOBatchIID {
		s.AddRef()
		return s, nil
	}
	return s.sink.QueryInterface(iid)
}

func (s *batchSink) PushBatch(pkts []com.BufIO, sizes []uint) error {
	s.mu.Lock()
	s.batches = append(s.batches, len(pkts))
	s.mu.Unlock()
	var firstErr error
	for i, pkt := range pkts {
		if err := s.sink.Push(pkt, sizes[i]); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

var _ com.NetIOBatch = (*batchSink)(nil)

// openEtherSink is openEther with a caller-supplied receive sink.
func openEtherSink(t *testing.T, r *rig, rx com.NetIO) (com.EtherDev, com.NetIO) {
	t.Helper()
	InitEthernet(r.fw)
	if n := r.fw.Probe(); n != 1 {
		t.Fatalf("probe claimed %d devices", n)
	}
	devs := r.fw.LookupByIID(com.EtherDevIID)
	ed := devs[0].(com.EtherDev)
	tx, err := ed.Open(rx)
	if err != nil {
		t.Fatal(err)
	}
	return ed, tx
}

// fastPool builds and binds a QuickPool fast-path configuration on a
// rig's glue, returning the pool for ledger assertions.
func fastPool(r *rig) *libc.QuickPool {
	pool := libc.NewQuickPoolService(libc.New(r.k.Env))
	GlueFor(r.k.Env).EnableFastPath(pool)
	return pool
}

// TestRxPollBatchedReceive pins the whole E12 receive pipeline in
// isolation: a burst landing on a mitigated NIC raises one interrupt,
// one budgeted poll drains it, the skbuffs draw from the QuickPool,
// and the batch crosses the COM boundary through one PushBatch.  The
// burst is raised with interrupt dispatch held (the donor cli/sti
// seam), so the edge/suppression arithmetic is deterministic.
func TestRxPollBatchedReceive(t *testing.T) {
	wire := hw.NewEtherWire()
	a := newRig(t, wire, 1, hw.Model3C59X)
	b := newRig(t, wire, 2, hw.Model3C59X)
	pool := fastPool(b)
	edA, txA, _ := openEther(t, a)
	defer txA.Release()
	defer edA.Release()

	rxB := newBatchSink()
	edB, txB := openEtherSink(t, b, rxB)
	rxB.Release()
	defer edB.Release()
	defer txB.Release()

	// Ledger baseline after open: the donor's descriptor ring is a live
	// pooled allocation until Stop, so the burst is asserted as a delta.
	allocs0 := pool.StatsSet().Counter("qp.allocs").Load()
	frees0 := pool.StatsSet().Counter("qp.frees").Load()

	const burst = 8
	b.m.Intr.Disable()
	for i := 0; i < burst; i++ {
		f := ethFrame([6]byte{2, 0, 0, 0, 0, 2}, edA.GetAddr(),
			bytes.Repeat([]byte{byte(i)}, 100))
		if err := txA.Push(com.NewMemBuf(f), uint(len(f))); err != nil {
			b.m.Intr.Enable()
			t.Fatal(err)
		}
	}
	b.m.Intr.Enable()
	got := rxB.wait(t, burst)
	for i, f := range got {
		if len(f) != 114 || f[14] != byte(i) {
			t.Fatalf("frame %d mangled: len=%d first payload byte %#x", i, len(f), f[14])
		}
	}

	// The whole burst left the ring through the poll loop, in one batch.
	g := GlueFor(b.k.Env)
	polls, batched, raised, suppressed := g.RxCounters()
	if polls != 1 || batched != burst {
		t.Fatalf("polls=%d batched=%d, want 1/%d", polls, batched, burst)
	}
	if raised != 1 || suppressed != burst-1 {
		t.Fatalf("raised=%d suppressed=%d, want 1/%d", raised, suppressed, burst-1)
	}
	if nb := b.nic.RxBatched(); nb != burst {
		t.Fatalf("NIC RxBatched = %d, want %d", nb, burst)
	}
	rxB.mu.Lock()
	batches := append([]int(nil), rxB.batches...)
	rxB.mu.Unlock()
	if len(batches) != 1 || batches[0] != burst {
		t.Fatalf("sink saw batches %v, want one of %d", batches, burst)
	}

	// The receive skbuffs drew from the pool and the sink's releases
	// returned every one of them.
	allocs := pool.StatsSet().Counter("qp.allocs").Load() - allocs0
	frees := pool.StatsSet().Counter("qp.frees").Load() - frees0
	if allocs < burst {
		t.Fatalf("pool served %d allocations over the burst, want >= %d", allocs, burst)
	}
	if frees != allocs {
		t.Fatalf("pool allocs/frees over the burst = %d/%d, want balanced", allocs, frees)
	}
}

// TestRxPollBudgetRearm: a burst beyond the poll budget is drained in
// budget-sized passes, the exhausted poll re-arming the line each time
// (the NAPI "not done" reschedule) — no frame strands.
func TestRxPollBudgetRearm(t *testing.T) {
	wire := hw.NewEtherWire()
	a := newRig(t, wire, 1, hw.Model3C59X)
	b := newRig(t, wire, 2, hw.Model3C59X)
	GlueFor(b.k.Env).SetRxBudget(4)
	fastPool(b)
	edA, txA, _ := openEther(t, a)
	defer txA.Release()
	defer edA.Release()
	rxB := newBatchSink()
	edB, txB := openEtherSink(t, b, rxB)
	rxB.Release()
	defer edB.Release()
	defer txB.Release()

	const burst = 10
	f := ethFrame([6]byte{2, 0, 0, 0, 0, 2}, edA.GetAddr(), make([]byte, 200))
	b.m.Intr.Disable()
	for i := 0; i < burst; i++ {
		if err := txA.Push(com.NewMemBuf(f), uint(len(f))); err != nil {
			b.m.Intr.Enable()
			t.Fatal(err)
		}
	}
	b.m.Intr.Enable()
	rxB.wait(t, burst)

	polls, batched, _, _ := GlueFor(b.k.Env).RxCounters()
	if batched != burst {
		t.Fatalf("batched=%d, want %d", batched, burst)
	}
	if polls != 3 { // 4 + 4 + 2
		t.Fatalf("polls=%d, want 3 budget-sized passes", polls)
	}
	if _, _, rearms := b.nic.RxIntrCounters(); rearms < 2 {
		t.Fatalf("rearms=%d, want >= 2 (two exhausted budgets)", rearms)
	}
	rxB.mu.Lock()
	batches := append([]int(nil), rxB.batches...)
	rxB.mu.Unlock()
	for _, n := range batches {
		if n > 4 {
			t.Fatalf("batch of %d frames exceeded the budget of 4 (%v)", n, batches)
		}
	}
}

// TestRxPollPlainSinkFallback: a sink that only speaks per-frame NetIO
// still receives everything — negotiation fails closed onto Push.
func TestRxPollPlainSinkFallback(t *testing.T) {
	wire := hw.NewEtherWire()
	a := newRig(t, wire, 1, hw.Model3C59X)
	b := newRig(t, wire, 2, hw.Model3C59X)
	fastPool(b)
	edA, txA, _ := openEther(t, a)
	defer txA.Release()
	defer edA.Release()
	rxB := newSink() // no NetIOBatch answer
	edB, txB := openEtherSink(t, b, rxB)
	rxB.Release()
	defer edB.Release()
	defer txB.Release()

	if p := firstPoller(edB.(*etherDev)); p == nil || p.batch != nil {
		t.Fatalf("poller=%v batch negotiated=%v, want engaged with nil batch", p != nil, p != nil && p.batch != nil)
	}
	const burst = 6
	f := ethFrame([6]byte{2, 0, 0, 0, 0, 2}, edA.GetAddr(), make([]byte, 64))
	for i := 0; i < burst; i++ {
		if err := txA.Push(com.NewMemBuf(f), uint(len(f))); err != nil {
			t.Fatal(err)
		}
	}
	rxB.wait(t, burst)
}

// TestRxPollDefaultOff: without the fast-path option nothing engages —
// the donor ISR keeps draining per frame, and every polled-receive
// counter stays zero.  This is the stock half of the E12 contract.
func TestRxPollDefaultOff(t *testing.T) {
	wire := hw.NewEtherWire()
	a := newRig(t, wire, 1, hw.Model3C59X)
	b := newRig(t, wire, 2, hw.Model3C59X)
	edA, txA, _ := openEther(t, a)
	defer txA.Release()
	defer edA.Release()
	edB, _, rxB := openEther(t, b)
	defer edB.Release()

	if firstPoller(edB.(*etherDev)) != nil {
		t.Fatal("poller engaged without the fast-path option")
	}
	const burst = 5
	f := ethFrame([6]byte{2, 0, 0, 0, 0, 2}, edA.GetAddr(), make([]byte, 64))
	for i := 0; i < burst; i++ {
		if err := txA.Push(com.NewMemBuf(f), uint(len(f))); err != nil {
			t.Fatal(err)
		}
	}
	rxB.wait(t, burst)

	polls, batched, raised, suppressed := GlueFor(b.k.Env).RxCounters()
	if polls != 0 || batched != 0 || raised != 0 || suppressed != 0 {
		t.Fatalf("stock path moved polled-receive counters: polls=%d batched=%d raised=%d suppressed=%d",
			polls, batched, raised, suppressed)
	}
	if _, suppr, _ := b.nic.RxIntrCounters(); suppr != 0 {
		t.Fatalf("NIC suppressed %d interrupts without mitigation", suppr)
	}
	if nb := b.nic.RxBatched(); nb != 0 {
		t.Fatalf("NIC batched %d frames on the stock path", nb)
	}
}

// TestRxPollCloseRestoresStock: Close disengages the poller and turns
// mitigation off; a reopened device engages a fresh poller and traffic
// still flows.
func TestRxPollCloseRestoresStock(t *testing.T) {
	wire := hw.NewEtherWire()
	a := newRig(t, wire, 1, hw.Model3C59X)
	b := newRig(t, wire, 2, hw.Model3C59X)
	fastPool(b)
	edA, txA, _ := openEther(t, a)
	defer txA.Release()
	defer edA.Release()
	rxB := newBatchSink()
	edB, txB := openEtherSink(t, b, rxB)
	rxB.Release()

	node := edB.(*etherDev)
	if firstPoller(node) == nil {
		t.Fatal("poller not engaged at open")
	}
	txB.Release()
	if err := edB.Close(); err != nil {
		t.Fatal(err)
	}
	if firstPoller(node) != nil {
		t.Fatal("poller survived Close")
	}

	rx2 := newBatchSink()
	tx2, err := edB.Open(rx2)
	if err != nil {
		t.Fatal(err)
	}
	rx2.Release()
	defer tx2.Release()
	defer edB.Release()
	if firstPoller(node) == nil {
		t.Fatal("reopen did not re-engage the poller")
	}
	f := ethFrame([6]byte{2, 0, 0, 0, 0, 2}, edA.GetAddr(), make([]byte, 64))
	if err := txA.Push(com.NewMemBuf(f), uint(len(f))); err != nil {
		t.Fatal(err)
	}
	rx2.wait(t, 1)
}

// firstPoller returns ring 0's poller, or nil when none is engaged.
func firstPoller(e *etherDev) *rxPoller {
	if len(e.pollers) == 0 {
		return nil
	}
	return e.pollers[0]
}
