package linuxdev

import (
	"fmt"

	"oskit/internal/com"
	"oskit/internal/dev"
	"oskit/internal/hw"
	"oskit/internal/linux/legacy"
)

// InitIDE registers the Linux IDE disk driver (fdev_linux_init_ide).
func InitIDE(fw *dev.Framework) {
	d := &ideDriver{}
	d.InitDriver(com.DeviceInfo{
		Name:        "side",
		Description: "Linux 2.0-style IDE disk driver (encapsulated)",
		Vendor:      "linux",
		Driver:      "side",
	})
	fw.RegisterDriver(d)
}

type ideDriver struct {
	dev.DriverBase
}

// Probe implements dev.Prober.
func (d *ideDriver) Probe(fw *dev.Framework) int {
	g := GlueFor(fw.Env())
	n := 0
	for _, bd := range fw.Env().Machine.Bus.Devices() {
		disk, ok := bd.HW.(*hw.Disk)
		if !ok {
			continue
		}
		chip := newDiskChip(disk, bd.Vendor, bd.Device)
		g.mu.Lock()
		unit := g.nextHD
		g.mu.Unlock()
		name := fmt.Sprintf("hd%d", unit)
		ldisk := legacy.IDEProbe(g.kern, chip, bd.IRQ, name)
		if ldisk == nil {
			continue
		}
		g.mu.Lock()
		g.nextHD++
		g.mu.Unlock()
		if err := ldisk.Open(); err != nil {
			continue
		}
		node := &ideDev{g: g, disk: ldisk, info: com.DeviceInfo{
			Name:        name,
			Description: "IDE disk",
			Vendor:      "linux",
			Driver:      "side",
		}}
		node.Init()
		fw.RegisterDevice(node)
		n++
	}
	return n
}

// ideDev is the COM node for one donor disk, exporting the Figure 2
// blkio interface over the donor request path.  Raw disk drivers are
// strict about granularity: offsets and sizes must be sector multiples.
type ideDev struct {
	com.RefCount
	g    *Glue
	disk *legacy.IDEDisk
	info com.DeviceInfo
}

// QueryInterface implements com.IUnknown: raw, unbuffered disk drivers
// provide only the basic BlkIO, not the BufIO extension (§4.4.2) —
// a read or write translates to actual disk I/O, so there is nothing to
// map.
func (d *ideDev) QueryInterface(iid com.GUID) (com.IUnknown, error) {
	switch iid {
	case com.UnknownIID, com.DeviceIID, com.BlkIOIID:
		d.AddRef()
		return d, nil
	}
	return nil, com.ErrNoInterface
}

// GetInfo implements com.Device.
func (d *ideDev) GetInfo() com.DeviceInfo { return d.info }

// BlockSize implements com.BlkIO.
func (d *ideDev) BlockSize() uint { return legacy.IDESectorSize }

// Read implements com.BlkIO.
func (d *ideDev) Read(buf []byte, offset uint64) (uint, error) {
	sector, count, err := d.geometry(buf, offset)
	if err != nil {
		return 0, err
	}
	if count == 0 {
		return 0, nil
	}
	restore := d.g.enter("ide-read")
	defer restore()
	if err := d.disk.ReadSectors(sector, count, buf); err != nil {
		return 0, com.ErrIO
	}
	d.g.scBlkReads.Inc()
	d.g.scBlkRdBytes.Add(uint64(count) * legacy.IDESectorSize)
	return uint(count) * legacy.IDESectorSize, nil
}

// Write implements com.BlkIO.
func (d *ideDev) Write(buf []byte, offset uint64) (uint, error) {
	sector, count, err := d.geometry(buf, offset)
	if err != nil {
		return 0, err
	}
	if count == 0 {
		return 0, nil
	}
	restore := d.g.enter("ide-write")
	defer restore()
	if err := d.disk.WriteSectors(sector, count, buf); err != nil {
		return 0, com.ErrIO
	}
	d.g.scBlkWrites.Inc()
	d.g.scBlkWrBytes.Add(uint64(count) * legacy.IDESectorSize)
	return uint(count) * legacy.IDESectorSize, nil
}

// Size implements com.BlkIO.
func (d *ideDev) Size() (uint64, error) {
	return uint64(d.disk.Sectors()) * legacy.IDESectorSize, nil
}

// SetSize implements com.BlkIO; disks are fixed-size.
func (d *ideDev) SetSize(uint64) error { return com.ErrNotImplemented }

// geometry validates sector alignment and bounds.
func (d *ideDev) geometry(buf []byte, offset uint64) (sector, count uint32, err error) {
	if offset%legacy.IDESectorSize != 0 || len(buf)%legacy.IDESectorSize != 0 {
		return 0, 0, com.ErrInval
	}
	sector = uint32(offset / legacy.IDESectorSize)
	count = uint32(len(buf) / legacy.IDESectorSize)
	if sector+count > d.disk.Sectors() {
		return 0, 0, com.ErrInval
	}
	return sector, count, nil
}

var _ com.BlkIO = (*ideDev)(nil)
