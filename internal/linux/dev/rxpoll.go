package linuxdev

import (
	"sync"
	"sync/atomic"

	"oskit/internal/com"
	"oskit/internal/hw"
)

// Polled receive (E12): the fast-path counterpart of the scatter-gather
// transmit branch.  In the stock configuration every accepted frame
// raises the NIC's interrupt and the donor ISR allocates, copies and
// pushes one skbuff per frame — the per-packet interrupt and allocation
// overhead the paper's §6.2.10 profiling names.  When the glue is in
// the opt-in fast-path configuration, the ether node replaces the donor
// ISR with a budgeted poll loop: the NIC mitigates interrupts (only the
// ring's empty→non-empty edge fires), each interrupt drains up to
// RxBudget frames in one pass, the skbuffs draw their data areas from
// the discoverable QuickPool service via the fast-path kmalloc route,
// and the whole batch is handed to the protocol stack through the
// GUID-negotiated com.NetIOBatch extension so its per-packet completion
// work amortizes too.  The donor driver itself is untouched — the poll
// loop is glue, installed through the same RequestIRQ seam the donor
// used (§4.7: specialization by configuration, never by forking).

// DefaultRxBudget is the per-interrupt frame budget of the polled
// receive loop (SetRxBudget overrides it before the path engages).
const DefaultRxBudget = 16

// rxRearmTicks is the period of the timer-driven re-arm backstop: a
// stalled poller (a lost edge, a budget miscount) strands frames in the
// ring for at most this many clock ticks.
const rxRearmTicks = 1

// rxPoller is the budgeted poll loop bound to one receive ring of one
// open ether node.  A single-queue NIC gets one poller on ring 0; a NIC
// grown with ConfigureRxQueues gets one per ring, each on its own
// interrupt line — on a multi-CPU machine with affinity-routed lines
// the drains run concurrently, which is why the delivery path below
// uses only atomics and per-poller scratch.
type rxPoller struct {
	g    *Glue
	node *etherDev
	nic  *hw.NIC
	ring int
	// mirror: only ring 0's poller folds the NIC's (whole-device)
	// interrupt ledger into the stats rows, so deltas aren't counted
	// once per ring.
	mirror bool

	// batch is the sink's negotiated NetIOBatch extension; nil when the
	// sink only speaks per-frame Push (the path still works, frame by
	// frame).
	batch com.NetIOBatch

	// Reused per-poll scratch (interrupt-level code allocates as little
	// as it can).
	scratch [][]byte
	bios    []com.BufIO
	sizes   []uint

	// Interrupt-ledger mirror state: NIC counter values already folded
	// into the glue's stats rows.  Touched only by this ring's handler
	// (one dispatch context), so unsynchronized.
	lastRaised, lastSuppr uint64

	mu          sync.Mutex
	stopped     bool
	rearmCancel func()
}

// SetRxBudget overrides the per-interrupt frame budget for pollers
// engaged after the call (default DefaultRxBudget).  Values < 1 reset
// to the default.
func (g *Glue) SetRxBudget(n int) {
	g.mu.Lock()
	g.rxBudget = n
	g.mu.Unlock()
}

// engageRxPoll switches one open ether node to the polled receive path —
// one poller per receive ring (a stock NIC has one; ConfigureRxQueues
// grows more).  Idempotent; a no-op unless the glue is in the fast-path
// configuration, the node is open, and its chip is the simulated NIC.
func (g *Glue) engageRxPoll(e *etherDev) {
	if !g.FastPath() || e.recv == nil || len(e.pollers) > 0 {
		return
	}
	chip, ok := e.ldev.Chip.(*nicChip)
	if !ok {
		return
	}
	g.mu.Lock()
	budget := g.rxBudget
	g.mu.Unlock()
	if budget < 1 {
		budget = DefaultRxBudget
	}
	nic := chip.nic
	// §4.4.2 negotiation: does the sink ingest batches?  One negotiated
	// reference per ring, so each poller releases its own.
	for q := 0; q < nic.RxQueues(); q++ {
		p := &rxPoller{
			g:       g,
			node:    e,
			nic:     nic,
			ring:    q,
			mirror:  q == 0,
			scratch: make([][]byte, budget),
			bios:    make([]com.BufIO, 0, budget),
			sizes:   make([]uint, 0, budget),
		}
		if obj, err := e.recv.QueryInterface(com.NetIOBatchIID); err == nil {
			p.batch = obj.(com.NetIOBatch)
		}
		// Mirror deltas start at the NIC's current ledger, so the stats
		// rows count only the mitigated era.
		p.lastRaised, p.lastSuppr, _ = nic.RxIntrCounters()
		e.pollers = append(e.pollers, p)
		// Replace the donor ISR on the same line it requested (ring 0 is
		// that line; extra rings have their own); the donor driver keeps
		// believing its handler is installed, which is fine — both drain
		// the same ring, and Close's dev->stop frees the IRQ either way.
		line := nic.RxIRQ(q)
		g.env.Machine.Intr.SetHandler(line, func(int) { p.poll() })
		g.env.Machine.Intr.SetMask(line, false)
	}
	nic.SetRxIntrMitigation(true)
	for _, p := range e.pollers {
		p.startRearmTimer()
	}
}

// stop disengages the poller: the timer backstop dies, mitigation is
// switched off (re-raising the line if frames are pending, so nothing
// strands across the switch), and the negotiated batch sink is
// released.
func (p *rxPoller) stop() {
	p.mu.Lock()
	p.stopped = true
	cancel := p.rearmCancel
	p.rearmCancel = nil
	p.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	p.nic.SetRxIntrMitigation(false)
	if p.batch != nil {
		p.batch.Release()
		p.batch = nil
	}
}

// poll is the interrupt handler: one budgeted drain pass over this
// poller's ring.  Device statistics are updated with atomics — sibling
// rings' handlers may run concurrently on other CPUs.
func (p *rxPoller) poll() {
	if p.mirror {
		p.mirrorIntrStats()
	}
	n := p.nic.RxPopBatchOn(p.ring, p.scratch, len(p.scratch))
	if n == 0 {
		return
	}
	g := p.g
	g.scRxPolls.Inc()
	ldev := p.node.ldev
	recv := p.node.recv
	bios := p.bios[:0]
	sizes := p.sizes[:0]
	for i := 0; i < n; i++ {
		f := p.scratch[i]
		p.scratch[i] = nil
		// The data area comes from kmalloc, which on a fast-path node
		// routes packet-sized blocks through the bound QuickPool service
		// (§6.2.10 on the receive side; fault point qp.recv fires here).
		// The copy is the busmaster DMA into it.
		skb := g.kern.AllocSKB(len(f))
		if skb == nil {
			atomic.AddUint64(&ldev.Stats.RxDropped, 1)
			continue
		}
		copy(skb.Put(len(f)), f)
		skb.Dev = ldev
		atomic.AddUint64(&ldev.Stats.RxPackets, 1)
		atomic.AddUint64(&ldev.Stats.RxBytes, uint64(len(f)))
		if recv == nil {
			skb.Free()
			continue
		}
		bios = append(bios, g.wrapSKB(skb)) // takes over the skb reference
		sizes = append(sizes, uint(skb.Len))
	}
	if len(bios) > 0 {
		g.scRxBatchFrames.Add(uint64(len(bios)))
		if p.batch != nil {
			_ = p.batch.PushBatch(bios, sizes)
		} else {
			for i, bio := range bios {
				_ = recv.Push(bio, sizes[i])
			}
		}
	}
	for i := range bios {
		bios[i] = nil
	}
	p.bios, p.sizes = bios[:0], sizes[:0]
	if n == len(p.scratch) {
		// Budget exhausted with frames possibly still ringed: re-raise
		// the line so the dispatcher schedules another pass (the NAPI
		// "not done" reschedule).
		p.nic.RxRearmOn(p.ring)
	}
}

// mirrorIntrStats folds the NIC's interrupt ledger into the glue's
// discoverable stats rows (rx.intr-raised / rx.intr-suppressed).  The
// NIC counts under its own lock; the rows lag by at most one poll.
func (p *rxPoller) mirrorIntrStats() {
	raised, suppr, _ := p.nic.RxIntrCounters()
	p.g.scRxIntrRaised.Add(raised - p.lastRaised)
	p.g.scRxIntrSuppressed.Add(suppr - p.lastSuppr)
	p.lastRaised, p.lastSuppr = raised, suppr
}

// startRearmTimer schedules the periodic backstop on the machine's
// existing callout clock: if the poller ever stalls with frames ringed,
// the next tick re-raises the line.
func (p *rxPoller) startRearmTimer() {
	var tick func()
	tick = func() {
		p.mu.Lock()
		if p.stopped {
			p.mu.Unlock()
			return
		}
		p.mu.Unlock()
		p.nic.RxRearmOn(p.ring)
		p.mu.Lock()
		if !p.stopped {
			p.rearmCancel = p.g.env.AfterTicks(rxRearmTicks, tick)
		}
		p.mu.Unlock()
	}
	p.mu.Lock()
	p.rearmCancel = p.g.env.AfterTicks(rxRearmTicks, tick)
	p.mu.Unlock()
}
