package linuxdev

import (
	"fmt"

	"oskit/internal/com"
	"oskit/internal/dev"
	"oskit/internal/hw"
	"oskit/internal/linux/legacy"
)

// InitEthernet registers the Linux Ethernet driver set with the
// framework — fdev_linux_init_ethernet from the §5 initialization
// sequence, which "causes all supported drivers to be linked into the
// resulting application".  (A client can alternatively register a single
// driver with InitEthernetDriver.)
func InitEthernet(fw *dev.Framework) {
	InitEthernetDriver(fw, "sne2k")
	InitEthernetDriver(fw, "s3c59x")
}

// InitEthernetDriver registers one named Linux Ethernet driver.
func InitEthernetDriver(fw *dev.Framework, name string) {
	d := &etherDriver{name: name}
	d.InitDriver(com.DeviceInfo{
		Name:        name,
		Description: "Linux 2.0-style Ethernet driver (encapsulated)",
		Vendor:      "linux",
		Driver:      name,
	})
	fw.RegisterDriver(d)
}

// etherDriver probes the machine bus for chips its donor driver claims.
type etherDriver struct {
	dev.DriverBase
	name string
}

// Probe implements dev.Prober.
func (d *etherDriver) Probe(fw *dev.Framework) int {
	g := GlueFor(fw.Env())
	n := 0
	for _, bd := range fw.Env().Machine.Bus.Devices() {
		nic, ok := bd.HW.(*hw.NIC)
		if !ok {
			continue
		}
		chip := &nicChip{nic: nic, vendor: bd.Vendor, device: bd.Device}
		g.mu.Lock()
		unit := g.nextEth
		g.mu.Unlock()
		name := fmt.Sprintf("eth%d", unit)
		var ldev *legacy.NetDevice
		switch d.name {
		case "sne2k":
			ldev = legacy.SNE2KProbe(g.kern, chip, bd.IRQ, name)
		case "s3c59x":
			ldev = legacy.S3C59XProbe(g.kern, chip, bd.IRQ, name)
		}
		if ldev == nil {
			continue
		}
		g.mu.Lock()
		g.nextEth++
		g.mu.Unlock()
		node := &etherDev{g: g, ldev: ldev, info: com.DeviceInfo{
			Name:        name,
			Description: "Ethernet interface",
			Vendor:      "linux",
			Driver:      d.name,
		}}
		node.Init()
		g.mu.Lock()
		g.route[ldev] = node
		g.mu.Unlock()
		fw.RegisterDevice(node)
		n++
	}
	return n
}

// etherDev is the COM device node for one donor network device.
type etherDev struct {
	com.RefCount
	g    *Glue
	ldev *legacy.NetDevice
	info com.DeviceInfo
	recv com.NetIO
	// pollers, when non-empty, are the fast-path polled receive loops
	// (one per receive ring) that have replaced the donor ISR on this
	// device (rxpoll.go).
	pollers []*rxPoller
}

// QueryInterface implements com.IUnknown: the node answers for Device and
// EtherDev (the common interfaces that "hide the nature and origin of
// each individual driver", §4.6).
func (e *etherDev) QueryInterface(iid com.GUID) (com.IUnknown, error) {
	switch iid {
	case com.UnknownIID, com.DeviceIID, com.EtherDevIID:
		e.AddRef()
		return e, nil
	}
	return nil, com.ErrNoInterface
}

// GetInfo implements com.Device.
func (e *etherDev) GetInfo() com.DeviceInfo { return e.info }

// GetAddr implements com.EtherDev.
func (e *etherDev) GetAddr() [6]byte { return e.ldev.MAC }

// Open implements com.EtherDev: brings the donor device up and exchanges
// NetIO callbacks (§5).
func (e *etherDev) Open(recv com.NetIO) (com.NetIO, error) {
	restore := e.g.enter("ether-open")
	defer restore()
	if e.recv != nil {
		return nil, com.ErrBusy
	}
	recv.AddRef()
	e.recv = recv
	if err := e.ldev.Open(e.ldev); err != nil {
		e.recv = nil
		recv.Release()
		return nil, com.ErrNoDev
	}
	// On a fast-path node the open device switches to the polled
	// receive loop; EnableFastPath catches devices opened earlier.
	e.g.engageRxPoll(e)
	s := &etherSend{g: e.g, node: e}
	s.Init()
	return s, nil
}

// Close implements com.EtherDev.
func (e *etherDev) Close() error {
	restore := e.g.enter("ether-close")
	defer restore()
	if e.recv == nil {
		return com.ErrInval
	}
	for _, p := range e.pollers {
		p.stop()
	}
	e.pollers = nil
	_ = e.ldev.Stop(e.ldev)
	e.recv.Release()
	e.recv = nil
	return nil
}

// Stats exposes the donor statistics (extended, driver-specific
// information per the open-implementation philosophy, §4.6).
func (e *etherDev) Stats() legacy.NetStats { return e.ldev.Stats }

var _ com.EtherDev = (*etherDev)(nil)

// etherSend is the transmit-side NetIO handed to the client at Open.
type etherSend struct {
	com.RefCount
	g    *Glue
	node *etherDev
}

// QueryInterface implements com.IUnknown.
func (s *etherSend) QueryInterface(iid com.GUID) (com.IUnknown, error) {
	switch iid {
	case com.UnknownIID, com.NetIOIID:
		s.AddRef()
		return s, nil
	}
	return nil, com.ErrNoInterface
}

// Push implements com.NetIO: transmit one packet.  This is the exact
// §4.7.3 decision tree: a native skbuff is used as is; a foreign BufIO
// that can be mapped contiguously becomes a "fake" skbuff pointing at
// its data with no copy; anything else is read (copied) into a fresh
// skbuff.  In the opt-in fast-path configuration one more branch sits
// between those two: if the device can gather (FeatSG) and the producer
// exports its fragment list (com.SGBufIO), a scattered packet becomes a
// gather skbuff — no flatten copy, which is the Table-1 send cost E11
// measures the recovery of.
func (s *etherSend) Push(pkt com.BufIO, size uint) error {
	restore := s.g.enter("ether-xmit")
	defer restore()
	defer pkt.Release() // Push consumes the caller's reference

	// A checksum-offload packet (E15) declares itself through
	// com.TxCsumIID: its transport checksum field holds only the seeded
	// pseudo-header sum.  Whichever branch transmits it must either hand
	// the descriptor to a FeatCsum engine or finish the sum in software
	// — default-configuration packets never answer, so needsCsum stays
	// false and every branch below is byte-for-byte unchanged.
	needsCsum, csStart, csOff := false, 0, 0
	if obj, err := pkt.QueryInterface(com.TxCsumIID); err == nil {
		tc := obj.(com.TxCsum)
		needsCsum, csStart, csOff = tc.CsumSpec()
		tc.Release()
	}

	ldev := s.node.ldev
	if skb, ok := s.g.nativeSKB(pkt); ok {
		s.g.scTxNative.Inc()
		skb.Trim(int(size))
		s.applyCsum(skb, needsCsum, csStart, csOff)
		return mapXmitErr(ldev.HardStartXmit(skb, ldev))
	}
	if data, err := pkt.Map(0, size); err == nil {
		s.g.scTxMapped.Inc()
		skb := s.g.kern.FakeSKB(data)
		s.applyCsum(skb, needsCsum, csStart, csOff)
		err := ldev.HardStartXmit(skb, ldev)
		_ = pkt.Unmap(data)
		return mapXmitErr(err)
	}
	if s.g.fastpath.Load() && ldev.Features&legacy.FeatSG != 0 {
		if obj, err := pkt.QueryInterface(com.SGBufIOIID); err == nil {
			sg := obj.(com.SGBufIO)
			if parts, err := sg.MapSG(0, size); err == nil {
				s.g.scTxSG.Inc()
				skb := s.g.kern.FakeSKBGather(parts)
				s.applyCsum(skb, needsCsum, csStart, csOff)
				xerr := ldev.HardStartXmit(skb, ldev)
				_ = sg.UnmapSG(parts)
				sg.Release()
				return mapXmitErr(xerr)
			}
			sg.Release()
		}
	}
	s.g.scTxFlattened.Inc()
	skb := s.g.kern.AllocSKB(int(size))
	if skb == nil {
		return com.ErrNoMem
	}
	n, err := pkt.Read(skb.Put(int(size)), 0)
	if err != nil || n < size {
		skb.Free()
		return com.ErrIO
	}
	s.applyCsum(skb, needsCsum, csStart, csOff)
	return mapXmitErr(ldev.HardStartXmit(skb, ldev))
}

// applyCsum attaches a deferred-checksum descriptor to the outgoing
// skbuff.  A FeatCsum device gets the descriptor and folds the sum in
// its gather engine (counted as xmit.csum_offloaded); for any other
// device the sum is finished in software right here, so the driver
// always sees a fully-checksummed frame.
func (s *etherSend) applyCsum(skb *legacy.SKBuff, needs bool, start, off int) {
	if !needs {
		return
	}
	skb.NeedsCsum, skb.CsumStart, skb.CsumOff = true, start, off
	if s.node.ldev.Features&legacy.FeatCsum != 0 {
		s.g.scTxCsum.Inc()
	} else {
		skb.FinishCsum()
	}
}

// AllocBufIO implements com.NetIO: hand the producer a native skbuff so
// its fill is already in the donor representation.
func (s *etherSend) AllocBufIO(size uint) (com.BufIO, error) {
	skb := s.g.kern.AllocSKB(int(size))
	if skb == nil {
		return nil, com.ErrNoMem
	}
	skb.Put(int(size))
	return s.g.wrapSKB(skb), nil
}

func mapXmitErr(err error) error {
	if err == nil {
		return nil
	}
	return com.ErrIO
}
