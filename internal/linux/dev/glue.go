// Package linuxdev is the glue that encapsulates the kit's donor Linux
// driver code (oskit/internal/linux/legacy) and exports it through COM
// interfaces — the technique of paper §4.7.
//
// The glue has two faces.  Downward, it implements the donor-internal
// environment the drivers were written against: kmalloc honouring GFP
// flags (§4.7.7), cli/sti mapped to the machine's interrupt exclusion,
// sleep_on/wake_up emulated over the kit's sleep records (§4.7.6), the
// current task manufactured on demand at every component entry point and
// saved across blocking (§4.7.5), and the direct physical-memory map some
// drivers assume (§4.7.8).  Upward, it exports each probed device as an
// fdev device node answering for EtherDev or BlkIO, and wraps skbuffs as
// BufIO objects without copying by planting a pointer in the skbuff's
// one-word COM slot (§4.7.3).
package linuxdev

import (
	"sort"
	"sync"
	"sync/atomic"

	"oskit/internal/com"
	"oskit/internal/core"
	"oskit/internal/hw"
	"oskit/internal/linux/legacy"
	"oskit/internal/stats"
)

// Glue is the per-machine encapsulation state: one donor "kernel image"
// plus its binding to the kit environment.
type Glue struct {
	env  *core.Env
	kern *legacy.Kernel

	mu      sync.Mutex
	nextPID int //oskit:guardedby mu
	nextEth int //oskit:guardedby mu
	nextHD  int //oskit:guardedby mu
	// route maps donor net devices to their COM nodes for the netif_rx
	// upcall.
	route map[*legacy.NetDevice]*etherDev //oskit:guardedby mu

	// nativeKmalloc selects Linux's own bucket allocator (the
	// monolithic baseline) over the glue's client-memory-service
	// mapping (the encapsulated configuration).
	nativeKmalloc bool

	// kmHook, when set, may veto a kmalloc before any allocator runs
	// (fault injection; see SetKmallocFaultHook).  Read with the donor
	// allocator exclusion held, like the buckets.  kmHookA mirrors it
	// atomically for the per-CPU front, which consults the hook with no
	// locks held (kmcache.go).
	kmHook  func(size uint32) bool //oskit:guardedby klMu
	kmHookA atomic.Pointer[func(size uint32) bool]

	// front, when set, is the per-CPU cache over the fast-path kmalloc
	// route (E16, kmcache.go).  Nil on the default path.
	front atomic.Pointer[kmFront]

	// smp switches the donor exclusion discipline: off (the default),
	// kmalloc/kfree serialize against interrupt handlers with cli, the
	// donor contract on a uniprocessor.  On, cli is per-CPU and gives no
	// cross-CPU exclusion — worse, a process-level thread that disables
	// interrupts while holding a protocol lock deadlocks against a
	// dispatcher whose pending handler wants that lock — so the shared
	// donor allocator state moves under klMu and the cli seam becomes a
	// no-op (donor driver entry is externally serialized: transmit under
	// the stack's TX lock, receive by the per-ring pollers that never
	// run donor ISR code).  Set before traffic, like EnableFastPath.
	smp atomic.Bool
	// klMu guards the kmalloc buckets, the fault hook and the pool
	// binding in SMP mode.
	klMu klLock

	// fastpath is the opt-in send configuration of E11 (EnableFastPath):
	// the transmit path may hand FeatSG devices gather skbuffs built
	// from a producer's com.SGBufIO fragment list instead of flattening,
	// and kmalloc routes small blocks through the bound allocator
	// service.  The flag is atomic so the hot paths read it without the
	// exclusion; pool is written before the flag flips and only read
	// after it tests true.
	fastpath atomic.Bool
	// pool is the discoverable fast allocator (normally a
	// libc.QuickPool) kmalloc draws packet-sized blocks from on the
	// fast path.  The glue holds one COM reference.
	pool com.Allocator //oskit:guardedby klMu
	// rxBudget is the per-interrupt frame budget of the polled receive
	// loop (rxpoll.go); 0 means DefaultRxBudget.
	rxBudget int //oskit:guardedby mu

	// com.Stats export: driver-glue hot-path counters, registered as
	// "linux_dev" in the environment's services registry.  scKmCPUHits
	// exists only once the per-CPU front is enabled, so the default
	// configuration snapshots exactly the seed's rows.
	statsSet     *stats.Set //oskit:initonly
	scKmallocs   *stats.Counter
	scKfrees     *stats.Counter
	scKmFails    *stats.Counter
	scKmCPUHits  *stats.Counter
	scBlkReads   *stats.Counter
	scBlkWrites  *stats.Counter
	scBlkRdBytes *stats.Counter
	scBlkWrBytes *stats.Counter
	// Transmit path-shape counters (§4.7.3 decision tree): which branch
	// each Push took.  xmit.flattened is the Table-1 send copy;
	// xmit.sg is the fast path that replaces it.
	scTxNative    *stats.Counter
	scTxMapped    *stats.Counter
	scTxSG        *stats.Counter
	scTxFlattened *stats.Counter
	// xmit.csum_offloaded counts packets whose transport checksum was
	// left to a FeatCsum device's gather engine (E15); zero in every
	// default configuration.
	scTxCsum *stats.Counter
	// Polled-receive path-shape counters (rxpoll.go): drain passes,
	// frames that arrived batched, and the NIC's interrupt ledger
	// mirrored per poll.  All stay zero in the default configuration —
	// the pin TestPathShapeMatrix checks.
	scRxPolls          *stats.Counter
	scRxBatchFrames    *stats.Counter
	scRxIntrRaised     *stats.Counter
	scRxIntrSuppressed *stats.Counter
	// kmalloc bucket free lists: [class][dma?]; class i holds blocks of
	// 32<<i bytes.  Protected by the donor allocator exclusion (klMu in
	// SMP mode, cli otherwise), not mu (the donor contract).
	buckets [kmBuckets][2][]*legacy.KBuf //oskit:guardedby klMu
}

const (
	kmMinShift = 5 // 32-byte minimum block
	kmBuckets  = 8 // up to 32<<7 = 4096
)

// klLock is the SMP-mode donor allocator lock: taken on the packet
// paths while the stack's TX hand-off lock is held, and above the
// QuickPool leaf the fast-path kmalloc route draws from.
//
//oskit:lockrank 75
type klLock struct{ sync.Mutex }

// SetSMP switches the glue's exclusion discipline (see the smp field).
// Call before traffic; the single-CPU default is unchanged.
func (g *Glue) SetSMP(on bool) { g.smp.Store(on) }

// SMP reports whether SetSMP(true) has been called.
func (g *Glue) SMP() bool { return g.smp.Load() }

// kmLock enters the donor allocator exclusion — klMu in SMP mode,
// interrupt exclusion otherwise — returning the matching leave.
func (g *Glue) kmLock() func() {
	if g.smp.Load() {
		g.klMu.Lock()
		return g.klMu.Unlock
	}
	if g.env.InIntr() {
		return func() {}
	}
	g.env.IntrDisable()
	return g.env.IntrEnable
}

// bucketAlloc is the Linux-2.0-style power-of-two allocator.  Called
// with interrupt exclusion held.
func (g *Glue) bucketAlloc(size uint32, gfp int) *legacy.KBuf {
	dma := 0
	var flags core.MemFlags
	if gfp&legacy.GFPDMA != 0 {
		dma = 1
		flags = core.MemDMA
	}
	cls, bs := kmClass(size)
	if cls < 0 {
		// Large allocation: straight to the client service.
		addr, buf, ok := g.env.MemAlloc(size, flags, 8)
		if !ok {
			return nil
		}
		return &legacy.KBuf{Addr: addr, Data: buf}
	}
	list := g.buckets[cls][dma]
	if len(list) == 0 {
		// Refill: one page carved into blocks.
		addr, buf, ok := g.env.MemAlloc(4096, flags, 4096)
		if !ok {
			return nil
		}
		for off := uint32(0); off+bs <= 4096; off += bs {
			list = append(list, &legacy.KBuf{Addr: addr + off, Data: buf[off : off+bs : off+bs]})
		}
	}
	b := list[len(list)-1]
	g.buckets[cls][dma] = list[:len(list)-1]
	return b
}

// bucketFree returns a block to its free list (large blocks go back to
// the client).  Called with interrupt exclusion held.
func (g *Glue) bucketFree(b *legacy.KBuf) {
	cls, _ := kmClass(uint32(len(b.Data)))
	if cls < 0 {
		g.env.MemFree(b.Addr, uint32(len(b.Data)))
		return
	}
	dma := 0
	if b.Addr < hw.DMALimit {
		dma = 1
	}
	g.buckets[cls][dma] = append(g.buckets[cls][dma], b)
}

func kmClass(size uint32) (int, uint32) {
	bs := uint32(1) << kmMinShift
	for i := 0; i < kmBuckets; i++ {
		if size <= bs {
			return i, bs
		}
		bs <<= 1
	}
	return -1, 0
}

var (
	gluesMu sync.Mutex
	glues   = map[*core.Env]*Glue{}
)

// GlueFor returns (creating on first use) the machine's Linux glue: the
// analog of linking the donor code into that machine's kernel image.
func GlueFor(env *core.Env) *Glue {
	gluesMu.Lock()
	defer gluesMu.Unlock()
	if g, ok := glues[env]; ok {
		return g
	}
	g := &Glue{env: env, route: map[*legacy.NetDevice]*etherDev{}}
	set := stats.NewSet("linux_dev")
	g.statsSet = set
	g.scKmallocs = set.Counter("kmalloc.allocs")
	g.scKfrees = set.Counter("kmalloc.frees")
	g.scKmFails = set.Counter("kmalloc.failures")
	g.scBlkReads = set.Counter("blkio.reads")
	g.scBlkWrites = set.Counter("blkio.writes")
	g.scBlkRdBytes = set.Counter("blkio.read_bytes")
	g.scBlkWrBytes = set.Counter("blkio.write_bytes")
	g.scTxNative = set.Counter("xmit.native")
	g.scTxMapped = set.Counter("xmit.mapped")
	g.scTxSG = set.Counter("xmit.sg")
	g.scTxFlattened = set.Counter("xmit.flattened")
	g.scTxCsum = set.Counter("xmit.csum_offloaded")
	g.scRxPolls = set.Counter("rx.polls")
	g.scRxBatchFrames = set.Counter("rx.batched-frames")
	g.scRxIntrRaised = set.Counter("rx.intr-raised")
	g.scRxIntrSuppressed = set.Counter("rx.intr-suppressed")
	env.Registry.Register(com.StatsIID, set)
	set.Release()
	g.kern = g.buildKernel()
	glues[env] = g
	return g
}

// Kernel exposes the donor environment (tests; donor-level poking).
func (g *Glue) Kernel() *legacy.Kernel { return g.kern }

// SetKmallocFaultHook installs (or, with nil, removes) a kmalloc
// fault-injection hook: when it returns true the allocation fails as
// GFP exhaustion would (counted in kmalloc.failures).  The write is
// made under the donor's interrupt exclusion so the hook may be
// toggled while drivers allocate.
func (g *Glue) SetKmallocFaultHook(h func(size uint32) bool) {
	unlock := g.kmLock()
	g.kmHook = h //oskit:allow guarded -- under g.kmLock(): klMu in SMP mode, interrupt exclusion (cli) on the uniprocessor default; the lock wrapper is opaque to the tracker
	if h == nil {
		g.kmHookA.Store(nil)
	} else {
		g.kmHookA.Store(&h)
	}
	unlock()
}

// EnableFastPath switches the glue into the opt-in fast-path send
// configuration: gather skbuffs flow to FeatSG drivers without the
// §4.7.3 flatten copy, and kmalloc draws packet-sized blocks from pool
// (a com.Allocator service, normally a QuickPool) instead of the client
// memory service.  pool may be nil to enable scatter-gather alone.  The
// glue takes one COM reference on pool.  Call before traffic; the
// default configuration never calls it, which is what keeps Table 1/2
// and the E9 asymmetry reproducible.
func (g *Glue) EnableFastPath(pool com.Allocator) {
	if pool != nil {
		pool.AddRef()
	}
	unlock := g.kmLock()
	if g.pool != nil { //oskit:allow guarded -- under g.kmLock(): klMu in SMP mode, cli otherwise; opaque to the tracker
		g.pool.Release()
	}
	g.pool = pool //oskit:allow guarded -- under g.kmLock(): klMu in SMP mode, interrupt exclusion (cli) on the uniprocessor default; the lock wrapper is opaque to the tracker
	unlock()
	g.fastpath.Store(true)
	// The receive side engages per open device: devices opened before
	// the switch pick up the polled path here, devices opened after pick
	// it up in Open.
	g.mu.Lock()
	nodes := make([]*etherDev, 0, len(g.route))
	for _, e := range g.route {
		nodes = append(nodes, e)
	}
	g.mu.Unlock()
	// Engage in stable device order, not map order: the mitigation
	// counters and rearm timers start in a replayable sequence
	// (detsource).
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].ldev.Name < nodes[j].ldev.Name })
	for _, e := range nodes {
		g.engageRxPoll(e)
	}
}

// FastPath reports whether EnableFastPath has been called.
func (g *Glue) FastPath() bool { return g.fastpath.Load() }

// RxCounters snapshots the polled-receive path-shape counters: drain
// passes, frames delivered in batches, and the mirrored NIC interrupt
// ledger.  The same values are discoverable as "rx.*" in the
// "linux_dev" stats set.
func (g *Glue) RxCounters() (polls, batched, raised, suppressed uint64) {
	return g.scRxPolls.Load(), g.scRxBatchFrames.Load(),
		g.scRxIntrRaised.Load(), g.scRxIntrSuppressed.Load()
}

// XmitCounters snapshots the transmit path-shape counters: how many
// Push calls took the native-skbuff, mapped (FakeSKB), scatter-gather,
// and flatten-copy branches.  The same values are discoverable as
// "xmit.*" in the "linux_dev" stats set.
func (g *Glue) XmitCounters() (native, mapped, sg, flattened uint64) {
	return g.scTxNative.Load(), g.scTxMapped.Load(),
		g.scTxSG.Load(), g.scTxFlattened.Load()
}

// buildKernel wires every donor service to the kit environment.
func (g *Glue) buildKernel() *legacy.Kernel {
	env := g.env
	k := &legacy.Kernel{}

	// §4.7.7 territory: memory allocation.  In the encapsulated
	// configuration the donor kmalloc maps to the client memory service
	// — by default the kit's LMM, whose first-fit flexibility is not
	// built for a per-packet allocation rate; the paper's §6.2.10
	// profiling names exactly this overhead.  In the *monolithic* Linux
	// baseline (ProbeNative), kmalloc is Linux's own power-of-two
	// bucket allocator, which is what the real Linux kernel ran.
	// Everything is serialized against interrupt handlers with cli, as
	// the original was.
	k.Kmalloc = func(size uint32, gfp int) *legacy.KBuf {
		// E16 front: pool-class sizes take the per-CPU route when the
		// front is on; everything else (and everything, when it is off)
		// rides the stock closure below unchanged.
		if f := g.front.Load(); f != nil && kmCacheClass(size) >= 0 {
			return g.kmallocCached(f, size)
		}
		unlock := g.kmLock()
		var b *legacy.KBuf
		if g.kmHook != nil && g.kmHook(size) { //oskit:allow guarded -- under g.kmLock(): klMu in SMP mode, interrupt exclusion (cli) on the uniprocessor default; the lock wrapper is opaque to the tracker
			// Injected exhaustion: fail before either allocator runs.
		} else if g.nativeKmalloc {
			b = g.bucketAlloc(size, gfp) //oskit:allow guarded -- under g.kmLock(): klMu in SMP mode, interrupt exclusion (cli) on the uniprocessor default; the lock wrapper is opaque to the tracker
		} else if g.fastpath.Load() && g.pool != nil && size <= 4096 { //oskit:allow guarded -- under g.kmLock(): klMu in SMP mode, interrupt exclusion (cli) on the uniprocessor default; the lock wrapper is opaque to the tracker
			// Fast path: packet-sized blocks (skbuff data areas, driver
			// staging) come from the bound allocator service.  The GFP
			// DMA constraint is waived: the simulated busmaster engine
			// addresses all memory, like PCI-era hardware without the
			// ISA 16 MB limit.
			if addr, buf, ok := g.pool.AllocMem(size); ok { //oskit:allow guarded -- under g.kmLock(): klMu in SMP mode, interrupt exclusion (cli) on the uniprocessor default; the lock wrapper is opaque to the tracker
				b = &legacy.KBuf{Addr: addr, Data: buf, Pooled: true}
			}
		} else {
			var flags core.MemFlags
			if gfp&legacy.GFPDMA != 0 {
				flags |= core.MemDMA
			}
			if addr, buf, ok := env.MemAlloc(size, flags, 8); ok {
				b = &legacy.KBuf{Addr: addr, Data: buf}
			}
		}
		unlock()
		if b != nil {
			g.scKmallocs.Inc()
		} else {
			g.scKmFails.Inc()
		}
		return b
	}
	k.Kfree = func(b *legacy.KBuf) {
		// E16 front: whole pool-class blocks stash CPU-locally; an
		// overflow (or any non-pool block) falls to the stock path.
		if f := g.front.Load(); f != nil && b.Pooled {
			if c := f.cacheForBlock(b); c != nil {
				if cpu, ok := c.Put(b); ok {
					g.scKfrees.IncOn(cpu)
					return
				}
			}
		}
		unlock := g.kmLock()
		switch {
		case b.Pooled:
			g.pool.FreeMem(b.Addr, uint32(len(b.Data))) //oskit:allow guarded -- under g.kmLock(): klMu in SMP mode, interrupt exclusion (cli) on the uniprocessor default; the lock wrapper is opaque to the tracker
		case g.nativeKmalloc:
			g.bucketFree(b) //oskit:allow guarded -- under g.kmLock(): klMu in SMP mode, interrupt exclusion (cli) on the uniprocessor default; the lock wrapper is opaque to the tracker
		default:
			env.MemFree(b.Addr, uint32(len(b.Data)))
		}
		unlock()
		g.scKfrees.Inc()
	}

	// Interrupt exclusion.  At interrupt level these are no-ops: the
	// dispatcher already holds the exclusion, exactly like EFLAGS.IF
	// being clear inside a real handler.  In SMP mode the whole seam is
	// a no-op: per-CPU cli excludes nothing across CPUs, and donor
	// entry points are serialized by the locks of the code above (the
	// allocator, the one donor state the packet paths share, has klMu).
	k.SaveFlags = func() uint32 {
		if g.smp.Load() || env.InIntr() {
			return 1
		}
		return 0
	}
	k.Cli = func() {
		if g.smp.Load() {
			return
		}
		if !env.InIntr() {
			env.IntrDisable()
		}
	}
	k.RestoreFlags = func(f uint32) {
		if f == 0 {
			env.IntrEnable()
		}
	}

	k.RequestIRQ = func(irq int, handler func(int), name string) error {
		env.Machine.Intr.SetHandler(irq, handler)
		env.Machine.Intr.SetMask(irq, false)
		return nil
	}
	k.FreeIRQ = func(irq int) {
		env.Machine.Intr.SetMask(irq, true)
		env.Machine.Intr.SetHandler(irq, nil)
	}

	// §4.7.6: sleep/wakeup over sleep records.  SleepOn follows the
	// donor contract: entered with interrupts disabled, atomically
	// registers the sleeper, re-enables while blocked, returns with
	// interrupts disabled again.  The current task is saved across the
	// block so other activities entering the component meanwhile don't
	// see a stale pointer (§4.7.5).
	//
	// wqRec materializes a queue's sleep record under a lock: in SMP
	// mode the completion handler races the sleeper's registration with
	// no cli to exclude it, so both sides must agree on ONE record — a
	// wakeup landing before the sleep is then remembered by the record
	// (the binary-semaphore contract) instead of being lost.
	var wqMu sync.Mutex
	wqRec := func(q *legacy.WaitQueue) *core.SleepRec {
		wqMu.Lock()
		defer wqMu.Unlock()
		rec, _ := q.Glue.(*core.SleepRec)
		if rec == nil {
			rec = env.SleepInit()
			q.Glue = rec
		}
		return rec
	}
	k.SleepOn = func(q *legacy.WaitQueue) {
		rec := wqRec(q)
		saved := k.Current
		k.Current = nil
		if g.smp.Load() {
			// SMP: this kernel's own cli seam is a no-op, but an outer
			// component (the file system's splbio bracketing a disk
			// read) may still hold the boot CPU's exclusion — sleep_on
			// drops whatever this thread holds, exactly as on UP, or
			// the completion handler could never dispatch.
			depth := env.Machine.Intr.DropAllHeld()
			env.Sleep(rec)
			if depth > 0 {
				env.Machine.Intr.RestoreAll(depth)
			}
		} else {
			// sleep_on enables interrupts *fully* while blocked (sti,
			// not one restore_flags level): the caller may be nested
			// under other components' exclusion sections.
			depth := env.Machine.Intr.DropAll()
			env.Sleep(rec)
			env.Machine.Intr.RestoreAll(depth)
		}
		k.Current = saved
	}
	k.WakeUp = func(q *legacy.WaitQueue) {
		var rec *core.SleepRec
		if g.smp.Load() {
			rec = wqRec(q)
		} else {
			exclude := !env.InIntr()
			if exclude {
				env.IntrDisable()
			}
			rec, _ = q.Glue.(*core.SleepRec)
			if exclude {
				env.IntrEnable()
			}
		}
		if rec != nil {
			env.Wakeup(rec)
		}
	}

	k.Jiffies = env.Ticks
	k.AddTimer = env.AfterTicks
	k.Printk = func(format string, args ...any) { env.Log("linux: "+trimNL(format), args...) }

	// §4.7.8: the direct physical map the s3c59x-class drivers assume.
	// On a client OS without such a map these drivers are unusable;
	// the simulated PC direct-maps everything, so the glue provides it.
	k.PhysToVirt = func(addr, size uint32) []byte {
		return env.Machine.Mem.MustSlice(addr, size)
	}

	// netif_rx: route each received skbuff to its device's registered
	// receive NetIO, as a zero-copy BufIO.  Runs at interrupt level.
	k.NetifRx = func(skb *legacy.SKBuff) {
		g.mu.Lock()
		node := g.route[skb.Dev]
		g.mu.Unlock()
		if node == nil || node.recv == nil {
			skb.Free()
			return
		}
		bio := g.wrapSKB(skb) // takes over the skb reference
		if err := node.recv.Push(bio, uint(skb.Len)); err != nil {
			// The sink refused the packet; Push consumed the ref
			// regardless (COM rules), nothing more to do.
			_ = err
		}
	}

	return k
}

// ProbeNative probes the machine's bus with the donor Ethernet drivers
// and returns the raw legacy net devices, bypassing the COM export.
// This is how the *monolithic* Linux baseline of Tables 1–2 is
// configured: the Linux protocol stack attaches to the driver directly,
// donor representation end to end, no glue in the packet path.
func ProbeNative(env *core.Env) (*legacy.Kernel, []*legacy.NetDevice) {
	g := GlueFor(env)
	g.nativeKmalloc = true // the monolithic kernel keeps Linux's fast kmalloc
	var devs []*legacy.NetDevice
	for _, bd := range env.Machine.Bus.Devices() {
		nic, ok := bd.HW.(*hw.NIC)
		if !ok {
			continue
		}
		chip := &nicChip{nic: nic, vendor: bd.Vendor, device: bd.Device}
		g.mu.Lock()
		name := "eth" + string(rune('0'+g.nextEth))
		g.mu.Unlock()
		var ldev *legacy.NetDevice
		if ldev = legacy.SNE2KProbe(g.kern, chip, bd.IRQ, name); ldev == nil {
			ldev = legacy.S3C59XProbe(g.kern, chip, bd.IRQ, name)
		}
		if ldev == nil {
			continue
		}
		g.mu.Lock()
		g.nextEth++
		g.mu.Unlock()
		devs = append(devs, ldev)
	}
	return g.kern, devs
}

// enter manufactures the current process for one component entry point
// and returns the matching restore, per §4.7.5: "the glue code creates
// and initializes a minimal temporary process structure … for the
// duration of this call".
func (g *Glue) enter(comm string) func() {
	g.mu.Lock()
	g.nextPID++
	pid := g.nextPID
	g.mu.Unlock()
	prev := g.kern.Current
	g.kern.Current = &legacy.Task{PID: pid, Comm: comm}
	return func() { g.kern.Current = prev }
}

func trimNL(s string) string {
	for len(s) > 0 && s[len(s)-1] == '\n' {
		s = s[:len(s)-1]
	}
	return s
}

// ---- chip adapters: the simulated silicon as donor register interfaces.

// nicChip adapts hw.NIC to legacy.EtherChip.
type nicChip struct {
	nic            *hw.NIC
	vendor, device uint16
}

func (c *nicChip) IDs() (uint16, uint16) { return c.vendor, c.device }
func (c *nicChip) MacAddr() [6]byte      { return c.nic.Mac }
func (c *nicChip) TxFrame(frame []byte)  { c.nic.Transmit(frame) }

// TxFrameGather implements legacy.GatherChip: the simulated NIC's
// gather-DMA engine fetches the frame from the fragment list in one pass
// (the same single copy a contiguous transmit costs).
func (c *nicChip) TxFrameGather(parts [][]byte) { c.nic.TransmitGather(parts) }

// TxFrameGatherCsum implements legacy.CsumChip: the gather engine folds
// the transport checksum into the frame on its way out (FeatCsum).
func (c *nicChip) TxFrameGatherCsum(parts [][]byte, start, off int) {
	c.nic.TransmitGatherCsum(parts, start, off)
}

// RxFrame is the PIO path: the frame is copied off the simulated card.
func (c *nicChip) RxFrame() []byte { return c.nic.RxPop() }

// RxFrameInto is the busmaster path: the "DMA engine" writes directly
// into the caller's buffer.  A nil dst discards the frame.
func (c *nicChip) RxFrameInto(dst []byte) int {
	f := c.nic.RxPop()
	if f == nil {
		return 0
	}
	if dst == nil {
		return len(f)
	}
	return copy(dst, f)
}

// diskChip adapts hw.Disk to legacy.DiskChip.
type diskChip struct {
	disk           *hw.Disk
	vendor, device uint16

	mu   sync.Mutex
	tags map[*hw.DiskReq]any
}

func newDiskChip(d *hw.Disk, vendor, device uint16) *diskChip {
	return &diskChip{disk: d, vendor: vendor, device: device, tags: map[*hw.DiskReq]any{}}
}

func (c *diskChip) IDs() (uint16, uint16) { return c.vendor, c.device }
func (c *diskChip) Sectors() uint32       { return c.disk.Sectors() }

func (c *diskChip) Start(write bool, sector, count uint32, buf []byte, tag any) {
	r := &hw.DiskReq{Write: write, Sector: sector, Count: count, Buf: buf}
	c.mu.Lock()
	c.tags[r] = tag
	c.mu.Unlock()
	c.disk.Submit(r)
}

func (c *diskChip) Done() (any, error, bool) {
	r := c.disk.Reap()
	if r == nil {
		return nil, nil, false
	}
	c.mu.Lock()
	tag := c.tags[r]
	delete(c.tags, r)
	c.mu.Unlock()
	return tag, r.Err, true
}
