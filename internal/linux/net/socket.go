package linuxnet

import (
	"encoding/binary"

	"oskit/internal/com"
	"oskit/internal/linux/legacy"
)

// Sockets over the baseline stack.  The same COM Socket/SocketFactory
// interfaces as the FreeBSD stack, so ttcp/rtcp run unchanged; blocking
// bottoms out in the donor sleep_on/wake_up.

// usock is one UDP endpoint.
type usock struct {
	s            *Stack
	lport, fport uint16
	faddr        [4]byte
	rcv          []udpDgram
	waitQ        legacy.WaitQueue
	closed       bool
}

type udpDgram struct {
	from [4]byte
	port uint16
	data []byte
}

func (s *Stack) udpInput(p []byte, src, dst [4]byte) {
	if len(p) < udpHdrLen {
		return
	}
	sport := binary.BigEndian.Uint16(p[0:2])
	dport := binary.BigEndian.Uint16(p[2:4])
	ulen := int(binary.BigEndian.Uint16(p[4:6]))
	if ulen < udpHdrLen || ulen > len(p) {
		return
	}
	for _, u := range s.udps {
		if u.lport == dport && !u.closed {
			data := append([]byte(nil), p[udpHdrLen:ulen]...)
			u.rcv = append(u.rcv, udpDgram{from: src, port: sport, data: data})
			s.k.WakeUp(&u.waitQ)
			return
		}
	}
}

func (s *Stack) udpOutput(u *usock, data []byte, dst [4]byte, dport uint16) error {
	skb := s.newSKB(len(data))
	if skb == nil {
		return com.ErrNoMem
	}
	copy(skb.Put(len(data)), data)
	h := skb.Push(udpHdrLen)
	binary.BigEndian.PutUint16(h[0:2], u.lport)
	binary.BigEndian.PutUint16(h[2:4], dport)
	binary.BigEndian.PutUint16(h[4:6], uint16(udpHdrLen+len(data)))
	h[6], h[7] = 0, 0
	csum := checksum(h[:udpHdrLen+len(data)], pseudo(s.ip, dst, protoUDP, udpHdrLen+len(data)))
	if csum == 0 {
		csum = 0xffff
	}
	binary.BigEndian.PutUint16(h[6:8], csum)
	s.ipOutput(skb, dst, protoUDP)
	return nil
}

// Factory is the stack's COM socket factory.
type Factory struct {
	com.RefCount
	s *Stack
}

// SocketFactory returns the factory (one reference).
func (s *Stack) SocketFactory() *Factory {
	f := &Factory{s: s}
	f.Init()
	return f
}

// QueryInterface implements com.IUnknown.
func (f *Factory) QueryInterface(iid com.GUID) (com.IUnknown, error) {
	switch iid {
	case com.UnknownIID, com.SocketFactoryIID:
		f.AddRef()
		return f, nil
	}
	return nil, com.ErrNoInterface
}

// CreateSocket implements com.SocketFactory.
func (f *Factory) CreateSocket(domain, typ, protocol int) (com.Socket, error) {
	if domain != com.AFInet {
		return nil, com.ErrInval
	}
	s := f.s
	so := &lsock{s: s}
	so.Init()
	flags := s.k.SaveFlags()
	s.k.Cli()
	defer s.k.RestoreFlags(flags)
	switch typ {
	case com.SockStream:
		so.tcb = s.tcbNew()
	case com.SockDgram:
		so.udp = &usock{s: s}
		s.udps = append(s.udps, so.udp)
	default:
		return nil, com.ErrInval
	}
	return so, nil
}

var _ com.SocketFactory = (*Factory)(nil)

// lsock is one COM socket over the baseline stack.
type lsock struct {
	com.RefCount
	s      *Stack
	tcb    *tcb
	udp    *usock
	closed bool
}

// QueryInterface implements com.IUnknown.
func (so *lsock) QueryInterface(iid com.GUID) (com.IUnknown, error) {
	switch iid {
	case com.UnknownIID, com.SocketIID:
		so.AddRef()
		return so, nil
	}
	return nil, com.ErrNoInterface
}

// lock raises the donor interrupt exclusion around socket state.
func (so *lsock) lock() func() {
	flags := so.s.k.SaveFlags()
	so.s.k.Cli()
	return func() { so.s.k.RestoreFlags(flags) }
}

// sleep blocks on a wait queue.  Donor contract: called with interrupts
// disabled, returns with them disabled.
func (so *lsock) sleep(q *legacy.WaitQueue) { so.s.k.SleepOn(q) }

// nextPort allocates an ephemeral port.
func (s *Stack) nextPort() uint16 {
	for p := uint16(40000); p != 0; p++ {
		taken := false
		for _, t := range s.tcbs {
			if t.lport == p {
				taken = true
			}
		}
		for _, u := range s.udps {
			if u.lport == p {
				taken = true
			}
		}
		if !taken {
			return p
		}
	}
	return 0
}

// Bind implements com.Socket.
func (so *lsock) Bind(addr com.SockAddr) error {
	unlock := so.lock()
	defer unlock()
	port := addr.Port
	if port == 0 {
		port = so.s.nextPort()
	}
	if so.tcb != nil {
		for _, t := range so.s.tcbs {
			if t != so.tcb && t.lport == port {
				return com.ErrAddrInUse
			}
		}
		so.tcb.lport = port
		return nil
	}
	for _, u := range so.s.udps {
		if u != so.udp && u.lport == port {
			return com.ErrAddrInUse
		}
	}
	so.udp.lport = port
	return nil
}

// Connect implements com.Socket.
func (so *lsock) Connect(addr com.SockAddr) error {
	unlock := so.lock()
	defer unlock()
	if so.udp != nil {
		so.udp.faddr = addr.Addr
		so.udp.fport = addr.Port
		if so.udp.lport == 0 {
			so.udp.lport = so.s.nextPort()
		}
		return nil
	}
	t := so.tcb
	if t.lport == 0 {
		t.lport = so.s.nextPort()
	}
	t.faddr = addr.Addr
	t.fport = addr.Port
	t.iss = so.s.nextSeq()
	t.sndUna, t.sndNxt = t.iss, t.iss+1
	t.state = stSynSent
	t.sendSeg(t.iss, flSYN, nil)
	t.armRexmt()
	for t.state != stEstab {
		if t.state == stClosed {
			return com.ErrConnRef
		}
		so.sleep(&t.connQ)
	}
	return nil
}

// Listen implements com.Socket.
func (so *lsock) Listen(backlog int) error {
	unlock := so.lock()
	defer unlock()
	if so.tcb == nil || so.tcb.lport == 0 {
		return com.ErrInval
	}
	if backlog < 1 {
		backlog = 1
	}
	so.tcb.listening = true
	so.tcb.backlog = backlog
	so.tcb.state = stListen
	return nil
}

// Accept implements com.Socket.
func (so *lsock) Accept() (com.Socket, com.SockAddr, error) {
	unlock := so.lock()
	defer unlock()
	t := so.tcb
	if t == nil || !t.listening {
		return nil, com.SockAddr{}, com.ErrInval
	}
	for len(t.acceptQ) == 0 {
		if so.closed || t.state == stClosed {
			return nil, com.SockAddr{}, com.ErrBadF
		}
		so.sleep(&t.connQ)
	}
	c := t.acceptQ[0]
	t.acceptQ = t.acceptQ[1:]
	ns := &lsock{s: so.s, tcb: c}
	ns.Init()
	peer := com.SockAddr{Family: com.AFInet, Port: c.fport, Addr: c.faddr}
	return ns, peer, nil
}

// Read implements com.Socket.
func (so *lsock) Read(buf []byte) (uint, error) {
	unlock := so.lock()
	defer unlock()
	if so.udp != nil {
		n, _, _, err := so.udpRecvLocked(buf)
		return n, err
	}
	t := so.tcb
	for {
		if len(t.rcvQ) > 0 {
			n := copy(buf, t.rcvQ)
			t.rcvQ = t.rcvQ[n:]
			// Window update after a substantial drain.
			if t.state != stClosed && t.rcvWindow() >= t.lastAdvWnd+2*mss {
				t.sendSeg(t.sndNxt, flACK, nil)
			}
			return uint(n), nil
		}
		if t.err != nil {
			return 0, com.ErrConnReset
		}
		switch t.state {
		case stCloseWait, stLastAck, stClosing, stTimeWait, stClosed:
			return 0, nil // EOF
		}
		if so.closed {
			return 0, com.ErrBadF
		}
		so.sleep(&t.rcvWait)
	}
}

// Write implements com.Socket.
func (so *lsock) Write(buf []byte) (uint, error) {
	unlock := so.lock()
	defer unlock()
	if so.udp != nil {
		if so.udp.fport == 0 {
			return 0, com.ErrNotConn
		}
		if err := so.s.udpOutput(so.udp, buf, so.udp.faddr, so.udp.fport); err != nil {
			return 0, err
		}
		return uint(len(buf)), nil
	}
	t := so.tcb
	total := uint(0)
	for len(buf) > 0 {
		if t.err != nil {
			return total, com.ErrConnReset
		}
		switch t.state {
		case stEstab, stCloseWait:
		default:
			return total, com.ErrPipe
		}
		space := tcpWindow - len(t.sndQ)
		if space <= 0 {
			so.sleep(&t.sndWait)
			continue
		}
		n := space
		if n > len(buf) {
			n = len(buf)
		}
		t.sndQ = append(t.sndQ, buf[:n]...)
		buf = buf[n:]
		total += uint(n)
		t.push()
	}
	return total, nil
}

func (so *lsock) udpRecvLocked(buf []byte) (uint, [4]byte, uint16, error) {
	u := so.udp
	for len(u.rcv) == 0 {
		if u.closed || so.closed {
			return 0, [4]byte{}, 0, com.ErrBadF
		}
		so.sleep(&u.waitQ)
	}
	d := u.rcv[0]
	u.rcv = u.rcv[1:]
	n := copy(buf, d.data)
	return uint(n), d.from, d.port, nil
}

// RecvFrom implements com.Socket.
func (so *lsock) RecvFrom(buf []byte) (uint, com.SockAddr, error) {
	unlock := so.lock()
	defer unlock()
	if so.udp == nil {
		return 0, com.SockAddr{}, com.ErrInval
	}
	n, from, port, err := so.udpRecvLocked(buf)
	return n, com.SockAddr{Family: com.AFInet, Addr: from, Port: port}, err
}

// SendTo implements com.Socket.
func (so *lsock) SendTo(buf []byte, to com.SockAddr) (uint, error) {
	unlock := so.lock()
	defer unlock()
	if so.udp == nil {
		return 0, com.ErrInval
	}
	if so.udp.lport == 0 {
		so.udp.lport = so.s.nextPort()
	}
	if err := so.s.udpOutput(so.udp, buf, to.Addr, to.Port); err != nil {
		return 0, err
	}
	return uint(len(buf)), nil
}

// Shutdown implements com.Socket.
func (so *lsock) Shutdown(how int) error {
	unlock := so.lock()
	defer unlock()
	t := so.tcb
	if t == nil {
		return nil
	}
	if how == com.ShutWrite || how == com.ShutBoth {
		so.queueFinLocked()
	}
	return nil
}

func (so *lsock) queueFinLocked() {
	t := so.tcb
	switch t.state {
	case stEstab:
		t.state = stFinWait1
	case stCloseWait:
		t.state = stLastAck
	default:
		return
	}
	t.finQueued = true
	t.push()
}

// GetSockName implements com.Socket.
func (so *lsock) GetSockName() (com.SockAddr, error) {
	unlock := so.lock()
	defer unlock()
	a := com.SockAddr{Family: com.AFInet, Addr: so.s.ip}
	if so.tcb != nil {
		a.Port = so.tcb.lport
	} else {
		a.Port = so.udp.lport
	}
	return a, nil
}

// GetPeerName implements com.Socket.
func (so *lsock) GetPeerName() (com.SockAddr, error) {
	unlock := so.lock()
	defer unlock()
	a := com.SockAddr{Family: com.AFInet}
	switch {
	case so.tcb != nil && so.tcb.fport != 0:
		a.Addr, a.Port = so.tcb.faddr, so.tcb.fport
	case so.udp != nil && so.udp.fport != 0:
		a.Addr, a.Port = so.udp.faddr, so.udp.fport
	default:
		return a, com.ErrNotConn
	}
	return a, nil
}

// SetSockOpt implements com.Socket (the baseline accepts and ignores the
// buffer-size knobs — its windows are fixed — and knows nodelay).
func (so *lsock) SetSockOpt(name string, value int) error {
	switch name {
	case "rcvbuf", "sndbuf", "nodelay", "reuseaddr":
		return nil
	}
	return com.ErrInval
}

// GetSockOpt implements com.Socket.
func (so *lsock) GetSockOpt(name string) (int, error) {
	switch name {
	case "rcvbuf", "sndbuf":
		return tcpWindow, nil
	case "nodelay", "reuseaddr":
		return 0, nil
	}
	return 0, com.ErrInval
}

// Close implements com.Socket.
func (so *lsock) Close() error {
	unlock := so.lock()
	defer unlock()
	if so.closed {
		return com.ErrBadF
	}
	so.closed = true
	if so.udp != nil {
		so.udp.closed = true
		so.s.k.WakeUp(&so.udp.waitQ)
		for i, u := range so.s.udps {
			if u == so.udp {
				so.s.udps = append(so.s.udps[:i], so.s.udps[i+1:]...)
				break
			}
		}
		return nil
	}
	t := so.tcb
	if t.listening || t.state == stSynSent || t.state == stClosed {
		so.s.tcbDetach(t)
		return nil
	}
	so.queueFinLocked()
	return nil
}

var _ com.Socket = (*lsock)(nil)
