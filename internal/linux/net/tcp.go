package linuxnet

import (
	"encoding/binary"

	"oskit/internal/linux/legacy"
)

// The baseline's compact TCP: standard wire format, cumulative ACKs,
// fixed windows, Go-Back-N retransmission on a single timer.  Enough to
// run the evaluation workloads and to interoperate with the BSD stack.

// TCP states.
const (
	stClosed = iota
	stListen
	stSynSent
	stSynRcvd
	stEstab
	stFinWait1
	stFinWait2
	stCloseWait
	stLastAck
	stClosing
	stTimeWait
)

const (
	flFIN = 0x01
	flSYN = 0x02
	flRST = 0x04
	flPSH = 0x08
	flACK = 0x10

	tcpWindow = 32 * 1024
	rtoJiffy  = 50  // 500 ms at the 10 ms clock
	mslJiffy  = 500 // 5 s: short TIME_WAIT keeps tests brisk
)

type tcb struct {
	s     *Stack
	state int

	lport, fport uint16
	faddr        [4]byte

	iss, sndUna, sndNxt uint32
	rcvNxt              uint32
	peerWnd             uint32
	lastAdvWnd          uint32

	sndQ []byte // bytes from sndUna on; prefix unacked, suffix unsent
	rcvQ []byte

	finQueued, finSent bool
	err                error

	listening bool
	backlog   int
	acceptQ   []*tcb
	parent    *tcb

	rexmtCancel func()
	// Separate wait queues per event class: the glue's sleep records
	// hold a single waiter each (§4.7.6), so readers, writers, and
	// connect/accept sleepers must not share one queue.
	connQ, rcvWait, sndWait legacy.WaitQueue
}

func (s *Stack) tcbNew() *tcb {
	t := &tcb{s: s, peerWnd: tcpWindow}
	s.tcbs = append(s.tcbs, t)
	return t
}

func (s *Stack) tcbDetach(t *tcb) {
	if t.rexmtCancel != nil {
		t.rexmtCancel()
		t.rexmtCancel = nil
	}
	for i, o := range s.tcbs {
		if o == t {
			s.tcbs = append(s.tcbs[:i], s.tcbs[i+1:]...)
			break
		}
	}
	t.state = stClosed
	t.wakeAll()
}

func (t *tcb) wakeAll() {
	k := t.s.k
	k.WakeUp(&t.connQ)
	k.WakeUp(&t.rcvWait)
	k.WakeUp(&t.sndWait)
	if t.parent != nil {
		k.WakeUp(&t.parent.connQ)
	}
}

func (s *Stack) tcbLookup(sport, dport uint16, src [4]byte) *tcb {
	var listener *tcb
	for _, t := range s.tcbs {
		if t.lport != dport {
			continue
		}
		if !t.listening && t.fport == sport && t.faddr == src {
			return t
		}
		if t.listening {
			listener = t
		}
	}
	return listener
}

// sendSeg emits one segment carrying data (may be empty) and flags.
func (t *tcb) sendSeg(seq uint32, flags byte, data []byte) {
	s := t.s
	skb := s.newSKB(len(data))
	if skb == nil {
		return
	}
	copy(skb.Put(len(data)), data)
	h := skb.Push(tcpHdrLen)
	binary.BigEndian.PutUint16(h[0:2], t.lport)
	binary.BigEndian.PutUint16(h[2:4], t.fport)
	binary.BigEndian.PutUint32(h[4:8], seq)
	ack := t.rcvNxt
	if flags&flACK == 0 {
		ack = 0
	}
	binary.BigEndian.PutUint32(h[8:12], ack)
	h[12] = (tcpHdrLen / 4) << 4
	h[13] = flags
	wnd := t.rcvWindow()
	binary.BigEndian.PutUint16(h[14:16], uint16(wnd))
	h[16], h[17], h[18], h[19] = 0, 0, 0, 0
	csum := checksum(h[:tcpHdrLen+len(data)], pseudo(s.ip, t.faddr, protoTCP, tcpHdrLen+len(data)))
	binary.BigEndian.PutUint16(h[16:18], csum)
	t.lastAdvWnd = wnd
	s.ipOutput(skb, t.faddr, protoTCP)
}

func (t *tcb) rcvWindow() uint32 {
	w := tcpWindow - len(t.rcvQ)
	if w < 0 {
		return 0
	}
	if w > 65535 {
		w = 65535
	}
	return uint32(w)
}

// push sends as much queued data as the peer window allows (called with
// interrupts disabled).
func (t *tcb) push() {
	inflight := t.sndNxt - t.sndUna
	for {
		avail := len(t.sndQ) - int(inflight)
		if avail <= 0 || inflight >= t.peerWnd {
			break
		}
		n := avail
		if n > mss {
			n = mss
		}
		if uint32(n) > t.peerWnd-inflight {
			n = int(t.peerWnd - inflight)
		}
		if n <= 0 {
			break
		}
		off := int(inflight)
		flags := byte(flACK)
		if off+n == len(t.sndQ) {
			flags |= flPSH
		}
		t.sendSeg(t.sndNxt, flags, t.sndQ[off:off+n])
		t.sndNxt += uint32(n)
		inflight += uint32(n)
	}
	// Trailing FIN.
	if t.finQueued && !t.finSent && int(inflight) == len(t.sndQ) {
		t.sendSeg(t.sndNxt, flACK|flFIN, nil)
		t.sndNxt++
		t.finSent = true
	}
	t.armRexmt()
}

func (t *tcb) armRexmt() {
	if t.sndUna == t.sndNxt {
		if t.rexmtCancel != nil {
			t.rexmtCancel()
			t.rexmtCancel = nil
		}
		return
	}
	if t.rexmtCancel != nil {
		return
	}
	t.rexmtCancel = t.s.k.AddTimer(rtoJiffy, func() {
		// Interrupt level: go back to snd_una and resend everything.
		t.rexmtCancel = nil
		if t.state == stClosed {
			return
		}
		t.sndNxt = t.sndUna
		t.finSent = false
		switch t.state {
		case stSynSent:
			t.sendSeg(t.iss, flSYN, nil)
			t.sndNxt = t.iss + 1
			t.armRexmt()
		case stSynRcvd:
			t.sendSeg(t.iss, flSYN|flACK, nil)
			t.sndNxt = t.iss + 1
			t.armRexmt()
		default:
			t.push()
			t.armRexmt()
		}
	})
}

// tcpInput processes one inbound segment (interrupt level).
func (s *Stack) tcpInput(p []byte, src, dst [4]byte) {
	if len(p) < tcpHdrLen {
		return
	}
	if checksum(p, pseudo(src, dst, protoTCP, len(p))) != 0 {
		return
	}
	sport := binary.BigEndian.Uint16(p[0:2])
	dport := binary.BigEndian.Uint16(p[2:4])
	seq := binary.BigEndian.Uint32(p[4:8])
	ack := binary.BigEndian.Uint32(p[8:12])
	off := int(p[12]>>4) * 4
	flags := p[13]
	wnd := uint32(binary.BigEndian.Uint16(p[14:16]))
	if off < tcpHdrLen || off > len(p) {
		return
	}
	data := p[off:]

	t := s.tcbLookup(sport, dport, src)
	// TIME_WAIT reincarnation: a fresh SYN supersedes the old
	// connection so the client may reuse its port immediately.
	if t != nil && !t.listening && t.state == stTimeWait &&
		flags&flSYN != 0 && int32(seq-t.rcvNxt) > 0 {
		s.tcbDetach(t)
		t = s.tcbLookup(sport, dport, src)
	}
	if t == nil {
		if flags&flRST == 0 {
			s.respondRST(src, sport, dport, seq, ack, flags, len(data))
		}
		return
	}

	if flags&flRST != 0 {
		if !t.listening {
			t.err = errReset
			s.tcbDetach(t)
		}
		return
	}

	if t.listening {
		if flags&flSYN == 0 || len(t.acceptQ) >= t.backlog {
			return
		}
		c := s.tcbNew()
		c.lport, c.fport, c.faddr = dport, sport, src
		c.parent = t
		c.rcvNxt = seq + 1
		c.peerWnd = wnd
		c.iss = s.nextSeq()
		c.sndUna, c.sndNxt = c.iss, c.iss+1
		c.state = stSynRcvd
		c.sendSeg(c.iss, flSYN|flACK, nil)
		c.armRexmt()
		return
	}

	switch t.state {
	case stSynSent:
		if flags&(flSYN|flACK) == flSYN|flACK && ack == t.iss+1 {
			t.rcvNxt = seq + 1
			t.sndUna = ack
			t.peerWnd = wnd
			t.state = stEstab
			t.armRexmt()
			t.sendSeg(t.sndNxt, flACK, nil)
			s.k.WakeUp(&t.connQ)
		}
		return
	case stSynRcvd:
		if flags&flACK != 0 && ack == t.iss+1 {
			t.sndUna = ack
			t.peerWnd = wnd
			t.state = stEstab
			t.armRexmt()
			if p := t.parent; p != nil {
				p.acceptQ = append(p.acceptQ, t)
				s.k.WakeUp(&p.connQ)
			}
		}
		// Fall through so data riding the ACK is processed.
	}

	// ACK processing (cumulative).
	if flags&flACK != 0 {
		t.peerWnd = wnd
		if int32(ack-t.sndUna) > 0 && int32(ack-t.sndNxt) <= 0 {
			acked := ack - t.sndUna
			bufAcked := int(acked)
			if t.finSent && ack == t.sndNxt {
				bufAcked-- // the FIN's sequence slot
			}
			if bufAcked > len(t.sndQ) {
				bufAcked = len(t.sndQ)
			}
			if bufAcked > 0 {
				t.sndQ = t.sndQ[bufAcked:]
			}
			t.sndUna = ack
			if t.rexmtCancel != nil {
				t.rexmtCancel()
				t.rexmtCancel = nil
			}
			t.armRexmt()
			s.k.WakeUp(&t.sndWait)
			// FIN acknowledged?
			if t.finSent && t.sndUna == t.sndNxt {
				switch t.state {
				case stFinWait1:
					t.state = stFinWait2
				case stClosing:
					t.enterTimeWait()
				case stLastAck:
					s.tcbDetach(t)
					return
				}
			}
		}
		t.push()
	}

	// Data: in-order only (Go-Back-N).
	if len(data) > 0 {
		if seq == t.rcvNxt && len(t.rcvQ)+len(data) <= tcpWindow {
			t.rcvQ = append(t.rcvQ, data...)
			t.rcvNxt += uint32(len(data))
			s.k.WakeUp(&t.rcvWait)
		}
		// ACK whatever we have (repeats rcvNxt on disorder).
		t.sendSeg(t.sndNxt, flACK, nil)
	}

	// FIN.
	if flags&flFIN != 0 && seq+uint32(len(data)) == t.rcvNxt {
		t.rcvNxt++
		switch t.state {
		case stEstab:
			t.state = stCloseWait
		case stFinWait1:
			t.state = stClosing
		case stFinWait2:
			t.enterTimeWait()
		}
		t.sendSeg(t.sndNxt, flACK, nil)
		s.k.WakeUp(&t.rcvWait)
	}
}

func (t *tcb) enterTimeWait() {
	t.state = stTimeWait
	s := t.s
	s.k.AddTimer(mslJiffy, func() {
		if t.state == stTimeWait {
			s.tcbDetach(t)
		}
	})
}

func (s *Stack) respondRST(src [4]byte, sport, dport uint16, seq, ack uint32, flags byte, dataLen int) {
	t := &tcb{s: s, lport: dport, fport: sport, faddr: src}
	if flags&flACK != 0 {
		t.sendSeg(ack, flRST, nil)
	} else {
		t.rcvNxt = seq + uint32(dataLen)
		if flags&flSYN != 0 {
			t.rcvNxt++
		}
		t.sendSeg(0, flRST|flACK, nil)
	}
}

func (s *Stack) nextSeq() uint32 {
	s.seqNo += 64021
	return s.seqNo
}

type netErr string

func (e netErr) Error() string { return string(e) }

var errReset = netErr("linuxnet: connection reset")
