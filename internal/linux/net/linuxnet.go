// Package linuxnet is the kit's Linux-style TCP/IP stack: the
// *monolithic baseline* configuration of the paper's Tables 1 and 2
// ("Linux 2.0.29" row).  It is skbuff-native end to end: packets move
// between the protocol code and the donor Ethernet drivers as raw
// skbuffs with no component boundary, no BufIO conversion, and no glue
// dispatch — the thing the OSKit configuration is measured against.
//
// Protocol scope matches what the evaluation workloads need between two
// instances of itself: Ethernet framing, ARP, IPv4 (no fragmentation —
// the donor drivers carry MTU-sized segments), ICMP echo, UDP, and a
// compact TCP (handshake, cumulative ACK, fixed window, Go-Back-N
// retransmission on timeout, orderly close).  The wire format is
// standard, which the tests exploit by running it against the
// FreeBSD-derived stack.  Deviations from Linux 2.0 (no congestion
// control, no delayed ACK) are deliberate simplifications of a baseline
// and are recorded in DESIGN.md.
//
// Like the donor drivers, this code sees only the legacy.Kernel
// environment; it exports the standard Socket/SocketFactory COM
// interfaces at the top so the same application code (ttcp, rtcp) runs
// unchanged on every configuration.
package linuxnet

import (
	"encoding/binary"

	"oskit/internal/linux/legacy"
	"oskit/internal/stats"
)

// Protocol constants.
const (
	etherHdrLen = 14
	ipHdrLen    = 20
	tcpHdrLen   = 20
	udpHdrLen   = 8

	etherTypeIP  = 0x0800
	etherTypeARP = 0x0806

	protoICMP = 1
	protoTCP  = 6
	protoUDP  = 17

	mss = 1460
)

// Stack is one instance of the Linux networking code, bound directly to
// one donor net device.
type Stack struct {
	k   *legacy.Kernel
	dev *legacy.NetDevice

	ip, mask [4]byte
	arp      map[[4]byte]arpState

	tcbs  []*tcb
	udps  []*usock
	ipID  uint16
	seqNo uint32

	// Packet counters for the benchmark harness, kept in a com.Stats
	// set.  The stack sees only the legacy.Kernel environment (no
	// services registry), so whoever assembles the configuration
	// registers StatsSet() if it wants discovery.
	set     *stats.Set
	scTx    *stats.Counter
	scRx    *stats.Counter
	scNoSKB *stats.Counter
}

type arpState struct {
	mac   [6]byte
	valid bool
	held  *legacy.SKBuff
}

// NewStack attaches the protocol code to a device: it installs itself as
// the kernel's netif_rx and opens the device.
func NewStack(k *legacy.Kernel, dev *legacy.NetDevice, ip, mask [4]byte) (*Stack, error) {
	s := &Stack{k: k, dev: dev, ip: ip, mask: mask, arp: map[[4]byte]arpState{}, seqNo: 99000}
	s.set = stats.NewSet("linux_net")
	s.scTx = s.set.Counter("net.tx_packets")
	s.scRx = s.set.Counter("net.rx_packets")
	s.scNoSKB = s.set.Counter("net.skb_alloc_failures")
	k.NetifRx = s.netifRx
	if err := dev.Open(dev); err != nil {
		s.set.Release()
		return nil, err
	}
	return s, nil
}

// StatsSet exposes the stack's com.Stats export so the configuration
// assembler can register it in a services registry.  The stack keeps its
// own reference; the caller must AddRef (Register does) to hold one.
func (s *Stack) StatsSet() *stats.Set { return s.set }

// Counters reads the packet counters.  They are atomic (updated at
// interrupt level), so no donor cli/sti exclusion is needed to read.
func (s *Stack) Counters() (tx, rx uint64) {
	return s.scTx.Load(), s.scRx.Load()
}

// netifRx is the interrupt-level input: a raw skbuff straight from the
// driver.
func (s *Stack) netifRx(skb *legacy.SKBuff) {
	defer skb.Free()
	d := skb.Data
	if len(d) < etherHdrLen {
		return
	}
	s.scRx.Inc()
	etype := binary.BigEndian.Uint16(d[12:14])
	var src [6]byte
	copy(src[:], d[6:12])
	payload := d[etherHdrLen:]
	switch etype {
	case etherTypeARP:
		s.arpInput(payload, src)
	case etherTypeIP:
		s.ipInput(payload)
	}
}

// xmit builds the Ethernet header in the skbuff's headroom and hands it
// to the driver — donor representation the whole way.
func (s *Stack) xmit(skb *legacy.SKBuff, dst [6]byte, etype uint16) {
	h := skb.Push(etherHdrLen)
	copy(h[0:6], dst[:])
	copy(h[6:12], s.dev.MAC[:])
	binary.BigEndian.PutUint16(h[12:14], etype)
	for skb.Len < 60 { // pad runts
		skb.Put(1)[0] = 0
	}
	s.scTx.Inc()
	_ = s.dev.HardStartXmit(skb, s.dev)
}

// newSKB allocates an skbuff with header headroom plus tail slack for
// runt-frame padding.
func (s *Stack) newSKB(payload int) *legacy.SKBuff {
	skb := s.k.AllocSKB(payload + etherHdrLen + ipHdrLen + tcpHdrLen + 64)
	if skb == nil {
		s.scNoSKB.Inc()
		return nil
	}
	skb.Reserve(etherHdrLen + ipHdrLen + tcpHdrLen)
	return skb
}

// --- ARP.

func (s *Stack) arpInput(p []byte, etherSrc [6]byte) {
	if len(p) < 28 || binary.BigEndian.Uint16(p[6:8]) > 2 {
		return
	}
	op := binary.BigEndian.Uint16(p[6:8])
	var srcMAC [6]byte
	var srcIP, dstIP [4]byte
	copy(srcMAC[:], p[8:14])
	copy(srcIP[:], p[14:18])
	copy(dstIP[:], p[24:28])
	if srcMAC != etherSrc {
		// Sender-hardware field disagrees with the frame's source
		// station: corrupted or spoofed ARP (it has no checksum).
		// Learning it would poison the cache; drop.
		return
	}
	st := s.arp[srcIP]
	st.mac = srcMAC
	st.valid = true
	held := st.held
	st.held = nil
	s.arp[srcIP] = st
	if held != nil {
		s.xmit(held, srcMAC, etherTypeIP)
	}
	if op == 1 && dstIP == s.ip {
		reply := s.newSKB(28)
		if reply == nil {
			return
		}
		r := reply.Put(28)
		binary.BigEndian.PutUint16(r[0:2], 1)
		binary.BigEndian.PutUint16(r[2:4], etherTypeIP)
		r[4], r[5] = 6, 4
		binary.BigEndian.PutUint16(r[6:8], 2)
		copy(r[8:14], s.dev.MAC[:])
		copy(r[14:18], s.ip[:])
		copy(r[18:24], srcMAC[:])
		copy(r[24:28], srcIP[:])
		s.xmit(reply, srcMAC, etherTypeARP)
	}
}

func (s *Stack) arpResolve(dst [4]byte, skb *legacy.SKBuff) ([6]byte, bool) {
	if dst == [4]byte{255, 255, 255, 255} {
		return [6]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}, true
	}
	st := s.arp[dst]
	if st.valid {
		return st.mac, true
	}
	if st.held != nil {
		st.held.Free()
	}
	st.held = skb
	s.arp[dst] = st
	req := s.newSKB(28)
	if req == nil {
		return [6]byte{}, false
	}
	r := req.Put(28)
	binary.BigEndian.PutUint16(r[0:2], 1)
	binary.BigEndian.PutUint16(r[2:4], etherTypeIP)
	r[4], r[5] = 6, 4
	binary.BigEndian.PutUint16(r[6:8], 1)
	copy(r[8:14], s.dev.MAC[:])
	copy(r[14:18], s.ip[:])
	copy(r[24:28], dst[:])
	s.xmit(req, [6]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}, etherTypeARP)
	return [6]byte{}, false
}

// --- IP.

func (s *Stack) ipInput(p []byte) {
	if len(p) < ipHdrLen || p[0]>>4 != 4 {
		return
	}
	hlen := int(p[0]&0xf) * 4
	total := int(binary.BigEndian.Uint16(p[2:4]))
	if hlen < ipHdrLen || total < hlen || total > len(p) {
		return
	}
	if checksum(p[:hlen], 0) != 0 {
		return
	}
	var src, dst [4]byte
	copy(src[:], p[12:16])
	copy(dst[:], p[16:20])
	if dst != s.ip && dst != [4]byte{255, 255, 255, 255} {
		return
	}
	body := p[hlen:total]
	switch p[9] {
	case protoICMP:
		s.icmpInput(body, src)
	case protoUDP:
		s.udpInput(body, src, dst)
	case protoTCP:
		s.tcpInput(body, src, dst)
	}
}

// ipOutput prepends the IP header and resolves the next hop.  skb is
// consumed.
func (s *Stack) ipOutput(skb *legacy.SKBuff, dst [4]byte, proto byte) {
	h := skb.Push(ipHdrLen)
	s.ipID++
	h[0], h[1] = 0x45, 0
	binary.BigEndian.PutUint16(h[2:4], uint16(skb.Len))
	binary.BigEndian.PutUint16(h[4:6], s.ipID)
	binary.BigEndian.PutUint16(h[6:8], 0)
	h[8], h[9] = 64, proto
	h[10], h[11] = 0, 0
	copy(h[12:16], s.ip[:])
	copy(h[16:20], dst[:])
	binary.BigEndian.PutUint16(h[10:12], checksum(h[:ipHdrLen], 0))
	mac, ok := s.arpResolve(dst, skb)
	if !ok {
		return // held by ARP
	}
	s.xmit(skb, mac, etherTypeIP)
}

// --- ICMP echo.

func (s *Stack) icmpInput(p []byte, src [4]byte) {
	if len(p) < 8 || checksum(p, 0) != 0 {
		return
	}
	if p[0] == 8 { // echo request
		skb := s.newSKB(len(p))
		if skb == nil {
			return
		}
		r := skb.Put(len(p))
		copy(r, p)
		r[0] = 0
		r[2], r[3] = 0, 0
		binary.BigEndian.PutUint16(r[2:4], checksum(r, 0))
		s.ipOutput(skb, src, protoICMP)
	}
}

func checksum(data []byte, initial uint32) uint16 {
	sum := initial
	for i := 0; i+1 < len(data); i += 2 {
		sum += uint32(data[i])<<8 | uint32(data[i+1])
	}
	if len(data)%2 == 1 {
		sum += uint32(data[len(data)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

func pseudo(src, dst [4]byte, proto byte, length int) uint32 {
	var sum uint32
	sum += uint32(src[0])<<8 | uint32(src[1])
	sum += uint32(src[2])<<8 | uint32(src[3])
	sum += uint32(dst[0])<<8 | uint32(dst[1])
	sum += uint32(dst[2])<<8 | uint32(dst[3])
	sum += uint32(proto)
	sum += uint32(length)
	return sum
}
