package linuxnet

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"oskit/internal/com"
	"oskit/internal/faults"
	"oskit/internal/hw"
	"oskit/internal/kern"
	linuxdev "oskit/internal/linux/dev"
)

// bootLinuxGlue is bootLinux, but hands back the donor glue so the test
// can reach the kmalloc fault hook underneath the stack.
func bootLinuxGlue(t *testing.T, wire *hw.EtherWire, mac byte, ip [4]byte) (*Stack, *linuxdev.Glue) {
	t.Helper()
	m := hw.NewMachine(hw.Config{Name: "linux-faulty", MemBytes: 32 << 20})
	t.Cleanup(m.Halt)
	m.AttachNIC(wire, [6]byte{2, 0, 0, 1, 0, mac}, hw.ModelNE2K)
	k, err := kern.Setup(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	lk, devs := linuxdev.ProbeNative(k.Env)
	if len(devs) != 1 {
		t.Fatalf("native probe found %d devices", len(devs))
	}
	s, err := NewStack(lk, devs[0], ip, nm)
	if err != nil {
		t.Fatal(err)
	}
	m.Timer.Start(time.Millisecond)
	return s, linuxdev.GlueFor(k.Env)
}

// kmTransfer runs one client->server TCP transfer between the stacks
// and reports failure as an error (including a watchdog timeout) so
// callers can decide whether failure is tolerable.
func kmTransfer(a, b *Stack, port uint16, payload []byte, limit time.Duration) error {
	fa, fb := a.SocketFactory(), b.SocketFactory()
	defer fa.Release()
	defer fb.Release()

	ls, err := fb.CreateSocket(com.AFInet, com.SockStream, 0)
	if err != nil {
		return err
	}
	defer ls.Close()
	if err := ls.Bind(laddr(ipB, port)); err != nil {
		return err
	}
	if err := ls.Listen(2); err != nil {
		return err
	}
	got := make(chan []byte, 1)
	go func() {
		cs, _, err := ls.Accept()
		if err != nil {
			got <- nil
			return
		}
		var all []byte
		buf := make([]byte, 4096)
		for {
			n, err := cs.Read(buf)
			if err != nil || n == 0 {
				break
			}
			all = append(all, buf[:n]...)
		}
		_ = cs.Close()
		got <- all
	}()

	done := make(chan error, 1)
	go func() {
		cs, err := fa.CreateSocket(com.AFInet, com.SockStream, 0)
		if err != nil {
			done <- err
			return
		}
		defer cs.Close()
		if err := cs.Connect(laddr(ipB, port)); err != nil {
			done <- fmt.Errorf("connect: %w", err)
			return
		}
		if n, err := cs.Write(payload); err != nil || int(n) != len(payload) {
			done <- fmt.Errorf("write = %d, %v", n, err)
			return
		}
		done <- cs.Shutdown(com.ShutWrite)
	}()

	watchdog := time.After(limit)
	select {
	case err := <-done:
		if err != nil {
			return err
		}
	case <-watchdog:
		return fmt.Errorf("transfer wedged after %v", limit)
	}
	select {
	case all := <-got:
		if !bytes.Equal(all, payload) {
			return fmt.Errorf("server got %d bytes, want %d", len(all), len(payload))
		}
		return nil
	case <-watchdog:
		return fmt.Errorf("server side wedged after %v", limit)
	}
}

// The Linux stack under injected kmalloc exhaustion: skb allocation
// failures must degrade the transfer gracefully (Go-Back-N recovers
// from the drops, or the socket layer surfaces an error) — never panic
// or wedge — and once the hook is removed the same stacks must carry a
// clean transfer byte-exact.
func TestLinuxKmallocFaultDegradation(t *testing.T) {
	wire := hw.NewEtherWire()
	a, glueA := bootLinuxGlue(t, wire, 7, ipA)
	b := bootLinux(t, wire, 8, ipB)

	plan := faults.Plan{Seed: 9, AllocFailNth: 1, AllocRate: 0.02}
	in := faults.NewInjector(plan)
	glueA.SetKmallocFaultHook(in.AllocFailFunc("kmalloc.linux"))

	payload := bytes.Repeat([]byte("hostile kmalloc "), 2048) // 32 KiB
	if err := kmTransfer(a, b, 7300, payload, 60*time.Second); err != nil {
		t.Logf("transfer degraded gracefully under kmalloc faults: %v", err)
	}
	if got := in.Point("kmalloc.linux").Injected(); got == 0 {
		t.Error("no kmalloc faults injected (alloc.nth=1 should always fire)")
	} else {
		t.Logf("injected %d kmalloc failures (plan %q)", got, in.FaultPlan())
	}

	// The regime ends; the stack must not have been damaged by it.
	glueA.SetKmallocFaultHook(nil)
	if err := kmTransfer(a, b, 7301, payload, 60*time.Second); err != nil {
		t.Fatalf("clean transfer after fault regime: %v", err)
	}
}
