package linuxnet

import (
	"bytes"
	"testing"
	"time"

	"oskit/internal/com"
	"oskit/internal/dev"
	bsdglue "oskit/internal/freebsd/glue"
	bsdnet "oskit/internal/freebsd/net"
	"oskit/internal/hw"
	"oskit/internal/kern"
	linuxdev "oskit/internal/linux/dev"
)

var (
	ipA = [4]byte{10, 0, 1, 1}
	ipB = [4]byte{10, 0, 1, 2}
	nm  = [4]byte{255, 255, 255, 0}
)

// bootLinux brings up a machine running the monolithic Linux
// configuration: donor driver + Linux stack, skbuffs end to end.
func bootLinux(t *testing.T, wire *hw.EtherWire, mac byte, ip [4]byte) *Stack {
	t.Helper()
	m := hw.NewMachine(hw.Config{Name: "linux", MemBytes: 32 << 20})
	t.Cleanup(m.Halt)
	m.AttachNIC(wire, [6]byte{2, 0, 0, 1, 0, mac}, hw.ModelNE2K)
	k, err := kern.Setup(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	lk, devs := linuxdev.ProbeNative(k.Env)
	if len(devs) != 1 {
		t.Fatalf("native probe found %d devices", len(devs))
	}
	s, err := NewStack(lk, devs[0], ip, nm)
	if err != nil {
		t.Fatal(err)
	}
	m.Timer.Start(time.Millisecond)
	return s
}

func laddr(ip [4]byte, port uint16) com.SockAddr {
	return com.SockAddr{Family: com.AFInet, Addr: ip, Port: port}
}

func tcpSock(t *testing.T, f com.SocketFactory) com.Socket {
	t.Helper()
	so, err := f.CreateSocket(com.AFInet, com.SockStream, 0)
	if err != nil {
		t.Fatal(err)
	}
	return so
}

func TestLinuxTCPTransfer(t *testing.T) {
	wire := hw.NewEtherWire()
	a := bootLinux(t, wire, 1, ipA)
	b := bootLinux(t, wire, 2, ipB)
	fa, fb := a.SocketFactory(), b.SocketFactory()
	defer fa.Release()
	defer fb.Release()

	ls := tcpSock(t, fb)
	if err := ls.Bind(laddr(ipB, 7100)); err != nil {
		t.Fatal(err)
	}
	if err := ls.Listen(2); err != nil {
		t.Fatal(err)
	}
	got := make(chan []byte, 1)
	go func() {
		cs, peer, err := ls.Accept()
		if err != nil {
			got <- nil
			return
		}
		if peer.Addr != ipA {
			t.Errorf("peer = %+v", peer)
		}
		var all []byte
		buf := make([]byte, 4096)
		for {
			n, err := cs.Read(buf)
			if err != nil || n == 0 {
				break
			}
			all = append(all, buf[:n]...)
		}
		_, _ = cs.Write([]byte("thanks"))
		_ = cs.Close()
		got <- all
	}()

	cs := tcpSock(t, fa)
	if err := cs.Connect(laddr(ipB, 7100)); err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("linux baseline! "), 4096) // 64 KiB
	if n, err := cs.Write(payload); err != nil || int(n) != len(payload) {
		t.Fatalf("Write = %d, %v", n, err)
	}
	if err := cs.Shutdown(com.ShutWrite); err != nil {
		t.Fatal(err)
	}
	reply := make([]byte, 16)
	n, err := cs.Read(reply)
	if err != nil || string(reply[:n]) != "thanks" {
		t.Fatalf("reply = %q, %v", reply[:n], err)
	}
	all := <-got
	if !bytes.Equal(all, payload) {
		t.Fatalf("server got %d bytes, want %d", len(all), len(payload))
	}
	_ = cs.Close()
	txA, _ := a.Counters()
	_, rxB := b.Counters()
	if txA == 0 || rxB == 0 {
		t.Fatal("no packets counted")
	}
}

func TestLinuxUDP(t *testing.T) {
	wire := hw.NewEtherWire()
	a := bootLinux(t, wire, 1, ipA)
	b := bootLinux(t, wire, 2, ipB)
	fa, fb := a.SocketFactory(), b.SocketFactory()
	defer fa.Release()
	defer fb.Release()
	sa, _ := fa.CreateSocket(com.AFInet, com.SockDgram, 0)
	sb, _ := fb.CreateSocket(com.AFInet, com.SockDgram, 0)
	if err := sb.Bind(laddr(ipB, 6000)); err != nil {
		t.Fatal(err)
	}
	done := make(chan string, 1)
	go func() {
		buf := make([]byte, 64)
		n, from, err := sb.RecvFrom(buf)
		if err != nil {
			done <- "err"
			return
		}
		_, _ = sb.SendTo([]byte("resp"), from)
		done <- string(buf[:n])
	}()
	time.Sleep(20 * time.Millisecond)
	if _, err := sa.SendTo([]byte("datagram"), laddr(ipB, 6000)); err != nil {
		t.Fatal(err)
	}
	if msg := <-done; msg != "datagram" {
		t.Fatalf("server got %q", msg)
	}
	buf := make([]byte, 16)
	n, from, err := sa.RecvFrom(buf)
	if err != nil || string(buf[:n]) != "resp" || from.Port != 6000 {
		t.Fatalf("reply = %q from %+v, %v", buf[:n], from, err)
	}
	_ = sa.Close()
	_ = sb.Close()
}

func TestLinuxRefusedConnect(t *testing.T) {
	wire := hw.NewEtherWire()
	a := bootLinux(t, wire, 1, ipA)
	_ = bootLinux(t, wire, 2, ipB)
	fa := a.SocketFactory()
	defer fa.Release()
	cs := tcpSock(t, fa)
	if err := cs.Connect(laddr(ipB, 59)); err != com.ErrConnRef {
		t.Fatalf("Connect = %v, want refused", err)
	}
}

// TestInteropLinuxToBSD runs the baseline Linux stack against the
// FreeBSD-derived stack: both implement wire-standard TCP, so a transfer
// between them validates each against the other.
func TestInteropLinuxToBSD(t *testing.T) {
	wire := hw.NewEtherWire()
	lx := bootLinux(t, wire, 1, ipA)

	// BSD machine.
	m := hw.NewMachine(hw.Config{Name: "bsd", MemBytes: 32 << 20})
	t.Cleanup(m.Halt)
	m.AttachNIC(wire, [6]byte{2, 0, 0, 1, 0, 2}, hw.Model3C59X)
	k, err := kern.Setup(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	fw := dev.NewFramework(k.Env)
	linuxdev.InitEthernet(fw)
	fw.Probe()
	eths := fw.LookupByIID(com.EtherDevIID)
	bs := bsdnet.NewStack(bsdglue.New(k.Env))
	t.Cleanup(bs.Close)
	if err := bs.OpenEtherIf(eths[0].(com.EtherDev)); err != nil {
		t.Fatal(err)
	}
	eths[0].Release()
	bs.Ifconfig(bsdnet.IPAddr(ipB), bsdnet.IPAddr(nm))
	m.Timer.Start(time.Millisecond)

	// BSD listens, Linux connects and streams.
	bf := bs.SocketFactory()
	defer bf.Release()
	ls, err := bf.CreateSocket(com.AFInet, com.SockStream, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := ls.Bind(laddr(ipB, 7200)); err != nil {
		t.Fatal(err)
	}
	if err := ls.Listen(1); err != nil {
		t.Fatal(err)
	}
	got := make(chan []byte, 1)
	go func() {
		cs, _, err := ls.Accept()
		if err != nil {
			got <- nil
			return
		}
		var all []byte
		buf := make([]byte, 4096)
		for {
			n, err := cs.Read(buf)
			if err != nil || n == 0 {
				break
			}
			all = append(all, buf[:n]...)
		}
		_ = cs.Close()
		got <- all
	}()

	lf := lx.SocketFactory()
	defer lf.Release()
	cs := tcpSock(t, lf)
	if err := cs.Connect(laddr(ipB, 7200)); err != nil {
		t.Fatalf("interop connect: %v", err)
	}
	payload := bytes.Repeat([]byte("interop "), 2048) // 16 KiB
	if _, err := cs.Write(payload); err != nil {
		t.Fatal(err)
	}
	_ = cs.Close()
	select {
	case all := <-got:
		if !bytes.Equal(all, payload) {
			t.Fatalf("interop transfer corrupted: %d vs %d bytes", len(all), len(payload))
		}
	case <-time.After(30 * time.Second):
		t.Fatal("interop transfer hung")
	}
}
