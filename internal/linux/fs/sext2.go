// Package linuxfs is the kit's Linux-derived file system — the row the
// paper lists as in progress ("We are currently incorporating Linux
// file systems as well, to support many diverse file system formats",
// §3.8), built here as the ext2-flavoured "sext2".
//
// The on-disk format follows ext2's conventions where they matter:
// the superblock lives in block 1 with magic 0xEF53, the root directory
// is inode 2, inodes are 128 bytes with twelve direct block pointers
// plus single and double indirection, and directories are chains of
// variable-length records (inode, rec_len, name_len, type, name) whose
// deletion folds a record into its predecessor's rec_len — the real
// ext2 directory discipline, quite different from the NetBSD-derived
// component's fixed slots.  Divergences from full ext2 (one block
// group, no triple indirection) are simplifications of scale, not of
// mechanism.
//
// Like the other donor-family components it exports the kit's
// FileSystem/Dir/File interfaces over any BlkIO, so a client can mount
// an sext2 and an FFS on two partitions of the same disk and the code
// above cannot tell them apart — the separability demonstration the
// paper was heading toward.
package linuxfs

import (
	"encoding/binary"

	"oskit/internal/com"
)

// Geometry and magic numbers (ext2 conventions).
const (
	BlockSize = 1024
	Magic     = 0xEF53

	InodeSize = 128
	NDirect   = 12
	ptrsPerBl = BlockSize / 4

	// RootIno is the root directory inode (ext2 convention; inode 1 is
	// reserved for bad blocks, 0 is "no inode").
	RootIno = 2

	superBlock = 1 // block holding the superblock, per ext2
)

// File type bytes stored in directory entries (ext2 values).
const (
	ftUnknown = 0
	ftRegular = 1
	ftDir     = 2
)

type superblock struct {
	magic       uint32
	nblocks     uint32
	ninodes     uint32
	blockBitmap uint32
	inodeBitmap uint32
	inodeTable  uint32
	dataStart   uint32
	freeBlocks  uint32
	freeInodes  uint32
}

func (sb *superblock) encode(b []byte) {
	le := binary.LittleEndian
	le.PutUint32(b[0:], sb.magic)
	le.PutUint32(b[4:], sb.nblocks)
	le.PutUint32(b[8:], sb.ninodes)
	le.PutUint32(b[12:], sb.blockBitmap)
	le.PutUint32(b[16:], sb.inodeBitmap)
	le.PutUint32(b[20:], sb.inodeTable)
	le.PutUint32(b[24:], sb.dataStart)
	le.PutUint32(b[28:], sb.freeBlocks)
	le.PutUint32(b[32:], sb.freeInodes)
}

func (sb *superblock) decode(b []byte) {
	le := binary.LittleEndian
	sb.magic = le.Uint32(b[0:])
	sb.nblocks = le.Uint32(b[4:])
	sb.ninodes = le.Uint32(b[8:])
	sb.blockBitmap = le.Uint32(b[12:])
	sb.inodeBitmap = le.Uint32(b[16:])
	sb.inodeTable = le.Uint32(b[20:])
	sb.dataStart = le.Uint32(b[24:])
	sb.freeBlocks = le.Uint32(b[28:])
	sb.freeInodes = le.Uint32(b[32:])
}

// inode is the in-memory image of an on-disk inode (pruned ext2).
type inode struct {
	mode  uint16
	uid   uint16
	size  uint32
	mtime uint32
	gid   uint16
	links uint16
	block [NDirect + 2]uint32 // 12 direct, single, double
}

func (di *inode) encode(b []byte) {
	le := binary.LittleEndian
	le.PutUint16(b[0:], di.mode)
	le.PutUint16(b[2:], di.uid)
	le.PutUint32(b[4:], di.size)
	le.PutUint32(b[8:], di.mtime)
	le.PutUint16(b[12:], di.gid)
	le.PutUint16(b[14:], di.links)
	for i := range di.block {
		le.PutUint32(b[40+i*4:], di.block[i])
	}
}

func (di *inode) decode(b []byte) {
	le := binary.LittleEndian
	di.mode = le.Uint16(b[0:])
	di.uid = le.Uint16(b[2:])
	di.size = le.Uint32(b[4:])
	di.mtime = le.Uint32(b[8:])
	di.gid = le.Uint16(b[12:])
	di.links = le.Uint16(b[14:])
	for i := range di.block {
		di.block[i] = le.Uint32(b[40+i*4:])
	}
}

func (di *inode) isDir() bool { return di.mode&uint16(com.ModeIFMT) == uint16(com.ModeIFDIR) }

// FS is one mounted sext2.
type FS struct {
	dev com.BlkIO
	sb  superblock

	// A tiny write-through block cache keeps the donor code simple;
	// the Linux donor family leaned on the buffer cache, but sext2's
	// correctness story is the disk format, not cache policy.
	cblock uint32
	cbuf   [BlockSize]byte
	cvalid bool

	ticks     func() uint64
	unmounted bool
}

// Mount reads and checks the superblock.
func Mount(dev com.BlkIO, ticks func() uint64) (*FS, error) {
	dev.AddRef()
	fs := &FS{dev: dev, ticks: ticks}
	var b [BlockSize]byte
	if err := fs.readRaw(superBlock, b[:]); err != nil {
		dev.Release()
		return nil, err
	}
	fs.sb.decode(b[:])
	if fs.sb.magic != Magic {
		dev.Release()
		return nil, com.ErrInval
	}
	return fs, nil
}

func (fs *FS) now() uint32 {
	if fs.ticks == nil {
		return 0
	}
	return uint32(fs.ticks())
}

func (fs *FS) readRaw(blk uint32, dst []byte) error {
	n, err := fs.dev.Read(dst, uint64(blk)*BlockSize)
	if err != nil || n != BlockSize {
		return com.ErrIO
	}
	return nil
}

func (fs *FS) writeRaw(blk uint32, src []byte) error {
	n, err := fs.dev.Write(src, uint64(blk)*BlockSize)
	if err != nil || n != BlockSize {
		return com.ErrIO
	}
	return nil
}

// readBlock fills the one-block cache.
func (fs *FS) readBlock(blk uint32) ([]byte, error) {
	if fs.cvalid && fs.cblock == blk {
		return fs.cbuf[:], nil
	}
	if err := fs.readRaw(blk, fs.cbuf[:]); err != nil {
		fs.cvalid = false
		return nil, err
	}
	fs.cblock = blk
	fs.cvalid = true
	return fs.cbuf[:], nil
}

// writeBlock writes through and keeps the cache coherent.
func (fs *FS) writeBlock(blk uint32, data []byte) error {
	if err := fs.writeRaw(blk, data); err != nil {
		return err
	}
	if fs.cvalid && fs.cblock == blk && &fs.cbuf[0] != &data[0] {
		copy(fs.cbuf[:], data)
	}
	return nil
}

func (fs *FS) flushSuper() error {
	var b [BlockSize]byte
	if err := fs.readRaw(superBlock, b[:]); err != nil {
		return err
	}
	fs.sb.encode(b[:])
	return fs.writeBlock(superBlock, b[:])
}

// --- bitmaps (single block group: one block each).

func (fs *FS) bitmapAlloc(bitmapBlk, n uint32) (uint32, error) {
	b, err := fs.readBlock(bitmapBlk)
	if err != nil {
		return 0, err
	}
	for i := uint32(0); i < n && i < BlockSize*8; i++ {
		if b[i/8]&(1<<(i%8)) == 0 {
			tmp := make([]byte, BlockSize)
			copy(tmp, b)
			tmp[i/8] |= 1 << (i % 8)
			if err := fs.writeBlock(bitmapBlk, tmp); err != nil {
				return 0, err
			}
			return i, nil
		}
	}
	return 0, com.ErrNoSpace
}

func (fs *FS) bitmapFree(bitmapBlk, idx uint32) error {
	b, err := fs.readBlock(bitmapBlk)
	if err != nil {
		return err
	}
	if b[idx/8]&(1<<(idx%8)) == 0 {
		return com.ErrIO // freeing free item: corruption
	}
	tmp := make([]byte, BlockSize)
	copy(tmp, b)
	tmp[idx/8] &^= 1 << (idx % 8)
	return fs.writeBlock(bitmapBlk, tmp)
}

func (fs *FS) balloc() (uint32, error) {
	idx, err := fs.bitmapAlloc(fs.sb.blockBitmap, fs.sb.nblocks)
	if err != nil {
		return 0, err
	}
	fs.sb.freeBlocks--
	if err := fs.flushSuper(); err != nil {
		return 0, err
	}
	zero := make([]byte, BlockSize)
	if err := fs.writeBlock(idx, zero); err != nil {
		return 0, err
	}
	return idx, nil
}

func (fs *FS) bfree(blk uint32) error {
	if blk == 0 {
		return nil
	}
	if err := fs.bitmapFree(fs.sb.blockBitmap, blk); err != nil {
		return err
	}
	fs.sb.freeBlocks++
	return fs.flushSuper()
}

// --- inodes.

func (fs *FS) ialloc(mode uint16) (uint32, error) {
	idx, err := fs.bitmapAlloc(fs.sb.inodeBitmap, fs.sb.ninodes)
	if err != nil {
		return 0, err
	}
	fs.sb.freeInodes--
	if err := fs.flushSuper(); err != nil {
		return 0, err
	}
	di := inode{mode: mode, links: 1, mtime: fs.now()}
	if err := fs.iput(idx, &di); err != nil {
		return 0, err
	}
	return idx, nil
}

func (fs *FS) ifree(ino uint32) error {
	if err := fs.bitmapFree(fs.sb.inodeBitmap, ino); err != nil {
		return err
	}
	fs.sb.freeInodes++
	return fs.flushSuper()
}

func (fs *FS) iget(ino uint32) (*inode, error) {
	if ino == 0 || ino >= fs.sb.ninodes {
		return nil, com.ErrInval
	}
	blk := fs.sb.inodeTable + ino/(BlockSize/InodeSize)
	b, err := fs.readBlock(blk)
	if err != nil {
		return nil, err
	}
	var di inode
	off := (ino % (BlockSize / InodeSize)) * InodeSize
	di.decode(b[off : off+InodeSize])
	return &di, nil
}

func (fs *FS) iput(ino uint32, di *inode) error {
	blk := fs.sb.inodeTable + ino/(BlockSize/InodeSize)
	b, err := fs.readBlock(blk)
	if err != nil {
		return err
	}
	tmp := make([]byte, BlockSize)
	copy(tmp, b)
	off := (ino % (BlockSize / InodeSize)) * InodeSize
	di.encode(tmp[off : off+InodeSize])
	return fs.writeBlock(blk, tmp)
}

// --- block mapping: 12 direct, single indirect, double indirect.

func (fs *FS) bmap(di *inode, lbn uint32, alloc bool) (uint32, error) {
	if lbn < NDirect {
		if di.block[lbn] == 0 && alloc {
			blk, err := fs.balloc()
			if err != nil {
				return 0, err
			}
			di.block[lbn] = blk
		}
		return di.block[lbn], nil
	}
	lbn -= NDirect
	if lbn < ptrsPerBl {
		return fs.indWalk(&di.block[NDirect], lbn, alloc)
	}
	lbn -= ptrsPerBl
	if lbn < ptrsPerBl*ptrsPerBl {
		root := &di.block[NDirect+1]
		if *root == 0 {
			if !alloc {
				return 0, nil
			}
			blk, err := fs.balloc()
			if err != nil {
				return 0, err
			}
			*root = blk
		}
		l1, err := fs.indSlot(*root, lbn/ptrsPerBl, alloc)
		if err != nil || l1 == 0 {
			return l1, err
		}
		return fs.indSlotValue(l1, lbn%ptrsPerBl, alloc)
	}
	return 0, com.ErrNoSpace
}

func (fs *FS) indWalk(root *uint32, slot uint32, alloc bool) (uint32, error) {
	if *root == 0 {
		if !alloc {
			return 0, nil
		}
		blk, err := fs.balloc()
		if err != nil {
			return 0, err
		}
		*root = blk
	}
	return fs.indSlotValue(*root, slot, alloc)
}

// indSlot reads (allocating when asked) the pointer at slot of an
// indirect block, allocating a fresh *indirect* block there.
func (fs *FS) indSlot(blk, slot uint32, alloc bool) (uint32, error) {
	b, err := fs.readBlock(blk)
	if err != nil {
		return 0, err
	}
	v := binary.LittleEndian.Uint32(b[slot*4:])
	if v == 0 && alloc {
		nb, err := fs.balloc()
		if err != nil {
			return 0, err
		}
		tmp := make([]byte, BlockSize)
		if _, err := fs.readBlock(blk); err != nil {
			return 0, err
		}
		copy(tmp, fs.cbuf[:])
		binary.LittleEndian.PutUint32(tmp[slot*4:], nb)
		if err := fs.writeBlock(blk, tmp); err != nil {
			return 0, err
		}
		return nb, nil
	}
	return v, nil
}

// indSlotValue is indSlot for *data* blocks.
func (fs *FS) indSlotValue(blk, slot uint32, alloc bool) (uint32, error) {
	return fs.indSlot(blk, slot, alloc)
}

// --- file data.

func (fs *FS) readi(di *inode, dst []byte, off uint64) (uint, error) {
	if off >= uint64(di.size) {
		return 0, nil
	}
	if rem := uint64(di.size) - off; uint64(len(dst)) > rem {
		dst = dst[:rem]
	}
	done := uint(0)
	for len(dst) > 0 {
		lbn := uint32(off / BlockSize)
		boff := int(off % BlockSize)
		n := BlockSize - boff
		if n > len(dst) {
			n = len(dst)
		}
		blk, err := fs.bmap(di, lbn, false)
		if err != nil {
			return done, err
		}
		if blk == 0 {
			for i := 0; i < n; i++ {
				dst[i] = 0
			}
		} else {
			b, err := fs.readBlock(blk)
			if err != nil {
				return done, err
			}
			copy(dst[:n], b[boff:boff+n])
		}
		dst = dst[n:]
		off += uint64(n)
		done += uint(n)
	}
	return done, nil
}

func (fs *FS) writei(di *inode, src []byte, off uint64) (uint, error) {
	if off+uint64(len(src)) > 1<<31 {
		return 0, com.ErrNoSpace // size field is 32-bit
	}
	done := uint(0)
	for len(src) > 0 {
		lbn := uint32(off / BlockSize)
		boff := int(off % BlockSize)
		n := BlockSize - boff
		if n > len(src) {
			n = len(src)
		}
		blk, err := fs.bmap(di, lbn, true)
		if err != nil {
			return done, err
		}
		b, err := fs.readBlock(blk)
		if err != nil {
			return done, err
		}
		tmp := make([]byte, BlockSize)
		copy(tmp, b)
		copy(tmp[boff:boff+n], src[:n])
		if err := fs.writeBlock(blk, tmp); err != nil {
			return done, err
		}
		src = src[n:]
		off += uint64(n)
		done += uint(n)
		if off > uint64(di.size) {
			di.size = uint32(off)
		}
	}
	di.mtime = fs.now()
	return done, nil
}

// itrunc shrinks (or just relabels) the inode to size.
func (fs *FS) itrunc(di *inode, size uint64) error {
	if size >= uint64(di.size) {
		di.size = uint32(size)
		return nil
	}
	firstFree := uint32((size + BlockSize - 1) / BlockSize)
	lastUsed := (di.size + BlockSize - 1) / BlockSize
	for lbn := firstFree; lbn < lastUsed; lbn++ {
		blk, err := fs.bmap(di, lbn, false)
		if err != nil {
			return err
		}
		if blk != 0 {
			if err := fs.bfree(blk); err != nil {
				return err
			}
			if err := fs.clearMapping(di, lbn); err != nil {
				return err
			}
		}
	}
	// POSIX: bytes between the new size and the old contents must read
	// as zero if the file grows again — scrub the tail of the final
	// partial block.
	if size%BlockSize != 0 {
		if blk, err := fs.bmap(di, uint32(size/BlockSize), false); err == nil && blk != 0 {
			b, err := fs.readBlock(blk)
			if err == nil {
				tmp := make([]byte, BlockSize)
				copy(tmp, b)
				for i := size % BlockSize; i < BlockSize; i++ {
					tmp[i] = 0
				}
				if err := fs.writeBlock(blk, tmp); err != nil {
					return err
				}
			}
		}
	}
	if size <= NDirect*BlockSize && di.block[NDirect] != 0 {
		if err := fs.bfree(di.block[NDirect]); err != nil {
			return err
		}
		di.block[NDirect] = 0
	}
	if size <= (NDirect+ptrsPerBl)*BlockSize && di.block[NDirect+1] != 0 {
		// Free surviving level-1 indirect blocks, then the root.
		b, err := fs.readBlock(di.block[NDirect+1])
		if err != nil {
			return err
		}
		var l1s []uint32
		for i := uint32(0); i < ptrsPerBl; i++ {
			if p := binary.LittleEndian.Uint32(b[i*4:]); p != 0 {
				l1s = append(l1s, p)
			}
		}
		for _, p := range l1s {
			if err := fs.bfree(p); err != nil {
				return err
			}
		}
		if err := fs.bfree(di.block[NDirect+1]); err != nil {
			return err
		}
		di.block[NDirect+1] = 0
	}
	di.size = uint32(size)
	di.mtime = fs.now()
	return nil
}

func (fs *FS) clearMapping(di *inode, lbn uint32) error {
	if lbn < NDirect {
		di.block[lbn] = 0
		return nil
	}
	lbn -= NDirect
	clearSlot := func(blk, slot uint32) error {
		if blk == 0 {
			return nil
		}
		b, err := fs.readBlock(blk)
		if err != nil {
			return err
		}
		tmp := make([]byte, BlockSize)
		copy(tmp, b)
		binary.LittleEndian.PutUint32(tmp[slot*4:], 0)
		return fs.writeBlock(blk, tmp)
	}
	if lbn < ptrsPerBl {
		return clearSlot(di.block[NDirect], lbn)
	}
	lbn -= ptrsPerBl
	root := di.block[NDirect+1]
	if root == 0 {
		return nil
	}
	l1, err := fs.indSlot(root, lbn/ptrsPerBl, false)
	if err != nil || l1 == 0 {
		return err
	}
	return clearSlot(l1, lbn%ptrsPerBl)
}

func (fs *FS) ifreeData(ino uint32, di *inode) error {
	if err := fs.itrunc(di, 0); err != nil {
		return err
	}
	if err := fs.iput(ino, di); err != nil {
		return err
	}
	return fs.ifree(ino)
}
