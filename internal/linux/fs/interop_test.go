package linuxfs

import (
	"bytes"
	"testing"

	"oskit/internal/com"
	"oskit/internal/core"
	"oskit/internal/diskpart"
	bsdglue "oskit/internal/freebsd/glue"
	"oskit/internal/hw"
	"oskit/internal/lmm"
	netbsdfs "oskit/internal/netbsd/fs"
)

// TestTwoFSFamiliesOneDisk is the separability payoff the paper's §3.8
// was heading toward: an sext2 and an FFS mounted on two partitions of
// the same device, driven by identical client code through the same COM
// interfaces.
func TestTwoFSFamiliesOneDisk(t *testing.T) {
	m := hw.NewMachine(hw.Config{MemBytes: 16 << 20})
	defer m.Halt()
	arena := lmm.NewArena()
	if err := arena.AddRegion(0x100000, 8<<20, 0, 0); err != nil {
		t.Fatal(err)
	}
	arena.AddFree(0x100000, 8<<20)
	env := core.NewEnv(m, arena)

	disk := com.NewMemBuf(make([]byte, 8<<20))
	if err := diskpart.WriteMBR(disk, []diskpart.MBREntry{
		{Type: diskpart.TypeLinux, StartLBA: 64, Sectors: 8000},
		{Type: diskpart.TypeBSD, StartLBA: 8256, Sectors: 8000},
	}); err != nil {
		t.Fatal(err)
	}
	parts, err := diskpart.ReadPartitions(disk)
	if err != nil || len(parts) != 2 {
		t.Fatalf("parts = %+v, %v", parts, err)
	}
	linuxVol := diskpart.Open(disk, parts[0])
	defer linuxVol.Release()
	bsdVol := diskpart.Open(disk, parts[1])
	defer bsdVol.Release()

	if err := Mkfs(linuxVol, 0); err != nil {
		t.Fatal(err)
	}
	if err := netbsdfs.Mkfs(bsdVol, 0); err != nil {
		t.Fatal(err)
	}
	lfs, err := Mount(linuxVol, env.Ticks)
	if err != nil {
		t.Fatal(err)
	}
	bfs, err := netbsdfs.Mount(bsdglue.New(env), bsdVol)
	if err != nil {
		t.Fatal(err)
	}

	// Identical client code against both mounts.
	exercise := func(name string, fs com.FileSystem) {
		root, err := fs.GetRoot()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		defer root.Release()
		if err := root.Mkdir("dir", 0o755); err != nil {
			t.Fatalf("%s mkdir: %v", name, err)
		}
		f, err := root.Create("file", 0o644, true)
		if err != nil {
			t.Fatalf("%s create: %v", name, err)
		}
		defer f.Release()
		data := bytes.Repeat([]byte(name), 1000)
		if _, err := f.WriteAt(data, 0); err != nil {
			t.Fatalf("%s write: %v", name, err)
		}
		got := make([]byte, len(data))
		var off uint64
		for off < uint64(len(data)) {
			n, err := f.ReadAt(got[off:], off)
			if err != nil || n == 0 {
				t.Fatalf("%s read: %v", name, err)
			}
			off += uint64(n)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("%s: data corrupted", name)
		}
	}
	exercise("sext2", lfs)
	exercise("nffs!", bfs)

	// Neither mount sees the other's files (the partitions isolate
	// them); both magic numbers coexist on one platter.
	lroot, _ := lfs.GetRoot()
	defer lroot.Release()
	ents, _ := lroot.ReadDir(0, 0)
	if len(ents) != 2 {
		t.Fatalf("sext2 sees %d entries", len(ents))
	}
	if err := bfs.Unmount(); err != nil {
		t.Fatal(err)
	}
	if err := lfs.Unmount(); err != nil {
		t.Fatal(err)
	}
	// Remount both: persistence across the shared platter.
	if _, err := Mount(linuxVol, nil); err != nil {
		t.Fatalf("sext2 remount: %v", err)
	}
	if _, err := netbsdfs.Mount(bsdglue.New(env), bsdVol); err != nil {
		t.Fatalf("ffs remount: %v", err)
	}
}
