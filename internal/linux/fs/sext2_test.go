package linuxfs

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"oskit/internal/com"
)

func mountTest(t *testing.T, blocks uint32) *FS {
	t.Helper()
	dev := com.NewMemBuf(make([]byte, blocks*BlockSize))
	if err := Mkfs(dev, 0); err != nil {
		t.Fatal(err)
	}
	fs, err := Mount(dev, nil)
	if err != nil {
		t.Fatal(err)
	}
	dev.Release()
	return fs
}

func TestMkfsMountRoot(t *testing.T) {
	fs := mountTest(t, 1024)
	st, err := fs.StatFS()
	if err != nil || st.TotalBlocks != 1024 || st.FreeBlocks == 0 {
		t.Fatalf("StatFS = %+v, %v", st, err)
	}
	root, err := fs.GetRoot()
	if err != nil {
		t.Fatal(err)
	}
	defer root.Release()
	rst, _ := root.GetStat()
	if rst.Ino != RootIno || rst.Mode&com.ModeIFMT != com.ModeIFDIR {
		t.Fatalf("root = %+v", rst)
	}
	// ext2 identity: magic in block 1, root is inode 2.
	if RootIno != 2 || Magic != 0xEF53 {
		t.Fatal("ext2 conventions violated")
	}
	// Unformatted device rejected.
	if _, err := Mount(com.NewMemBuf(make([]byte, 64*BlockSize)), nil); err == nil {
		t.Fatal("mounted garbage")
	}
}

func TestFileRoundTripThroughIndirection(t *testing.T) {
	fs := mountTest(t, 4096)
	root, _ := fs.GetRoot()
	defer root.Release()
	f, err := root.Create("big", 0o644, true)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Release()
	// 12 KiB direct + 256 KiB single indirect; 300 KiB exercises double.
	payload := make([]byte, 300*1024)
	for i := range payload {
		payload[i] = byte(i*13 + i>>8)
	}
	if n, err := f.WriteAt(payload, 0); err != nil || n != uint(len(payload)) {
		t.Fatalf("WriteAt = %d, %v", n, err)
	}
	got := make([]byte, len(payload))
	var off uint64
	for off < uint64(len(payload)) {
		n, err := f.ReadAt(got[off:], off)
		if err != nil || n == 0 {
			t.Fatalf("ReadAt: %d, %v", n, err)
		}
		off += uint64(n)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("round trip corrupted")
	}
	// Truncate reclaims; free count returns.
	st0, _ := fs.StatFS()
	if err := f.SetSize(0); err != nil {
		t.Fatal(err)
	}
	st1, _ := fs.StatFS()
	if st1.FreeBlocks <= st0.FreeBlocks {
		t.Fatalf("truncate reclaimed nothing: %d -> %d", st0.FreeBlocks, st1.FreeBlocks)
	}
}

func TestDirentRecLenDiscipline(t *testing.T) {
	fs := mountTest(t, 512)
	root, _ := fs.GetRoot()
	defer root.Release()
	// Names of varied length force record splits.
	names := []string{"a", "bb", "a-much-longer-name-ccc", "d", "eeeee", "f"}
	for _, n := range names {
		if _, err := root.Create(n, 0o644, true); err != nil {
			t.Fatalf("create %q: %v", n, err)
		}
	}
	ents, err := root.ReadDir(0, 0)
	if err != nil || len(ents) != len(names) {
		t.Fatalf("ReadDir = %d entries, %v", len(ents), err)
	}
	// Remove a middle entry: its record folds into the predecessor...
	if err := root.Unlink("a-much-longer-name-ccc"); err != nil {
		t.Fatal(err)
	}
	// ...and a new entry can reuse the slack.
	if _, err := root.Create("reuse-the-slack", 0o644, true); err != nil {
		t.Fatal(err)
	}
	// Remove the leading entry: becomes a free record.
	if err := root.Unlink("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := root.Create("a2", 0o644, true); err != nil {
		t.Fatal(err)
	}
	ents, _ = root.ReadDir(0, 0)
	if len(ents) != len(names) {
		t.Fatalf("after churn: %d entries: %+v", len(ents), ents)
	}
	// The tiling stays exact: every record decodes, rec_lens cover each
	// block (dirScan errors on violation).
	di, _ := fs.iget(RootIno)
	if err := fs.dirScan(di, func(uint32, int, dirent) bool { return true }); err != nil {
		t.Fatalf("directory tiling broken: %v", err)
	}
}

func TestDirectoryGrowsBlocks(t *testing.T) {
	fs := mountTest(t, 1024)
	root, _ := fs.GetRoot()
	defer root.Release()
	for i := 0; i < 80; i++ { // > one block of records
		name := fmt.Sprintf("file-with-a-reasonably-long-name-%02d", i)
		if _, err := root.Create(name, 0o644, true); err != nil {
			t.Fatalf("create %d: %v", i, err)
		}
	}
	ents, err := root.ReadDir(0, 0)
	if err != nil || len(ents) != 80 {
		t.Fatalf("ReadDir = %d, %v", len(ents), err)
	}
	rst, _ := root.GetStat()
	if rst.Size <= BlockSize {
		t.Fatalf("directory did not grow: %d", rst.Size)
	}
	// Unlink all; directory stays scannable.
	for i := 0; i < 80; i++ {
		name := fmt.Sprintf("file-with-a-reasonably-long-name-%02d", i)
		if err := root.Unlink(name); err != nil {
			t.Fatalf("unlink %d: %v", i, err)
		}
	}
	ents, _ = root.ReadDir(0, 0)
	if len(ents) != 0 {
		t.Fatalf("entries after unlink-all: %+v", ents)
	}
}

func TestDirOpsSemantics(t *testing.T) {
	fs := mountTest(t, 512)
	root, _ := fs.GetRoot()
	defer root.Release()
	if err := root.Mkdir("d", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := root.Mkdir("d", 0o755); err != com.ErrExist {
		t.Fatalf("dup mkdir: %v", err)
	}
	dF, _ := root.Lookup("d")
	dq, err := dF.QueryInterface(com.DirIID)
	if err != nil {
		t.Fatal("dir does not answer for Dir")
	}
	dF.Release()
	d := dq.(com.Dir)
	defer d.Release()
	if _, err := d.Create("f", 0o644, true); err != nil {
		t.Fatal(err)
	}
	if err := root.Rmdir("d"); err != com.ErrNotEmpty {
		t.Fatalf("rmdir non-empty: %v", err)
	}
	if err := root.Unlink("d"); err != com.ErrIsDir {
		t.Fatalf("unlink dir: %v", err)
	}
	if err := d.Unlink("f"); err != nil {
		t.Fatal(err)
	}
	if err := root.Rmdir("d"); err != nil {
		t.Fatal(err)
	}
	if _, err := root.Lookup("d"); err != com.ErrNoEnt {
		t.Fatalf("lookup after rmdir: %v", err)
	}
	// Single-component rule.
	if _, err := root.Lookup("a/b"); err != com.ErrInval {
		t.Fatalf("multi-component: %v", err)
	}
	if _, err := root.Lookup(".."); err != com.ErrInval {
		t.Fatalf("dotdot: %v", err)
	}
}

func TestRename(t *testing.T) {
	fs := mountTest(t, 512)
	root, _ := fs.GetRoot()
	defer root.Release()
	_ = root.Mkdir("src", 0o755)
	_ = root.Mkdir("dst", 0o755)
	srcF, _ := root.Lookup("src")
	sq, _ := srcF.QueryInterface(com.DirIID)
	srcF.Release()
	src := sq.(com.Dir)
	defer src.Release()
	dstF, _ := root.Lookup("dst")
	dq, _ := dstF.QueryInterface(com.DirIID)
	dstF.Release()
	dst := dq.(com.Dir)
	defer dst.Release()

	f, _ := src.Create("file", 0o644, true)
	_, _ = f.WriteAt([]byte("payload"), 0)
	f.Release()
	if err := src.Rename("file", dst, "moved"); err != nil {
		t.Fatal(err)
	}
	if _, err := src.Lookup("file"); err != com.ErrNoEnt {
		t.Fatal("source survived")
	}
	got, err := dst.Lookup("moved")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	n, _ := got.ReadAt(buf, 0)
	if string(buf[:n]) != "payload" {
		t.Fatalf("moved contents = %q", buf[:n])
	}
	got.Release()
	// Same-dir rename over an existing file.
	f2, _ := dst.Create("victim", 0o644, true)
	f2.Release()
	if err := dst.Rename("moved", dst, "victim"); err != nil {
		t.Fatal(err)
	}
	ents, _ := dst.ReadDir(0, 0)
	if len(ents) != 1 || ents[0].Name != "victim" {
		t.Fatalf("dst = %+v", ents)
	}
}

// TestModelProperty drives random ops against an in-memory model, the
// same harness the FFS passes, proving the two components are
// interchangeable in behaviour, not just in interface.
func TestModelProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	fs := mountTest(t, 4096)
	root, _ := fs.GetRoot()
	defer root.Release()
	model := map[string][]byte{}
	names := []string{"n1", "n2", "n3", "n4"}
	for step := 0; step < 250; step++ {
		name := names[rng.Intn(len(names))]
		switch rng.Intn(4) {
		case 0:
			f, err := root.Create(name, 0o644, false)
			if err != nil {
				t.Fatalf("step %d create: %v", step, err)
			}
			data := make([]byte, rng.Intn(3000)+1)
			rng.Read(data)
			off := uint64(rng.Intn(20000))
			if _, err := f.WriteAt(data, off); err != nil {
				t.Fatalf("step %d write: %v", step, err)
			}
			cur := model[name]
			if need := int(off) + len(data); need > len(cur) {
				g := make([]byte, need)
				copy(g, cur)
				cur = g
			}
			copy(cur[off:], data)
			model[name] = cur
			f.Release()
		case 1:
			if _, ok := model[name]; !ok {
				continue
			}
			f, _ := root.Lookup(name)
			size := uint64(rng.Intn(10000))
			if err := f.SetSize(size); err != nil {
				t.Fatalf("step %d truncate: %v", step, err)
			}
			cur := model[name]
			if int(size) <= len(cur) {
				model[name] = cur[:size]
			} else {
				g := make([]byte, size)
				copy(g, cur)
				model[name] = g
			}
			f.Release()
		case 2:
			if _, ok := model[name]; !ok {
				continue
			}
			if err := root.Unlink(name); err != nil {
				t.Fatalf("step %d unlink: %v", step, err)
			}
			delete(model, name)
		case 3:
			want, ok := model[name]
			f, err := root.Lookup(name)
			if !ok {
				if err != com.ErrNoEnt {
					t.Fatalf("step %d: ghost file", step)
				}
				continue
			}
			if err != nil {
				t.Fatalf("step %d lookup: %v", step, err)
			}
			st, _ := f.GetStat()
			if st.Size != uint64(len(want)) {
				t.Fatalf("step %d: size %d want %d", step, st.Size, len(want))
			}
			got := make([]byte, len(want))
			var off uint64
			for off < uint64(len(want)) {
				n, err := f.ReadAt(got[off:], off)
				if err != nil || n == 0 {
					t.Fatalf("step %d read: %v", step, err)
				}
				off += uint64(n)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("step %d: contents diverge", step)
			}
			f.Release()
		}
	}
}
