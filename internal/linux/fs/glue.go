package linuxfs

import (
	"oskit/internal/com"
)

// The COM export: identical interface shape to the NetBSD-derived
// component — which is the whole point.  (sext2 runs single-threaded
// per the simplest documented execution model; a multithreaded client
// wraps it in a component lock, §4.7.4.)

// Mkfs formats a BlkIO with an empty sext2.
func Mkfs(dev com.BlkIO, ninodes uint32) error {
	size, err := dev.Size()
	if err != nil {
		return err
	}
	nblocks := uint32(size / BlockSize)
	if nblocks < 16 {
		return com.ErrNoSpace
	}
	if nblocks > BlockSize*8 {
		nblocks = BlockSize * 8 // one block group (one bitmap block)
	}
	inosPerBlk := uint32(BlockSize / InodeSize)
	if ninodes == 0 {
		ninodes = nblocks / 4
	}
	if ninodes > BlockSize*8 {
		ninodes = BlockSize * 8
	}
	ninodes = (ninodes + inosPerBlk - 1) / inosPerBlk * inosPerBlk

	sb := superblock{
		magic:       Magic,
		nblocks:     nblocks,
		ninodes:     ninodes,
		blockBitmap: 2,
		inodeBitmap: 3,
		inodeTable:  4,
	}
	sb.dataStart = sb.inodeTable + ninodes/inosPerBlk
	if sb.dataStart >= nblocks {
		return com.ErrNoSpace
	}
	sb.freeBlocks = nblocks - sb.dataStart
	sb.freeInodes = ninodes - 3 // 0 reserved, 1 bad-blocks, 2 root

	blk := make([]byte, BlockSize)
	write := func(n uint32, data []byte) error {
		w, err := dev.Write(data, uint64(n)*BlockSize)
		if err != nil || w != BlockSize {
			return com.ErrIO
		}
		return nil
	}

	// Superblock (block 1; block 0 is the ext2 boot block, untouched).
	sb.encode(blk)
	if err := write(superBlock, blk); err != nil {
		return err
	}
	// Block bitmap: metadata + tail marked used.
	for i := range blk {
		blk[i] = 0
	}
	for b := uint32(0); b < BlockSize*8; b++ {
		if b < sb.dataStart || b >= nblocks {
			blk[b/8] |= 1 << (b % 8)
		}
	}
	if err := write(sb.blockBitmap, blk); err != nil {
		return err
	}
	// Inode bitmap: 0, 1 (bad blocks), 2 (root) used.
	for i := range blk {
		blk[i] = 0
	}
	blk[0] = 0b111
	if err := write(sb.inodeBitmap, blk); err != nil {
		return err
	}
	// Inode table with the root directory.
	root := inode{mode: uint16(com.ModeIFDIR) | 0o755, links: 2}
	for i := uint32(0); i < ninodes/inosPerBlk; i++ {
		for j := range blk {
			blk[j] = 0
		}
		if i == RootIno/inosPerBlk {
			off := (RootIno % inosPerBlk) * InodeSize
			root.encode(blk[off : off+InodeSize])
		}
		if err := write(sb.inodeTable+i, blk); err != nil {
			return err
		}
	}
	return nil
}

// vnode is one COM node.
type vnode struct {
	com.RefCount
	fs  *FS
	ino uint32
}

func (fs *FS) newVnode(ino uint32) *vnode {
	v := &vnode{fs: fs, ino: ino}
	v.Init()
	return v
}

// --- com.FileSystem on *FS.

// QueryInterface implements com.IUnknown.
func (fs *FS) QueryInterface(iid com.GUID) (com.IUnknown, error) {
	switch iid {
	case com.UnknownIID, com.FileSystemIID:
		return fs, nil
	}
	return nil, com.ErrNoInterface
}

// AddRef implements com.IUnknown (the mount is client-owned).
func (fs *FS) AddRef() uint32 { return 1 }

// Release implements com.IUnknown.
func (fs *FS) Release() uint32 { return 1 }

// GetRoot implements com.FileSystem.
func (fs *FS) GetRoot() (com.Dir, error) {
	if fs.unmounted {
		return nil, com.ErrBadF
	}
	return fs.newVnode(RootIno), nil
}

// StatFS implements com.FileSystem.
func (fs *FS) StatFS() (com.StatFS, error) {
	return com.StatFS{
		BlockSize:   BlockSize,
		TotalBlocks: uint64(fs.sb.nblocks),
		FreeBlocks:  uint64(fs.sb.freeBlocks),
		TotalFiles:  uint64(fs.sb.ninodes),
		FreeFiles:   uint64(fs.sb.freeInodes),
	}, nil
}

// Sync implements com.FileSystem (writes are write-through).
func (fs *FS) Sync() error { return nil }

// Unmount implements com.FileSystem.
func (fs *FS) Unmount() error {
	if fs.unmounted {
		return com.ErrBadF
	}
	fs.unmounted = true
	fs.dev.Release()
	return nil
}

var _ com.FileSystem = (*FS)(nil)

// --- com.File / com.Dir on vnode.

// QueryInterface implements com.IUnknown.
func (v *vnode) QueryInterface(iid com.GUID) (com.IUnknown, error) {
	switch iid {
	case com.UnknownIID, com.FileIID:
		v.AddRef()
		return v, nil
	case com.DirIID:
		di, err := v.fs.iget(v.ino)
		if err == nil && di.isDir() {
			v.AddRef()
			return v, nil
		}
	}
	return nil, com.ErrNoInterface
}

// ReadAt implements com.File.
func (v *vnode) ReadAt(buf []byte, offset uint64) (uint, error) {
	di, err := v.fs.iget(v.ino)
	if err != nil {
		return 0, err
	}
	if di.isDir() {
		return 0, com.ErrIsDir
	}
	return v.fs.readi(di, buf, offset)
}

// WriteAt implements com.File.
func (v *vnode) WriteAt(buf []byte, offset uint64) (uint, error) {
	di, err := v.fs.iget(v.ino)
	if err != nil {
		return 0, err
	}
	if di.isDir() {
		return 0, com.ErrIsDir
	}
	n, werr := v.fs.writei(di, buf, offset)
	if err := v.fs.iput(v.ino, di); err != nil {
		return n, err
	}
	return n, werr
}

// GetStat implements com.File.
func (v *vnode) GetStat() (com.Stat, error) {
	di, err := v.fs.iget(v.ino)
	if err != nil {
		return com.Stat{}, err
	}
	return com.Stat{
		Ino:     v.ino,
		Mode:    uint32(di.mode),
		Nlink:   uint32(di.links),
		UID:     uint32(di.uid),
		GID:     uint32(di.gid),
		Size:    uint64(di.size),
		Blocks:  (uint64(di.size) + BlockSize - 1) / BlockSize,
		Mtime:   uint64(di.mtime),
		BlkSize: BlockSize,
	}, nil
}

// SetSize implements com.File.
func (v *vnode) SetSize(size uint64) error {
	di, err := v.fs.iget(v.ino)
	if err != nil {
		return err
	}
	if di.isDir() {
		return com.ErrIsDir
	}
	if size > 1<<31 {
		return com.ErrNoSpace
	}
	if err := v.fs.itrunc(di, size); err != nil {
		return err
	}
	return v.fs.iput(v.ino, di)
}

// Sync implements com.File.
func (v *vnode) Sync() error { return nil }

// Lookup implements com.Dir.
func (v *vnode) Lookup(name string) (com.File, error) {
	di, err := v.dirInode()
	if err != nil {
		return nil, err
	}
	if name == "." {
		v.AddRef()
		return v, nil
	}
	if err := checkName(name); err != nil {
		return nil, err
	}
	ino, err := v.fs.dirLookup(di, name)
	if err != nil {
		return nil, err
	}
	return v.fs.newVnode(ino), nil
}

// Create implements com.Dir.
func (v *vnode) Create(name string, mode uint32, excl bool) (com.File, error) {
	di, err := v.dirInode()
	if err != nil {
		return nil, err
	}
	if err := checkName(name); err != nil {
		return nil, err
	}
	if ino, err := v.fs.dirLookup(di, name); err == nil {
		if excl {
			return nil, com.ErrExist
		}
		edi, err := v.fs.iget(ino)
		if err != nil {
			return nil, err
		}
		if edi.isDir() {
			return nil, com.ErrIsDir
		}
		return v.fs.newVnode(ino), nil
	}
	ino, err := v.fs.ialloc(uint16(com.ModeIFREG | mode&^com.ModeIFMT))
	if err != nil {
		return nil, err
	}
	if err := v.fs.dirEnter(di, v.ino, name, ino, ftRegular); err != nil {
		return nil, err
	}
	return v.fs.newVnode(ino), nil
}

// Mkdir implements com.Dir.
func (v *vnode) Mkdir(name string, mode uint32) error {
	di, err := v.dirInode()
	if err != nil {
		return err
	}
	if err := checkName(name); err != nil {
		return err
	}
	if _, err := v.fs.dirLookup(di, name); err == nil {
		return com.ErrExist
	}
	ino, err := v.fs.ialloc(uint16(com.ModeIFDIR | mode&^com.ModeIFMT))
	if err != nil {
		return err
	}
	ndi, err := v.fs.iget(ino)
	if err != nil {
		return err
	}
	ndi.links = 2
	if err := v.fs.iput(ino, ndi); err != nil {
		return err
	}
	if err := v.fs.dirEnter(di, v.ino, name, ino, ftDir); err != nil {
		return err
	}
	di2, err := v.fs.iget(v.ino)
	if err != nil {
		return err
	}
	di2.links++
	return v.fs.iput(v.ino, di2)
}

// Unlink implements com.Dir.
func (v *vnode) Unlink(name string) error {
	di, err := v.dirInode()
	if err != nil {
		return err
	}
	if err := checkName(name); err != nil {
		return err
	}
	ino, err := v.fs.dirLookup(di, name)
	if err != nil {
		return err
	}
	tdi, err := v.fs.iget(ino)
	if err != nil {
		return err
	}
	if tdi.isDir() {
		return com.ErrIsDir
	}
	if err := v.fs.dirRemove(di, v.ino, name); err != nil {
		return err
	}
	tdi.links--
	if tdi.links == 0 {
		return v.fs.ifreeData(ino, tdi)
	}
	return v.fs.iput(ino, tdi)
}

// Rmdir implements com.Dir.
func (v *vnode) Rmdir(name string) error {
	di, err := v.dirInode()
	if err != nil {
		return err
	}
	if err := checkName(name); err != nil {
		return err
	}
	ino, err := v.fs.dirLookup(di, name)
	if err != nil {
		return err
	}
	tdi, err := v.fs.iget(ino)
	if err != nil {
		return err
	}
	if !tdi.isDir() {
		return com.ErrNotDir
	}
	empty, err := v.fs.dirEmpty(tdi)
	if err != nil {
		return err
	}
	if !empty {
		return com.ErrNotEmpty
	}
	if err := v.fs.dirRemove(di, v.ino, name); err != nil {
		return err
	}
	if err := v.fs.ifreeData(ino, tdi); err != nil {
		return err
	}
	di2, err := v.fs.iget(v.ino)
	if err != nil {
		return err
	}
	di2.links--
	return v.fs.iput(v.ino, di2)
}

// Rename implements com.Dir (same file system only).
func (v *vnode) Rename(old string, newDir com.Dir, newName string) error {
	nd, ok := newDir.(*vnode)
	if !ok || nd.fs != v.fs {
		return com.ErrXDev
	}
	sdi, err := v.dirInode()
	if err != nil {
		return err
	}
	if err := checkName(old); err != nil {
		return err
	}
	if err := checkName(newName); err != nil {
		return err
	}
	ino, err := v.fs.dirLookup(sdi, old)
	if err != nil {
		return err
	}
	mdi, err := v.fs.iget(ino)
	if err != nil {
		return err
	}
	ftype := uint8(ftRegular)
	if mdi.isDir() {
		ftype = ftDir
	}
	ddi, err := nd.dirInode()
	if err != nil {
		return err
	}
	// Replace an existing regular file at the destination.
	if dstIno, err := v.fs.dirLookup(ddi, newName); err == nil {
		ddi2, err := v.fs.iget(dstIno)
		if err != nil {
			return err
		}
		if ddi2.isDir() {
			return com.ErrIsDir
		}
		if err := v.fs.dirRemove(ddi, nd.ino, newName); err != nil {
			return err
		}
		ddi2.links--
		if ddi2.links == 0 {
			if err := v.fs.ifreeData(dstIno, ddi2); err != nil {
				return err
			}
		} else if err := v.fs.iput(dstIno, ddi2); err != nil {
			return err
		}
	}
	// Remove from the source, enter at the destination (re-reading
	// inodes: the removals above may have rewritten them).
	sdi, err = v.dirInode()
	if err != nil {
		return err
	}
	if err := v.fs.dirRemove(sdi, v.ino, old); err != nil {
		return err
	}
	ddi, err = nd.dirInode()
	if err != nil {
		return err
	}
	return v.fs.dirEnter(ddi, nd.ino, newName, ino, ftype)
}

// ReadDir implements com.Dir.
func (v *vnode) ReadDir(start, count int) ([]com.Dirent, error) {
	di, err := v.dirInode()
	if err != nil {
		return nil, err
	}
	all, err := v.fs.dirList(di)
	if err != nil {
		return nil, err
	}
	if start < 0 || start > len(all) {
		return nil, com.ErrInval
	}
	all = all[start:]
	if count > 0 && count < len(all) {
		all = all[:count]
	}
	return all, nil
}

func (v *vnode) dirInode() (*inode, error) {
	di, err := v.fs.iget(v.ino)
	if err != nil {
		return nil, err
	}
	if !di.isDir() {
		return nil, com.ErrNotDir
	}
	return di, nil
}

var _ com.Dir = (*vnode)(nil)
