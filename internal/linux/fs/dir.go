package linuxfs

import (
	"encoding/binary"

	"oskit/internal/com"
)

// ext2 directories: each block is a chain of variable-length records
//
//	inode u32 | rec_len u16 | name_len u8 | file_type u8 | name...
//
// whose rec_lens exactly tile the block.  A record with inode 0 is
// free space; deleting an entry folds its rec_len into the predecessor.

const (
	direntFixed = 8
	// MaxNameLen matches ext2.
	MaxNameLen = 255
)

func direntSize(nameLen int) uint16 {
	// Records are 4-byte aligned, per ext2.
	return uint16((direntFixed + nameLen + 3) &^ 3)
}

// dirent is one decoded record.
type dirent struct {
	ino      uint32
	recLen   uint16
	nameLen  uint8
	fileType uint8
	name     string
}

// decodeDirent reads the record at off; ok=false when the block tiling
// is corrupt.
func decodeDirent(b []byte, off int) (dirent, bool) {
	if off+direntFixed > len(b) {
		return dirent{}, false
	}
	var d dirent
	d.ino = binary.LittleEndian.Uint32(b[off:])
	d.recLen = binary.LittleEndian.Uint16(b[off+4:])
	d.nameLen = b[off+6]
	d.fileType = b[off+7]
	if d.recLen < direntFixed || off+int(d.recLen) > len(b) ||
		direntFixed+int(d.nameLen) > int(d.recLen) {
		return dirent{}, false
	}
	d.name = string(b[off+direntFixed : off+direntFixed+int(d.nameLen)])
	return d, true
}

func encodeDirent(b []byte, off int, d dirent) {
	binary.LittleEndian.PutUint32(b[off:], d.ino)
	binary.LittleEndian.PutUint16(b[off+4:], d.recLen)
	b[off+6] = d.nameLen
	b[off+7] = d.fileType
	copy(b[off+direntFixed:], d.name)
}

// dirScan walks every record of a directory, calling fn with the block's
// logical number, the in-block offset, and the record; fn returning
// false stops.  Holes are impossible (directory blocks are allocated
// whole).
func (fs *FS) dirScan(di *inode, fn func(lbn uint32, off int, d dirent) bool) error {
	nblocks := (di.size + BlockSize - 1) / BlockSize
	var blockBuf [BlockSize]byte
	for lbn := uint32(0); lbn < nblocks; lbn++ {
		if _, err := fs.readi(di, blockBuf[:], uint64(lbn)*BlockSize); err != nil {
			return err
		}
		off := 0
		for off < BlockSize {
			d, ok := decodeDirent(blockBuf[:], off)
			if !ok {
				return com.ErrIO // corrupt tiling
			}
			if !fn(lbn, off, d) {
				return nil
			}
			off += int(d.recLen)
		}
	}
	return nil
}

// dirLookup finds name, returning its inode.
func (fs *FS) dirLookup(di *inode, name string) (uint32, error) {
	var found uint32
	err := fs.dirScan(di, func(_ uint32, _ int, d dirent) bool {
		if d.ino != 0 && d.name == name {
			found = d.ino
			return false
		}
		return true
	})
	if err != nil {
		return 0, err
	}
	if found == 0 {
		return 0, com.ErrNoEnt
	}
	return found, nil
}

// dirEnter inserts (name -> ino): it splits a record with enough slack,
// or appends a fresh block whose single record spans it entirely.
func (fs *FS) dirEnter(dd *inode, ddIno uint32, name string, ino uint32, ftype uint8) error {
	if len(name) > MaxNameLen {
		return com.ErrNameLong
	}
	need := direntSize(len(name))

	// Pass 1: find a record with room (free record, or used record
	// whose rec_len slack fits the new one).
	var foundLbn uint32
	foundOff := -1
	var foundD dirent
	err := fs.dirScan(dd, func(lbn uint32, off int, d dirent) bool {
		if d.ino == 0 && d.recLen >= need {
			foundLbn, foundOff, foundD = lbn, off, d
			return false
		}
		used := direntSize(int(d.nameLen))
		if d.ino != 0 && d.recLen >= used+need {
			foundLbn, foundOff, foundD = lbn, off, d
			return false
		}
		return true
	})
	if err != nil {
		return err
	}

	var blockBuf [BlockSize]byte
	if foundOff >= 0 {
		if _, err := fs.readi(dd, blockBuf[:], uint64(foundLbn)*BlockSize); err != nil {
			return err
		}
		if foundD.ino == 0 {
			// Reuse the free record in place.
			encodeDirent(blockBuf[:], foundOff, dirent{
				ino: ino, recLen: foundD.recLen,
				nameLen: uint8(len(name)), fileType: ftype, name: name,
			})
		} else {
			// Split: shrink the used record to its true size, and the
			// newcomer inherits the slack.
			used := direntSize(int(foundD.nameLen))
			rest := foundD.recLen - used
			foundD.recLen = used
			encodeDirent(blockBuf[:], foundOff, foundD)
			encodeDirent(blockBuf[:], foundOff+int(used), dirent{
				ino: ino, recLen: rest,
				nameLen: uint8(len(name)), fileType: ftype, name: name,
			})
		}
		if _, err := fs.writei(dd, blockBuf[:], uint64(foundLbn)*BlockSize); err != nil {
			return err
		}
		return fs.iput(ddIno, dd)
	}

	// Pass 2: grow the directory by one block; the new record's rec_len
	// covers the whole block.
	for i := range blockBuf {
		blockBuf[i] = 0
	}
	encodeDirent(blockBuf[:], 0, dirent{
		ino: ino, recLen: BlockSize,
		nameLen: uint8(len(name)), fileType: ftype, name: name,
	})
	if _, err := fs.writei(dd, blockBuf[:], uint64(dd.size)); err != nil {
		return err
	}
	return fs.iput(ddIno, dd)
}

// dirRemove deletes name: the record is folded into its predecessor (or
// becomes a free record when it leads its block).
func (fs *FS) dirRemove(dd *inode, ddIno uint32, name string) error {
	var lbn uint32
	off, prevOff := -1, -1
	var cur, prev dirent
	curLbn := uint32(0)
	lastOffInBlock := -1
	var lastD dirent
	err := fs.dirScan(dd, func(l uint32, o int, d dirent) bool {
		if l != curLbn {
			curLbn = l
			lastOffInBlock = -1
		}
		if d.ino != 0 && d.name == name {
			lbn, off, cur = l, o, d
			prevOff = lastOffInBlock
			prev = lastD
			return false
		}
		lastOffInBlock = o
		lastD = d
		return true
	})
	if err != nil {
		return err
	}
	if off < 0 {
		return com.ErrNoEnt
	}
	var blockBuf [BlockSize]byte
	if _, err := fs.readi(dd, blockBuf[:], uint64(lbn)*BlockSize); err != nil {
		return err
	}
	if prevOff >= 0 {
		// Fold into the predecessor.
		prev.recLen += cur.recLen
		encodeDirent(blockBuf[:], prevOff, prev)
	} else {
		// Leading record: mark free.
		cur.ino = 0
		cur.nameLen = 0
		cur.fileType = ftUnknown
		cur.name = ""
		encodeDirent(blockBuf[:], off, cur)
	}
	if _, err := fs.writei(dd, blockBuf[:], uint64(lbn)*BlockSize); err != nil {
		return err
	}
	return fs.iput(ddIno, dd)
}

// dirEmpty reports whether the directory has no live entries.
func (fs *FS) dirEmpty(di *inode) (bool, error) {
	empty := true
	err := fs.dirScan(di, func(_ uint32, _ int, d dirent) bool {
		if d.ino != 0 {
			empty = false
			return false
		}
		return true
	})
	return empty, err
}

// dirList returns the live entries in record order.
func (fs *FS) dirList(di *inode) ([]com.Dirent, error) {
	var out []com.Dirent
	err := fs.dirScan(di, func(_ uint32, _ int, d dirent) bool {
		if d.ino != 0 {
			out = append(out, com.Dirent{Ino: d.ino, Name: d.name})
		}
		return true
	})
	return out, err
}

// checkName enforces the single-component rule (§3.8).
func checkName(name string) error {
	if name == "" || name == "." || name == ".." {
		return com.ErrInval
	}
	if len(name) > MaxNameLen {
		return com.ErrNameLong
	}
	for i := 0; i < len(name); i++ {
		if name[i] == '/' || name[i] == 0 {
			return com.ErrInval
		}
	}
	return nil
}
