package legacy

// sIDE: the kit's donor IDE disk driver, in the Linux request-queue
// style: requests are started on the controller, the caller sleeps on the
// request's wait queue, and the interrupt handler reaps completions and
// wakes the sleepers — the sleep/wakeup traffic the glue of §4.7.6 has to
// emulate.

const (
	ideVendor = 0x1af4
	ideDevice = 0x0010

	// IDESectorSize is the fixed sector size donor code assumes.
	IDESectorSize = 512
)

// IDERequest is one queued transfer.
type IDERequest struct {
	Write  bool
	Sector uint32
	Count  uint32
	Buf    []byte

	Wait WaitQueue
	Done bool
	Err  error
}

// IDEDisk is one probed drive.
type IDEDisk struct {
	Kern *Kernel
	Name string
	IRQ  int
	Chip DiskChip

	opened bool
}

// IDEProbe examines one candidate controller and registers a disk when it
// answers to the expected IDs.
func IDEProbe(k *Kernel, chip DiskChip, irq int, name string) *IDEDisk {
	if v, d := chip.IDs(); v != ideVendor || d != ideDevice {
		return nil
	}
	disk := &IDEDisk{Kern: k, Name: name, IRQ: irq, Chip: chip}
	k.RegisterDisk(disk)
	k.Printk("side: %s, %d sectors at irq %d\n", name, chip.Sectors(), irq)
	return disk
}

// Open installs the completion interrupt handler.
func (d *IDEDisk) Open() error {
	if d.opened {
		return nil
	}
	if err := d.Kern.RequestIRQ(d.IRQ, func(int) { d.interrupt() }, d.Name); err != nil {
		return err
	}
	d.opened = true
	return nil
}

// Close releases the interrupt line.
func (d *IDEDisk) Close() error {
	if !d.opened {
		return nil
	}
	d.Kern.FreeIRQ(d.IRQ)
	d.opened = false
	return nil
}

// Sectors returns the drive capacity.
func (d *IDEDisk) Sectors() uint32 { return d.Chip.Sectors() }

// interrupt reaps every pending completion and wakes its sleeper.
func (d *IDEDisk) interrupt() {
	for {
		tag, err, ok := d.Chip.Done()
		if !ok {
			return
		}
		r := tag.(*IDERequest)
		r.Err = err
		r.Done = true
		d.Kern.WakeUp(&r.Wait)
	}
}

// DoRequest runs one transfer to completion, sleeping while the hardware
// works — the donor cli/sleep_on idiom, with the interrupt-exclusion
// dance guarding the Done test against the completion racing in between
// check and sleep.
func (d *IDEDisk) DoRequest(r *IDERequest) error {
	if !d.opened {
		return errNotRunning
	}
	if uint32(len(r.Buf)) < r.Count*IDESectorSize {
		return errIO
	}
	k := d.Kern
	d.Chip.Start(r.Write, r.Sector, r.Count, r.Buf, r)
	// sleep_on is entered with interrupts disabled; it atomically
	// registers the sleeper, re-enables while blocked, and returns with
	// interrupts disabled again — which is what closes the classic
	// completed-before-sleep window against the Done test.
	flags := k.SaveFlags()
	k.Cli()
	for !r.Done {
		k.SleepOn(&r.Wait)
	}
	k.RestoreFlags(flags)
	return r.Err
}

// ReadSectors is the convenience read path.
func (d *IDEDisk) ReadSectors(sector, count uint32, buf []byte) error {
	return d.DoRequest(&IDERequest{Sector: sector, Count: count, Buf: buf})
}

// WriteSectors is the convenience write path.
func (d *IDEDisk) WriteSectors(sector, count uint32, buf []byte) error {
	return d.DoRequest(&IDERequest{Write: true, Sector: sector, Count: count, Buf: buf})
}
